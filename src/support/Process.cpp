//===-- support/Process.cpp -----------------------------------------------===//

#include "support/Process.h"

#include "support/FaultInjector.h"

#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

using namespace cerb;

pid_t cerb::proc::forkChild() {
  if (int E = 0; fault::shouldFail("proc.fork", &E)) {
    errno = E;
    return -1;
  }
  return ::fork();
}

net::Fd cerb::proc::pidfdOpen(pid_t Pid) {
#ifdef SYS_pidfd_open
  long Raw = ::syscall(SYS_pidfd_open, Pid, 0u);
  if (Raw >= 0)
    return net::Fd(static_cast<int>(Raw));
#else
  (void)Pid;
#endif
  return net::Fd();
}

bool cerb::proc::reapNoHang(pid_t Pid, int *OutStatus) {
  int Status = 0;
  pid_t R;
  do
    R = ::waitpid(Pid, &Status, WNOHANG);
  while (R < 0 && errno == EINTR);
  if (R != Pid)
    return false;
  if (OutStatus)
    *OutStatus = Status;
  return true;
}

bool cerb::proc::reapBlocking(pid_t Pid, int *OutStatus) {
  int Status = 0;
  pid_t R;
  do
    R = ::waitpid(Pid, &Status, 0);
  while (R < 0 && errno == EINTR);
  if (R != Pid)
    return false;
  if (OutStatus)
    *OutStatus = Status;
  return true;
}

std::string cerb::proc::describeStatus(int Status) {
  if (WIFEXITED(Status))
    return "exit " + std::to_string(WEXITSTATUS(Status));
  if (WIFSIGNALED(Status)) {
    int Sig = WTERMSIG(Status);
    const char *Name = ::strsignal(Sig);
    return "signal " + std::to_string(Sig) +
           (Name ? " (" + std::string(Name) + ")" : std::string());
  }
  return "status " + std::to_string(Status);
}

bool cerb::proc::exitedCleanly(int Status) {
  return WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
}

uint64_t cerb::proc::monotonicMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
