//===-- support/SourceLoc.h - Source locations ------------------*- C++ -*-===//
///
/// \file
/// Source positions for diagnostics. Every AST node from the Cabs parser
/// onward carries a SourceLoc so that undefined-behaviour reports from the
/// Core dynamics can cite the originating C source position, as the paper's
/// tool does (§5.4: "reports which undefined behaviour has been violated,
/// together with the C source location").
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_SOURCELOC_H
#define CERB_SUPPORT_SOURCELOC_H

#include "support/Format.h"

#include <string>

namespace cerb {

/// A position in a source buffer (1-based line/column; 0 means unknown).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(unsigned Line, unsigned Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return fmt("{0}:{1}", Line, Col);
  }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace cerb

#endif // CERB_SUPPORT_SOURCELOC_H
