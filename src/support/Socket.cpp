//===-- support/Socket.cpp ------------------------------------------------===//

#include "support/Socket.h"

#include "support/FaultInjector.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cerb;
using namespace cerb::net;

void Fd::reset() {
  if (Raw >= 0)
    ::close(Raw);
  Raw = -1;
}

namespace {

StaticError sysErr(const std::string &What) {
  return err(What + ": " + std::strerror(errno));
}

/// SIGPIPE would kill the daemon when a client disconnects mid-response;
/// every socket we create opts out (the write loop sees EPIPE instead).
void armNoSigpipe(int Raw) {
#ifdef SO_NOSIGPIPE
  int One = 1;
  ::setsockopt(Raw, SOL_SOCKET, SO_NOSIGPIPE, &One, sizeof One);
#else
  (void)Raw; // Linux: writeAll uses MSG_NOSIGNAL instead
#endif
}

/// One fault-aware read: `socket.read` injects a failing errno (EINTR here
/// exercises the caller's retry loop), `socket.read.short` truncates the
/// request to a single byte so partial-read handling is explored on demand.
ssize_t faultyRead(int FdRaw, void *Buf, size_t Len) {
  if (fault::active()) {
    int E = 0;
    if (fault::shouldFail("socket.read", &E)) {
      errno = E;
      return -1;
    }
    if (Len > 1 && fault::shouldFail("socket.read.short"))
      Len = 1;
  }
  return ::read(FdRaw, Buf, Len);
}

/// Fault-aware send/write mirror of faultyRead (`socket.write`,
/// `socket.write.short`).
ssize_t faultyWrite(int FdRaw, const char *Buf, size_t Len) {
  if (fault::active()) {
    int E = 0;
    if (fault::shouldFail("socket.write", &E)) {
      errno = E;
      return -1;
    }
    if (Len > 1 && fault::shouldFail("socket.write.short"))
      Len = 1;
  }
#ifdef MSG_NOSIGNAL
  ssize_t N = ::send(FdRaw, Buf, Len, MSG_NOSIGNAL);
  if (N < 0 && errno == ENOTSOCK) // pipes in tests
    N = ::write(FdRaw, Buf, Len);
  return N;
#else
  return ::write(FdRaw, Buf, Len);
#endif
}

} // namespace

Expected<Fd> cerb::net::listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return err("socket path too long: " + Path);
  struct stat St{};
  if (::lstat(Path.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode))
      return err("refusing to unlink non-socket file: " + Path);
    ::unlink(Path.c_str()); // stale socket from a previous daemon
  }
  Fd Sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return sysErr("socket");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Sock.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0)
    return sysErr("bind " + Path);
  if (::listen(Sock.get(), Backlog) != 0)
    return sysErr("listen " + Path);
  armNoSigpipe(Sock.get());
  return Sock;
}

Expected<Fd> cerb::net::listenTcp(uint16_t Port, uint16_t *OutPort,
                                  int Backlog, bool Reuseport) {
  Fd Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return sysErr("socket");
  int One = 1;
  ::setsockopt(Sock.get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  if (Reuseport &&
      ::setsockopt(Sock.get(), SOL_SOCKET, SO_REUSEPORT, &One, sizeof One) != 0)
    return sysErr("setsockopt SO_REUSEPORT");
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Sock.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0)
    return sysErr("bind 127.0.0.1:" + std::to_string(Port));
  if (::listen(Sock.get(), Backlog) != 0)
    return sysErr("listen");
  if (OutPort) {
    socklen_t Len = sizeof Addr;
    if (::getsockname(Sock.get(), reinterpret_cast<sockaddr *>(&Addr), &Len) !=
        0)
      return sysErr("getsockname");
    *OutPort = ntohs(Addr.sin_port);
  }
  armNoSigpipe(Sock.get());
  return Sock;
}

Expected<Fd> cerb::net::connectUnix(const std::string &Path) {
  if (int E = 0; fault::shouldFail("socket.connect", &E))
    return err("connect " + Path + ": " + std::strerror(E) + " (injected)");
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return err("socket path too long: " + Path);
  Fd Sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return sysErr("socket");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int RC;
  do {
    RC = ::connect(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
                   sizeof Addr);
  } while (RC != 0 && errno == EINTR);
  if (RC != 0)
    return sysErr("connect " + Path);
  armNoSigpipe(Sock.get());
  return Sock;
}

Expected<Fd> cerb::net::connectTcp(uint16_t Port) {
  if (int E = 0; fault::shouldFail("socket.connect", &E))
    return err("connect 127.0.0.1:" + std::to_string(Port) + ": " +
               std::strerror(E) + " (injected)");
  Fd Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return sysErr("socket");
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  int RC;
  do {
    RC = ::connect(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
                   sizeof Addr);
  } while (RC != 0 && errno == EINTR);
  if (RC != 0)
    return sysErr("connect 127.0.0.1:" + std::to_string(Port));
  armNoSigpipe(Sock.get());
  return Sock;
}

Expected<std::pair<Fd, Fd>> cerb::net::socketPair() {
  int Raw[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, Raw) != 0)
    return sysErr("socketpair");
  armNoSigpipe(Raw[0]);
  armNoSigpipe(Raw[1]);
  return std::make_pair(Fd(Raw[0]), Fd(Raw[1]));
}

bool cerb::net::sendFdMsg(int Sock, char Tag, int FdToSend) {
  struct iovec IoV = {&Tag, 1};
  struct msghdr Msg{};
  Msg.msg_iov = &IoV;
  Msg.msg_iovlen = 1;
  // CMSG_SPACE is not a constant expression on every libc; a fixed buffer
  // sized for one int is.
  alignas(struct cmsghdr) char Ctl[CMSG_SPACE(sizeof(int))];
  if (FdToSend >= 0) {
    std::memset(Ctl, 0, sizeof Ctl);
    Msg.msg_control = Ctl;
    Msg.msg_controllen = CMSG_LEN(sizeof(int));
    struct cmsghdr *C = CMSG_FIRSTHDR(&Msg);
    C->cmsg_level = SOL_SOCKET;
    C->cmsg_type = SCM_RIGHTS;
    C->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(C), &FdToSend, sizeof(int));
  }
  ssize_t N;
  do {
#ifdef MSG_NOSIGNAL
    N = ::sendmsg(Sock, &Msg, MSG_NOSIGNAL);
#else
    N = ::sendmsg(Sock, &Msg, 0);
#endif
  } while (N < 0 && errno == EINTR);
  return N == 1;
}

int cerb::net::recvFdMsg(int Sock, char *OutTag, Fd *OutFd) {
  char Tag = 0;
  struct iovec IoV = {&Tag, 1};
  struct msghdr Msg{};
  Msg.msg_iov = &IoV;
  Msg.msg_iovlen = 1;
  alignas(struct cmsghdr) char Ctl[CMSG_SPACE(sizeof(int))];
  Msg.msg_control = Ctl;
  Msg.msg_controllen = sizeof Ctl;
  ssize_t N;
  do
    N = ::recvmsg(Sock, &Msg, MSG_CMSG_CLOEXEC);
  while (N < 0 && errno == EINTR);
  if (N < 0)
    return -1;
  if (N == 0)
    return 0;
  if (OutTag)
    *OutTag = Tag;
  Fd Got;
  for (struct cmsghdr *C = CMSG_FIRSTHDR(&Msg); C; C = CMSG_NXTHDR(&Msg, C)) {
    if (C->cmsg_level == SOL_SOCKET && C->cmsg_type == SCM_RIGHTS &&
        C->cmsg_len >= CMSG_LEN(sizeof(int))) {
      int Raw = -1;
      std::memcpy(&Raw, CMSG_DATA(C), sizeof(int));
      Got = Fd(Raw);
    }
  }
  if (OutFd)
    *OutFd = std::move(Got);
  return 1;
}

bool cerb::net::setNonBlocking(int FdRaw) {
  int Flags = ::fcntl(FdRaw, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(FdRaw, F_SETFL, Flags | O_NONBLOCK) == 0;
}

Fd cerb::net::acceptOn(int ListenFd) {
  while (true) {
    if (fault::shouldFail("socket.accept"))
      return Fd();
    int Raw = ::accept(ListenFd, nullptr, nullptr);
    if (Raw >= 0)
      return Fd(Raw);
    if (errno != EINTR)
      return Fd();
  }
}

bool cerb::net::writeAll(int FdRaw, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
    ssize_t N = faultyWrite(FdRaw, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

int cerb::net::readExact(int FdRaw, void *Data, size_t Len) {
  char *P = static_cast<char *>(Data);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = faultyRead(FdRaw, P + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return Got == 0 ? 0 : -1; // EOF: clean only at a boundary
    Got += static_cast<size_t>(N);
  }
  return 1;
}

bool cerb::net::writeFrame(int FdRaw, std::string_view Payload,
                           uint32_t MaxLen) {
  if (Payload.size() > MaxLen)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char Hdr[4] = {static_cast<unsigned char>(Len >> 24),
                          static_cast<unsigned char>(Len >> 16),
                          static_cast<unsigned char>(Len >> 8),
                          static_cast<unsigned char>(Len)};
  return writeAll(FdRaw, Hdr, 4) && writeAll(FdRaw, Payload.data(), Len);
}

int cerb::net::readFrame(int FdRaw, std::string &Out, uint32_t MaxLen) {
  unsigned char Hdr[4];
  int RC = readExact(FdRaw, Hdr, 4);
  if (RC <= 0)
    return RC;
  uint32_t Len = (uint32_t(Hdr[0]) << 24) | (uint32_t(Hdr[1]) << 16) |
                 (uint32_t(Hdr[2]) << 8) | uint32_t(Hdr[3]);
  if (Len > MaxLen)
    return -1;
  Out.resize(Len);
  if (Len == 0)
    return 1;
  return readExact(FdRaw, Out.data(), Len) == 1 ? 1 : -1;
}

int cerb::net::FrameReader::next(std::string &Out, uint32_t MaxLen) {
  for (;;) {
    const size_t Avail = Buf.size() - Pos;
    if (Avail >= 4) {
      const auto *H = reinterpret_cast<const unsigned char *>(Buf.data() + Pos);
      const uint32_t Len = (uint32_t(H[0]) << 24) | (uint32_t(H[1]) << 16) |
                           (uint32_t(H[2]) << 8) | uint32_t(H[3]);
      if (Len > MaxLen)
        return -1;
      if (Avail - 4 >= Len) {
        Out.assign(Buf, Pos + 4, Len);
        Pos += 4 + size_t(Len);
        if (Pos == Buf.size()) {
          Buf.clear();
          Pos = 0;
        }
        return 1;
      }
    }
    if (Pos) { // compact the consumed prefix before growing
      Buf.erase(0, Pos);
      Pos = 0;
    }
    char Tmp[64 * 1024];
    const ssize_t N = faultyRead(FdRaw, Tmp, sizeof Tmp);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return Buf.empty() ? 0 : -1; // EOF: clean only at a frame boundary
    Buf.append(Tmp, static_cast<size_t>(N));
  }
}

namespace {

using Clock = std::chrono::steady_clock;

/// poll() for POLLIN with EINTR retry. 1 = readable/hup, 0 = timed out,
/// -1 = error.
int waitReadable(int FdRaw, int TimeoutMs) {
  struct pollfd P = {FdRaw, POLLIN, 0};
  while (true) {
    int R = ::poll(&P, 1, TimeoutMs);
    if (R >= 0)
      return R > 0 ? 1 : 0;
    if (errno != EINTR)
      return -1;
  }
}

/// Remaining milliseconds until \p Deadline (clamped at 0); -1 when no
/// deadline is set.
int remainingMs(bool HasDeadline, Clock::time_point Deadline) {
  if (!HasDeadline)
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  return Left > 0 ? static_cast<int>(Left) : 0;
}

/// readExact under a deadline: 1 ok, 0 clean EOF at boundary, -1 error or
/// mid-buffer EOF, -2 deadline expired.
int readExactDeadline(int FdRaw, void *Data, size_t Len, bool HasDeadline,
                      Clock::time_point Deadline) {
  char *P = static_cast<char *>(Data);
  size_t Got = 0;
  while (Got < Len) {
    int Left = remainingMs(HasDeadline, Deadline);
    if (HasDeadline && Left == 0)
      return -2;
    int W = waitReadable(FdRaw, Left);
    if (W < 0)
      return -1;
    if (W == 0)
      return -2;
    ssize_t N = faultyRead(FdRaw, P + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return -1;
    }
    if (N == 0)
      return Got == 0 ? 0 : -1;
    Got += static_cast<size_t>(N);
  }
  return 1;
}

} // namespace

RecvStatus cerb::net::readFrameTimed(int FdRaw, std::string &Out,
                                     uint32_t MaxLen, int IdleMs,
                                     int FrameMs) {
  // Phase 1: wait for the first byte of a frame (the idle window).
  int W = waitReadable(FdRaw, IdleMs);
  if (W < 0)
    return RecvStatus::Error;
  if (W == 0)
    return RecvStatus::Idle;

  // Phase 2: once a frame has started, the whole of it must arrive within
  // FrameMs — a peer that sends half a header and stalls is cut off.
  bool HasDeadline = FrameMs >= 0;
  Clock::time_point Deadline =
      HasDeadline ? Clock::now() + std::chrono::milliseconds(FrameMs)
                  : Clock::time_point();

  unsigned char Hdr[4];
  int RC = readExactDeadline(FdRaw, Hdr, 4, HasDeadline, Deadline);
  if (RC == 0)
    return RecvStatus::Eof;
  if (RC == -2)
    return RecvStatus::Timeout;
  if (RC != 1)
    return RecvStatus::Error;
  uint32_t Len = (uint32_t(Hdr[0]) << 24) | (uint32_t(Hdr[1]) << 16) |
                 (uint32_t(Hdr[2]) << 8) | uint32_t(Hdr[3]);
  if (Len > MaxLen)
    return RecvStatus::Oversize; // reject before allocating anything
  Out.resize(Len);
  if (Len == 0)
    return RecvStatus::Frame;
  RC = readExactDeadline(FdRaw, Out.data(), Len, HasDeadline, Deadline);
  if (RC == -2)
    return RecvStatus::Timeout;
  return RC == 1 ? RecvStatus::Frame : RecvStatus::Error;
}

bool cerb::net::setIoTimeout(int FdRaw, uint64_t Millis) {
  struct timeval TV;
  TV.tv_sec = static_cast<time_t>(Millis / 1000);
  TV.tv_usec = static_cast<suseconds_t>((Millis % 1000) * 1000);
  bool Ok = ::setsockopt(FdRaw, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof TV) == 0;
  Ok = ::setsockopt(FdRaw, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof TV) == 0 && Ok;
  return Ok;
}

void cerb::net::shutdownBoth(int FdRaw) { ::shutdown(FdRaw, SHUT_RDWR); }
