//===-- support/Socket.cpp ------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cerb;
using namespace cerb::net;

void Fd::reset() {
  if (Raw >= 0)
    ::close(Raw);
  Raw = -1;
}

namespace {

StaticError sysErr(const std::string &What) {
  return err(What + ": " + std::strerror(errno));
}

/// SIGPIPE would kill the daemon when a client disconnects mid-response;
/// every socket we create opts out (the write loop sees EPIPE instead).
void armNoSigpipe(int Raw) {
#ifdef SO_NOSIGPIPE
  int One = 1;
  ::setsockopt(Raw, SOL_SOCKET, SO_NOSIGPIPE, &One, sizeof One);
#else
  (void)Raw; // Linux: writeAll uses MSG_NOSIGNAL instead
#endif
}

} // namespace

Expected<Fd> cerb::net::listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return err("socket path too long: " + Path);
  struct stat St{};
  if (::lstat(Path.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode))
      return err("refusing to unlink non-socket file: " + Path);
    ::unlink(Path.c_str()); // stale socket from a previous daemon
  }
  Fd Sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return sysErr("socket");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Sock.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0)
    return sysErr("bind " + Path);
  if (::listen(Sock.get(), Backlog) != 0)
    return sysErr("listen " + Path);
  armNoSigpipe(Sock.get());
  return Sock;
}

Expected<Fd> cerb::net::listenTcp(uint16_t Port, uint16_t *OutPort,
                                  int Backlog) {
  Fd Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return sysErr("socket");
  int One = 1;
  ::setsockopt(Sock.get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Sock.get(), reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0)
    return sysErr("bind 127.0.0.1:" + std::to_string(Port));
  if (::listen(Sock.get(), Backlog) != 0)
    return sysErr("listen");
  if (OutPort) {
    socklen_t Len = sizeof Addr;
    if (::getsockname(Sock.get(), reinterpret_cast<sockaddr *>(&Addr), &Len) !=
        0)
      return sysErr("getsockname");
    *OutPort = ntohs(Addr.sin_port);
  }
  armNoSigpipe(Sock.get());
  return Sock;
}

Expected<Fd> cerb::net::connectUnix(const std::string &Path) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return err("socket path too long: " + Path);
  Fd Sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return sysErr("socket");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int RC;
  do {
    RC = ::connect(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
                   sizeof Addr);
  } while (RC != 0 && errno == EINTR);
  if (RC != 0)
    return sysErr("connect " + Path);
  armNoSigpipe(Sock.get());
  return Sock;
}

Expected<Fd> cerb::net::connectTcp(uint16_t Port) {
  Fd Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock.valid())
    return sysErr("socket");
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  int RC;
  do {
    RC = ::connect(Sock.get(), reinterpret_cast<sockaddr *>(&Addr),
                   sizeof Addr);
  } while (RC != 0 && errno == EINTR);
  if (RC != 0)
    return sysErr("connect 127.0.0.1:" + std::to_string(Port));
  armNoSigpipe(Sock.get());
  return Sock;
}

Fd cerb::net::acceptOn(int ListenFd) {
  while (true) {
    int Raw = ::accept(ListenFd, nullptr, nullptr);
    if (Raw >= 0)
      return Fd(Raw);
    if (errno != EINTR)
      return Fd();
  }
}

bool cerb::net::writeAll(int FdRaw, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
#ifdef MSG_NOSIGNAL
    ssize_t N = ::send(FdRaw, P, Len, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK) // pipes in tests
      N = ::write(FdRaw, P, Len);
#else
    ssize_t N = ::write(FdRaw, P, Len);
#endif
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

int cerb::net::readExact(int FdRaw, void *Data, size_t Len) {
  char *P = static_cast<char *>(Data);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::read(FdRaw, P + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return Got == 0 ? 0 : -1; // EOF: clean only at a boundary
    Got += static_cast<size_t>(N);
  }
  return 1;
}

bool cerb::net::writeFrame(int FdRaw, std::string_view Payload,
                           uint32_t MaxLen) {
  if (Payload.size() > MaxLen)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char Hdr[4] = {static_cast<unsigned char>(Len >> 24),
                          static_cast<unsigned char>(Len >> 16),
                          static_cast<unsigned char>(Len >> 8),
                          static_cast<unsigned char>(Len)};
  return writeAll(FdRaw, Hdr, 4) && writeAll(FdRaw, Payload.data(), Len);
}

int cerb::net::readFrame(int FdRaw, std::string &Out, uint32_t MaxLen) {
  unsigned char Hdr[4];
  int RC = readExact(FdRaw, Hdr, 4);
  if (RC <= 0)
    return RC;
  uint32_t Len = (uint32_t(Hdr[0]) << 24) | (uint32_t(Hdr[1]) << 16) |
                 (uint32_t(Hdr[2]) << 8) | uint32_t(Hdr[3]);
  if (Len > MaxLen)
    return -1;
  Out.resize(Len);
  if (Len == 0)
    return 1;
  return readExact(FdRaw, Out.data(), Len) == 1 ? 1 : -1;
}

void cerb::net::shutdownBoth(int FdRaw) { ::shutdown(FdRaw, SHUT_RDWR); }
