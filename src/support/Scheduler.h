//===-- support/Scheduler.h - Nondeterminism oracle -------------*- C++ -*-===//
///
/// \file
/// Every dynamic nondeterministic choice in the semantics — Core `nd`,
/// unsequenced evaluation order, memory-model latitude (e.g. whether pointer
/// equality consults provenance, Q2) — is resolved by asking a Scheduler.
/// The exhaustive driver (§5.1 "exhaustive search for all allowed
/// executions") enumerates decision vectors by replay; the random driver
/// picks pseudorandomly ("pseudorandomly explore single execution paths").
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_SCHEDULER_H
#define CERB_SUPPORT_SCHEDULER_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace cerb {

/// Resolves nondeterministic choices during one execution.
class Scheduler {
public:
  virtual ~Scheduler() = default;

  /// Chooses one of \p N alternatives (returns a value in [0, N)).
  /// \p Tag names the choice point for traces and debugging.
  virtual unsigned choose(unsigned N, const char *Tag) = 0;
};

/// Always picks alternative 0 — a deterministic "leftmost" execution.
class LeftmostScheduler final : public Scheduler {
public:
  unsigned choose(unsigned N, const char *Tag) override {
    assert(N > 0 && "choice with no alternatives");
    return 0;
  }
};

/// Pseudorandom single-path exploration (xorshift; reproducible by seed).
class RandomScheduler final : public Scheduler {
public:
  explicit RandomScheduler(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b9) {}

  unsigned choose(unsigned N, const char *Tag) override {
    assert(N > 0 && "choice with no alternatives");
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return static_cast<unsigned>(State % N);
  }

private:
  uint64_t State;
};

/// Replays a recorded prefix of choices, then picks 0 and records; used by
/// the exhaustive driver's DFS over decision vectors.
class TraceScheduler final : public Scheduler {
public:
  explicit TraceScheduler(std::vector<unsigned> Prefix)
      : Prefix(std::move(Prefix)) {}

  unsigned choose(unsigned N, const char *Tag) override {
    assert(N > 0 && "choice with no alternatives");
    unsigned Chosen = Next < Prefix.size() ? Prefix[Next] : 0;
    if (Chosen >= N)
      Chosen = N - 1; // stale prefix from a shorter branch; clamp
    ++Next;
    Trace.push_back(Chosen);
    Widths.push_back(N);
    return Chosen;
  }

  /// The choices actually taken this run.
  const std::vector<unsigned> &trace() const { return Trace; }
  /// The number of alternatives at each choice point this run.
  const std::vector<unsigned> &widths() const { return Widths; }
  /// How many choices were replayed from the prefix (vs freshly taken).
  /// The explorer sums this across runs as its redundant-work metric.
  size_t replayedChoices() const { return std::min(Next, Prefix.size()); }
  /// The claimed prefix length (the subtree root's depth for exploration).
  size_t prefixLength() const { return Prefix.size(); }

private:
  std::vector<unsigned> Prefix;
  size_t Next = 0;
  std::vector<unsigned> Trace;
  std::vector<unsigned> Widths;
};

} // namespace cerb

#endif // CERB_SUPPORT_SCHEDULER_H
