//===-- support/Format.cpp ------------------------------------------------===//

#include "support/Format.h"

#include <cassert>

using namespace cerb;

std::string cerb::toString(UInt128 V) {
  if (V == 0)
    return "0";
  std::string Out;
  while (V != 0) {
    Out.push_back(static_cast<char>('0' + static_cast<unsigned>(V % 10)));
    V /= 10;
  }
  return std::string(Out.rbegin(), Out.rend());
}

std::string cerb::toString(Int128 V) {
  if (V >= 0)
    return toString(static_cast<UInt128>(V));
  // Negate via unsigned to handle INT128_MIN.
  UInt128 Mag = ~static_cast<UInt128>(V) + 1;
  return "-" + toString(Mag);
}

std::string cerb::detail::formatImpl(std::string_view Fmt,
                                     const std::vector<std::string> &Args) {
  std::string Out;
  Out.reserve(Fmt.size() + 16);
  for (size_t I = 0; I < Fmt.size(); ++I) {
    char C = Fmt[I];
    if (C != '{') {
      Out.push_back(C);
      continue;
    }
    // Parse {N}. Anything malformed is copied verbatim.
    size_t J = I + 1;
    size_t N = 0;
    bool SawDigit = false;
    while (J < Fmt.size() && Fmt[J] >= '0' && Fmt[J] <= '9') {
      N = N * 10 + static_cast<size_t>(Fmt[J] - '0');
      SawDigit = true;
      ++J;
    }
    if (SawDigit && J < Fmt.size() && Fmt[J] == '}' && N < Args.size()) {
      Out += Args[N];
      I = J;
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

std::string cerb::join(const std::vector<std::string> &Parts,
                       std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
