//===-- support/Socket.h - Sockets and length-prefixed framing --*- C++ -*-===//
///
/// \file
/// The wire substrate of the `cerb-serve/1` protocol: RAII file
/// descriptors, unix-domain and loopback-TCP listeners/connectors, and
/// length-prefixed frame I/O. A frame is a 4-byte big-endian payload length
/// followed by that many bytes (the payload is JSON at the protocol layer,
/// but framing is content-agnostic). Frames larger than a caller-supplied
/// cap are rejected before any allocation, so a malformed or hostile peer
/// cannot make the daemon balloon.
///
/// All helpers report failure through Expected/bool + message rather than
/// exceptions or errno spelunking at call sites, and every read/write loop
/// retries EINTR — the daemon keeps serving across SIGTERM delivery to a
/// worker thread (drain is coordinated through a self-pipe, not through
/// interrupted syscalls).
///
/// Robustness testing: every syscall wrapper here carries a
/// support/FaultInjector fault point (`socket.read`, `socket.write`,
/// `socket.read.short`, `socket.write.short`, `socket.accept`,
/// `socket.connect`), so short reads, EINTR storms, ECONNRESET, and accept
/// failure are deterministically explorable. Disarmed cost is one relaxed
/// atomic load per call.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_SOCKET_H
#define CERB_SUPPORT_SOCKET_H

#include "support/Expected.h"

#include <cstdint>
#include <string>
#include <utility>

namespace cerb::net {

/// Owning file descriptor (close-on-destroy, move-only).
class Fd {
public:
  Fd() = default;
  explicit Fd(int Raw) : Raw(Raw) {}
  Fd(Fd &&O) noexcept : Raw(O.Raw) { O.Raw = -1; }
  Fd &operator=(Fd &&O) noexcept {
    if (this != &O) {
      reset();
      Raw = O.Raw;
      O.Raw = -1;
    }
    return *this;
  }
  Fd(const Fd &) = delete;
  Fd &operator=(const Fd &) = delete;
  ~Fd() { reset(); }

  int get() const { return Raw; }
  bool valid() const { return Raw >= 0; }
  /// Releases ownership without closing.
  int release() {
    int R = Raw;
    Raw = -1;
    return R;
  }
  void reset();

private:
  int Raw = -1;
};

/// Binds and listens on a unix-domain socket at \p Path. An existing socket
/// file at the path is unlinked first (stale from a crashed daemon); a
/// non-socket file at the path is an error. Paths longer than sockaddr_un
/// allows (~107 bytes) are rejected.
Expected<Fd> listenUnix(const std::string &Path, int Backlog = 64);

/// Binds and listens on 127.0.0.1:\p Port (Port 0 = kernel-assigned; read
/// it back with \p OutPort). With \p Reuseport, SO_REUSEPORT is set before
/// bind so N worker processes can each bind the same concrete port and let
/// the kernel load-balance accepts across them (the TCP half of the
/// supervised worker pool).
Expected<Fd> listenTcp(uint16_t Port, uint16_t *OutPort = nullptr,
                       int Backlog = 64, bool Reuseport = false);

/// A connected AF_UNIX SOCK_STREAM pair (CLOEXEC both ends): the
/// supervisor<->worker control channel. Frames (writeFrame/readFrame) work
/// on it unchanged.
Expected<std::pair<Fd, Fd>> socketPair();

/// Sends one byte of \p Tag plus (when \p FdToSend >= 0) that descriptor
/// as SCM_RIGHTS ancillary data. The receiver gets its own descriptor for
/// the same open file description — how workers adopt the supervisor's
/// canonical unix-domain listening socket.
bool sendFdMsg(int Sock, char Tag, int FdToSend);

/// Receives a sendFdMsg message: returns the tag byte and stores the
/// passed descriptor (invalid Fd when the message carried none) in
/// \p OutFd. 0 on EOF, -1 on error, 1 on success.
int recvFdMsg(int Sock, char *OutTag, Fd *OutFd);

/// Sets O_NONBLOCK. On a shared listening socket this is a property of the
/// open file description — setting it once covers every worker's copy —
/// and it is what keeps N workers poll()ing one accept queue from blocking
/// inside accept() when a sibling wins the race to a connection.
bool setNonBlocking(int FdRaw);

/// Connects to a unix-domain socket.
Expected<Fd> connectUnix(const std::string &Path);

/// Connects to 127.0.0.1:\p Port (the daemon only binds loopback).
Expected<Fd> connectTcp(uint16_t Port);

/// accept() with EINTR retry; invalid Fd on a closed/failed listener.
Fd acceptOn(int ListenFd);

/// Writes all of \p Data (EINTR/partial-write safe). False on error or a
/// closed peer.
bool writeAll(int FdRaw, const void *Data, size_t Len);

/// Reads exactly \p Len bytes. Returns 1 on success, 0 on clean EOF at a
/// frame boundary (nothing read yet), -1 on error or mid-buffer EOF.
int readExact(int FdRaw, void *Data, size_t Len);

/// Frame-size cap: big enough for any report the oracle emits over a suite
/// query, small enough that a corrupt length prefix cannot OOM the daemon.
inline constexpr uint32_t DefaultMaxFrame = 64u << 20;

/// One `cerb-serve/1` frame: u32 big-endian payload length + payload.
/// False on I/O error or a frame exceeding \p MaxLen.
bool writeFrame(int FdRaw, std::string_view Payload,
                uint32_t MaxLen = DefaultMaxFrame);

/// Reads one frame into \p Out. Returns 1 on success, 0 on clean EOF
/// before any length byte (peer finished), -1 on error, truncation, or an
/// oversized frame.
int readFrame(int FdRaw, std::string &Out, uint32_t MaxLen = DefaultMaxFrame);

/// Outcome of a deadline-aware frame read (the daemon's reader loop).
enum class RecvStatus {
  Frame,    ///< one complete frame in Out
  Eof,      ///< clean EOF at a frame boundary (peer finished)
  Idle,     ///< no first byte within IdleMs (reap the connection)
  Timeout,  ///< frame started but stalled past FrameMs (slow/torn peer)
  Oversize, ///< length prefix exceeds MaxLen (hostile/garbage frame)
  Error,    ///< I/O error or EOF mid-frame
};

/// Buffered frame reader for streamed reply stretches (the batch op):
/// drains whatever the kernel already has in one read() and slices
/// length-prefixed frames out of the buffer, so a coalesced reply stream
/// costs ~one syscall for many frames instead of two syscalls per frame.
/// Same framing and fault sites (`socket.read`, `socket.read.short`) as
/// readFrame. Over-read bytes stay in this object — use one reader per
/// contiguous reply stream and discard it with the stream.
class FrameReader {
public:
  explicit FrameReader(int FdRaw) : FdRaw(FdRaw) {}
  /// readFrame's contract: 1 = one frame in \p Out, 0 = clean EOF at a
  /// frame boundary with nothing buffered, -1 = error/truncation/oversize.
  int next(std::string &Out, uint32_t MaxLen = DefaultMaxFrame);

private:
  int FdRaw;
  std::string Buf;
  size_t Pos = 0;
};

/// readFrame with timeouts: waits up to \p IdleMs for the first byte
/// (negative = forever), then requires the rest of the frame within
/// \p FrameMs (negative = forever). A partial or garbage frame can stall a
/// reader for at most Idle+Frame — never hang it.
RecvStatus readFrameTimed(int FdRaw, std::string &Out,
                          uint32_t MaxLen = DefaultMaxFrame, int IdleMs = -1,
                          int FrameMs = -1);

/// Arms SO_RCVTIMEO/SO_SNDTIMEO so a blocked call() on a dead or stalled
/// peer fails with EAGAIN instead of hanging (0 disables). Client-side
/// counterpart of the daemon's readFrameTimed.
bool setIoTimeout(int FdRaw, uint64_t Millis);

/// Half-closes the read side (unblocks a peer's blocked readFrame) without
/// closing the descriptor; used by the daemon's drain to retire idle
/// connection readers.
void shutdownBoth(int FdRaw);

} // namespace cerb::net

#endif // CERB_SUPPORT_SOCKET_H
