//===-- support/Process.h - fork/pidfd/waitpid helpers ----------*- C++ -*-===//
///
/// \file
/// Child-process primitives for the supervised worker pool: a fork wrapper
/// with a deterministic fault point (`proc.fork`, so spawn-failure paths
/// are explorable on demand like every other serve seam), pidfd_open with
/// a portable waitpid fallback, and exit-status helpers.
///
/// pidfd is the preferred child monitor — a pollable descriptor with none
/// of SIGCHLD's global-handler hazards — but the syscall is Linux >= 5.3,
/// so every caller must cope with an invalid pidfd and fall back to
/// periodic `waitpid(WNOHANG)` sweeps (supervisors do exactly that; see
/// serve/Supervisor.cpp).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_PROCESS_H
#define CERB_SUPPORT_PROCESS_H

#include "support/Socket.h"

#include <sys/types.h>

#include <cstdint>
#include <string>

namespace cerb::proc {

/// fork() behind the `proc.fork` fault site: an injected failure returns
/// -1 with the scheduled errno, exactly as a real EAGAIN/ENOMEM would, so
/// supervisors' spawn-retry paths can be driven deterministically.
pid_t forkChild();

/// pidfd_open(pid): a pollable descriptor that becomes readable when the
/// child exits. Invalid Fd when the kernel lacks the syscall (callers fall
/// back to waitpid(WNOHANG) polling).
net::Fd pidfdOpen(pid_t Pid);

/// Non-blocking reap: waitpid(Pid, WNOHANG). Returns true when the child
/// was reaped (status in *OutStatus); false while it is still running.
bool reapNoHang(pid_t Pid, int *OutStatus);

/// Blocking reap with EINTR retry. Returns false only on a hard waitpid
/// error (e.g. the pid was never our child).
bool reapBlocking(pid_t Pid, int *OutStatus);

/// "exit 3" / "signal 9 (Killed)" — log-friendly decoding of a waitpid
/// status.
std::string describeStatus(int Status);

/// True when the status is a normal exit with code 0.
bool exitedCleanly(int Status);

/// Monotonic milliseconds (steady clock) — the supervisor's time base for
/// backoff scheduling and flap windows.
uint64_t monotonicMs();

} // namespace cerb::proc

#endif // CERB_SUPPORT_PROCESS_H
