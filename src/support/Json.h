//===-- support/Json.h - Minimal JSON value parser --------------*- C++ -*-===//
///
/// \file
/// A small recursive-descent JSON parser, just enough to read back the
/// documents this repository itself writes (oracle and fuzz-campaign
/// reports): objects, arrays, strings with the escapes our serializers
/// emit, numbers, booleans, null. Object member order is preserved. Not a
/// general-purpose validator — unknown escapes degrade to the raw
/// character, and numbers are parsed with strtod.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_JSON_H
#define CERB_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cerb::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  /// Exact-integer sidecar: when a Number literal is integral (no '.', no
  /// exponent) and its magnitude fits 64 bits, the parser records it here
  /// losslessly — Num alone is a double and silently rounds above 2^53,
  /// which would corrupt the serve protocol's u64 ids, seeds, and hashes.
  bool IsInt = false;
  bool IntNeg = false;  ///< the literal had a leading '-'
  uint64_t IntMag = 0;  ///< magnitude of the exact integer
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj; ///< insertion order

  bool isNull() const { return K == Kind::Null; }
  /// Object member lookup; nullptr when absent or not an object.
  const Value *get(std::string_view Key) const;
  /// Convenience accessors (return the fallback when the kind mismatches).
  /// asU64/asI64 are exact for any in-range integer literal (full 64-bit
  /// precision, not double precision).
  uint64_t asU64(uint64_t Default = 0) const;
  int64_t asI64(int64_t Default = 0) const;
  double asDouble(double Default = 0) const;
  bool asBool(bool Default = false) const;
  const std::string &asString() const { return Str; }
};

/// Parses \p Text as one JSON document; nullopt (with \p Err filled) on a
/// syntax error or trailing garbage.
std::optional<Value> parse(std::string_view Text, std::string *Err = nullptr);

} // namespace cerb::json

#endif // CERB_SUPPORT_JSON_H
