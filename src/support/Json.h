//===-- support/Json.h - Minimal JSON value parser --------------*- C++ -*-===//
///
/// \file
/// A small recursive-descent JSON parser, just enough to read back the
/// documents this repository itself writes (oracle and fuzz-campaign
/// reports): objects, arrays, strings with the escapes our serializers
/// emit, numbers, booleans, null. Object member order is preserved. Not a
/// general-purpose validator — unknown escapes degrade to the raw
/// character, and numbers are parsed with strtod.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_JSON_H
#define CERB_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cerb::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj; ///< insertion order

  bool isNull() const { return K == Kind::Null; }
  /// Object member lookup; nullptr when absent or not an object.
  const Value *get(std::string_view Key) const;
  /// Convenience accessors (return the fallback when the kind mismatches).
  uint64_t asU64(uint64_t Default = 0) const;
  double asDouble(double Default = 0) const;
  bool asBool(bool Default = false) const;
  const std::string &asString() const { return Str; }
};

/// Parses \p Text as one JSON document; nullopt (with \p Err filled) on a
/// syntax error or trailing garbage.
std::optional<Value> parse(std::string_view Text, std::string *Err = nullptr);

} // namespace cerb::json

#endif // CERB_SUPPORT_JSON_H
