//===-- support/StripedHashSet.h - Sharded concurrent hash set --*- C++ -*-===//
///
/// \file
/// A minimal concurrent set of 64-bit keys, sharded ("striped") across
/// independently locked buckets so concurrent inserters rarely contend.
/// Used by the parallel exhaustive explorer to deduplicate outcomes by
/// hash: workers on different subtrees insert from different threads, and
/// one exploration performs exactly one insert per path, so a handful of
/// stripes removes the lock from the hot path entirely.
///
/// Keys are expected to be well-mixed hashes already (the stripe index and
/// the inner std::unordered_set both consume the raw key), so callers
/// should hash with something like FNV-1a / splitmix64 first — hashUint64
/// and hashBytes below are provided for that.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_STRIPEDHASHSET_H
#define CERB_SUPPORT_STRIPEDHASHSET_H

#include <cstdint>
#include <mutex>
#include <string_view>
#include <unordered_set>

namespace cerb {

/// FNV-1a over a byte string; the explorer hashes Outcome::str() with this.
inline uint64_t hashBytes(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// splitmix64 finalizer: whitens an arbitrary 64-bit value into a hash.
inline uint64_t hashUint64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

class StripedHashSet {
public:
  static constexpr unsigned StripeCount = 16;

  /// Inserts \p Key; returns true iff it was not already present.
  bool insert(uint64_t Key) {
    Stripe &S = Stripes[stripeOf(Key)];
    std::lock_guard<std::mutex> L(S.M);
    return S.Keys.insert(Key).second;
  }

  bool contains(uint64_t Key) const {
    const Stripe &S = Stripes[stripeOf(Key)];
    std::lock_guard<std::mutex> L(S.M);
    return S.Keys.count(Key) != 0;
  }

  size_t size() const {
    size_t N = 0;
    for (const Stripe &S : Stripes) {
      std::lock_guard<std::mutex> L(S.M);
      N += S.Keys.size();
    }
    return N;
  }

private:
  static unsigned stripeOf(uint64_t Key) {
    // Top bits: the inner unordered_set consumes the low bits via its
    // modulo, so stripe selection stays independent of bucket selection.
    return static_cast<unsigned>(Key >> 60) & (StripeCount - 1);
  }

  struct Stripe {
    mutable std::mutex M;
    std::unordered_set<uint64_t> Keys;
  };
  Stripe Stripes[StripeCount];
};

} // namespace cerb

#endif // CERB_SUPPORT_STRIPEDHASHSET_H
