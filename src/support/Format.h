//===-- support/Format.h - Lightweight string formatting -------*- C++ -*-===//
///
/// \file
/// Minimal brace-style string formatting (a stand-in for std::format, which
/// the host toolchain lacks). `fmt("x={0} y={1}", X, Y)` substitutes the
/// decimal/default rendering of each argument for `{N}`. Unknown indices are
/// left verbatim. Supports the types used throughout this project, including
/// `__int128`.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_FORMAT_H
#define CERB_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cerb {

using Int128 = __int128;
using UInt128 = unsigned __int128;

/// Renders a signed 128-bit integer in decimal.
std::string toString(Int128 V);
/// Renders an unsigned 128-bit integer in decimal.
std::string toString(UInt128 V);

namespace detail {

inline std::string toFormatArg(const std::string &S) { return S; }
inline std::string toFormatArg(std::string_view S) { return std::string(S); }
inline std::string toFormatArg(const char *S) { return S; }
inline std::string toFormatArg(char C) { return std::string(1, C); }
inline std::string toFormatArg(bool B) { return B ? "true" : "false"; }
inline std::string toFormatArg(Int128 V) { return toString(V); }
inline std::string toFormatArg(UInt128 V) { return toString(V); }
inline std::string toFormatArg(int V) { return std::to_string(V); }
inline std::string toFormatArg(long V) { return std::to_string(V); }
inline std::string toFormatArg(long long V) { return std::to_string(V); }
inline std::string toFormatArg(unsigned V) { return std::to_string(V); }
inline std::string toFormatArg(unsigned long V) { return std::to_string(V); }
inline std::string toFormatArg(unsigned long long V) {
  return std::to_string(V);
}
inline std::string toFormatArg(double V) { return std::to_string(V); }

/// Substitutes `{N}` placeholders in \p Fmt with \p Args.
std::string formatImpl(std::string_view Fmt,
                       const std::vector<std::string> &Args);

} // namespace detail

/// Formats \p Fmt, replacing each `{N}` with the N-th extra argument.
template <typename... Ts> std::string fmt(std::string_view Fmt, Ts &&...Vals) {
  std::vector<std::string> Args = {detail::toFormatArg(Vals)...};
  return detail::formatImpl(Fmt, Args);
}

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

} // namespace cerb

#endif // CERB_SUPPORT_FORMAT_H
