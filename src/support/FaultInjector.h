//===-- support/FaultInjector.h - Deterministic fault injection -*- C++ -*-===//
///
/// \file
/// Seeded, scoped fault points for robustness testing: code that touches
/// the outside world (sockets, disk, frame decoding) asks
/// `fault::shouldFail("site.name")` before doing the real operation, and
/// the injector answers from a deterministic schedule instead of leaving
/// the failure paths to luck. The de facto survey's answer quality depends
/// on the tooling surviving its own fault paths — so those paths must be
/// *systematically explorable* (the same discipline CH2O/VeriFast apply to
/// their checkers), not merely hoped-for.
///
/// Design points:
///
///  - **Zero-cost when disarmed.** The fast path is one relaxed atomic
///    load; production daemons never take the slow path. (bench/perf_serve
///    carries a microbenchmark pinning this.)
///
///  - **Deterministic.** Every decision is a pure function of
///    (seed, site, per-site hit index): probability faults hash the triple
///    through splitmix64, so a failing chaos run is reproducible from its
///    seed alone regardless of thread interleaving *per site*.
///
///  - **Scoped schedules.** A FaultSpec can fire with probability `p` per
///    hit, on exactly the `nth` hit, on `every` k-th hit, and stop after
///    `max` shots — enough to express "the 3rd rename fails" as well as
///    "2% of reads die with ECONNRESET".
///
///  - **Reproducible from a one-liner.** `CERB_FAULTS` (env or the
///    `--faults` flag) arms the injector from a spec string:
///
///      CERB_FAULTS="seed=42;socket.read,p=0.05,errno=ECONNRESET;cache.rename,nth=3"
///
///    `describe()` reserializes the armed schedule canonically so a failing
///    test can print/save exactly what to re-arm.
///
/// Known sites (kept in sync with DESIGN.md):
///   socket.read socket.read.short socket.write socket.write.short
///   socket.accept socket.connect
///   cache.disk_read cache.disk_write cache.torn cache.rename
///   protocol.decode
///   proc.fork (supervisor spawn fails with the scheduled errno)
///   worker.crash (a worker _Exit()s mid-eval — the supervised-pool
///   crash-restart drill; fatal by design, arm it only against a
///   supervised daemon subprocess)
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_FAULTINJECTOR_H
#define CERB_SUPPORT_FAULTINJECTOR_H

#include "support/Expected.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cerb::fault {

/// One scheduled fault at one site. Fields compose: the spec fires when
/// any of its triggers (Probability / Nth / Every) says so, and stops for
/// good after MaxShots firings.
struct FaultSpec {
  std::string Site;          ///< exact site name, e.g. "socket.read"
  double Probability = 0.0;  ///< chance per hit in [0,1]
  uint64_t Nth = 0;          ///< fire on exactly this hit (1-based; 0 = off)
  uint64_t Every = 0;        ///< fire on every k-th hit (0 = off)
  uint64_t MaxShots = UINT64_MAX; ///< total firings allowed
  int Err = 5 /*EIO*/;       ///< errno delivered where the site reports one
};

namespace detail {
/// Process-wide armed flag; the only state the fast path touches.
extern std::atomic<bool> Armed;
} // namespace detail

/// The process-wide injector. All methods are thread-safe; the decision
/// path is mutex-protected (only reachable while armed, i.e. under test).
class Injector {
public:
  static Injector &instance();

  /// Arms the given schedule (replacing any previous one) and resets all
  /// per-site counters.
  void arm(uint64_t Seed, std::vector<FaultSpec> Specs);

  /// Parses and arms a spec string (the CERB_FAULTS grammar above).
  ExpectedVoid armFromSpec(const std::string &Spec);

  /// Arms from the CERB_FAULTS environment variable; false when unset.
  bool armFromEnv();

  /// Disarms and clears the schedule (the fast path returns to zero-cost).
  void disarm();

  /// Slow path behind fault::shouldFail — do not call directly.
  bool shouldFailSlow(std::string_view Site, int *OutErrno);

  /// Total times \p Site was consulted / actually failed since arm().
  uint64_t hits(std::string_view Site) const;
  uint64_t shots(std::string_view Site) const;
  /// Sum of shots over all sites (the "did anything fire" probe).
  uint64_t totalShots() const;

  uint64_t seed() const;

  /// Canonical spec string for the armed schedule ("" when disarmed) —
  /// print/save this to make a chaos failure reproducible.
  std::string describe() const;

  /// "ECONNRESET" -> ECONNRESET etc.; also accepts a plain decimal number.
  /// Returns -1 for unknown names.
  static int errnoByName(std::string_view Name);
  static const char *errnoName(int Err); ///< "" when not a known name

private:
  Injector() = default;
  struct Impl;
  Impl &impl() const;
};

/// True while a schedule is armed (one relaxed load).
inline bool active() {
  return detail::Armed.load(std::memory_order_relaxed);
}

/// The fault point. Returns true when \p Site must fail this time;
/// \p OutErrno (optional) receives the scheduled errno. Disarmed cost: one
/// relaxed atomic load and a predictable branch.
inline bool shouldFail(std::string_view Site, int *OutErrno = nullptr) {
  if (!active())
    return false;
  return Injector::instance().shouldFailSlow(Site, OutErrno);
}

/// RAII arming for tests: arms on construction, disarms on destruction.
struct ScopedFaults {
  ScopedFaults(uint64_t Seed, std::vector<FaultSpec> Specs) {
    Injector::instance().arm(Seed, std::move(Specs));
  }
  explicit ScopedFaults(const std::string &Spec) {
    auto R = Injector::instance().armFromSpec(Spec);
    Ok = static_cast<bool>(R);
    if (!Ok)
      Error = R.error().Message;
  }
  ~ScopedFaults() { Injector::instance().disarm(); }
  ScopedFaults(const ScopedFaults &) = delete;
  ScopedFaults &operator=(const ScopedFaults &) = delete;

  bool Ok = true;
  std::string Error;
};

} // namespace cerb::fault

#endif // CERB_SUPPORT_FAULTINJECTOR_H
