//===-- support/ThreadPool.h - Fixed-size work-stealing pool ----*- C++ -*-===//
///
/// \file
/// The repository's shared execution substrate: a fixed-size pool of
/// workers, each owning a deque of tasks. Owners pop from the back of their
/// own deque (LIFO, for cache locality between related consecutive
/// submissions, which submit() places on the same deque); idle workers
/// steal from the front of a victim's deque (FIFO, taking the oldest — and
/// typically largest — remaining chunk of work).
///
/// Originally the oracle's private pool (oracle/ThreadPool.h now forwards
/// here); generalised with *task groups* so that a nested fan-out — e.g.
/// the parallel exhaustive explorer publishing subtree prefixes from inside
/// an oracle job — can share one pool with its caller:
///
///  - submit(Group, Task) tags the task with a TaskGroup;
///  - wait(Group) blocks until that group alone drains, and *helps*: while
///    the group has queued tasks, the waiting thread claims and runs them
///    itself. A pool worker that waits on a group from inside a task
///    therefore never deadlocks — every queued group task is runnable by
///    the waiter, and running group tasks are owned by other workers that
///    will complete them.
///
/// All deques share one mutex: tasks are coarse (each replays or compiles
/// a whole program, tens of microseconds at the very least), so queue
/// operations are nowhere near the contention point and the single lock
/// keeps the sleep/wake protocol trivially correct.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_THREADPOOL_H
#define CERB_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cerb {

class ThreadPool {
public:
  /// A subset of the pool's tasks that can be waited on independently.
  /// Create one per nested fan-out; must outlive its tasks. Movable-nothing:
  /// the pool holds pointers to it.
  class TaskGroup {
    friend class ThreadPool;
    uint64_t Pending = 0; ///< queued + running tasks of this group

  public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;
  };

  /// Spawns \p ThreadCount workers (clamped to at least 1).
  explicit ThreadPool(unsigned ThreadCount);
  /// Drains nothing: outstanding tasks are completed before destruction
  /// returns (wait() then join).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task; round-robins across worker deques so related
  /// consecutive submissions land on the same few owners.
  void submit(std::function<void()> Task);
  /// Enqueues a task belonging to \p Group (waitable via wait(Group)).
  void submit(TaskGroup &Group, std::function<void()> Task);

  /// Blocks until every submitted task has finished running.
  void wait();
  /// Blocks until every task of \p Group has finished running, helping to
  /// run the group's queued tasks meanwhile. Safe to call from inside a
  /// pool task (the nested fan-out pattern).
  void wait(TaskGroup &Group);

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }
  /// Tasks executed by a worker other than the one they were submitted to.
  uint64_t stealCount() const;

private:
  struct Item {
    std::function<void()> Fn;
    TaskGroup *Group = nullptr;
  };

  void workerLoop(unsigned Me);
  void enqueueLocked(Item I);
  /// Pops a task for worker \p Me (own back, then steal a victim's front).
  /// Must hold M. Returns false if every deque is empty.
  bool takeLocked(unsigned Me, Item &Out);
  /// Pops any queued task of \p Group (scanning from the backs). Must hold
  /// M. Returns false if none is queued.
  bool takeGroupLocked(TaskGroup &Group, Item &Out);
  /// Runs \p I outside the lock and performs completion bookkeeping.
  /// Expects L held; returns with L held.
  void runItem(Item &I, std::unique_lock<std::mutex> &L);

  std::vector<std::deque<Item>> Queues;
  std::vector<std::thread> Workers;
  mutable std::mutex M;
  std::condition_variable CV;     ///< wakes idle workers
  std::condition_variable DoneCV; ///< wakes wait()ers and group helpers
  unsigned NextQueue = 0;
  uint64_t Pending = 0; ///< queued + running tasks (all groups + ungrouped)
  uint64_t Steals = 0;
  bool Stop = false;
};

} // namespace cerb

#endif // CERB_SUPPORT_THREADPOOL_H
