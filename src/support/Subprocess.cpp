//===-- support/Subprocess.cpp --------------------------------------------===//

#include "support/Subprocess.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace cerb;

namespace {

using Clock = std::chrono::steady_clock;

/// Reaps \p Pid unconditionally (EINTR-retrying waitpid). Every fork in
/// captureCommand is paired with exactly one call, so no exit path — not
/// even the timeout kill — leaves a zombie behind.
int reap(pid_t Pid) {
  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
    ;
  return Status;
}

} // namespace

std::optional<std::string> cerb::captureCommand(const std::string &Cmd,
                                                uint64_t TimeoutMs,
                                                bool *TimedOut) {
  if (TimedOut)
    *TimedOut = false;

  int Pipe[2];
  if (pipe2(Pipe, O_CLOEXEC) != 0)
    return std::nullopt;

  pid_t Pid = fork();
  if (Pid < 0) {
    close(Pipe[0]);
    close(Pipe[1]);
    return std::nullopt;
  }
  if (Pid == 0) {
    // Child: stdout -> pipe, stderr -> /dev/null, own process group so a
    // timeout kill takes the whole `sh -c` job, not just the shell.
    setpgid(0, 0);
    dup2(Pipe[1], STDOUT_FILENO);
    int DevNull = open("/dev/null", O_WRONLY);
    if (DevNull >= 0)
      dup2(DevNull, STDERR_FILENO);
    execl("/bin/sh", "sh", "-c", Cmd.c_str(), static_cast<char *>(nullptr));
    _exit(127);
  }

  // Parent. Close the write end now: EOF on the read end then means "the
  // child (and everything holding the descriptor) exited".
  close(Pipe[1]);
  setpgid(Pid, Pid); // also in the parent: close the fork/exec race

  std::string Out;
  bool Expired = false;
  auto Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  char Buf[4096];
  while (true) {
    int WaitMs = -1;
    if (TimeoutMs) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - Clock::now())
                      .count();
      if (Left <= 0) {
        Expired = true;
        break;
      }
      WaitMs = static_cast<int>(Left);
    }
    pollfd P{Pipe[0], POLLIN, 0};
    int PR = poll(&P, 1, WaitMs);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (PR == 0) { // poll timeout: the deadline has passed
      Expired = true;
      break;
    }
    ssize_t N = read(Pipe[0], Buf, sizeof Buf);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      break; // EOF: child side closed
    Out.append(Buf, static_cast<size_t>(N));
  }

  if (Expired) {
    // Timeout-kill path: kill the whole process group, then *reap* — the
    // close below plus the unconditional reap are what keep a
    // spawn-and-time-out loop from leaking descriptors or zombies.
    kill(-Pid, SIGKILL);
    close(Pipe[0]);
    reap(Pid);
    if (TimedOut)
      *TimedOut = true;
    return std::nullopt;
  }

  close(Pipe[0]);
  int Status = reap(Pid);
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
    return std::nullopt;
  return Out;
}

const std::string &cerb::processScratchDir() {
  static const std::string Dir = [] {
    std::string D = "/tmp/cerb-scratch-" + std::to_string(getpid());
    if (mkdir(D.c_str(), 0700) != 0 && errno != EEXIST)
      return std::string("/tmp");
    return D;
  }();
  return Dir;
}

unsigned cerb::nextScratchId() {
  static std::atomic<unsigned> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed);
}

void cerb::removeFiles(const std::string &A, const std::string &B) {
  std::remove(A.c_str());
  std::remove(B.c_str());
}
