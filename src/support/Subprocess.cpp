//===-- support/Subprocess.cpp --------------------------------------------===//

#include "support/Subprocess.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sys/wait.h>
#include <unistd.h>

using namespace cerb;

std::optional<std::string> cerb::captureCommand(const std::string &Cmd) {
  FILE *P = popen((Cmd + " 2>/dev/null").c_str(), "r");
  if (!P)
    return std::nullopt;
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof Buf, P)) > 0)
    Out.append(Buf, N);
  int Status = pclose(P);
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
    return std::nullopt;
  return Out;
}

const std::string &cerb::processScratchDir() {
  static const std::string Dir = [] {
    std::string D = "/tmp/cerb-scratch-" + std::to_string(getpid());
    std::string Cmd = "mkdir -p " + D;
    if (std::system(Cmd.c_str()) != 0)
      return std::string("/tmp");
    return D;
  }();
  return Dir;
}

unsigned cerb::nextScratchId() {
  static std::atomic<unsigned> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed);
}

void cerb::removeFiles(const std::string &A, const std::string &B) {
  std::remove(A.c_str());
  std::remove(B.c_str());
}
