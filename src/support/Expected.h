//===-- support/Expected.h - Error-or-value return type ---------*- C++ -*-===//
///
/// \file
/// A lightweight `Expected<T>` in the LLVM style: a function that can fail
/// returns either a T or a StaticError carrying a message, a source
/// location, and (where applicable) the ISO C11 clause the input violates —
/// the Cabs_to_Ail and typechecking passes "identify exactly what part of
/// the standard is violated" (§5.1). No exceptions are used anywhere.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_EXPECTED_H
#define CERB_SUPPORT_EXPECTED_H

#include "support/SourceLoc.h"

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace cerb {

/// A static (compile-time, in C terms: translation-time) error: an
/// ill-formed program, with the violated ISO clause when known.
struct StaticError {
  std::string Message;
  SourceLoc Loc;
  /// ISO C11 clause, e.g. "6.5.7p2"; empty if not a constraint violation.
  std::string IsoClause;

  std::string str() const {
    std::string Out = Loc.isValid() ? Loc.str() + ": " : std::string();
    Out += Message;
    if (!IsoClause.empty())
      Out += " [ISO C11 " + IsoClause + "]";
    return Out;
  }
};

/// Builds a StaticError (convenience for `return err(...)`).
inline StaticError err(std::string Message, SourceLoc Loc = SourceLoc(),
                       std::string IsoClause = std::string()) {
  return StaticError{std::move(Message), Loc, std::move(IsoClause)};
}

/// Value-or-error sum type. Check with `operator bool` before dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::in_place_index<0>, std::move(Value)) {}
  Expected(StaticError E) : Storage(std::in_place_index<1>, std::move(E)) {}

  explicit operator bool() const { return Storage.index() == 0; }

  T &operator*() {
    assert(*this && "dereferencing an error Expected");
    return std::get<0>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing an error Expected");
    return std::get<0>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const StaticError &error() const {
    assert(!*this && "taking error of a success Expected");
    return std::get<1>(Storage);
  }
  StaticError takeError() {
    assert(!*this && "taking error of a success Expected");
    return std::move(std::get<1>(Storage));
  }

private:
  std::variant<T, StaticError> Storage;
};

/// Expected<void> analogue.
class ExpectedVoid {
public:
  ExpectedVoid() = default;
  ExpectedVoid(StaticError E) : Err(std::move(E)), HasErr(true) {}

  explicit operator bool() const { return !HasErr; }
  const StaticError &error() const {
    assert(HasErr && "taking error of a success ExpectedVoid");
    return Err;
  }

private:
  StaticError Err;
  bool HasErr = false;
};

/// Propagates an error from an Expected expression; binds the value
/// otherwise. Usage: `CERB_TRY(Var, mayFail());`
#define CERB_TRY(Var, Expr)                                                    \
  auto Var##OrErr = (Expr);                                                    \
  if (!Var##OrErr)                                                             \
    return Var##OrErr.takeError();                                             \
  auto &Var = *Var##OrErr

/// Propagates an error from an Expected expression; assigns the value to an
/// existing variable otherwise.
#define CERB_TRY_ASSIGN(Var, Expr)                                            \
  do {                                                                         \
    auto CerbTryResult = (Expr);                                               \
    if (!CerbTryResult)                                                        \
      return CerbTryResult.takeError();                                        \
    (Var) = std::move(*CerbTryResult);                                         \
  } while (false)

/// Propagates an error from an ExpectedVoid/Expected expression, discarding
/// the value.
#define CERB_CHECK(Expr)                                                       \
  do {                                                                         \
    auto CerbCheckResult = (Expr);                                             \
    if (!CerbCheckResult)                                                      \
      return CerbCheckResult.error();                                          \
  } while (false)

} // namespace cerb

#endif // CERB_SUPPORT_EXPECTED_H
