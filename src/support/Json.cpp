//===-- support/Json.cpp --------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace cerb;
using namespace cerb::json;

const Value *Value::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

uint64_t Value::asU64(uint64_t Default) const {
  if (K != Kind::Number)
    return Default;
  if (IsInt)
    return IntNeg ? Default : IntMag;
  if (Num < 0)
    return Default;
  return static_cast<uint64_t>(Num);
}

int64_t Value::asI64(int64_t Default) const {
  if (K != Kind::Number)
    return Default;
  if (IsInt) {
    if (!IntNeg)
      return IntMag <= static_cast<uint64_t>(INT64_MAX)
                 ? static_cast<int64_t>(IntMag)
                 : Default;
    // INT64_MIN's magnitude is INT64_MAX + 1.
    return IntMag <= static_cast<uint64_t>(INT64_MAX) + 1
               ? static_cast<int64_t>(-IntMag)
               : Default;
  }
  return static_cast<int64_t>(Num);
}

double Value::asDouble(double Default) const {
  return K == Kind::Number ? Num : Default;
}

bool Value::asBool(bool Default) const {
  return K == Kind::Bool ? B : Default;
}

namespace {

class Parser {
public:
  Parser(std::string_view Text) : S(Text) {}

  std::optional<Value> run(std::string *Err) {
    std::optional<Value> V = value();
    skipWs();
    if (V && Pos != S.size()) {
      fail("trailing characters after document");
      V = std::nullopt;
    }
    if (!V && Err)
      *Err = Error;
    return V;
  }

private:
  std::string_view S;
  size_t Pos = 0;
  std::string Error;
  unsigned Depth = 0;
  /// Recursion bound: a recursive-descent parser fed a hostile frame like
  /// "[[[[..." would otherwise turn 2 bytes of input per level into a call
  /// frame and overflow the daemon's reader stack. Deeper documents are a
  /// parse error, not a crash; every document we emit is < 10 levels.
  static constexpr unsigned MaxDepth = 96;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = "json: " + Msg + " at offset " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (S.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> value() {
    skipWs();
    if (Pos >= S.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char C = S[Pos];
    if (C == '{' || C == '[') {
      if (Depth >= MaxDepth) {
        fail("nesting deeper than " + std::to_string(MaxDepth) + " levels");
        return std::nullopt;
      }
      ++Depth;
      std::optional<Value> V = C == '{' ? object() : array();
      --Depth;
      return V;
    }
    if (C == '"')
      return string();
    if (literal("true")) {
      Value V;
      V.K = Value::Kind::Bool;
      V.B = true;
      return V;
    }
    if (literal("false")) {
      Value V;
      V.K = Value::Kind::Bool;
      return V;
    }
    if (literal("null"))
      return Value();
    return number();
  }

  std::optional<Value> number() {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    if (Pos == Start) {
      fail("expected a value");
      return std::nullopt;
    }
    std::string Tok(S.substr(Start, Pos - Start));
    Value V;
    V.K = Value::Kind::Number;
    V.Num = std::strtod(Tok.c_str(), nullptr);
    // Integral literal that fits 64 bits: record it exactly (doubles round
    // above 2^53, losing serve-protocol ids/seeds/hashes).
    if (Tok.find_first_of(".eE") == std::string::npos) {
      size_t DigitsAt = Tok.find_first_not_of("+-");
      if (DigitsAt != std::string::npos) {
        errno = 0;
        char *End = nullptr;
        uint64_t Mag = std::strtoull(Tok.c_str() + DigitsAt, &End, 10);
        if (errno == 0 && End && *End == '\0') {
          V.IsInt = true;
          V.IntNeg = Tok[0] == '-';
          V.IntMag = Mag;
        }
      }
    }
    return V;
  }

  std::optional<Value> string() {
    ++Pos; // opening quote
    Value V;
    V.K = Value::Kind::String;
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C == '\\' && Pos < S.size()) {
        char E = S[Pos++];
        switch (E) {
        case 'n': V.Str += '\n'; break;
        case 'r': V.Str += '\r'; break;
        case 't': V.Str += '\t'; break;
        case 'u': {
          // Our serializers only emit \u00XX (control characters).
          unsigned Code = 0;
          if (Pos + 4 <= S.size()) {
            Code = static_cast<unsigned>(
                std::strtoul(std::string(S.substr(Pos, 4)).c_str(), nullptr,
                             16));
            Pos += 4;
          }
          V.Str += static_cast<char>(Code & 0xFF);
          break;
        }
        default: V.Str += E; break; // covers \" \\ \/
        }
      } else {
        V.Str += C;
      }
    }
    if (Pos >= S.size()) {
      fail("unterminated string");
      return std::nullopt;
    }
    ++Pos; // closing quote
    return V;
  }

  std::optional<Value> array() {
    ++Pos; // '['
    Value V;
    V.K = Value::Kind::Array;
    if (eat(']'))
      return V;
    while (true) {
      std::optional<Value> Elem = value();
      if (!Elem)
        return std::nullopt;
      V.Arr.push_back(std::move(*Elem));
      if (eat(','))
        continue;
      if (eat(']'))
        return V;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<Value> object() {
    ++Pos; // '{'
    Value V;
    V.K = Value::Kind::Object;
    if (eat('}'))
      return V;
    while (true) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"') {
        fail("expected a member name");
        return std::nullopt;
      }
      std::optional<Value> Name = string();
      if (!Name)
        return std::nullopt;
      if (!eat(':')) {
        fail("expected ':' after member name");
        return std::nullopt;
      }
      std::optional<Value> Member = value();
      if (!Member)
        return std::nullopt;
      V.Obj.emplace_back(std::move(Name->Str), std::move(*Member));
      if (eat(','))
        continue;
      if (eat('}'))
        return V;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }
};

} // namespace

std::optional<Value> cerb::json::parse(std::string_view Text,
                                       std::string *Err) {
  return Parser(Text).run(Err);
}
