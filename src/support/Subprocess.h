//===-- support/Subprocess.h - Shell-out helpers ----------------*- C++ -*-===//
///
/// \file
/// Small helpers for shelling out to host tools (extracted from the csmith
/// differential harness so the fuzz campaign and any future oracle can share
/// them). All helpers are safe to call concurrently from ThreadPool workers:
/// the scratch-name counter is atomic and the per-process scratch directory
/// is created exactly once.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_SUBPROCESS_H
#define CERB_SUPPORT_SUBPROCESS_H

#include <optional>
#include <string>

namespace cerb {

/// Runs a shell command (stderr discarded), capturing stdout; nullopt when
/// the command exits nonzero or dies on a signal.
std::optional<std::string> captureCommand(const std::string &Cmd);

/// A per-process scratch directory under /tmp (created on first use; falls
/// back to "/tmp" if creation fails).
const std::string &processScratchDir();

/// Process-wide unique id for scratch file names (atomic).
unsigned nextScratchId();

/// Removes a list of scratch files (best effort).
void removeFiles(const std::string &A, const std::string &B);

} // namespace cerb

#endif // CERB_SUPPORT_SUBPROCESS_H
