//===-- support/Subprocess.h - Shell-out helpers ----------------*- C++ -*-===//
///
/// \file
/// Small helpers for shelling out to host tools (extracted from the csmith
/// differential harness so the fuzz campaign and any future oracle can share
/// them). All helpers are safe to call concurrently from ThreadPool workers:
/// the scratch-name counter is atomic and the per-process scratch directory
/// is created exactly once.
///
/// captureCommand forks `/bin/sh -c`, captures stdout through a pipe, and
/// enforces an optional wall-clock timeout natively: on expiry the child is
/// SIGKILLed *and reaped* (waitpid), and the pipe descriptor is closed on
/// every exit path — a campaign that times out thousands of host runs must
/// neither accumulate zombies nor exhaust file descriptors
/// (tests/test_support.cpp pins this with a spawn-and-time-out loop).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SUPPORT_SUBPROCESS_H
#define CERB_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <optional>
#include <string>

namespace cerb {

/// Runs a shell command (stderr discarded), capturing stdout; nullopt when
/// the command exits nonzero, dies on a signal, or exceeds \p TimeoutMs
/// (0 = no timeout). \p TimedOut (optional) reports whether the timeout
/// path fired — the child was killed and reaped.
std::optional<std::string> captureCommand(const std::string &Cmd,
                                          uint64_t TimeoutMs = 0,
                                          bool *TimedOut = nullptr);

/// A per-process scratch directory under /tmp (created on first use; falls
/// back to "/tmp" if creation fails).
const std::string &processScratchDir();

/// Process-wide unique id for scratch file names (atomic).
unsigned nextScratchId();

/// Removes a list of scratch files (best effort).
void removeFiles(const std::string &A, const std::string &B);

} // namespace cerb

#endif // CERB_SUPPORT_SUBPROCESS_H
