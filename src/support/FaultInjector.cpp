//===-- support/FaultInjector.cpp -----------------------------------------===//

#include "support/FaultInjector.h"

#include "trace/Trace.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

using namespace cerb;
using namespace cerb::fault;

std::atomic<bool> cerb::fault::detail::Armed{false};

namespace {

trace::Counter &cntShots() {
  static trace::Counter C("fault.shots");
  return C;
}

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t fnv1a(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

struct ErrnoNames {
  const char *Name;
  int Value;
};

// The errnos fault schedules actually want to deliver; anything else can be
// given numerically.
constexpr ErrnoNames KnownErrnos[] = {
    {"EIO", EIO},         {"EINTR", EINTR},   {"ECONNRESET", ECONNRESET},
    {"EPIPE", EPIPE},     {"ENOSPC", ENOSPC}, {"EAGAIN", EAGAIN},
    {"ETIMEDOUT", ETIMEDOUT}, {"ENOMEM", ENOMEM}, {"EBADF", EBADF},
};

std::string formatDouble(double P) {
  // Shortest representation that round-trips through strtod, so
  // describe() prints `p=0.05` for 0.05 rather than its 17-digit binary
  // expansion (and re-arming from the string reproduces the schedule).
  char Buf[40];
  for (int Prec = 1; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof Buf, "%.*g", Prec, P);
    if (std::strtod(Buf, nullptr) == P)
      break;
  }
  return Buf;
}

} // namespace

struct Injector::Impl {
  mutable std::mutex Mu;
  uint64_t Seed = 0;
  std::vector<FaultSpec> Specs;

  struct SiteState {
    uint64_t Hits = 0;
    uint64_t Shots = 0;
  };
  std::unordered_map<std::string, SiteState> Sites;
  /// Per-spec firing totals (for MaxShots), parallel to Specs.
  std::vector<uint64_t> SpecShots;
};

Injector &Injector::instance() {
  static Injector I;
  return I;
}

Injector::Impl &Injector::impl() const {
  static Impl I;
  return I;
}

void Injector::arm(uint64_t Seed, std::vector<FaultSpec> Specs) {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.Mu);
  I.Seed = Seed;
  I.Specs = std::move(Specs);
  I.Sites.clear();
  I.SpecShots.assign(I.Specs.size(), 0);
  detail::Armed.store(true, std::memory_order_relaxed);
}

void Injector::disarm() {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.Mu);
  detail::Armed.store(false, std::memory_order_relaxed);
  I.Specs.clear();
  I.Sites.clear();
  I.SpecShots.clear();
}

bool Injector::shouldFailSlow(std::string_view Site, int *OutErrno) {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.Mu);
  if (I.Specs.empty())
    return false;
  Impl::SiteState &St = I.Sites[std::string(Site)];
  uint64_t Idx = ++St.Hits; // 1-based hit index at this site
  for (size_t SI = 0; SI < I.Specs.size(); ++SI) {
    const FaultSpec &Sp = I.Specs[SI];
    if (Sp.Site != Site || I.SpecShots[SI] >= Sp.MaxShots)
      continue;
    bool Fire = false;
    if (Sp.Nth && Idx == Sp.Nth)
      Fire = true;
    if (!Fire && Sp.Every && Idx % Sp.Every == 0)
      Fire = true;
    if (!Fire && Sp.Probability > 0) {
      // Pure function of (seed, site, hit index): reproducible from the
      // seed no matter how threads interleave between sites.
      uint64_t U = splitmix64(I.Seed ^ fnv1a(Site) ^ (Idx * 0x9e3779b9ull));
      double Unit = static_cast<double>(U >> 11) * (1.0 / 9007199254740992.0);
      Fire = Unit < Sp.Probability;
    }
    if (Fire) {
      ++I.SpecShots[SI];
      ++St.Shots;
      cntShots().add();
      if (OutErrno)
        *OutErrno = Sp.Err;
      return true;
    }
  }
  return false;
}

uint64_t Injector::hits(std::string_view Site) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.Mu);
  auto It = I.Sites.find(std::string(Site));
  return It == I.Sites.end() ? 0 : It->second.Hits;
}

uint64_t Injector::shots(std::string_view Site) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.Mu);
  auto It = I.Sites.find(std::string(Site));
  return It == I.Sites.end() ? 0 : It->second.Shots;
}

uint64_t Injector::totalShots() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.Mu);
  uint64_t N = 0;
  for (const auto &[Site, St] : I.Sites)
    N += St.Shots;
  return N;
}

uint64_t Injector::seed() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.Mu);
  return I.Seed;
}

int Injector::errnoByName(std::string_view Name) {
  for (const ErrnoNames &E : KnownErrnos)
    if (Name == E.Name)
      return E.Value;
  if (!Name.empty() && Name.find_first_not_of("0123456789") ==
                           std::string_view::npos)
    return std::atoi(std::string(Name).c_str());
  return -1;
}

const char *Injector::errnoName(int Err) {
  for (const ErrnoNames &E : KnownErrnos)
    if (Err == E.Value)
      return E.Name;
  return "";
}

std::string Injector::describe() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.Mu);
  if (I.Specs.empty())
    return "";
  std::string Out = "seed=" + std::to_string(I.Seed);
  for (const FaultSpec &Sp : I.Specs) {
    Out += ";" + Sp.Site;
    if (Sp.Probability > 0)
      Out += ",p=" + formatDouble(Sp.Probability);
    if (Sp.Nth)
      Out += ",nth=" + std::to_string(Sp.Nth);
    if (Sp.Every)
      Out += ",every=" + std::to_string(Sp.Every);
    if (Sp.MaxShots != UINT64_MAX)
      Out += ",max=" + std::to_string(Sp.MaxShots);
    const char *EN = errnoName(Sp.Err);
    Out += std::string(",errno=") +
           (*EN ? std::string(EN) : std::to_string(Sp.Err));
  }
  return Out;
}

ExpectedVoid Injector::armFromSpec(const std::string &Spec) {
  uint64_t Seed = 1;
  std::vector<FaultSpec> Specs;

  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Semi = Spec.find(';', Pos);
    if (Semi == std::string::npos)
      Semi = Spec.size();
    std::string Clause = Spec.substr(Pos, Semi - Pos);
    Pos = Semi + 1;
    if (Clause.empty())
      continue;

    if (Clause.rfind("seed=", 0) == 0) {
      char *End = nullptr;
      Seed = std::strtoull(Clause.c_str() + 5, &End, 0);
      if (!End || *End != '\0' || Clause.size() == 5)
        return err("faults: bad seed '" + Clause.substr(5) + "'");
      continue;
    }

    // site[,k=v]* — the site name is the first comma field.
    FaultSpec Sp;
    size_t Comma = Clause.find(',');
    Sp.Site = Clause.substr(0, Comma);
    if (Sp.Site.empty() || Sp.Site.find('=') != std::string::npos)
      return err("faults: clause '" + Clause +
                 "' does not start with a site name");
    bool AnyTrigger = false;
    while (Comma != std::string::npos) {
      size_t Next = Clause.find(',', Comma + 1);
      std::string KV = Clause.substr(
          Comma + 1, (Next == std::string::npos ? Clause.size() : Next) -
                         Comma - 1);
      Comma = Next;
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos)
        return err("faults: expected key=value, got '" + KV + "'");
      std::string K = KV.substr(0, Eq), V = KV.substr(Eq + 1);
      if (K == "p") {
        Sp.Probability = std::strtod(V.c_str(), nullptr);
        if (Sp.Probability < 0 || Sp.Probability > 1)
          return err("faults: p=" + V + " out of [0,1]");
        AnyTrigger = true;
      } else if (K == "nth") {
        Sp.Nth = std::strtoull(V.c_str(), nullptr, 0);
        AnyTrigger = true;
      } else if (K == "every") {
        Sp.Every = std::strtoull(V.c_str(), nullptr, 0);
        AnyTrigger = true;
      } else if (K == "max") {
        Sp.MaxShots = std::strtoull(V.c_str(), nullptr, 0);
      } else if (K == "errno") {
        int E = errnoByName(V);
        if (E < 0)
          return err("faults: unknown errno '" + V + "'");
        Sp.Err = E;
      } else {
        return err("faults: unknown key '" + K + "' (p|nth|every|max|errno)");
      }
    }
    if (!AnyTrigger)
      Sp.Probability = 1.0; // bare site name: fire on every hit
    Specs.push_back(std::move(Sp));
  }
  if (Specs.empty())
    return err("faults: spec names no fault site");
  arm(Seed, std::move(Specs));
  return ExpectedVoid();
}

bool Injector::armFromEnv() {
  const char *Env = std::getenv("CERB_FAULTS");
  if (!Env || !*Env)
    return false;
  auto R = armFromSpec(Env);
  if (!R) {
    std::fprintf(stderr, "CERB_FAULTS ignored: %s\n", R.error().Message.c_str());
    return false;
  }
  return true;
}
