//===-- support/ThreadPool.cpp --------------------------------------------===//

#include "support/ThreadPool.h"

#include "trace/Trace.h"

#include <algorithm>
#include <cstdio>

using namespace cerb;

ThreadPool::ThreadPool(unsigned ThreadCount) {
  ThreadCount = std::max(1u, ThreadCount);
  Queues.resize(ThreadCount);
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> L(M);
    Stop = true;
  }
  CV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::enqueueLocked(Item I) {
  Queues[NextQueue].push_back(std::move(I));
  NextQueue = (NextQueue + 1) % Queues.size();
  ++Pending;
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> L(M);
    enqueueLocked(Item{std::move(Task), nullptr});
  }
  CV.notify_one();
}

void ThreadPool::submit(TaskGroup &Group, std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> L(M);
    ++Group.Pending;
    enqueueLocked(Item{std::move(Task), &Group});
  }
  CV.notify_one();
  // A helper may be asleep in wait(Group) with every group task running;
  // this new queued task is work it can pick up.
  DoneCV.notify_all();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(M);
  DoneCV.wait(L, [this] { return Pending == 0; });
}

void ThreadPool::wait(TaskGroup &Group) {
  std::unique_lock<std::mutex> L(M);
  while (Group.Pending > 0) {
    Item I;
    if (takeGroupLocked(Group, I)) {
      runItem(I, L);
      continue;
    }
    // Every remaining group task is running on some worker; sleep until a
    // completion (or a new group submission) changes the picture.
    DoneCV.wait(L);
  }
}

uint64_t ThreadPool::stealCount() const {
  std::lock_guard<std::mutex> L(M);
  return Steals;
}

bool ThreadPool::takeLocked(unsigned Me, Item &Out) {
  if (!Queues[Me].empty()) {
    Out = std::move(Queues[Me].back());
    Queues[Me].pop_back();
    return true;
  }
  for (size_t Off = 1; Off < Queues.size(); ++Off) {
    auto &Victim = Queues[(Me + Off) % Queues.size()];
    if (!Victim.empty()) {
      Out = std::move(Victim.front());
      Victim.pop_front();
      ++Steals;
      return true;
    }
  }
  return false;
}

bool ThreadPool::takeGroupLocked(TaskGroup &Group, Item &Out) {
  for (auto &Q : Queues)
    for (auto It = Q.rbegin(); It != Q.rend(); ++It)
      if (It->Group == &Group) {
        Out = std::move(*It);
        Q.erase(std::next(It).base());
        return true;
      }
  return false;
}

void ThreadPool::runItem(Item &I, std::unique_lock<std::mutex> &L) {
  L.unlock();
  I.Fn();
  I.Fn = nullptr; // release captures before re-locking
  L.lock();
  --Pending;
  if (I.Group)
    --I.Group->Pending;
  // Every completion wakes wait()ers and group helpers; they re-check their
  // own predicate (a helper may also find newly queued group work to run).
  DoneCV.notify_all();
}

void ThreadPool::workerLoop(unsigned Me) {
  char Name[16];
  std::snprintf(Name, sizeof Name, "pool-%u", Me);
  trace::setCurrentThreadName(Name);
  std::unique_lock<std::mutex> L(M);
  for (;;) {
    Item I;
    if (takeLocked(Me, I)) {
      runItem(I, L);
      continue;
    }
    if (Stop)
      return;
    CV.wait(L);
  }
}
