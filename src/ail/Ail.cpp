//===-- ail/Ail.cpp -------------------------------------------------------===//

#include "ail/Ail.h"

using namespace cerb;
using namespace cerb::ail;

AilExprPtr cerb::ail::makeAilExpr(AilExprKind K, SourceLoc Loc) {
  auto E = std::make_unique<AilExpr>();
  E->Kind = K;
  E->Loc = Loc;
  return E;
}

AilStmtPtr cerb::ail::makeAilStmt(AilStmtKind K, SourceLoc Loc) {
  auto S = std::make_unique<AilStmt>();
  S->Kind = K;
  S->Loc = Loc;
  return S;
}
