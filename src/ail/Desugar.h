//===-- ail/Desugar.h - Cabs_to_Ail desugaring pass -------------*- C++ -*-===//
///
/// \file
/// The Cabs_to_Ail pass of the paper (§5.1): identifier scoping (linkage,
/// storage classes, namespaces, identifier kinds), function prototypes and
/// definitions, normalisation of syntactic C types into canonical forms,
/// string literals (implicitly allocated objects), enums (replaced by
/// integers), and desugaring of `for` and `do-while` loops into `while`.
/// On failure it identifies exactly what part of the standard is violated.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_AIL_DESUGAR_H
#define CERB_AIL_DESUGAR_H

#include "ail/Ail.h"
#include "cabs/Cabs.h"
#include "support/Expected.h"

namespace cerb::ail {

/// Desugars a parsed translation unit into an Ail program. The standard
/// library builtins (printf, malloc, ...) are declared implicitly.
Expected<AilProgram> desugar(const cabs::CabsTranslationUnit &Unit);

/// Decodes an integer-constant spelling (e.g. "0x1fUL") into its value and
/// C type per the ladder of ISO 6.4.4.1p5.
Expected<std::pair<Int128, CType>> decodeIntConst(std::string_view Spelling,
                                                  SourceLoc Loc);

} // namespace cerb::ail

#endif // CERB_AIL_DESUGAR_H
