//===-- ail/CType.cpp -----------------------------------------------------===//

#include "ail/CType.h"

#include <algorithm>

using namespace cerb;
using namespace cerb::ail;

std::string_view cerb::ail::intKindName(IntKind K) {
  switch (K) {
  case IntKind::Bool:
    return "_Bool";
  case IntKind::Char:
    return "char";
  case IntKind::SChar:
    return "signed char";
  case IntKind::UChar:
    return "unsigned char";
  case IntKind::Short:
    return "short";
  case IntKind::UShort:
    return "unsigned short";
  case IntKind::Int:
    return "int";
  case IntKind::UInt:
    return "unsigned int";
  case IntKind::Long:
    return "long";
  case IntKind::ULong:
    return "unsigned long";
  case IntKind::LongLong:
    return "long long";
  case IntKind::ULongLong:
    return "unsigned long long";
  }
  return "<bad-int-kind>";
}

bool cerb::ail::isUnsignedKind(IntKind K) {
  switch (K) {
  case IntKind::Bool:
  case IntKind::UChar:
  case IntKind::UShort:
  case IntKind::UInt:
  case IntKind::ULong:
  case IntKind::ULongLong:
    return true;
  case IntKind::Char:
    return false; // plain char is signed in our ImplEnv
  case IntKind::SChar:
  case IntKind::Short:
  case IntKind::Int:
  case IntKind::Long:
  case IntKind::LongLong:
    return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// CType
//===----------------------------------------------------------------------===//

std::vector<CType> CType::paramTypes() const {
  assert(isFunction() && "paramTypes() on non-function");
  std::vector<CType> Out;
  Out.reserve(Node->Params.size());
  for (const auto &P : Node->Params)
    Out.push_back(CType(P));
  return Out;
}

bool cerb::ail::operator==(const CType &A, const CType &B) {
  if (A.Node == B.Node)
    return true;
  if (!A.isValid() || !B.isValid())
    return A.isValid() == B.isValid();
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case CTypeKind::Void:
    return true;
  case CTypeKind::Integer:
    return A.intKind() == B.intKind();
  case CTypeKind::Pointer:
    return A.pointee() == B.pointee();
  case CTypeKind::Array:
    return A.arraySize() == B.arraySize() && A.element() == B.element();
  case CTypeKind::Function: {
    if (A.returnType() != B.returnType() || A.isVariadic() != B.isVariadic())
      return false;
    auto PA = A.paramTypes(), PB = B.paramTypes();
    return PA.size() == PB.size() && std::equal(PA.begin(), PA.end(),
                                                PB.begin());
  }
  case CTypeKind::Struct:
  case CTypeKind::Union:
    return A.tag() == B.tag();
  }
  return false;
}

std::string CType::str() const {
  if (!isValid())
    return "<invalid-type>";
  switch (kind()) {
  case CTypeKind::Void:
    return "void";
  case CTypeKind::Integer:
    return std::string(intKindName(intKind()));
  case CTypeKind::Pointer:
    return pointee().str() + "*";
  case CTypeKind::Array:
    return element().str() +
           (arraySize() ? fmt("[{0}]", *arraySize()) : std::string("[]"));
  case CTypeKind::Function: {
    std::vector<std::string> Parts;
    for (const CType &P : paramTypes())
      Parts.push_back(P.str());
    if (isVariadic())
      Parts.push_back("...");
    return returnType().str() + "(" + join(Parts, ", ") + ")";
  }
  case CTypeKind::Struct:
    return fmt("struct#{0}", tag());
  case CTypeKind::Union:
    return fmt("union#{0}", tag());
  }
  return "<bad-type>";
}

static CType wrap(CTypeNode Node) {
  return CType(std::make_shared<const CTypeNode>(std::move(Node)));
}

CType CType::makeVoid() {
  CTypeNode N;
  N.Kind = CTypeKind::Void;
  return wrap(std::move(N));
}

CType CType::makeInteger(IntKind K) {
  CTypeNode N;
  N.Kind = CTypeKind::Integer;
  N.Int = K;
  return wrap(std::move(N));
}

CType CType::makePointer(CType Pointee) {
  assert(Pointee.isValid() && "pointer to invalid type");
  CTypeNode N;
  N.Kind = CTypeKind::Pointer;
  N.Inner = Pointee.Node;
  return wrap(std::move(N));
}

CType CType::makeArray(CType Elem, std::optional<uint64_t> Size) {
  assert(Elem.isValid() && "array of invalid type");
  CTypeNode N;
  N.Kind = CTypeKind::Array;
  N.Inner = Elem.Node;
  N.ArraySize = Size;
  return wrap(std::move(N));
}

CType CType::makeFunction(CType Ret, std::vector<CType> Params,
                          bool Variadic) {
  assert(Ret.isValid() && "function returning invalid type");
  CTypeNode N;
  N.Kind = CTypeKind::Function;
  N.Inner = Ret.Node;
  for (const CType &P : Params) {
    assert(P.isValid() && "invalid parameter type");
    N.Params.push_back(P.Node);
  }
  N.Variadic = Variadic;
  return wrap(std::move(N));
}

CType CType::makeStruct(unsigned Tag) {
  CTypeNode N;
  N.Kind = CTypeKind::Struct;
  N.Tag = Tag;
  return wrap(std::move(N));
}

CType CType::makeUnion(unsigned Tag) {
  CTypeNode N;
  N.Kind = CTypeKind::Union;
  N.Tag = Tag;
  return wrap(std::move(N));
}

//===----------------------------------------------------------------------===//
// TagTable
//===----------------------------------------------------------------------===//

std::optional<size_t> TagDef::memberIndex(std::string_view MemberName) const {
  for (size_t I = 0; I != Members.size(); ++I)
    if (Members[I].Name == MemberName)
      return I;
  return std::nullopt;
}

unsigned TagTable::createTag(bool IsUnion, std::string Name) {
  TagDef D;
  D.IsUnion = IsUnion;
  D.Name = std::move(Name);
  Defs.push_back(std::move(D));
  return static_cast<unsigned>(Defs.size() - 1);
}

void TagTable::complete(unsigned Tag, std::vector<TagMember> Members) {
  TagDef &D = get(Tag);
  assert(!D.Complete && "completing an already-complete tag");
  D.Members = std::move(Members);
  D.Complete = true;
}

const TagDef &TagTable::get(unsigned Tag) const {
  assert(Tag < Defs.size() && "tag id out of range");
  return Defs[Tag];
}

TagDef &TagTable::get(unsigned Tag) {
  assert(Tag < Defs.size() && "tag id out of range");
  return Defs[Tag];
}

//===----------------------------------------------------------------------===//
// ImplEnv
//===----------------------------------------------------------------------===//

unsigned ImplEnv::widthOf(IntKind K) const {
  switch (K) {
  case IntKind::Bool:
    return 8; // storage width; value range is {0,1}
  case IntKind::Char:
  case IntKind::SChar:
  case IntKind::UChar:
    return 8;
  case IntKind::Short:
  case IntKind::UShort:
    return 16;
  case IntKind::Int:
  case IntKind::UInt:
    return 32;
  case IntKind::Long:
  case IntKind::ULong:
  case IntKind::LongLong:
  case IntKind::ULongLong:
    return 64;
  }
  return 0;
}

Int128 ImplEnv::minOf(IntKind K) const {
  if (isUnsignedKind(K))
    return 0;
  unsigned W = widthOf(K);
  return -(Int128(1) << (W - 1));
}

Int128 ImplEnv::maxOf(IntKind K) const {
  if (K == IntKind::Bool)
    return 1;
  unsigned W = widthOf(K);
  if (isUnsignedKind(K))
    return (Int128(1) << W) - 1;
  return (Int128(1) << (W - 1)) - 1;
}

bool ImplEnv::inRange(IntKind K, Int128 V) const {
  return V >= minOf(K) && V <= maxOf(K);
}

Int128 ImplEnv::wrapUnsigned(IntKind K, Int128 V) const {
  assert(isUnsignedKind(K) && "wrapUnsigned on signed kind");
  if (K == IntKind::Bool)
    return V != 0 ? 1 : 0;
  UInt128 Mask = (UInt128(1) << widthOf(K)) - 1;
  return static_cast<Int128>(static_cast<UInt128>(V) & Mask);
}

Int128 ImplEnv::convert(IntKind K, Int128 V) const {
  if (K == IntKind::Bool)
    return V != 0 ? 1 : 0;
  if (inRange(K, V))
    return V;
  if (isUnsignedKind(K))
    return wrapUnsigned(K, V);
  // Out-of-range signed conversion: implementation-defined (6.3.1.3p3).
  // We choose twos-complement wrapping, as all mainstream implementations do.
  unsigned W = widthOf(K);
  UInt128 Mask = (UInt128(1) << W) - 1;
  UInt128 U = static_cast<UInt128>(V) & Mask;
  if (U >= (UInt128(1) << (W - 1)))
    return static_cast<Int128>(U) - (Int128(1) << W);
  return static_cast<Int128>(U);
}

uint64_t ImplEnv::sizeOf(const CType &Ty) const {
  assert(Ty.isValid() && "sizeOf invalid type");
  switch (Ty.kind()) {
  case CTypeKind::Void:
    return 1; // GCC extension; used only for void* arithmetic guards
  case CTypeKind::Integer:
    return widthOf(Ty.intKind()) / 8;
  case CTypeKind::Pointer:
    return 8;
  case CTypeKind::Array: {
    assert(Ty.arraySize() && "sizeOf incomplete array");
    return *Ty.arraySize() * sizeOf(Ty.element());
  }
  case CTypeKind::Function:
    assert(false && "sizeOf function type");
    return 1;
  case CTypeKind::Struct: {
    const TagDef &D = Tags.get(Ty.tag());
    assert(D.Complete && "sizeOf incomplete struct");
    if (D.Members.empty())
      return 1; // empty structs are a GNU extension with size 0; avoid 0
    uint64_t Off = 0, MaxAlign = 1;
    for (const TagMember &M : D.Members) {
      uint64_t A = alignOf(M.Ty);
      MaxAlign = std::max(MaxAlign, A);
      Off = (Off + A - 1) / A * A;
      Off += sizeOf(M.Ty);
    }
    return (Off + MaxAlign - 1) / MaxAlign * MaxAlign;
  }
  case CTypeKind::Union: {
    const TagDef &D = Tags.get(Ty.tag());
    assert(D.Complete && "sizeOf incomplete union");
    uint64_t Size = 0, MaxAlign = 1;
    for (const TagMember &M : D.Members) {
      Size = std::max(Size, sizeOf(M.Ty));
      MaxAlign = std::max(MaxAlign, alignOf(M.Ty));
    }
    if (Size == 0)
      return 1;
    return (Size + MaxAlign - 1) / MaxAlign * MaxAlign;
  }
  }
  return 1;
}

uint64_t ImplEnv::alignOf(const CType &Ty) const {
  assert(Ty.isValid() && "alignOf invalid type");
  switch (Ty.kind()) {
  case CTypeKind::Void:
    return 1;
  case CTypeKind::Integer:
    return widthOf(Ty.intKind()) / 8;
  case CTypeKind::Pointer:
    return 8;
  case CTypeKind::Array:
    return alignOf(Ty.element());
  case CTypeKind::Function:
    return 1;
  case CTypeKind::Struct:
  case CTypeKind::Union: {
    const TagDef &D = Tags.get(Ty.tag());
    uint64_t MaxAlign = 1;
    for (const TagMember &M : D.Members)
      MaxAlign = std::max(MaxAlign, alignOf(M.Ty));
    return MaxAlign;
  }
  }
  return 1;
}

uint64_t ImplEnv::offsetOf(unsigned Tag, size_t MemberIdx) const {
  const TagDef &D = Tags.get(Tag);
  assert(MemberIdx < D.Members.size() && "offsetOf member out of range");
  if (D.IsUnion)
    return 0;
  uint64_t Off = 0;
  for (size_t I = 0; I <= MemberIdx; ++I) {
    uint64_t A = alignOf(D.Members[I].Ty);
    Off = (Off + A - 1) / A * A;
    if (I == MemberIdx)
      return Off;
    Off += sizeOf(D.Members[I].Ty);
  }
  return Off;
}
