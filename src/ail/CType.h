//===-- ail/CType.h - Canonical C types -------------------------*- C++ -*-===//
///
/// \file
/// Canonical C type representation used from the Ail AST onward (the
/// Cabs_to_Ail pass performs "normalisation of syntactic C types into
/// canonical forms", §5.1). A CType is an immutable shared tree; struct and
/// union bodies live in a separate TagTable keyed by tag symbol, so types
/// can be compared structurally and recursion through pointers is free.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_AIL_CTYPE_H
#define CERB_AIL_CTYPE_H

#include "support/Expected.h"
#include "support/Format.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cerb::ail {

/// The standard integer types of our fragment (ISO 6.2.5). Enums are
/// desugared to Int; fixed-width typedef names resolve to these.
enum class IntKind {
  Bool,
  Char, // "plain" char; signedness is implementation-defined (signed here)
  SChar,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  LongLong,
  ULongLong,
};

/// Returns the ISO spelling, e.g. "unsigned long long".
std::string_view intKindName(IntKind K);

/// True for the unsigned kinds (and _Bool).
bool isUnsignedKind(IntKind K);

/// The alternatives of a canonical C type.
enum class CTypeKind {
  Void,
  Integer,  ///< IntKind
  Pointer,  ///< pointee
  Array,    ///< element type + optional constant size
  Function, ///< return type + parameter types + variadic flag
  Struct,   ///< tag id into TagTable
  Union,    ///< tag id into TagTable
};

class CType;

/// Internal node. Users hold CType handles.
struct CTypeNode {
  CTypeKind Kind;
  IntKind Int = IntKind::Int;                // Integer
  std::shared_ptr<const CTypeNode> Inner;    // Pointer pointee / Array elem /
                                             // Function return
  std::optional<uint64_t> ArraySize;         // Array ([] if absent)
  std::vector<std::shared_ptr<const CTypeNode>> Params; // Function
  bool Variadic = false;                     // Function
  unsigned Tag = 0;                          // Struct/Union tag id
};

/// Value-semantics handle to an immutable canonical C type.
class CType {
public:
  CType() = default; // "null" type; isValid() is false

  bool isValid() const { return Node != nullptr; }
  CTypeKind kind() const { return Node->Kind; }

  bool isVoid() const { return isValid() && Node->Kind == CTypeKind::Void; }
  bool isInteger() const {
    return isValid() && Node->Kind == CTypeKind::Integer;
  }
  bool isPointer() const {
    return isValid() && Node->Kind == CTypeKind::Pointer;
  }
  bool isArray() const { return isValid() && Node->Kind == CTypeKind::Array; }
  bool isFunction() const {
    return isValid() && Node->Kind == CTypeKind::Function;
  }
  bool isStruct() const { return isValid() && Node->Kind == CTypeKind::Struct; }
  bool isUnion() const { return isValid() && Node->Kind == CTypeKind::Union; }
  bool isStructOrUnion() const { return isStruct() || isUnion(); }
  /// Scalar = arithmetic or pointer (ISO 6.2.5p21; no floats in fragment).
  bool isScalar() const { return isInteger() || isPointer(); }
  /// Object type: anything but function (incomplete types handled by layout).
  bool isObject() const { return isValid() && !isFunction(); }

  IntKind intKind() const {
    assert(isInteger() && "intKind() on non-integer type");
    return Node->Int;
  }
  bool isUnsigned() const { return isInteger() && isUnsignedKind(intKind()); }
  bool isSigned() const { return isInteger() && !isUnsignedKind(intKind()); }
  bool isBool() const { return isInteger() && intKind() == IntKind::Bool; }
  /// Any of the three char types (for the "character type" escape hatches).
  bool isCharacter() const {
    return isInteger() && (intKind() == IntKind::Char ||
                           intKind() == IntKind::SChar ||
                           intKind() == IntKind::UChar);
  }

  CType pointee() const {
    assert(isPointer() && "pointee() on non-pointer");
    return CType(Node->Inner);
  }
  CType element() const {
    assert(isArray() && "element() on non-array");
    return CType(Node->Inner);
  }
  std::optional<uint64_t> arraySize() const {
    assert(isArray() && "arraySize() on non-array");
    return Node->ArraySize;
  }
  CType returnType() const {
    assert(isFunction() && "returnType() on non-function");
    return CType(Node->Inner);
  }
  std::vector<CType> paramTypes() const;
  bool isVariadic() const {
    assert(isFunction() && "isVariadic() on non-function");
    return Node->Variadic;
  }
  unsigned tag() const {
    assert(isStructOrUnion() && "tag() on non-struct/union");
    return Node->Tag;
  }

  /// Structural equality (tags compare by id).
  friend bool operator==(const CType &A, const CType &B);
  friend bool operator!=(const CType &A, const CType &B) { return !(A == B); }

  /// C-like rendering, e.g. "int*", "struct s", "int[4]".
  std::string str() const;

  //===------------------------------------------------------------------===//
  // Factories
  //===------------------------------------------------------------------===//
  static CType makeVoid();
  static CType makeInteger(IntKind K);
  static CType makePointer(CType Pointee);
  static CType makeArray(CType Elem, std::optional<uint64_t> Size);
  static CType makeFunction(CType Ret, std::vector<CType> Params,
                            bool Variadic);
  static CType makeStruct(unsigned Tag);
  static CType makeUnion(unsigned Tag);

  // Common shorthands.
  static CType intTy() { return makeInteger(IntKind::Int); }
  static CType uintTy() { return makeInteger(IntKind::UInt); }
  static CType charTy() { return makeInteger(IntKind::Char); }
  static CType boolTy() { return makeInteger(IntKind::Bool); }
  static CType sizeTy() { return makeInteger(IntKind::ULong); }
  static CType ptrdiffTy() { return makeInteger(IntKind::Long); }
  static CType uintptrTy() { return makeInteger(IntKind::ULong); }
  static CType charPtrTy() { return makePointer(charTy()); }
  static CType voidPtrTy() { return makePointer(makeVoid()); }

  /// Internal: wraps an existing node (used by the factories).
  explicit CType(std::shared_ptr<const CTypeNode> Node)
      : Node(std::move(Node)) {}

private:
  std::shared_ptr<const CTypeNode> Node;
};

bool operator==(const CType &A, const CType &B);

/// One member of a struct or union definition.
struct TagMember {
  std::string Name;
  CType Ty;
};

/// A struct or union definition.
struct TagDef {
  bool IsUnion = false;
  std::string Name; ///< source tag name; may be synthesised for anonymous
  std::vector<TagMember> Members;
  bool Complete = false; ///< false while only forward-declared

  /// Index of \p Name in Members, or nullopt.
  std::optional<size_t> memberIndex(std::string_view MemberName) const;
};

/// All struct/union definitions of a translation unit, keyed by tag id.
class TagTable {
public:
  /// Creates a new (incomplete) tag; returns its id.
  unsigned createTag(bool IsUnion, std::string Name);
  /// Completes \p Tag with \p Members.
  void complete(unsigned Tag, std::vector<TagMember> Members);

  const TagDef &get(unsigned Tag) const;
  TagDef &get(unsigned Tag);
  size_t size() const { return Defs.size(); }

private:
  std::vector<TagDef> Defs;
};

//===----------------------------------------------------------------------===//
// Implementation-defined environment (ISO 6.2.6, J.3)
//===----------------------------------------------------------------------===//

/// The implementation-defined parameters our semantics is instantiated at:
/// a conventional LP64, twos-complement, 8-bit-byte platform — the paper's
/// "mainstream hardware" assumption (§1 Problem 1). All layout questions
/// (sizeof, alignof, member offsets) are answered here, so memory models and
/// the elaboration share one ABI.
class ImplEnv {
public:
  explicit ImplEnv(const TagTable &Tags) : Tags(Tags) {}

  /// sizeof(T) in bytes (ISO 6.5.3.4). Asserts on incomplete types.
  uint64_t sizeOf(const CType &Ty) const;
  /// _Alignof(T) (ISO 6.2.8).
  uint64_t alignOf(const CType &Ty) const;
  /// offsetof(tag, member-index) in bytes, with natural padding.
  uint64_t offsetOf(unsigned Tag, size_t MemberIdx) const;

  /// Width in bits of an integer kind (value bits + sign bit; _Bool is 1).
  unsigned widthOf(IntKind K) const;
  /// Smallest representable value of the kind.
  Int128 minOf(IntKind K) const;
  /// Largest representable value of the kind.
  Int128 maxOf(IntKind K) const;
  /// True iff \p V is representable in \p K.
  bool inRange(IntKind K, Int128 V) const;
  /// Reduces \p V modulo 2^width for unsigned \p K (ISO 6.2.5p9).
  Int128 wrapUnsigned(IntKind K, Int128 V) const;
  /// Converts \p V to integer kind \p K per ISO 6.3.1.3: identity when in
  /// range; modulo reduction for unsigned; nullopt for out-of-range signed
  /// (our chosen impl-defined behaviour is "no trap, wrap" — see flag).
  Int128 convert(IntKind K, Int128 V) const;

  /// Is plain char signed? (Impl-defined; true, matching x86-64 Linux.)
  bool charIsSigned() const { return true; }

  const TagTable &tags() const { return Tags; }

private:
  const TagTable &Tags;
};

} // namespace cerb::ail

#endif // CERB_AIL_CTYPE_H
