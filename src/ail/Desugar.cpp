//===-- ail/Desugar.cpp ---------------------------------------------------===//

#include "ail/Desugar.h"

#include "support/Format.h"

#include <cassert>
#include <map>
#include <optional>

using namespace cerb;
using namespace cerb::ail;
using cabs::CabsDecl;
using cabs::CabsExpr;
using cabs::CabsExprKind;
using cabs::CabsInit;
using cabs::CabsStmt;
using cabs::CabsStmtKind;
using cabs::CabsType;
using cabs::CabsTypeKind;
using cabs::CabsTypePtr;
using cabs::StorageClass;

//===----------------------------------------------------------------------===//
// Integer constant decoding (6.4.4.1)
//===----------------------------------------------------------------------===//

Expected<std::pair<Int128, CType>>
cerb::ail::decodeIntConst(std::string_view S, SourceLoc Loc) {
  if (S.empty())
    return err("empty integer constant", Loc, "6.4.4.1");
  int Base = 10;
  size_t I = 0;
  if (S.size() >= 2 && S[0] == '0' && (S[1] == 'x' || S[1] == 'X')) {
    Base = 16;
    I = 2;
  } else if (S[0] == '0' && S.size() > 1) {
    Base = 8;
    I = 1;
  }
  UInt128 V = 0;
  bool AnyDigit = Base == 8; // the octal prefix '0' is itself a digit

  for (; I < S.size(); ++I) {
    char C = S[I];
    int D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (Base == 16 && C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else if (Base == 16 && C >= 'A' && C <= 'F')
      D = C - 'A' + 10;
    else
      break;
    if (D >= Base)
      return err(fmt("invalid digit '{0}' in base-{1} constant", C, Base),
                 Loc, "6.4.4.1");
    UInt128 NewV = V * Base + D;
    if (NewV < V)
      return err("integer constant too large", Loc, "6.4.4.1p6");
    V = NewV;
    AnyDigit = true;
  }
  if (!AnyDigit)
    return err("malformed integer constant", Loc, "6.4.4.1");

  // Suffix.
  bool Unsigned = false;
  int LongCount = 0;
  for (; I < S.size(); ++I) {
    char C = S[I];
    if (C == 'u' || C == 'U') {
      if (Unsigned)
        return err("duplicate 'u' suffix", Loc, "6.4.4.1");
      Unsigned = true;
    } else if (C == 'l' || C == 'L') {
      ++LongCount;
      if (LongCount > 2)
        return err("too many 'l' suffixes", Loc, "6.4.4.1");
      // "ll" must be same case and adjacent; we accept any (lenient).
    } else if (C == '.' || C == 'e' || C == 'E' || C == 'f' || C == 'F') {
      return err("floating constants are outside the supported fragment",
                 Loc);
    } else {
      return err(fmt("invalid integer suffix starting at '{0}'", C), Loc,
                 "6.4.4.1");
    }
  }

  // The 6.4.4.1p5 ladder. Our ImplEnv: int=32, long=long long=64 bits.
  auto Fits = [&](unsigned Bits, bool Sgn) {
    if (Sgn)
      return V <= (UInt128(1) << (Bits - 1)) - 1;
    return Bits >= 128 || V <= (UInt128(1) << Bits) - 1;
  };
  struct Rung {
    IntKind K;
    unsigned Bits;
    bool Sgn;
  };
  std::vector<Rung> Ladder;
  bool AllowUnsignedRungs = Unsigned || Base != 10;
  auto AddRung = [&](IntKind K, unsigned Bits, bool Sgn) {
    if (Sgn && Unsigned)
      return;
    if (!Sgn && !AllowUnsignedRungs)
      return;
    Ladder.push_back({K, Bits, Sgn});
  };
  if (LongCount == 0) {
    AddRung(IntKind::Int, 32, true);
    AddRung(IntKind::UInt, 32, false);
  }
  if (LongCount <= 1) {
    AddRung(IntKind::Long, 64, true);
    AddRung(IntKind::ULong, 64, false);
  }
  AddRung(IntKind::LongLong, 64, true);
  AddRung(IntKind::ULongLong, 64, false);

  for (const Rung &R : Ladder)
    if (Fits(R.Bits, R.Sgn))
      return std::make_pair(static_cast<Int128>(V), CType::makeInteger(R.K));
  return err("integer constant does not fit any integer type", Loc,
             "6.4.4.1p6");
}

//===----------------------------------------------------------------------===//
// Desugarer
//===----------------------------------------------------------------------===//

namespace {

struct OrdinaryEntry {
  enum { Object, Func, TypedefName, EnumConst } Kind;
  Symbol Sym;       // Object / Func
  CType Ty;         // Object / Func / TypedefName
  Int128 Value = 0; // EnumConst
};

class Desugarer {
public:
  Desugarer() { pushScope(); }

  Expected<AilProgram> run(const cabs::CabsTranslationUnit &Unit);

private:
  AilProgram Prog;
  std::vector<std::map<std::string, OrdinaryEntry>> Ordinary;
  std::vector<std::map<std::string, unsigned>> TagScopes;
  /// Per-function label environment: source label name -> label symbol.
  std::map<std::string, Symbol> Labels;
  /// Redirect target for `continue` inside desugared for/do-while bodies
  /// (nullopt entry = a plain while, where Ail Continue is kept).
  std::vector<std::optional<Symbol>> ContinueRedirects;
  unsigned FreshCounter = 0;

  void pushScope() {
    Ordinary.emplace_back();
    TagScopes.emplace_back();
  }
  void popScope() {
    Ordinary.pop_back();
    TagScopes.pop_back();
  }

  const OrdinaryEntry *lookup(const std::string &Name) const {
    for (auto It = Ordinary.rbegin(); It != Ordinary.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }
  std::optional<unsigned> lookupTag(const std::string &Name) const {
    for (auto It = TagScopes.rbegin(); It != TagScopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return F->second;
    }
    return std::nullopt;
  }

  std::string freshName(std::string_view Base) {
    return fmt("{0}.{1}", Base, FreshCounter++);
  }

  void declareBuiltins();
  void declareBuiltin(std::string Name, Builtin B, CType Ty);

  Expected<CType> resolveType(const CabsTypePtr &Ty);
  Expected<CType> adjustParamType(CType Ty); ///< array/function decay 6.7.6.3p7+8

  Expected<Int128> constEval(const CabsExpr &E);

  Expected<AilExprPtr> desugarExpr(const CabsExpr &E);
  Expected<AilInit> desugarInit(const CabsInit &Init);
  /// Like desugarInit but aware of the declared type, so string literals
  /// initialising char arrays become in-place byte lists (6.7.9p14).
  Expected<AilInit> desugarInitForType(const CType &Ty, const CabsInit &Init);
  Expected<AilStmtPtr> desugarStmt(const CabsStmt &S);
  ExpectedVoid desugarBlockItem(const CabsStmt &S,
                                std::vector<AilStmtPtr> &Out);
  ExpectedVoid desugarLocalDecl(const CabsDecl &D,
                                std::vector<AilStmtPtr> &Out);
  ExpectedVoid desugarGlobalDecl(const CabsDecl &D);
  ExpectedVoid desugarFunctionDef(const cabs::CabsFunctionDef &F);
  /// Creates/locates label symbols for all labels in a function body.
  ExpectedVoid collectLabels(const CabsStmt &S);

  /// Completes an unsized array type from its initialiser (6.7.9p22/25).
  Expected<CType> completeArrayFromInit(CType Ty, const CabsInit &Init,
                                        SourceLoc Loc);

  /// Hoists a string literal into an implicitly allocated global object and
  /// returns a Var expression referring to it.
  AilExprPtr hoistStringLiteral(const std::string &Bytes, SourceLoc Loc);
};

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

void Desugarer::declareBuiltin(std::string Name, Builtin B, CType Ty) {
  Symbol S = Prog.Syms.create(Name, SymbolKind::Function);
  OrdinaryEntry E;
  E.Kind = OrdinaryEntry::Func;
  E.Sym = S;
  E.Ty = Ty;
  Ordinary.front()[Prog.Syms.nameOf(S)] = E;
  Prog.Builtins[S.Id] = B;
  Prog.DeclaredFunctions[S.Id] = Ty;
}

void Desugarer::declareBuiltins() {
  CType VoidTy = CType::makeVoid();
  CType VoidPtr = CType::voidPtrTy();
  CType CharPtr = CType::charPtrTy();
  CType IntTy = CType::intTy();
  CType SizeTy = CType::sizeTy();
  declareBuiltin("printf", Builtin::Printf,
                 CType::makeFunction(IntTy, {CharPtr}, /*Variadic=*/true));
  declareBuiltin("malloc", Builtin::Malloc,
                 CType::makeFunction(VoidPtr, {SizeTy}, false));
  declareBuiltin("calloc", Builtin::Calloc,
                 CType::makeFunction(VoidPtr, {SizeTy, SizeTy}, false));
  declareBuiltin("free", Builtin::Free,
                 CType::makeFunction(VoidTy, {VoidPtr}, false));
  declareBuiltin("memcpy", Builtin::Memcpy,
                 CType::makeFunction(VoidPtr, {VoidPtr, VoidPtr, SizeTy},
                                     false));
  declareBuiltin("memmove", Builtin::Memmove,
                 CType::makeFunction(VoidPtr, {VoidPtr, VoidPtr, SizeTy},
                                     false));
  declareBuiltin("memset", Builtin::Memset,
                 CType::makeFunction(VoidPtr, {VoidPtr, IntTy, SizeTy},
                                     false));
  declareBuiltin("memcmp", Builtin::Memcmp,
                 CType::makeFunction(IntTy, {VoidPtr, VoidPtr, SizeTy},
                                     false));
  declareBuiltin("strlen", Builtin::Strlen,
                 CType::makeFunction(SizeTy, {CharPtr}, false));
  declareBuiltin("strcpy", Builtin::Strcpy,
                 CType::makeFunction(CharPtr, {CharPtr, CharPtr}, false));
  declareBuiltin("strcmp", Builtin::Strcmp,
                 CType::makeFunction(IntTy, {CharPtr, CharPtr}, false));
  declareBuiltin("puts", Builtin::Puts,
                 CType::makeFunction(IntTy, {CharPtr}, false));
  declareBuiltin("putchar", Builtin::Putchar,
                 CType::makeFunction(IntTy, {IntTy}, false));
  declareBuiltin("realloc", Builtin::Realloc,
                 CType::makeFunction(VoidPtr, {VoidPtr, SizeTy}, false));
  declareBuiltin("abort", Builtin::Abort,
                 CType::makeFunction(VoidTy, {}, false));
  declareBuiltin("exit", Builtin::Exit,
                 CType::makeFunction(VoidTy, {IntTy}, false));
  declareBuiltin("__cerb_assert", Builtin::Assert,
                 CType::makeFunction(VoidTy, {IntTy}, false));

  // Common <stdint.h>/<stddef.h> typedef names.
  auto Typedef = [&](std::string Name, CType Ty) {
    OrdinaryEntry E;
    E.Kind = OrdinaryEntry::TypedefName;
    E.Ty = Ty;
    Ordinary.front()[std::move(Name)] = E;
  };
  Typedef("size_t", CType::sizeTy());
  Typedef("ptrdiff_t", CType::ptrdiffTy());
  Typedef("intptr_t", CType::makeInteger(IntKind::Long));
  Typedef("uintptr_t", CType::makeInteger(IntKind::ULong));
  Typedef("int8_t", CType::makeInteger(IntKind::SChar));
  Typedef("uint8_t", CType::makeInteger(IntKind::UChar));
  Typedef("int16_t", CType::makeInteger(IntKind::Short));
  Typedef("uint16_t", CType::makeInteger(IntKind::UShort));
  Typedef("int32_t", CType::makeInteger(IntKind::Int));
  Typedef("uint32_t", CType::makeInteger(IntKind::UInt));
  Typedef("int64_t", CType::makeInteger(IntKind::Long));
  Typedef("uint64_t", CType::makeInteger(IntKind::ULong));
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

Expected<CType> Desugarer::resolveType(const CabsTypePtr &Ty) {
  assert(Ty && "null CabsType");
  switch (Ty->Kind) {
  case CabsTypeKind::Base:
    switch (Ty->Base) {
    case cabs::BaseSpec::Void: return CType::makeVoid();
    case cabs::BaseSpec::Bool: return CType::makeInteger(IntKind::Bool);
    case cabs::BaseSpec::Char: return CType::makeInteger(IntKind::Char);
    case cabs::BaseSpec::SChar: return CType::makeInteger(IntKind::SChar);
    case cabs::BaseSpec::UChar: return CType::makeInteger(IntKind::UChar);
    case cabs::BaseSpec::Short: return CType::makeInteger(IntKind::Short);
    case cabs::BaseSpec::UShort: return CType::makeInteger(IntKind::UShort);
    case cabs::BaseSpec::Int: return CType::makeInteger(IntKind::Int);
    case cabs::BaseSpec::UInt: return CType::makeInteger(IntKind::UInt);
    case cabs::BaseSpec::Long: return CType::makeInteger(IntKind::Long);
    case cabs::BaseSpec::ULong: return CType::makeInteger(IntKind::ULong);
    case cabs::BaseSpec::LongLong:
      return CType::makeInteger(IntKind::LongLong);
    case cabs::BaseSpec::ULongLong:
      return CType::makeInteger(IntKind::ULongLong);
    case cabs::BaseSpec::Float:
    case cabs::BaseSpec::Double:
      return err("floating types are outside the supported fragment",
                 Ty->Loc);
    }
    return err("bad base type", Ty->Loc);
  case CabsTypeKind::TypedefName: {
    const OrdinaryEntry *E = lookup(Ty->Name);
    if (!E || E->Kind != OrdinaryEntry::TypedefName)
      return err(fmt("'{0}' does not name a type", Ty->Name), Ty->Loc,
                 "6.7.8");
    return E->Ty;
  }
  case CabsTypeKind::Pointer: {
    CERB_TRY(Inner, resolveType(Ty->Inner));
    return CType::makePointer(Inner);
  }
  case CabsTypeKind::Array: {
    CERB_TRY(Elem, resolveType(Ty->Inner));
    if (Elem.isFunction())
      return err("array of functions", Ty->Loc, "6.7.6.2p1");
    if (Elem.isVoid())
      return err("array of void", Ty->Loc, "6.7.6.2p1");
    if (!Ty->ArraySize)
      return CType::makeArray(Elem, std::nullopt);
    CERB_TRY(N, constEval(*Ty->ArraySize));
    if (N <= 0)
      return err("array size must be positive (VLAs unsupported)", Ty->Loc,
                 "6.7.6.2p1");
    return CType::makeArray(Elem, static_cast<uint64_t>(N));
  }
  case CabsTypeKind::Function: {
    CERB_TRY(Ret, resolveType(Ty->Inner));
    if (Ret.isArray() || Ret.isFunction())
      return err("function returning array or function", Ty->Loc,
                 "6.7.6.3p1");
    std::vector<CType> Params;
    for (const cabs::CabsParamDecl &P : Ty->Params) {
      CERB_TRY(PT, resolveType(P.Ty));
      CERB_TRY(Adjusted, adjustParamType(PT));
      Params.push_back(Adjusted);
    }
    return CType::makeFunction(Ret, std::move(Params), Ty->Variadic);
  }
  case CabsTypeKind::StructUnion: {
    unsigned Tag;
    std::optional<unsigned> Existing =
        Ty->Name.empty() ? std::nullopt : lookupTag(Ty->Name);
    if (Ty->HasBody) {
      // Define in the current scope: reuse an incomplete same-scope tag.
      auto SameScope = TagScopes.back().find(Ty->Name);
      if (!Ty->Name.empty() && SameScope != TagScopes.back().end()) {
        Tag = SameScope->second;
        if (Prog.Tags.get(Tag).Complete)
          return err(fmt("redefinition of '{0}'", Ty->Name), Ty->Loc,
                     "6.7.2.3p1");
        if (Prog.Tags.get(Tag).IsUnion != Ty->IsUnion)
          return err(fmt("tag '{0}' used as both struct and union",
                         Ty->Name),
                     Ty->Loc, "6.7.2.3p3");
      } else {
        Tag = Prog.Tags.createTag(Ty->IsUnion, Ty->Name.empty()
                                                   ? freshName("anon")
                                                   : Ty->Name);
        if (!Ty->Name.empty())
          TagScopes.back()[Ty->Name] = Tag;
      }
      std::vector<TagMember> Members;
      for (const cabs::CabsFieldDecl &F : Ty->Fields) {
        CERB_TRY(FT, resolveType(F.Ty));
        if (FT.isFunction())
          return err("struct member of function type", F.Loc, "6.7.2.1p3");
        if (F.Name.empty())
          return err("anonymous members are outside the fragment", F.Loc);
        Members.push_back(TagMember{F.Name, FT});
      }
      Prog.Tags.complete(Tag, std::move(Members));
    } else if (Existing) {
      Tag = *Existing;
      if (Prog.Tags.get(Tag).IsUnion != Ty->IsUnion)
        return err(fmt("tag '{0}' used as both struct and union", Ty->Name),
                   Ty->Loc, "6.7.2.3p3");
    } else {
      // Forward reference: create an incomplete tag in the current scope.
      Tag = Prog.Tags.createTag(Ty->IsUnion, Ty->Name);
      TagScopes.back()[Ty->Name] = Tag;
    }
    return Ty->IsUnion ? CType::makeUnion(Tag) : CType::makeStruct(Tag);
  }
  case CabsTypeKind::Enum: {
    if (Ty->HasBody) {
      Int128 Next = 0;
      for (const cabs::CabsEnumerator &En : Ty->Enumerators) {
        if (En.Value) {
          CERB_TRY(V, constEval(*En.Value));
          Next = V;
        }
        OrdinaryEntry E;
        E.Kind = OrdinaryEntry::EnumConst;
        E.Value = Next;
        Ordinary.back()[En.Name] = E;
        ++Next;
      }
    }
    // Enums are replaced by int (§5.1; enumerated types are int-compatible).
    return CType::intTy();
  }
  }
  return err("bad syntactic type", Ty->Loc);
}

Expected<CType> Desugarer::adjustParamType(CType Ty) {
  // 6.7.6.3p7: array of T adjusts to pointer to T; p8: function to pointer.
  if (Ty.isArray())
    return CType::makePointer(Ty.element());
  if (Ty.isFunction())
    return CType::makePointer(Ty);
  return Ty;
}

//===----------------------------------------------------------------------===//
// Constant expressions (desugar-time; 6.6)
//===----------------------------------------------------------------------===//

Expected<Int128> Desugarer::constEval(const CabsExpr &E) {
  switch (E.Kind) {
  case CabsExprKind::IntConst: {
    CERB_TRY(VT, decodeIntConst(E.Text, E.Loc));
    return VT.first;
  }
  case CabsExprKind::CharConst:
    return Int128(E.IntValue);
  case CabsExprKind::Ident: {
    const OrdinaryEntry *Entry = lookup(E.Text);
    if (Entry && Entry->Kind == OrdinaryEntry::EnumConst)
      return Entry->Value;
    return err(fmt("'{0}' is not an integer constant expression", E.Text),
               E.Loc, "6.6p6");
  }
  case CabsExprKind::Unary: {
    CERB_TRY(V, constEval(*E.Kids[0]));
    switch (E.UOp) {
    case cabs::UnaryOp::Plus: return V;
    case cabs::UnaryOp::Minus: return -V;
    case cabs::UnaryOp::BitNot: return ~V;
    case cabs::UnaryOp::LogNot: return Int128(V == 0 ? 1 : 0);
    default:
      return err("operator not allowed in integer constant expression",
                 E.Loc, "6.6p6");
    }
  }
  case CabsExprKind::Binary: {
    CERB_TRY(A, constEval(*E.Kids[0]));
    // Short-circuit forms must not evaluate the dead arm.
    if (E.BOp == cabs::BinaryOp::LogAnd && A == 0)
      return Int128(0);
    if (E.BOp == cabs::BinaryOp::LogOr && A != 0)
      return Int128(1);
    CERB_TRY(B, constEval(*E.Kids[1]));
    switch (E.BOp) {
    case cabs::BinaryOp::Mul: return A * B;
    case cabs::BinaryOp::Div:
      if (B == 0)
        return err("division by zero in constant expression", E.Loc, "6.6p4");
      return A / B;
    case cabs::BinaryOp::Rem:
      if (B == 0)
        return err("remainder by zero in constant expression", E.Loc,
                   "6.6p4");
      return A % B;
    case cabs::BinaryOp::Add: return A + B;
    case cabs::BinaryOp::Sub: return A - B;
    case cabs::BinaryOp::Shl:
      if (B < 0 || B >= 64)
        return err("bad shift amount in constant expression", E.Loc,
                   "6.5.7p3");
      return A << static_cast<unsigned>(B);
    case cabs::BinaryOp::Shr:
      if (B < 0 || B >= 64)
        return err("bad shift amount in constant expression", E.Loc,
                   "6.5.7p3");
      return A >> static_cast<unsigned>(B);
    case cabs::BinaryOp::Lt: return Int128(A < B);
    case cabs::BinaryOp::Gt: return Int128(A > B);
    case cabs::BinaryOp::Le: return Int128(A <= B);
    case cabs::BinaryOp::Ge: return Int128(A >= B);
    case cabs::BinaryOp::Eq: return Int128(A == B);
    case cabs::BinaryOp::Ne: return Int128(A != B);
    case cabs::BinaryOp::BitAnd: return A & B;
    case cabs::BinaryOp::BitXor: return A ^ B;
    case cabs::BinaryOp::BitOr: return A | B;
    case cabs::BinaryOp::LogAnd: return Int128(B != 0);
    case cabs::BinaryOp::LogOr: return Int128(B != 0);
    }
    return err("bad binary operator in constant expression", E.Loc);
  }
  case CabsExprKind::Cond: {
    CERB_TRY(C, constEval(*E.Kids[0]));
    return constEval(C != 0 ? *E.Kids[1] : *E.Kids[2]);
  }
  case CabsExprKind::Cast: {
    CERB_TRY(Ty, resolveType(E.TypeName));
    if (!Ty.isInteger())
      return err("non-integer cast in integer constant expression", E.Loc,
                 "6.6p6");
    CERB_TRY(V, constEval(*E.Kids[0]));
    ImplEnv Env(Prog.Tags);
    return Env.convert(Ty.intKind(), V);
  }
  case CabsExprKind::SizeofType:
  case CabsExprKind::AlignofType: {
    CERB_TRY(Ty, resolveType(E.TypeName));
    ImplEnv Env(Prog.Tags);
    return Int128(E.Kind == CabsExprKind::SizeofType ? Env.sizeOf(Ty)
                                                     : Env.alignOf(Ty));
  }
  case CabsExprKind::SizeofExpr: {
    // sizeof(identifier) of a declared object is the common constant form.
    const CabsExpr &Sub = *E.Kids[0];
    if (Sub.Kind == CabsExprKind::Ident) {
      const OrdinaryEntry *Entry = lookup(Sub.Text);
      if (Entry && Entry->Kind == OrdinaryEntry::Object) {
        ImplEnv Env(Prog.Tags);
        return Int128(Env.sizeOf(Entry->Ty));
      }
    }
    if (Sub.Kind == CabsExprKind::StringLit)
      return Int128(Sub.Text.size() + 1);
    return err("unsupported sizeof operand in constant expression", E.Loc,
               "6.6");
  }
  default:
    return err("expression is not an integer constant expression", E.Loc,
               "6.6p6");
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

AilExprPtr Desugarer::hoistStringLiteral(const std::string &Bytes,
                                         SourceLoc Loc) {
  // 6.4.5p6: string literals are arrays of char with static storage
  // duration, i.e. implicitly allocated objects (§5.1).
  Symbol S = Prog.Syms.create(freshName("strlit"), SymbolKind::Object);
  AilGlobal G;
  G.Sym = S;
  G.Ty = CType::makeArray(CType::charTy(), Bytes.size() + 1);
  G.Loc = Loc;
  G.IsStringLiteral = true;
  AilInit Init;
  Init.Loc = Loc;
  for (size_t I = 0; I <= Bytes.size(); ++I) { // include the NUL
    AilInit Elem;
    Elem.Loc = Loc;
    auto C = makeAilExpr(AilExprKind::IntConst, Loc);
    C->IntValue = I < Bytes.size()
                      ? Int128(static_cast<signed char>(Bytes[I]))
                      : Int128(0);
    C->Ty = CType::intTy();
    Elem.E = std::move(C);
    Init.List.push_back(std::move(Elem));
  }
  G.Init = std::move(Init);
  Prog.Globals.push_back(std::move(G));

  auto Ref = makeAilExpr(AilExprKind::Var, Loc);
  Ref->Sym = S;
  return Ref;
}

Expected<AilExprPtr> Desugarer::desugarExpr(const CabsExpr &E) {
  switch (E.Kind) {
  case CabsExprKind::Ident: {
    const OrdinaryEntry *Entry = lookup(E.Text);
    if (!Entry)
      return err(fmt("use of undeclared identifier '{0}'", E.Text), E.Loc,
                 "6.5.1p2");
    switch (Entry->Kind) {
    case OrdinaryEntry::Object: {
      auto R = makeAilExpr(AilExprKind::Var, E.Loc);
      R->Sym = Entry->Sym;
      return R;
    }
    case OrdinaryEntry::Func: {
      auto R = makeAilExpr(AilExprKind::FuncRef, E.Loc);
      R->Sym = Entry->Sym;
      return R;
    }
    case OrdinaryEntry::EnumConst: {
      auto R = makeAilExpr(AilExprKind::IntConst, E.Loc);
      R->IntValue = Entry->Value;
      R->Ty = CType::intTy();
      return R;
    }
    case OrdinaryEntry::TypedefName:
      return err(fmt("unexpected type name '{0}' in expression", E.Text),
                 E.Loc, "6.5.1");
    }
    return err("bad identifier entry", E.Loc);
  }
  case CabsExprKind::IntConst: {
    CERB_TRY(VT, decodeIntConst(E.Text, E.Loc));
    auto R = makeAilExpr(AilExprKind::IntConst, E.Loc);
    R->IntValue = VT.first;
    R->Ty = VT.second;
    return R;
  }
  case CabsExprKind::CharConst: {
    auto R = makeAilExpr(AilExprKind::IntConst, E.Loc);
    R->IntValue = Int128(E.IntValue);
    R->Ty = CType::intTy(); // 6.4.4.4p10: character constant has type int
    return R;
  }
  case CabsExprKind::StringLit:
    return hoistStringLiteral(E.Text, E.Loc);
  case CabsExprKind::Unary: {
    CERB_TRY(Sub, desugarExpr(*E.Kids[0]));
    auto R = makeAilExpr(AilExprKind::Unary, E.Loc);
    R->UOp = E.UOp;
    R->Kids.push_back(std::move(Sub));
    return R;
  }
  case CabsExprKind::Binary: {
    CERB_TRY(A, desugarExpr(*E.Kids[0]));
    CERB_TRY(B, desugarExpr(*E.Kids[1]));
    auto R = makeAilExpr(AilExprKind::Binary, E.Loc);
    R->BOp = E.BOp;
    R->Kids.push_back(std::move(A));
    R->Kids.push_back(std::move(B));
    return R;
  }
  case CabsExprKind::Assign: {
    CERB_TRY(A, desugarExpr(*E.Kids[0]));
    CERB_TRY(B, desugarExpr(*E.Kids[1]));
    auto R = makeAilExpr(AilExprKind::Assign, E.Loc);
    R->AssignOp = E.AssignOp;
    R->Kids.push_back(std::move(A));
    R->Kids.push_back(std::move(B));
    return R;
  }
  case CabsExprKind::Cond: {
    CERB_TRY(C, desugarExpr(*E.Kids[0]));
    CERB_TRY(T, desugarExpr(*E.Kids[1]));
    CERB_TRY(F, desugarExpr(*E.Kids[2]));
    auto R = makeAilExpr(AilExprKind::Cond, E.Loc);
    R->Kids.push_back(std::move(C));
    R->Kids.push_back(std::move(T));
    R->Kids.push_back(std::move(F));
    return R;
  }
  case CabsExprKind::Cast: {
    CERB_TRY(Ty, resolveType(E.TypeName));
    CERB_TRY(Sub, desugarExpr(*E.Kids[0]));
    auto R = makeAilExpr(AilExprKind::Cast, E.Loc);
    R->CastTy = Ty;
    R->Kids.push_back(std::move(Sub));
    return R;
  }
  case CabsExprKind::Call: {
    auto R = makeAilExpr(AilExprKind::Call, E.Loc);
    for (const auto &K : E.Kids) {
      CERB_TRY(Sub, desugarExpr(*K));
      R->Kids.push_back(std::move(Sub));
    }
    return R;
  }
  case CabsExprKind::Member: {
    CERB_TRY(Sub, desugarExpr(*E.Kids[0]));
    auto R = makeAilExpr(AilExprKind::Member, E.Loc);
    R->MemberName = E.Text;
    R->Kids.push_back(std::move(Sub));
    return R;
  }
  case CabsExprKind::MemberPtr: {
    // e->m  desugars to  (*e).m (6.5.2.3p4).
    CERB_TRY(Sub, desugarExpr(*E.Kids[0]));
    auto Deref = makeAilExpr(AilExprKind::Unary, E.Loc);
    Deref->UOp = cabs::UnaryOp::Deref;
    Deref->Kids.push_back(std::move(Sub));
    auto R = makeAilExpr(AilExprKind::Member, E.Loc);
    R->MemberName = E.Text;
    R->Kids.push_back(std::move(Deref));
    return R;
  }
  case CabsExprKind::Index: {
    // a[b]  desugars to  *(a + b) (6.5.2.1p2).
    CERB_TRY(A, desugarExpr(*E.Kids[0]));
    CERB_TRY(B, desugarExpr(*E.Kids[1]));
    auto Add = makeAilExpr(AilExprKind::Binary, E.Loc);
    Add->BOp = cabs::BinaryOp::Add;
    Add->Kids.push_back(std::move(A));
    Add->Kids.push_back(std::move(B));
    auto R = makeAilExpr(AilExprKind::Unary, E.Loc);
    R->UOp = cabs::UnaryOp::Deref;
    R->Kids.push_back(std::move(Add));
    return R;
  }
  case CabsExprKind::SizeofExpr: {
    CERB_TRY(Sub, desugarExpr(*E.Kids[0]));
    auto R = makeAilExpr(AilExprKind::SizeofExpr, E.Loc);
    R->Kids.push_back(std::move(Sub));
    return R;
  }
  case CabsExprKind::SizeofType:
  case CabsExprKind::AlignofType: {
    CERB_TRY(Ty, resolveType(E.TypeName));
    auto R = makeAilExpr(E.Kind == CabsExprKind::SizeofType
                             ? AilExprKind::SizeofType
                             : AilExprKind::AlignofType,
                         E.Loc);
    R->CastTy = Ty;
    return R;
  }
  case CabsExprKind::Comma: {
    CERB_TRY(A, desugarExpr(*E.Kids[0]));
    CERB_TRY(B, desugarExpr(*E.Kids[1]));
    auto R = makeAilExpr(AilExprKind::Comma, E.Loc);
    R->Kids.push_back(std::move(A));
    R->Kids.push_back(std::move(B));
    return R;
  }
  }
  return err("bad expression kind", E.Loc);
}

Expected<AilInit> Desugarer::desugarInitForType(const CType &Ty,
                                                const CabsInit &Init) {
  // 6.7.9p14: a char array may be initialised by a string literal; the
  // literal's bytes initialise the elements (no object is hoisted).
  if (!Init.isList() && Init.E->Kind == CabsExprKind::StringLit &&
      Ty.isArray() && Ty.element().isCharacter()) {
    AilInit Out;
    Out.Loc = Init.Loc;
    const std::string &Bytes = Init.E->Text;
    uint64_t N = Ty.arraySize() ? *Ty.arraySize() : Bytes.size() + 1;
    for (uint64_t I = 0; I < N && I <= Bytes.size(); ++I) {
      AilInit Elem;
      Elem.Loc = Init.Loc;
      auto C = makeAilExpr(AilExprKind::IntConst, Init.Loc);
      C->IntValue = I < Bytes.size()
                        ? Int128(static_cast<signed char>(Bytes[I]))
                        : Int128(0);
      C->Ty = CType::intTy();
      Elem.E = std::move(C);
      Out.List.push_back(std::move(Elem));
    }
    return Out;
  }
  return desugarInit(Init);
}

Expected<AilInit> Desugarer::desugarInit(const CabsInit &Init) {
  AilInit Out;
  Out.Loc = Init.Loc;
  if (Init.isList()) {
    for (const CabsInit &Sub : Init.List) {
      CERB_TRY(S, desugarInit(Sub));
      Out.List.push_back(std::move(S));
    }
    return Out;
  }
  // A string literal initialising a char array is kept as a byte list so
  // the elaboration can fill the array in place (6.7.9p14); the type
  // checker decides whether the context is in fact a char array.
  CERB_TRY(E, desugarExpr(*Init.E));
  Out.E = std::move(E);
  return Out;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

ExpectedVoid Desugarer::collectLabels(const CabsStmt &S) {
  if (S.Kind == CabsStmtKind::Label) {
    if (Labels.count(S.Text))
      return err(fmt("duplicate label '{0}'", S.Text), S.Loc, "6.8.1p3");
    Labels[S.Text] = Prog.Syms.create(S.Text, SymbolKind::Label);
  }
  for (const auto &Sub : S.Body)
    CERB_CHECK(collectLabels(*Sub));
  return ExpectedVoid();
}

Expected<CType> Desugarer::completeArrayFromInit(CType Ty,
                                                 const CabsInit &Init,
                                                 SourceLoc Loc) {
  if (!Ty.isArray() || Ty.arraySize())
    return Ty;
  if (Init.isList()) {
    if (Init.List.empty())
      return err("empty initialiser for unsized array", Loc, "6.7.9p22");
    return CType::makeArray(Ty.element(), Init.List.size());
  }
  if (Init.E->Kind == CabsExprKind::StringLit && Ty.element().isCharacter())
    return CType::makeArray(Ty.element(), Init.E->Text.size() + 1);
  return err("cannot deduce array size from initialiser", Loc, "6.7.9p22");
}

ExpectedVoid Desugarer::desugarLocalDecl(const CabsDecl &D,
                                         std::vector<AilStmtPtr> &Out) {
  if (D.SC == StorageClass::Typedef) {
    CERB_TRY(Ty, resolveType(D.Ty));
    OrdinaryEntry E;
    E.Kind = OrdinaryEntry::TypedefName;
    E.Ty = Ty;
    Ordinary.back()[D.Name] = E;
    return ExpectedVoid();
  }
  if (D.Name.empty()) {
    // Bare tag/enum declaration: resolve for its side effects only.
    CERB_TRY(Ty, resolveType(D.Ty));
    (void)Ty;
    return ExpectedVoid();
  }
  CERB_TRY(Ty0, resolveType(D.Ty));
  CType Ty = Ty0;
  if (D.Init)
    CERB_TRY_ASSIGN(Ty, completeArrayFromInit(Ty, *D.Init, D.Loc));

  if (Ty.isFunction()) {
    // Block-scope function declaration.
    Symbol S = Prog.Syms.create(D.Name, SymbolKind::Function);
    OrdinaryEntry E;
    E.Kind = OrdinaryEntry::Func;
    E.Sym = S;
    E.Ty = Ty;
    Ordinary.back()[D.Name] = E;
    Prog.DeclaredFunctions[S.Id] = Ty;
    return ExpectedVoid();
  }

  if (D.SC == StorageClass::Static) {
    // Block-scope static: lifted to an implicitly named global (6.2.4p3).
    Symbol S = Prog.Syms.create(freshName(D.Name), SymbolKind::Object);
    AilGlobal G;
    G.Sym = S;
    G.Ty = Ty;
    G.Loc = D.Loc;
    if (D.Init) {
      CERB_TRY(Init, desugarInitForType(Ty, *D.Init));
      G.Init = std::move(Init);
    }
    Prog.Globals.push_back(std::move(G));
    OrdinaryEntry E;
    E.Kind = OrdinaryEntry::Object;
    E.Sym = S;
    E.Ty = Ty;
    Ordinary.back()[D.Name] = E;
    return ExpectedVoid();
  }

  Symbol S = Prog.Syms.create(D.Name, SymbolKind::Object);
  OrdinaryEntry E;
  E.Kind = OrdinaryEntry::Object;
  E.Sym = S;
  E.Ty = Ty;
  Ordinary.back()[D.Name] = E;

  auto Stmt = makeAilStmt(AilStmtKind::Decl, D.Loc);
  Stmt->DeclSym = S;
  Stmt->DeclTy = Ty;
  if (D.Init) {
    CERB_TRY(Init, desugarInitForType(Ty, *D.Init));
    Stmt->DeclInit = std::move(Init);
  }
  Out.push_back(std::move(Stmt));
  return ExpectedVoid();
}

ExpectedVoid Desugarer::desugarBlockItem(const CabsStmt &S,
                                         std::vector<AilStmtPtr> &Out) {
  if (S.Kind == CabsStmtKind::Decl) {
    for (const CabsDecl &D : S.Decls)
      CERB_CHECK(desugarLocalDecl(D, Out));
    return ExpectedVoid();
  }
  CERB_TRY(Sub, desugarStmt(S));
  Out.push_back(std::move(Sub));
  return ExpectedVoid();
}

Expected<AilStmtPtr> Desugarer::desugarStmt(const CabsStmt &S) {
  switch (S.Kind) {
  case CabsStmtKind::Expr: {
    auto R = makeAilStmt(AilStmtKind::Expr, S.Loc);
    if (S.E) {
      CERB_TRY(E, desugarExpr(*S.E));
      R->E = std::move(E);
    }
    return R;
  }
  case CabsStmtKind::Decl: {
    // A declaration as the body of if/while etc. is invalid; block items
    // are handled by desugarBlockItem.
    return err("declaration not allowed here", S.Loc, "6.8");
  }
  case CabsStmtKind::Block: {
    pushScope();
    auto R = makeAilStmt(AilStmtKind::Block, S.Loc);
    for (const auto &Sub : S.Body) {
      auto Res = desugarBlockItem(*Sub, R->Body);
      if (!Res) {
        popScope();
        return Res.error();
      }
    }
    popScope();
    return R;
  }
  case CabsStmtKind::If: {
    CERB_TRY(Cond, desugarExpr(*S.E));
    CERB_TRY(Then, desugarStmt(*S.Body[0]));
    auto R = makeAilStmt(AilStmtKind::If, S.Loc);
    R->E = std::move(Cond);
    R->Body.push_back(std::move(Then));
    if (S.Body.size() > 1) {
      CERB_TRY(Else, desugarStmt(*S.Body[1]));
      R->Body.push_back(std::move(Else));
    }
    return R;
  }
  case CabsStmtKind::While: {
    CERB_TRY(Cond, desugarExpr(*S.E));
    ContinueRedirects.push_back(std::nullopt);
    auto BodyOr = desugarStmt(*S.Body[0]);
    ContinueRedirects.pop_back();
    if (!BodyOr)
      return BodyOr.takeError();
    auto R = makeAilStmt(AilStmtKind::While, S.Loc);
    R->E = std::move(Cond);
    R->Body.push_back(std::move(*BodyOr));
    return R;
  }
  case CabsStmtKind::DoWhile: {
    // do S while (e)  desugars to (§5.1):
    //   while (1) { S'; __cont: if (!(e)) break; }
    // with `continue` in S' redirected to __cont.
    Symbol ContLbl = Prog.Syms.create(freshName("do.cont"),
                                      SymbolKind::Label);
    ContinueRedirects.push_back(ContLbl);
    auto BodyOr = desugarStmt(*S.Body[0]);
    ContinueRedirects.pop_back();
    if (!BodyOr)
      return BodyOr.takeError();
    CERB_TRY(Cond, desugarExpr(*S.E));

    auto NotCond = makeAilExpr(AilExprKind::Unary, S.Loc);
    NotCond->UOp = cabs::UnaryOp::LogNot;
    NotCond->Kids.push_back(std::move(Cond));
    auto BreakStmt = makeAilStmt(AilStmtKind::Break, S.Loc);
    auto IfStmt = makeAilStmt(AilStmtKind::If, S.Loc);
    IfStmt->E = std::move(NotCond);
    IfStmt->Body.push_back(std::move(BreakStmt));
    auto Labelled = makeAilStmt(AilStmtKind::Label, S.Loc);
    Labelled->LabelSym = ContLbl;
    Labelled->Body.push_back(std::move(IfStmt));

    auto Block = makeAilStmt(AilStmtKind::Block, S.Loc);
    Block->Body.push_back(std::move(*BodyOr));
    Block->Body.push_back(std::move(Labelled));

    auto One = makeAilExpr(AilExprKind::IntConst, S.Loc);
    One->IntValue = 1;
    One->Ty = CType::intTy();
    auto R = makeAilStmt(AilStmtKind::While, S.Loc);
    R->E = std::move(One);
    R->Body.push_back(std::move(Block));
    return R;
  }
  case CabsStmtKind::For: {
    // for (init; cond; step) S  desugars to (§5.1):
    //   { init; while (cond or 1) { S'; __cont: ; step; } }
    // with `continue` in S' redirected to __cont.
    pushScope();
    auto Outer = makeAilStmt(AilStmtKind::Block, S.Loc);
    auto Fail = [&](StaticError E) -> Expected<AilStmtPtr> {
      popScope();
      return E;
    };
    if (!S.Decls.empty()) {
      for (const CabsDecl &D : S.Decls)
        if (auto R = desugarLocalDecl(D, Outer->Body); !R)
          return Fail(R.error());
    } else if (S.E) {
      auto InitE = desugarExpr(*S.E);
      if (!InitE)
        return Fail(InitE.takeError());
      auto InitStmt = makeAilStmt(AilStmtKind::Expr, S.Loc);
      InitStmt->E = std::move(*InitE);
      Outer->Body.push_back(std::move(InitStmt));
    }

    AilExprPtr Cond;
    if (S.E2) {
      auto CondOr = desugarExpr(*S.E2);
      if (!CondOr)
        return Fail(CondOr.takeError());
      Cond = std::move(*CondOr);
    } else {
      Cond = makeAilExpr(AilExprKind::IntConst, S.Loc);
      Cond->IntValue = 1;
      Cond->Ty = CType::intTy();
    }

    Symbol ContLbl = Prog.Syms.create(freshName("for.cont"),
                                      SymbolKind::Label);
    ContinueRedirects.push_back(ContLbl);
    auto BodyOr = desugarStmt(*S.Body[0]);
    ContinueRedirects.pop_back();
    if (!BodyOr)
      return Fail(BodyOr.takeError());

    auto LoopBlock = makeAilStmt(AilStmtKind::Block, S.Loc);
    LoopBlock->Body.push_back(std::move(*BodyOr));
    auto Empty = makeAilStmt(AilStmtKind::Expr, S.Loc);
    auto Labelled = makeAilStmt(AilStmtKind::Label, S.Loc);
    Labelled->LabelSym = ContLbl;
    Labelled->Body.push_back(std::move(Empty));
    LoopBlock->Body.push_back(std::move(Labelled));
    if (S.E3) {
      auto StepOr = desugarExpr(*S.E3);
      if (!StepOr)
        return Fail(StepOr.takeError());
      auto StepStmt = makeAilStmt(AilStmtKind::Expr, S.Loc);
      StepStmt->E = std::move(*StepOr);
      LoopBlock->Body.push_back(std::move(StepStmt));
    }

    auto While = makeAilStmt(AilStmtKind::While, S.Loc);
    While->E = std::move(Cond);
    While->Body.push_back(std::move(LoopBlock));
    Outer->Body.push_back(std::move(While));
    popScope();
    return Outer;
  }
  case CabsStmtKind::Switch: {
    CERB_TRY(Cond, desugarExpr(*S.E));
    // `continue` passes through a switch to the enclosing loop, so the
    // redirect stack is left untouched.
    CERB_TRY(Body, desugarStmt(*S.Body[0]));
    auto R = makeAilStmt(AilStmtKind::Switch, S.Loc);
    R->E = std::move(Cond);
    R->Body.push_back(std::move(Body));
    return R;
  }
  case CabsStmtKind::Case: {
    CERB_TRY(V, constEval(*S.E));
    CERB_TRY(Body, desugarStmt(*S.Body[0]));
    auto R = makeAilStmt(AilStmtKind::Case, S.Loc);
    R->CaseValue = V;
    R->LabelSym = Prog.Syms.create(freshName("case"), SymbolKind::Label);
    R->Body.push_back(std::move(Body));
    return R;
  }
  case CabsStmtKind::Default: {
    CERB_TRY(Body, desugarStmt(*S.Body[0]));
    auto R = makeAilStmt(AilStmtKind::Default, S.Loc);
    R->LabelSym = Prog.Syms.create(freshName("default"), SymbolKind::Label);
    R->Body.push_back(std::move(Body));
    return R;
  }
  case CabsStmtKind::Label: {
    auto It = Labels.find(S.Text);
    assert(It != Labels.end() && "label not collected");
    CERB_TRY(Body, desugarStmt(*S.Body[0]));
    auto R = makeAilStmt(AilStmtKind::Label, S.Loc);
    R->LabelSym = It->second;
    R->Body.push_back(std::move(Body));
    return R;
  }
  case CabsStmtKind::Goto: {
    auto It = Labels.find(S.Text);
    if (It == Labels.end())
      return err(fmt("use of undeclared label '{0}'", S.Text), S.Loc,
                 "6.8.6.1p1");
    auto R = makeAilStmt(AilStmtKind::Goto, S.Loc);
    R->LabelSym = It->second;
    return R;
  }
  case CabsStmtKind::Break:
    return makeAilStmt(AilStmtKind::Break, S.Loc);
  case CabsStmtKind::Continue: {
    if (!ContinueRedirects.empty() && ContinueRedirects.back()) {
      auto R = makeAilStmt(AilStmtKind::Goto, S.Loc);
      R->LabelSym = *ContinueRedirects.back();
      return R;
    }
    return makeAilStmt(AilStmtKind::Continue, S.Loc);
  }
  case CabsStmtKind::Return: {
    auto R = makeAilStmt(AilStmtKind::Return, S.Loc);
    if (S.E) {
      CERB_TRY(E, desugarExpr(*S.E));
      R->E = std::move(E);
    }
    return R;
  }
  }
  return err("bad statement kind", S.Loc);
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

ExpectedVoid Desugarer::desugarGlobalDecl(const CabsDecl &D) {
  if (D.SC == StorageClass::Typedef) {
    CERB_TRY(Ty, resolveType(D.Ty));
    OrdinaryEntry E;
    E.Kind = OrdinaryEntry::TypedefName;
    E.Ty = Ty;
    Ordinary.front()[D.Name] = E;
    return ExpectedVoid();
  }
  if (D.Name.empty()) {
    CERB_TRY(Ty, resolveType(D.Ty));
    (void)Ty;
    return ExpectedVoid();
  }
  CERB_TRY(Ty0, resolveType(D.Ty));
  CType Ty = Ty0;
  if (D.Init)
    CERB_TRY_ASSIGN(Ty, completeArrayFromInit(Ty, *D.Init, D.Loc));

  if (Ty.isFunction()) {
    // Function prototype: reuse the symbol of a previous declaration.
    if (const OrdinaryEntry *Prev = lookup(D.Name)) {
      if (Prev->Kind == OrdinaryEntry::Func)
        return ExpectedVoid(); // keep first declaration's type (lenient)
      return err(fmt("'{0}' redeclared as different kind of symbol", D.Name),
                 D.Loc, "6.7p4");
    }
    Symbol S = Prog.Syms.create(D.Name, SymbolKind::Function);
    OrdinaryEntry E;
    E.Kind = OrdinaryEntry::Func;
    E.Sym = S;
    E.Ty = Ty;
    Ordinary.front()[D.Name] = E;
    Prog.DeclaredFunctions[S.Id] = Ty;
    return ExpectedVoid();
  }

  // Tentative definitions / extern: if already declared, only attach an
  // initialiser if present.
  if (const OrdinaryEntry *Prev = lookup(D.Name)) {
    if (Prev->Kind != OrdinaryEntry::Object)
      return err(fmt("'{0}' redeclared as different kind of symbol", D.Name),
                 D.Loc, "6.7p4");
    if (D.Init) {
      for (AilGlobal &G : Prog.Globals)
        if (G.Sym == Prev->Sym) {
          if (G.Init)
            return err(fmt("redefinition of '{0}'", D.Name), D.Loc, "6.9p3");
          CERB_TRY(Init, desugarInitForType(G.Ty, *D.Init));
          G.Init = std::move(Init);
          return ExpectedVoid();
        }
    }
    return ExpectedVoid();
  }

  Symbol S = Prog.Syms.create(D.Name, SymbolKind::Object);
  OrdinaryEntry E;
  E.Kind = OrdinaryEntry::Object;
  E.Sym = S;
  E.Ty = Ty;
  Ordinary.front()[D.Name] = E;

  AilGlobal G;
  G.Sym = S;
  G.Ty = Ty;
  G.Loc = D.Loc;
  if (D.Init) {
    CERB_TRY(Init, desugarInitForType(Ty, *D.Init));
    G.Init = std::move(Init);
  }
  Prog.Globals.push_back(std::move(G));
  return ExpectedVoid();
}

ExpectedVoid Desugarer::desugarFunctionDef(const cabs::CabsFunctionDef &F) {
  CERB_TRY(Ty, resolveType(F.Ty));
  assert(Ty.isFunction() && "function definition with non-function type");

  Symbol FnSym;
  if (const OrdinaryEntry *Prev = lookup(F.Name)) {
    if (Prev->Kind != OrdinaryEntry::Func)
      return err(fmt("'{0}' redeclared as a function", F.Name), F.Loc,
                 "6.7p4");
    FnSym = Prev->Sym;
    if (Prog.Builtins.count(FnSym.Id))
      return err(fmt("cannot define builtin '{0}'", F.Name), F.Loc);
    if (Prog.findFunction(FnSym))
      return err(fmt("redefinition of function '{0}'", F.Name), F.Loc,
                 "6.9.1");
  } else {
    FnSym = Prog.Syms.create(F.Name, SymbolKind::Function);
    OrdinaryEntry E;
    E.Kind = OrdinaryEntry::Func;
    E.Sym = FnSym;
    E.Ty = Ty;
    Ordinary.front()[F.Name] = E;
  }
  Prog.DeclaredFunctions[FnSym.Id] = Ty;

  AilFunction Fn;
  Fn.Sym = FnSym;
  Fn.Ty = Ty;
  Fn.Loc = F.Loc;

  pushScope();
  std::vector<CType> ParamTys = Ty.paramTypes();
  for (size_t I = 0; I < F.Ty->Params.size(); ++I) {
    const cabs::CabsParamDecl &P = F.Ty->Params[I];
    if (P.Name.empty()) {
      popScope();
      return err("parameter name omitted in function definition", P.Loc,
                 "6.9.1p5");
    }
    Symbol PS = Prog.Syms.create(P.Name, SymbolKind::Object);
    OrdinaryEntry E;
    E.Kind = OrdinaryEntry::Object;
    E.Sym = PS;
    E.Ty = ParamTys[I];
    Ordinary.back()[P.Name] = E;
    Fn.Params.push_back(AilParam{PS, ParamTys[I]});
  }

  Labels.clear();
  if (auto R = collectLabels(*F.Body); !R) {
    popScope();
    return R.error();
  }
  auto BodyOr = desugarStmt(*F.Body);
  popScope();
  if (!BodyOr)
    return BodyOr.takeError();
  Fn.Body = std::move(*BodyOr);
  Prog.Functions.push_back(std::move(Fn));

  if (F.Name == "main")
    Prog.Main = FnSym;
  return ExpectedVoid();
}

Expected<AilProgram> Desugarer::run(const cabs::CabsTranslationUnit &Unit) {
  declareBuiltins();
  for (const cabs::CabsExternal &Ext : Unit.Items) {
    if (Ext.isFunction()) {
      CERB_CHECK(desugarFunctionDef(*Ext.Function));
      continue;
    }
    for (const CabsDecl &D : Ext.Decls)
      CERB_CHECK(desugarGlobalDecl(D));
  }
  return std::move(Prog);
}

} // namespace

Expected<AilProgram>
cerb::ail::desugar(const cabs::CabsTranslationUnit &Unit) {
  Desugarer D;
  return D.run(Unit);
}
