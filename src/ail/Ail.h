//===-- ail/Ail.h - Ail: the desugared, symbol-resolved AST -----*- C++ -*-===//
///
/// \file
/// Ail is the intermediate AST produced by the Cabs_to_Ail desugaring pass
/// (§5.1): identifier scoping is resolved into symbols, syntactic types are
/// normalised into canonical CTypes, enums are replaced by integers, string
/// literals become implicitly allocated objects, and `for`/`do-while` loops
/// are desugared into `while` (with fresh labels carrying `continue`). The
/// type checker (typing/) subsequently annotates every expression in place.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_AIL_AIL_H
#define CERB_AIL_AIL_H

#include "ail/CType.h"
#include "cabs/Cabs.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cerb::ail {

//===----------------------------------------------------------------------===//
// Symbols
//===----------------------------------------------------------------------===//

/// A resolved identifier. Ids are unique within an AilProgram; the pretty
/// name lives in the SymbolTable.
struct Symbol {
  unsigned Id = ~0u;
  bool isValid() const { return Id != ~0u; }
  friend auto operator<=>(Symbol A, Symbol B) = default;
};

enum class SymbolKind { Object, Function, Label };

class SymbolTable {
public:
  Symbol create(std::string Name, SymbolKind Kind) {
    Names.push_back(std::move(Name));
    Kinds.push_back(Kind);
    return Symbol{static_cast<unsigned>(Names.size() - 1)};
  }
  const std::string &nameOf(Symbol S) const {
    assert(S.Id < Names.size() && "bad symbol");
    return Names[S.Id];
  }
  SymbolKind kindOf(Symbol S) const {
    assert(S.Id < Names.size() && "bad symbol");
    return Kinds[S.Id];
  }
  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::vector<SymbolKind> Kinds;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class AilExprKind {
  Var,        ///< object reference (Sym)
  FuncRef,    ///< function designator (Sym)
  IntConst,   ///< IntValue of type Ty (set at desugar time)
  Unary,      ///< UOp, Kids[0] (incl. pre/post inc/dec)
  Binary,     ///< BOp, Kids[0], Kids[1] (incl. LogAnd/LogOr)
  Assign,     ///< AssignOp?, Kids[0], Kids[1]
  Cond,       ///< Kids[0] ? Kids[1] : Kids[2]
  Cast,       ///< (CastTy) Kids[0]
  Call,       ///< Kids[0](Kids[1..])
  Member,     ///< Kids[0].MemberName   (e->m was rewritten to (*e).m)
  SizeofExpr, ///< sizeof Kids[0] (folded by the type checker)
  SizeofType, ///< sizeof(CastTy)
  AlignofType,///< _Alignof(CastTy)
  Comma,      ///< Kids[0], Kids[1]
};

/// Value category assigned by the type checker (6.3.2.1). The elaboration
/// inserts a load ("lvalue conversion") where an LValue is used as a value.
enum class ValueCat { Unknown, LValue, RValue };

struct AilExpr;
using AilExprPtr = std::unique_ptr<AilExpr>;

struct AilExpr {
  AilExprKind Kind;
  SourceLoc Loc;

  Symbol Sym;                  // Var / FuncRef
  Int128 IntValue = 0;         // IntConst
  cabs::UnaryOp UOp = cabs::UnaryOp::Plus;
  cabs::BinaryOp BOp = cabs::BinaryOp::Add;
  std::optional<cabs::BinaryOp> AssignOp;
  CType CastTy;                // Cast / SizeofType / AlignofType
  std::string MemberName;      // Member
  std::vector<AilExprPtr> Kids;

  //===--- Annotations set by the type checker -------------------------===//
  CType Ty;                    ///< the C type of this expression
  ValueCat Cat = ValueCat::Unknown;
  /// For pointer arithmetic (ptr+int, ptr-int, ptr-ptr, ++/-- on pointers,
  /// compound assignment on pointers): the pointee type used for scaling.
  CType ArithElemTy;
  /// The usual-arithmetic-conversion type of the operands where it differs
  /// from Ty (comparisons, compound assignment, conditional).
  CType CommonTy;
  /// Shift operators: the separately promoted type of the right operand.
  CType RhsConvTy;
};

AilExprPtr makeAilExpr(AilExprKind K, SourceLoc Loc);

//===----------------------------------------------------------------------===//
// Initialisers, declarations, statements
//===----------------------------------------------------------------------===//

struct AilInit {
  SourceLoc Loc;
  AilExprPtr E;              ///< scalar form (null if list form)
  std::vector<AilInit> List; ///< brace list form
  bool isList() const { return E == nullptr; }
};

enum class AilStmtKind {
  Expr,    ///< E (null = empty statement)
  Decl,    ///< a block-scope object: DeclSym/DeclTy/DeclInit
  Block,   ///< Body
  If,      ///< E, Body[0], optional Body[1]
  While,   ///< E, Body[0]
  Switch,  ///< E, Body[0]
  Case,    ///< CaseValue, Body[0]; LabelSym assigned at desugar
  Default, ///< Body[0]; LabelSym
  Label,   ///< LabelSym, Body[0]
  Goto,    ///< LabelSym
  Break,
  Continue,
  Return,  ///< optional E
};

struct AilStmt;
using AilStmtPtr = std::unique_ptr<AilStmt>;

struct AilStmt {
  AilStmtKind Kind;
  SourceLoc Loc;

  AilExprPtr E;
  std::vector<AilStmtPtr> Body;
  Symbol LabelSym;                  // Case/Default/Label/Goto
  Int128 CaseValue = 0;             // Case
  Symbol DeclSym;                   // Decl
  CType DeclTy;                     // Decl
  std::optional<AilInit> DeclInit;  // Decl
};

AilStmtPtr makeAilStmt(AilStmtKind K, SourceLoc Loc);

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

struct AilParam {
  Symbol Sym;
  CType Ty;
};

struct AilFunction {
  Symbol Sym;
  CType Ty; ///< function type
  std::vector<AilParam> Params;
  AilStmtPtr Body;
  SourceLoc Loc;
};

struct AilGlobal {
  Symbol Sym;
  CType Ty;
  std::optional<AilInit> Init; ///< absent = zero-initialised (static storage)
  SourceLoc Loc;
  bool IsStringLiteral = false;
};

/// The builtin library functions injected by the desugarer (§5.1: Cerberus
/// "supports only small parts of the standard libraries" — these are ours).
enum class Builtin {
  Printf,
  Malloc,
  Calloc,
  Free,
  Memcpy,
  Memmove,
  Memset,
  Memcmp,
  Strlen,
  Strcpy,
  Strcmp,
  Puts,
  Putchar,
  Realloc,
  Abort,
  Exit,
  Assert, ///< __cerb_assert(cond) — used by the de facto test suite
};

struct AilProgram {
  TagTable Tags;
  SymbolTable Syms;
  std::vector<AilGlobal> Globals;
  std::vector<AilFunction> Functions;
  std::map<unsigned, Builtin> Builtins; ///< symbol id -> builtin
  std::map<unsigned, CType> DeclaredFunctions; ///< all function decls
  Symbol Main; ///< invalid if the unit has no main (library-style unit)

  const AilFunction *findFunction(Symbol S) const {
    for (const AilFunction &F : Functions)
      if (F.Sym == S)
        return &F;
    return nullptr;
  }
};

} // namespace cerb::ail

#endif // CERB_AIL_AIL_H
