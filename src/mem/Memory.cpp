//===-- mem/Memory.cpp ----------------------------------------------------===//

#include "mem/Memory.h"

#include "trace/Trace.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstring>

using namespace cerb;
using namespace cerb::mem;
using ail::CType;
using ail::CTypeKind;

/// Function pointers are encoded in byte images at this synthetic base.
static constexpr uint64_t FuncAddrBase = 0xF0000000ull;

//===----------------------------------------------------------------------===//
// UB catalogue
//===----------------------------------------------------------------------===//

std::string_view cerb::mem::ubName(UBKind K) {
  switch (K) {
  case UBKind::ExceptionalCondition: return "Exceptional_condition";
  case UBKind::DivisionByZero: return "Division_by_zero";
  case UBKind::NegativeShift: return "Negative_shift";
  case UBKind::ShiftTooLarge: return "Shift_too_large";
  case UBKind::AccessOutOfBounds: return "Access_out_of_bounds";
  case UBKind::AccessDeadObject: return "Access_dead_object";
  case UBKind::AccessNull: return "Access_null_pointer";
  case UBKind::AccessNoProvenance: return "Access_empty_provenance";
  case UBKind::MisalignedAccess: return "Misaligned_access";
  case UBKind::EffectiveTypeViolation: return "Effective_type_violation";
  case UBKind::UninitialisedRead: return "Uninitialised_read";
  case UBKind::WriteToReadOnly: return "Write_to_read_only";
  case UBKind::FreeInvalidPointer: return "Free_invalid_pointer";
  case UBKind::DoubleFree: return "Double_free";
  case UBKind::OutOfBoundsArithmetic: return "Out_of_bounds_arithmetic";
  case UBKind::PtrDiffDifferentObjects: return "Ptrdiff_different_objects";
  case UBKind::RelationalDifferentObjects:
    return "Relational_different_objects";
  case UBKind::UnsequencedRace: return "Unsequenced_race";
  case UBKind::DataRace: return "Data_race";
  case UBKind::IndeterminateValueUse: return "Indeterminate_value_use";
  case UBKind::CapabilityTagViolation: return "Capability_tag_violation";
  case UBKind::ReachedEndOfNonVoid: return "End_of_non_void_function";
  }
  return "Unknown_UB";
}

std::string_view cerb::mem::ubDescription(UBKind K) {
  switch (K) {
  case UBKind::ExceptionalCondition:
    return "result of arithmetic not representable in its type (6.5p5)";
  case UBKind::DivisionByZero:
    return "division or remainder by zero (6.5.5p5)";
  case UBKind::NegativeShift:
    return "shift by a negative amount (6.5.7p3)";
  case UBKind::ShiftTooLarge:
    return "shift by at least the width of the type (6.5.7p3)";
  case UBKind::AccessOutOfBounds:
    return "access outside the bounds of the object the pointer's "
           "provenance designates (DR260)";
  case UBKind::AccessDeadObject:
    return "access to an object whose lifetime has ended (6.2.4p2)";
  case UBKind::AccessNull:
    return "dereference of a null pointer (6.5.3.2p4)";
  case UBKind::AccessNoProvenance:
    return "access via a pointer with empty provenance (DR260)";
  case UBKind::MisalignedAccess:
    return "access via an insufficiently aligned pointer (6.3.2.3p7)";
  case UBKind::EffectiveTypeViolation:
    return "access incompatible with the object's effective type (6.5p7)";
  case UBKind::UninitialisedRead:
    return "read of an uninitialised object (6.3.2.1p2)";
  case UBKind::WriteToReadOnly:
    return "attempt to modify a string literal (6.4.5p7)";
  case UBKind::FreeInvalidPointer:
    return "free() of a pointer not from an allocation function (7.22.3.3)";
  case UBKind::DoubleFree:
    return "free() of an already-deallocated region (7.22.3.3)";
  case UBKind::OutOfBoundsArithmetic:
    return "pointer arithmetic outside the object plus one-past (6.5.6p8)";
  case UBKind::PtrDiffDifferentObjects:
    return "subtraction of pointers to different objects (6.5.6p9)";
  case UBKind::RelationalDifferentObjects:
    return "relational comparison of pointers to different objects "
           "(6.5.8p5)";
  case UBKind::UnsequencedRace:
    return "two unsequenced conflicting accesses to an object (6.5p2)";
  case UBKind::DataRace:
    return "conflicting unsynchronised accesses in different threads "
           "(5.1.2.4p25)";
  case UBKind::IndeterminateValueUse:
    return "use of an indeterminate value where that is undefined";
  case UBKind::CapabilityTagViolation:
    return "CHERI: memory access via an untagged capability";
  case UBKind::ReachedEndOfNonVoid:
    return "control reached the end of a non-void function (6.9.1p12)";
  }
  return "unknown undefined behaviour";
}

std::string UndefinedBehaviour::str() const {
  std::string Out = fmt("UB<{0}>: {1}", ubName(Kind), ubDescription(Kind));
  if (!Detail.empty())
    Out += " — " + Detail;
  if (Loc.isValid())
    Out += " at " + Loc.str();
  return Out;
}

std::string MemValue::str() const {
  switch (Kind) {
  case MemValueKind::Unspecified:
    return fmt("unspec({0})", Ty.str());
  case MemValueKind::Integer:
    return IV.str();
  case MemValueKind::Pointer:
    return PV.str();
  case MemValueKind::Array: {
    std::vector<std::string> Parts;
    for (const MemValue &E : Elems)
      Parts.push_back(E.str());
    return "[" + join(Parts, ", ") + "]";
  }
  case MemValueKind::Struct:
  case MemValueKind::Union: {
    std::vector<std::string> Parts;
    for (const MemValue &E : Elems)
      Parts.push_back(E.str());
    return "{" + join(Parts, ", ") + "}";
  }
  case MemValueKind::Bytes:
    return fmt("bytes[{0}]", Raw.size());
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Policy presets
//===----------------------------------------------------------------------===//

MemoryPolicy MemoryPolicy::concrete() {
  MemoryPolicy P;
  P.Name = "concrete";
  P.TrackProvenance = false;
  P.EqMayConsultProvenance = false;
  P.PtrDiffAcrossObjectsUB = false;
  return P;
}

MemoryPolicy MemoryPolicy::defacto() {
  return MemoryPolicy(); // the defaults are the candidate de facto model
}

MemoryPolicy MemoryPolicy::strictIso() {
  MemoryPolicy P;
  P.Name = "strict-iso";
  P.PermitOOBConstruction = false;
  P.RelationalAcrossObjectsUB = true;
  P.EqMayConsultProvenance = true;
  P.StrictEffectiveTypes = true;
  P.UninitReadIsUB = true;
  P.UninitByteOpsAreUB = true;
  P.CheckAlignment = true;
  return P;
}

MemoryPolicy MemoryPolicy::cheri() {
  MemoryPolicy P;
  P.Name = "cheri";
  P.Cheri = true;
  P.CheckAlignment = true;
  return P;
}

std::optional<MemoryPolicy> MemoryPolicy::byName(std::string_view Name) {
  // Case-insensitive: "CHERI", "DeFacto", and "strictiso" are accepted
  // spellings of their presets (the alias list below is matched lowercase).
  std::string Lower(Name);
  for (char &C : Lower)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Lower == "concrete")
    return concrete();
  if (Lower == "defacto" || Lower == "de-facto")
    return defacto();
  if (Lower == "strict-iso" || Lower == "strictiso" || Lower == "strict" ||
      Lower == "iso")
    return strictIso();
  if (Lower == "cheri")
    return cheri();
  return std::nullopt;
}

Expected<MemoryPolicy> MemoryPolicy::named(std::string_view Name) {
  if (auto P = byName(Name))
    return *P;
  std::string Msg = "unknown memory-model policy '" + std::string(Name) +
                    "'; valid presets (case-insensitive):";
  for (const std::string &K : presetNames())
    Msg += " " + K;
  Msg += " (aliases: de-facto, strictIso, strict, iso)";
  return err(std::move(Msg));
}

const std::vector<std::string> &MemoryPolicy::presetNames() {
  static const std::vector<std::string> Names = {"concrete", "defacto",
                                                 "strict-iso", "cheri"};
  return Names;
}

std::vector<MemoryPolicy> MemoryPolicy::allPresets() {
  std::vector<MemoryPolicy> Out;
  for (const std::string &N : presetNames())
    Out.push_back(*byName(N));
  return Out;
}

uint64_t MemoryPolicy::fingerprint() const {
  // FNV-1a over one byte per knob, in declaration order. Appending new
  // knobs extends the stream (changing every fingerprint), which is
  // exactly the invalidation the serve cache wants.
  const bool Knobs[] = {
      TrackProvenance,    PermitOOBConstruction, RelationalAcrossObjectsUB,
      EqMayConsultProvenance, PtrDiffAcrossObjectsUB, StrictEffectiveTypes,
      UninitReadIsUB,     UninitByteOpsAreUB,    CheckAlignment,
      ReverseGlobalLayout, Cheri,                CheriExactEquals};
  uint64_t H = 0xcbf29ce484222325ull;
  for (bool K : Knobs) {
    H ^= K ? 1u : 0u;
    H *= 0x100000001b3ull;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Construction / allocation
//===----------------------------------------------------------------------===//

Memory::Memory(const ail::ImplEnv &Env, Scheduler &Sched, MemoryPolicy Policy)
    : Env(Env), Sched(Sched), Policy(std::move(Policy)) {}

void Memory::beginStaticLayout(
    const std::vector<std::pair<CType, std::string>> &Objects) {
  if (!Policy.ReverseGlobalLayout)
    return;
  // Assign ascending addresses to the objects in reverse declaration
  // order, so `int y=2, x=1;` places x immediately below y (the layout the
  // paper's provenance_basic_global_yx.c observes under GCC, §2.1).
  uint64_t Addr = NextAddr;
  for (auto It = Objects.rbegin(); It != Objects.rend(); ++It) {
    uint64_t A = Env.alignOf(It->first);
    Addr = align(Addr, A);
    PlannedAddr[It->second] = Addr;
    Addr += Env.sizeOf(It->first);
  }
  NextAddr = Addr;
}

MemByte *Memory::poolBytes(uint64_t N) {
  if (PoolUsed + N > PoolCap) {
    PoolCap = std::max<size_t>(N, 4096);
    BytePool.push_back(std::make_unique<MemByte[]>(PoolCap));
    PoolUsed = 0;
  }
  MemByte *P = BytePool.back().get() + PoolUsed;
  PoolUsed += N;
  return P;
}

PointerValue Memory::allocateObject(const CType &Ty, std::string Name,
                                    bool Static) {
  static trace::Counter CntAllocs("mem.allocs");
  CntAllocs.add();
  if (trace::enabled())
    trace::instant("mem.alloc", "mem", Name);
  uint64_t Size = Env.sizeOf(Ty);
  uint64_t Align = Env.alignOf(Ty);
  uint64_t Base;
  auto Planned =
      PlannedAddr.empty() ? PlannedAddr.end() : PlannedAddr.find(Name);
  if (Planned != PlannedAddr.end()) {
    Base = Planned->second;
    PlannedAddr.erase(Planned);
  } else {
    Base = align(NextAddr, Align);
    NextAddr = Base + Size;
  }

  Allocation A;
  A.Base = Base;
  A.Size = Size;
  A.Name = std::move(Name);
  A.Static = Static;
  A.DeclaredTy = Ty;
  A.Bytes = poolBytes(Size);
  if (Static)
    for (uint64_t I = 0; I < Size; ++I)
      A.Bytes[I].Value = 0; // static storage is zero-initialised (6.7.9p10)
  Allocs.push_back(std::move(A));

  PointerValue P = PointerValue::object(
      Provenance::alloc(Allocs.size() - 1), Base);
  if (Policy.Cheri)
    P.Cap = Capability{Base, Size, true};
  return P;
}

PointerValue Memory::allocateRegion(uint64_t Size, uint64_t Align) {
  static trace::Counter CntAllocs("mem.allocs");
  CntAllocs.add();
  trace::instant("mem.alloc", "mem");
  uint64_t Base = align(NextAddr, std::max<uint64_t>(Align, 1));
  NextAddr = Base + std::max<uint64_t>(Size, 1);

  Allocation A;
  A.Base = Base;
  A.Size = Size;
  A.Dynamic = true;
  A.Name = "<malloc>";
  A.Bytes = poolBytes(Size);
  Allocs.push_back(std::move(A));

  PointerValue P = PointerValue::object(
      Provenance::alloc(Allocs.size() - 1), Base);
  if (Policy.Cheri)
    P.Cap = Capability{Base, Size, true};
  return P;
}

void Memory::markReadOnly(const PointerValue &P) {
  assert(P.Prov.isAlloc() && "marking a non-allocation read-only");
  Allocs[P.Prov.AllocId].ReadOnly = true;
}

MemRes<Unit> Memory::killObject(const PointerValue &P) {
  assert(P.Prov.isAlloc() && "killing object without allocation provenance");
  static trace::Counter CntFrees("mem.frees");
  CntFrees.add();
  trace::instant("mem.free", "mem");
  Allocation &A = Allocs[P.Prov.AllocId];
  assert(A.Alive && "double kill of an object");
  A.Alive = false;
  return Unit{};
}

MemRes<Unit> Memory::freeRegion(const PointerValue &P) {
  if (P.isNull())
    return Unit{}; // free(NULL) is a no-op (7.22.3.3p2)
  static trace::Counter CntFrees("mem.frees");
  CntFrees.add();
  trace::instant("mem.free", "mem");
  uint64_t Id;
  if (P.Prov.isAlloc()) {
    Id = P.Prov.AllocId;
  } else if (!Policy.TrackProvenance) {
    auto Found = findByAddress(P.Addr, 0);
    if (!Found)
      return undef(UBKind::FreeInvalidPointer,
                   fmt("no live allocation at address {0}", P.Addr));
    Id = *Found;
  } else {
    return undef(UBKind::FreeInvalidPointer,
                 "free of a pointer with no allocation provenance");
  }
  Allocation &A = Allocs[Id];
  if (!A.Dynamic)
    return undef(UBKind::FreeInvalidPointer,
                 fmt("free of non-heap object '{0}'", A.Name));
  if (!A.Alive)
    return undef(UBKind::DoubleFree, fmt("region at {0}", A.Base));
  if (P.Addr != A.Base)
    return undef(UBKind::FreeInvalidPointer,
                 "free of a pointer into the middle of a region");
  A.Alive = false;
  return Unit{};
}

//===----------------------------------------------------------------------===//
// Access resolution
//===----------------------------------------------------------------------===//

std::optional<uint64_t> Memory::findByAddress(uint64_t Addr,
                                              uint64_t Size) const {
  for (size_t I = Allocs.size(); I-- > 0;) {
    const Allocation &A = Allocs[I];
    if (!A.Alive)
      continue;
    if (Addr >= A.Base && Addr + Size <= A.Base + A.Size &&
        (A.Size > 0 || Size == 0))
      return I;
  }
  return std::nullopt;
}

MemRes<uint64_t> Memory::resolveAccess(const PointerValue &P, uint64_t Size,
                                       bool ForWrite) const {
  if (P.isNull())
    return undef(UBKind::AccessNull);
  if (P.isFunction())
    return undef(UBKind::AccessOutOfBounds,
                 "object access through a function pointer");

  if (!Policy.TrackProvenance || P.Prov.isWildcard()) {
    if (auto Found = findByAddress(P.Addr, Size))
      return *Found;
    // Distinguish dead objects for a better diagnostic.
    for (size_t I = 0; I < Allocs.size(); ++I) {
      const Allocation &A = Allocs[I];
      if (!A.Alive && P.Addr >= A.Base && P.Addr + Size <= A.Base + A.Size)
        return undef(UBKind::AccessDeadObject,
                     fmt("storage of dead object '{0}'", A.Name));
    }
    return undef(UBKind::AccessOutOfBounds,
                 fmt("no live object contains [{0}, {0}+{1})", P.Addr, Size));
  }

  if (P.Prov.isEmpty())
    return undef(UBKind::AccessNoProvenance,
                 fmt("address {0} with empty provenance", P.Addr));

  assert(P.Prov.AllocId < Allocs.size() && "dangling allocation id");
  const Allocation &A = Allocs[P.Prov.AllocId];
  if (!A.Alive)
    return undef(UBKind::AccessDeadObject,
                 fmt("object '{0}' is no longer live", A.Name));
  if (P.Addr < A.Base || P.Addr + Size > A.Base + A.Size)
    return undef(
        UBKind::AccessOutOfBounds,
        fmt("[{0}, {0}+{1}) is outside '{2}' = [{3}, {3}+{4})", P.Addr, Size,
            A.Name, A.Base, A.Size));
  return P.Prov.AllocId;
}

MemRes<Unit> Memory::checkCheriAccess(const PointerValue &P,
                                      uint64_t Size) const {
  if (!Policy.Cheri)
    return Unit{};
  if (!P.Cap || !P.Cap->Tag)
    return undef(UBKind::CapabilityTagViolation,
                 "dereference of a capability without a valid tag");
  if (P.Addr < P.Cap->Base || P.Addr + Size > P.Cap->Base + P.Cap->Length)
    return undef(UBKind::AccessOutOfBounds,
                 "CHERI bounds check failed (hardware-enforced)");
  return Unit{};
}

/// Is an access of scalar type \p AccessTy at \p Off a legitimate view of
/// an object of declared type \p Ty? (6.5p7: the effective type itself, a
/// compatible type, or a member of a containing aggregate/union.)
static bool typeMatchesAt(const ail::ImplEnv &Env, const CType &Ty,
                          uint64_t Off, const CType &AccessTy) {
  if (Ty.isScalar()) {
    if (Off != 0)
      return false;
    if (Ty == AccessTy)
      return true;
    // Signed/unsigned siblings are compatible views (6.5p7).
    return Ty.isInteger() && AccessTy.isInteger() &&
           Env.widthOf(Ty.intKind()) == Env.widthOf(AccessTy.intKind());
  }
  if (Ty.isArray()) {
    uint64_t ES = Env.sizeOf(Ty.element());
    if (ES == 0)
      return false;
    return typeMatchesAt(Env, Ty.element(), Off % ES, AccessTy);
  }
  if (Ty.isStruct()) {
    const ail::TagDef &D = Env.tags().get(Ty.tag());
    for (size_t I = 0; I < D.Members.size(); ++I) {
      uint64_t MO = Env.offsetOf(Ty.tag(), I);
      uint64_t MS = Env.sizeOf(D.Members[I].Ty);
      if (Off >= MO && Off < MO + MS &&
          typeMatchesAt(Env, D.Members[I].Ty, Off - MO, AccessTy))
        return true;
    }
    return false;
  }
  if (Ty.isUnion()) {
    // Any member's layout is a legitimate view of a union.
    const ail::TagDef &D = Env.tags().get(Ty.tag());
    for (const ail::TagMember &M : D.Members)
      if (Off < Env.sizeOf(M.Ty) && typeMatchesAt(Env, M.Ty, Off, AccessTy))
        return true;
    return false;
  }
  return false;
}

MemRes<Unit> Memory::checkEffectiveType(Allocation &A, uint64_t Off,
                                        const CType &Ty, bool IsWrite) {
  if (!Policy.StrictEffectiveTypes || !Ty.isScalar())
    return Unit{};
  // Character-type accesses are always permitted (6.5p7 last bullet).
  if (Ty.isCharacter())
    return Unit{};
  if (A.DeclaredTy) {
    // Q75: an (unsigned) char array may NOT be used to hold other types
    // under a strict reading — its declared type is the effective type.
    if (!typeMatchesAt(Env, *A.DeclaredTy, Off, Ty))
      return undef(UBKind::EffectiveTypeViolation,
                   fmt("object '{0}' declared '{1}' accessed as '{2}'",
                       A.Name, A.DeclaredTy->str(), Ty.str()));
    return Unit{};
  }
  // malloc'd region: a store establishes the effective type; loads must
  // agree with it (6.5p6).
  auto It = A.EffectiveAt.find(Off);
  if (IsWrite) {
    A.EffectiveAt[Off] = Ty;
    return Unit{};
  }
  if (It != A.EffectiveAt.end() && !(It->second == Ty)) {
    bool Compatible = It->second.isInteger() && Ty.isInteger() &&
                      Env.widthOf(It->second.intKind()) ==
                          Env.widthOf(Ty.intKind());
    if (!Compatible)
      return undef(UBKind::EffectiveTypeViolation,
                   fmt("region written as '{0}' read as '{1}'",
                       It->second.str(), Ty.str()));
  }
  return Unit{};
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

void Memory::serialize(const CType &Ty, const MemValue &V,
                       std::vector<MemByte> &Out) {
  uint64_t Size = Env.sizeOf(Ty);
  if (V.Kind == MemValueKind::Unspecified) {
    Out.resize(Out.size() + Size);
    return;
  }
  if (V.Kind == MemValueKind::Bytes) {
    assert(V.Raw.size() == Size && "byte image size mismatch");
    Out.insert(Out.end(), V.Raw.begin(), V.Raw.end());
    return;
  }
  switch (Ty.kind()) {
  case CTypeKind::Integer: {
    assert(V.Kind == MemValueKind::Integer && "type/value mismatch");
    unsigned W = Env.widthOf(Ty.intKind()) / 8;
    UInt128 Bits = static_cast<UInt128>(V.IV.V);
    for (unsigned I = 0; I < W; ++I) {
      MemByte B;
      B.Value = static_cast<uint8_t>(Bits >> (8 * I));
      B.Prov = V.IV.Prov;
      if (Policy.Cheri && V.IV.Cap) {
        B.Cap = V.IV.Cap;
        B.PtrFrag = static_cast<int>(I);
      }
      Out.push_back(B);
    }
    return;
  }
  case CTypeKind::Pointer: {
    assert(V.Kind == MemValueKind::Pointer && "type/value mismatch");
    uint64_t Encoded = V.PV.isFunction() ? FuncAddrBase + *V.PV.FuncSym
                                         : V.PV.Addr;
    for (unsigned I = 0; I < 8; ++I) {
      MemByte B;
      B.Value = static_cast<uint8_t>(Encoded >> (8 * I));
      B.Prov = V.PV.Prov;
      B.PtrFrag = static_cast<int>(I);
      if (Policy.Cheri)
        B.Cap = V.PV.Cap;
      Out.push_back(B);
    }
    return;
  }
  case CTypeKind::Array: {
    assert(V.Kind == MemValueKind::Array && "type/value mismatch");
    uint64_t N = *Ty.arraySize();
    for (uint64_t I = 0; I < N; ++I) {
      if (I < V.Elems.size())
        serialize(Ty.element(), V.Elems[I], Out);
      else
        serialize(Ty.element(), MemValue::unspecified(Ty.element()), Out);
    }
    return;
  }
  case CTypeKind::Struct: {
    assert(V.Kind == MemValueKind::Struct && "type/value mismatch");
    const ail::TagDef &D = Env.tags().get(Ty.tag());
    size_t Start = Out.size();
    Out.resize(Start + Size); // padding bytes default to unspecified
    for (size_t I = 0; I < D.Members.size(); ++I) {
      std::vector<MemByte> MemberBytes;
      if (I < V.Elems.size())
        serialize(D.Members[I].Ty, V.Elems[I], MemberBytes);
      else
        serialize(D.Members[I].Ty,
                  MemValue::unspecified(D.Members[I].Ty), MemberBytes);
      uint64_t Off = Env.offsetOf(Ty.tag(), I);
      std::copy(MemberBytes.begin(), MemberBytes.end(),
                Out.begin() + Start + Off);
    }
    return;
  }
  case CTypeKind::Union: {
    assert(V.Kind == MemValueKind::Union && "type/value mismatch");
    const ail::TagDef &D = Env.tags().get(Ty.tag());
    size_t Start = Out.size();
    Out.resize(Start + Size);
    std::vector<MemByte> MemberBytes;
    serialize(D.Members[V.ActiveMember].Ty, V.Elems[0], MemberBytes);
    std::copy(MemberBytes.begin(), MemberBytes.end(), Out.begin() + Start);
    return;
  }
  default:
    assert(false && "cannot serialize this type");
  }
}

MemValue Memory::deserialize(const CType &Ty, const MemByte *Bytes) {
  switch (Ty.kind()) {
  case CTypeKind::Integer: {
    unsigned W = Env.widthOf(Ty.intKind()) / 8;
    UInt128 Bits = 0;
    Provenance Prov;
    bool First = true, AllSameProv = true;
    std::optional<Capability> Cap;
    bool CapConsistent = Policy.Cheri;
    for (unsigned I = 0; I < W; ++I) {
      const MemByte &B = Bytes[I];
      if (!B.Value)
        return MemValue::unspecified(Ty);
      Bits |= UInt128(*B.Value) << (8 * I);
      if (First) {
        Prov = B.Prov;
        Cap = B.Cap;
        First = false;
      } else {
        if (!(B.Prov == Prov))
          AllSameProv = false;
        if (!(B.Cap == Cap) || B.PtrFrag != static_cast<int>(I))
          CapConsistent = false;
      }
    }
    Int128 V = static_cast<Int128>(Bits);
    if (!Ty.isUnsigned() && W < 16) {
      // Sign-extend.
      Int128 SignBit = Int128(1) << (W * 8 - 1);
      if (V & SignBit)
        V -= Int128(1) << (W * 8);
    }
    IntegerValue IV(V, AllSameProv ? Prov : Provenance::empty());
    if (Policy.Cheri && CapConsistent && W == 8)
      IV.Cap = Cap;
    return MemValue::integer(Ty, IV);
  }
  case CTypeKind::Pointer: {
    uint64_t Encoded = 0;
    Provenance Prov;
    bool First = true, AllSameProv = true, FragsInOrder = true;
    std::optional<Capability> Cap;
    bool CapConsistent = true;
    for (unsigned I = 0; I < 8; ++I) {
      const MemByte &B = Bytes[I];
      if (!B.Value)
        return MemValue::unspecified(Ty);
      Encoded |= uint64_t(*B.Value) << (8 * I);
      if (B.PtrFrag != static_cast<int>(I))
        FragsInOrder = false;
      if (First) {
        Prov = B.Prov;
        Cap = B.Cap;
        First = false;
      } else {
        if (!(B.Prov == Prov))
          AllSameProv = false;
        if (!(B.Cap == Cap))
          CapConsistent = false;
      }
    }
    PointerValue PV;
    if (Encoded >= FuncAddrBase && Encoded < FuncAddrBase + 0x10000) {
      PV = PointerValue::function(static_cast<unsigned>(Encoded -
                                                        FuncAddrBase));
    } else {
      PV.Addr = Encoded;
      // §5.9: reconstruction from representation bytes carries the original
      // provenance as long as all bytes agree (indirect dataflow copying,
      // Q13-Q16); mixed-origin bytes give empty provenance.
      PV.Prov = AllSameProv ? Prov : Provenance::empty();
    }
    if (Policy.Cheri) {
      if (CapConsistent && FragsInOrder && Cap)
        PV.Cap = Cap;
      else
        PV.Cap = Capability{0, 0, false}; // tag cleared: unusable capability
    }
    return MemValue::pointer(Ty, PV);
  }
  case CTypeKind::Array: {
    uint64_t N = *Ty.arraySize();
    uint64_t ES = Env.sizeOf(Ty.element());
    std::vector<MemValue> Elems;
    Elems.reserve(N);
    for (uint64_t I = 0; I < N; ++I)
      Elems.push_back(deserialize(Ty.element(), Bytes + I * ES));
    return MemValue::array(std::move(Elems));
  }
  case CTypeKind::Struct:
  case CTypeKind::Union: {
    // Whole-aggregate loads produce an opaque byte image, so structure
    // copies carry padding bytes verbatim (§2.5 option 4).
    uint64_t Size = Env.sizeOf(Ty);
    return makeBytesValue(Ty, std::vector<MemByte>(Bytes, Bytes + Size));
  }
  default:
    assert(false && "cannot deserialize this type");
    return MemValue::unspecified(Ty);
  }
}

//===----------------------------------------------------------------------===//
// Loads and stores
//===----------------------------------------------------------------------===//

MemRes<MemValue> Memory::load(const CType &Ty, const PointerValue &P) {
  static trace::Counter CntLoads("mem.loads");
  CntLoads.add();
  uint64_t Size = Env.sizeOf(Ty);
  // CHERI checks fire first: the hardware faults on the tag/bounds before
  // any software-level provenance reasoning applies (§4).
  if (!P.isNull())
    CERB_MEMCHECK(checkCheriAccess(P, Size));
  CERB_MEMTRY(Id, resolveAccess(P, Size, /*ForWrite=*/false));
  if (Policy.CheckAlignment && P.Addr % Env.alignOf(Ty) != 0)
    return undef(UBKind::MisalignedAccess,
                 fmt("address {0} for type '{1}'", P.Addr, Ty.str()));
  Allocation &A = Allocs[Id];
  CERB_MEMCHECK(checkEffectiveType(A, P.Addr - A.Base, Ty, false));
  if (Policy.UninitReadIsUB && Ty.isScalar()) {
    for (uint64_t I = 0; I < Size; ++I)
      if (!A.Bytes[P.Addr - A.Base + I].Value)
        return undef(UBKind::UninitialisedRead,
                     fmt("byte {0} of '{1}'", P.Addr - A.Base + I, A.Name));
  }
  return deserialize(Ty, A.Bytes + (P.Addr - A.Base));
}

MemRes<Unit> Memory::store(const CType &Ty, const PointerValue &P,
                           const MemValue &V) {
  static trace::Counter CntStores("mem.stores");
  CntStores.add();
  uint64_t Size = Env.sizeOf(Ty);
  if (!P.isNull())
    CERB_MEMCHECK(checkCheriAccess(P, Size));
  CERB_MEMTRY(Id, resolveAccess(P, Size, /*ForWrite=*/true));
  if (Policy.CheckAlignment && P.Addr % Env.alignOf(Ty) != 0)
    return undef(UBKind::MisalignedAccess,
                 fmt("address {0} for type '{1}'", P.Addr, Ty.str()));
  Allocation &A = Allocs[Id];
  if (A.ReadOnly)
    return undef(UBKind::WriteToReadOnly,
                 fmt("store into string literal '{0}'", A.Name));
  CERB_MEMCHECK(checkEffectiveType(A, P.Addr - A.Base, Ty, true));
  StoreScratch.clear();
  StoreScratch.reserve(Size);
  serialize(Ty, V, StoreScratch);
  assert(StoreScratch.size() == Size && "serialized size mismatch");
  std::copy(StoreScratch.begin(), StoreScratch.end(),
            A.Bytes + (P.Addr - A.Base));
  return Unit{};
}

//===----------------------------------------------------------------------===//
// Pointer operations
//===----------------------------------------------------------------------===//

MemRes<IntegerValue> Memory::ptrEq(const PointerValue &A,
                                   const PointerValue &B) {
  auto Result = [](bool V) { return IntegerValue(V ? 1 : 0); };
  if (A.isFunction() || B.isFunction())
    return Result(A.isFunction() && B.isFunction() &&
                  *A.FuncSym == *B.FuncSym);
  if (A.isNull() || B.isNull())
    return Result(A.isNull() && B.isNull());

  if (Policy.Cheri && Policy.CheriExactEquals) {
    // §4: CHERI added an exact-equals comparing address *and* metadata.
    return Result(A.Addr == B.Addr && A.Cap == B.Cap);
  }

  bool AddrEqual = A.Addr == B.Addr;
  if (AddrEqual && Policy.EqMayConsultProvenance && A.Prov.isAlloc() &&
      B.Prov.isAlloc() && !(A.Prov == B.Prov)) {
    // Q2: same representation, different provenance: the implementation may
    // take provenance into account. Modelled as a nondeterministic choice
    // (§2.1: "soundly modelled by making a nondeterministic choice at each
    // such comparison").
    if (Sched.choose(2, "ptr-eq-provenance") == 1)
      return Result(false);
  }
  return Result(AddrEqual);
}

MemRes<IntegerValue> Memory::ptrRel(unsigned Op, const PointerValue &A,
                                    const PointerValue &B) {
  if (Policy.RelationalAcrossObjectsUB && A.Prov.isAlloc() &&
      B.Prov.isAlloc() && !(A.Prov == B.Prov))
    return undef(UBKind::RelationalDifferentObjects,
                 fmt("comparing {0} with {1}", A.str(), B.str()));
  // Q25 (de facto): relational comparison ignores provenance and compares
  // the concrete addresses.
  bool R = false;
  switch (Op) {
  case 0: R = A.Addr < B.Addr; break;
  case 1: R = A.Addr > B.Addr; break;
  case 2: R = A.Addr <= B.Addr; break;
  case 3: R = A.Addr >= B.Addr; break;
  default: assert(false && "bad relational op");
  }
  return IntegerValue(R ? 1 : 0);
}

MemRes<IntegerValue> Memory::ptrDiff(const CType &ElemTy,
                                     const PointerValue &A,
                                     const PointerValue &B) {
  if (Policy.PtrDiffAcrossObjectsUB && !(A.Prov == B.Prov) &&
      (A.Prov.isAlloc() && B.Prov.isAlloc()))
    return undef(UBKind::PtrDiffDifferentObjects,
                 fmt("subtracting {0} from {1}", B.str(), A.str()));
  Int128 Diff = Int128(A.Addr) - Int128(B.Addr);
  Int128 ES = Int128(Env.sizeOf(ElemTy));
  // 6.5.6p9: both point into the same array; the difference is in elements.
  // The result is a pure integer — inter-object offsets must not carry
  // either provenance (§5.9, Q9).
  return IntegerValue(Diff / ES, Provenance::empty());
}

MemRes<IntegerValue> Memory::intFromPtr(const CType &IntTy,
                                        const PointerValue &P) {
  Int128 Raw = P.isFunction() ? Int128(FuncAddrBase + *P.FuncSym)
                              : Int128(P.Addr);
  Int128 V = Env.convert(IntTy.intKind(), Raw);
  IntegerValue IV(V, P.Prov);
  if (Policy.Cheri && Env.widthOf(IntTy.intKind()) == 64)
    IV.Cap = P.Cap; // uintptr_t keeps the capability (§4)
  return IV;
}

MemRes<PointerValue> Memory::ptrFromInt(const IntegerValue &I) {
  if (I.V == 0)
    return PointerValue::null();
  PointerValue P;
  P.Addr = static_cast<uint64_t>(I.V);
  // GCC's documented rule ("the resulting pointer must reference the same
  // object as the original pointer"): the provenance carried through the
  // integer, if any, is restored (Q5).
  P.Prov = I.Prov;
  if (Policy.Cheri)
    P.Cap = I.Cap ? *I.Cap : Capability{0, 0, false};
  return P;
}

MemRes<PointerValue> Memory::arrayShift(const PointerValue &P,
                                        const CType &ElemTy, Int128 Index) {
  assert(!P.isFunction() && "array shift on function pointer");
  Int128 NewAddr = Int128(P.Addr) + Index * Int128(Env.sizeOf(ElemTy));
  if (NewAddr < 0)
    return undef(UBKind::OutOfBoundsArithmetic, "pointer address underflow");
  PointerValue R = P;
  R.Addr = static_cast<uint64_t>(NewAddr);
  if (!Policy.PermitOOBConstruction && P.Prov.isAlloc()) {
    // Strict ISO (6.5.6p8): the result must point within the same object
    // or one past its end; otherwise the *arithmetic* is UB (vs the de
    // facto transient-OOB latitude, Q31).
    const Allocation &A = Allocs[P.Prov.AllocId];
    if (R.Addr < A.Base || R.Addr > A.Base + A.Size)
      return undef(UBKind::OutOfBoundsArithmetic,
                   fmt("shift to {0} leaves '{1}' = [{2}, {2}+{3}]", R.Addr,
                       A.Name, A.Base, A.Size));
  }
  return R;
}

PointerValue Memory::memberShift(const PointerValue &P, unsigned Tag,
                                 size_t MemberIdx) {
  PointerValue R = P;
  R.Addr = P.Addr + Env.offsetOf(Tag, MemberIdx);
  return R;
}

bool Memory::validForDeref(const CType &Ty, const PointerValue &P) const {
  auto R = resolveAccess(P, Env.sizeOf(Ty), /*ForWrite=*/false);
  return static_cast<bool>(R);
}

IntegerValue Memory::finishArith(ArithOp Op, const IntegerValue &A,
                                 const IntegerValue &B, Int128 NumericResult,
                                 const CType &ResultTy) {
  IntegerValue R(NumericResult);

  if (Policy.Cheri) {
    // §4: CHERI C provenance in arithmetic "is only inherited from the
    // left-hand side", and non-uintptr_t-sized integers carry none.
    bool Ptrish = Env.widthOf(ResultTy.intKind()) == 64;
    if (Ptrish) {
      R.Prov = A.Prov;
      if (A.Cap && A.Cap->Tag) {
        R.Cap = A.Cap;
        if (Op == ArithOp::And) {
          // The offset-AND quirk: `i & 3u` on a capability-carrying
          // uintptr_t ANDs the *offset*, then re-adds the base — so the
          // result is non-zero even when the low bits of the address are
          // all zero. This is exactly the §4 finding.
          Int128 Offset = A.V - Int128(A.Cap->Base);
          R.V = Int128(A.Cap->Base) + (Offset & B.V);
        }
      }
    }
    return R;
  }

  if (!Policy.TrackProvenance)
    return R; // concrete: integers are just integers

  // Candidate de facto model (§5.9): at-most-one provenance; subtraction of
  // two provenanced values yields a pure integer (an offset).
  if (Op == ArithOp::Sub && !A.Prov.isEmpty() && !B.Prov.isEmpty())
    R.Prov = Provenance::empty();
  else
    R.Prov = combineProvenance(A.Prov, B.Prov);
  return R;
}

PointerValue Memory::castPointer(const CType &ToTy, const PointerValue &P) {
  return P; // representation-identity casts in all current instantiations
}

//===----------------------------------------------------------------------===//
// Byte-level library support
//===----------------------------------------------------------------------===//

MemRes<Unit> Memory::copyBytes(const PointerValue &Dst,
                               const PointerValue &Src, uint64_t N) {
  if (N == 0)
    return Unit{};
  CERB_MEMTRY(DstId, resolveAccess(Dst, N, /*ForWrite=*/true));
  if (Allocs[DstId].ReadOnly)
    return undef(UBKind::WriteToReadOnly,
                 fmt("memcpy into string literal '{0}'",
                     Allocs[DstId].Name));
  CERB_MEMTRY(SrcId, resolveAccess(Src, N, /*ForWrite=*/false));
  CERB_MEMCHECK(checkCheriAccess(Dst, N));
  CERB_MEMCHECK(checkCheriAccess(Src, N));
  Allocation &DA = Allocs[DstId];
  const Allocation &SA = Allocs[SrcId];
  // Copy representation bytes verbatim: provenance travels with the bytes,
  // which is what makes user-level memcpy of pointers work (§2.3).
  std::vector<MemByte> Tmp(SA.Bytes + (Src.Addr - SA.Base),
                           SA.Bytes + (Src.Addr - SA.Base) + N);
  std::copy(Tmp.begin(), Tmp.end(), DA.Bytes + (Dst.Addr - DA.Base));
  return Unit{};
}

MemRes<IntegerValue> Memory::compareBytes(const PointerValue &A,
                                          const PointerValue &B,
                                          uint64_t N) {
  if (N == 0)
    return IntegerValue(0);
  CERB_MEMTRY(AId, resolveAccess(A, N, /*ForWrite=*/false));
  CERB_MEMTRY(BId, resolveAccess(B, N, /*ForWrite=*/false));
  const Allocation &AA = Allocs[AId];
  const Allocation &BA = Allocs[BId];
  for (uint64_t I = 0; I < N; ++I) {
    const MemByte &BA1 = AA.Bytes[A.Addr - AA.Base + I];
    const MemByte &BB1 = BA.Bytes[B.Addr - BA.Base + I];
    if ((!BA1.Value || !BB1.Value)) {
      if (Policy.UninitByteOpsAreUB)
        return undef(UBKind::UninitialisedRead,
                     "memcmp over unspecified bytes");
      // De facto latitude: unspecified bytes compare as an arbitrary but
      // stable value; we use 0.
    }
    uint8_t VA = BA1.Value.value_or(0), VB = BB1.Value.value_or(0);
    if (VA != VB)
      return IntegerValue(VA < VB ? -1 : 1);
  }
  return IntegerValue(0);
}

MemRes<Unit> Memory::setBytes(const PointerValue &P, uint8_t Byte,
                              uint64_t N) {
  if (N == 0)
    return Unit{};
  CERB_MEMTRY(Id, resolveAccess(P, N, /*ForWrite=*/true));
  Allocation &A = Allocs[Id];
  if (A.ReadOnly)
    return undef(UBKind::WriteToReadOnly,
                 fmt("memset into string literal '{0}'", A.Name));
  for (uint64_t I = 0; I < N; ++I) {
    MemByte &B = A.Bytes[P.Addr - A.Base + I];
    B = MemByte{};
    B.Value = Byte;
  }
  return Unit{};
}

MemRes<std::string> Memory::readString(const PointerValue &P) {
  std::string Out;
  PointerValue Cur = P;
  for (uint64_t I = 0; I < (1u << 20); ++I) {
    CERB_MEMTRY(Id, resolveAccess(Cur, 1, /*ForWrite=*/false));
    const Allocation &A = Allocs[Id];
    const MemByte &B = A.Bytes[Cur.Addr - A.Base];
    if (!B.Value) {
      if (Policy.UninitByteOpsAreUB)
        return undef(UBKind::UninitialisedRead, "string read");
      return Out; // treat unspecified as terminator under lenient models
    }
    if (*B.Value == 0)
      return Out;
    Out.push_back(static_cast<char>(*B.Value));
    Cur.Addr += 1;
  }
  return undef(UBKind::AccessOutOfBounds, "unterminated string");
}
