//===-- mem/Memory.h - The pluggable memory object model --------*- C++ -*-===//
///
/// \file
/// Cerberus is "parameterised on its memory model" (abstract). This is that
/// parameter: every Core `ptrop` and memory action (Fig. 2) is answered
/// here. One byte-backed implementation serves four instantiations selected
/// by MemoryPolicy presets:
///
///  - `concrete`  — flat addresses, no provenance (K&R's "the same sort of
///                  objects that most computers do", §2.1);
///  - `defacto`   — the paper's candidate de facto model (§5.9): DR260
///                  allocation-ID provenance on pointers *and* integers,
///                  byte-granularity provenance (pointer copying, §2.3),
///                  out-of-bounds construction permitted with access-time
///                  checks (Q31), relational comparison ignoring provenance
///                  (Q25), inter-object subtraction forbidden (Q9);
///  - `strictIso` — an ISO-faithful reading: effective types enforced,
///                  relational comparison across objects UB (6.5.8p5),
///                  out-of-bounds arithmetic UB at the arithmetic (6.5.6p8);
///  - `cheri`     — a simulation of CHERI C (§4): capability-carrying
///                  pointers and uintptr_t values with base/length/tag,
///                  exact-equality, and the offset-AND quirk.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_MEM_MEMORY_H
#define CERB_MEM_MEMORY_H

#include "ail/CType.h"
#include "mem/UB.h"
#include "mem/Value.h"
#include "support/Expected.h"
#include "support/Scheduler.h"

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cerb::mem {


/// The knobs distinguishing the model instantiations (and the §3 analysis-
/// tool profiles, which are also policies).
struct MemoryPolicy {
  std::string Name = "defacto";

  /// Access-time provenance checking (DR260). Off = concrete semantics.
  bool TrackProvenance = true;
  /// Q31: permit transient out-of-bounds pointer construction; when false,
  /// pointer arithmetic leaving [base, base+size] is UB immediately.
  bool PermitOOBConstruction = true;
  /// Q25: when true, `<` on pointers to different objects is UB (ISO
  /// 6.5.8p5); when false the comparison simply compares addresses.
  bool RelationalAcrossObjectsUB = false;
  /// Q2: pointer equality may nondeterministically consult provenance.
  bool EqMayConsultProvenance = true;
  /// Q9: inter-object pointer subtraction is UB (both ISO and the candidate
  /// de facto model forbid it; the concrete model allows it).
  bool PtrDiffAcrossObjectsUB = true;
  /// Effective-type (TBAA) enforcement, 6.5p6-7 (Q75 etc.).
  bool StrictEffectiveTypes = false;
  /// §2.4 option (1): reading an uninitialised object is UB outright.
  /// Otherwise reads yield unspecified values that propagate daemonically.
  bool UninitReadIsUB = false;
  /// Byte-level library operations (memcmp, string reads) over
  /// unspecified bytes are UB. KCC's semantics is strict for scalar
  /// uninitialised reads "but not for padding bytes" (§3), so the two
  /// knobs are separate.
  bool UninitByteOpsAreUB = false;
  /// Alignment checking on access (6.3.2.3p7).
  bool CheckAlignment = false;
  /// Lay file-scope objects out at decreasing declaration order, matching
  /// the GCC behaviour the paper's provenance_basic_global_yx.c example
  /// relies on (`int y=2, x=1;` placing x immediately below y).
  bool ReverseGlobalLayout = true;
  /// CHERI capability semantics (§4).
  bool Cheri = false;
  /// CHERI: compare pointers by address *and* metadata (the instruction the
  /// CHERI developers added in response to the paper's findings).
  bool CheriExactEquals = true;

  static MemoryPolicy concrete();
  static MemoryPolicy defacto();
  static MemoryPolicy strictIso();
  static MemoryPolicy cheri();

  /// Looks a preset up by name, case-insensitively. Accepts the canonical
  /// Name of each preset ("concrete", "defacto", "strict-iso", "cheri")
  /// plus common aliases ("de-facto", "strictIso", "strict", "iso");
  /// unknown names yield nullopt. This is the single source of policy
  /// spelling for CLIs, benches, and tests.
  static std::optional<MemoryPolicy> byName(std::string_view Name);

  /// byName with a usable diagnostic: an unknown name returns an error
  /// message that lists the valid presets, so every CLI/protocol surface
  /// reports the same self-describing failure instead of a bare nullopt.
  static Expected<MemoryPolicy> named(std::string_view Name);

  /// The canonical preset names, in the order the paper discusses them.
  static const std::vector<std::string> &presetNames();

  /// All four presets, in presetNames() order (for sweeps).
  static std::vector<MemoryPolicy> allPresets();

  /// FNV-1a hash over every semantics-bearing knob (Name excluded: it is a
  /// label, not semantics). Two policies with equal fingerprints answer
  /// every memory-model question identically, so the serve result cache
  /// keys on this — a custom policy aliasing a preset shares its entries,
  /// and any knob change invalidates them.
  uint64_t fingerprint() const;
};

/// One allocation (object or heap region).
struct Allocation {
  uint64_t Base = 0;
  uint64_t Size = 0;
  bool Alive = true;
  bool Dynamic = false; ///< from malloc (killable only by free)
  bool Static = false;  ///< static storage duration (zero-initialised)
  std::string Name;     ///< for diagnostics
  std::optional<ail::CType> DeclaredTy;
  /// String literals: defined programs never write them (6.4.5p7).
  bool ReadOnly = false;
  /// Effective types established by stores into a malloc'd region
  /// (offset -> scalar type); used when StrictEffectiveTypes.
  std::map<uint64_t, ail::CType> EffectiveAt;
  /// Representation bytes (Size of them). Points into the owning Memory's
  /// bump pool: objects are never released individually (kill only marks
  /// !Alive), so one pool freed with the Memory replaces one heap
  /// allocation per created object.
  MemByte *Bytes = nullptr;
};

/// The memory state of one execution.
class Memory {
public:
  Memory(const ail::ImplEnv &Env, Scheduler &Sched, MemoryPolicy Policy);

  const MemoryPolicy &policy() const { return Policy; }

  //===------------------------------------------------------------------===//
  // Allocation (Core create/alloc/kill actions, §5.7)
  //===------------------------------------------------------------------===//

  /// Creates an object of type \p Ty. Static-storage objects are zero-
  /// initialised; automatic objects start with unspecified bytes.
  PointerValue allocateObject(const ail::CType &Ty, std::string Name,
                              bool Static);
  /// Creates an untyped region (malloc). Size 0 returns a unique pointer.
  PointerValue allocateRegion(uint64_t Size, uint64_t Align);
  /// Marks an allocation immutable (string literals, after their
  /// initialisation has run).
  void markReadOnly(const PointerValue &P);
  /// Ends the lifetime of an object (block exit / goto, §5.7/§5.8).
  MemRes<Unit> killObject(const PointerValue &P);
  /// free(): UB on non-heap/double free; free(NULL) is a no-op.
  MemRes<Unit> freeRegion(const PointerValue &P);

  //===------------------------------------------------------------------===//
  // Accesses (Core load/store actions)
  //===------------------------------------------------------------------===//

  MemRes<MemValue> load(const ail::CType &Ty, const PointerValue &P);
  MemRes<Unit> store(const ail::CType &Ty, const PointerValue &P,
                     const MemValue &V);

  //===------------------------------------------------------------------===//
  // Pointer operations (Core ptrop, Fig. 2)
  //===------------------------------------------------------------------===//

  MemRes<IntegerValue> ptrEq(const PointerValue &A, const PointerValue &B);
  /// Op is one of Lt/Gt/Le/Ge by index 0..3.
  MemRes<IntegerValue> ptrRel(unsigned Op, const PointerValue &A,
                              const PointerValue &B);
  MemRes<IntegerValue> ptrDiff(const ail::CType &ElemTy,
                               const PointerValue &A, const PointerValue &B);
  MemRes<IntegerValue> intFromPtr(const ail::CType &IntTy,
                                  const PointerValue &P);
  MemRes<PointerValue> ptrFromInt(const IntegerValue &I);
  MemRes<PointerValue> arrayShift(const PointerValue &P,
                                  const ail::CType &ElemTy, Int128 Index);
  PointerValue memberShift(const PointerValue &P, unsigned Tag,
                           size_t MemberIdx);
  /// Is a load of \p Ty through \p P defined right now?
  bool validForDeref(const ail::CType &Ty, const PointerValue &P) const;

  /// Model-governed integer arithmetic finishing: given the numeric result
  /// of `A op B`, decide the provenance (Q5: at-most-one provenance) and,
  /// under CHERI, the capability metadata — including the §4 offset-AND
  /// quirk, which may *change the numeric value*.
  IntegerValue finishArith(ArithOp Op, const IntegerValue &A,
                           const IntegerValue &B, Int128 NumericResult,
                           const ail::CType &ResultTy);

  /// Conversion of a pointer value when cast between pointer types: the
  /// CHERI model narrows/keeps capabilities, others pass through.
  PointerValue castPointer(const ail::CType &ToTy, const PointerValue &P);

  //===------------------------------------------------------------------===//
  // Byte-level library support (memcpy/memcmp/memset/strlen/printf %s)
  //===------------------------------------------------------------------===//

  MemRes<Unit> copyBytes(const PointerValue &Dst, const PointerValue &Src,
                         uint64_t N);
  MemRes<IntegerValue> compareBytes(const PointerValue &A,
                                    const PointerValue &B, uint64_t N);
  MemRes<Unit> setBytes(const PointerValue &P, uint8_t Byte, uint64_t N);
  /// Reads a NUL-terminated byte string (for printf %s / strlen).
  MemRes<std::string> readString(const PointerValue &P);

  //===------------------------------------------------------------------===//
  // Introspection (tests, benches, the §3 tool profiles)
  //===------------------------------------------------------------------===//

  const std::vector<Allocation> &allocations() const { return Allocs; }
  const ail::ImplEnv &env() const { return Env; }
  /// Reserves layout so that the *next* N static objects are laid out
  /// adjacently in reverse order (see MemoryPolicy::ReverseGlobalLayout).
  void beginStaticLayout(const std::vector<std::pair<ail::CType, std::string>>
                             &Objects);

private:
  const ail::ImplEnv &Env;
  Scheduler &Sched;
  MemoryPolicy Policy;
  std::vector<Allocation> Allocs;
  uint64_t NextAddr = 0x1000;
  /// Pre-computed addresses for the reverse global layout.
  std::map<std::string, uint64_t> PlannedAddr;

  /// Chunked bump pool backing Allocation::Bytes. Chunk growth never moves
  /// previously handed-out storage, so Allocation::Bytes pointers stay
  /// valid for the Memory's lifetime.
  std::vector<std::unique_ptr<MemByte[]>> BytePool;
  size_t PoolUsed = 0, PoolCap = 0;
  MemByte *poolBytes(uint64_t N);
  /// Staging buffer for store() serialization, reused across stores so a
  /// scalar store does not heap-allocate.
  std::vector<MemByte> StoreScratch;

  /// Finds the allocation footprint an access [Addr, Addr+Size) must lie
  /// in, honouring provenance per the policy. Returns the allocation id.
  MemRes<uint64_t> resolveAccess(const PointerValue &P, uint64_t Size,
                                 bool ForWrite) const;
  /// Concrete lookup: the live allocation containing [Addr, Addr+Size).
  std::optional<uint64_t> findByAddress(uint64_t Addr, uint64_t Size) const;

  MemRes<Unit> checkEffectiveType(Allocation &A, uint64_t Off,
                                  const ail::CType &Ty, bool IsWrite);
  MemRes<Unit> checkCheriAccess(const PointerValue &P, uint64_t Size) const;

  void serialize(const ail::CType &Ty, const MemValue &V,
                 std::vector<MemByte> &Out);
  MemValue deserialize(const ail::CType &Ty, const MemByte *Bytes);

  uint64_t align(uint64_t Addr, uint64_t Align) const {
    return (Addr + Align - 1) / Align * Align;
  }
};

} // namespace cerb::mem

#endif // CERB_MEM_MEMORY_H
