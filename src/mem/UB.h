//===-- mem/UB.h - Undefined behaviour catalogue ----------------*- C++ -*-===//
///
/// \file
/// The catalogue of undefined behaviours our semantics can report (§5.4:
/// "terminates execution and reports which undefined behaviour has been
/// violated, together with the C source location"). Names follow the
/// paper's Core `undef()` identifiers where it shows them (Fig. 3:
/// Exceptional_condition, Negative_shift, Shift_too_large).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_MEM_UB_H
#define CERB_MEM_UB_H

#include "support/SourceLoc.h"
#include "trace/Trace.h"

#include <string>
#include <string_view>
#include <variant>

namespace cerb::mem {

enum class UBKind {
  // Arithmetic (elaboration-inserted undef() tests, Fig. 3).
  ExceptionalCondition, ///< signed overflow / unrepresentable result 6.5p5
  DivisionByZero,       ///< 6.5.5p5
  NegativeShift,        ///< 6.5.7p3
  ShiftTooLarge,        ///< 6.5.7p3

  // Memory accesses (detected by the memory object model).
  AccessOutOfBounds,     ///< access outside the provenance's footprint
  AccessDeadObject,      ///< object lifetime has ended 6.2.4p2
  AccessNull,            ///< dereferencing a null pointer 6.5.3.2p4
  AccessNoProvenance,    ///< access via empty-provenance pointer (DR260)
  MisalignedAccess,      ///< 6.3.2.3p7
  EffectiveTypeViolation,///< 6.5p6-7 (strict/TBAA models only)
  UninitialisedRead,     ///< trap-representation discipline 6.3.2.1p2
  WriteToReadOnly,       ///< modifying a string literal 6.4.5p7
  FreeInvalidPointer,    ///< 7.22.3.3p2
  DoubleFree,            ///< 7.22.3.3p2
  OutOfBoundsArithmetic, ///< pointer arithmetic past the object 6.5.6p8
                         ///< (strict/ISO models; de facto permits transient)
  PtrDiffDifferentObjects, ///< 6.5.6p9
  RelationalDifferentObjects, ///< 6.5.8p5 (Q25; strict model only)

  // Sequencing and concurrency.
  UnsequencedRace, ///< two conflicting unsequenced accesses 6.5p2
  DataRace,        ///< conflicting accesses in different threads 5.1.2.4p25

  // Values.
  IndeterminateValueUse, ///< using an unspecified value where UB (Q43/Q52)
  CapabilityTagViolation,///< CHERI: access via an untagged capability

  // Control.
  ReachedEndOfNonVoid, ///< flowing off a non-void function *and using* the
                       ///< value 6.9.1p12 (we report at the fall-off)
};

/// Short stable identifier (Core `undef(<name>)` spelling).
std::string_view ubName(UBKind K);
/// Human-readable description with ISO clause.
std::string_view ubDescription(UBKind K);

/// An undefined behaviour occurrence.
struct UndefinedBehaviour {
  UBKind Kind;
  std::string Detail;
  SourceLoc Loc; ///< C source location, attached by the dynamics

  std::string str() const;
};

/// Value-or-UB result used throughout the memory interface and dynamics.
template <typename T> class MemRes {
public:
  MemRes(T Value) : Storage(std::in_place_index<0>, std::move(Value)) {}
  MemRes(UndefinedBehaviour U) : Storage(std::in_place_index<1>, std::move(U)) {}

  explicit operator bool() const { return Storage.index() == 0; }
  T &operator*() { return std::get<0>(Storage); }
  const T &operator*() const { return std::get<0>(Storage); }
  T *operator->() { return &std::get<0>(Storage); }
  const UndefinedBehaviour &ub() const { return std::get<1>(Storage); }
  UndefinedBehaviour takeUB() { return std::move(std::get<1>(Storage)); }

private:
  std::variant<T, UndefinedBehaviour> Storage;
};

/// Unit type for MemRes<Unit>.
struct Unit {};

/// Builds an UndefinedBehaviour value.
inline UndefinedBehaviour undef(UBKind K, std::string Detail = "") {
  static trace::Counter CntUB("mem.ub");
  CntUB.add();
  if (trace::enabled())
    trace::instant("mem.ub", "mem", std::string(ubName(K)));
  return UndefinedBehaviour{K, std::move(Detail), SourceLoc()};
}

/// Propagates UB from a MemRes expression, binding the value otherwise.
#define CERB_MEMTRY(Var, Expr)                                                 \
  auto Var##OrUB = (Expr);                                                     \
  if (!Var##OrUB)                                                              \
    return Var##OrUB.takeUB();                                                 \
  auto &Var = *Var##OrUB

#define CERB_MEMCHECK(Expr)                                                    \
  do {                                                                         \
    auto CerbMemResult = (Expr);                                               \
    if (!CerbMemResult)                                                        \
      return CerbMemResult.takeUB();                                           \
  } while (false)

} // namespace cerb::mem

#endif // CERB_MEM_UB_H
