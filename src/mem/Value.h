//===-- mem/Value.h - Memory-model value representations --------*- C++ -*-===//
///
/// \file
/// The value representations of the memory layout model (§5.9): pointer and
/// integer values carry *provenance* — empty for NULL and pure integers, an
/// allocation ID for values derived from an object, or a wildcard (for
/// pointers from IO). These are opaque to Core (Fig. 2: "intval, ..., ptrval
/// and memval are the representations of values from the memory layout
/// model ... opaque as far as the rest of Core is concerned").
///
/// For the CHERI instantiation (§4) integer and pointer values additionally
/// carry capability metadata (base/length/offset/tag), which reproduces the
/// paper's findings such as the `(i & 3u)` offset-AND quirk.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_MEM_VALUE_H
#define CERB_MEM_VALUE_H

#include "ail/CType.h"
#include "support/Format.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cerb::mem {

//===----------------------------------------------------------------------===//
// Provenance
//===----------------------------------------------------------------------===//

/// C-level binary arithmetic operators as seen by the model's arithmetic
/// hooks (Memory::finishArith): the model decides provenance and capability
/// consequences of each (Q5, §4).
enum class ArithOp { Add, Sub, Mul, Div, Rem, Shl, Shr, And, Or, Xor };

enum class ProvKind {
  Empty,    ///< NULL pointers and pure integers
  Alloc,    ///< derived from a specific allocation (DR260's unique ID)
  Wildcard, ///< pointers from IO / unknown origin: may alias anything
};

struct Provenance {
  ProvKind Kind = ProvKind::Empty;
  uint64_t AllocId = 0;

  static Provenance empty() { return Provenance{}; }
  static Provenance alloc(uint64_t Id) {
    return Provenance{ProvKind::Alloc, Id};
  }
  static Provenance wildcard() {
    return Provenance{ProvKind::Wildcard, 0};
  }

  bool isEmpty() const { return Kind == ProvKind::Empty; }
  bool isAlloc() const { return Kind == ProvKind::Alloc; }
  bool isWildcard() const { return Kind == ProvKind::Wildcard; }

  friend bool operator==(Provenance A, Provenance B) {
    return A.Kind == B.Kind && (A.Kind != ProvKind::Alloc ||
                                A.AllocId == B.AllocId);
  }

  std::string str() const {
    switch (Kind) {
    case ProvKind::Empty:
      return "@empty";
    case ProvKind::Alloc:
      return fmt("@{0}", AllocId);
    case ProvKind::Wildcard:
      return "@wild";
    }
    return "@?";
  }
};

/// The at-most-one-provenance combination used for arithmetic on integer
/// values (§5.9, Q5): one provenanced operand propagates its provenance;
/// two *distinct* provenances collapse to empty (so the result cannot be
/// used to move between the two objects — this is what forbids the
/// per-CPU-variable idiom, Q9).
inline Provenance combineProvenance(Provenance A, Provenance B) {
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  if (A == B)
    return A;
  if (A.isWildcard())
    return B;
  if (B.isWildcard())
    return A;
  return Provenance::empty();
}

//===----------------------------------------------------------------------===//
// Capability metadata (CHERI instantiation, §4)
//===----------------------------------------------------------------------===//

struct Capability {
  uint64_t Base = 0;   ///< lower bound of the capability
  uint64_t Length = 0; ///< size of the addressable region
  bool Tag = false;    ///< validity tag (cleared by non-capability writes)

  friend bool operator==(const Capability &A, const Capability &B) {
    return A.Base == B.Base && A.Length == B.Length && A.Tag == B.Tag;
  }
};

//===----------------------------------------------------------------------===//
// Scalar values
//===----------------------------------------------------------------------===//

/// An integer value: a mathematical integer plus provenance (and, in CHERI
/// mode, capability metadata when the value was derived from a pointer —
/// uintptr_t round-trips keep the capability, §4).
struct IntegerValue {
  Int128 V = 0;
  Provenance Prov;
  std::optional<Capability> Cap; ///< CHERI only

  IntegerValue() = default;
  explicit IntegerValue(Int128 V) : V(V) {}
  IntegerValue(Int128 V, Provenance P) : V(V), Prov(P) {}

  std::string str() const {
    if (Prov.isEmpty())
      return toString(V);
    return toString(V) + Prov.str();
  }
};

/// A pointer value: provenance + concrete address (§2.1: "abstract pointer
/// values must also contain concrete addresses"). Function pointers carry
/// the designated function's symbol id instead of a data address.
struct PointerValue {
  Provenance Prov;
  uint64_t Addr = 0;              ///< 0 encodes the null pointer
  std::optional<unsigned> FuncSym; ///< set for function pointers
  std::optional<Capability> Cap;   ///< CHERI only

  bool isNull() const { return !FuncSym && Addr == 0; }
  bool isFunction() const { return FuncSym.has_value(); }

  static PointerValue null() { return PointerValue{}; }
  static PointerValue object(Provenance P, uint64_t Addr) {
    PointerValue PV;
    PV.Prov = P;
    PV.Addr = Addr;
    return PV;
  }
  static PointerValue function(unsigned Sym) {
    PointerValue PV;
    PV.FuncSym = Sym;
    return PV;
  }

  std::string str() const {
    if (isNull())
      return "NULL";
    if (isFunction())
      return fmt("&fn#{0}", *FuncSym);
    return fmt("0x{0}{1}", toString(Int128(Addr)), Prov.str());
  }
};

//===----------------------------------------------------------------------===//
// Memory values (typed trees stored into / loaded from memory)
//===----------------------------------------------------------------------===//

struct MemByte;

enum class MemValueKind {
  Unspecified, ///< unspecified value of a given type (§2.4)
  Integer,
  Pointer,
  Array,
  Struct,
  Union,
  Bytes, ///< an opaque byte image (whole struct/union loads — this makes
         ///< structure *copies* carry padding bytes, §2.5 option 4)
};

/// A structured memory value (memval of §5.9): either unspecified, a typed
/// scalar, or an aggregate of memory values.
struct MemValue {
  MemValueKind Kind = MemValueKind::Unspecified;
  ail::CType Ty; ///< scalar type / Unspecified type; invalid for aggregates

  IntegerValue IV;                 // Integer
  PointerValue PV;                 // Pointer
  std::vector<MemValue> Elems;     // Array / Struct members
  unsigned Tag = 0;                // Struct / Union
  size_t ActiveMember = 0;         // Union
  std::vector<MemByte> Raw;        // Bytes

  static MemValue unspecified(ail::CType Ty) {
    MemValue V;
    V.Kind = MemValueKind::Unspecified;
    V.Ty = std::move(Ty);
    return V;
  }
  static MemValue integer(ail::CType Ty, IntegerValue IV) {
    MemValue V;
    V.Kind = MemValueKind::Integer;
    V.Ty = std::move(Ty);
    V.IV = IV;
    return V;
  }
  static MemValue pointer(ail::CType Ty, PointerValue PV) {
    MemValue V;
    V.Kind = MemValueKind::Pointer;
    V.Ty = std::move(Ty);
    V.PV = PV;
    return V;
  }
  static MemValue array(std::vector<MemValue> Elems) {
    MemValue V;
    V.Kind = MemValueKind::Array;
    V.Elems = std::move(Elems);
    return V;
  }
  static MemValue structure(unsigned Tag, std::vector<MemValue> Members) {
    MemValue V;
    V.Kind = MemValueKind::Struct;
    V.Tag = Tag;
    V.Elems = std::move(Members);
    return V;
  }
  static MemValue unionValue(unsigned Tag, size_t Member, MemValue Val) {
    MemValue V;
    V.Kind = MemValueKind::Union;
    V.Tag = Tag;
    V.ActiveMember = Member;
    V.Elems.push_back(std::move(Val));
    return V;
  }

  bool isUnspecified() const { return Kind == MemValueKind::Unspecified; }

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Bytes
//===----------------------------------------------------------------------===//

/// One byte of an allocation. Provenance lives on bytes so that programs
/// copying pointer *representations* (directly or via integer arithmetic)
/// produce usable pointers (§2.3, §5.9: "those representation bytes (qua
/// integer values) will carry the provenance of the original pointer").
/// A byte with no Value is an unspecified byte (never-written storage or
/// padding, §2.5).
struct MemByte {
  std::optional<uint8_t> Value;
  Provenance Prov;
  /// If this byte is the I-th byte of a stored pointer: I (0-7), else -1.
  /// Used to re-assemble capability metadata under the CHERI model.
  int PtrFrag = -1;
  std::optional<Capability> Cap; ///< CHERI: capability fragment metadata
};

/// Builds an opaque byte-image memory value (defined after MemByte).
inline MemValue makeBytesValue(ail::CType Ty, std::vector<MemByte> Raw) {
  MemValue V;
  V.Kind = MemValueKind::Bytes;
  V.Ty = std::move(Ty);
  V.Raw = std::move(Raw);
  return V;
}

} // namespace cerb::mem

#endif // CERB_MEM_VALUE_H
