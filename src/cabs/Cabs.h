//===-- cabs/Cabs.h - Cabs: the parse-tree AST ------------------*- C++ -*-===//
///
/// \file
/// Cabs is the AST produced by the parser, "closely following the ISO
/// grammar" (§5.1, Fig. 1). Identifiers are unresolved, types are syntactic
/// (typedef names not yet substituted, enum constants not yet folded), and
/// `for`/`do-while` are still present — all of that is the Cabs_to_Ail
/// desugaring pass's job.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CABS_CABS_H
#define CERB_CABS_CABS_H

#include "support/SourceLoc.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace cerb::cabs {

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

enum class UnaryOp {
  Plus,    // +e
  Minus,   // -e
  BitNot,  // ~e
  LogNot,  // !e
  AddrOf,  // &e
  Deref,   // *e
  PreInc,  // ++e
  PreDec,  // --e
  PostInc, // e++
  PostDec, // e--
};

enum class BinaryOp {
  Mul, Div, Rem,
  Add, Sub,
  Shl, Shr,
  Lt, Gt, Le, Ge,
  Eq, Ne,
  BitAnd, BitXor, BitOr,
  LogAnd, LogOr,
};

/// Returns the C spelling of a binary operator.
std::string_view binaryOpSpelling(BinaryOp Op);
/// Returns the C spelling of a unary operator (the token, ignoring fixity).
std::string_view unaryOpSpelling(UnaryOp Op);

//===----------------------------------------------------------------------===//
// Syntactic types
//===----------------------------------------------------------------------===//

struct CabsExpr;
using CabsExprPtr = std::unique_ptr<CabsExpr>;

/// The base type named by a list of type-specifier keywords (6.7.2p2
/// multisets), resolved by the parser.
enum class BaseSpec {
  Void,
  Bool,
  Char, SChar, UChar,
  Short, UShort,
  Int, UInt,
  Long, ULong,
  LongLong, ULongLong,
  Float, Double, // recognised so the desugarer can reject with a clean error
};

enum class CabsTypeKind {
  Base,        ///< one of BaseSpec
  TypedefName, ///< unresolved typedef use
  Pointer,
  Array,
  Function,
  StructUnion, ///< reference or inline definition
  Enum,        ///< reference or inline definition
};

struct CabsType;
using CabsTypePtr = std::shared_ptr<CabsType>;

struct CabsParamDecl {
  CabsTypePtr Ty;
  std::string Name; ///< may be empty in a prototype
  SourceLoc Loc;
};

struct CabsFieldDecl {
  CabsTypePtr Ty;
  std::string Name;
  SourceLoc Loc;
};

struct CabsEnumerator {
  std::string Name;
  CabsExprPtr Value; ///< optional explicit value
  SourceLoc Loc;
};

/// A syntactic C type as parsed from declaration specifiers + declarator.
struct CabsType {
  CabsTypeKind Kind;
  SourceLoc Loc;

  BaseSpec Base = BaseSpec::Int;       // Base
  std::string Name;                    // TypedefName / tag name
  CabsTypePtr Inner;                   // Pointer pointee / Array element /
                                       // Function return type
  CabsExprPtr ArraySize;               // Array: may be null ([])
  std::vector<CabsParamDecl> Params;   // Function
  bool Variadic = false;               // Function
  bool IsUnion = false;                // StructUnion
  bool HasBody = false;                // StructUnion/Enum inline definition?
  std::vector<CabsFieldDecl> Fields;   // StructUnion body
  std::vector<CabsEnumerator> Enumerators; // Enum body
  bool Const = false;                  ///< const-qualified (layout-inert)
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class CabsExprKind {
  Ident,
  IntConst,   ///< spelling in Text (suffix/base still encoded)
  CharConst,  ///< decoded value in IntValue
  StringLit,  ///< decoded bytes in Text
  Unary,      ///< UOp, Kids[0]
  Binary,     ///< BOp, Kids[0], Kids[1]
  Assign,     ///< AssignOp (nullopt = plain '='), Kids[0], Kids[1]
  Cond,       ///< Kids[0] ? Kids[1] : Kids[2]
  Cast,       ///< (TypeName)Kids[0]
  Call,       ///< Kids[0](Kids[1..])
  Member,     ///< Kids[0].Text
  MemberPtr,  ///< Kids[0]->Text
  Index,      ///< Kids[0][Kids[1]]
  SizeofExpr, ///< sizeof Kids[0]
  SizeofType, ///< sizeof(TypeName)
  AlignofType,///< _Alignof(TypeName)
  Comma,      ///< Kids[0], Kids[1]
};

struct CabsExpr {
  CabsExprKind Kind;
  SourceLoc Loc;

  std::string Text;   ///< identifier / literal spelling / member name
  long long IntValue = 0; ///< CharConst decoded value
  UnaryOp UOp = UnaryOp::Plus;
  BinaryOp BOp = BinaryOp::Add;
  std::optional<BinaryOp> AssignOp; ///< compound-assignment operator
  CabsTypePtr TypeName;             ///< Cast / SizeofType / AlignofType
  std::vector<CabsExprPtr> Kids;
};

//===----------------------------------------------------------------------===//
// Declarations and statements
//===----------------------------------------------------------------------===//

enum class StorageClass { None, Typedef, Extern, Static, Auto, Register };

/// An initialiser: either a single expression or a brace-enclosed list
/// (6.7.9). Designators are not supported in the fragment.
struct CabsInit {
  SourceLoc Loc;
  CabsExprPtr E;              ///< expression form (null if list form)
  std::vector<CabsInit> List; ///< list form
  bool isList() const { return E == nullptr; }
};

struct CabsDecl {
  StorageClass SC = StorageClass::None;
  CabsTypePtr Ty;
  std::string Name;
  std::optional<CabsInit> Init;
  SourceLoc Loc;
};

enum class CabsStmtKind {
  Expr,     ///< E (may be null for the empty statement)
  Decl,     ///< Decls
  Block,    ///< Body
  If,       ///< E, Body[0], optional Body[1]
  While,    ///< E, Body[0]
  DoWhile,  ///< Body[0], E
  For,      ///< Decls or E (init), E2 (cond), E3 (step), Body[0]
  Switch,   ///< E, Body[0]
  Case,     ///< E (constant), Body[0]
  Default,  ///< Body[0]
  Label,    ///< Text, Body[0]
  Goto,     ///< Text
  Break,
  Continue,
  Return,   ///< optional E
};

struct CabsStmt;
using CabsStmtPtr = std::unique_ptr<CabsStmt>;

struct CabsStmt {
  CabsStmtKind Kind;
  SourceLoc Loc;

  CabsExprPtr E, E2, E3;
  std::vector<CabsDecl> Decls;
  std::vector<CabsStmtPtr> Body;
  std::string Text; ///< label name / goto target
};

//===----------------------------------------------------------------------===//
// External declarations
//===----------------------------------------------------------------------===//

struct CabsFunctionDef {
  StorageClass SC = StorageClass::None;
  CabsTypePtr Ty; ///< a Function-kind CabsType carrying named parameters
  std::string Name;
  CabsStmtPtr Body;
  SourceLoc Loc;
};

/// One top-level item: either a function definition or a declaration group
/// (object declarations, typedefs, bare struct/union/enum definitions).
struct CabsExternal {
  std::optional<CabsFunctionDef> Function;
  std::vector<CabsDecl> Decls;
  bool isFunction() const { return Function.has_value(); }
};

struct CabsTranslationUnit {
  std::vector<CabsExternal> Items;
};

} // namespace cerb::cabs

#endif // CERB_CABS_CABS_H
