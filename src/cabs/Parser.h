//===-- cabs/Parser.h - Recursive-descent C11 parser ------------*- C++ -*-===//
///
/// \file
/// A clean-slate recursive-descent parser for the fragment, following the
/// grammar of ISO C11 Annex A (the paper's front end uses a generated
/// Menhir parser over the same grammar; see DESIGN.md substitutions).
/// Typedef names are tracked with a scope stack so that declarations and
/// expressions can be disambiguated (the "lexer hack", resolved here in the
/// parser rather than the lexer).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CABS_PARSER_H
#define CERB_CABS_PARSER_H

#include "cabs/Cabs.h"
#include "cabs/Lexer.h"
#include "support/Expected.h"

namespace cerb::cabs {

/// Parses a full translation unit from C source text (lexes internally).
Expected<CabsTranslationUnit> parseTranslationUnit(std::string_view Source);

/// Parses a single expression (used by tests and the quickstart example).
Expected<CabsExprPtr> parseExpression(std::string_view Source);

} // namespace cerb::cabs

#endif // CERB_CABS_PARSER_H
