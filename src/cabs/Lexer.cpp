//===-- cabs/Lexer.cpp ----------------------------------------------------===//

#include "cabs/Lexer.h"

#include "support/Format.h"

#include <cassert>
#include <cctype>

using namespace cerb;
using namespace cerb::cabs;

std::string_view cerb::cabs::tokName(Tok K) {
  switch (K) {
  case Tok::EndOfFile: return "end of file";
  case Tok::Ident: return "identifier";
  case Tok::IntConst: return "integer constant";
  case Tok::CharConst: return "character constant";
  case Tok::StringLit: return "string literal";
  case Tok::KwVoid: return "void";
  case Tok::KwChar: return "char";
  case Tok::KwShort: return "short";
  case Tok::KwInt: return "int";
  case Tok::KwLong: return "long";
  case Tok::KwSigned: return "signed";
  case Tok::KwUnsigned: return "unsigned";
  case Tok::KwBool: return "_Bool";
  case Tok::KwFloat: return "float";
  case Tok::KwDouble: return "double";
  case Tok::KwStruct: return "struct";
  case Tok::KwUnion: return "union";
  case Tok::KwEnum: return "enum";
  case Tok::KwTypedef: return "typedef";
  case Tok::KwExtern: return "extern";
  case Tok::KwStatic: return "static";
  case Tok::KwAuto: return "auto";
  case Tok::KwRegister: return "register";
  case Tok::KwConst: return "const";
  case Tok::KwVolatile: return "volatile";
  case Tok::KwRestrict: return "restrict";
  case Tok::KwInline: return "inline";
  case Tok::KwIf: return "if";
  case Tok::KwElse: return "else";
  case Tok::KwWhile: return "while";
  case Tok::KwDo: return "do";
  case Tok::KwFor: return "for";
  case Tok::KwSwitch: return "switch";
  case Tok::KwCase: return "case";
  case Tok::KwDefault: return "default";
  case Tok::KwBreak: return "break";
  case Tok::KwContinue: return "continue";
  case Tok::KwReturn: return "return";
  case Tok::KwGoto: return "goto";
  case Tok::KwSizeof: return "sizeof";
  case Tok::KwAlignof: return "_Alignof";
  case Tok::LParen: return "(";
  case Tok::RParen: return ")";
  case Tok::LBrace: return "{";
  case Tok::RBrace: return "}";
  case Tok::LBracket: return "[";
  case Tok::RBracket: return "]";
  case Tok::Semi: return ";";
  case Tok::Comma: return ",";
  case Tok::Colon: return ":";
  case Tok::Question: return "?";
  case Tok::Ellipsis: return "...";
  case Tok::Dot: return ".";
  case Tok::Arrow: return "->";
  case Tok::PlusPlus: return "++";
  case Tok::MinusMinus: return "--";
  case Tok::Amp: return "&";
  case Tok::Star: return "*";
  case Tok::Plus: return "+";
  case Tok::Minus: return "-";
  case Tok::Tilde: return "~";
  case Tok::Exclaim: return "!";
  case Tok::Slash: return "/";
  case Tok::Percent: return "%";
  case Tok::LessLess: return "<<";
  case Tok::GreaterGreater: return ">>";
  case Tok::Less: return "<";
  case Tok::Greater: return ">";
  case Tok::LessEq: return "<=";
  case Tok::GreaterEq: return ">=";
  case Tok::EqEq: return "==";
  case Tok::ExclaimEq: return "!=";
  case Tok::Caret: return "^";
  case Tok::Pipe: return "|";
  case Tok::AmpAmp: return "&&";
  case Tok::PipePipe: return "||";
  case Tok::Eq: return "=";
  case Tok::StarEq: return "*=";
  case Tok::SlashEq: return "/=";
  case Tok::PercentEq: return "%=";
  case Tok::PlusEq: return "+=";
  case Tok::MinusEq: return "-=";
  case Tok::LessLessEq: return "<<=";
  case Tok::GreaterGreaterEq: return ">>=";
  case Tok::AmpEq: return "&=";
  case Tok::CaretEq: return "^=";
  case Tok::PipeEq: return "|=";
  }
  return "<bad-token>";
}

namespace {

const std::map<std::string_view, Tok> Keywords = {
    {"void", Tok::KwVoid},       {"char", Tok::KwChar},
    {"short", Tok::KwShort},     {"int", Tok::KwInt},
    {"long", Tok::KwLong},       {"signed", Tok::KwSigned},
    {"unsigned", Tok::KwUnsigned}, {"_Bool", Tok::KwBool},
    {"float", Tok::KwFloat},     {"double", Tok::KwDouble},
    {"struct", Tok::KwStruct},   {"union", Tok::KwUnion},
    {"enum", Tok::KwEnum},       {"typedef", Tok::KwTypedef},
    {"extern", Tok::KwExtern},   {"static", Tok::KwStatic},
    {"auto", Tok::KwAuto},       {"register", Tok::KwRegister},
    {"const", Tok::KwConst},     {"volatile", Tok::KwVolatile},
    {"restrict", Tok::KwRestrict}, {"inline", Tok::KwInline},
    {"if", Tok::KwIf},           {"else", Tok::KwElse},
    {"while", Tok::KwWhile},     {"do", Tok::KwDo},
    {"for", Tok::KwFor},         {"switch", Tok::KwSwitch},
    {"case", Tok::KwCase},       {"default", Tok::KwDefault},
    {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
    {"return", Tok::KwReturn},   {"goto", Tok::KwGoto},
    {"sizeof", Tok::KwSizeof},   {"_Alignof", Tok::KwAlignof},
};

/// Character-level scanner state over the raw source.
class Scanner {
public:
  explicit Scanner(std::string_view Src) : Src(Src) {}

  Expected<std::vector<Token>> run();

private:
  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;
  /// Object-like macros: name -> replacement token list.
  std::map<std::string, std::vector<Token>> Macros;
  /// #ifdef nesting: each entry is whether the branch is active.
  std::vector<bool> CondStack;

  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  SourceLoc loc() const { return SourceLoc(Line, Col); }
  bool condActive() const {
    for (bool B : CondStack)
      if (!B)
        return false;
    return true;
  }

  /// Skips whitespace and comments; returns error on unterminated comment.
  /// Sets \p SawNewline if a newline was crossed (directives are line-based).
  ExpectedVoid skipTrivia(bool &SawNewline);
  Expected<Token> lexToken();
  Expected<Token> lexNumber(SourceLoc L);
  Expected<Token> lexIdent(SourceLoc L);
  Expected<Token> lexCharConst(SourceLoc L);
  Expected<Token> lexStringLit(SourceLoc L);
  Expected<long long> lexEscape(SourceLoc L);
  ExpectedVoid handleDirective();
};

ExpectedVoid Scanner::skipTrivia(bool &SawNewline) {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\v' || C == '\f') {
      advance();
      continue;
    }
    if (C == '\n') {
      SawNewline = true;
      advance();
      continue;
    }
    if (C == '\\' && peek(1) == '\n') { // line splice
      advance();
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (atEnd())
          return err("unterminated /* comment", Start, "6.4.9");
        advance();
      }
      advance();
      advance();
      continue;
    }
    return ExpectedVoid();
  }
}

Expected<Token> Scanner::lexNumber(SourceLoc L) {
  Token T;
  T.Kind = Tok::IntConst;
  T.Loc = L;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '.')
    T.Text.push_back(advance());
  return T;
}

Expected<Token> Scanner::lexIdent(SourceLoc L) {
  Token T;
  T.Loc = L;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    T.Text.push_back(advance());
  auto It = Keywords.find(T.Text);
  T.Kind = It != Keywords.end() ? It->second : Tok::Ident;
  return T;
}

Expected<long long> Scanner::lexEscape(SourceLoc L) {
  assert(peek() == '\\');
  advance();
  char C = advance();
  switch (C) {
  case 'n': return (long long)'\n';
  case 't': return (long long)'\t';
  case 'r': return (long long)'\r';
  case '0': case '1': case '2': case '3':
  case '4': case '5': case '6': case '7': {
    long long V = C - '0';
    for (int I = 0; I < 2 && peek() >= '0' && peek() <= '7'; ++I)
      V = V * 8 + (advance() - '0');
    return V;
  }
  case 'x': {
    long long V = 0;
    if (!std::isxdigit(static_cast<unsigned char>(peek())))
      return err("\\x with no hex digits", L, "6.4.4.4");
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char D = advance();
      V = V * 16 + (std::isdigit(static_cast<unsigned char>(D))
                        ? D - '0'
                        : std::tolower(D) - 'a' + 10);
    }
    return V;
  }
  case '\\': return (long long)'\\';
  case '\'': return (long long)'\'';
  case '"': return (long long)'"';
  case 'a': return (long long)'\a';
  case 'b': return (long long)'\b';
  case 'f': return (long long)'\f';
  case 'v': return (long long)'\v';
  default:
    return err(fmt("unknown escape sequence '\\{0}'", C), L, "6.4.4.4");
  }
}

Expected<Token> Scanner::lexCharConst(SourceLoc L) {
  assert(peek() == '\'');
  advance();
  Token T;
  T.Kind = Tok::CharConst;
  T.Loc = L;
  if (peek() == '\'')
    return err("empty character constant", L, "6.4.4.4");
  if (peek() == '\\') {
    CERB_TRY(V, lexEscape(L));
    T.IntValue = V;
  } else {
    T.IntValue = static_cast<unsigned char>(advance());
    // Plain char is signed in our ImplEnv; a char constant has type int with
    // the value of the (signed) char (6.4.4.4p10).
    if (T.IntValue > 127)
      T.IntValue -= 256;
  }
  if (peek() != '\'')
    return err("multi-character or unterminated character constant", L,
               "6.4.4.4");
  advance();
  return T;
}

Expected<Token> Scanner::lexStringLit(SourceLoc L) {
  assert(peek() == '"');
  advance();
  Token T;
  T.Kind = Tok::StringLit;
  T.Loc = L;
  for (;;) {
    if (atEnd() || peek() == '\n')
      return err("unterminated string literal", L, "6.4.5");
    if (peek() == '"') {
      advance();
      return T;
    }
    if (peek() == '\\') {
      CERB_TRY(V, lexEscape(L));
      T.Text.push_back(static_cast<char>(V));
      continue;
    }
    T.Text.push_back(advance());
  }
}

ExpectedVoid Scanner::handleDirective() {
  SourceLoc L = loc();
  advance(); // '#'
  // Gather the directive line (respecting splices).
  std::string LineText;
  while (!atEnd() && peek() != '\n') {
    if (peek() == '\\' && peek(1) == '\n') {
      advance();
      advance();
      continue;
    }
    LineText.push_back(advance());
  }
  // Tokenise the line coarsely.
  size_t I = 0;
  auto SkipWs = [&] {
    while (I < LineText.size() && std::isspace((unsigned char)LineText[I]))
      ++I;
  };
  auto Word = [&]() -> std::string {
    SkipWs();
    std::string W;
    while (I < LineText.size() &&
           (std::isalnum((unsigned char)LineText[I]) || LineText[I] == '_'))
      W.push_back(LineText[I++]);
    return W;
  };
  std::string Directive = Word();
  if (Directive == "endif") {
    if (CondStack.empty())
      return err("#endif without #if", L);
    CondStack.pop_back();
    return ExpectedVoid();
  }
  if (Directive == "else") {
    if (CondStack.empty())
      return err("#else without #if", L);
    CondStack.back() = !CondStack.back();
    return ExpectedVoid();
  }
  if (Directive == "ifdef" || Directive == "ifndef") {
    std::string Name = Word();
    bool Defined = Macros.count(Name) != 0;
    CondStack.push_back(Directive == "ifdef" ? Defined : !Defined);
    return ExpectedVoid();
  }
  if (!condActive())
    return ExpectedVoid(); // skipped region: ignore other directives
  if (Directive == "include")
    return ExpectedVoid(); // library declarations are builtin (see Desugar)
  if (Directive == "define") {
    std::string Name = Word();
    if (Name.empty())
      return err("#define with no name", L);
    if (I < LineText.size() && LineText[I] == '(')
      return err("function-like macros are not supported", L);
    // Lex the replacement list with a nested scanner (no directives inside).
    Scanner Sub(std::string_view(LineText).substr(I));
    CERB_TRY(Body, Sub.run());
    Body.pop_back(); // EOF
    Macros[Name] = std::move(Body);
    return ExpectedVoid();
  }
  if (Directive == "undef") {
    Macros.erase(Word());
    return ExpectedVoid();
  }
  if (Directive == "pragma")
    return ExpectedVoid();
  return err(fmt("unsupported preprocessor directive '#{0}'", Directive), L);
}

Expected<std::vector<Token>> Scanner::run() {
  std::vector<Token> Out;
  bool AtLineStart = true;
  for (;;) {
    bool SawNewline = false;
    CERB_CHECK(skipTrivia(SawNewline));
    if (SawNewline)
      AtLineStart = true;
    if (atEnd())
      break;
    if (peek() == '#' && AtLineStart) {
      CERB_CHECK(handleDirective());
      AtLineStart = true;
      continue;
    }
    AtLineStart = false;
    if (!condActive()) { // inside a skipped #ifdef region
      advance();
      continue;
    }
    CERB_TRY(T, lexToken());
    // Object-like macro expansion (one level; no self-recursion possible
    // since the body was lexed without expansion and we expand here only).
    if (T.Kind == Tok::Ident) {
      auto It = Macros.find(T.Text);
      if (It != Macros.end()) {
        for (Token MT : It->second) {
          MT.Loc = T.Loc;
          Out.push_back(std::move(MT));
        }
        continue;
      }
    }
    // Adjacent string literal concatenation (6.4.5p5).
    if (T.Kind == Tok::StringLit && !Out.empty() &&
        Out.back().Kind == Tok::StringLit) {
      Out.back().Text += T.Text;
      continue;
    }
    Out.push_back(std::move(T));
  }
  Token Eof;
  Eof.Kind = Tok::EndOfFile;
  Eof.Loc = loc();
  Out.push_back(std::move(Eof));
  return Out;
}

Expected<Token> Scanner::lexToken() {
  SourceLoc L = loc();
  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(L);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdent(L);
  if (C == '\'')
    return lexCharConst(L);
  if (C == '"')
    return lexStringLit(L);

  auto Make = [&](Tok K, int Len) -> Token {
    Token T;
    T.Kind = K;
    T.Loc = L;
    for (int I = 0; I < Len; ++I)
      advance();
    return T;
  };
  char C1 = peek(1), C2 = peek(2);
  switch (C) {
  case '(': return Make(Tok::LParen, 1);
  case ')': return Make(Tok::RParen, 1);
  case '{': return Make(Tok::LBrace, 1);
  case '}': return Make(Tok::RBrace, 1);
  case '[': return Make(Tok::LBracket, 1);
  case ']': return Make(Tok::RBracket, 1);
  case ';': return Make(Tok::Semi, 1);
  case ',': return Make(Tok::Comma, 1);
  case ':': return Make(Tok::Colon, 1);
  case '?': return Make(Tok::Question, 1);
  case '~': return Make(Tok::Tilde, 1);
  case '.':
    if (C1 == '.' && C2 == '.')
      return Make(Tok::Ellipsis, 3);
    return Make(Tok::Dot, 1);
  case '-':
    if (C1 == '>') return Make(Tok::Arrow, 2);
    if (C1 == '-') return Make(Tok::MinusMinus, 2);
    if (C1 == '=') return Make(Tok::MinusEq, 2);
    return Make(Tok::Minus, 1);
  case '+':
    if (C1 == '+') return Make(Tok::PlusPlus, 2);
    if (C1 == '=') return Make(Tok::PlusEq, 2);
    return Make(Tok::Plus, 1);
  case '&':
    if (C1 == '&') return Make(Tok::AmpAmp, 2);
    if (C1 == '=') return Make(Tok::AmpEq, 2);
    return Make(Tok::Amp, 1);
  case '|':
    if (C1 == '|') return Make(Tok::PipePipe, 2);
    if (C1 == '=') return Make(Tok::PipeEq, 2);
    return Make(Tok::Pipe, 1);
  case '^':
    if (C1 == '=') return Make(Tok::CaretEq, 2);
    return Make(Tok::Caret, 1);
  case '*':
    if (C1 == '=') return Make(Tok::StarEq, 2);
    return Make(Tok::Star, 1);
  case '/':
    if (C1 == '=') return Make(Tok::SlashEq, 2);
    return Make(Tok::Slash, 1);
  case '%':
    if (C1 == '=') return Make(Tok::PercentEq, 2);
    return Make(Tok::Percent, 1);
  case '<':
    if (C1 == '<' && C2 == '=') return Make(Tok::LessLessEq, 3);
    if (C1 == '<') return Make(Tok::LessLess, 2);
    if (C1 == '=') return Make(Tok::LessEq, 2);
    return Make(Tok::Less, 1);
  case '>':
    if (C1 == '>' && C2 == '=') return Make(Tok::GreaterGreaterEq, 3);
    if (C1 == '>') return Make(Tok::GreaterGreater, 2);
    if (C1 == '=') return Make(Tok::GreaterEq, 2);
    return Make(Tok::Greater, 1);
  case '=':
    if (C1 == '=') return Make(Tok::EqEq, 2);
    return Make(Tok::Eq, 1);
  case '!':
    if (C1 == '=') return Make(Tok::ExclaimEq, 2);
    return Make(Tok::Exclaim, 1);
  default:
    return err(fmt("stray character '{0}' in program", C), L, "6.4");
  }
}

} // namespace

Expected<std::vector<Token>> cerb::cabs::lex(std::string_view Source) {
  // Phase-2 line splices (5.1.1.2p1): delete backslash-newline before
  // tokenisation, so splices work even mid-token (the scanner's trivia
  // handling alone only covers token boundaries).
  std::string Spliced;
  Spliced.reserve(Source.size());
  for (size_t I = 0; I < Source.size(); ++I) {
    if (Source[I] == '\\' && I + 1 < Source.size() &&
        Source[I + 1] == '\n') {
      ++I;
      continue;
    }
    Spliced.push_back(Source[I]);
  }
  Scanner S(Spliced);
  return S.run();
}

const std::vector<std::string> &cerb::cabs::builtinTypedefNames() {
  static const std::vector<std::string> Names = {
      "size_t",  "ptrdiff_t", "intptr_t", "uintptr_t",
      "int8_t",  "uint8_t",   "int16_t",  "uint16_t",
      "int32_t", "uint32_t",  "int64_t",  "uint64_t",
  };
  return Names;
}
