//===-- cabs/Lexer.h - C11 lexer with a minimal preprocessor ----*- C++ -*-===//
///
/// \file
/// Tokeniser for the C fragment, closely following ISO C11 §6.4. The paper's
/// pipeline runs "after conventional C preprocessing" (§5.1); we bundle a
/// minimal preprocessor sufficient for the de facto test suite: comment
/// stripping, `#include` of the known standard headers (a no-op — the
/// library declarations are injected by the desugaring pass), object-like
/// `#define`, and `#ifdef`/`#ifndef`/`#else`/`#endif`.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CABS_LEXER_H
#define CERB_CABS_LEXER_H

#include "support/Expected.h"
#include "support/SourceLoc.h"

#include <map>
#include <string>
#include <vector>

namespace cerb::cabs {

/// Token kinds (ISO 6.4: keywords, identifiers, constants, string literals,
/// punctuators).
enum class Tok {
  EndOfFile,
  Ident,
  IntConst,    ///< integer constant incl. suffixes, hex/oct/dec
  CharConst,   ///< value already decoded into Token::IntValue
  StringLit,   ///< value already decoded/concatenated into Token::Text
  // Keywords of the fragment.
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwSigned, KwUnsigned, KwBool,
  KwFloat, KwDouble, // recognised to reject cleanly (fragment excludes FP)
  KwStruct, KwUnion, KwEnum, KwTypedef, KwExtern, KwStatic, KwAuto,
  KwRegister, KwConst, KwVolatile, KwRestrict, KwInline,
  KwIf, KwElse, KwWhile, KwDo, KwFor, KwSwitch, KwCase, KwDefault,
  KwBreak, KwContinue, KwReturn, KwGoto, KwSizeof, KwAlignof,
  // Punctuators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Colon, Question, Ellipsis,
  Dot, Arrow,
  PlusPlus, MinusMinus,
  Amp, Star, Plus, Minus, Tilde, Exclaim,
  Slash, Percent, LessLess, GreaterGreater,
  Less, Greater, LessEq, GreaterEq, EqEq, ExclaimEq,
  Caret, Pipe, AmpAmp, PipePipe,
  Eq, StarEq, SlashEq, PercentEq, PlusEq, MinusEq,
  LessLessEq, GreaterGreaterEq, AmpEq, CaretEq, PipeEq,
};

/// A lexed token. For CharConst the decoded value is in IntValue; for
/// StringLit the decoded bytes (without the terminating NUL) are in Text.
struct Token {
  Tok Kind = Tok::EndOfFile;
  std::string Text;  ///< identifier spelling / literal spelling / bytes
  long long IntValue = 0; ///< decoded character-constant value
  SourceLoc Loc;
};

/// Returns a printable name for a token kind (for diagnostics).
std::string_view tokName(Tok K);

/// Lexes (and minimally preprocesses) \p Source. On success the final token
/// is EndOfFile.
Expected<std::vector<Token>> lex(std::string_view Source);

/// The typedef names our builtin headers (<stdint.h>, <stddef.h>) would
/// introduce. The parser pre-seeds its typedef scope with these so that
/// declarations using them parse (the classical lexer-hack environment);
/// the desugarer binds their actual types.
const std::vector<std::string> &builtinTypedefNames();

} // namespace cerb::cabs

#endif // CERB_CABS_LEXER_H
