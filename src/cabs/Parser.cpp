//===-- cabs/Parser.cpp ---------------------------------------------------===//

#include "cabs/Parser.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace cerb;
using namespace cerb::cabs;

std::string_view cerb::cabs::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Mul: return "*";
  case BinaryOp::Div: return "/";
  case BinaryOp::Rem: return "%";
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Shl: return "<<";
  case BinaryOp::Shr: return ">>";
  case BinaryOp::Lt: return "<";
  case BinaryOp::Gt: return ">";
  case BinaryOp::Le: return "<=";
  case BinaryOp::Ge: return ">=";
  case BinaryOp::Eq: return "==";
  case BinaryOp::Ne: return "!=";
  case BinaryOp::BitAnd: return "&";
  case BinaryOp::BitXor: return "^";
  case BinaryOp::BitOr: return "|";
  case BinaryOp::LogAnd: return "&&";
  case BinaryOp::LogOr: return "||";
  }
  return "?";
}

std::string_view cerb::cabs::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Plus: return "+";
  case UnaryOp::Minus: return "-";
  case UnaryOp::BitNot: return "~";
  case UnaryOp::LogNot: return "!";
  case UnaryOp::AddrOf: return "&";
  case UnaryOp::Deref: return "*";
  case UnaryOp::PreInc: return "++";
  case UnaryOp::PreDec: return "--";
  case UnaryOp::PostInc: return "++";
  case UnaryOp::PostDec: return "--";
  }
  return "?";
}

namespace {

CabsExprPtr makeExpr(CabsExprKind K, SourceLoc Loc) {
  auto E = std::make_unique<CabsExpr>();
  E->Kind = K;
  E->Loc = Loc;
  return E;
}

/// Pieces of a parsed declarator, applied inside-out to the base type
/// (6.7.6: "the declaration mirrors the use").
struct DeclaratorPart {
  enum { Ptr, Arr, Fun } Kind;
  CabsExprPtr ArraySize;             // Arr
  std::vector<CabsParamDecl> Params; // Fun
  bool Variadic = false;             // Fun
  bool Const = false;                // Ptr
};

struct Declarator {
  std::string Name;
  SourceLoc Loc;
  /// Innermost-first modifiers (applied to the base type in order).
  std::vector<DeclaratorPart> Parts;
};

class Parser {
public:
  explicit Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {
    pushScope();
    for (const std::string &N : builtinTypedefNames())
      declareName(N, /*IsTypedef=*/true);
  }

  Expected<CabsTranslationUnit> parseUnit();
  Expected<CabsExprPtr> parseExprOnly();

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  /// Scope stack: name -> is-typedef (false = shadowing ordinary name).
  std::vector<std::map<std::string, bool>> Scopes;

  //===------------------------------------------------------------------===//
  // Token helpers
  //===------------------------------------------------------------------===//
  const Token &cur() const { return Toks[Pos]; }
  const Token &ahead(size_t N) const {
    return Toks[std::min(Pos + N, Toks.size() - 1)];
  }
  bool at(Tok K) const { return cur().Kind == K; }
  bool accept(Tok K) {
    if (!at(K))
      return false;
    ++Pos;
    return true;
  }
  Token take() { return Toks[Pos++]; }
  ExpectedVoid expect(Tok K, std::string_view Clause = "") {
    if (accept(K))
      return ExpectedVoid();
    return err(fmt("expected '{0}' but found '{1}'", tokName(K),
                   cur().Kind == Tok::Ident ? std::string_view(cur().Text)
                                            : tokName(cur().Kind)),
               cur().Loc, std::string(Clause));
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declareName(const std::string &Name, bool IsTypedef) {
    Scopes.back()[Name] = IsTypedef;
  }
  bool isTypedefName(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return F->second;
    }
    return false;
  }

  /// Does the current token begin declaration-specifiers? (6.7)
  bool startsDeclaration() const;

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//
  Expected<std::pair<StorageClass, CabsTypePtr>> parseDeclSpecifiers();
  Expected<Declarator> parseDeclarator(bool Abstract);
  Expected<CabsTypePtr> applyDeclarator(CabsTypePtr Base, Declarator &D);
  Expected<CabsTypePtr> parseTypeName();
  Expected<CabsTypePtr> parseStructOrUnion();
  Expected<CabsTypePtr> parseEnum();
  Expected<CabsInit> parseInitializer();
  /// Parses one declaration statement (after deciding it is one); used at
  /// block scope and for for-init.
  Expected<std::vector<CabsDecl>> parseDeclarationGroup();

  //===------------------------------------------------------------------===//
  // Expressions (precedence per 6.5)
  //===------------------------------------------------------------------===//
  Expected<CabsExprPtr> parseExpr();           // comma
  Expected<CabsExprPtr> parseAssignExpr();     // 6.5.16
  Expected<CabsExprPtr> parseCondExpr();       // 6.5.15
  Expected<CabsExprPtr> parseBinaryExpr(int MinPrec);
  Expected<CabsExprPtr> parseCastExpr();       // 6.5.4
  Expected<CabsExprPtr> parseUnaryExpr();      // 6.5.3
  Expected<CabsExprPtr> parsePostfixExpr();    // 6.5.2
  Expected<CabsExprPtr> parsePrimaryExpr();    // 6.5.1
  Expected<CabsExprPtr> parseConstantExpr() { return parseCondExpr(); }

  /// Is the token sequence at '(' the start of a type-name? (cast vs paren)
  bool startsTypeName(size_t At) const;

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//
  Expected<CabsStmtPtr> parseStmt();
  Expected<CabsStmtPtr> parseBlock();
};

//===----------------------------------------------------------------------===//
// Declaration specifiers
//===----------------------------------------------------------------------===//

static bool isTypeSpecifierTok(Tok K) {
  switch (K) {
  case Tok::KwVoid: case Tok::KwChar: case Tok::KwShort: case Tok::KwInt:
  case Tok::KwLong: case Tok::KwSigned: case Tok::KwUnsigned:
  case Tok::KwBool: case Tok::KwFloat: case Tok::KwDouble:
  case Tok::KwStruct: case Tok::KwUnion: case Tok::KwEnum:
    return true;
  default:
    return false;
  }
}

static bool isDeclSpecTok(Tok K) {
  switch (K) {
  case Tok::KwTypedef: case Tok::KwExtern: case Tok::KwStatic:
  case Tok::KwAuto: case Tok::KwRegister: case Tok::KwConst:
  case Tok::KwVolatile: case Tok::KwRestrict: case Tok::KwInline:
    return true;
  default:
    return isTypeSpecifierTok(K);
  }
}

bool Parser::startsDeclaration() const {
  if (isDeclSpecTok(cur().Kind))
    return true;
  return cur().Kind == Tok::Ident && isTypedefName(cur().Text);
}

bool Parser::startsTypeName(size_t At) const {
  Tok K = Toks[std::min(At, Toks.size() - 1)].Kind;
  if (isTypeSpecifierTok(K) || K == Tok::KwConst || K == Tok::KwVolatile)
    return true;
  const Token &T = Toks[std::min(At, Toks.size() - 1)];
  return K == Tok::Ident && isTypedefName(T.Text);
}

Expected<std::pair<StorageClass, CabsTypePtr>> Parser::parseDeclSpecifiers() {
  SourceLoc L = cur().Loc;
  StorageClass SC = StorageClass::None;
  bool Const = false;
  // Multiset of arithmetic type-specifier keywords (6.7.2p2).
  int NumLong = 0;
  bool SawVoid = false, SawChar = false, SawShort = false, SawInt = false,
       SawSigned = false, SawUnsigned = false, SawBool = false,
       SawFloat = false, SawDouble = false;
  CabsTypePtr Tagged;    // struct/union/enum specifier
  CabsTypePtr Typedefed; // typedef-name specifier
  bool Any = false;

  for (;;) {
    Tok K = cur().Kind;
    if (K == Tok::KwTypedef || K == Tok::KwExtern || K == Tok::KwStatic ||
        K == Tok::KwAuto || K == Tok::KwRegister) {
      if (SC != StorageClass::None)
        return err("multiple storage-class specifiers", cur().Loc, "6.7.1p2");
      SC = K == Tok::KwTypedef   ? StorageClass::Typedef
           : K == Tok::KwExtern  ? StorageClass::Extern
           : K == Tok::KwStatic  ? StorageClass::Static
           : K == Tok::KwAuto    ? StorageClass::Auto
                                 : StorageClass::Register;
      take();
      Any = true;
      continue;
    }
    if (K == Tok::KwConst) {
      Const = true;
      take();
      Any = true;
      continue;
    }
    if (K == Tok::KwVolatile)
      return err("'volatile' is outside the supported fragment", cur().Loc);
    if (K == Tok::KwRestrict)
      return err("'restrict' is outside the supported fragment", cur().Loc);
    if (K == Tok::KwInline) { // accepted and ignored (6.7.4: a hint)
      take();
      Any = true;
      continue;
    }
    if (K == Tok::KwStruct || K == Tok::KwUnion) {
      if (Tagged || Typedefed)
        return err("two or more data types in declaration", cur().Loc,
                   "6.7.2p2");
      CERB_TRY(T, parseStructOrUnion());
      Tagged = T;
      Any = true;
      continue;
    }
    if (K == Tok::KwEnum) {
      if (Tagged || Typedefed)
        return err("two or more data types in declaration", cur().Loc,
                   "6.7.2p2");
      CERB_TRY(T, parseEnum());
      Tagged = T;
      Any = true;
      continue;
    }
    if (isTypeSpecifierTok(K)) {
      switch (K) {
      case Tok::KwVoid: SawVoid = true; break;
      case Tok::KwChar: SawChar = true; break;
      case Tok::KwShort: SawShort = true; break;
      case Tok::KwInt: SawInt = true; break;
      case Tok::KwLong: ++NumLong; break;
      case Tok::KwSigned: SawSigned = true; break;
      case Tok::KwUnsigned: SawUnsigned = true; break;
      case Tok::KwBool: SawBool = true; break;
      case Tok::KwFloat: SawFloat = true; break;
      case Tok::KwDouble: SawDouble = true; break;
      default: break;
      }
      take();
      Any = true;
      continue;
    }
    if (K == Tok::Ident && isTypedefName(cur().Text) && !Tagged &&
        !Typedefed && !SawVoid && !SawChar && !SawShort && !SawInt &&
        !SawSigned && !SawUnsigned && !SawBool && NumLong == 0 && !SawFloat &&
        !SawDouble) {
      Typedefed = std::make_shared<CabsType>();
      Typedefed->Kind = CabsTypeKind::TypedefName;
      Typedefed->Name = cur().Text;
      Typedefed->Loc = cur().Loc;
      take();
      Any = true;
      continue;
    }
    break;
  }

  if (!Any)
    return err("expected declaration specifiers", L, "6.7");

  CabsTypePtr Ty;
  if (Tagged) {
    Ty = Tagged;
  } else if (Typedefed) {
    Ty = Typedefed;
  } else {
    // Resolve the multiset to a BaseSpec (6.7.2p2).
    BaseSpec B;
    if (SawVoid)
      B = BaseSpec::Void;
    else if (SawBool)
      B = BaseSpec::Bool;
    else if (SawFloat)
      B = BaseSpec::Float;
    else if (SawDouble)
      B = BaseSpec::Double;
    else if (SawChar)
      B = SawUnsigned ? BaseSpec::UChar
          : SawSigned ? BaseSpec::SChar
                      : BaseSpec::Char;
    else if (SawShort)
      B = SawUnsigned ? BaseSpec::UShort : BaseSpec::Short;
    else if (NumLong >= 2)
      B = SawUnsigned ? BaseSpec::ULongLong : BaseSpec::LongLong;
    else if (NumLong == 1)
      B = SawUnsigned ? BaseSpec::ULong : BaseSpec::Long;
    else if (SawInt || SawSigned || SawUnsigned)
      B = SawUnsigned ? BaseSpec::UInt : BaseSpec::Int;
    else
      return err("declaration with no type specifier", L, "6.7.2p2");
    Ty = std::make_shared<CabsType>();
    Ty->Kind = CabsTypeKind::Base;
    Ty->Base = B;
    Ty->Loc = L;
  }
  Ty->Const = Ty->Const || Const;
  return std::make_pair(SC, Ty);
}

Expected<CabsTypePtr> Parser::parseStructOrUnion() {
  SourceLoc L = cur().Loc;
  bool IsUnion = cur().Kind == Tok::KwUnion;
  take();
  auto Ty = std::make_shared<CabsType>();
  Ty->Kind = CabsTypeKind::StructUnion;
  Ty->IsUnion = IsUnion;
  Ty->Loc = L;
  if (at(Tok::Ident)) {
    Ty->Name = take().Text;
  }
  if (!accept(Tok::LBrace)) {
    if (Ty->Name.empty())
      return err("struct/union with neither tag nor body", L, "6.7.2.1p2");
    return Ty;
  }
  Ty->HasBody = true;
  while (!accept(Tok::RBrace)) {
    CERB_TRY(Spec, parseDeclSpecifiers());
    if (Spec.first != StorageClass::None)
      return err("storage class in struct member declaration", L, "6.7.2.1");
    for (;;) {
      CERB_TRY(D, parseDeclarator(/*Abstract=*/false));
      if (accept(Tok::Colon))
        return err("bitfields are outside the supported fragment", D.Loc);
      CERB_TRY(MTy, applyDeclarator(Spec.second, D));
      CabsFieldDecl F;
      F.Ty = MTy;
      F.Name = D.Name;
      F.Loc = D.Loc;
      Ty->Fields.push_back(std::move(F));
      if (!accept(Tok::Comma))
        break;
    }
    CERB_CHECK(expect(Tok::Semi, "6.7.2.1"));
  }
  return Ty;
}

Expected<CabsTypePtr> Parser::parseEnum() {
  SourceLoc L = cur().Loc;
  take(); // enum
  auto Ty = std::make_shared<CabsType>();
  Ty->Kind = CabsTypeKind::Enum;
  Ty->Loc = L;
  if (at(Tok::Ident))
    Ty->Name = take().Text;
  if (!accept(Tok::LBrace)) {
    if (Ty->Name.empty())
      return err("enum with neither tag nor body", L, "6.7.2.2");
    return Ty;
  }
  Ty->HasBody = true;
  for (;;) {
    if (accept(Tok::RBrace))
      break;
    if (!at(Tok::Ident))
      return err("expected enumerator name", cur().Loc, "6.7.2.2");
    CabsEnumerator En;
    En.Loc = cur().Loc;
    En.Name = take().Text;
    if (accept(Tok::Eq)) {
      CERB_TRY(V, parseConstantExpr());
      En.Value = std::move(V);
    }
    Ty->Enumerators.push_back(std::move(En));
    if (!accept(Tok::Comma)) {
      CERB_CHECK(expect(Tok::RBrace, "6.7.2.2"));
      break;
    }
  }
  return Ty;
}

//===----------------------------------------------------------------------===//
// Declarators
//===----------------------------------------------------------------------===//

Expected<Declarator> Parser::parseDeclarator(bool Abstract) {
  Declarator D;
  D.Loc = cur().Loc;

  // Pointer prefix: collected innermost-last; a pointer declared further
  // left binds less tightly, so record and append after the direct part.
  std::vector<DeclaratorPart> Pointers;
  while (accept(Tok::Star)) {
    DeclaratorPart P;
    P.Kind = DeclaratorPart::Ptr;
    while (at(Tok::KwConst) || at(Tok::KwVolatile) || at(Tok::KwRestrict)) {
      if (cur().Kind == Tok::KwConst)
        P.Const = true;
      take();
    }
    Pointers.push_back(std::move(P));
  }

  // Direct declarator: name, parenthesised declarator, or (abstract) empty.
  std::optional<Declarator> Nested;
  if (at(Tok::Ident)) {
    D.Loc = cur().Loc;
    D.Name = take().Text;
  } else if (at(Tok::LParen) && !startsTypeName(Pos + 1) &&
             ahead(1).Kind != Tok::RParen) {
    take(); // '('
    CERB_TRY(N, parseDeclarator(Abstract));
    Nested = std::move(N);
    CERB_CHECK(expect(Tok::RParen, "6.7.6"));
  } else if (!Abstract) {
    return err("expected declarator name", cur().Loc, "6.7.6");
  }

  // Postfix suffixes, in parse (left-to-right) order.
  std::vector<DeclaratorPart> Suffixes;
  for (;;) {
    if (accept(Tok::LBracket)) {
      DeclaratorPart P;
      P.Kind = DeclaratorPart::Arr;
      if (!at(Tok::RBracket)) {
        CERB_TRY(Sz, parseAssignExpr());
        P.ArraySize = std::move(Sz);
      }
      CERB_CHECK(expect(Tok::RBracket, "6.7.6.2"));
      Suffixes.push_back(std::move(P));
      continue;
    }
    if (at(Tok::LParen)) {
      take();
      DeclaratorPart P;
      P.Kind = DeclaratorPart::Fun;
      if (accept(Tok::RParen)) {
        // K&R-style empty parens: treated as (void) prototype in the
        // fragment (unprototyped functions are not supported).
        Suffixes.push_back(std::move(P));
        continue;
      }
      if (at(Tok::KwVoid) && ahead(1).Kind == Tok::RParen) {
        take();
        take();
        Suffixes.push_back(std::move(P));
        continue;
      }
      for (;;) {
        if (accept(Tok::Ellipsis)) {
          P.Variadic = true;
          break;
        }
        CERB_TRY(Spec, parseDeclSpecifiers());
        if (Spec.first != StorageClass::None &&
            Spec.first != StorageClass::Register)
          return err("bad storage class on parameter", cur().Loc, "6.7.6.3p2");
        CERB_TRY(PD, parseDeclarator(/*Abstract=*/true));
        CERB_TRY(PTy, applyDeclarator(Spec.second, PD));
        CabsParamDecl Param;
        Param.Ty = PTy;
        Param.Name = PD.Name;
        Param.Loc = PD.Loc;
        P.Params.push_back(std::move(Param));
        if (!accept(Tok::Comma))
          break;
      }
      CERB_CHECK(expect(Tok::RParen, "6.7.6.3"));
      Suffixes.push_back(std::move(P));
      continue;
    }
    break;
  }

  // Application order onto the base type (6.7.6 "declaration mirrors use"):
  // the constructor *farthest* from the identifier wraps the base first.
  // That is: pointers in left-to-right order, then suffixes right-to-left,
  // then the parenthesised inner declarator's parts (closest of all) last.
  //   int *p[3]      -> Arr3(Ptr(int))      : apply Ptr, then Arr3
  //   int a[2][3]    -> Arr2(Arr3(int))     : apply Arr3, then Arr2
  //   int (*fp[4])() -> Arr4(Ptr(Fun(int))) : apply Fun, then Ptr, Arr4
  D.Parts = std::move(Pointers);
  for (auto It = Suffixes.rbegin(); It != Suffixes.rend(); ++It)
    D.Parts.push_back(std::move(*It));
  if (Nested) {
    D.Name = Nested->Name;
    if (Nested->Loc.isValid())
      D.Loc = Nested->Loc;
    for (auto &P : Nested->Parts)
      D.Parts.push_back(std::move(P));
  }
  return D;
}

Expected<CabsTypePtr> Parser::applyDeclarator(CabsTypePtr Base,
                                              Declarator &D) {
  CabsTypePtr Ty = Base;
  // Parts are innermost-first; wrap outward.
  for (DeclaratorPart &P : D.Parts) {
    auto Next = std::make_shared<CabsType>();
    Next->Loc = D.Loc;
    switch (P.Kind) {
    case DeclaratorPart::Ptr:
      Next->Kind = CabsTypeKind::Pointer;
      Next->Inner = Ty;
      Next->Const = P.Const;
      break;
    case DeclaratorPart::Arr:
      Next->Kind = CabsTypeKind::Array;
      Next->Inner = Ty;
      Next->ArraySize = std::move(P.ArraySize);
      break;
    case DeclaratorPart::Fun:
      Next->Kind = CabsTypeKind::Function;
      Next->Inner = Ty;
      Next->Params = std::move(P.Params);
      Next->Variadic = P.Variadic;
      break;
    }
    Ty = Next;
  }
  return Ty;
}

Expected<CabsTypePtr> Parser::parseTypeName() {
  CERB_TRY(Spec, parseDeclSpecifiers());
  if (Spec.first != StorageClass::None)
    return err("storage class in type name", cur().Loc, "6.7.7");
  CERB_TRY(D, parseDeclarator(/*Abstract=*/true));
  if (!D.Name.empty())
    return err("type name must not declare an identifier", D.Loc, "6.7.7");
  return applyDeclarator(Spec.second, D);
}

Expected<CabsInit> Parser::parseInitializer() {
  CabsInit Init;
  Init.Loc = cur().Loc;
  if (accept(Tok::LBrace)) {
    for (;;) {
      if (accept(Tok::RBrace))
        return Init;
      if (at(Tok::Dot) || at(Tok::LBracket))
        return err("designated initialisers are outside the fragment",
                   cur().Loc);
      CERB_TRY(Sub, parseInitializer());
      Init.List.push_back(std::move(Sub));
      if (!accept(Tok::Comma)) {
        CERB_CHECK(expect(Tok::RBrace, "6.7.9"));
        return Init;
      }
    }
  }
  CERB_TRY(E, parseAssignExpr());
  Init.E = std::move(E);
  return Init;
}

Expected<std::vector<CabsDecl>> Parser::parseDeclarationGroup() {
  CERB_TRY(Spec, parseDeclSpecifiers());
  std::vector<CabsDecl> Out;
  // A bare "struct s { ... };" has no declarators: emit a nameless decl so
  // the tag definition is still processed.
  if (at(Tok::Semi)) {
    take();
    CabsDecl Decl;
    Decl.SC = Spec.first;
    Decl.Ty = Spec.second;
    Decl.Loc = Spec.second->Loc;
    Out.push_back(std::move(Decl));
    return Out;
  }
  for (;;) {
    CERB_TRY(D, parseDeclarator(/*Abstract=*/false));
    CERB_TRY(Ty, applyDeclarator(Spec.second, D));
    CabsDecl Decl;
    Decl.SC = Spec.first;
    Decl.Ty = Ty;
    Decl.Name = D.Name;
    Decl.Loc = D.Loc;
    declareName(D.Name, Spec.first == StorageClass::Typedef);
    if (accept(Tok::Eq)) {
      CERB_TRY(Init, parseInitializer());
      Decl.Init = std::move(Init);
    }
    Out.push_back(std::move(Decl));
    if (!accept(Tok::Comma))
      break;
  }
  CERB_CHECK(expect(Tok::Semi, "6.7"));
  return Out;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operator precedence (higher binds tighter), 6.5.5–6.5.14.
static int precedenceOf(Tok K) {
  switch (K) {
  case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
  case Tok::Plus: case Tok::Minus: return 9;
  case Tok::LessLess: case Tok::GreaterGreater: return 8;
  case Tok::Less: case Tok::Greater: case Tok::LessEq: case Tok::GreaterEq:
    return 7;
  case Tok::EqEq: case Tok::ExclaimEq: return 6;
  case Tok::Amp: return 5;
  case Tok::Caret: return 4;
  case Tok::Pipe: return 3;
  case Tok::AmpAmp: return 2;
  case Tok::PipePipe: return 1;
  default: return 0;
  }
}

static BinaryOp binOpOf(Tok K) {
  switch (K) {
  case Tok::Star: return BinaryOp::Mul;
  case Tok::Slash: return BinaryOp::Div;
  case Tok::Percent: return BinaryOp::Rem;
  case Tok::Plus: return BinaryOp::Add;
  case Tok::Minus: return BinaryOp::Sub;
  case Tok::LessLess: return BinaryOp::Shl;
  case Tok::GreaterGreater: return BinaryOp::Shr;
  case Tok::Less: return BinaryOp::Lt;
  case Tok::Greater: return BinaryOp::Gt;
  case Tok::LessEq: return BinaryOp::Le;
  case Tok::GreaterEq: return BinaryOp::Ge;
  case Tok::EqEq: return BinaryOp::Eq;
  case Tok::ExclaimEq: return BinaryOp::Ne;
  case Tok::Amp: return BinaryOp::BitAnd;
  case Tok::Caret: return BinaryOp::BitXor;
  case Tok::Pipe: return BinaryOp::BitOr;
  case Tok::AmpAmp: return BinaryOp::LogAnd;
  case Tok::PipePipe: return BinaryOp::LogOr;
  default: assert(false && "not a binary operator token"); return BinaryOp::Add;
  }
}

/// Maps a compound-assignment token to its arithmetic operator.
static std::optional<BinaryOp> compoundOpOf(Tok K) {
  switch (K) {
  case Tok::StarEq: return BinaryOp::Mul;
  case Tok::SlashEq: return BinaryOp::Div;
  case Tok::PercentEq: return BinaryOp::Rem;
  case Tok::PlusEq: return BinaryOp::Add;
  case Tok::MinusEq: return BinaryOp::Sub;
  case Tok::LessLessEq: return BinaryOp::Shl;
  case Tok::GreaterGreaterEq: return BinaryOp::Shr;
  case Tok::AmpEq: return BinaryOp::BitAnd;
  case Tok::CaretEq: return BinaryOp::BitXor;
  case Tok::PipeEq: return BinaryOp::BitOr;
  default: return std::nullopt;
  }
}

Expected<CabsExprPtr> Parser::parseExpr() {
  CERB_TRY(Lhs, parseAssignExpr());
  CabsExprPtr Cur = std::move(Lhs);
  while (at(Tok::Comma)) {
    SourceLoc L = take().Loc;
    CERB_TRY(Rhs, parseAssignExpr());
    auto E = makeExpr(CabsExprKind::Comma, L);
    E->Kids.push_back(std::move(Cur));
    E->Kids.push_back(std::move(Rhs));
    Cur = std::move(E);
  }
  return Cur;
}

Expected<CabsExprPtr> Parser::parseAssignExpr() {
  // Parse a conditional-expression, then check for an assignment operator;
  // the type checker rejects non-lvalue left operands (6.5.16p2).
  CERB_TRY(Lhs, parseCondExpr());
  Tok K = cur().Kind;
  if (K == Tok::Eq || compoundOpOf(K)) {
    SourceLoc L = take().Loc;
    CERB_TRY(Rhs, parseAssignExpr());
    auto E = makeExpr(CabsExprKind::Assign, L);
    E->AssignOp = compoundOpOf(K);
    E->Kids.push_back(std::move(Lhs));
    E->Kids.push_back(std::move(Rhs));
    return E;
  }
  return std::move(Lhs);
}

Expected<CabsExprPtr> Parser::parseCondExpr() {
  CERB_TRY(Cond, parseBinaryExpr(1));
  if (!at(Tok::Question))
    return std::move(Cond);
  SourceLoc L = take().Loc;
  CERB_TRY(Then, parseExpr());
  CERB_CHECK(expect(Tok::Colon, "6.5.15"));
  CERB_TRY(Else, parseCondExpr());
  auto E = makeExpr(CabsExprKind::Cond, L);
  E->Kids.push_back(std::move(Cond));
  E->Kids.push_back(std::move(Then));
  E->Kids.push_back(std::move(Else));
  return E;
}

Expected<CabsExprPtr> Parser::parseBinaryExpr(int MinPrec) {
  CERB_TRY(Lhs, parseCastExpr());
  CabsExprPtr Cur = std::move(Lhs);
  for (;;) {
    int Prec = precedenceOf(cur().Kind);
    if (Prec < MinPrec || Prec == 0)
      return Cur;
    Tok OpTok = cur().Kind;
    SourceLoc L = take().Loc;
    CERB_TRY(Rhs, parseBinaryExpr(Prec + 1));
    auto E = makeExpr(CabsExprKind::Binary, L);
    E->BOp = binOpOf(OpTok);
    E->Kids.push_back(std::move(Cur));
    E->Kids.push_back(std::move(Rhs));
    Cur = std::move(E);
  }
}

Expected<CabsExprPtr> Parser::parseCastExpr() {
  if (at(Tok::LParen) && startsTypeName(Pos + 1)) {
    SourceLoc L = take().Loc;
    CERB_TRY(Ty, parseTypeName());
    CERB_CHECK(expect(Tok::RParen, "6.5.4"));
    if (at(Tok::LBrace))
      return err("compound literals are outside the fragment", L);
    CERB_TRY(Inner, parseCastExpr());
    auto E = makeExpr(CabsExprKind::Cast, L);
    E->TypeName = Ty;
    E->Kids.push_back(std::move(Inner));
    return E;
  }
  return parseUnaryExpr();
}

Expected<CabsExprPtr> Parser::parseUnaryExpr() {
  SourceLoc L = cur().Loc;
  auto MakeUnary = [&](UnaryOp Op,
                       Expected<CabsExprPtr> Sub) -> Expected<CabsExprPtr> {
    if (!Sub)
      return Sub.takeError();
    auto E = makeExpr(CabsExprKind::Unary, L);
    E->UOp = Op;
    E->Kids.push_back(std::move(*Sub));
    return E;
  };
  switch (cur().Kind) {
  case Tok::PlusPlus:
    take();
    return MakeUnary(UnaryOp::PreInc, parseUnaryExpr());
  case Tok::MinusMinus:
    take();
    return MakeUnary(UnaryOp::PreDec, parseUnaryExpr());
  case Tok::Amp:
    take();
    return MakeUnary(UnaryOp::AddrOf, parseCastExpr());
  case Tok::Star:
    take();
    return MakeUnary(UnaryOp::Deref, parseCastExpr());
  case Tok::Plus:
    take();
    return MakeUnary(UnaryOp::Plus, parseCastExpr());
  case Tok::Minus:
    take();
    return MakeUnary(UnaryOp::Minus, parseCastExpr());
  case Tok::Tilde:
    take();
    return MakeUnary(UnaryOp::BitNot, parseCastExpr());
  case Tok::Exclaim:
    take();
    return MakeUnary(UnaryOp::LogNot, parseCastExpr());
  case Tok::KwSizeof: {
    take();
    if (at(Tok::LParen) && startsTypeName(Pos + 1)) {
      take();
      CERB_TRY(Ty, parseTypeName());
      CERB_CHECK(expect(Tok::RParen, "6.5.3.4"));
      auto E = makeExpr(CabsExprKind::SizeofType, L);
      E->TypeName = Ty;
      return E;
    }
    CERB_TRY(Sub, parseUnaryExpr());
    auto E = makeExpr(CabsExprKind::SizeofExpr, L);
    E->Kids.push_back(std::move(Sub));
    return E;
  }
  case Tok::KwAlignof: {
    take();
    CERB_CHECK(expect(Tok::LParen, "6.5.3.4"));
    CERB_TRY(Ty, parseTypeName());
    CERB_CHECK(expect(Tok::RParen, "6.5.3.4"));
    auto E = makeExpr(CabsExprKind::AlignofType, L);
    E->TypeName = Ty;
    return E;
  }
  default:
    return parsePostfixExpr();
  }
}

Expected<CabsExprPtr> Parser::parsePostfixExpr() {
  CERB_TRY(Base, parsePrimaryExpr());
  CabsExprPtr Cur = std::move(Base);
  for (;;) {
    SourceLoc L = cur().Loc;
    if (accept(Tok::LBracket)) {
      CERB_TRY(Idx, parseExpr());
      CERB_CHECK(expect(Tok::RBracket, "6.5.2.1"));
      auto E = makeExpr(CabsExprKind::Index, L);
      E->Kids.push_back(std::move(Cur));
      E->Kids.push_back(std::move(Idx));
      Cur = std::move(E);
      continue;
    }
    if (accept(Tok::LParen)) {
      auto E = makeExpr(CabsExprKind::Call, L);
      E->Kids.push_back(std::move(Cur));
      if (!accept(Tok::RParen)) {
        for (;;) {
          CERB_TRY(Arg, parseAssignExpr());
          E->Kids.push_back(std::move(Arg));
          if (!accept(Tok::Comma))
            break;
        }
        CERB_CHECK(expect(Tok::RParen, "6.5.2.2"));
      }
      Cur = std::move(E);
      continue;
    }
    if (accept(Tok::Dot) || at(Tok::Arrow)) {
      bool IsArrow = false;
      if (at(Tok::Arrow)) {
        take();
        IsArrow = true;
      }
      if (!at(Tok::Ident))
        return err("expected member name", cur().Loc, "6.5.2.3");
      auto E = makeExpr(IsArrow ? CabsExprKind::MemberPtr
                                : CabsExprKind::Member,
                        L);
      E->Text = take().Text;
      E->Kids.push_back(std::move(Cur));
      Cur = std::move(E);
      continue;
    }
    if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
      bool Inc = cur().Kind == Tok::PlusPlus;
      take();
      auto E = makeExpr(CabsExprKind::Unary, L);
      E->UOp = Inc ? UnaryOp::PostInc : UnaryOp::PostDec;
      E->Kids.push_back(std::move(Cur));
      Cur = std::move(E);
      continue;
    }
    return Cur;
  }
}

Expected<CabsExprPtr> Parser::parsePrimaryExpr() {
  SourceLoc L = cur().Loc;
  switch (cur().Kind) {
  case Tok::Ident: {
    auto E = makeExpr(CabsExprKind::Ident, L);
    E->Text = take().Text;
    return E;
  }
  case Tok::IntConst: {
    auto E = makeExpr(CabsExprKind::IntConst, L);
    E->Text = take().Text;
    return E;
  }
  case Tok::CharConst: {
    auto E = makeExpr(CabsExprKind::CharConst, L);
    E->IntValue = take().IntValue;
    return E;
  }
  case Tok::StringLit: {
    auto E = makeExpr(CabsExprKind::StringLit, L);
    E->Text = take().Text;
    return E;
  }
  case Tok::LParen: {
    take();
    CERB_TRY(E, parseExpr());
    CERB_CHECK(expect(Tok::RParen, "6.5.1"));
    return std::move(E);
  }
  default:
    return err(fmt("expected expression but found '{0}'",
                   tokName(cur().Kind)),
               L, "6.5.1");
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Expected<CabsStmtPtr> Parser::parseBlock() {
  SourceLoc L = cur().Loc;
  CERB_CHECK(expect(Tok::LBrace, "6.8.2"));
  pushScope();
  auto Block = std::make_unique<CabsStmt>();
  Block->Kind = CabsStmtKind::Block;
  Block->Loc = L;
  while (!accept(Tok::RBrace)) {
    if (at(Tok::EndOfFile)) {
      popScope();
      return err("unterminated block", L, "6.8.2");
    }
    auto Sub = parseStmt();
    if (!Sub) {
      popScope();
      return Sub.takeError();
    }
    Block->Body.push_back(std::move(*Sub));
  }
  popScope();
  return Block;
}

Expected<CabsStmtPtr> Parser::parseStmt() {
  SourceLoc L = cur().Loc;
  auto Make = [&](CabsStmtKind K) {
    auto S = std::make_unique<CabsStmt>();
    S->Kind = K;
    S->Loc = L;
    return S;
  };
  switch (cur().Kind) {
  case Tok::LBrace:
    return parseBlock();
  case Tok::Semi:
    take();
    return Make(CabsStmtKind::Expr); // empty statement: E == nullptr
  case Tok::KwIf: {
    take();
    CERB_CHECK(expect(Tok::LParen, "6.8.4.1"));
    CERB_TRY(Cond, parseExpr());
    CERB_CHECK(expect(Tok::RParen, "6.8.4.1"));
    CERB_TRY(Then, parseStmt());
    auto S = Make(CabsStmtKind::If);
    S->E = std::move(Cond);
    S->Body.push_back(std::move(Then));
    if (accept(Tok::KwElse)) {
      CERB_TRY(Else, parseStmt());
      S->Body.push_back(std::move(Else));
    }
    return S;
  }
  case Tok::KwWhile: {
    take();
    CERB_CHECK(expect(Tok::LParen, "6.8.5.1"));
    CERB_TRY(Cond, parseExpr());
    CERB_CHECK(expect(Tok::RParen, "6.8.5.1"));
    CERB_TRY(Body, parseStmt());
    auto S = Make(CabsStmtKind::While);
    S->E = std::move(Cond);
    S->Body.push_back(std::move(Body));
    return S;
  }
  case Tok::KwDo: {
    take();
    CERB_TRY(Body, parseStmt());
    CERB_CHECK(expect(Tok::KwWhile, "6.8.5.2"));
    CERB_CHECK(expect(Tok::LParen, "6.8.5.2"));
    CERB_TRY(Cond, parseExpr());
    CERB_CHECK(expect(Tok::RParen, "6.8.5.2"));
    CERB_CHECK(expect(Tok::Semi, "6.8.5.2"));
    auto S = Make(CabsStmtKind::DoWhile);
    S->E = std::move(Cond);
    S->Body.push_back(std::move(Body));
    return S;
  }
  case Tok::KwFor: {
    take();
    CERB_CHECK(expect(Tok::LParen, "6.8.5.3"));
    pushScope(); // for-init declarations scope over the whole loop
    auto S = Make(CabsStmtKind::For);
    auto Fail = [&](StaticError E) -> Expected<CabsStmtPtr> {
      popScope();
      return E;
    };
    if (startsDeclaration()) {
      auto Decls = parseDeclarationGroup();
      if (!Decls)
        return Fail(Decls.takeError());
      S->Decls = std::move(*Decls);
    } else if (!at(Tok::Semi)) {
      auto Init = parseExpr();
      if (!Init)
        return Fail(Init.takeError());
      S->E = std::move(*Init);
      if (auto R = expect(Tok::Semi, "6.8.5.3"); !R)
        return Fail(R.error());
    } else {
      take();
    }
    if (!at(Tok::Semi)) {
      auto Cond = parseExpr();
      if (!Cond)
        return Fail(Cond.takeError());
      S->E2 = std::move(*Cond);
    }
    if (auto R = expect(Tok::Semi, "6.8.5.3"); !R)
      return Fail(R.error());
    if (!at(Tok::RParen)) {
      auto Step = parseExpr();
      if (!Step)
        return Fail(Step.takeError());
      S->E3 = std::move(*Step);
    }
    if (auto R = expect(Tok::RParen, "6.8.5.3"); !R)
      return Fail(R.error());
    auto Body = parseStmt();
    if (!Body)
      return Fail(Body.takeError());
    S->Body.push_back(std::move(*Body));
    popScope();
    return S;
  }
  case Tok::KwSwitch: {
    take();
    CERB_CHECK(expect(Tok::LParen, "6.8.4.2"));
    CERB_TRY(Cond, parseExpr());
    CERB_CHECK(expect(Tok::RParen, "6.8.4.2"));
    CERB_TRY(Body, parseStmt());
    auto S = Make(CabsStmtKind::Switch);
    S->E = std::move(Cond);
    S->Body.push_back(std::move(Body));
    return S;
  }
  case Tok::KwCase: {
    take();
    CERB_TRY(V, parseConstantExpr());
    CERB_CHECK(expect(Tok::Colon, "6.8.1"));
    CERB_TRY(Sub, parseStmt());
    auto S = Make(CabsStmtKind::Case);
    S->E = std::move(V);
    S->Body.push_back(std::move(Sub));
    return S;
  }
  case Tok::KwDefault: {
    take();
    CERB_CHECK(expect(Tok::Colon, "6.8.1"));
    CERB_TRY(Sub, parseStmt());
    auto S = Make(CabsStmtKind::Default);
    S->Body.push_back(std::move(Sub));
    return S;
  }
  case Tok::KwGoto: {
    take();
    if (!at(Tok::Ident))
      return err("expected label name after goto", cur().Loc, "6.8.6.1");
    auto S = Make(CabsStmtKind::Goto);
    S->Text = take().Text;
    CERB_CHECK(expect(Tok::Semi, "6.8.6.1"));
    return S;
  }
  case Tok::KwBreak:
    take();
    CERB_CHECK(expect(Tok::Semi, "6.8.6.3"));
    return Make(CabsStmtKind::Break);
  case Tok::KwContinue:
    take();
    CERB_CHECK(expect(Tok::Semi, "6.8.6.2"));
    return Make(CabsStmtKind::Continue);
  case Tok::KwReturn: {
    take();
    auto S = Make(CabsStmtKind::Return);
    if (!at(Tok::Semi)) {
      CERB_TRY(E, parseExpr());
      S->E = std::move(E);
    }
    CERB_CHECK(expect(Tok::Semi, "6.8.6.4"));
    return S;
  }
  default:
    break;
  }

  // Label: "ident :" (but not a typedef'd declaration).
  if (at(Tok::Ident) && ahead(1).Kind == Tok::Colon &&
      !isTypedefName(cur().Text)) {
    auto S = Make(CabsStmtKind::Label);
    S->Text = take().Text;
    take(); // ':'
    CERB_TRY(Sub, parseStmt());
    S->Body.push_back(std::move(Sub));
    return S;
  }

  if (startsDeclaration()) {
    CERB_TRY(Decls, parseDeclarationGroup());
    auto S = Make(CabsStmtKind::Decl);
    S->Decls = std::move(Decls);
    return S;
  }

  CERB_TRY(E, parseExpr());
  CERB_CHECK(expect(Tok::Semi, "6.8.3"));
  auto S = Make(CabsStmtKind::Expr);
  S->E = std::move(E);
  return S;
}

//===----------------------------------------------------------------------===//
// Translation unit
//===----------------------------------------------------------------------===//

Expected<CabsTranslationUnit> Parser::parseUnit() {
  CabsTranslationUnit Unit;
  while (!at(Tok::EndOfFile)) {
    CERB_TRY(Spec, parseDeclSpecifiers());
    // Bare tag declaration: "struct s {...};"
    if (accept(Tok::Semi)) {
      CabsExternal Ext;
      CabsDecl Decl;
      Decl.SC = Spec.first;
      Decl.Ty = Spec.second;
      Decl.Loc = Spec.second->Loc;
      Ext.Decls.push_back(std::move(Decl));
      Unit.Items.push_back(std::move(Ext));
      continue;
    }
    CERB_TRY(D, parseDeclarator(/*Abstract=*/false));
    CERB_TRY(Ty, applyDeclarator(Spec.second, D));

    // Function definition: declarator of function type followed by '{'.
    if (Ty->Kind == CabsTypeKind::Function && at(Tok::LBrace)) {
      declareName(D.Name, /*IsTypedef=*/false);
      pushScope();
      for (const CabsParamDecl &P : Ty->Params)
        if (!P.Name.empty())
          declareName(P.Name, /*IsTypedef=*/false);
      auto Body = parseBlock();
      popScope();
      if (!Body)
        return Body.takeError();
      CabsExternal Ext;
      CabsFunctionDef F;
      F.SC = Spec.first;
      F.Ty = Ty;
      F.Name = D.Name;
      F.Body = std::move(*Body);
      F.Loc = D.Loc;
      Ext.Function = std::move(F);
      Unit.Items.push_back(std::move(Ext));
      continue;
    }

    // Otherwise: a declaration group (we already consumed one declarator).
    CabsExternal Ext;
    declareName(D.Name, Spec.first == StorageClass::Typedef);
    CabsDecl First;
    First.SC = Spec.first;
    First.Ty = Ty;
    First.Name = D.Name;
    First.Loc = D.Loc;
    if (accept(Tok::Eq)) {
      CERB_TRY(Init, parseInitializer());
      First.Init = std::move(Init);
    }
    Ext.Decls.push_back(std::move(First));
    while (accept(Tok::Comma)) {
      CERB_TRY(D2, parseDeclarator(/*Abstract=*/false));
      CERB_TRY(Ty2, applyDeclarator(Spec.second, D2));
      CabsDecl Decl;
      Decl.SC = Spec.first;
      Decl.Ty = Ty2;
      Decl.Name = D2.Name;
      Decl.Loc = D2.Loc;
      declareName(D2.Name, Spec.first == StorageClass::Typedef);
      if (accept(Tok::Eq)) {
        CERB_TRY(Init, parseInitializer());
        Decl.Init = std::move(Init);
      }
      Ext.Decls.push_back(std::move(Decl));
    }
    CERB_CHECK(expect(Tok::Semi, "6.7"));
    Unit.Items.push_back(std::move(Ext));
  }
  return Unit;
}

Expected<CabsExprPtr> Parser::parseExprOnly() {
  CERB_TRY(E, parseExpr());
  if (!at(Tok::EndOfFile))
    return err("trailing tokens after expression", cur().Loc);
  return std::move(E);
}

} // namespace

Expected<CabsTranslationUnit>
cerb::cabs::parseTranslationUnit(std::string_view Source) {
  CERB_TRY(Toks, lex(Source));
  Parser P(std::move(Toks));
  return P.parseUnit();
}

Expected<CabsExprPtr> cerb::cabs::parseExpression(std::string_view Source) {
  CERB_TRY(Toks, lex(Source));
  Parser P(std::move(Toks));
  return P.parseExprOnly();
}
