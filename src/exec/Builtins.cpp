//===-- exec/Builtins.cpp - C standard library shims ----------------------===//
///
/// \file
/// The library functions the de facto test suite needs (§5.1: Cerberus
/// "supports only small parts of the standard libraries", §2.1 uses printf
/// and memcmp). All memory traffic goes through the memory object model so
/// each model's semantics (provenance on bytes, uninitialised reads, CHERI
/// tags) applies to library calls too.
///
//===----------------------------------------------------------------------===//

#include "exec/Evaluator.h"

#include "support/Format.h"

using namespace cerb;
using namespace cerb::exec;
using namespace cerb::core;

namespace {

/// Renders an integer as lowercase hex.
std::string toHex(UInt128 V) {
  if (V == 0)
    return "0";
  std::string Out;
  while (V != 0) {
    Out.push_back("0123456789abcdef"[static_cast<unsigned>(V & 0xF)]);
    V >>= 4;
  }
  return std::string(Out.rbegin(), Out.rend());
}

} // namespace

Evaluator::Res Evaluator::doPrintf(std::vector<Value> &Args, SourceLoc Loc) {
  auto FmtPtr = asPointer(Args[0]);
  if (!FmtPtr)
    return Res::error("printf with a non-pointer format");
  auto FmtOr = Mem.readString(*FmtPtr);
  if (!FmtOr) {
    auto U = FmtOr.takeUB();
    U.Loc = Loc;
    return Res::undef(std::move(U));
  }
  const std::string &Fmt = *FmtOr;

  std::string Printed;
  size_t ArgIdx = 1;
  auto NextInt = [&](std::optional<mem::IntegerValue> &Out) -> bool {
    if (ArgIdx >= Args.size())
      return false;
    const Value &V = Args[ArgIdx++];
    if (V.K == ValueKind::Unspecified) {
      ++Events.UnspecifiedIntoLibrary;
      // De facto latitude: an arbitrary but stable value; we print 0.
      Out = mem::IntegerValue(0);
      return true;
    }
    Out = asInteger(V);
    return Out.has_value();
  };

  for (size_t I = 0; I < Fmt.size(); ++I) {
    char C = Fmt[I];
    if (C != '%') {
      Printed.push_back(C);
      continue;
    }
    ++I;
    if (I >= Fmt.size())
      break;
    // Length modifiers are parsed and ignored: our integer values carry
    // exact mathematical values already converted to the argument type.
    while (I < Fmt.size() &&
           (Fmt[I] == 'l' || Fmt[I] == 'z' || Fmt[I] == 'h'))
      ++I;
    if (I >= Fmt.size())
      break;
    char Conv = Fmt[I];
    switch (Conv) {
    case '%':
      Printed.push_back('%');
      break;
    case 'd':
    case 'i': {
      std::optional<mem::IntegerValue> V;
      if (!NextInt(V))
        return Res::error("printf %d with a missing/bad argument");
      Printed += toString(V->V);
      break;
    }
    case 'u': {
      std::optional<mem::IntegerValue> V;
      if (!NextInt(V))
        return Res::error("printf %u with a missing/bad argument");
      // Negative values only arise from mismatched formats; render the
      // twos-complement 64-bit reading like a real libc would.
      Printed += V->V < 0 ? toString(UInt128(uint64_t(V->V)))
                          : toString(UInt128(V->V));
      break;
    }
    case 'x': {
      std::optional<mem::IntegerValue> V;
      if (!NextInt(V))
        return Res::error("printf %x with a missing/bad argument");
      Printed += V->V < 0 ? toHex(UInt128(uint64_t(V->V)))
                          : toHex(UInt128(V->V));
      break;
    }
    case 'c': {
      std::optional<mem::IntegerValue> V;
      if (!NextInt(V))
        return Res::error("printf %c with a missing/bad argument");
      Printed.push_back(static_cast<char>(V->V));
      break;
    }
    case 's': {
      if (ArgIdx >= Args.size())
        return Res::error("printf %s with a missing argument");
      auto P = asPointer(Args[ArgIdx++]);
      if (!P)
        return Res::error("printf %s with a non-pointer argument");
      auto S = Mem.readString(*P);
      if (!S) {
        auto U = S.takeUB();
        U.Loc = Loc;
        return Res::undef(std::move(U));
      }
      Printed += *S;
      break;
    }
    case 'p': {
      if (ArgIdx >= Args.size())
        return Res::error("printf %p with a missing argument");
      const Value &V = Args[ArgIdx++];
      if (V.K == ValueKind::Unspecified) {
        ++Events.UnspecifiedIntoLibrary;
        Printed += "(unspec)";
        break;
      }
      auto P = asPointer(V);
      if (!P)
        return Res::error("printf %p with a non-pointer argument");
      if (P->isNull())
        Printed += "(nil)";
      else
        Printed += "0x" + toHex(P->Addr);
      break;
    }
    default:
      return Res::error(fmt("printf: unsupported conversion '%{0}'", Conv));
    }
  }
  Out += Printed;
  return Res::value(Value::specified(
      Value::integer(Int128(Printed.size()))));
}

Evaluator::Res Evaluator::callBuiltin(ail::Builtin B,
                                      std::vector<Value> &Args,
                                      SourceLoc Loc) {
  auto UB = [&](mem::UndefinedBehaviour U) {
    U.Loc = Loc;
    return Res::undef(std::move(U));
  };
  auto IntArg = [&](size_t I) { return asInteger(Args[I]); };
  auto PtrArg = [&](size_t I) { return asPointer(Args[I]); };

  switch (B) {
  case ail::Builtin::Printf:
    return doPrintf(Args, Loc);

  case ail::Builtin::Malloc: {
    auto N = IntArg(0);
    if (!N)
      return Res::error("malloc with a bad size");
    return Res::value(Value::specified(Value::pointer(
        Mem.allocateRegion(static_cast<uint64_t>(N->V), 16))));
  }
  case ail::Builtin::Calloc: {
    auto N = IntArg(0), S = IntArg(1);
    if (!N || !S)
      return Res::error("calloc with bad arguments");
    uint64_t Total = static_cast<uint64_t>(N->V) *
                     static_cast<uint64_t>(S->V);
    mem::PointerValue P = Mem.allocateRegion(Total, 16);
    if (auto R = Mem.setBytes(P, 0, Total); !R)
      return UB(R.takeUB());
    return Res::value(Value::specified(Value::pointer(P)));
  }
  case ail::Builtin::Free: {
    auto P = PtrArg(0);
    if (!P)
      return Res::error("free with a bad pointer argument");
    if (auto R = Mem.freeRegion(*P); !R)
      return UB(R.takeUB());
    return Res::value(Value::specified(Value::unit()));
  }
  case ail::Builtin::Memcpy:
  case ail::Builtin::Memmove: {
    auto D = PtrArg(0), S = PtrArg(1);
    auto N = IntArg(2);
    if (!D || !S || !N)
      return Res::error("memcpy with bad arguments");
    if (auto R = Mem.copyBytes(*D, *S, static_cast<uint64_t>(N->V)); !R)
      return UB(R.takeUB());
    return Res::value(Value::specified(Value::pointer(*D)));
  }
  case ail::Builtin::Memset: {
    auto D = PtrArg(0);
    auto C = IntArg(1), N = IntArg(2);
    if (!D || !C || !N)
      return Res::error("memset with bad arguments");
    if (auto R = Mem.setBytes(*D, static_cast<uint8_t>(C->V),
                              static_cast<uint64_t>(N->V));
        !R)
      return UB(R.takeUB());
    return Res::value(Value::specified(Value::pointer(*D)));
  }
  case ail::Builtin::Memcmp: {
    auto A = PtrArg(0), C = PtrArg(1);
    auto N = IntArg(2);
    if (!A || !C || !N)
      return Res::error("memcmp with bad arguments");
    auto R = Mem.compareBytes(*A, *C, static_cast<uint64_t>(N->V));
    if (!R)
      return UB(R.takeUB());
    return Res::value(Value::specified(Value::integer(*R)));
  }
  case ail::Builtin::Strcpy: {
    auto D = PtrArg(0), S = PtrArg(1);
    if (!D || !S)
      return Res::error("strcpy with bad arguments");
    auto Str = Mem.readString(*S);
    if (!Str)
      return UB(Str.takeUB());
    if (auto R = Mem.copyBytes(*D, *S, Str->size() + 1); !R)
      return UB(R.takeUB());
    return Res::value(Value::specified(Value::pointer(*D)));
  }
  case ail::Builtin::Strcmp: {
    auto A = PtrArg(0), C = PtrArg(1);
    if (!A || !C)
      return Res::error("strcmp with bad arguments");
    auto SA = Mem.readString(*A);
    if (!SA)
      return UB(SA.takeUB());
    auto SC = Mem.readString(*C);
    if (!SC)
      return UB(SC.takeUB());
    int R = SA->compare(*SC);
    return Res::value(Value::specified(
        Value::integer(Int128(R < 0 ? -1 : R > 0 ? 1 : 0))));
  }
  case ail::Builtin::Puts: {
    auto P = PtrArg(0);
    if (!P)
      return Res::error("puts with a bad pointer");
    auto S = Mem.readString(*P);
    if (!S)
      return UB(S.takeUB());
    Out += *S;
    Out += '\n';
    return Res::value(Value::specified(Value::integer(Int128(S->size() + 1))));
  }
  case ail::Builtin::Putchar: {
    auto C = IntArg(0);
    if (!C)
      return Res::error("putchar with a bad argument");
    Out.push_back(static_cast<char>(C->V));
    return Res::value(Value::specified(Value::integer(C->V)));
  }
  case ail::Builtin::Realloc: {
    auto P = PtrArg(0);
    auto N = IntArg(1);
    if (!P || !N)
      return Res::error("realloc with bad arguments");
    uint64_t NewSize = static_cast<uint64_t>(N->V);
    if (P->isNull())
      return Res::value(Value::specified(
          Value::pointer(Mem.allocateRegion(NewSize, 16))));
    if (!P->Prov.isAlloc())
      return UB(mem::undef(mem::UBKind::FreeInvalidPointer,
                           "realloc of a pointer with no allocation"));
    uint64_t OldSize = Mem.allocations()[P->Prov.AllocId].Size;
    mem::PointerValue NewP = Mem.allocateRegion(NewSize, 16);
    uint64_t CopyN = OldSize < NewSize ? OldSize : NewSize;
    if (CopyN > 0)
      if (auto R = Mem.copyBytes(NewP, *P, CopyN); !R)
        return UB(R.takeUB());
    if (auto R = Mem.freeRegion(*P); !R)
      return UB(R.takeUB());
    return Res::value(Value::specified(Value::pointer(NewP)));
  }
  case ail::Builtin::Strlen: {
    auto P = PtrArg(0);
    if (!P)
      return Res::error("strlen with a bad pointer");
    auto S = Mem.readString(*P);
    if (!S)
      return UB(S.takeUB());
    return Res::value(
        Value::specified(Value::integer(Int128(S->size()))));
  }
  case ail::Builtin::Abort: {
    Res R;
    R.K = Res::ExitSig;
    R.ExitKind = OutcomeKind::Abort;
    return R;
  }
  case ail::Builtin::Exit: {
    auto C = IntArg(0);
    Res R;
    R.K = Res::ExitSig;
    R.ExitKind = OutcomeKind::Exit;
    R.ExitCode = C ? static_cast<int>(C->V) : 0;
    return R;
  }
  case ail::Builtin::Assert: {
    const Value &V = Args[0];
    if (V.K == ValueKind::Unspecified) {
      auto U = mem::undef(mem::UBKind::IndeterminateValueUse,
                          "assertion on an unspecified value");
      U.Loc = Loc;
      return Res::undef(std::move(U));
    }
    auto C = asInteger(V);
    if (!C)
      return Res::error("__cerb_assert with a bad argument");
    if (C->V == 0) {
      Res R;
      R.K = Res::ExitSig;
      R.ExitKind = OutcomeKind::AssertFail;
      R.Err = fmt("assertion failed at {0}", Loc.str());
      return R;
    }
    return Res::value(Value::specified(Value::unit()));
  }
  }
  return Res::error("unknown builtin");
}
