//===-- exec/EvalArena.cpp - Per-evaluation scratch recycling -------------===//
#include "exec/EvalArena.h"

using namespace cerb::exec;

EvalArena &EvalArena::threadLocal() {
  thread_local EvalArena Arena;
  return Arena;
}

std::vector<cerb::core::Value> EvalArena::takeValues() { return take(Values); }
void EvalArena::give(std::vector<cerb::core::Value> &&Buf) {
  giveTo(Values, std::move(Buf));
}

std::vector<uint8_t> EvalArena::takeBytes() { return take(Bytes); }
void EvalArena::give(std::vector<uint8_t> &&Buf) {
  giveTo(Bytes, std::move(Buf));
}

std::vector<uint64_t> EvalArena::takeStamps() { return take(Stamps); }
void EvalArena::give(std::vector<uint64_t> &&Buf) {
  giveTo(Stamps, std::move(Buf));
}
