//===-- exec/Pipeline.cpp -------------------------------------------------===//

#include "exec/Pipeline.h"

#include "ail/Desugar.h"
#include "cabs/Parser.h"
#include "elab/Elaborate.h"
#include "typing/TypeCheck.h"

using namespace cerb;
using namespace cerb::exec;

Expected<CompileResult> cerb::exec::compileWithStats(std::string_view Src) {
  CERB_TRY(Unit, cabs::parseTranslationUnit(Src));
  CERB_TRY(Ail, ail::desugar(Unit));
  CERB_CHECK(typing::typeCheck(Ail));
  CERB_TRY(Prog, elab::elaborate(std::move(Ail)));
  CompileResult Result{std::move(Prog), {}};
  Result.Rewrites = core::rewrite(Result.Prog);
  if (auto Err = core::typeCheck(Result.Prog))
    return err("Core type checking failed: " + *Err);
  return Result;
}

Expected<core::CoreProgram> cerb::exec::compile(std::string_view Src) {
  CERB_TRY(R, compileWithStats(Src));
  return std::move(R.Prog);
}

Expected<Outcome> cerb::exec::evaluateOnce(std::string_view Src,
                                           const RunOptions &Opts) {
  CERB_TRY(Prog, compile(Src));
  return runOnce(Prog, Opts);
}

Expected<ExhaustiveResult>
cerb::exec::evaluateExhaustive(std::string_view Src, const RunOptions &Opts) {
  CERB_TRY(Prog, compile(Src));
  return runExhaustive(Prog, Opts);
}
