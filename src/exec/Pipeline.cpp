//===-- exec/Pipeline.cpp -------------------------------------------------===//

#include "exec/Pipeline.h"

#include "ail/Desugar.h"
#include "cabs/Parser.h"
#include "elab/Elaborate.h"
#include "trace/Trace.h"
#include "typing/TypeCheck.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace cerb;
using namespace cerb::exec;

namespace {
/// Runs \p F under a named trace span, adding its wall-clock cost to \p Ms.
template <typename Fn>
auto timed(double &Ms, const char *SpanName, Fn &&F) {
  trace::Span S(SpanName, "pipeline");
  auto T0 = std::chrono::steady_clock::now();
  auto R = F();
  Ms += std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - T0)
            .count();
  return R;
}
} // namespace

bool cerb::exec::FrontendOptions::defaultCoreLower() {
  static const bool On = [] {
    const char *V = std::getenv("CERB_NO_LOWERING");
    return !(V && V[0] == '1' && V[1] == '\0');
  }();
  return On;
}

uint64_t cerb::exec::FrontendOptions::fingerprint() const {
  // FNV-1a over a version tag plus one byte per knob; bump the tag whenever
  // a knob is added so old fingerprints cannot alias new option vectors.
  // /2: added CoreLower; the lowering pass version is mixed in so a
  // lowering change re-keys cached lowered artifacts too.
  static constexpr const char kFrontendVersion[] = "cerb-frontend/2";
  uint64_t H = 0xcbf29ce484222325ull;
  for (const char *P = kFrontendVersion; *P; ++P) {
    H ^= static_cast<unsigned char>(*P);
    H *= 0x100000001b3ull;
  }
  H ^= static_cast<unsigned char>(CoreSimplify ? 1 : 0);
  H *= 0x100000001b3ull;
  H ^= static_cast<unsigned char>(CoreLower ? 1 : 0);
  H *= 0x100000001b3ull;
  if (CoreLower)
    for (char C : core::loweringVersion()) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001b3ull;
    }
  return H;
}

Expected<CompileResult> cerb::exec::compileWithStats(std::string_view Src) {
  return compileWithStats(Src, FrontendOptions());
}

Expected<CompileResult>
cerb::exec::compileWithStats(std::string_view Src, const FrontendOptions &FE) {
  static trace::Counter CntCompiles("pipeline.compiles");
  CntCompiles.add();
  trace::Span Whole("pipeline.compile", "pipeline");
  StageTimings T;
  CERB_TRY(Unit, timed(T.ParseMs, "pipeline.parse", [&] {
    return cabs::parseTranslationUnit(Src);
  }));
  CERB_TRY(Ail, timed(T.DesugarMs, "pipeline.desugar",
                      [&] { return ail::desugar(Unit); }));
  CERB_CHECK(timed(T.TypecheckMs, "pipeline.typecheck",
                   [&] { return typing::typeCheck(Ail); }));
  CERB_TRY(Prog, timed(T.ElaborateMs, "pipeline.elaborate", [&] {
    return elab::elaborate(std::move(Ail));
  }));
  CompileResult Result{std::move(Prog), {}, {}, {}};
  trace::Span Core("pipeline.core-prep", "pipeline");
  auto T0 = std::chrono::steady_clock::now();
  if (FE.CoreSimplify)
    Result.Rewrites = core::rewrite(Result.Prog);
  if (FE.CoreLower) {
    static trace::Counter CntLowered("lower.programs");
    static trace::Counter CntSlots("lower.slots");
    static trace::Counter CntFolds("lower.const_folds");
    static trace::Counter CntFlattened("lower.lets_flattened");
    static trace::Counter CntInterned("lower.consts_interned");
    static trace::Counter CntPure("lower.pure_nodes");
    trace::Span Lower("lower.run", "pipeline");
    Result.Lowering = core::lower(Result.Prog);
    CntLowered.add();
    CntSlots.add(Result.Lowering.SlotsAssigned);
    CntFolds.add(Result.Lowering.ConstFolds);
    CntFlattened.add(Result.Lowering.LetsFlattened);
    CntInterned.add(Result.Lowering.ConstsInterned);
    CntPure.add(Result.Lowering.PureNodes);
    if (Lower.active())
      Lower.arg("slots", Result.Lowering.SlotsAssigned);
  }
  // Type checking runs on the final (possibly lowered) tree, so a lowering
  // bug that breaks scoping or purity fails the compile rather than
  // corrupting an evaluation.
  if (auto Err = core::typeCheck(Result.Prog))
    return err("Core type checking failed: " + *Err);
  // Pre-warm the per-node dynamics caches: after this, evaluation never
  // writes to the program, so one compiled unit can serve many concurrent
  // evaluator threads (the oracle's compile-once/run-many contract).
  core::warmDynamicsCaches(Result.Prog);
  T.ElaborateMs += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  Result.Timings = T;
  return Result;
}

Expected<core::CoreProgram> cerb::exec::compile(std::string_view Src) {
  CERB_TRY(R, compileWithStats(Src));
  return std::move(R.Prog);
}

Expected<std::string> cerb::exec::readSourceFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return err("cannot open source file '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return err("error reading source file '" + Path + "'");
  return Buf.str();
}

Expected<CompileResult>
cerb::exec::compileFileWithStats(const std::string &Path) {
  CERB_TRY(Src, readSourceFile(Path));
  return compileWithStats(Src);
}

Expected<core::CoreProgram> cerb::exec::compileFile(const std::string &Path) {
  CERB_TRY(R, compileFileWithStats(Path));
  return std::move(R.Prog);
}

uint64_t cerb::exec::semanticsFingerprint() {
  // Bump with any change to elaboration or dynamics that can alter an
  // observable outcome: the new fingerprint orphans (never corrupts) every
  // result the serve cache persisted under the old semantics.
  static constexpr const char kSemanticsVersion[] = "cerb-semantics/1";
  static const uint64_t FP = [] {
    uint64_t H = 0xcbf29ce484222325ull;
    auto Mix = [&H](uint64_t V) {
      for (int I = 0; I < 8; ++I) {
        H ^= (V >> (I * 8)) & 0xFF;
        H *= 0x100000001b3ull;
      }
    };
    for (const char *P = kSemanticsVersion; *P; ++P) {
      H ^= static_cast<unsigned char>(*P);
      H *= 0x100000001b3ull;
    }
    // The preset knob vectors are part of the semantics surface: adding a
    // policy knob reshapes every model, so it must invalidate too.
    for (const mem::MemoryPolicy &P : mem::MemoryPolicy::allPresets())
      Mix(P.fingerprint());
    // The lowering pass rewrites what the evaluator executes; its version
    // is part of the semantics identity so result-cache entries persisted
    // across a lowering change are orphaned, never wrongly replayed.
    for (char C : core::loweringVersion()) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001b3ull;
    }
    return H;
  }();
  return FP;
}

Expected<Outcome> cerb::exec::evaluateOnce(std::string_view Src,
                                           const RunOptions &Opts) {
  CERB_TRY(Prog, compile(Src));
  return runOnce(Prog, Opts);
}

Expected<ExhaustiveResult>
cerb::exec::evaluateExhaustive(std::string_view Src, const RunOptions &Opts) {
  CERB_TRY(Prog, compile(Src));
  return runExhaustive(Prog, Opts);
}
