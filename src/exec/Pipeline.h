//===-- exec/Pipeline.h - The whole-pipeline public facade ------*- C++ -*-===//
///
/// \file
/// The public API of the library: compiles C source through the full
/// Cerberus pipeline (Fig. 1: parse -> desugar -> typecheck -> elaborate ->
/// Core-to-Core -> Core dynamics + memory object model) and runs it as a
/// test oracle.
///
/// Quickstart:
/// \code
///   auto ProgOr = cerb::exec::compile("int main(void){ return 7; }");
///   if (!ProgOr) { report(ProgOr.error().str()); }
///   cerb::exec::RunOptions Opts; // candidate de facto model by default
///   cerb::exec::Outcome O = cerb::exec::runOnce(*ProgOr, Opts);
///   // O.ExitCode == 7
/// \endcode
///
//===----------------------------------------------------------------------===//
#ifndef CERB_EXEC_PIPELINE_H
#define CERB_EXEC_PIPELINE_H

#include "core/Core.h"
#include "core/Lowering.h"
#include "exec/Driver.h"
#include "support/Expected.h"

namespace cerb::exec {

/// Wall-clock cost of each front-half stage (Fig. 1's pass structure),
/// surfaced per job by the oracle's observability layer.
struct StageTimings {
  double ParseMs = 0;
  double DesugarMs = 0;
  double TypecheckMs = 0;
  double ElaborateMs = 0; ///< elaboration + Core-to-Core + Core typecheck

  double totalMs() const {
    return ParseMs + DesugarMs + TypecheckMs + ElaborateMs;
  }
};

/// Everything the front half of the pipeline produced (for tools that want
/// to inspect intermediate stages, e.g. the Fig. 3 bench).
struct CompileResult {
  core::CoreProgram Prog;
  core::RewriteStats Rewrites;
  core::LoweringStats Lowering; ///< all-zero when lowering was disabled
  StageTimings Timings;
};

/// Knobs that change the *compiled artifact* (not the dynamics). Two
/// compilations of the same source under different FrontendOptions produce
/// distinct Core programs, so every compile cache keys on the fingerprint.
struct FrontendOptions {
  /// Run the Core-to-Core simplification pass (§5.1's "600" transformation:
  /// pure-let inlining, constant-if folding, unseq/skip cleanup). Turning
  /// it off keeps the raw elaboration — slower to evaluate but structurally
  /// 1:1 with the elaboration rules, which is what debugging wants.
  bool CoreSimplify = true;

  /// Run core::lower after elaboration (slot resolution, constant folding,
  /// let flattening, constant interning — see core/Lowering.h). Defaults
  /// from the environment: CERB_NO_LOWERING=1 turns it off, keeping the
  /// tree-walking evaluator path for differential testing. A knob (not a
  /// raw env read at use sites) so compile caches key lowered and
  /// unlowered artifacts separately.
  bool CoreLower = defaultCoreLower();

  /// True unless CERB_NO_LOWERING=1 is set (read once per process).
  static bool defaultCoreLower();

  bool operator==(const FrontendOptions &O) const {
    return CoreSimplify == O.CoreSimplify && CoreLower == O.CoreLower;
  }
  bool operator!=(const FrontendOptions &O) const { return !(*this == O); }

  /// Stable identity for cache keys and the serve wire format. Bump the
  /// version tag in Pipeline.cpp when adding a knob.
  uint64_t fingerprint() const;
};

/// Runs the full front end + elaboration on \p Source. The returned program
/// has its dynamics caches pre-warmed (core::warmDynamicsCaches), so it may
/// be evaluated concurrently from many threads without further preparation.
Expected<core::CoreProgram> compile(std::string_view Source);

/// Like compile(), also reporting the Core-to-Core rewrite statistics and
/// per-stage timings.
Expected<CompileResult> compileWithStats(std::string_view Source);
Expected<CompileResult> compileWithStats(std::string_view Source,
                                         const FrontendOptions &FE);

/// Reads \p Path from disk and compiles it. An unreadable file is reported
/// as a StaticError (not an exception), like any other front-end failure.
Expected<core::CoreProgram> compileFile(const std::string &Path);

/// compileFile() with rewrite statistics and per-stage timings.
Expected<CompileResult> compileFileWithStats(const std::string &Path);

/// Reads a whole file; shared by compileFile and the oracle's job loader.
Expected<std::string> readSourceFile(const std::string &Path);

/// Fingerprint of the *semantics* this build implements: a manually bumped
/// version tag hashed together with the preset policy fingerprints. The
/// serve result cache keys on it, so entries persisted by an older daemon
/// are invalidated (never wrongly replayed) once elaboration or dynamics
/// change observable outcomes. Bump kSemanticsVersion in Pipeline.cpp with
/// any such change.
uint64_t semanticsFingerprint();

/// Compile + run one leftmost execution.
Expected<Outcome> evaluateOnce(std::string_view Source,
                               const RunOptions &Opts = RunOptions());

/// Compile + exhaustively explore all executions.
Expected<ExhaustiveResult>
evaluateExhaustive(std::string_view Source,
                   const RunOptions &Opts = RunOptions());

} // namespace cerb::exec

#endif // CERB_EXEC_PIPELINE_H
