//===-- exec/EvalArena.h - Per-evaluation scratch recycling -----*- C++ -*-===//
///
/// \file
/// A per-thread pool of the transient buffers one evaluation churns
/// through: the slot-environment frame (NumSlots Values per Evaluator),
/// its bound/stamp bitmaps, and procedure-call argument vectors. The
/// exhaustive explorer constructs one Evaluator per explored path —
/// thousands per job — and without recycling every one of those paid a
/// fresh round of global-allocator traffic for identically-sized buffers.
///
/// Lifetime rules (see DESIGN.md "Core lowering & evaluator fast path"):
///  - the pool is thread-local; an Evaluator leases buffers in its
///    constructor and returns them in its destructor, both on the thread
///    that owns it (Evaluator is neither copyable nor movable, and every
///    driver constructs/runs/destroys it in one scope);
///  - leased buffers are cleared on take, so no value ever leaks from one
///    evaluation into another — recycling is capacity-only and therefore
///    invisible to observable behaviour;
///  - the pool holds at most a small fixed number of retired buffers per
///    shape (beyond that, give() frees), bounding retained memory on
///    long-lived worker threads.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_EXEC_EVALARENA_H
#define CERB_EXEC_EVALARENA_H

#include "core/Core.h"

#include <cstdint>
#include <vector>

namespace cerb::exec {

class EvalArena {
public:
  /// The calling thread's arena (one per thread, created on first use).
  static EvalArena &threadLocal();

  std::vector<core::Value> takeValues();
  void give(std::vector<core::Value> &&Buf);

  std::vector<uint8_t> takeBytes();
  void give(std::vector<uint8_t> &&Buf);

  std::vector<uint64_t> takeStamps();
  void give(std::vector<uint64_t> &&Buf);

  struct Stats {
    uint64_t Takes = 0;  ///< buffer leases
    uint64_t Reuses = 0; ///< leases served from the pool (no allocation)
  };
  const Stats &stats() const { return S; }

private:
  // Retire at most this many buffers per shape; an evaluation leases a
  // bounded handful at a time, so a deeper pool would only hold garbage.
  static constexpr size_t MaxPooled = 8;

  std::vector<std::vector<core::Value>> Values;
  std::vector<std::vector<uint8_t>> Bytes;
  std::vector<std::vector<uint64_t>> Stamps;
  Stats S;

  template <class T>
  std::vector<T> take(std::vector<std::vector<T>> &Pool) {
    ++S.Takes;
    if (Pool.empty())
      return {};
    ++S.Reuses;
    std::vector<T> Buf = std::move(Pool.back());
    Pool.pop_back();
    Buf.clear();
    return Buf;
  }
  template <class T>
  void giveTo(std::vector<std::vector<T>> &Pool, std::vector<T> &&Buf) {
    if (Buf.capacity() == 0 || Pool.size() >= MaxPooled)
      return;
    Buf.clear();
    Pool.push_back(std::move(Buf));
  }
};

} // namespace cerb::exec

#endif // CERB_EXEC_EVALARENA_H
