//===-- exec/Evaluator.h - Core operational semantics -----------*- C++ -*-===//
///
/// \file
/// The Core dynamics (§5.2, Fig. 1 "Core operational semantics (3100)"):
/// evaluates a Core program against a memory object model and a scheduler.
/// Nondeterminism (unseq interleaving order, Core nd, memory-model
/// latitude) is resolved through the Scheduler, so the same evaluator
/// serves the exhaustive and pseudorandom drivers.
///
/// Unsequenced races are detected structurally, via action footprints: each
/// `unseq` checks conflicts across its branches, and `let weak` checks its
/// first operand's *negative* (side-effect) actions against the second
/// (§5.6 polarities). Since any cross-branch conflicting pair is itself the
/// UB "unsequenced race", exploring branch-order permutations (rather than
/// action-level interleavings) preserves the observable-outcome set of
/// race-free programs — see DESIGN.md.
///
/// Control: save/run (§5.8) is implemented with jump signals that unwind to
/// the Save node (backward jumps re-enter; forward jumps route through the
/// continuation with a "jump-mode" evaluation), performing the create/kill
/// scope difference the paper's dynamics prescribes for goto.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_EXEC_EVALUATOR_H
#define CERB_EXEC_EVALUATOR_H

#include "core/Core.h"
#include "exec/EvalArena.h"
#include "exec/Outcome.h"
#include "mem/Memory.h"
#include "support/Scheduler.h"

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace cerb::exec {

struct ExecLimits {
  uint64_t MaxSteps = 20'000'000; ///< evaluation step budget
  unsigned MaxCallDepth = 400;
  /// Absolute wall-clock deadline; the epoch default means "none". Shared
  /// across all paths of one oracle job, so the whole job (not each path)
  /// is bounded. Checked every 8192 steps to keep the hot loop cheap.
  std::chrono::steady_clock::time_point Deadline{};

  bool hasDeadline() const {
    return Deadline != std::chrono::steady_clock::time_point{};
  }
  bool deadlinePassed() const {
    return hasDeadline() && std::chrono::steady_clock::now() >= Deadline;
  }
};

/// Counters of noteworthy dynamic events (consumed by the §3 analysis-tool
/// profiles, which report on events a lenient semantics does not flag).
struct ExecEvents {
  uint64_t UnspecifiedIntoLibrary = 0; ///< unspecified value reached printf&c
  uint64_t UnspecifiedCompared = 0;    ///< memcmp touched unspecified bytes
  uint64_t OutOfBoundsTransient = 0;   ///< OOB pointer constructed (Q31)
  uint64_t ProvenanceEqConsulted = 0;  ///< Q2 nondet choice points seen
};

class Evaluator {
public:
  Evaluator(const core::CoreProgram &Prog, Scheduler &Sched,
            mem::MemoryPolicy Policy, ExecLimits Limits = ExecLimits());
  ~Evaluator();
  Evaluator(const Evaluator &) = delete;
  Evaluator &operator=(const Evaluator &) = delete;

  /// Runs the whole program: creates static objects, evaluates their
  /// initialisers in declaration order, then calls main.
  Outcome run();

  const mem::Memory &memory() const { return Mem; }
  const ExecEvents &events() const { return Events; }
  uint64_t steps() const { return Steps; }

private:
  Outcome runImpl();

  const core::CoreProgram &Prog;
  ail::ImplEnv Env;
  Scheduler &Sched;
  mem::Memory Mem;
  ExecLimits Limits;
  ExecEvents Events;

  std::map<unsigned, core::Value> Bindings;
  /// Per-call-frame undo log: the value each rebound symbol had at frame
  /// entry (recursion must not clobber the caller's bindings).
  std::vector<std::map<unsigned, std::optional<core::Value>>> UndoStack;

  /// Slot-environment fast path, selected when the program was lowered
  /// (core::lower resolves every binding to a dense slot index): the
  /// environment is a flat Value array plus a bound bitmap, and the
  /// per-call undo discipline is a flat log with frame-epoch stamps for
  /// first-write-per-frame deduplication. CERB_NO_LOWERING=1 compiles
  /// keep Prog.Lowered false and run the map path above unchanged.
  const bool UseSlots;
  EvalArena &Arena;                ///< thread-local scratch pool
  std::vector<core::Value> Slots;  ///< slot -> current value
  std::vector<uint8_t> SlotBound;  ///< slot currently bound?
  /// Last frame epoch that pushed an undo record for the slot. Epochs are
  /// never reused, so a stale stamp (from a popped frame) simply triggers
  /// a benign duplicate record; reverse-order restoration applies the
  /// oldest (true frame-entry) value last.
  std::vector<uint64_t> SlotStamp;
  /// Undo records are slim: the displaced Value lives in UndoVals only
  /// when the slot was actually bound (ValIdx >= 0). First binds in a
  /// frame overwhelmingly hit unbound slots, so the common record is
  /// eight bytes with no Value traffic at all.
  struct UndoRec {
    int Slot;
    int ValIdx; ///< index into UndoVals, or -1 = slot was unbound
  };
  std::vector<UndoRec> UndoLog;
  std::vector<core::Value> UndoVals;
  struct UndoFrame {
    size_t Base;     ///< UndoLog size at frame entry
    size_t ValsBase; ///< UndoVals size at frame entry
    uint64_t Epoch;  ///< this frame's stamp value
  };
  std::vector<UndoFrame> UndoFrames;
  uint64_t EpochCounter = 0;
  uint64_t FrameEpoch = 0; ///< current frame's epoch (0 = top level)
  std::string Out;
  uint64_t Steps = 0;
  unsigned CallDepth = 0;

  /// One recorded memory action for the race check.
  struct ActRec {
    uint64_t Lo, Hi;
    bool Write;
    bool Neg;    ///< negative polarity (§5.6)
    bool Atomic; ///< seq_cst access: atomic/atomic pairs never race
    SourceLoc Loc;
  };
  struct Footprint {
    std::vector<ActRec> Acts;
    void merge(Footprint &&O) {
      Acts.insert(Acts.end(), O.Acts.begin(), O.Acts.end());
    }
  };

  /// Evaluation result: a value or an escaping signal.
  struct Res {
    enum Kind {
      Val,
      RunSig,  ///< run label (goto / break / continue / loop)
      RetSig,  ///< procedure return
      UndefSig,///< undefined behaviour
      ExitSig, ///< exit() / abort() / assert failure
      ErrSig,  ///< dynamic error (ill-formed Core) or step limit
    } K = Val;
    core::Value V;
    ail::Symbol RunLabel;
    std::vector<core::ScopeObject> RunScope;
    mem::UndefinedBehaviour UB{mem::UBKind::ExceptionalCondition, "", {}};
    OutcomeKind ExitKind = OutcomeKind::Exit;
    int ExitCode = 0;
    std::string Err;
    bool StepLimitHit = false;
    bool DeadlineHit = false;

    static Res value(core::Value V) {
      Res R;
      R.V = std::move(V);
      return R;
    }
    static Res undef(mem::UndefinedBehaviour U) {
      Res R;
      R.K = UndefSig;
      R.UB = std::move(U);
      return R;
    }
    static Res error(std::string Msg) {
      Res R;
      R.K = ErrSig;
      R.Err = std::move(Msg);
      return R;
    }
    bool isValue() const { return K == Val; }
  };

  struct Frame {
    std::vector<mem::PointerValue> Created;
  };
  std::vector<Frame> Frames;

  Res eval(const core::Expr &E, Footprint &FP);
  /// Jump-mode evaluation: route control to the Save node for \p Label
  /// inside \p E without evaluating the skipped prefix.
  Res evalJump(const core::Expr &E, ail::Symbol Label,
               const std::vector<core::ScopeObject> &RunScope,
               Footprint &FP);
  /// Does \p E syntactically contain `save Label`?
  bool containsSave(const core::Expr &E, ail::Symbol Label) const;
  /// Enters a Save: runs its body, re-entering on matching run signals.
  Res evalSaveBody(const core::Expr &Save, Footprint &FP,
                   bool ApplyDiffFirst,
                   const std::vector<core::ScopeObject> *RunScope);
  /// Applies the goto scope difference (§5.8): kills objects live at the
  /// run point but not the save point, creates the converse.
  Res applyScopeDiff(const std::vector<core::ScopeObject> &RunScope,
                     const std::vector<core::ScopeObject> &SaveScope);

  Res evalLet(const core::Expr &E, Footprint &FP);
  Res evalUnseq(const core::Expr &E, Footprint &FP);
  Res evalAction(const core::Expr &E, Footprint &FP);
  Res evalPtrOp(const core::Expr &E, Footprint &FP);
  Res evalPureCall(const core::Expr &E, Footprint &FP);
  /// Res-free fast path for subtrees lowering marked ValueOnly (slot path
  /// only): no Res, footprint, or signal plumbing, and operands are read
  /// in place — a Sym returns &Slots[slot], a pooled constant returns
  /// &ConstPool[i] (no 224-byte Value copies; sound because the subtree
  /// cannot rebind slots). Computed results land in \p Tmp and &Tmp is
  /// returned. nullptr defers to the general evaluator — safe to re-run
  /// because ValueOnly subtrees are effect-free.
  const core::Value *evalPure(const core::Expr &E, core::Value &Tmp);
  /// Computes a known pure builtin when the operands are well-formed;
  /// nullopt on any shape the general path diagnoses. \p Args must have
  /// at least max(N, 4) valid pointers (callers pad with defaults).
  std::optional<core::Value> tryPureFn(core::PureFn F,
                                       const core::Value *const *Args,
                                       size_t N);
  Res evalPar(const core::Expr &E, Footprint &FP);

  Res callProc(ail::Symbol S, std::vector<core::Value> Args, SourceLoc Loc);
  Res callBuiltin(ail::Builtin B, std::vector<core::Value> &Args,
                  SourceLoc Loc);
  Res doPrintf(std::vector<core::Value> &Args, SourceLoc Loc);

  /// Binds a symbol, recording the previous value in the innermost undo
  /// frame (first write per frame only).
  void bind(unsigned Id, core::Value &&V);
  /// Slot-path bind with the same per-frame undo discipline.
  void bindSlot(int Slot, core::Value &&V);
  bool matchPattern(const core::Pattern &P, const core::Value &V);
  /// Slot-path matchPattern that consumes \p V: bound sub-values are
  /// moved into their slots instead of deep-copied. Accept/reject
  /// decisions mirror matchPattern exactly; a rejected match may leave
  /// \p V partially consumed, so callers must not read it afterwards
  /// (the copying version has the same partial-bind caveat).
  bool matchPatternMove(const core::Pattern &P, core::Value &&V);
  /// Checks two footprints for a conflicting (same-location, >=1 write)
  /// pair; returns the UB if found. OnlyNegLeft restricts the left side to
  /// negative-polarity actions (let weak).
  std::optional<mem::UndefinedBehaviour>
  conflict(const Footprint &A, const Footprint &B, bool OnlyNegLeft) const;

  /// Extracts a pointer from a (possibly loaded) value.
  std::optional<mem::PointerValue> asPointer(const core::Value &V) const;
  std::optional<mem::IntegerValue> asInteger(const core::Value &V) const;

  bool budget() {
    if (++Steps > Limits.MaxSteps)
      return false;
    if ((Steps & 0x1FFF) == 0 && Limits.deadlinePassed()) {
      DeadlineHit = true;
      return false;
    }
    return true;
  }
  bool DeadlineHit = false;
};

} // namespace cerb::exec

#endif // CERB_EXEC_EVALUATOR_H
