//===-- exec/Evaluator.cpp ------------------------------------------------===//

#include "exec/Evaluator.h"

#include "support/Format.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cassert>

using namespace cerb;
using namespace cerb::exec;
using namespace cerb::core;
using ail::CType;
using ail::Symbol;

std::string_view cerb::exec::outcomeKindName(OutcomeKind K) {
  switch (K) {
  case OutcomeKind::Exit: return "exit";
  case OutcomeKind::Undef: return "undef";
  case OutcomeKind::Abort: return "abort";
  case OutcomeKind::AssertFail: return "assert-fail";
  case OutcomeKind::Error: return "error";
  case OutcomeKind::StepLimit: return "step-limit";
  case OutcomeKind::Timeout: return "timed-out";
  }
  return "?";
}

std::string Outcome::str() const {
  switch (Kind) {
  case OutcomeKind::Exit:
    return fmt("exit({0}) stdout=\"{1}\"", ExitCode, Stdout);
  case OutcomeKind::Undef:
    return fmt("undef[{0}] stdout=\"{1}\"", mem::ubName(UB.Kind), Stdout);
  case OutcomeKind::Abort:
    return fmt("abort stdout=\"{0}\"", Stdout);
  case OutcomeKind::AssertFail:
    return fmt("assert-fail({0}) stdout=\"{1}\"", Message, Stdout);
  case OutcomeKind::Error:
    return fmt("error({0})", Message);
  case OutcomeKind::StepLimit:
    return "step-limit";
  case OutcomeKind::Timeout:
    return "timed-out";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Construction / top level
//===----------------------------------------------------------------------===//

Evaluator::Evaluator(const CoreProgram &Prog, Scheduler &Sched,
                     mem::MemoryPolicy Policy, ExecLimits Limits)
    : Prog(Prog), Env(Prog.Tags), Sched(Sched),
      Mem(Env, Sched, std::move(Policy)), Limits(Limits),
      UseSlots(Prog.Lowered), Arena(EvalArena::threadLocal()) {
  if (UseSlots) {
    Slots = Arena.takeValues();
    Slots.resize(Prog.NumSlots);
    SlotBound = Arena.takeBytes();
    SlotBound.resize(Prog.NumSlots, 0);
    SlotStamp = Arena.takeStamps();
    SlotStamp.resize(Prog.NumSlots, 0);
  }
}

Evaluator::~Evaluator() {
  // Retire the slot-frame buffers to the thread's pool: the exhaustive
  // explorer builds one Evaluator per path, and these are its largest
  // fixed-shape allocations.
  Arena.give(std::move(Slots));
  Arena.give(std::move(SlotBound));
  Arena.give(std::move(SlotStamp));
}

Outcome Evaluator::run() {
  static trace::Counter CntRuns("exec.eval_runs");
  CntRuns.add();
  trace::Span S("eval.run", "exec");
  Outcome O = runImpl();
  if (S.active()) {
    S.arg("steps", Steps);
    S.detail(std::string(outcomeKindName(O.Kind)));
  }
  return O;
}

Outcome Evaluator::runImpl() {
  Outcome O;

  // Static storage: plan the layout, create every object, bind its symbol.
  std::vector<std::pair<CType, std::string>> Layout;
  for (const CoreGlobal &G : Prog.Globals)
    Layout.emplace_back(G.Ty, Prog.Syms.nameOf(G.Name));
  Mem.beginStaticLayout(Layout);
  for (const CoreGlobal &G : Prog.Globals) {
    mem::PointerValue P =
        Mem.allocateObject(G.Ty, Prog.Syms.nameOf(G.Name), /*Static=*/true);
    if (UseSlots) {
      Slots[G.Slot] = Value::pointer(P);
      SlotBound[G.Slot] = 1;
    } else {
      Bindings[G.Name.Id] = Value::pointer(P);
    }
  }

  auto Finish = [&](Res R) {
    O.Stdout = Out;
    switch (R.K) {
    case Res::Val:
    case Res::RetSig: {
      O.Kind = OutcomeKind::Exit;
      auto IV = asInteger(R.V);
      O.ExitCode = IV ? static_cast<int>(IV->V) : 0;
      return O;
    }
    case Res::UndefSig:
      O.Kind = OutcomeKind::Undef;
      O.UB = R.UB;
      return O;
    case Res::ExitSig:
      O.Kind = R.ExitKind;
      O.ExitCode = R.ExitCode;
      O.Message = R.Err;
      return O;
    case Res::RunSig:
      O.Kind = OutcomeKind::Error;
      O.Message = "run signal escaped the program";
      return O;
    case Res::ErrSig:
      O.Kind = R.DeadlineHit    ? OutcomeKind::Timeout
               : R.StepLimitHit ? OutcomeKind::StepLimit
                                : OutcomeKind::Error;
      O.Message = R.Err;
      return O;
    }
    return O;
  };

  // Initialisers, in declaration order.
  for (const CoreGlobal &G : Prog.Globals) {
    if (G.Init) {
      Footprint FP;
      Frames.push_back(Frame{});
      Res R = eval(*G.Init, FP);
      Frames.pop_back();
      if (!R.isValue())
        return Finish(std::move(R));
    }
    if (G.ReadOnly) {
      // String literals become immutable once initialised (6.4.5p7).
      auto P = asPointer(UseSlots ? Slots[G.Slot] : Bindings[G.Name.Id]);
      if (P)
        Mem.markReadOnly(*P);
    }
  }

  if (!Prog.MainProc.isValid()) {
    O.Kind = OutcomeKind::Error;
    O.Message = "program has no main function";
    return O;
  }
  return Finish(callProc(Prog.MainProc, {}, SourceLoc()));
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::optional<mem::PointerValue>
Evaluator::asPointer(const Value &V) const {
  const Value *P = &V;
  if (P->K == ValueKind::Specified)
    P = &P->Elems[0];
  if (P->K == ValueKind::Pointer)
    return P->PV;
  if (P->K == ValueKind::Function)
    return mem::PointerValue::function(P->FuncSym);
  return std::nullopt;
}

std::optional<mem::IntegerValue>
Evaluator::asInteger(const Value &V) const {
  const Value *P = &V;
  if (P->K == ValueKind::Specified)
    P = &P->Elems[0];
  if (P->K == ValueKind::Integer)
    return P->IV;
  if (P->K == ValueKind::True)
    return mem::IntegerValue(1);
  if (P->K == ValueKind::False)
    return mem::IntegerValue(0);
  return std::nullopt;
}

void Evaluator::bind(unsigned Id, Value &&V) {
  if (!UndoStack.empty()) {
    auto &Frame = UndoStack.back();
    if (Frame.find(Id) == Frame.end()) {
      auto It = Bindings.find(Id);
      Frame.emplace(Id, It == Bindings.end()
                            ? std::nullopt
                            : std::optional<Value>(It->second));
    }
  }
  Bindings[Id] = std::move(V);
}

void Evaluator::bindSlot(int Slot, Value &&V) {
  if (!UndoFrames.empty() && SlotStamp[Slot] != FrameEpoch) {
    int ValIdx = -1;
    if (SlotBound[Slot]) {
      ValIdx = static_cast<int>(UndoVals.size());
      UndoVals.push_back(std::move(Slots[Slot]));
    }
    UndoLog.push_back(UndoRec{Slot, ValIdx});
    SlotStamp[Slot] = FrameEpoch;
  }
  Slots[Slot] = std::move(V);
  SlotBound[Slot] = 1;
}

bool Evaluator::matchPattern(const Pattern &P, const Value &V) {
  switch (P.K) {
  case PatKind::Wild:
    return true;
  case PatKind::Sym:
    if (UseSlots)
      bindSlot(P.Slot, Value(V));
    else
      bind(P.S.Id, Value(V));
    return true;
  case PatKind::Tuple: {
    if (V.K != ValueKind::Tuple || V.Elems.size() != P.Subs.size())
      return false;
    for (size_t I = 0; I < P.Subs.size(); ++I)
      if (!matchPattern(P.Subs[I], V.Elems[I]))
        return false;
    return true;
  }
  case PatKind::SpecifiedP:
    return V.K == ValueKind::Specified && matchPattern(P.Subs[0], V.Elems[0]);
  case PatKind::UnspecifiedP:
    return V.K == ValueKind::Unspecified;
  }
  return false;
}

bool Evaluator::matchPatternMove(const Pattern &P, Value &&V) {
  switch (P.K) {
  case PatKind::Wild:
    return true;
  case PatKind::Sym:
    bindSlot(P.Slot, std::move(V));
    return true;
  case PatKind::Tuple: {
    if (V.K != ValueKind::Tuple || V.Elems.size() != P.Subs.size())
      return false;
    for (size_t I = 0; I < P.Subs.size(); ++I)
      if (!matchPatternMove(P.Subs[I], std::move(V.Elems[I])))
        return false;
    return true;
  }
  case PatKind::SpecifiedP:
    return V.K == ValueKind::Specified &&
           matchPatternMove(P.Subs[0], std::move(V.Elems[0]));
  case PatKind::UnspecifiedP:
    return V.K == ValueKind::Unspecified;
  }
  return false;
}

std::optional<mem::UndefinedBehaviour>
Evaluator::conflict(const Footprint &A, const Footprint &B,
                    bool OnlyNegLeft) const {
  for (const ActRec &X : A.Acts) {
    if (OnlyNegLeft && !X.Neg)
      continue;
    for (const ActRec &Y : B.Acts) {
      if (!X.Write && !Y.Write)
        continue;
      if (X.Atomic && Y.Atomic)
        continue; // atomics synchronise (5.1.2.4: no race between atomics)
      if (X.Lo < Y.Hi && Y.Lo < X.Hi) {
        auto U = mem::undef(
            mem::UBKind::UnsequencedRace,
            fmt("conflicting unsequenced accesses to [{0}, {1})",
                std::max(X.Lo, Y.Lo), std::min(X.Hi, Y.Hi)));
        U.Loc = Y.Loc.isValid() ? Y.Loc : X.Loc;
        return U;
      }
    }
  }
  return std::nullopt;
}

// hasEffects lives in core:: so that compile() can pre-warm the per-node
// cache (core::warmDynamicsCaches) before a program is shared across
// evaluator threads.
using core::hasEffects;

bool Evaluator::containsSave(const Expr &E, Symbol Label) const {
  // Lowered programs carry a per-node Save-label bloom: a clear bit
  // refutes the subtree without walking it, turning the per-jump O(tree)
  // routing scans into O(path). A set bit (possible collision) falls
  // through to the exact scan, whose recursion re-checks masks.
  if (UseSlots && !(E.SaveMask & (1ull << (Label.Id & 63))))
    return false;
  if (E.K == ExprKind::Save && E.Sym == Label)
    return true;
  for (const ExprPtr &K : E.Kids)
    if (containsSave(*K, Label))
      return true;
  for (const auto &[Pat, Body] : E.Branches)
    if (containsSave(*Body, Label))
      return true;
  return false;
}

Evaluator::Res Evaluator::applyScopeDiff(
    const std::vector<ScopeObject> &RunScope,
    const std::vector<ScopeObject> &SaveScope) {
  auto In = [](const std::vector<ScopeObject> &Scope, Symbol S) {
    for (const ScopeObject &O : Scope)
      if (O.Obj == S)
        return true;
    return false;
  };
  // Kill objects live at the run point but not at the save point.
  for (const ScopeObject &O : RunScope) {
    if (In(SaveScope, O.Obj))
      continue;
    const Value *BV = nullptr;
    if (UseSlots) {
      if (O.Slot >= 0 && SlotBound[O.Slot])
        BV = &Slots[O.Slot];
    } else {
      auto It = Bindings.find(O.Obj.Id);
      if (It != Bindings.end())
        BV = &It->second;
    }
    if (!BV)
      continue; // the binding never materialised on this path
    auto P = asPointer(*BV);
    if (!P || !P->Prov.isAlloc())
      continue;
    if (Mem.allocations()[P->Prov.AllocId].Alive)
      if (auto R = Mem.killObject(*P); !R)
        return Res::undef(R.takeUB());
  }
  // Create objects live at the save point but not at the run point; their
  // lifetimes start at the jump, uninitialised (§5.8, C11 6.2.4p6).
  for (const ScopeObject &O : SaveScope) {
    if (In(RunScope, O.Obj))
      continue;
    mem::PointerValue P =
        Mem.allocateObject(O.Ty, Prog.Syms.nameOf(O.Obj), /*Static=*/false);
    if (!Frames.empty())
      Frames.back().Created.push_back(P);
    if (UseSlots)
      bindSlot(O.Slot, Value::pointer(P));
    else
      bind(O.Obj.Id, Value::pointer(P));
  }
  return Res::value(Value::unit());
}

//===----------------------------------------------------------------------===//
// Main dispatch
//===----------------------------------------------------------------------===//

Evaluator::Res Evaluator::eval(const Expr &E, Footprint &FP) {
  // Lowering-proved effect-free subtree: run the Res-free interpreter.
  // A null return (operand-kind surprise) falls through to the general
  // switch, which re-evaluates — harmless, the subtree has no effects.
  if (UseSlots && E.ValueOnly) {
    Value Tmp;
    const Value *P = evalPure(E, Tmp);
    if (P == &Tmp)
      return Res::value(std::move(Tmp));
    if (P)
      return Res::value(*P);
  }

  if (!budget()) {
    Res R = Res::error(DeadlineHit ? "wall-clock deadline exceeded"
                                   : "step limit exceeded");
    R.StepLimitHit = !DeadlineHit;
    R.DeadlineHit = DeadlineHit;
    return R;
  }

  switch (E.K) {
  case ExprKind::Sym: {
    if (UseSlots) {
      int S = E.Slot;
      if (S < 0 || !SlotBound[S])
        return Res::error(fmt("unbound Core identifier '{0}'",
                              Prog.Syms.nameOf(E.Sym)));
      return Res::value(Slots[S]);
    }
    auto It = Bindings.find(E.Sym.Id);
    if (It == Bindings.end())
      return Res::error(fmt("unbound Core identifier '{0}'",
                            Prog.Syms.nameOf(E.Sym)));
    return Res::value(It->second);
  }
  case ExprKind::Val:
    if (E.PoolIdx >= 0)
      return Res::value(Prog.ConstPool[E.PoolIdx]);
    return Res::value(E.V);
  case ExprKind::ImplConst:
    return Res::error(fmt("unknown implementation constant '{0}'", E.Str));
  case ExprKind::Undef: {
    auto U = mem::undef(E.UB);
    U.Loc = E.Loc;
    return Res::undef(std::move(U));
  }
  case ExprKind::ErrorE:
    return Res::error(E.Str);
  case ExprKind::Skip:
    return Res::value(Value::unit());

  case ExprKind::Tuple: {
    std::vector<Value> Elems;
    for (const ExprPtr &K : E.Kids) {
      Res R = eval(*K, FP);
      if (!R.isValue())
        return R;
      Elems.push_back(std::move(R.V));
    }
    return Res::value(Value::tuple(std::move(Elems)));
  }
  case ExprKind::SpecifiedE: {
    Res R = eval(*E.Kids[0], FP);
    if (!R.isValue())
      return R;
    return Res::value(Value::specified(std::move(R.V)));
  }
  case ExprKind::UnspecifiedE:
    return Res::value(Value::unspecified(E.Cty));

  case ExprKind::Case:
  case ExprKind::ECase: {
    // The scrutinee is usually a slot read or pure boolean after
    // lowering: read it in place, no Res.
    Value STmp;
    const Value *SO =
        UseSlots && E.Kids[0]->ValueOnly ? evalPure(*E.Kids[0], STmp) : nullptr;
    Res S;
    if (!SO) {
      S = eval(*E.Kids[0], FP);
      if (!S.isValue())
        return S;
      SO = &S.V;
    }
    for (const auto &[Pat, Body] : E.Branches)
      if (matchPattern(Pat, *SO)) {
        Res R = eval(*Body, FP);
        // Forward/backward jumps across case branches.
        if (R.K == Res::RunSig)
          for (const auto &[Pat2, Body2] : E.Branches)
            if (Body2.get() != Body.get() &&
                containsSave(*Body2, R.RunLabel))
              return evalJump(*Body2, R.RunLabel, R.RunScope, FP);
        return R;
      }
    return Res::error("no matching Core case branch");
  }

  case ExprKind::Not: {
    Res R = eval(*E.Kids[0], FP);
    if (!R.isValue())
      return R;
    if (R.V.K != ValueKind::True && R.V.K != ValueKind::False)
      return Res::error("not() on a non-boolean");
    return Res::value(Value::boolean(R.V.K == ValueKind::False));
  }

  case ExprKind::Binop: {
    Res A = eval(*E.Kids[0], FP);
    if (!A.isValue())
      return A;
    Res B = eval(*E.Kids[1], FP);
    if (!B.isValue())
      return B;
    if (E.BOp == CoreBinop::And || E.BOp == CoreBinop::Or) {
      bool BA = A.V.isTrue(), BB = B.V.isTrue();
      return Res::value(
          Value::boolean(E.BOp == CoreBinop::And ? (BA && BB) : (BA || BB)));
    }
    auto IA = asInteger(A.V), IB = asInteger(B.V);
    if (!IA || !IB)
      return Res::error("Core binop on non-integer values");
    Int128 X = IA->V, Y = IB->V;
    switch (E.BOp) {
    case CoreBinop::Add:
      return Res::value(Value::integer(Int128(UInt128(X) + UInt128(Y))));
    case CoreBinop::Sub:
      return Res::value(Value::integer(Int128(UInt128(X) - UInt128(Y))));
    case CoreBinop::Mul:
      // Wrapping 128-bit multiply: C-level width reduction (conv_int /
      // rem_t) follows, and mod-2^128 is compatible with any mod-2^w.
      return Res::value(Value::integer(Int128(UInt128(X) * UInt128(Y))));
    case CoreBinop::Div:
      if (Y == 0)
        return Res::error("Core division by zero (missing undef guard)");
      return Res::value(Value::integer(X / Y));
    case CoreBinop::RemT:
      if (Y == 0)
        return Res::error("Core rem_t by zero (missing undef guard)");
      return Res::value(Value::integer(X % Y));
    case CoreBinop::Exp: {
      if (Y < 0 || Y > 127)
        return Res::error("Core exponent out of range");
      UInt128 R = 1;
      for (Int128 I = 0; I < Y; ++I)
        R *= 2; // only 2^k is generated by the elaboration
      if (X != 2)
        return Res::error("Core ^ supports base 2 only");
      return Res::value(Value::integer(Int128(R)));
    }
    case CoreBinop::Eq:
      return Res::value(Value::boolean(X == Y));
    case CoreBinop::Lt:
      return Res::value(Value::boolean(X < Y));
    case CoreBinop::Le:
      return Res::value(Value::boolean(X <= Y));
    case CoreBinop::Gt:
      return Res::value(Value::boolean(X > Y));
    case CoreBinop::Ge:
      return Res::value(Value::boolean(X >= Y));
    default:
      return Res::error("bad Core binop");
    }
  }

  case ExprKind::ConvInt: {
    Res R = eval(*E.Kids[0], FP);
    if (!R.isValue())
      return R;
    auto IV = asInteger(R.V);
    if (!IV)
      return Res::error("conv_int on a non-integer");
    mem::IntegerValue OutV(Env.convert(E.Cty.intKind(), IV->V), IV->Prov);
    if (IV->Cap && Env.widthOf(E.Cty.intKind()) == 64)
      OutV.Cap = IV->Cap;
    return Res::value(Value::integer(OutV));
  }

  case ExprKind::FinishArith: {
    Res A = eval(*E.Kids[0], FP);
    if (!A.isValue())
      return A;
    Res B = eval(*E.Kids[1], FP);
    if (!B.isValue())
      return B;
    Res N = eval(*E.Kids[2], FP);
    if (!N.isValue())
      return N;
    auto IA = asInteger(A.V), IB = asInteger(B.V), IN = asInteger(N.V);
    if (!IA || !IB || !IN)
      return Res::error("finish_arith on non-integers");
    return Res::value(
        Value::integer(Mem.finishArith(E.AOp, *IA, *IB, IN->V, E.Cty)));
  }

  case ExprKind::IsInteger:
  case ExprKind::IsSigned:
  case ExprKind::IsUnsigned:
  case ExprKind::IsScalar: {
    Res R = eval(*E.Kids[0], FP);
    if (!R.isValue())
      return R;
    if (R.V.K != ValueKind::Ctype)
      return Res::error("ctype test on a non-ctype value");
    const CType &T = R.V.Cty;
    bool B = false;
    if (E.K == ExprKind::IsInteger)
      B = T.isInteger();
    else if (E.K == ExprKind::IsSigned)
      B = T.isSigned();
    else if (E.K == ExprKind::IsUnsigned)
      B = T.isUnsigned();
    else
      B = T.isScalar();
    return Res::value(Value::boolean(B));
  }

  case ExprKind::PureCall:
    return evalPureCall(E, FP);

  case ExprKind::ArrayShiftE: {
    Res P = eval(*E.Kids[0], FP);
    if (!P.isValue())
      return P;
    Res I = eval(*E.Kids[1], FP);
    if (!I.isValue())
      return I;
    auto PV = asPointer(P.V);
    auto IV = asInteger(I.V);
    if (!PV || !IV)
      return Res::error("array_shift on bad operands");
    auto R = Mem.arrayShift(*PV, E.Cty, IV->V);
    if (!R) {
      auto U = R.takeUB();
      U.Loc = E.Loc;
      return Res::undef(std::move(U));
    }
    if (R->Prov.isAlloc()) {
      const mem::Allocation &A = Mem.allocations()[R->Prov.AllocId];
      if (R->Addr < A.Base || R->Addr > A.Base + A.Size)
        ++Events.OutOfBoundsTransient;
    }
    return Res::value(Value::pointer(*R));
  }
  case ExprKind::MemberShiftE: {
    Res P = eval(*E.Kids[0], FP);
    if (!P.isValue())
      return P;
    auto PV = asPointer(P.V);
    if (!PV)
      return Res::error("member_shift on a non-pointer");
    return Res::value(
        Value::pointer(Mem.memberShift(*PV, E.Tag, E.MemberIdx)));
  }

  case ExprKind::PureLet:
  case ExprKind::ELet:
  case ExprKind::LetWeak:
  case ExprKind::LetStrong:
    return evalLet(E, FP);

  case ExprKind::PureIf:
  case ExprKind::EIf: {
    Res C = eval(*E.Kids[0], FP);
    if (!C.isValue())
      return C;
    if (C.V.K != ValueKind::True && C.V.K != ValueKind::False)
      return Res::error("if on a non-boolean");
    size_t Taken = C.V.isTrue() ? 1 : 2;
    Res R = eval(*E.Kids[Taken], FP);
    if (R.K == Res::RunSig) {
      size_t Other = Taken == 1 ? 2 : 1;
      if (containsSave(*E.Kids[Other], R.RunLabel))
        return evalJump(*E.Kids[Other], R.RunLabel, R.RunScope, FP);
    }
    return R;
  }

  case ExprKind::PtrOp:
    return evalPtrOp(E, FP);
  case ExprKind::Action:
    return evalAction(E, FP);

  case ExprKind::LetAtomic: {
    // Evaluate the first action, bind, evaluate the second; the value is
    // the first action's (the loaded old value for postfix ++/--).
    Res A = eval(*E.Kids[0], FP);
    if (!A.isValue())
      return A;
    if (!matchPattern(E.Pat, A.V))
      return Res::error("let atomic pattern mismatch");
    Res B = eval(*E.Kids[1], FP);
    if (!B.isValue())
      return B;
    return A;
  }

  case ExprKind::Unseq:
    return evalUnseq(E, FP);

  case ExprKind::Indet:
  case ExprKind::Bound:
    // Operationally transparent: indeterminate sequencing is realised by
    // the scheduler's choice of unseq evaluation order (see DESIGN.md).
    return eval(*E.Kids[0], FP);

  case ExprKind::Nd: {
    unsigned Pick = Sched.choose(static_cast<unsigned>(E.Kids.size()), "nd");
    return eval(*E.Kids[Pick], FP);
  }

  case ExprKind::ProcCall: {
    std::vector<Value> Args = Arena.takeValues();
    for (const ExprPtr &K : E.Kids) {
      // Arguments are overwhelmingly slot reads after lowering: copy
      // them out of the environment directly, skipping the Res plumbing.
      if (UseSlots && K->ValueOnly) {
        Value Tmp;
        if (const Value *P = evalPure(*K, Tmp)) {
          Args.push_back(P == &Tmp ? std::move(Tmp) : Value(*P));
          continue;
        }
      }
      Res R = eval(*K, FP);
      if (!R.isValue())
        return R;
      Args.push_back(std::move(R.V));
    }
    return callProc(E.Sym, std::move(Args), E.Loc);
  }
  case ExprKind::CallPtr: {
    Res F = eval(*E.Kids[0], FP);
    if (!F.isValue())
      return F;
    auto PV = asPointer(F.V);
    if (!PV || !PV->isFunction()) {
      auto U = mem::undef(mem::UBKind::AccessNull,
                          "call through a non-function pointer value");
      U.Loc = E.Loc;
      return Res::undef(std::move(U));
    }
    std::vector<Value> Args = Arena.takeValues();
    for (size_t I = 1; I < E.Kids.size(); ++I) {
      Res R = eval(*E.Kids[I], FP);
      if (!R.isValue())
        return R;
      Args.push_back(std::move(R.V));
    }
    return callProc(Symbol{*PV->FuncSym}, std::move(Args), E.Loc);
  }

  case ExprKind::Ret: {
    Res R = eval(*E.Kids[0], FP);
    if (!R.isValue())
      return R;
    R.K = Res::RetSig;
    return R;
  }

  case ExprKind::Save:
    return evalSaveBody(E, FP, /*ApplyDiffFirst=*/false, nullptr);

  case ExprKind::Run: {
    Res R;
    R.K = Res::RunSig;
    R.RunLabel = E.Sym;
    R.RunScope = E.Scope;
    return R;
  }

  case ExprKind::Par:
    return evalPar(E, FP);
  case ExprKind::Wait: {
    Res R = eval(*E.Kids[0], FP);
    if (!R.isValue())
      return R;
    return Res::value(Value::unit()); // par joins implicitly
  }
  }
  return Res::error("unhandled Core expression kind");
}

//===----------------------------------------------------------------------===//
// Sequencing
//===----------------------------------------------------------------------===//

Evaluator::Res Evaluator::evalLet(const Expr &E, Footprint &FP) {
  bool Weak = E.K == ExprKind::LetWeak;
  // SeqPoint marks a statement boundary: the accumulated footprints can
  // never take part in any unsequenced-race check above, so they are kept
  // local and discarded.
  bool Discard = E.SeqPoint;
  Footprint Local1, Local2;
  Footprint *T1 = (Discard || Weak) ? &Local1 : &FP;
  Footprint *T2 = (Discard || Weak) ? &Local2 : &FP;

  // Fast path for the dominant shape lowering produces: `let <sym> =
  // <ValueOnly expr> in k`. The bound value comes straight out of the
  // pure interpreter into the slot — no Res round-trip, no signal or
  // jump handling (a ValueOnly subtree contains no Save and performs no
  // actions, so the weak-let race check is vacuous and Local1 stays
  // empty). A nullptr bail falls through to the general path, which is
  // safe to re-run because the subtree is effect-free.
  if (UseSlots && E.Pat.K == PatKind::Sym && E.Kids[0]->ValueOnly) {
    Value Tmp;
    if (const Value *P = evalPure(*E.Kids[0], Tmp)) {
      bindSlot(E.Pat.Slot, P == &Tmp ? std::move(Tmp) : Value(*P));
      Res R2 = eval(*E.Kids[1], *T2);
      if (Weak && !Discard)
        FP.merge(std::move(Local2));
      return R2;
    }
  }

  Res R1 = eval(*E.Kids[0], *T1);
  for (;;) {
    if (!R1.isValue()) {
      if (Weak && !Discard)
        FP.merge(std::move(Local1));
      if (R1.K == Res::RunSig && containsSave(*E.Kids[1], R1.RunLabel)) {
        // Forward jump into the continuation (the pattern stays unbound;
        // the elaboration never places labels under value-carrying
        // bindings that are read after the label).
        Footprint JFP;
        return evalJump(*E.Kids[1], R1.RunLabel, R1.RunScope,
                        Discard ? JFP : FP);
      }
      return R1;
    }
    // The slot path consumes R1.V: the bound value is moved, not
    // deep-copied (R1 is only ever overwritten below).
    if (UseSlots ? !matchPatternMove(E.Pat, std::move(R1.V))
                 : !matchPattern(E.Pat, R1.V))
      return Res::error("let pattern mismatch");

    Local2.Acts.clear();
    Res R2 = eval(*E.Kids[1], *T2);

    if (R2.K == Res::RunSig && containsSave(*E.Kids[0], R2.RunLabel)) {
      // Backward jump into the (already completed) first part.
      R1 = evalJump(*E.Kids[0], R2.RunLabel, R2.RunScope, *T1);
      continue;
    }

    if (Weak && !Discard) {
      // §5.6: only e1's *positive* actions are sequenced before e2; a
      // conflict between e1's negative actions and e2 is an unsequenced
      // race.
      if (auto U = conflict(Local1, Local2, /*OnlyNegLeft=*/true))
        return Res::undef(std::move(*U));
      FP.merge(std::move(Local1));
      FP.merge(std::move(Local2));
    }
    return R2;
  }
}

Evaluator::Res Evaluator::evalUnseq(const Expr &E, Footprint &FP) {
  // Unseq nodes are overwhelmingly small (the operands of one C
  // operator), and this is the hottest allocation site in evaluation:
  // small arities run entirely in stack scratch, the heap path exists
  // only for unusually wide nodes.
  size_t N = E.Kids.size();
  constexpr size_t StkN = 4;
  Value ValStk[StkN];
  Footprint FPStk[StkN];
  size_t RemStk[StkN];
  std::vector<Value> ValHeap;
  std::vector<Footprint> FPHeap;
  std::vector<size_t> RemHeap;
  Value *Values = ValStk;
  Footprint *FPs = FPStk;
  size_t *Remaining = RemStk;
  if (N > StkN) {
    ValHeap.resize(N);
    FPHeap.resize(N);
    RemHeap.resize(N);
    Values = ValHeap.data();
    FPs = FPHeap.data();
    Remaining = RemHeap.data();
  }
  size_t NRem = 0;

  // Effect-free branches evaluate in syntactic order: their order is
  // unobservable, so exploring it would only multiply identical paths.
  for (size_t I = 0; I < N; ++I) {
    if (hasEffects(*E.Kids[I])) {
      Remaining[NRem++] = I;
      continue;
    }
    Res R = eval(*E.Kids[I], FPs[I]);
    if (!R.isValue()) {
      for (size_t J = 0; J < N; ++J)
        FP.merge(std::move(FPs[J]));
      return R;
    }
    Values[I] = std::move(R.V);
  }

  // The scheduler picks the branch order among the effectful ones;
  // action-granularity interleaving is unnecessary for observable
  // outcomes because cross-branch conflicts are unsequenced races (UB) —
  // see DESIGN.md.
  while (NRem > 0) {
    unsigned PickIdx =
        NRem == 1 ? 0
                  : Sched.choose(static_cast<unsigned>(NRem), "unseq-order");
    size_t I = Remaining[PickIdx];
    // Close the gap in place (order must be preserved: the scheduler's
    // choice points enumerate identically to the erase()-based version).
    for (size_t J = PickIdx; J + 1 < NRem; ++J)
      Remaining[J] = Remaining[J + 1];
    --NRem;
    Res R = eval(*E.Kids[I], FPs[I]);
    if (!R.isValue()) {
      for (size_t J = 0; J < N; ++J)
        FP.merge(std::move(FPs[J]));
      return R;
    }
    Values[I] = std::move(R.V);
  }

  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (auto U = conflict(FPs[I], FPs[J], /*OnlyNegLeft=*/false))
        return Res::undef(std::move(*U));
  for (size_t I = 0; I < N; ++I)
    FP.merge(std::move(FPs[I]));

  if (N == 1)
    return Res::value(std::move(Values[0]));
  if (N > StkN)
    return Res::value(Value::tuple(std::move(ValHeap)));
  std::vector<Value> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(std::move(Values[I]));
  return Res::value(Value::tuple(std::move(Out)));
}

Evaluator::Res Evaluator::evalPar(const Expr &E, Footprint &FP) {
  // Restricted concurrency (§5.2: threads only with a more restricted
  // memory object model): branches run in a scheduler-chosen order; any
  // cross-thread conflicting non-atomic accesses are a data race (UB).
  size_t N = E.Kids.size();
  std::vector<Value> Values(N);
  std::vector<Footprint> FPs(N);
  std::vector<size_t> Remaining;
  for (size_t I = 0; I < N; ++I)
    Remaining.push_back(I);
  while (!Remaining.empty()) {
    unsigned PickIdx =
        Remaining.size() == 1
            ? 0
            : Sched.choose(static_cast<unsigned>(Remaining.size()), "par");
    size_t I = Remaining[PickIdx];
    Remaining.erase(Remaining.begin() + PickIdx);
    Res R = eval(*E.Kids[I], FPs[I]);
    if (!R.isValue())
      return R;
    Values[I] = std::move(R.V);
  }
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (auto U = conflict(FPs[I], FPs[J], false)) {
        U->Kind = mem::UBKind::DataRace;
        return Res::undef(std::move(*U));
      }
  for (size_t I = 0; I < N; ++I)
    FP.merge(std::move(FPs[I]));
  return Res::value(Value::tuple(std::move(Values)));
}

//===----------------------------------------------------------------------===//
// save / run (§5.8)
//===----------------------------------------------------------------------===//

Evaluator::Res Evaluator::evalSaveBody(
    const Expr &Save, Footprint &FP, bool ApplyDiffFirst,
    const std::vector<ScopeObject> *RunScope) {
  if (ApplyDiffFirst) {
    Res D = applyScopeDiff(*RunScope, Save.Scope);
    if (!D.isValue())
      return D;
  }
  for (;;) {
    Res R = eval(*Save.Kids[0], FP);
    if (R.K == Res::RunSig && R.RunLabel == Save.Sym) {
      Res D = applyScopeDiff(R.RunScope, Save.Scope);
      if (!D.isValue())
        return D;
      continue; // re-enter the save body (loops)
    }
    if (R.K == Res::RunSig && containsSave(*Save.Kids[0], R.RunLabel))
      return evalJump(*Save.Kids[0], R.RunLabel, R.RunScope, FP);
    return R;
  }
}

Evaluator::Res Evaluator::evalJump(const Expr &E, Symbol Label,
                                   const std::vector<ScopeObject> &RunScope,
                                   Footprint &FP) {
  if (!budget()) {
    Res R = Res::error(DeadlineHit ? "wall-clock deadline exceeded"
                                   : "step limit exceeded");
    R.StepLimitHit = !DeadlineHit;
    R.DeadlineHit = DeadlineHit;
    return R;
  }
  switch (E.K) {
  case ExprKind::Save:
    if (E.Sym == Label)
      return evalSaveBody(E, FP, /*ApplyDiffFirst=*/true, &RunScope);
    // The target is nested inside another save's body.
    for (;;) {
      Res R = evalJump(*E.Kids[0], Label, RunScope, FP);
      if (R.K == Res::RunSig && R.RunLabel == E.Sym) {
        Res D = applyScopeDiff(R.RunScope, E.Scope);
        if (!D.isValue())
          return D;
        // Re-enter this save normally.
        return evalSaveBody(E, FP, false, nullptr);
      }
      return R;
    }
  case ExprKind::PureLet:
  case ExprKind::ELet:
  case ExprKind::LetWeak:
  case ExprKind::LetStrong: {
    if (containsSave(*E.Kids[0], Label)) {
      Res R1 = evalJump(*E.Kids[0], Label, RunScope, FP);
      if (!R1.isValue()) {
        if (R1.K == Res::RunSig && containsSave(*E.Kids[1], R1.RunLabel))
          return evalJump(*E.Kids[1], R1.RunLabel, R1.RunScope, FP);
        return R1;
      }
      if (UseSlots ? !matchPatternMove(E.Pat, std::move(R1.V))
                   : !matchPattern(E.Pat, R1.V))
        return Res::error("let pattern mismatch after jump");
      Res R2 = eval(*E.Kids[1], FP);
      if (R2.K == Res::RunSig && containsSave(*E.Kids[0], R2.RunLabel))
        return evalJump(*E.Kids[0], R2.RunLabel, R2.RunScope, FP);
      return R2;
    }
    // Skip the binding entirely (the label lies in the continuation).
    return evalJump(*E.Kids[1], Label, RunScope, FP);
  }
  case ExprKind::PureIf:
  case ExprKind::EIf: {
    for (size_t I : {size_t(1), size_t(2)})
      if (containsSave(*E.Kids[I], Label)) {
        Res R = evalJump(*E.Kids[I], Label, RunScope, FP);
        if (R.K == Res::RunSig) {
          size_t Other = I == 1 ? 2 : 1;
          if (containsSave(*E.Kids[Other], R.RunLabel))
            return evalJump(*E.Kids[Other], R.RunLabel, R.RunScope, FP);
        }
        return R;
      }
    return Res::error("jump target vanished in if");
  }
  case ExprKind::Case:
  case ExprKind::ECase: {
    for (const auto &[Pat, Body] : E.Branches)
      if (containsSave(*Body, Label))
        return evalJump(*Body, Label, RunScope, FP);
    return Res::error("jump target vanished in case");
  }
  default:
    return Res::error("jump routed through an unexpected Core construct");
  }
}

//===----------------------------------------------------------------------===//
// Actions and pointer operations
//===----------------------------------------------------------------------===//

Evaluator::Res Evaluator::evalAction(const Expr &E, Footprint &FP) {
  switch (E.Act) {
  case ActionKind::Create: {
    mem::PointerValue P = Mem.allocateObject(E.Cty, E.Str, /*Static=*/false);
    if (!Frames.empty())
      Frames.back().Created.push_back(P);
    return Res::value(Value::pointer(P));
  }
  case ActionKind::Alloc: {
    Res S = eval(*E.Kids[0], FP);
    if (!S.isValue())
      return S;
    auto IV = asInteger(S.V);
    if (!IV)
      return Res::error("alloc with non-integer size");
    mem::PointerValue P =
        Mem.allocateRegion(static_cast<uint64_t>(IV->V), 16);
    return Res::value(Value::pointer(P));
  }
  case ActionKind::Kill: {
    Value PTmp;
    const Value *PO =
        UseSlots && E.Kids[0]->ValueOnly ? evalPure(*E.Kids[0], PTmp) : nullptr;
    Res P;
    if (!PO) {
      P = eval(*E.Kids[0], FP);
      if (!P.isValue())
        return P;
      PO = &P.V;
    }
    auto PV = asPointer(*PO);
    if (!PV)
      return Res::error("kill of a non-pointer");
    if (auto R = Mem.killObject(*PV); !R) {
      auto U = R.takeUB();
      U.Loc = E.Loc;
      return Res::undef(std::move(U));
    }
    return Res::value(Value::unit());
  }
  case ActionKind::Free: {
    Res P = eval(*E.Kids[0], FP);
    if (!P.isValue())
      return P;
    auto PV = asPointer(P.V);
    if (!PV)
      return Res::error("free of a non-pointer");
    if (auto R = Mem.freeRegion(*PV); !R) {
      auto U = R.takeUB();
      U.Loc = E.Loc;
      return Res::undef(std::move(U));
    }
    return Res::value(Value::unit());
  }
  case ActionKind::Load: {
    // Operand fast path: lowering usually reduces the address to a slot
    // read, which the pure interpreter serves in place — no Res.
    Value PTmp;
    const Value *PO =
        UseSlots && E.Kids[0]->ValueOnly ? evalPure(*E.Kids[0], PTmp) : nullptr;
    Res P;
    if (!PO) {
      P = eval(*E.Kids[0], FP);
      if (!P.isValue())
        return P;
      PO = &P.V;
    }
    auto PV = asPointer(*PO);
    if (!PV) {
      if (PO->K == ValueKind::Unspecified) {
        auto U = mem::undef(mem::UBKind::IndeterminateValueUse,
                            "load through an unspecified pointer");
        U.Loc = E.Loc;
        return Res::undef(std::move(U));
      }
      return Res::error("load through a non-pointer");
    }
    auto R = Mem.load(E.Cty, *PV);
    if (!R) {
      auto U = R.takeUB();
      U.Loc = E.Loc;
      return Res::undef(std::move(U));
    }
    FP.Acts.push_back(ActRec{PV->Addr, PV->Addr + Env.sizeOf(E.Cty),
                             /*Write=*/false, E.NegPolarity,
                             E.AtomicAccess, E.Loc});
    return Res::value(memToValue(*R));
  }
  case ActionKind::Store: {
    Value PTmp, VTmp;
    const Value *PO =
        UseSlots && E.Kids[0]->ValueOnly ? evalPure(*E.Kids[0], PTmp) : nullptr;
    Res P;
    if (!PO) {
      P = eval(*E.Kids[0], FP);
      if (!P.isValue())
        return P;
      PO = &P.V;
    }
    const Value *VO =
        UseSlots && E.Kids[1]->ValueOnly ? evalPure(*E.Kids[1], VTmp) : nullptr;
    Res V;
    if (!VO) {
      V = eval(*E.Kids[1], FP);
      if (!V.isValue())
        return V;
      VO = &V.V;
    }
    auto PV = asPointer(*PO);
    if (!PV) {
      if (PO->K == ValueKind::Unspecified) {
        auto U = mem::undef(mem::UBKind::IndeterminateValueUse,
                            "store through an unspecified pointer");
        U.Loc = E.Loc;
        return Res::undef(std::move(U));
      }
      return Res::error("store through a non-pointer");
    }
    mem::MemValue MV = valueToMem(E.Cty, *VO);
    if (auto R = Mem.store(E.Cty, *PV, MV); !R) {
      auto U = R.takeUB();
      U.Loc = E.Loc;
      return Res::undef(std::move(U));
    }
    FP.Acts.push_back(ActRec{PV->Addr, PV->Addr + Env.sizeOf(E.Cty),
                             /*Write=*/true, E.NegPolarity,
                             E.AtomicAccess, E.Loc});
    return Res::value(Value::unit());
  }
  }
  return Res::error("bad memory action");
}

Evaluator::Res Evaluator::evalPtrOp(const Expr &E, Footprint &FP) {
  std::vector<Value> Ops;
  for (const ExprPtr &K : E.Kids) {
    Res R = eval(*K, FP);
    if (!R.isValue())
      return R;
    Ops.push_back(std::move(R.V));
  }
  auto UB = [&](mem::UndefinedBehaviour U) {
    U.Loc = E.Loc;
    return Res::undef(std::move(U));
  };
  switch (E.POp) {
  case PtrOpKind::PtrEq:
  case PtrOpKind::PtrNe: {
    auto A = asPointer(Ops[0]), B = asPointer(Ops[1]);
    if (!A || !B)
      return Res::error("pointer equality on non-pointers");
    if (A->Prov.isAlloc() && B->Prov.isAlloc() && !(A->Prov == B->Prov) &&
        A->Addr == B->Addr)
      ++Events.ProvenanceEqConsulted;
    auto R = Mem.ptrEq(*A, *B);
    if (!R)
      return UB(R.takeUB());
    bool Eq = R->V != 0;
    return Res::value(Value::boolean(E.POp == PtrOpKind::PtrEq ? Eq : !Eq));
  }
  case PtrOpKind::PtrLt:
  case PtrOpKind::PtrGt:
  case PtrOpKind::PtrLe:
  case PtrOpKind::PtrGe: {
    auto A = asPointer(Ops[0]), B = asPointer(Ops[1]);
    if (!A || !B)
      return Res::error("pointer comparison on non-pointers");
    unsigned Op = E.POp == PtrOpKind::PtrLt   ? 0
                  : E.POp == PtrOpKind::PtrGt ? 1
                  : E.POp == PtrOpKind::PtrLe ? 2
                                              : 3;
    auto R = Mem.ptrRel(Op, *A, *B);
    if (!R)
      return UB(R.takeUB());
    return Res::value(Value::boolean(R->V != 0));
  }
  case PtrOpKind::PtrDiff: {
    auto A = asPointer(Ops[0]), B = asPointer(Ops[1]);
    if (!A || !B)
      return Res::error("ptrdiff on non-pointers");
    auto R = Mem.ptrDiff(E.Cty, *A, *B);
    if (!R)
      return UB(R.takeUB());
    return Res::value(Value::integer(*R));
  }
  case PtrOpKind::IntFromPtr: {
    auto P = asPointer(Ops[0]);
    if (!P)
      return Res::error("intFromPtr on a non-pointer");
    auto R = Mem.intFromPtr(E.Cty, *P);
    if (!R)
      return UB(R.takeUB());
    return Res::value(Value::integer(*R));
  }
  case PtrOpKind::PtrFromInt: {
    auto I = asInteger(Ops[0]);
    if (!I)
      return Res::error("ptrFromInt on a non-integer");
    auto R = Mem.ptrFromInt(*I);
    if (!R)
      return UB(R.takeUB());
    return Res::value(Value::pointer(*R));
  }
  case PtrOpKind::PtrValidForDeref: {
    auto P = asPointer(Ops[0]);
    if (!P)
      return Res::error("ptrValidForDeref on a non-pointer");
    return Res::value(Value::boolean(Mem.validForDeref(E.Cty, *P)));
  }
  case PtrOpKind::CastPtr: {
    auto P = asPointer(Ops[0]);
    if (!P)
      return Res::error("cast_ptr on a non-pointer");
    return Res::value(Value::pointer(Mem.castPointer(E.Cty, *P)));
  }
  }
  return Res::error("bad pointer operation");
}

//===----------------------------------------------------------------------===//
// Pure builtin functions
//===----------------------------------------------------------------------===//

std::optional<Value> Evaluator::tryPureFn(PureFn F,
                                          const Value *const *Args,
                                          size_t N) {
  // The acceptance conditions here mirror evalPureCall's diagnostics
  // exactly: nullopt if and only if the general path would error.
  switch (F) {
  case PureFn::IsRepresentable: {
    if (N != 2 || Args[0]->K != ValueKind::Ctype)
      return std::nullopt;
    auto IV = asInteger(*Args[1]);
    if (!IV)
      return std::nullopt;
    return Value::boolean(Env.inRange(Args[0]->Cty.intKind(), IV->V));
  }
  case PureFn::ShrArith: {
    auto A = asInteger(*Args[0]), B = asInteger(*Args[1]);
    if (!A || !B)
      return std::nullopt;
    // Arithmetic shift = floor division by 2^b (the impl-defined 6.5.7p5
    // behaviour of every mainstream implementation).
    Int128 Divisor = Int128(1) << static_cast<unsigned>(B->V);
    Int128 Q = A->V / Divisor;
    if (A->V < 0 && A->V % Divisor != 0)
      --Q;
    return Value::integer(Q);
  }
  case PureFn::BwAnd:
  case PureFn::BwOr:
  case PureFn::BwXor: {
    if (N != 3 || Args[0]->K != ValueKind::Ctype)
      return std::nullopt;
    auto A = asInteger(*Args[1]), B = asInteger(*Args[2]);
    if (!A || !B)
      return std::nullopt;
    ail::IntKind K = Args[0]->Cty.intKind();
    unsigned W = Env.widthOf(K);
    UInt128 Mask = W >= 128 ? ~UInt128(0) : (UInt128(1) << W) - 1;
    UInt128 X = static_cast<UInt128>(A->V) & Mask;
    UInt128 Y = static_cast<UInt128>(B->V) & Mask;
    UInt128 R = F == PureFn::BwAnd   ? (X & Y)
                : F == PureFn::BwOr ? (X | Y)
                                     : (X ^ Y);
    return Value::integer(Env.convert(K, static_cast<Int128>(R)));
  }
  case PureFn::BwCompl: {
    if (N != 2 || Args[0]->K != ValueKind::Ctype)
      return std::nullopt;
    auto A = asInteger(*Args[1]);
    if (!A)
      return std::nullopt;
    ail::IntKind K = Args[0]->Cty.intKind();
    unsigned W = Env.widthOf(K);
    UInt128 Mask = W >= 128 ? ~UInt128(0) : (UInt128(1) << W) - 1;
    UInt128 R = (~static_cast<UInt128>(A->V)) & Mask;
    return Value::integer(Env.convert(K, static_cast<Int128>(R)));
  }
  case PureFn::None:
    break;
  }
  return std::nullopt;
}

const Value *Evaluator::evalPure(const Expr &E, Value &Tmp) {
  ++Steps; // keep step accounting close to the general path's
  switch (E.K) {
  case ExprKind::Sym: {
    int S = E.Slot;
    if (S < 0 || !SlotBound[S])
      return nullptr;
    return &Slots[S]; // no copy: the subtree cannot rebind slots
  }
  case ExprKind::Val:
    return E.PoolIdx >= 0 ? &Prog.ConstPool[E.PoolIdx] : &E.V;
  case ExprKind::Skip:
    Tmp = Value::unit();
    return &Tmp;
  case ExprKind::UnspecifiedE:
    Tmp = Value::unspecified(E.Cty);
    return &Tmp;
  case ExprKind::Tuple: {
    std::vector<Value> Elems;
    Elems.reserve(E.Kids.size());
    for (const ExprPtr &K : E.Kids) {
      Value KT;
      const Value *KV = evalPure(*K, KT);
      if (!KV)
        return nullptr;
      Elems.push_back(KV == &KT ? std::move(KT) : *KV);
    }
    Tmp = Value::tuple(std::move(Elems));
    return &Tmp;
  }
  case ExprKind::SpecifiedE: {
    Value KT;
    const Value *KV = evalPure(*E.Kids[0], KT);
    if (!KV)
      return nullptr;
    Tmp = Value::specified(KV == &KT ? std::move(KT) : *KV);
    return &Tmp;
  }
  case ExprKind::Not: {
    Value KT;
    const Value *KV = evalPure(*E.Kids[0], KT);
    if (!KV)
      return nullptr;
    if (KV->K != ValueKind::True && KV->K != ValueKind::False)
      return nullptr;
    Tmp = Value::boolean(KV->K == ValueKind::False);
    return &Tmp;
  }
  case ExprKind::Binop: {
    Value TA, TB;
    const Value *A = evalPure(*E.Kids[0], TA);
    if (!A)
      return nullptr;
    const Value *B = evalPure(*E.Kids[1], TB);
    if (!B)
      return nullptr;
    if (E.BOp == CoreBinop::And || E.BOp == CoreBinop::Or) {
      bool BA = A->isTrue(), BB = B->isTrue();
      Tmp = Value::boolean(E.BOp == CoreBinop::And ? (BA && BB)
                                                   : (BA || BB));
      return &Tmp;
    }
    auto IA = asInteger(*A), IB = asInteger(*B);
    if (!IA || !IB)
      return nullptr;
    Int128 X = IA->V, Y = IB->V;
    switch (E.BOp) {
    case CoreBinop::Add:
      Tmp = Value::integer(Int128(UInt128(X) + UInt128(Y)));
      return &Tmp;
    case CoreBinop::Sub:
      Tmp = Value::integer(Int128(UInt128(X) - UInt128(Y)));
      return &Tmp;
    case CoreBinop::Mul:
      Tmp = Value::integer(Int128(UInt128(X) * UInt128(Y)));
      return &Tmp;
    case CoreBinop::Div:
      if (Y == 0)
        return nullptr;
      Tmp = Value::integer(X / Y);
      return &Tmp;
    case CoreBinop::RemT:
      if (Y == 0)
        return nullptr;
      Tmp = Value::integer(X % Y);
      return &Tmp;
    case CoreBinop::Eq:
      Tmp = Value::boolean(X == Y);
      return &Tmp;
    case CoreBinop::Lt:
      Tmp = Value::boolean(X < Y);
      return &Tmp;
    case CoreBinop::Le:
      Tmp = Value::boolean(X <= Y);
      return &Tmp;
    case CoreBinop::Gt:
      Tmp = Value::boolean(X > Y);
      return &Tmp;
    case CoreBinop::Ge:
      Tmp = Value::boolean(X >= Y);
      return &Tmp;
    default:
      return nullptr; // Exp and oddities: the general path handles them
    }
  }
  case ExprKind::ConvInt: {
    Value KT;
    const Value *KV = evalPure(*E.Kids[0], KT);
    if (!KV)
      return nullptr;
    auto IV = asInteger(*KV);
    if (!IV)
      return nullptr;
    mem::IntegerValue OutV(Env.convert(E.Cty.intKind(), IV->V), IV->Prov);
    if (IV->Cap && Env.widthOf(E.Cty.intKind()) == 64)
      OutV.Cap = IV->Cap;
    Tmp = Value::integer(OutV);
    return &Tmp;
  }
  case ExprKind::FinishArith: {
    Value TA, TB, TN;
    const Value *A = evalPure(*E.Kids[0], TA);
    if (!A)
      return nullptr;
    const Value *B = evalPure(*E.Kids[1], TB);
    if (!B)
      return nullptr;
    const Value *NV = evalPure(*E.Kids[2], TN);
    if (!NV)
      return nullptr;
    auto IA = asInteger(*A), IB = asInteger(*B), IN = asInteger(*NV);
    if (!IA || !IB || !IN)
      return nullptr;
    Tmp = Value::integer(Mem.finishArith(E.AOp, *IA, *IB, IN->V, E.Cty));
    return &Tmp;
  }
  case ExprKind::IsInteger:
  case ExprKind::IsSigned:
  case ExprKind::IsUnsigned:
  case ExprKind::IsScalar: {
    Value KT;
    const Value *KV = evalPure(*E.Kids[0], KT);
    if (!KV)
      return nullptr;
    if (KV->K != ValueKind::Ctype)
      return nullptr;
    const CType &T = KV->Cty;
    bool B = false;
    if (E.K == ExprKind::IsInteger)
      B = T.isInteger();
    else if (E.K == ExprKind::IsSigned)
      B = T.isSigned();
    else if (E.K == ExprKind::IsUnsigned)
      B = T.isUnsigned();
    else
      B = T.isScalar();
    Tmp = Value::boolean(B);
    return &Tmp;
  }
  case ExprKind::PureIf:
  case ExprKind::EIf: {
    // ValueOnly branches contain no Save, so no run-signal routing here.
    Value CT;
    const Value *C = evalPure(*E.Kids[0], CT);
    if (!C)
      return nullptr;
    if (C->K != ValueKind::True && C->K != ValueKind::False)
      return nullptr;
    return evalPure(*E.Kids[C->isTrue() ? 1 : 2], Tmp);
  }
  case ExprKind::MemberShiftE: {
    Value KT;
    const Value *KV = evalPure(*E.Kids[0], KT);
    if (!KV)
      return nullptr;
    auto PV = asPointer(*KV);
    if (!PV)
      return nullptr;
    Tmp = Value::pointer(Mem.memberShift(*PV, E.Tag, E.MemberIdx));
    return &Tmp;
  }
  case ExprKind::PureCall: {
    size_t N = E.Kids.size();
    if (N > 4 || E.Pure == PureFn::None)
      return nullptr; // lowering only marks interned calls, but be safe
    Value ArgT[4];
    const Value *Args[4] = {&ArgT[0], &ArgT[1], &ArgT[2], &ArgT[3]};
    for (size_t I = 0; I < N; ++I) {
      Args[I] = evalPure(*E.Kids[I], ArgT[I]);
      if (!Args[I])
        return nullptr;
    }
    auto R = tryPureFn(E.Pure, Args, N);
    if (!R)
      return nullptr;
    Tmp = std::move(*R);
    return &Tmp;
  }
  default:
    return nullptr; // non-ValueOnly kind: lowering never marks these
  }
}

Evaluator::Res Evaluator::evalPureCall(const Expr &E, Footprint &FP) {
  // Every known pure builtin takes at most three operands, so arguments
  // evaluate into stack storage (no per-call allocation); the heap path
  // only exists to keep unknown over-long calls evaluating their
  // arguments before erroring, exactly as before.
  size_t N = E.Kids.size();
  Value Stk[4];
  std::vector<Value> Heap;
  Value *Args = Stk;
  if (N > 4) {
    Heap.resize(N);
    Args = Heap.data();
  }
  for (size_t I = 0; I < N; ++I) {
    Res R = eval(*E.Kids[I], FP);
    if (!R.isValue())
      return R;
    Args[I] = std::move(R.V);
  }
  // Lowered trees carry the interned target; unlowered ones resolve the
  // name here (same table, so both paths produce identical dispatch).
  PureFn F = E.Pure != PureFn::None ? E.Pure : core::pureFnByName(E.Str);

  const Value *ArgP[4] = {&Args[0], &Args[1], &Args[2], &Args[3]};
  if (auto R = tryPureFn(F, ArgP, N))
    return Res::value(std::move(*R));

  // tryPureFn declined, so one of its (exactly mirrored) acceptance checks
  // failed; replay them to produce the historical diagnostic.
  switch (F) {
  case PureFn::IsRepresentable:
    if (N != 2 || Args[0].K != ValueKind::Ctype)
      return Res::error("is_representable(ctype, int) misuse");
    return Res::error("is_representable on a non-integer");
  case PureFn::ShrArith:
    return Res::error("shr_arith misuse");
  case PureFn::BwAnd:
  case PureFn::BwOr:
  case PureFn::BwXor:
    if (N != 3 || Args[0].K != ValueKind::Ctype)
      return Res::error("bitwise builtin misuse");
    return Res::error("bitwise builtin on non-integers");
  case PureFn::BwCompl:
    if (N != 2 || Args[0].K != ValueKind::Ctype)
      return Res::error("bw_compl misuse");
    return Res::error("bw_compl on a non-integer");
  case PureFn::None:
    break;
  }
  return Res::error(fmt("unknown pure builtin '{0}'", E.Str));
}

//===----------------------------------------------------------------------===//
// Procedure calls and the standard library (see Builtins.cpp for printf)
//===----------------------------------------------------------------------===//

Evaluator::Res Evaluator::callProc(Symbol S, std::vector<Value> Args,
                                   SourceLoc Loc) {
  auto BIt = Prog.Builtins.find(S.Id);
  if (BIt != Prog.Builtins.end())
    {
      Res R = callBuiltin(BIt->second, Args, Loc);
      Arena.give(std::move(Args));
      return R;
    }

  const CoreProc *Proc = Prog.findProc(S);
  if (!Proc)
    return Res::error(fmt("call to undefined function '{0}'",
                          Prog.Syms.nameOf(S)));
  if (Proc->Params.size() != Args.size())
    return Res::error(fmt("arity mismatch calling '{0}'",
                          Prog.Syms.nameOf(S)));
  if (++CallDepth > Limits.MaxCallDepth) {
    --CallDepth;
    return Res::error("call depth limit exceeded (runaway recursion)");
  }

  if (UseSlots) {
    UndoFrames.push_back(
        UndoFrame{UndoLog.size(), UndoVals.size(), ++EpochCounter});
    FrameEpoch = EpochCounter;
    for (size_t I = 0; I < Args.size(); ++I)
      bindSlot(Proc->ParamSlots[I], std::move(Args[I]));
  } else {
    UndoStack.emplace_back();
    for (size_t I = 0; I < Args.size(); ++I)
      bind(Proc->Params[I].first.Id, std::move(Args[I]));
  }

  Frames.push_back(Frame{});
  Footprint FP; // function bodies are indeterminately sequenced w.r.t. the
                // caller's expression: no shared footprint (§5.6)
  Res R = eval(*Proc->Body, FP);
  // End of lifetime for everything this frame created and has not yet
  // freed/killed (§5.7).
  for (const mem::PointerValue &P : Frames.back().Created) {
    if (P.Prov.isAlloc() && Mem.allocations()[P.Prov.AllocId].Alive)
      (void)Mem.killObject(P);
  }
  Frames.pop_back();
  // Restore the caller's bindings. On the slot path the log is replayed
  // in reverse: a slot may carry duplicate records when an inner frame's
  // stamp went stale, and reverse order applies the frame-entry value
  // last (see Evaluator.h SlotStamp).
  if (UseSlots) {
    size_t Base = UndoFrames.back().Base;
    for (size_t I = UndoLog.size(); I > Base; --I) {
      UndoRec &U = UndoLog[I - 1];
      if (U.ValIdx >= 0) {
        Slots[U.Slot] = std::move(UndoVals[U.ValIdx]);
        SlotBound[U.Slot] = 1;
      } else {
        SlotBound[U.Slot] = 0;
      }
    }
    UndoLog.resize(Base);
    UndoVals.resize(UndoFrames.back().ValsBase);
    UndoFrames.pop_back();
    FrameEpoch = UndoFrames.empty() ? 0 : UndoFrames.back().Epoch;
  } else {
    for (auto &[Id, Old] : UndoStack.back()) {
      if (Old)
        Bindings[Id] = std::move(*Old);
      else
        Bindings.erase(Id);
    }
    UndoStack.pop_back();
  }
  --CallDepth;
  Arena.give(std::move(Args)); // retire the argument buffer

  if (R.K == Res::RetSig)
    return Res::value(std::move(R.V));
  if (R.K == Res::RunSig)
    return Res::error(fmt("goto to a label outside function '{0}'",
                          Prog.Syms.nameOf(S)));
  return R; // value (shouldn't happen: bodies end in Ret), or a signal
}
