//===-- exec/Driver.cpp ---------------------------------------------------===//

#include "exec/Driver.h"

#include <set>

using namespace cerb;
using namespace cerb::exec;

Outcome cerb::exec::runOnce(const core::CoreProgram &Prog,
                            const RunOptions &Opts) {
  LeftmostScheduler Sched;
  Evaluator Eval(Prog, Sched, Opts.Policy, Opts.Limits);
  return Eval.run();
}

Outcome cerb::exec::runRandom(const core::CoreProgram &Prog,
                              const RunOptions &Opts, uint64_t Seed) {
  RandomScheduler Sched(Seed);
  Evaluator Eval(Prog, Sched, Opts.Policy, Opts.Limits);
  return Eval.run();
}

ExhaustiveResult cerb::exec::runExhaustive(const core::CoreProgram &Prog,
                                           const RunOptions &Opts) {
  ExhaustiveResult Result;
  std::set<std::string> Seen;
  std::vector<unsigned> Prefix;

  for (;;) {
    TraceScheduler Sched(Prefix);
    Evaluator Eval(Prog, Sched, Opts.Policy, Opts.Limits);
    Outcome O = Eval.run();
    ++Result.PathsExplored;
    bool PathTimedOut = O.Kind == OutcomeKind::Timeout;
    if (Seen.insert(O.str()).second)
      Result.Distinct.push_back(std::move(O));

    // A shared deadline bounds the whole exploration: once it fires, every
    // further path would also instantly time out, so stop here.
    if (PathTimedOut || Opts.Limits.deadlinePassed()) {
      Result.TimedOut = true;
      return Result;
    }

    if (Result.PathsExplored >= Opts.MaxPaths) {
      // Check whether anything is actually left to explore.
      const auto &Trace = Sched.trace();
      const auto &Widths = Sched.widths();
      bool MoreLeft = false;
      for (size_t I = 0; I < Trace.size(); ++I)
        if (Trace[I] + 1 < Widths[I])
          MoreLeft = true;
      Result.Truncated = MoreLeft;
      return Result;
    }

    // DFS backtrack: advance the deepest choice that still has untried
    // alternatives; drop everything after it.
    const auto &Trace = Sched.trace();
    const auto &Widths = Sched.widths();
    bool Advanced = false;
    for (size_t I = Trace.size(); I-- > 0;) {
      if (Trace[I] + 1 < Widths[I]) {
        Prefix.assign(Trace.begin(), Trace.begin() + I);
        Prefix.push_back(Trace[I] + 1);
        Advanced = true;
        break;
      }
    }
    if (!Advanced)
      return Result; // fully explored
  }
}
