//===-- exec/Driver.cpp ---------------------------------------------------===//

#include "exec/Driver.h"

#include "support/StripedHashSet.h"
#include "trace/Trace.h"

#include <algorithm>
#include <atomic>
#include <mutex>

using namespace cerb;
using namespace cerb::exec;

Outcome cerb::exec::runOnce(const core::CoreProgram &Prog,
                            const RunOptions &Opts) {
  LeftmostScheduler Sched;
  Evaluator Eval(Prog, Sched, Opts.Policy, Opts.Limits);
  return Eval.run();
}

Outcome cerb::exec::runRandom(const core::CoreProgram &Prog,
                              const RunOptions &Opts, uint64_t Seed) {
  RandomScheduler Sched(Seed);
  Evaluator Eval(Prog, Sched, Opts.Policy, Opts.Limits);
  return Eval.run();
}

void cerb::exec::canonicalizeDistinct(ExhaustiveResult &R) {
  std::sort(R.Distinct.begin(), R.Distinct.end(),
            [](const Outcome &A, const Outcome &B) { return A.str() < B.str(); });
}

namespace {

/// One exhaustive exploration: shared state for the frontier of
/// decision-vector prefixes and the claimed-path accounting.
///
/// Work-sharing scheme: a claimed prefix P identifies the subtree of all
/// decision vectors extending P. Running P's task replays P and continues
/// leftmost, visiting the subtree's leftmost leaf; at every choice point at
/// depth >= |P| with untried alternatives, each alternative is published as
/// a new (disjoint) subtree prefix. Choice points at depths < |P| were
/// published by the ancestor that first reached them, so every leaf of the
/// full tree is claimed by exactly one task and the task count equals the
/// leaf count — the same number of Evaluator runs the old single-threaded
/// DFS performed, now partitioned across workers.
///
/// Determinism: outcomes are merged through a hash set and finally sorted,
/// so Distinct is order-independent; the path budget is claimed through one
/// atomic reservation counter, so PathsExplored == min(leaves, MaxPaths)
/// and Truncated == (leaves > MaxPaths) for any thread count and any task
/// interleaving.
class Explorer {
public:
  Explorer(const core::CoreProgram &Prog, const RunOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  /// Serial mode: the frontier is a LIFO stack drained by this thread.
  ExhaustiveResult runSerial() {
    spawn({});
    while (!LocalFrontier.empty()) {
      std::vector<unsigned> P = std::move(LocalFrontier.back());
      LocalFrontier.pop_back();
      runPrefix(std::move(P));
      if (Stopped.load(std::memory_order_relaxed))
        break; // budget/deadline: the rest of the frontier stays unexplored
    }
    return finish(/*Workers=*/1);
  }

  /// Pooled mode: subtree tasks go to \p Pool under a private TaskGroup;
  /// the calling thread helps drain the group, so this may itself run
  /// inside a pool task (oracle jobs share the batch pool this way).
  ExhaustiveResult runPooled(ThreadPool &P) {
    Pool = &P;
    spawn({});
    P.wait(Group);
    return finish(P.threadCount());
  }

private:
  void spawn(std::vector<unsigned> Prefix) {
    trace::instant("explore.spawn", "explore");
    uint64_t Size =
        FrontierSize.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t HWM = FrontierHighWater.load(std::memory_order_relaxed);
    while (Size > HWM &&
           !FrontierHighWater.compare_exchange_weak(
               HWM, Size, std::memory_order_relaxed))
      ;
    if (Pool)
      Pool->submit(Group, [this, P = std::move(Prefix)]() mutable {
        runPrefix(std::move(P));
      });
    else
      LocalFrontier.push_back(std::move(Prefix));
  }

  /// Claims and explores one subtree: budget reservation, one replayed
  /// run, outcome merge, sibling publication.
  void runPrefix(std::vector<unsigned> Prefix) {
    FrontierSize.fetch_sub(1, std::memory_order_relaxed);
    if (Stopped.load(std::memory_order_relaxed))
      return; // draining after a stop; subtree intentionally abandoned

    // Atomic path-budget reservation: exactly min(leaves, MaxPaths) tasks
    // acquire a slot, independent of thread count and interleaving.
    uint64_t Slot = Reserved.fetch_add(1);
    if (Slot >= Opts.MaxPaths) {
      // This unexplored subtree proves the budget truncated the space.
      Truncated.store(true);
      Stopped.store(true);
      return;
    }

    // explore.paths counts acquired slots, so for a complete exploration it
    // equals the leaf count for any thread count (the determinism contract
    // above); truncated/deadline runs are outside that contract anyway.
    static trace::Counter CntPaths("explore.paths");
    CntPaths.add();
    trace::Span PathSpan("explore.path", "explore");
    PathSpan.arg("depth", Prefix.size());

    TraceScheduler Sched(std::move(Prefix));
    Evaluator Eval(Prog, Sched, Opts.Policy, Opts.Limits);
    Outcome O = Eval.run();
    ReplayedSteps.fetch_add(Sched.replayedChoices(),
                            std::memory_order_relaxed);

    bool PathTimedOut = O.Kind == OutcomeKind::Timeout;
    std::string Key = O.str();
    if (Seen.insert(hashBytes(Key))) {
      std::lock_guard<std::mutex> L(DistinctM);
      Distinct.push_back(std::move(O));
    }

    // A shared deadline bounds the whole exploration: once it fires, every
    // further path would also instantly time out, so stop here.
    if (PathTimedOut || Opts.Limits.deadlinePassed()) {
      TimedOut.store(true);
      Stopped.store(true);
      return;
    }

    // Publish every untried sibling alternative beyond the claimed prefix
    // as a new subtree. (Beyond the prefix the scheduler picked leftmost,
    // so Trace[I] + 1 is normally 1; within the prefix the siblings were
    // already published by the ancestor that discovered the choice point.)
    const std::vector<unsigned> &Trace = Sched.trace();
    const std::vector<unsigned> &Widths = Sched.widths();
    for (size_t I = Sched.prefixLength(); I < Trace.size(); ++I)
      for (unsigned J = Trace[I] + 1; J < Widths[I]; ++J) {
        std::vector<unsigned> Sub(Trace.begin(), Trace.begin() + I);
        Sub.push_back(J);
        spawn(std::move(Sub));
      }
  }

  ExhaustiveResult finish(unsigned Workers) {
    ExhaustiveResult R;
    R.Distinct = std::move(Distinct);
    canonicalizeDistinct(R);
    R.PathsExplored = std::min(Reserved.load(), Opts.MaxPaths);
    R.Truncated = Truncated.load();
    R.TimedOut = TimedOut.load();
    R.Stats.FrontierHighWater = FrontierHighWater.load();
    R.Stats.ReplayedSteps = ReplayedSteps.load();
    R.Stats.Workers = Workers;
    return R;
  }

  const core::CoreProgram &Prog;
  const RunOptions &Opts;

  ThreadPool *Pool = nullptr;
  ThreadPool::TaskGroup Group;
  std::vector<std::vector<unsigned>> LocalFrontier; ///< serial mode only

  StripedHashSet Seen; ///< 64-bit outcome hashes (dedupe without copies)
  std::mutex DistinctM;
  std::vector<Outcome> Distinct;

  std::atomic<uint64_t> Reserved{0};
  std::atomic<bool> Truncated{false};
  std::atomic<bool> TimedOut{false};
  std::atomic<bool> Stopped{false};
  std::atomic<uint64_t> ReplayedSteps{0};
  std::atomic<uint64_t> FrontierSize{0};
  std::atomic<uint64_t> FrontierHighWater{0};
};

} // namespace

ExhaustiveResult cerb::exec::runExhaustive(const core::CoreProgram &Prog,
                                           const RunOptions &Opts) {
  trace::Span S("explore.exhaustive", "explore");
  Explorer E(Prog, Opts);
  ExhaustiveResult R;
  if (Opts.ExploreJobs <= 1) {
    R = E.runSerial();
  } else {
    ThreadPool Pool(Opts.ExploreJobs);
    R = E.runPooled(Pool);
    R.Stats.Steals = Pool.stealCount();
  }
  S.arg("paths", R.PathsExplored);
  return R;
}

ExhaustiveResult cerb::exec::runExhaustiveOn(const core::CoreProgram &Prog,
                                             const RunOptions &Opts,
                                             ThreadPool &Pool) {
  trace::Span S("explore.exhaustive", "explore");
  Explorer E(Prog, Opts);
  ExhaustiveResult R = E.runPooled(Pool);
  S.arg("paths", R.PathsExplored);
  return R;
}
