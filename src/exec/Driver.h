//===-- exec/Driver.h - Exhaustive and random execution drivers -*- C++ -*-===//
///
/// \file
/// "By selecting an appropriate sequencing monad implementation, we can
/// select whether to perform an exhaustive search for all allowed
/// executions or pseudorandomly explore single execution paths" (§5.1).
/// Here the "monad" is the Scheduler: the exhaustive driver enumerates all
/// decision vectors by DFS over TraceScheduler replays; the random driver
/// seeds a RandomScheduler.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_EXEC_DRIVER_H
#define CERB_EXEC_DRIVER_H

#include "core/Core.h"
#include "exec/Evaluator.h"
#include "exec/Outcome.h"
#include "mem/Memory.h"

namespace cerb::exec {

struct RunOptions {
  mem::MemoryPolicy Policy = mem::MemoryPolicy::defacto();
  ExecLimits Limits;
  uint64_t MaxPaths = 4096; ///< exhaustive-mode path budget
};

/// Runs one execution with the leftmost deterministic schedule.
Outcome runOnce(const core::CoreProgram &Prog, const RunOptions &Opts);

/// Runs one pseudorandom execution path (§5.1 single-path mode).
Outcome runRandom(const core::CoreProgram &Prog, const RunOptions &Opts,
                  uint64_t Seed);

/// Explores all decision vectors (§5.1 exhaustive mode; "it can detect
/// undefined behaviours on any allowed execution path", §5.4).
ExhaustiveResult runExhaustive(const core::CoreProgram &Prog,
                               const RunOptions &Opts);

} // namespace cerb::exec

#endif // CERB_EXEC_DRIVER_H
