//===-- exec/Driver.h - Exhaustive and random execution drivers -*- C++ -*-===//
///
/// \file
/// "By selecting an appropriate sequencing monad implementation, we can
/// select whether to perform an exhaustive search for all allowed
/// executions or pseudorandomly explore single execution paths" (§5.1).
/// Here the "monad" is the Scheduler: the exhaustive driver enumerates all
/// decision vectors by replaying TraceScheduler prefixes; the random driver
/// seeds a RandomScheduler.
///
/// The exhaustive driver is a *parallel frontier explorer*: the decision
/// tree is partitioned into disjoint subtrees identified by decision-vector
/// prefixes. A worker claims a prefix, replays it (continuing leftmost
/// beyond the prefix, which visits the subtree's leftmost leaf), and
/// publishes every newly discovered sibling subtree — one prefix per
/// untried alternative at each choice point beyond the claimed prefix —
/// back onto the frontier. Each leaf is visited exactly once, outcomes are
/// deduplicated by a 64-bit hash in a striped hash set, the path budget is
/// claimed through one atomic reservation counter, and the distinct set is
/// canonically sorted — so the result is thread-count-independent (see
/// ExhaustiveResult's contract and DESIGN.md §"Parallel exhaustive
/// exploration").
///
//===----------------------------------------------------------------------===//
#ifndef CERB_EXEC_DRIVER_H
#define CERB_EXEC_DRIVER_H

#include "core/Core.h"
#include "exec/Evaluator.h"
#include "exec/Outcome.h"
#include "mem/Memory.h"
#include "support/ThreadPool.h"

namespace cerb::exec {

struct RunOptions {
  mem::MemoryPolicy Policy = mem::MemoryPolicy::defacto();
  ExecLimits Limits;
  uint64_t MaxPaths = 4096; ///< exhaustive-mode path budget
  /// Worker threads for exhaustive exploration. 1 = serial in the calling
  /// thread; >1 makes runExhaustive spin up its own pool of that size
  /// (runExhaustiveOn shares an existing pool instead and ignores this).
  unsigned ExploreJobs = 1;
};

/// Runs one execution with the leftmost deterministic schedule.
Outcome runOnce(const core::CoreProgram &Prog, const RunOptions &Opts);

/// Runs one pseudorandom execution path (§5.1 single-path mode).
Outcome runRandom(const core::CoreProgram &Prog, const RunOptions &Opts,
                  uint64_t Seed);

/// Explores all decision vectors (§5.1 exhaustive mode; "it can detect
/// undefined behaviours on any allowed execution path", §5.4). Serial when
/// Opts.ExploreJobs <= 1; otherwise runs on an internal ThreadPool of
/// Opts.ExploreJobs workers.
ExhaustiveResult runExhaustive(const core::CoreProgram &Prog,
                               const RunOptions &Opts);

/// Explores all decision vectors on an existing pool: subtree tasks are
/// submitted to \p Pool under a private TaskGroup and the calling thread
/// helps drain them, so this is safe to call from inside a pool task (the
/// oracle runs exhaustive jobs this way when Budget.ExploreJobs > 1).
ExhaustiveResult runExhaustiveOn(const core::CoreProgram &Prog,
                                 const RunOptions &Opts, ThreadPool &Pool);

/// Re-sorts Distinct into the canonical order (ascending Outcome::str());
/// callers that append outcomes (e.g. the oracle's degraded-mode sampler)
/// use this to restore the ExhaustiveResult contract.
void canonicalizeDistinct(ExhaustiveResult &R);

} // namespace cerb::exec

#endif // CERB_EXEC_DRIVER_H
