//===-- exec/Outcome.h - Execution outcomes ---------------------*- C++ -*-===//
///
/// \file
/// The observable result of one execution path of a C program under the
/// semantics, and the aggregate of an exhaustive exploration ("the set of
/// all allowed behaviours of any small test case", §1 Problem 2).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_EXEC_OUTCOME_H
#define CERB_EXEC_OUTCOME_H

#include "mem/UB.h"

#include <string>
#include <vector>

namespace cerb::exec {

enum class OutcomeKind {
  Exit,       ///< program returned from main / called exit()
  Undef,      ///< an undefined behaviour was detected (§5.4)
  Abort,      ///< abort() was called
  AssertFail, ///< __cerb_assert failed (used by the de facto test suite)
  Error,      ///< internal dynamic error (ill-formed Core reached)
  StepLimit,  ///< execution exceeded the step budget
  Timeout,    ///< execution exceeded its wall-clock deadline (oracle jobs)
};

std::string_view outcomeKindName(OutcomeKind K);

struct Outcome {
  OutcomeKind Kind = OutcomeKind::Error;
  int ExitCode = 0;
  std::string Stdout;
  mem::UndefinedBehaviour UB{mem::UBKind::ExceptionalCondition, "", {}};
  std::string Message;

  /// Canonical string (used to deduplicate outcomes across paths and in
  /// test expectations).
  std::string str() const;
  bool isUndef(mem::UBKind K) const {
    return Kind == OutcomeKind::Undef && UB.Kind == K;
  }
};

/// The result of exploring all decision vectors.
struct ExhaustiveResult {
  std::vector<Outcome> Distinct; ///< deduplicated outcomes
  uint64_t PathsExplored = 0;
  bool Truncated = false; ///< hit the path budget before completing
  bool TimedOut = false;  ///< hit the wall-clock deadline before completing

  bool hasUndef() const {
    for (const Outcome &O : Distinct)
      if (O.Kind == OutcomeKind::Undef)
        return true;
    return false;
  }
  bool hasUndef(mem::UBKind K) const {
    for (const Outcome &O : Distinct)
      if (O.isUndef(K))
        return true;
    return false;
  }
};

} // namespace cerb::exec

#endif // CERB_EXEC_OUTCOME_H
