//===-- exec/Outcome.h - Execution outcomes ---------------------*- C++ -*-===//
///
/// \file
/// The observable result of one execution path of a C program under the
/// semantics, and the aggregate of an exhaustive exploration ("the set of
/// all allowed behaviours of any small test case", §1 Problem 2).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_EXEC_OUTCOME_H
#define CERB_EXEC_OUTCOME_H

#include "mem/UB.h"

#include <string>
#include <vector>

namespace cerb::exec {

enum class OutcomeKind {
  Exit,       ///< program returned from main / called exit()
  Undef,      ///< an undefined behaviour was detected (§5.4)
  Abort,      ///< abort() was called
  AssertFail, ///< __cerb_assert failed (used by the de facto test suite)
  Error,      ///< internal dynamic error (ill-formed Core reached)
  StepLimit,  ///< execution exceeded the step budget
  Timeout,    ///< execution exceeded its wall-clock deadline (oracle jobs)
};

std::string_view outcomeKindName(OutcomeKind K);

struct Outcome {
  OutcomeKind Kind = OutcomeKind::Error;
  int ExitCode = 0;
  std::string Stdout;
  mem::UndefinedBehaviour UB{mem::UBKind::ExceptionalCondition, "", {}};
  std::string Message;

  /// Canonical string (used to deduplicate outcomes across paths and in
  /// test expectations).
  std::string str() const;
  bool isUndef(mem::UBKind K) const {
    return Kind == OutcomeKind::Undef && UB.Kind == K;
  }
};

/// Observability counters for one exhaustive exploration (surfaced through
/// oracle::Report's timing-gated fields; none of these is part of the
/// byte-identical determinism contract).
struct ExploreStats {
  /// Most subtree prefixes ever simultaneously queued on the frontier.
  uint64_t FrontierHighWater = 0;
  /// Scheduler choices re-driven from claimed prefixes across all runs —
  /// the price of replay-based work-sharing (0 when the program has a
  /// single path).
  uint64_t ReplayedSteps = 0;
  /// Pool steals during the exploration. Only attributable when the
  /// explorer owns its pool; 0 in shared-pool mode (the oracle reports the
  /// batch-wide steal count instead).
  uint64_t Steals = 0;
  /// Worker threads that participated (1 for the serial explorer).
  unsigned Workers = 1;
};

/// The result of exploring all decision vectors.
///
/// Determinism contract: Distinct is sorted by Outcome::str(), and
/// Distinct/PathsExplored/Truncated are identical for any explorer thread
/// count whenever the exploration ran to completion (no budget trip, no
/// deadline). Under a path-budget trip, the *counters* are still
/// thread-count-independent (paths are claimed through one atomic
/// reservation counter), but which paths made the cut — and hence Distinct
/// — may vary; Stats is always scheduling-dependent.
struct ExhaustiveResult {
  std::vector<Outcome> Distinct; ///< deduplicated outcomes, sorted by str()
  uint64_t PathsExplored = 0;
  bool Truncated = false; ///< hit the path budget before completing
  bool TimedOut = false;  ///< hit the wall-clock deadline before completing
  ExploreStats Stats;

  bool hasUndef() const {
    for (const Outcome &O : Distinct)
      if (O.Kind == OutcomeKind::Undef)
        return true;
    return false;
  }
  bool hasUndef(mem::UBKind K) const {
    for (const Outcome &O : Distinct)
      if (O.isUndef(K))
        return true;
    return false;
  }
};

} // namespace cerb::exec

#endif // CERB_EXEC_OUTCOME_H
