//===-- exec/CompileCache.h - Compile-once/run-many cache -------*- C++ -*-===//
///
/// \file
/// The front half of the pipeline (parse -> desugar -> typecheck ->
/// elaborate) is policy-independent: the memory-model policy only
/// parameterises the *dynamics*. This cache keys compiled units by source
/// text × FrontendOptions fingerprint so one elaboration is shared across
/// every policy instantiation of the same test, including across threads:
/// concurrent requests for an in-flight key block until the winning thread
/// publishes the unit, so each distinct key is compiled exactly once
/// (no thundering herd).
///
/// Two deployment shapes share this type:
///  - the oracle creates one per batch (bounded lifetime, no budget);
///  - the serve daemon keeps one for its whole lifetime behind an LRU byte
///    budget (`--compile-cache-mb`), evicting the least-recently-used
///    *published* entry when the budget trips. In-flight (unpublished)
///    entries and entries with blocked waiters are pinned — eviction can
///    never dangle a reference another thread still holds.
///
/// Accounting is deterministic on purpose: an entry is charged
/// entryCharge(source bytes) = source bytes + a fixed overhead constant,
/// not the (allocator-dependent) size of the compiled Core program, so
/// tests can force exact eviction patterns.
///
/// Safety: compile() pre-warms the program's dynamics caches
/// (core::warmDynamicsCaches), so the shared CoreProgram is never written
/// after publication and may be evaluated from any number of threads.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_EXEC_COMPILECACHE_H
#define CERB_EXEC_COMPILECACHE_H

#include "exec/Pipeline.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace cerb::exec {

/// The immutable product of compiling one source, shared across jobs.
struct CompiledUnit {
  /// Null when compilation failed (see Error).
  std::shared_ptr<const core::CoreProgram> Prog;
  std::string Error; ///< static error message when !ok()
  core::RewriteStats Rewrites;
  StageTimings Timings;
  uint64_t SourceHash = 0; ///< FNV-1a of the source text (stable job key)

  bool ok() const { return Prog != nullptr; }
};

/// Point-in-time counters (the daemon's `stats` op serializes these).
struct CompileCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Bytes = 0;   ///< charged bytes currently resident
  uint64_t Entries = 0; ///< resident entries (published + in-flight)
};

class CompileCache {
public:
  CompileCache() = default;
  /// \p ByteBudget bounds the charged bytes kept resident (0 = unbounded).
  explicit CompileCache(uint64_t ByteBudget) : Budget(ByteBudget) {}

  /// Returns the compiled unit for \p Source under \p FE, compiling at most
  /// once per distinct (source, options) key across all threads. \p OutHit
  /// (optional) reports whether this call reused an existing or in-flight
  /// entry.
  std::shared_ptr<const CompiledUnit> get(const std::string &Source,
                                          const FrontendOptions &FE,
                                          bool *OutHit = nullptr);
  /// Default-options shorthand (the oracle's historical signature).
  std::shared_ptr<const CompiledUnit> get(const std::string &Source,
                                          bool *OutHit = nullptr) {
    return get(Source, FrontendOptions(), OutHit);
  }

  /// Changes the byte budget; an over-budget cache evicts on the next miss,
  /// not eagerly.
  void setByteBudget(uint64_t Bytes);
  uint64_t byteBudget() const;

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  CompileCacheStats stats() const;

  /// FNV-1a 64-bit hash of source text (the report's stable job key).
  static uint64_t hashSource(std::string_view Src);

  /// The deterministic byte charge of one entry: source bytes plus a fixed
  /// per-entry overhead (the map/unit bookkeeping, flat-rated so eviction
  /// order is a pure function of the insertion/use sequence).
  static constexpr uint64_t EntryOverheadBytes = 256;
  static uint64_t entryCharge(size_t SourceBytes) {
    return static_cast<uint64_t>(SourceBytes) + EntryOverheadBytes;
  }

private:
  struct Slot {
    bool Ready = false;
    std::shared_ptr<const CompiledUnit> Unit;
    uint64_t Charge = 0;
    uint64_t LastUse = 0;  ///< LRU stamp (monotonic use clock)
    uint64_t Waiters = 0;  ///< threads blocked on Ready; pins the slot
  };

  /// Evicts least-recently-used *evictable* entries (Ready, no waiters)
  /// until Bytes <= Budget or nothing evictable remains. Caller holds M.
  void enforceBudgetLocked();

  mutable std::mutex M;
  std::condition_variable CV;
  std::unordered_map<std::string, Slot> Map;
  uint64_t Budget = 0; ///< 0 = unbounded
  uint64_t Bytes = 0;
  uint64_t UseClock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace cerb::exec

#endif // CERB_EXEC_COMPILECACHE_H
