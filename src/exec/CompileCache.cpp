//===-- exec/CompileCache.cpp ---------------------------------------------===//

#include "exec/CompileCache.h"

#include "trace/Trace.h"

using namespace cerb;
using namespace cerb::exec;

namespace {

/// Map key: fixed-width options fingerprint, a separator, then the raw
/// source bytes. The prefix is fixed-length hex, so no source text can
/// imitate another options vector's key.
std::string keyFor(const std::string &Source, const FrontendOptions &FE) {
  static const char *Digits = "0123456789abcdef";
  uint64_t FP = FE.fingerprint();
  std::string K(16, '0');
  for (int I = 15; I >= 0; --I, FP >>= 4)
    K[static_cast<size_t>(I)] = Digits[FP & 0xF];
  K += '|';
  K += Source;
  return K;
}

} // namespace

uint64_t CompileCache::hashSource(std::string_view Src) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Src) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

void CompileCache::enforceBudgetLocked() {
  while (Budget && Bytes > Budget) {
    // Least-recently-used among evictable entries: published (Ready) and
    // unobserved (no blocked waiters). In-flight entries are pinned — the
    // compiling thread and its waiters hold references into the map.
    auto Victim = Map.end();
    for (auto It = Map.begin(); It != Map.end(); ++It) {
      Slot &S = It->second;
      if (!S.Ready || S.Waiters)
        continue;
      if (Victim == Map.end() || S.LastUse < Victim->second.LastUse)
        Victim = It;
    }
    if (Victim == Map.end())
      return; // everything resident is pinned; retry on the next miss
    static trace::Counter CntEvictions("oracle.cache_evictions");
    CntEvictions.add();
    Bytes -= Victim->second.Charge;
    Map.erase(Victim);
    ++Evictions;
  }
}

std::shared_ptr<const CompiledUnit>
CompileCache::get(const std::string &Source, const FrontendOptions &FE,
                  bool *OutHit) {
  std::unique_lock<std::mutex> L(M);
  auto [It, Inserted] = Map.try_emplace(keyFor(Source, FE));
  // Element references survive rehashing; iterators do not.
  Slot &S = It->second;
  if (!Inserted) {
    static trace::Counter CntHits("oracle.cache_hits");
    CntHits.add();
    trace::instant("oracle.cache-hit", "oracle");
    ++Hits;
    S.LastUse = ++UseClock;
    if (OutHit)
      *OutHit = true;
    if (!S.Ready) {
      // Pin the slot while blocked: eviction skips entries with waiters,
      // so &S cannot dangle across the wait.
      ++S.Waiters;
      CV.wait(L, [&S] { return S.Ready; });
      --S.Waiters;
    }
    return S.Unit;
  }
  static trace::Counter CntMisses("oracle.cache_misses");
  CntMisses.add();
  ++Misses;
  S.Charge = entryCharge(Source.size());
  S.LastUse = ++UseClock;
  Bytes += S.Charge;
  // Make room *before* compiling: the new in-flight entry is pinned
  // (!Ready), so it can only displace published peers, never itself.
  enforceBudgetLocked();
  if (OutHit)
    *OutHit = false;
  L.unlock();

  auto Unit = std::make_shared<CompiledUnit>();
  Unit->SourceHash = hashSource(Source);
  auto R = exec::compileWithStats(Source, FE);
  if (R) {
    Unit->Prog = std::make_shared<const core::CoreProgram>(std::move(R->Prog));
    Unit->Rewrites = R->Rewrites;
    Unit->Timings = R->Timings;
  } else {
    Unit->Error = R.error().str();
  }

  L.lock();
  S.Unit = std::move(Unit);
  S.Ready = true;
  auto Out = S.Unit; // copy under the lock; rehashing invalidates iterators
  L.unlock();
  CV.notify_all();
  return Out;
}

void CompileCache::setByteBudget(uint64_t NewBudget) {
  std::lock_guard<std::mutex> L(M);
  Budget = NewBudget;
}

uint64_t CompileCache::byteBudget() const {
  std::lock_guard<std::mutex> L(M);
  return Budget;
}

uint64_t CompileCache::hits() const {
  std::lock_guard<std::mutex> L(M);
  return Hits;
}

uint64_t CompileCache::misses() const {
  std::lock_guard<std::mutex> L(M);
  return Misses;
}

uint64_t CompileCache::evictions() const {
  std::lock_guard<std::mutex> L(M);
  return Evictions;
}

CompileCacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  CompileCacheStats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Evictions = Evictions;
  S.Bytes = Bytes;
  S.Entries = Map.size();
  return S;
}
