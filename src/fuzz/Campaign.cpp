//===-- fuzz/Campaign.cpp -------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "oracle/Report.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>

using namespace cerb;
using namespace cerb::fuzz;
using csmith::DiffOptions;
using csmith::DiffResult;
using csmith::DiffStatus;

namespace {

std::vector<mem::MemoryPolicy>
resolvedPolicies(const CampaignOptions &Opts) {
  if (!Opts.Policies.empty())
    return Opts.Policies;
  return {mem::MemoryPolicy::defacto()};
}

/// Splits a "status|stage|ub|hash" signature into its named parts.
void splitSignature(const std::string &Key, Bucket &B) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (Parts.size() < 4) {
    size_t Bar = Key.find('|', Pos);
    if (Bar == std::string::npos) {
      Parts.push_back(Key.substr(Pos));
      break;
    }
    Parts.push_back(Key.substr(Pos, Bar - Pos));
    Pos = Bar + 1;
  }
  Parts.resize(4);
  B.Status = Parts[0];
  B.Stage = Parts[1];
  B.UB = Parts[2];
}

/// Deterministic corpus file name for a bucket: lowercased status/stage/UB
/// plus a hash prefix, sanitized to [a-z0-9-_].
std::string corpusFileName(const Bucket &B) {
  std::string Hash;
  size_t Bar = B.Key.rfind('|');
  if (Bar != std::string::npos)
    Hash = B.Key.substr(Bar + 1, 12);
  std::string Name = B.Status + "-" + B.Stage + "-" +
                     (B.UB == "-" ? "noub" : B.UB) + "-" + Hash;
  for (char &C : Name) {
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '-' && C != '_')
      C = '_';
  }
  return Name + ".c";
}

/// Runs one seed under every policy, reducing divergences; writes the
/// per-policy entries into Slots[0..Policies.size()).
void runSeed(uint64_t Seed, const CampaignOptions &Opts,
             const std::vector<mem::MemoryPolicy> &Policies,
             CampaignEntry *Slots) {
  trace::Span SeedSpan("fuzz.seed", "fuzz");
  SeedSpan.arg("seed", Seed);
  csmith::GenOptions G = Opts.Gen;
  G.Seed = Seed;
  csmith::GeneratedProgram P = csmith::generateProgramWithChunks(G);

  csmith::DifferentialRunner Runner(P.Source);
  for (size_t PI = 0; PI < Policies.size(); ++PI) {
    DiffOptions DO;
    DO.Policy = Policies[PI];
    DO.StepBudget = Opts.StepBudget;
    DO.DeadlineMs = Opts.TestDeadlineMs;
    DiffResult D = Runner.run(DO);

    CampaignEntry &E = Slots[PI];
    E.Seed = Seed;
    E.Policy = Policies[PI].Name;
    E.Status = D.Status;
    E.Signature = csmith::diffSignature(D);
    E.Detail = D.Detail;
    E.SourceBytes = P.Source.size();

    bool Divergence =
        D.Status == DiffStatus::Mismatch || D.Status == DiffStatus::OursFail;
    if (!Divergence || !Opts.Reduce)
      continue;

    auto StillFails = [&](const std::string &Candidate) {
      DiffResult C = csmith::differentialTest(Candidate, DO);
      return csmith::diffSignature(C) == E.Signature;
    };
    ReduceResult RR = reduce(P.Source, P.Chunks, StillFails, Opts.Reduction);
    E.Reduced = RR.Reduced;
    E.ReducedBytes = RR.ReducedBytes;
    E.ReduceTests = RR.TestsRun;
    E.OneMinimal = RR.OneMinimal;
  }
}

} // namespace

CampaignResult
cerb::fuzz::runCampaign(const CampaignOptions &Opts,
                        const std::vector<CampaignEntry> *Previous) {
  trace::Span CampaignSpan("fuzz.campaign", "fuzz");
  trace::Registry::Snapshot Before = trace::Registry::instance().snapshot();
  auto T0 = std::chrono::steady_clock::now();
  CampaignResult R;
  std::vector<mem::MemoryPolicy> Policies = resolvedPolicies(Opts);
  if (Opts.LastSeed < Opts.FirstSeed)
    return R;
  size_t SeedCount = static_cast<size_t>(Opts.LastSeed - Opts.FirstSeed + 1);
  size_t PerSeed = Policies.size();

  // Index previous entries; a seed is adoptable only when every requested
  // policy is covered (a partial seed re-runs wholesale so the shared
  // elaboration/oracle run is not repeated anyway).
  std::map<std::pair<uint64_t, std::string>, const CampaignEntry *> Prev;
  if (Previous)
    for (const CampaignEntry &E : *Previous)
      Prev[{E.Seed, E.Policy}] = &E;

  R.Entries.assign(SeedCount * PerSeed, CampaignEntry());

  std::vector<uint64_t> Fresh; ///< seeds that actually need running
  for (size_t I = 0; I < SeedCount; ++I) {
    uint64_t Seed = Opts.FirstSeed + I;
    bool Adopt = Previous != nullptr;
    for (size_t PI = 0; Adopt && PI < PerSeed; ++PI)
      Adopt = Prev.count({Seed, Policies[PI].Name}) != 0;
    if (Adopt) {
      for (size_t PI = 0; PI < PerSeed; ++PI) {
        R.Entries[I * PerSeed + PI] = *Prev[{Seed, Policies[PI].Name}];
        R.Entries[I * PerSeed + PI].Resumed = true;
      }
    } else {
      Fresh.push_back(Seed);
    }
  }

  unsigned Jobs = Opts.Jobs ? Opts.Jobs
                            : std::max(1u, std::thread::hardware_concurrency());
  if (Jobs <= 1 || Fresh.size() <= 1) {
    for (uint64_t Seed : Fresh)
      runSeed(Seed, Opts, Policies,
              &R.Entries[(Seed - Opts.FirstSeed) * PerSeed]);
  } else {
    ThreadPool Pool(Jobs);
    for (uint64_t Seed : Fresh)
      Pool.submit([&, Seed] {
        runSeed(Seed, Opts, Policies,
                &R.Entries[(Seed - Opts.FirstSeed) * PerSeed]);
      });
    Pool.wait();
  }

  // Aggregate stats. The fuzz.* counters are fed from the entries here —
  // not from the run sites — so an adopted (resumed) entry counts exactly
  // like a fresh one and the report's counters object stays byte-identical
  // between a resumed campaign and a fresh run of the same range.
  static trace::Counter CntEntries("fuzz.entries");
  static trace::Counter CntAgree("fuzz.agree");
  static trace::Counter CntMismatch("fuzz.mismatch");
  static trace::Counter CntTimeout("fuzz.timeout");
  static trace::Counter CntFail("fuzz.fail");
  static trace::Counter CntOracleFail("fuzz.oracle_unavailable");
  static trace::Counter CntReduced("fuzz.reduced");
  static trace::Counter CntReduceTests("fuzz.reduce_tests");
  for (const CampaignEntry &E : R.Entries) {
    ++R.Stats.Total;
    CntEntries.add();
    switch (E.Status) {
    case DiffStatus::Agree: ++R.Stats.Agree; CntAgree.add(); break;
    case DiffStatus::Mismatch: ++R.Stats.Mismatch; CntMismatch.add(); break;
    case DiffStatus::OursTimeout: ++R.Stats.Timeout; CntTimeout.add(); break;
    case DiffStatus::OursFail: ++R.Stats.Fail; CntFail.add(); break;
    case DiffStatus::OracleFail:
      ++R.Stats.OracleUnavailable;
      CntOracleFail.add();
      break;
    }
    if (!E.Reduced.empty()) {
      ++R.Stats.Reduced;
      CntReduced.add();
      R.Stats.ReduceTests += E.ReduceTests;
      CntReduceTests.add(E.ReduceTests);
    }
    if (E.Resumed)
      ++R.Stats.ResumedEntries;
  }
  R.Stats.Counters = trace::Registry::delta(
      Before, trace::Registry::instance().snapshot(), "fuzz.");

  // Triage: bucket reduced divergences by signature. Entries iterate in
  // (seed asc, policy) order, so the first hit is the smallest seed — the
  // bucket representative.
  std::map<std::string, Bucket> Buckets;
  for (const CampaignEntry &E : R.Entries) {
    if (E.Reduced.empty())
      continue;
    Bucket &B = Buckets[E.Signature];
    if (B.Key.empty()) {
      B.Key = E.Signature;
      splitSignature(B.Key, B);
      B.RepresentativeSeed = E.Seed;
      B.RepresentativePolicy = E.Policy;
      B.OriginalBytes = E.SourceBytes;
      B.ReducedBytes = E.ReducedBytes;
      B.Reproducer = E.Reduced;
    }
    if (B.Seeds.empty() || B.Seeds.back() != E.Seed)
      B.Seeds.push_back(E.Seed);
  }
  for (auto &[Key, B] : Buckets)
    R.Buckets.push_back(std::move(B));

  // Persist the corpus (deterministic names; smallest-seed reproducer).
  if (!Opts.CorpusDir.empty() && !R.Buckets.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Opts.CorpusDir, EC);
    for (Bucket &B : R.Buckets) {
      B.CorpusFile = corpusFileName(B);
      std::string Header =
          fmt("/* cerb fuzz reproducer: bucket {0}\n   seed {1}, policy {2}, "
              "{3} -> {4} bytes */\n",
              B.Key, B.RepresentativeSeed, B.RepresentativePolicy,
              B.OriginalBytes, B.ReducedBytes);
      oracle::writeTextFile(Opts.CorpusDir + "/" + B.CorpusFile,
                            Header + B.Reproducer);
    }
  }

  R.Stats.WallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  return R;
}

//===----------------------------------------------------------------------===//
// Report ("cerb-fuzz-report/1", oracle::Report conventions)
//===----------------------------------------------------------------------===//

namespace {

std::string str(uint64_t V) { return std::to_string(V); }

std::string jquoted(const std::string &S) {
  return "\"" + oracle::jsonEscape(S) + "\"";
}

} // namespace

std::string cerb::fuzz::toJson(const CampaignResult &R,
                               const CampaignOptions &Opts,
                               const CampaignReportOptions &RO) {
  std::vector<mem::MemoryPolicy> Policies = resolvedPolicies(Opts);
  std::string J;
  J += "{\n";
  J += "  \"schema\": \"cerb-fuzz-report/1\",\n";

  J += "  \"options\": {\n";
  J += "    \"first_seed\": " + str(Opts.FirstSeed) + ",\n";
  J += "    \"last_seed\": " + str(Opts.LastSeed) + ",\n";
  J += "    \"size\": " + str(Opts.Gen.Size) + ",\n";
  J += "    \"num_globals\": " + str(Opts.Gen.NumGlobals) + ",\n";
  J += "    \"num_functions\": " + str(Opts.Gen.NumFunctions) + ",\n";
  J += "    \"max_depth\": " + str(Opts.Gen.MaxDepth) + ",\n";
  J += "    \"policies\": [";
  for (size_t I = 0; I < Policies.size(); ++I)
    J += (I ? ", " : "") + jquoted(Policies[I].Name);
  J += "],\n";
  J += "    \"step_budget\": " + str(Opts.StepBudget) + ",\n";
  J += "    \"test_deadline_ms\": " + str(Opts.TestDeadlineMs) + ",\n";
  J += "    \"reduce\": " + std::string(Opts.Reduce ? "true" : "false") +
       ",\n";
  J += "    \"reduce_max_tests\": " + str(Opts.Reduction.MaxTests) + ",\n";
  J += "    \"reduce_deadline_ms\": " + str(Opts.Reduction.DeadlineMs) + "\n";
  J += "  },\n";

  const CampaignStats &S = R.Stats;
  J += "  \"summary\": {\n";
  J += "    \"total\": " + str(S.Total) + ",\n";
  J += "    \"agree\": " + str(S.Agree) + ",\n";
  J += "    \"mismatch\": " + str(S.Mismatch) + ",\n";
  J += "    \"timeout\": " + str(S.Timeout) + ",\n";
  J += "    \"fail\": " + str(S.Fail) + ",\n";
  J += "    \"oracle_unavailable\": " + str(S.OracleUnavailable) + ",\n";
  J += "    \"reduced\": " + str(S.Reduced) + ",\n";
  J += "    \"reduce_tests\": " + str(S.ReduceTests) + ",\n";
  J += "    \"counters\": {";
  {
    bool First = true;
    for (const auto &[Name, N] : S.Counters) {
      if (!First)
        J += ", ";
      J += jquoted(Name) + ": " + str(N);
      First = false;
    }
  }
  J += "},\n";
  J += "    \"buckets\": " + str(R.Buckets.size());
  if (RO.IncludeTimings) {
    J += ",\n    \"resumed_entries\": " + str(S.ResumedEntries) + ",\n";
    J += "    \"wall_ms\": " + oracle::jsonMs(S.WallMs) + ",\n";
    double Secs = S.WallMs / 1000.0;
    uint64_t Programs = Policies.empty() ? 0 : S.Total / Policies.size();
    J += "    \"programs_per_sec\": " +
         oracle::jsonMs(Secs > 0 ? Programs / Secs : 0);
  }
  J += "\n  },\n";

  J += "  \"buckets\": [\n";
  for (size_t I = 0; I < R.Buckets.size(); ++I) {
    const Bucket &B = R.Buckets[I];
    J += "    {\n";
    J += "      \"key\": " + jquoted(B.Key) + ",\n";
    J += "      \"status\": " + jquoted(B.Status) + ",\n";
    J += "      \"stage\": " + jquoted(B.Stage) + ",\n";
    J += "      \"ub\": " + (B.UB == "-" ? "null" : jquoted(B.UB)) + ",\n";
    J += "      \"count\": " + str(B.Seeds.size()) + ",\n";
    J += "      \"seeds\": [";
    for (size_t K = 0; K < B.Seeds.size(); ++K)
      J += (K ? ", " : "") + str(B.Seeds[K]);
    J += "],\n";
    J += "      \"representative_seed\": " + str(B.RepresentativeSeed) + ",\n";
    J += "      \"representative_policy\": " + jquoted(B.RepresentativePolicy) +
         ",\n";
    J += "      \"original_bytes\": " + str(B.OriginalBytes) + ",\n";
    J += "      \"reduced_bytes\": " + str(B.ReducedBytes) + ",\n";
    J += "      \"reduction_ratio\": " +
         oracle::jsonMs(B.OriginalBytes
                            ? static_cast<double>(B.ReducedBytes) /
                                  static_cast<double>(B.OriginalBytes)
                            : 0) +
         ",\n";
    if (!B.CorpusFile.empty())
      J += "      \"corpus_file\": " + jquoted(B.CorpusFile) + ",\n";
    J += "      \"reproducer\": " + jquoted(B.Reproducer) + "\n";
    J += "    }";
    if (I + 1 < R.Buckets.size())
      J += ",";
    J += "\n";
  }
  J += "  ],\n";

  J += "  \"entries\": [\n";
  for (size_t I = 0; I < R.Entries.size(); ++I) {
    const CampaignEntry &E = R.Entries[I];
    J += "    {\"seed\": " + str(E.Seed) + ", \"policy\": " + jquoted(E.Policy) +
         ", \"status\": " + jquoted(std::string(diffStatusName(E.Status))) +
         ", \"signature\": " + jquoted(E.Signature) +
         ", \"bytes\": " + str(E.SourceBytes);
    if (!E.Detail.empty())
      J += ", \"detail\": " + jquoted(E.Detail);
    if (!E.Reduced.empty()) {
      J += ", \"reduced_bytes\": " + str(E.ReducedBytes) +
           ", \"reduce_tests\": " + str(E.ReduceTests) + ", \"one_minimal\": " +
           (E.OneMinimal ? "true" : "false") +
           ", \"reduced\": " + jquoted(E.Reduced);
    }
    J += "}";
    if (I + 1 < R.Entries.size())
      J += ",";
    J += "\n";
  }
  J += "  ]\n";
  J += "}\n";
  return J;
}

bool cerb::fuzz::loadCampaignEntries(const std::string &JsonText,
                                     std::vector<CampaignEntry> &Out,
                                     std::string *Err) {
  std::string ParseErr;
  std::optional<json::Value> Doc = json::parse(JsonText, &ParseErr);
  if (!Doc) {
    if (Err)
      *Err = ParseErr;
    return false;
  }
  const json::Value *Schema = Doc->get("schema");
  if (!Schema || Schema->asString() != "cerb-fuzz-report/1") {
    if (Err)
      *Err = "not a cerb-fuzz-report/1 document";
    return false;
  }
  const json::Value *Entries = Doc->get("entries");
  if (!Entries || Entries->K != json::Value::Kind::Array) {
    if (Err)
      *Err = "report has no entries array";
    return false;
  }
  for (const json::Value &V : Entries->Arr) {
    CampaignEntry E;
    if (const json::Value *F = V.get("seed"))
      E.Seed = F->asU64();
    if (const json::Value *F = V.get("policy"))
      E.Policy = F->asString();
    if (const json::Value *F = V.get("status")) {
      auto S = csmith::diffStatusByName(F->asString());
      if (!S) {
        if (Err)
          *Err = "unknown status '" + F->asString() + "' in report";
        return false;
      }
      E.Status = *S;
    }
    if (const json::Value *F = V.get("signature"))
      E.Signature = F->asString();
    if (const json::Value *F = V.get("detail"))
      E.Detail = F->asString();
    if (const json::Value *F = V.get("bytes"))
      E.SourceBytes = F->asU64();
    if (const json::Value *F = V.get("reduced_bytes"))
      E.ReducedBytes = F->asU64();
    if (const json::Value *F = V.get("reduce_tests"))
      E.ReduceTests = F->asU64();
    if (const json::Value *F = V.get("one_minimal"))
      E.OneMinimal = F->asBool();
    if (const json::Value *F = V.get("reduced"))
      E.Reduced = F->asString();
    E.Resumed = true;
    Out.push_back(std::move(E));
  }
  return true;
}
