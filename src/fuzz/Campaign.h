//===-- fuzz/Campaign.h - Differential fuzzing campaigns --------*- C++ -*-===//
///
/// \file
/// The §6 validation experiment as a first-class, parallel, resumable
/// subsystem: a campaign fans a seed range of generated programs across
/// the shared cerb::ThreadPool, runs each through the csmith differential
/// harness under a chosen set of memory policies, ddmin-reduces every
/// divergence (Mismatch / OursFail) to a 1-minimal reproducer, and triages
/// the results into buckets keyed by the stable diffSignature
/// (status | first-divergent-stage | UB kind | normalized-detail hash).
///
/// Determinism contract (mirrors oracle::Report): the default JSON report
/// ("cerb-fuzz-report/1", IncludeTimings=false) is byte-identical for any
/// worker count — per-seed work is independent, results merge by seed
/// index, reduction is capped by a deterministic test budget, and buckets
/// sort by key with the smallest seed as representative. Wall-clock and
/// resume attribution live behind IncludeTimings.
///
/// Resume: loadCampaignEntries() reads a previous report's entries; seeds
/// whose every requested policy already has an entry are not re-run, so a
/// long campaign survives interruption (and a finished one extends
/// incrementally to a larger seed range).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_FUZZ_CAMPAIGN_H
#define CERB_FUZZ_CAMPAIGN_H

#include "csmith/Differential.h"
#include "fuzz/Reducer.h"

#include <map>
#include <string>
#include <vector>

namespace cerb::fuzz {

struct CampaignOptions {
  uint64_t FirstSeed = 1;
  uint64_t LastSeed = 100; ///< inclusive
  /// Generator shape; Seed is overridden per program.
  csmith::GenOptions Gen;
  /// Policies each program is validated under (empty = {defacto}).
  std::vector<mem::MemoryPolicy> Policies;
  unsigned Jobs = 0; ///< campaign worker threads (0 = hardware concurrency)
  uint64_t StepBudget = 20'000'000;
  /// Per-differential-run wall-clock deadline (csmith::DiffOptions
  /// ::DeadlineMs): a pathological program times out instead of stalling a
  /// campaign worker. 0 = none.
  uint64_t TestDeadlineMs = 10'000;
  bool Reduce = true; ///< ddmin-reduce every Mismatch / OursFail
  ReduceOptions Reduction;
  /// When set, each bucket's minimized reproducer is persisted here as a
  /// standalone .c file (created if missing).
  std::string CorpusDir;
};

/// One (seed, policy) differential result.
struct CampaignEntry {
  uint64_t Seed = 0;
  std::string Policy;
  csmith::DiffStatus Status = csmith::DiffStatus::OracleFail;
  std::string Signature; ///< csmith::diffSignature of the original result
  std::string Detail;
  size_t SourceBytes = 0;
  size_t ReducedBytes = 0;  ///< 0 when the entry was not reduced
  uint64_t ReduceTests = 0; ///< oracle predicate evaluations spent reducing
  bool OneMinimal = false;
  std::string Reduced; ///< minimized reproducer source (when reduced)
  bool Resumed = false; ///< taken from a previous report, not re-run
};

/// A triage bucket: all reduced divergences sharing one signature.
struct Bucket {
  std::string Key; ///< the shared diffSignature
  std::string Status, Stage, UB; ///< Key split into its named parts
  std::vector<uint64_t> Seeds;   ///< ascending, deduplicated
  uint64_t RepresentativeSeed = 0; ///< smallest seed in the bucket
  std::string RepresentativePolicy;
  size_t OriginalBytes = 0; ///< representative's generated size
  size_t ReducedBytes = 0;  ///< representative's minimized size
  std::string Reproducer;   ///< representative's minimized source
  std::string CorpusFile;   ///< file name under CorpusDir (when persisted)
};

struct CampaignStats {
  uint64_t Total = 0; ///< (seed, policy) pairs — the §6 table denominator
  uint64_t Agree = 0;
  uint64_t Mismatch = 0;
  uint64_t Timeout = 0;
  uint64_t Fail = 0;
  uint64_t OracleUnavailable = 0;
  uint64_t Reduced = 0;      ///< entries that went through the reducer
  uint64_t ReduceTests = 0;  ///< total oracle evaluations spent reducing
  uint64_t ResumedEntries = 0; ///< timings-gated in the report
  double WallMs = 0;           ///< timings-gated
  /// trace::Registry delta restricted to "fuzz." counters. Those are
  /// incremented from the aggregated entries (adopted and fresh alike), so
  /// resumed and fresh campaigns serialize identically; unprefixed counters
  /// (pipeline/mem/exec) reflect fresh work only and are excluded.
  std::map<std::string, uint64_t> Counters;
};

struct CampaignResult {
  std::vector<CampaignEntry> Entries; ///< seed-major, policy order within
  std::vector<Bucket> Buckets;        ///< sorted by Key
  CampaignStats Stats;
};

/// Runs a campaign. \p Previous (optional) supplies entries from an
/// earlier report: a seed with an entry for every requested policy is
/// adopted instead of re-run.
CampaignResult runCampaign(const CampaignOptions &Opts,
                           const std::vector<CampaignEntry> *Previous =
                               nullptr);

struct CampaignReportOptions {
  /// Wall-clock throughput and resume attribution; off by default so the
  /// report is byte-identical across --jobs and across resumed/fresh runs.
  bool IncludeTimings = false;
};

/// Serializes the campaign as JSON (schema "cerb-fuzz-report/1").
std::string toJson(const CampaignResult &R, const CampaignOptions &Opts,
                   const CampaignReportOptions &RO = CampaignReportOptions());

/// Parses the entries of a previous "cerb-fuzz-report/1" document (the
/// --resume input). Returns false with \p Err filled on a malformed
/// document; unknown fields are ignored.
bool loadCampaignEntries(const std::string &JsonText,
                         std::vector<CampaignEntry> &Out,
                         std::string *Err = nullptr);

} // namespace cerb::fuzz

#endif // CERB_FUZZ_CAMPAIGN_H
