//===-- fuzz/Reducer.cpp --------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

using namespace cerb;
using namespace cerb::fuzz;
using csmith::SourceChunk;

//===----------------------------------------------------------------------===//
// Structural chunking of arbitrary C-like text
//===----------------------------------------------------------------------===//

namespace {

/// Net brace depth change of \p Line, ignoring string/char literals and
/// comments well enough for the code this repository generates and tests.
int braceDelta(std::string_view Line) {
  int D = 0;
  bool InStr = false, InChar = false;
  for (size_t I = 0; I < Line.size(); ++I) {
    char C = Line[I];
    if (InStr) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InStr = false;
      continue;
    }
    if (InChar) {
      if (C == '\\')
        ++I;
      else if (C == '\'')
        InChar = false;
      continue;
    }
    if (C == '"')
      InStr = true;
    else if (C == '\'')
      InChar = true;
    else if (C == '/' && I + 1 < Line.size() && Line[I + 1] == '/')
      break;
    else if (C == '{')
      ++D;
    else if (C == '}')
      --D;
  }
  return D;
}

bool isBlankOrComment(std::string_view Line) {
  size_t I = Line.find_first_not_of(" \t");
  if (I == std::string_view::npos)
    return true;
  return Line.substr(I, 2) == "/*" || Line.substr(I, 2) == "//" ||
         Line[I] == '*';
}

struct Line {
  size_t Begin, End; ///< byte span including the trailing newline
  std::string_view Text;
};

std::vector<Line> splitLines(const std::string &S) {
  std::vector<Line> Ls;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t NL = S.find('\n', Pos);
    size_t End = NL == std::string::npos ? S.size() : NL + 1;
    Ls.push_back({Pos, End, std::string_view(S).substr(Pos, End - Pos)});
    Pos = End;
  }
  return Ls;
}

} // namespace

std::vector<SourceChunk> cerb::fuzz::chunkSource(const std::string &Source) {
  std::vector<SourceChunk> Chunks;
  std::vector<Line> Lines = splitLines(Source);
  int Depth = 0;
  size_t I = 0;
  while (I < Lines.size()) {
    const Line &L = Lines[I];
    std::string_view Text = L.Text;
    size_t NonWs = Text.find_first_not_of(" \t");
    bool Blank = isBlankOrComment(Text) || NonWs == std::string_view::npos ||
                 Text[NonWs] == '#';
    int Delta = Blank ? 0 : braceDelta(Text);

    if (Depth != 0 || Blank) {
      Depth += Delta;
      ++I;
      continue;
    }

    if (Delta > 0) {
      // A top-level block: find its closing line.
      size_t J = I;
      int D = 0;
      do {
        D += isBlankOrComment(Lines[J].Text) ? 0 : braceDelta(Lines[J].Text);
        ++J;
      } while (J < Lines.size() && D > 0);
      // [I, J) is the block (inclusive of the closing-brace line).
      bool IsMain = Text.find("main(") != std::string_view::npos ||
                    Text.find("main (") != std::string_view::npos;
      if (!IsMain) {
        size_t End = J < Lines.size() ? Lines[J - 1].End : Source.size();
        // Swallow a following blank separator line, like the generator's
        // function chunks do.
        if (J < Lines.size() && Lines[J].Text == "\n")
          End = Lines[J].End, ++J;
        Chunks.push_back(
            SourceChunk{SourceChunk::Kind::Function, L.Begin, End});
      } else {
        // Chunk main's interior: depth-1 statement groups between the
        // opening line and the closing-brace line.
        size_t K = I + 1;
        while (K + 1 < J) {
          if (isBlankOrComment(Lines[K].Text)) {
            ++K;
            continue;
          }
          size_t StmtBegin = K;
          int SD = braceDelta(Lines[K].Text);
          ++K;
          while (K + 1 < J && SD > 0) {
            SD += isBlankOrComment(Lines[K].Text) ? 0
                                                  : braceDelta(Lines[K].Text);
            ++K;
          }
          Chunks.push_back(SourceChunk{SourceChunk::Kind::Statement,
                                       Lines[StmtBegin].Begin,
                                       Lines[K - 1].End});
        }
      }
      I = J;
      continue;
    }

    // A top-level non-block line: a declaration/definition statement.
    if (Text.find(';') != std::string_view::npos)
      Chunks.push_back(SourceChunk{SourceChunk::Kind::Global, L.Begin, L.End});
    Depth += Delta;
    ++I;
  }
  return Chunks;
}

//===----------------------------------------------------------------------===//
// ddmin
//===----------------------------------------------------------------------===//

std::string
cerb::fuzz::spliceChunks(const std::string &Source,
                         const std::vector<SourceChunk> &Chunks,
                         const std::vector<size_t> &Keep) {
  std::vector<bool> Kept(Chunks.size(), false);
  for (size_t K : Keep)
    Kept[K] = true;
  std::string Out;
  Out.reserve(Source.size());
  size_t Pos = 0;
  for (size_t C = 0; C < Chunks.size(); ++C) {
    // Chunks are ascending and disjoint: copy the gap, then the chunk iff
    // kept.
    Out.append(Source, Pos, Chunks[C].Begin - Pos);
    if (Kept[C])
      Out.append(Source, Chunks[C].Begin, Chunks[C].End - Chunks[C].Begin);
    Pos = Chunks[C].End;
  }
  Out.append(Source, Pos, Source.size() - Pos);
  return Out;
}

namespace {

class DdMin {
public:
  DdMin(const std::string &Source, const std::vector<SourceChunk> &Chunks,
        const std::function<bool(const std::string &)> &StillFails,
        const ReduceOptions &Opts)
      : Source(Source), Chunks(Chunks), StillFails(StillFails), Opts(Opts) {
    if (Opts.DeadlineMs)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Opts.DeadlineMs);
  }

  ReduceResult run() {
    ReduceResult R;
    R.OriginalBytes = Source.size();

    std::vector<size_t> Live(Chunks.size());
    for (size_t I = 0; I < Live.size(); ++I)
      Live[I] = I;

    // The caller asserts the full source fails; verify cheaply so that a
    // broken predicate cannot make us "minimize" a passing input.
    if (!test(Live)) {
      R.Reduced = Source;
      R.ReducedBytes = Source.size();
      R.ChunksKept = Chunks.size();
      finish(R);
      return R;
    }

    size_t N = 2;
    while (Live.size() >= 2 && !stop()) {
      bool Reduced = false;
      size_t GroupSize = (Live.size() + N - 1) / N;
      for (size_t G = 0; G * GroupSize < Live.size() && !stop(); ++G) {
        // Candidate = Live minus the G-th group (test the complement).
        std::vector<size_t> Candidate;
        Candidate.reserve(Live.size());
        size_t Lo = G * GroupSize;
        size_t Hi = std::min(Live.size(), Lo + GroupSize);
        for (size_t I = 0; I < Live.size(); ++I)
          if (I < Lo || I >= Hi)
            Candidate.push_back(Live[I]);
        if (Candidate.empty())
          continue;
        if (test(Candidate)) {
          Live = std::move(Candidate);
          N = std::max<size_t>(N - 1, 2);
          Reduced = true;
          break;
        }
      }
      if (!Reduced) {
        if (N >= Live.size())
          break; // every single-chunk removal passes: 1-minimal
        N = std::min(Live.size(), N * 2);
      }
    }

    // The loop never tests the empty configuration (groups are proper
    // subsets); with one chunk left the skeleton alone may still fail, so
    // test that final removal explicitly.
    if (Live.size() == 1 && !stop() && test({}))
      Live.clear();

    R.Reduced = spliceChunks(Source, Chunks, Live);
    R.ReducedBytes = R.Reduced.size();
    R.ChunksKept = Live.size();
    finish(R);
    // 1-minimality holds when the loop ran to convergence (the final sweep
    // at N == |Live| found no removable chunk) rather than tripping a
    // budget, and trivially for 0/1 remaining chunks.
    R.OneMinimal = !R.BudgetHit && !R.DeadlineHit;
    return R;
  }

private:
  const std::string &Source;
  const std::vector<SourceChunk> &Chunks;
  const std::function<bool(const std::string &)> &StillFails;
  const ReduceOptions &Opts;
  std::chrono::steady_clock::time_point Deadline{};
  uint64_t Tests = 0;
  bool HitDeadline = false;
  /// Memo of predicate results keyed by candidate text: ddmin revisits
  /// configurations, and differential predicates are expensive (a host
  /// compiler run each).
  std::unordered_map<std::string, bool> Memo;

  bool stop() {
    if (Tests >= Opts.MaxTests)
      return true;
    if (Deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() >= Deadline) {
      HitDeadline = true;
      return true;
    }
    return false;
  }

  bool test(const std::vector<size_t> &Keep) {
    std::string Candidate = spliceChunks(Source, Chunks, Keep);
    auto It = Memo.find(Candidate);
    if (It != Memo.end())
      return It->second;
    if (stop())
      return false; // over budget: treat as "does not fail", keep current
    ++Tests;
    bool Fails = StillFails(Candidate);
    Memo.emplace(std::move(Candidate), Fails);
    return Fails;
  }

  void finish(ReduceResult &R) {
    R.TestsRun = Tests;
    R.DeadlineHit = HitDeadline;
    R.BudgetHit = !HitDeadline && Tests >= Opts.MaxTests;
  }
};

} // namespace

ReduceResult
cerb::fuzz::reduce(const std::string &Source,
                   const std::vector<SourceChunk> &Chunks,
                   const std::function<bool(const std::string &)> &StillFails,
                   const ReduceOptions &Opts) {
  return DdMin(Source, Chunks, StillFails, Opts).run();
}
