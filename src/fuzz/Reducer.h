//===-- fuzz/Reducer.h - Delta-debugging test-case reduction ----*- C++ -*-===//
///
/// \file
/// ddmin (Zeller & Hildebrandt's delta debugging) over structural source
/// chunks: given a program that makes some oracle predicate fail (a
/// differential mismatch, a spurious UB report, ...), find a 1-minimal
/// sub-program — one from which no single remaining chunk can be removed
/// without the failure disappearing.
///
/// Chunks are byte spans that can be spliced out while keeping braces
/// balanced: the csmith generator reports its own exact structure
/// (csmith::GeneratedProgram), and chunkSource() recovers an equivalent
/// segmentation from arbitrary C-like text (for `cerb reduce` on files).
/// Candidates that break compilation simply fail the predicate and are
/// never returned.
///
/// Determinism: with a pure predicate the reduction is a deterministic
/// function of (source, chunks, MaxTests) — the campaign relies on this
/// for byte-identical reports across worker counts. The wall-clock
/// deadline is an opt-in backstop; when it fires the best candidate seen
/// so far (which always satisfies the predicate) is returned.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_FUZZ_REDUCER_H
#define CERB_FUZZ_REDUCER_H

#include "csmith/Generator.h"

#include <functional>
#include <string>
#include <vector>

namespace cerb::fuzz {

struct ReduceOptions {
  /// Predicate-evaluation budget. Deterministic (unlike a deadline), so it
  /// is the default cap; exhausting it returns the best candidate found.
  uint64_t MaxTests = 256;
  /// Wall-clock backstop for one whole reduction; 0 = none.
  uint64_t DeadlineMs = 0;
};

struct ReduceResult {
  std::string Reduced;     ///< smallest variant still satisfying the predicate
  size_t OriginalBytes = 0;
  size_t ReducedBytes = 0;
  uint64_t TestsRun = 0;   ///< predicate evaluations (cache misses)
  size_t ChunksKept = 0;   ///< chunks remaining in the result
  bool OneMinimal = false; ///< verified: removing any single chunk passes
  bool DeadlineHit = false;
  bool BudgetHit = false;  ///< MaxTests exhausted before convergence
};

/// Recovers a structural chunk list from C-like text: brace-aware, line
/// based. Top-level one-line declarations become Global chunks; top-level
/// brace blocks become Function chunks — except one whose header mentions
/// `main(`, whose depth-1 statements (brace-balanced groups of lines)
/// become Statement chunks instead. Preprocessor lines and comments stay
/// un-chunked (never removed).
std::vector<csmith::SourceChunk> chunkSource(const std::string &Source);

/// Splices every chunk NOT in \p Keep (indices into \p Chunks) out of
/// \p Source. Exposed for tests.
std::string spliceChunks(const std::string &Source,
                         const std::vector<csmith::SourceChunk> &Chunks,
                         const std::vector<size_t> &Keep);

/// ddmin: minimizes \p Source over \p Chunks against \p StillFails (true =
/// "the candidate still reproduces the failure"). Precondition: the full
/// source fails; callers should verify their predicate on it first — if it
/// does not, the untouched source is returned with TestsRun == 1.
ReduceResult reduce(const std::string &Source,
                    const std::vector<csmith::SourceChunk> &Chunks,
                    const std::function<bool(const std::string &)> &StillFails,
                    const ReduceOptions &Opts = ReduceOptions());

} // namespace cerb::fuzz

#endif // CERB_FUZZ_REDUCER_H
