//===-- tools/cerb_main.cpp - The cerb batch test-oracle CLI --------------===//
///
/// \file
/// The executable entry point of the repository: drives the oracle
/// subsystem from the command line.
///
///   cerb run file.c --policy defacto
///   cerb suite defacto --policies defacto,strict,concrete,cheri --jobs 8 \
///        --report out.json --junit out.xml
///   cerb suite tests/defacto            (a directory of .c files)
///   cerb export-suite tests/defacto     (materialise the built-in suite)
///   cerb policies
///
//===----------------------------------------------------------------------===//

#include "defacto/Suite.h"
#include "fuzz/Campaign.h"
#include "oracle/Oracle.h"
#include "oracle/Report.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "serve/Supervisor.h"
#include "support/FaultInjector.h"
#include "trace/Trace.h"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace cerb;
using namespace cerb::oracle;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s <command> [options]\n"
               "\n"
               "commands:\n"
               "  run <file.c>           compile and run one C file\n"
               "  suite <dir|defacto>    run every .c file in a directory, or\n"
               "                         the built-in de facto semantic suite\n"
               "  fuzz                   differential fuzzing campaign with\n"
               "                         automatic reduction and triage\n"
               "  reduce <file.c>        ddmin-minimize a divergent C file\n"
               "  export-suite <dir>     write the built-in suite as .c files\n"
               "  policies               list the memory-model policy presets\n"
               "  serve                  run the persistent evaluation daemon\n"
               "                         (cerbd) until SIGTERM/SIGINT drains "
               "it\n"
               "  query [file.c]         send one request to a running "
               "daemon\n"
               "\n"
               "options:\n"
               "  --policy NAME          one policy (repeatable)\n"
               "  --policies a,b,c       comma-separated policies\n"
               "                         (default: defacto for run, all "
               "presets for suite)\n"
               "  --mode MODE            once | random | exhaustive "
               "(default: exhaustive)\n"
               "  --seed N               random-mode / fallback-sampling seed\n"
               "  --jobs N               worker threads (default: hardware "
               "concurrency)\n"
               "  --explore-jobs N       workers per exhaustive exploration "
               "(subtree\n"
               "                         work-sharing; default: --jobs for "
               "run, 1 for\n"
               "                         suite, where batch parallelism "
               "dominates)\n"
               "  --max-paths N          exhaustive path budget (default: "
               "512)\n"
               "  --max-steps N          per-path step budget\n"
               "  --deadline-ms N        per-job wall-clock deadline\n"
               "  --fallback-samples N   random paths sampled after a path-"
               "budget trip\n"
               "  --report FILE          write a JSON report\n"
               "  --junit FILE           write a JUnit XML report\n"
               "  --trace FILE           write a Chrome trace-event profile\n"
               "                         (load in chrome://tracing/Perfetto)\n"
               "  --no-timings           omit wall-clock fields from reports\n"
               "                         (byte-identical across --jobs)\n"
               "  --quiet                only print the final summary\n"
               "\n"
               "fuzz / reduce options:\n"
               "  --seeds A..B|N         campaign seed range (default 1..100)\n"
               "  --size N               generated-program size knob\n"
               "  --no-reduce            skip ddmin reduction of divergences\n"
               "  --reduce-tests N       reduction oracle-test budget "
               "(default 256)\n"
               "  --reduce-deadline-ms N wall-clock backstop per reduction\n"
               "  --corpus DIR           persist minimized reproducers here\n"
               "  --resume FILE          adopt finished seeds from a previous\n"
               "                         fuzz report\n"
               "  --timings              include wall-clock fields in the "
               "fuzz\n"
               "                         report (off by default: reports are\n"
               "                         byte-identical across --jobs)\n"
               "  -o FILE                (reduce) write the minimized program\n"
               "\n"
               "serve / query options:\n"
               "  --socket PATH          unix-domain socket (serve default:\n"
               "                         ./cerbd.sock)\n"
               "  --tcp-port N           also/instead listen on 127.0.0.1:N\n"
               "                         (0 = kernel-assigned)\n"
               "  --cache-dir DIR        persistent result cache (serve; "
               "omit\n"
               "                         for a memory-only cache)\n"
               "  --max-queue N          admission bound on queued+running "
               "evals\n"
               "                         (serve; default 256)\n"
               "  --workers N            serve: pre-fork N supervised worker\n"
               "                         processes sharing the listener and\n"
               "                         the disk cache (0 = single process,\n"
               "                         the default)\n"
               "  --restart-limit K      serve --workers: abandon a worker\n"
               "                         slot after K restarts inside the\n"
               "                         flap window (default 5)\n"
               "  --restart-window-ms N  serve --workers: the flap-detection\n"
               "                         window (default 30000)\n"
               "  --restart-base-ms N    serve --workers: base restart "
               "backoff,\n"
               "                         doubling per attempt (default 100)\n"
               "  --mem-cache N          in-memory result-cache entries "
               "(serve;\n"
               "                         default 1024)\n"
               "  --compile-cache-mb N   serve: LRU byte budget of the "
               "daemon-\n"
               "                         resident compile cache (default "
               "256,\n"
               "                         0 = unbounded)\n"
               "  --server ADDR          suite: evaluate on a running "
               "daemon\n"
               "                         over one pipelined batch (unix "
               "socket\n"
               "                         path, or tcp:PORT for loopback "
               "TCP)\n"
               "  --pipeline-depth N     suite --server: requests per batch\n"
               "                         frame (0 = whole batch, the "
               "default)\n"
               "  --max-conns N          serve: cap concurrent connections\n"
               "                         (0 = unlimited, the default)\n"
               "  --idle-timeout-ms N    serve: reap connections idle this "
               "long\n"
               "                         (0 = never, the default)\n"
               "  --read-timeout-ms N    serve: a started frame must finish\n"
               "                         within N ms (0 = forever, default)\n"
               "  --retries N            query: total attempts with backoff\n"
               "                         on transient failure (default 1)\n"
               "  --retry-deadline-ms N  query: give up retrying after N ms\n"
               "  --call-timeout-ms N    query: per-call socket timeout\n"
               "  --faults SPEC          arm the fault injector (testing);\n"
               "                         same grammar as CERB_FAULTS, e.g.\n"
               "                         seed=42;socket.read,p=0.05,"
               "errno=ECONNRESET\n"
               "  --op NAME              query op: eval | ping | stats | "
               "shutdown\n"
               "                         (default: eval)\n"
               "  --name NAME            query display name (default: file "
               "stem)\n"
               "  --no-cache             query: bypass the daemon's result-"
               "cache\n"
               "                         read (it still stores the result)\n",
               Prog);
  return 2;
}

struct Options {
  std::vector<std::string> PolicyNames;
  Mode ExecMode = Mode::Exhaustive;
  uint64_t Seed = 1;
  unsigned Jobs = 0;
  unsigned ExploreJobs = 0; ///< 0 = auto (run: --jobs; suite: 1)
  JobBudget Budget;
  std::string ReportPath;
  std::string JUnitPath;
  std::string TracePath;
  bool IncludeTimings = true;
  bool Quiet = false;

  // fuzz / reduce
  uint64_t FirstSeed = 1, LastSeed = 100;
  unsigned GenSize = 12;
  bool Reduce = true;
  fuzz::ReduceOptions Reduction;
  std::string CorpusDir;
  std::string ResumePath;
  std::string OutputPath;
  bool FuzzTimings = false;

  // serve / query
  std::string SocketPath;
  int TcpPort = -1;
  unsigned Workers = 0; ///< 0 = single-process daemon; N = supervised pool
  unsigned RestartLimit = 5;
  uint64_t RestartWindowMs = 30000;
  uint64_t RestartBaseMs = 100;
  std::string CacheDir;
  uint64_t MaxQueue = 256;
  uint64_t MemCache = 1024;
  uint64_t MaxConns = 0;
  uint64_t IdleTimeoutMs = 0;
  uint64_t ReadTimeoutMs = 0;
  uint64_t CompileCacheMb = 256;
  std::string ServerAddr;        ///< suite: run on this daemon instead
  unsigned PipelineDepth = 0;    ///< suite --server: requests per frame
  std::string QueryOp = "eval";
  std::string QueryName;
  bool NoCache = false;
  unsigned QueryRetries = 1;
  uint64_t RetryDeadlineMs = 0;
  uint64_t CallTimeoutMs = 0;
  std::string FaultsSpec;
};

void splitCommas(const std::string &S, std::vector<std::string> &Out) {
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
}

/// Parses flags from argv[From..]; returns the positional arguments, or
/// nullopt on a malformed/unknown flag (after printing a diagnostic).
std::optional<std::vector<std::string>> parseArgs(int Argc, char **Argv,
                                                  int From, Options &O) {
  std::vector<std::string> Positional;
  for (int I = From; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Flag) -> std::optional<std::string> {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cerb: %s requires a value\n", Flag);
        return std::nullopt;
      }
      return std::string(Argv[++I]);
    };
    if (A == "--policy" || A == "--policies") {
      auto V = Value(A.c_str());
      if (!V)
        return std::nullopt;
      splitCommas(*V, O.PolicyNames);
    } else if (A == "--mode") {
      auto V = Value("--mode");
      if (!V)
        return std::nullopt;
      auto M = modeByName(*V);
      if (!M) {
        std::fprintf(stderr, "cerb: unknown mode '%s'\n", V->c_str());
        return std::nullopt;
      }
      O.ExecMode = *M;
    } else if (A == "--seed") {
      auto V = Value("--seed");
      if (!V)
        return std::nullopt;
      O.Seed = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--jobs") {
      auto V = Value("--jobs");
      if (!V)
        return std::nullopt;
      O.Jobs = static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 0));
    } else if (A == "--explore-jobs") {
      auto V = Value("--explore-jobs");
      if (!V)
        return std::nullopt;
      O.ExploreJobs =
          static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 0));
    } else if (A == "--max-paths") {
      auto V = Value("--max-paths");
      if (!V)
        return std::nullopt;
      O.Budget.MaxPaths = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--max-steps") {
      auto V = Value("--max-steps");
      if (!V)
        return std::nullopt;
      O.Budget.Limits.MaxSteps = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--deadline-ms") {
      auto V = Value("--deadline-ms");
      if (!V)
        return std::nullopt;
      O.Budget.DeadlineMs = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--fallback-samples") {
      auto V = Value("--fallback-samples");
      if (!V)
        return std::nullopt;
      O.Budget.FallbackSamples = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--report") {
      auto V = Value("--report");
      if (!V)
        return std::nullopt;
      O.ReportPath = *V;
    } else if (A == "--junit") {
      auto V = Value("--junit");
      if (!V)
        return std::nullopt;
      O.JUnitPath = *V;
    } else if (A == "--trace") {
      auto V = Value("--trace");
      if (!V)
        return std::nullopt;
      O.TracePath = *V;
    } else if (A.rfind("--trace=", 0) == 0) {
      O.TracePath = A.substr(8);
      if (O.TracePath.empty()) {
        std::fprintf(stderr, "cerb: --trace requires a value\n");
        return std::nullopt;
      }
    } else if (A == "--seeds") {
      auto V = Value("--seeds");
      if (!V)
        return std::nullopt;
      size_t Dots = V->find("..");
      if (Dots == std::string::npos) {
        O.FirstSeed = 1;
        O.LastSeed = std::strtoull(V->c_str(), nullptr, 0);
      } else {
        O.FirstSeed = std::strtoull(V->substr(0, Dots).c_str(), nullptr, 0);
        O.LastSeed = std::strtoull(V->substr(Dots + 2).c_str(), nullptr, 0);
      }
      if (O.LastSeed < O.FirstSeed) {
        std::fprintf(stderr, "cerb: empty seed range '%s'\n", V->c_str());
        return std::nullopt;
      }
    } else if (A == "--size") {
      auto V = Value("--size");
      if (!V)
        return std::nullopt;
      O.GenSize = static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 0));
    } else if (A == "--no-reduce") {
      O.Reduce = false;
    } else if (A == "--reduce-tests") {
      auto V = Value("--reduce-tests");
      if (!V)
        return std::nullopt;
      O.Reduction.MaxTests = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--reduce-deadline-ms") {
      auto V = Value("--reduce-deadline-ms");
      if (!V)
        return std::nullopt;
      O.Reduction.DeadlineMs = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--corpus") {
      auto V = Value("--corpus");
      if (!V)
        return std::nullopt;
      O.CorpusDir = *V;
    } else if (A == "--resume") {
      auto V = Value("--resume");
      if (!V)
        return std::nullopt;
      O.ResumePath = *V;
    } else if (A == "--timings") {
      O.FuzzTimings = true;
    } else if (A == "--socket") {
      auto V = Value("--socket");
      if (!V)
        return std::nullopt;
      O.SocketPath = *V;
    } else if (A == "--tcp-port") {
      auto V = Value("--tcp-port");
      if (!V)
        return std::nullopt;
      O.TcpPort = static_cast<int>(std::strtol(V->c_str(), nullptr, 0));
    } else if (A == "--workers") {
      auto V = Value("--workers");
      if (!V)
        return std::nullopt;
      O.Workers = static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 0));
    } else if (A == "--restart-limit") {
      auto V = Value("--restart-limit");
      if (!V)
        return std::nullopt;
      O.RestartLimit =
          static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 0));
    } else if (A == "--restart-window-ms") {
      auto V = Value("--restart-window-ms");
      if (!V)
        return std::nullopt;
      O.RestartWindowMs = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--restart-base-ms") {
      auto V = Value("--restart-base-ms");
      if (!V)
        return std::nullopt;
      O.RestartBaseMs = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--cache-dir") {
      auto V = Value("--cache-dir");
      if (!V)
        return std::nullopt;
      O.CacheDir = *V;
    } else if (A == "--max-queue") {
      auto V = Value("--max-queue");
      if (!V)
        return std::nullopt;
      O.MaxQueue = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--compile-cache-mb") {
      auto V = Value("--compile-cache-mb");
      if (!V)
        return std::nullopt;
      O.CompileCacheMb = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--server") {
      auto V = Value("--server");
      if (!V)
        return std::nullopt;
      O.ServerAddr = *V;
    } else if (A == "--pipeline-depth") {
      auto V = Value("--pipeline-depth");
      if (!V)
        return std::nullopt;
      O.PipelineDepth =
          static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 0));
    } else if (A == "--mem-cache") {
      auto V = Value("--mem-cache");
      if (!V)
        return std::nullopt;
      O.MemCache = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--max-conns") {
      auto V = Value("--max-conns");
      if (!V)
        return std::nullopt;
      O.MaxConns = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--idle-timeout-ms") {
      auto V = Value("--idle-timeout-ms");
      if (!V)
        return std::nullopt;
      O.IdleTimeoutMs = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--read-timeout-ms") {
      auto V = Value("--read-timeout-ms");
      if (!V)
        return std::nullopt;
      O.ReadTimeoutMs = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--retries") {
      auto V = Value("--retries");
      if (!V)
        return std::nullopt;
      O.QueryRetries = static_cast<unsigned>(
          std::strtoul(V->c_str(), nullptr, 0));
    } else if (A == "--retry-deadline-ms") {
      auto V = Value("--retry-deadline-ms");
      if (!V)
        return std::nullopt;
      O.RetryDeadlineMs = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--call-timeout-ms") {
      auto V = Value("--call-timeout-ms");
      if (!V)
        return std::nullopt;
      O.CallTimeoutMs = std::strtoull(V->c_str(), nullptr, 0);
    } else if (A == "--faults") {
      auto V = Value("--faults");
      if (!V)
        return std::nullopt;
      O.FaultsSpec = *V;
    } else if (A == "--op") {
      auto V = Value("--op");
      if (!V)
        return std::nullopt;
      O.QueryOp = *V;
    } else if (A == "--name") {
      auto V = Value("--name");
      if (!V)
        return std::nullopt;
      O.QueryName = *V;
    } else if (A == "--no-cache") {
      O.NoCache = true;
    } else if (A == "-o") {
      auto V = Value("-o");
      if (!V)
        return std::nullopt;
      O.OutputPath = *V;
    } else if (A == "--no-timings") {
      O.IncludeTimings = false;
    } else if (A == "--quiet") {
      O.Quiet = true;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "cerb: unknown option '%s'\n", A.c_str());
      return std::nullopt;
    } else {
      Positional.push_back(std::move(A));
    }
  }
  return Positional;
}

std::optional<std::vector<mem::MemoryPolicy>>
resolvePolicies(const std::vector<std::string> &Names, bool DefaultAll) {
  std::vector<mem::MemoryPolicy> Out;
  if (Names.empty()) {
    if (DefaultAll)
      return mem::MemoryPolicy::allPresets();
    Out.push_back(mem::MemoryPolicy::defacto());
    return Out;
  }
  for (const std::string &N : Names) {
    auto P = mem::MemoryPolicy::named(N);
    if (!P) {
      std::fprintf(stderr, "cerb: %s\n", P.error().Message.c_str());
      return std::nullopt;
    }
    Out.push_back(std::move(*P));
  }
  return Out;
}

/// Writes the requested reports; returns false on I/O failure.
bool emitReports(const BatchResult &B, const Options &O) {
  ReportOptions RO;
  RO.IncludeTimings = O.IncludeTimings;
  std::string Err;
  if (!O.ReportPath.empty()) {
    if (!writeTextFile(O.ReportPath, toJson(B, RO), &Err)) {
      std::fprintf(stderr, "cerb: %s\n", Err.c_str());
      return false;
    }
    if (!O.Quiet)
      std::printf("wrote JSON report: %s\n", O.ReportPath.c_str());
  }
  if (!O.JUnitPath.empty()) {
    if (!writeTextFile(O.JUnitPath, toJUnitXml(B, RO), &Err)) {
      std::fprintf(stderr, "cerb: %s\n", Err.c_str());
      return false;
    }
    if (!O.Quiet)
      std::printf("wrote JUnit report: %s\n", O.JUnitPath.c_str());
  }
  return true;
}

void printJobLine(const JobResult &R) {
  std::printf("  [%s] %s: %s", R.PolicyName.c_str(), R.Name.c_str(),
              std::string(jobStatusName(R.Status)).c_str());
  if (R.Check == JobResult::Verdict::Pass)
    std::printf(" (expectation: pass)");
  else if (R.Check == JobResult::Verdict::Fail)
    std::printf(" (expectation: FAIL)");
  std::printf("\n");
  if (R.Status == JobStatus::CompileError) {
    std::printf("      %s\n", R.CompileError.c_str());
    return;
  }
  for (const exec::Outcome &O : R.Outcomes.Distinct)
    std::printf("      %s\n", O.str().c_str());
}

int runBatch(std::vector<Job> Jobs, const Options &O, bool Verbose) {
  OracleConfig Cfg;
  Cfg.Threads = O.Jobs;
  Oracle Orc(Cfg);
  BatchResult B = Orc.run(Jobs);

  if (Verbose && !O.Quiet)
    for (const JobResult &R : B.Results)
      printJobLine(R);
  if (!O.Quiet && !Verbose)
    for (const JobResult &R : B.Results)
      if (R.Status != JobStatus::Ok || R.Check == JobResult::Verdict::Fail)
        printJobLine(R);

  std::printf("%s", B.Stats.str().c_str());
  if (!emitReports(B, O))
    return 1;
  bool Bad = B.Stats.ChecksFailed || B.Stats.CompileErrors || B.Stats.Errors;
  return Bad ? 1 : 0;
}

int cmdRun(const std::vector<std::string> &Files, Options O) {
  auto Policies = resolvePolicies(O.PolicyNames, /*DefaultAll=*/false);
  if (!Policies)
    return 2;
  // Single-program exhaustive runs are where subtree work-sharing pays:
  // wire --jobs into the exploration unless --explore-jobs overrides it.
  O.Budget.ExploreJobs =
      O.ExploreJobs ? O.ExploreJobs : Oracle(OracleConfig{O.Jobs}).threadCount();
  std::vector<Job> Jobs;
  for (const std::string &Path : Files) {
    auto Src = exec::readSourceFile(Path);
    if (!Src) {
      std::fprintf(stderr, "cerb: %s\n", Src.error().str().c_str());
      return 2;
    }
    for (const mem::MemoryPolicy &P : *Policies) {
      Job J;
      J.Name = Path;
      J.Source = *Src;
      J.Policy = P;
      J.ExecMode = O.ExecMode;
      J.Seed = O.Seed;
      J.Budget = O.Budget;
      Jobs.push_back(std::move(J));
    }
  }
  return runBatch(std::move(Jobs), O, /*Verbose=*/true);
}

/// The suite's unit of remote work: one EvalRequest per test carrying the
/// whole policy set, so the daemon's per-request job fan-out mirrors the
/// local per-test job grouping (and one compile serves every policy).
std::optional<std::vector<serve::EvalRequest>>
suiteRequests(const std::string &Target,
              const std::vector<mem::MemoryPolicy> &Policies,
              const Options &O) {
  std::vector<serve::EvalRequest> Reqs;
  auto Push = [&](std::string Name, std::string Source) {
    serve::EvalRequest Q;
    Q.Id = "s" + std::to_string(Reqs.size());
    Q.Name = std::move(Name);
    Q.Source = std::move(Source);
    Q.Policies = Policies;
    Q.ExecMode = O.ExecMode;
    Q.Seed = O.Seed;
    Q.Limits.MaxPaths = O.Budget.MaxPaths;
    Q.Limits.MaxSteps = O.Budget.Limits.MaxSteps;
    Q.Limits.MaxCallDepth = O.Budget.Limits.MaxCallDepth;
    Q.Limits.DeadlineMs = O.Budget.DeadlineMs;
    Q.Limits.FallbackSamples = O.Budget.FallbackSamples;
    Q.NoCache = O.NoCache;
    // The daemon attaches built-in expectations by name — the same
    // defacto::findTest lookup the local path does.
    Q.CheckExpect = true;
    Reqs.push_back(std::move(Q));
  };
  if (Target == "defacto") {
    for (const defacto::TestCase &T : defacto::testSuite())
      Push(T.Name, T.Source);
    return Reqs;
  }
  namespace fs = std::filesystem;
  std::error_code EC;
  if (!fs::is_directory(Target, EC)) {
    std::fprintf(stderr,
                 "cerb: '%s' is not a directory (or 'defacto' for the "
                 "built-in suite)\n",
                 Target.c_str());
    return std::nullopt;
  }
  std::vector<std::string> Paths;
  for (const fs::directory_entry &E : fs::directory_iterator(Target, EC))
    if (E.is_regular_file() && E.path().extension() == ".c")
      Paths.push_back(E.path().string());
  std::sort(Paths.begin(), Paths.end()); // deterministic request order
  if (Paths.empty()) {
    std::fprintf(stderr, "cerb: no .c files in '%s'\n", Target.c_str());
    return std::nullopt;
  }
  for (const std::string &Path : Paths) {
    auto Src = exec::readSourceFile(Path);
    if (!Src) {
      std::fprintf(stderr, "cerb: %s\n", Src.error().str().c_str());
      return std::nullopt;
    }
    Push(fs::path(Path).stem().string(), *Src);
  }
  return Reqs;
}

/// `cerb suite --server ADDR`: ship the whole suite to a running daemon as
/// one pipelined batch and aggregate the streamed per-test reports.
int cmdSuiteServer(const std::string &Target, const Options &O) {
  std::string SocketPath = O.ServerAddr;
  int Port = -1;
  if (O.ServerAddr.rfind("tcp:", 0) == 0) {
    SocketPath.clear();
    Port = static_cast<int>(
        std::strtol(O.ServerAddr.c_str() + 4, nullptr, 0));
  }
  auto Policies = resolvePolicies(O.PolicyNames, /*DefaultAll=*/true);
  if (!Policies)
    return 2;
  auto Reqs = suiteRequests(Target, *Policies, O);
  if (!Reqs)
    return 2;

  serve::RetryPolicy RP;
  RP.MaxAttempts = std::max(1u, O.QueryRetries);
  RP.TotalDeadlineMs = O.RetryDeadlineMs;
  RP.CallTimeoutMs = O.CallTimeoutMs;
  RP.Seed = O.Seed;
  auto Conn = serve::Client::connect(SocketPath, Port, RP);
  if (!Conn) {
    std::fprintf(stderr, "cerb: %s\n", Conn.error().str().c_str());
    return 1;
  }

  if (!O.Quiet)
    std::printf("sending %zu tests (%zu policies) to %s...\n", Reqs->size(),
                Policies->size(), O.ServerAddr.c_str());
  serve::BatchOptions BO;
  BO.PipelineDepth = O.PipelineDepth;
  auto Batch = Conn->callBatch(*Reqs, BO);
  if (!Batch) {
    std::fprintf(stderr, "cerb: %s\n", Batch.error().str().c_str());
    return 1;
  }

  // Aggregate the per-test reports: sum the stats blocks, echo failing
  // job lines, and (with --report) keep every report verbatim.
  uint64_t Jobs = 0, Ok = 0, Degraded = 0, TimedOut = 0, CompileErrors = 0,
           Errors = 0, ChecksPassed = 0, ChecksFailed = 0, Paths = 0;
  unsigned BadReplies = 0;
  bool FirstReport = true;
  std::string Combined = "{\n  \"schema\": \"cerb-suite-server/1\",\n"
                         "  \"reports\": [\n";
  for (size_t I = 0; I < Batch->Responses.size(); ++I) {
    const serve::ParsedResponse &R = Batch->Responses[I];
    if (R.Status != "ok") {
      std::fprintf(stderr, "cerb: %s: daemon answered '%s'%s%s\n",
                   (*Reqs)[I].Name.c_str(), R.Status.c_str(),
                   R.Error.empty() ? "" : ": ", R.Error.c_str());
      ++BadReplies;
      continue;
    }
    auto Doc = json::parse(R.Report);
    const json::Value *S = Doc ? Doc->get("stats") : nullptr;
    if (!S) {
      std::fprintf(stderr, "cerb: %s: unparseable report\n",
                   (*Reqs)[I].Name.c_str());
      ++BadReplies;
      continue;
    }
    auto N = [&](const char *K) {
      const json::Value *V = S->get(K);
      return V ? V->asU64() : 0;
    };
    Jobs += N("jobs");
    Ok += N("ok");
    Degraded += N("degraded");
    TimedOut += N("timed_out");
    CompileErrors += N("compile_errors");
    Errors += N("errors");
    ChecksPassed += N("checks_passed");
    ChecksFailed += N("checks_failed");
    Paths += N("paths_explored");
    if (!O.Quiet)
      if (const json::Value *JA = Doc->get("jobs");
          JA && JA->K == json::Value::Kind::Array)
        for (const json::Value &JV : JA->Arr) {
          const json::Value *St = JV.get("status");
          const json::Value *Ck = JV.get("check");
          bool Failed = Ck && Ck->K == json::Value::Kind::String &&
                        Ck->asString() == "fail";
          if ((St && St->asString() != "ok") || Failed) {
            const json::Value *Nm = JV.get("name");
            const json::Value *Pl = JV.get("policy");
            std::printf("  [%s] %s: %s%s\n",
                        Pl ? Pl->asString().c_str() : "?",
                        Nm ? Nm->asString().c_str() : "?",
                        St ? St->asString().c_str() : "?",
                        Failed ? " (expectation: FAIL)" : "");
          }
        }
    if (!O.ReportPath.empty()) {
      if (!FirstReport)
        Combined += ",\n";
      FirstReport = false;
      Combined += R.Report;
    }
  }

  std::printf("suite over %s: %zu tests, %llu jobs (ok %llu, degraded "
              "%llu, timed-out %llu, compile-error %llu, error %llu)\n",
              O.ServerAddr.c_str(), Reqs->size(),
              static_cast<unsigned long long>(Jobs),
              static_cast<unsigned long long>(Ok),
              static_cast<unsigned long long>(Degraded),
              static_cast<unsigned long long>(TimedOut),
              static_cast<unsigned long long>(CompileErrors),
              static_cast<unsigned long long>(Errors));
  if (ChecksPassed || ChecksFailed)
    std::printf("expectations:  %llu passed, %llu failed\n",
                static_cast<unsigned long long>(ChecksPassed),
                static_cast<unsigned long long>(ChecksFailed));
  std::printf("paths:         %llu explored; %u attempt(s)\n",
              static_cast<unsigned long long>(Paths), Batch->Attempts);
  if (BadReplies)
    std::fprintf(stderr, "cerb: %u request(s) answered non-ok\n", BadReplies);

  if (!O.ReportPath.empty()) {
    Combined += "\n  ]\n}\n";
    std::string Err;
    if (!writeTextFile(O.ReportPath, Combined, &Err)) {
      std::fprintf(stderr, "cerb: %s\n", Err.c_str());
      return 1;
    }
    if (!O.Quiet)
      std::printf("wrote JSON report: %s\n", O.ReportPath.c_str());
  }
  return (BadReplies || ChecksFailed || CompileErrors || Errors) ? 1 : 0;
}

int cmdSuite(const std::string &Target, Options O) {
  if (!O.ServerAddr.empty())
    return cmdSuiteServer(Target, O);
  auto Policies = resolvePolicies(O.PolicyNames, /*DefaultAll=*/true);
  if (!Policies)
    return 2;
  // Suites have ample batch-level parallelism; keep explorations serial
  // unless the user explicitly shares workers into them.
  if (O.ExploreJobs)
    O.Budget.ExploreJobs = O.ExploreJobs;

  std::vector<Job> Jobs;
  if (Target == "defacto") {
    Jobs = Oracle::suiteJobs(defacto::testSuite(), *Policies, O.Budget,
                             O.ExecMode);
    for (Job &J : Jobs)
      J.Seed = O.Seed;
  } else {
    namespace fs = std::filesystem;
    std::error_code EC;
    if (!fs::is_directory(Target, EC)) {
      std::fprintf(stderr,
                   "cerb: '%s' is not a directory (or 'defacto' for the "
                   "built-in suite)\n",
                   Target.c_str());
      return 2;
    }
    std::vector<std::string> Paths;
    for (const fs::directory_entry &E : fs::directory_iterator(Target, EC))
      if (E.is_regular_file() && E.path().extension() == ".c")
        Paths.push_back(E.path().string());
    std::sort(Paths.begin(), Paths.end()); // deterministic job order
    if (Paths.empty()) {
      std::fprintf(stderr, "cerb: no .c files in '%s'\n", Target.c_str());
      return 2;
    }
    for (const std::string &Path : Paths) {
      auto Src = exec::readSourceFile(Path);
      if (!Src) {
        std::fprintf(stderr, "cerb: %s\n", Src.error().str().c_str());
        return 2;
      }
      // Directory tests may match built-in suite names (export-suite round
      // trip); attach the built-in expectations when they do.
      const defacto::TestCase *Known =
          defacto::findTest(fs::path(Path).stem().string());
      for (const mem::MemoryPolicy &P : *Policies) {
        Job J;
        J.Name = fs::path(Path).stem().string();
        J.Source = *Src;
        J.Policy = P;
        J.ExecMode = O.ExecMode;
        J.Seed = O.Seed;
        J.Budget = O.Budget;
        if (Known) {
          auto It = Known->Expected.find(P.Name);
          if (It != Known->Expected.end())
            J.Expected = It->second;
        }
        Jobs.push_back(std::move(J));
      }
    }
  }
  std::printf("running %zu jobs (%zu policies) on %u threads...\n",
              Jobs.size(), Policies->size(),
              Oracle(OracleConfig{O.Jobs}).threadCount());
  return runBatch(std::move(Jobs), O, /*Verbose=*/false);
}

int cmdExportSuite(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC) {
    std::fprintf(stderr, "cerb: cannot create '%s': %s\n", Dir.c_str(),
                 EC.message().c_str());
    return 1;
  }
  unsigned N = 0;
  for (const defacto::TestCase &T : defacto::testSuite()) {
    std::string Path = Dir + "/" + T.Name + ".c";
    std::string Header = "/* " + T.QuestionId + ": " + T.Description + " */\n";
    std::string Err;
    if (!writeTextFile(Path, Header + T.Source, &Err)) {
      std::fprintf(stderr, "cerb: %s\n", Err.c_str());
      return 1;
    }
    ++N;
  }
  std::printf("exported %u tests to %s/\n", N, Dir.c_str());
  return 0;
}

/// `cerb fuzz`: the §6 differential campaign with reduction and triage.
int cmdFuzz(const Options &O) {
  auto Policies = resolvePolicies(O.PolicyNames, /*DefaultAll=*/false);
  if (!Policies)
    return 2;

  fuzz::CampaignOptions C;
  C.FirstSeed = O.FirstSeed;
  C.LastSeed = O.LastSeed;
  C.Gen.Size = O.GenSize;
  C.Policies = *Policies;
  C.Jobs = O.Jobs;
  if (O.Budget.Limits.MaxSteps)
    C.StepBudget = O.Budget.Limits.MaxSteps;
  if (O.Budget.DeadlineMs)
    C.TestDeadlineMs = O.Budget.DeadlineMs;
  C.Reduce = O.Reduce;
  C.Reduction = O.Reduction;
  C.CorpusDir = O.CorpusDir;

  std::vector<fuzz::CampaignEntry> Previous;
  if (!O.ResumePath.empty()) {
    auto Text = exec::readSourceFile(O.ResumePath);
    if (!Text) {
      std::fprintf(stderr, "cerb: %s\n", Text.error().str().c_str());
      return 2;
    }
    std::string Err;
    if (!fuzz::loadCampaignEntries(*Text, Previous, &Err)) {
      std::fprintf(stderr, "cerb: --resume %s: %s\n", O.ResumePath.c_str(),
                   Err.c_str());
      return 2;
    }
  }

  if (!O.Quiet)
    std::printf("fuzzing seeds %llu..%llu under %zu policies...\n",
                static_cast<unsigned long long>(C.FirstSeed),
                static_cast<unsigned long long>(C.LastSeed), Policies->size());
  fuzz::CampaignResult R =
      fuzz::runCampaign(C, Previous.empty() ? nullptr : &Previous);

  const fuzz::CampaignStats &S = R.Stats;
  std::printf("campaign: %llu runs: %llu agree, %llu mismatch, %llu timeout, "
              "%llu fail, %llu oracle-unavailable; %zu buckets "
              "(%llu reduced, %llu oracle tests spent reducing)\n",
              static_cast<unsigned long long>(S.Total),
              static_cast<unsigned long long>(S.Agree),
              static_cast<unsigned long long>(S.Mismatch),
              static_cast<unsigned long long>(S.Timeout),
              static_cast<unsigned long long>(S.Fail),
              static_cast<unsigned long long>(S.OracleUnavailable),
              R.Buckets.size(), static_cast<unsigned long long>(S.Reduced),
              static_cast<unsigned long long>(S.ReduceTests));
  if (!O.Quiet)
    for (const fuzz::Bucket &B : R.Buckets)
      std::printf("  bucket %s: %zu seed(s), representative seed %llu "
                  "[%s], %zu -> %zu bytes%s%s\n",
                  B.Key.c_str(), B.Seeds.size(),
                  static_cast<unsigned long long>(B.RepresentativeSeed),
                  B.RepresentativePolicy.c_str(), B.OriginalBytes,
                  B.ReducedBytes, B.CorpusFile.empty() ? "" : " -> ",
                  B.CorpusFile.c_str());

  if (!O.ReportPath.empty()) {
    fuzz::CampaignReportOptions RO;
    RO.IncludeTimings = O.FuzzTimings;
    std::string Err;
    if (!writeTextFile(O.ReportPath, fuzz::toJson(R, C, RO), &Err)) {
      std::fprintf(stderr, "cerb: %s\n", Err.c_str());
      return 1;
    }
    if (!O.Quiet)
      std::printf("wrote fuzz report: %s\n", O.ReportPath.c_str());
  }
  return 0;
}

/// `cerb reduce file.c`: ddmin-minimize a divergent program against the
/// differential oracle, preserving its triage signature.
int cmdReduce(const std::string &Path, const Options &O) {
  auto Policies = resolvePolicies(O.PolicyNames, /*DefaultAll=*/false);
  if (!Policies)
    return 2;
  auto Src = exec::readSourceFile(Path);
  if (!Src) {
    std::fprintf(stderr, "cerb: %s\n", Src.error().str().c_str());
    return 2;
  }

  csmith::DiffOptions DO;
  DO.Policy = Policies->front();
  if (O.Budget.Limits.MaxSteps)
    DO.StepBudget = O.Budget.Limits.MaxSteps;
  DO.DeadlineMs = O.Budget.DeadlineMs ? O.Budget.DeadlineMs : 10'000;

  csmith::DiffResult Original = csmith::differentialTest(*Src, DO);
  std::string Signature = csmith::diffSignature(Original);
  std::printf("%s: %s (signature %s)\n", Path.c_str(),
              std::string(diffStatusName(Original.Status)).c_str(),
              Signature.c_str());
  if (Original.Status == csmith::DiffStatus::Agree) {
    std::fprintf(stderr,
                 "cerb: nothing to reduce: our result agrees with the host "
                 "compiler under policy '%s'\n",
                 DO.Policy.Name.c_str());
    return 1;
  }

  auto StillFails = [&](const std::string &Candidate) {
    return csmith::diffSignature(csmith::differentialTest(Candidate, DO)) ==
           Signature;
  };
  fuzz::ReduceResult RR =
      fuzz::reduce(*Src, fuzz::chunkSource(*Src), StillFails, O.Reduction);
  std::printf("reduced %zu -> %zu bytes in %llu oracle tests (%zu chunks "
              "kept%s)\n",
              RR.OriginalBytes, RR.ReducedBytes,
              static_cast<unsigned long long>(RR.TestsRun), RR.ChunksKept,
              RR.OneMinimal ? ", 1-minimal"
                            : (RR.DeadlineHit ? ", deadline hit"
                                              : ", test budget hit"));

  if (!O.OutputPath.empty()) {
    std::string Err;
    if (!writeTextFile(O.OutputPath, RR.Reduced, &Err)) {
      std::fprintf(stderr, "cerb: %s\n", Err.c_str());
      return 1;
    }
    std::printf("wrote %s\n", O.OutputPath.c_str());
  } else if (!O.Quiet) {
    std::fputs(RR.Reduced.c_str(), stdout);
  }
  return 0;
}

/// SIGTERM/SIGINT → one byte on the daemon's drain pipe (async-signal-safe
/// by construction: the handler only write()s to a pre-stored fd).
std::atomic<int> GDrainFd{-1};

void onTermSignal(int) {
  int Fd = GDrainFd.load(std::memory_order_relaxed);
  if (Fd >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t R = ::write(Fd, &B, 1);
  }
}

/// `cerb serve`: run the evaluation daemon until a termination signal (or a
/// `shutdown` op) drains it.
int cmdServe(const Options &O) {
  serve::DaemonConfig DC;
  DC.SocketPath = O.SocketPath;
  DC.TcpPort = O.TcpPort;
  if (DC.SocketPath.empty() && DC.TcpPort < 0)
    DC.SocketPath = "cerbd.sock";
  DC.Threads = O.Jobs;
  DC.MaxQueue = O.MaxQueue;
  DC.Cache.Dir = O.CacheDir;
  DC.Cache.MaxMemoryEntries = static_cast<size_t>(O.MemCache);
  DC.MaxConns = O.MaxConns;
  DC.IdleTimeoutMs = O.IdleTimeoutMs;
  DC.ReadTimeoutMs = O.ReadTimeoutMs;
  DC.CompileCacheMb = O.CompileCacheMb;
  DC.Quiet = O.Quiet;

  struct sigaction SA;
  std::memset(&SA, 0, sizeof SA);
  SA.sa_handler = onTermSignal;
  sigemptyset(&SA.sa_mask);
  std::signal(SIGPIPE, SIG_IGN); // a vanished client must not kill cerbd

  // --workers N: the supervised pre-forked pool (serve/Supervisor.h). The
  // supervisor binds the listeners, forks the workers, and turns SIGTERM
  // into a rolling cross-process drain.
  if (O.Workers > 0) {
    serve::SupervisorConfig SC;
    SC.Worker = std::move(DC);
    SC.Workers = O.Workers;
    SC.RestartLimit = O.RestartLimit;
    SC.RestartWindowMs = O.RestartWindowMs;
    SC.RestartBaseMs = O.RestartBaseMs;
    SC.Seed = O.Seed;
    SC.Quiet = O.Quiet;
    // A freshly forked worker must not inherit the supervisor's signal
    // plumbing: its own daemon installs worker-side handlers, and until
    // then the default disposition is the correct one.
    SC.ChildInit = [] {
      GDrainFd.store(-1, std::memory_order_relaxed);
      std::signal(SIGTERM, SIG_DFL);
      std::signal(SIGINT, SIG_DFL);
    };
    serve::Supervisor S(std::move(SC));
    auto Started = S.start();
    if (!Started) {
      std::fprintf(stderr, "cerb: %s\n", Started.error().str().c_str());
      return 1;
    }
    GDrainFd.store(S.drainFd(), std::memory_order_relaxed);
    sigaction(SIGTERM, &SA, nullptr);
    sigaction(SIGINT, &SA, nullptr);
    int RC = S.run();
    GDrainFd.store(-1, std::memory_order_relaxed);
    return RC;
  }

  serve::Daemon D(std::move(DC));
  auto Started = D.start();
  if (!Started) {
    std::fprintf(stderr, "cerb: %s\n", Started.error().str().c_str());
    return 1;
  }

  GDrainFd.store(D.drainFd(), std::memory_order_relaxed);
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  int RC = D.waitUntilDrained();
  GDrainFd.store(-1, std::memory_order_relaxed);
  return RC;
}

/// `cerb query`: one request against a running daemon.
int cmdQuery(const std::vector<std::string> &Files, const Options &O) {
  if (O.SocketPath.empty() && O.TcpPort < 0) {
    std::fprintf(stderr, "cerb: query needs --socket PATH or --tcp-port N\n");
    return 2;
  }
  serve::RetryPolicy RP;
  RP.MaxAttempts = std::max(1u, O.QueryRetries);
  RP.TotalDeadlineMs = O.RetryDeadlineMs;
  RP.CallTimeoutMs = O.CallTimeoutMs;
  RP.Seed = O.Seed;
  auto Conn = serve::Client::connect(O.SocketPath, O.TcpPort, RP);
  if (!Conn) {
    std::fprintf(stderr, "cerb: %s\n", Conn.error().str().c_str());
    return 1;
  }

  if (O.QueryOp != "eval") {
    serve::Op K;
    if (O.QueryOp == "ping")
      K = serve::Op::Ping;
    else if (O.QueryOp == "stats")
      K = serve::Op::Stats;
    else if (O.QueryOp == "shutdown")
      K = serve::Op::Shutdown;
    else {
      std::fprintf(stderr,
                   "cerb: unknown op '%s' (eval | ping | stats | shutdown)\n",
                   O.QueryOp.c_str());
      return 2;
    }
    auto Raw = Conn->callRetry(serve::serializeSimpleRequest(K, "cli"));
    if (!Raw) {
      std::fprintf(stderr, "cerb: %s\n", Raw.error().str().c_str());
      return 1;
    }
    std::printf("%s\n", Raw->c_str());
    auto R = serve::parseResponse(*Raw);
    return (R && R->Status == "ok") ? 0 : 1;
  }

  if (Files.size() != 1) {
    std::fprintf(stderr, "cerb: query requires exactly one file\n");
    return 2;
  }
  auto Policies = resolvePolicies(O.PolicyNames, /*DefaultAll=*/false);
  if (!Policies)
    return 2;
  auto Src = exec::readSourceFile(Files.front());
  if (!Src) {
    std::fprintf(stderr, "cerb: %s\n", Src.error().str().c_str());
    return 2;
  }

  serve::EvalRequest Q;
  Q.Id = "cli-1";
  Q.Name = O.QueryName.empty()
               ? std::filesystem::path(Files.front()).stem().string()
               : O.QueryName;
  Q.Source = *Src;
  Q.Policies = *Policies;
  Q.ExecMode = O.ExecMode;
  Q.Seed = O.Seed;
  Q.Limits.MaxPaths = O.Budget.MaxPaths;
  Q.Limits.MaxSteps = O.Budget.Limits.MaxSteps;
  Q.Limits.MaxCallDepth = O.Budget.Limits.MaxCallDepth;
  Q.Limits.DeadlineMs = O.Budget.DeadlineMs;
  Q.Limits.FallbackSamples = O.Budget.FallbackSamples;
  Q.NoCache = O.NoCache;

  auto R = Conn->callRetryParsed(serve::serializeEvalRequest(Q));
  if (!R) {
    std::fprintf(stderr, "cerb: %s\n", R.error().str().c_str());
    return 1;
  }
  if (R->Status != "ok") {
    std::fprintf(stderr, "cerb: daemon answered '%s'%s%s\n",
                 R->Status.c_str(), R->Error.empty() ? "" : ": ",
                 R->Error.c_str());
    return 1;
  }
  if (!O.ReportPath.empty()) {
    std::string Err;
    if (!writeTextFile(O.ReportPath, R->Report, &Err)) {
      std::fprintf(stderr, "cerb: %s\n", Err.c_str());
      return 1;
    }
    if (!O.Quiet)
      std::printf("wrote JSON report: %s\n", O.ReportPath.c_str());
  } else {
    std::fputs(R->Report.c_str(), stdout);
  }
  return 0;
}

int cmdPolicies() {
  std::printf("memory-model policy presets (select with --policy/--policies):"
              "\n");
  for (const mem::MemoryPolicy &P : mem::MemoryPolicy::allPresets())
    std::printf("  %-11s provenance=%d oob-construction=%d relational-ub=%d "
                "effective-types=%d uninit-ub=%d alignment=%d cheri=%d\n",
                P.Name.c_str(), P.TrackProvenance, P.PermitOOBConstruction,
                P.RelationalAcrossObjectsUB, P.StrictEffectiveTypes,
                P.UninitReadIsUB, P.CheckAlignment, P.Cheri);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Cmd = Argv[1];
  if (Cmd == "help" || Cmd == "--help" || Cmd == "-h") {
    usage(Argv[0]);
    return 0;
  }
  if (Cmd == "policies")
    return cmdPolicies();

  Options O;
  auto Positional = parseArgs(Argc, Argv, 2, O);
  if (!Positional)
    return 2;

  // Fault injection (testing): --faults wins over the CERB_FAULTS env var.
  // A bad spec on the flag is a hard usage error; armFromEnv reports its
  // own warning and continues disarmed.
  if (!O.FaultsSpec.empty()) {
    auto Armed = fault::Injector::instance().armFromSpec(O.FaultsSpec);
    if (!Armed) {
      std::fprintf(stderr, "cerb: --faults: %s\n",
                   Armed.error().str().c_str());
      return 2;
    }
  } else {
    fault::Injector::instance().armFromEnv();
  }

  // Arm tracing around the whole command so compile, exploration, and
  // report emission all land on the profile. Event recording only changes
  // the trace file: counters are always on, so reports are byte-identical
  // with or without --trace.
  if (!O.TracePath.empty()) {
    trace::setCurrentThreadName("main");
    trace::start();
  }
  auto Finish = [&](int RC) {
    if (O.TracePath.empty())
      return RC;
    trace::stop();
    std::string Err;
    if (!trace::writeChromeTrace(O.TracePath, &Err)) {
      std::fprintf(stderr, "cerb: %s\n", Err.c_str());
      return RC ? RC : 1;
    }
    if (!O.Quiet)
      std::printf("wrote trace: %s\n", O.TracePath.c_str());
    return RC;
  };

  if (Cmd == "run") {
    if (Positional->empty()) {
      std::fprintf(stderr, "cerb: run requires at least one file\n");
      return 2;
    }
    return Finish(cmdRun(*Positional, O));
  }
  if (Cmd == "suite") {
    if (Positional->size() != 1) {
      std::fprintf(stderr,
                   "cerb: suite requires exactly one directory (or "
                   "'defacto')\n");
      return 2;
    }
    return Finish(cmdSuite(Positional->front(), O));
  }
  if (Cmd == "fuzz") {
    if (!Positional->empty()) {
      std::fprintf(stderr, "cerb: fuzz takes no positional arguments\n");
      return 2;
    }
    return Finish(cmdFuzz(O));
  }
  if (Cmd == "reduce") {
    if (Positional->size() != 1) {
      std::fprintf(stderr, "cerb: reduce requires exactly one file\n");
      return 2;
    }
    return Finish(cmdReduce(Positional->front(), O));
  }
  if (Cmd == "serve") {
    if (!Positional->empty()) {
      std::fprintf(stderr, "cerb: serve takes no positional arguments\n");
      return 2;
    }
    return Finish(cmdServe(O));
  }
  if (Cmd == "query")
    return Finish(cmdQuery(*Positional, O));
  if (Cmd == "export-suite") {
    if (Positional->size() != 1) {
      std::fprintf(stderr, "cerb: export-suite requires a directory\n");
      return 2;
    }
    return cmdExportSuite(Positional->front());
  }
  std::fprintf(stderr, "cerb: unknown command '%s'\n", Cmd.c_str());
  return usage(Argv[0]);
}
