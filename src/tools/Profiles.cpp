//===-- tools/Profiles.cpp ------------------------------------------------===//

#include "tools/Profiles.h"

#include "defacto/Questions.h"

#include <map>

using namespace cerb;
using namespace cerb::tools;

const std::vector<ToolProfile> &cerb::tools::profiles() {
  static const std::vector<ToolProfile> Ps = [] {
    std::vector<ToolProfile> Out;

    // Clang ASan/MSan/UBSan: a deliberately *liberal* semantics "to
    // accommodate the de facto standards" (§3) — provenance is not
    // tracked (only concrete bounds/liveness are checked), uninitialised
    // data flows silently except into control flow (MSan's Q50 catch),
    // padding is never flagged.
    {
      ToolProfile P;
      P.Name = "sanitizer";
      P.Emulates = "Clang ASan + MSan + UBSan";
      P.Discipline =
          "concrete bounds/liveness checking; silent on provenance, "
          "padding and most unspecified-value flows";
      P.Policy = mem::MemoryPolicy::concrete();
      P.Policy.Name = "sanitizer";
      Out.push_back(std::move(P));
    }

    // TrustInSoft tis-interpreter: "aims for a tight semantics ... In many
    // places it follows a much stricter notion of C than our candidate de
    // facto model, e.g. flagging most of the unspecified-value tests, and
    // not permitting comparison of pointer representations" (§3).
    {
      ToolProfile P;
      P.Name = "tis";
      P.Emulates = "TrustInSoft tis-interpreter";
      P.Discipline =
          "strict: provenance, effective types, uninitialised reads and "
          "byte inspection of unspecified data all flagged";
      P.Policy = mem::MemoryPolicy::strictIso();
      P.Policy.Name = "tis";
      Out.push_back(std::move(P));
    }

    // KCC / RV-Match: "a very strict semantics for reading uninitialised
    // values (but not for padding bytes), and permitted some tests that
    // ISO effective types forbid" (§3).
    {
      ToolProfile P;
      P.Name = "kcc";
      P.Emulates = "KCC / RV-Match";
      P.Discipline =
          "strict on scalar uninitialised reads; lenient on padding "
          "bytes and effective types";
      P.Policy = mem::MemoryPolicy::defacto();
      P.Policy.Name = "kcc";
      P.Policy.UninitReadIsUB = true;
      P.Policy.UninitByteOpsAreUB = false;
      P.Policy.StrictEffectiveTypes = false;
      Out.push_back(std::move(P));
    }

    // The reference point: our candidate de facto model.
    {
      ToolProfile P;
      P.Name = "defacto";
      P.Emulates = "Cerberus candidate de facto model (§5.9)";
      P.Discipline = "the calibration baseline";
      P.Policy = mem::MemoryPolicy::defacto();
      Out.push_back(std::move(P));
    }
    return Out;
  }();
  return Ps;
}

std::vector<ToolVerdict> cerb::tools::runTool(const ToolProfile &Profile,
                                              uint64_t MaxPaths) {
  std::vector<ToolVerdict> Out;
  for (const defacto::TestCase &T : defacto::testSuite()) {
    ToolVerdict V;
    V.Test = &T;
    defacto::TestResult R = defacto::runTest(T, Profile.Policy, MaxPaths);
    if (!R.CompileOk) {
      V.V = Verdict::Failed;
      V.Detail = R.CompileError;
      Out.push_back(std::move(V));
      continue;
    }
    V.V = Verdict::Silent;
    for (const exec::Outcome &O : R.Outcomes.Distinct) {
      if (O.Kind == exec::OutcomeKind::Undef ||
          O.Kind == exec::OutcomeKind::AssertFail) {
        V.V = Verdict::Flagged;
        V.Detail = O.Kind == exec::OutcomeKind::Undef
                       ? std::string(mem::ubName(O.UB.Kind))
                       : "assert";
      }
      if (O.Kind == exec::OutcomeKind::Error ||
          O.Kind == exec::OutcomeKind::StepLimit) {
        V.V = Verdict::Failed;
        V.Detail = O.Message;
        break;
      }
    }
    Out.push_back(std::move(V));
  }
  return Out;
}

std::vector<CategoryFlags>
cerb::tools::summarize(const std::vector<ToolVerdict> &Vs) {
  std::map<std::string, CategoryFlags> ByCat;
  for (const ToolVerdict &V : Vs) {
    const defacto::Question *Q = defacto::findQuestion(V.Test->QuestionId);
    std::string Cat = Q ? Q->Category : "CHERI C (§4)";
    CategoryFlags &C = ByCat[Cat];
    C.Category = Cat;
    ++C.Tests;
    if (V.V == Verdict::Flagged)
      ++C.Flagged;
    if (V.V == Verdict::Failed)
      ++C.Failed;
  }
  std::vector<CategoryFlags> Out;
  for (auto &[Name, C] : ByCat)
    Out.push_back(std::move(C));
  return Out;
}
