//===-- tools/Profiles.h - Analysis-tool semantic profiles ------*- C++ -*-===//
///
/// \file
/// §3 studies "the memory semantics of C analysis tools": Clang's
/// sanitisers, TrustInSoft's tis-interpreter, and KCC each embody an
/// implicit semantic discipline — and "these three groups of tools gave
/// radically different results". Here each tool's documented discipline is
/// expressed as a memory-model policy configuration (a *profile*), and the
/// de facto test suite is run under each, reproducing the shape of the §3
/// comparison: which question categories each discipline flags.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_TOOLS_PROFILES_H
#define CERB_TOOLS_PROFILES_H

#include "defacto/Suite.h"
#include "mem/Memory.h"

#include <string>
#include <vector>

namespace cerb::tools {

struct ToolProfile {
  std::string Name;     ///< short id: "sanitizer", "tis", "kcc"
  std::string Emulates; ///< the real tool family
  std::string Discipline;
  mem::MemoryPolicy Policy;
};

/// The three §3 profiles plus the reference candidate de facto model.
const std::vector<ToolProfile> &profiles();

/// A tool's verdict on one test.
enum class Verdict {
  Silent,  ///< ran to completion without a report
  Flagged, ///< reported an error/UB
  Failed,  ///< could not process the test (KCC's 'Execution failed')
};

struct ToolVerdict {
  const defacto::TestCase *Test = nullptr;
  Verdict V = Verdict::Silent;
  std::string Detail;
};

/// Runs the whole de facto suite under one profile.
std::vector<ToolVerdict> runTool(const ToolProfile &Profile,
                                 uint64_t MaxPaths = 256);

/// Per-category flag counts for the comparison table.
struct CategoryFlags {
  std::string Category;
  unsigned Tests = 0;
  unsigned Flagged = 0;
  unsigned Failed = 0;
};
std::vector<CategoryFlags> summarize(const std::vector<ToolVerdict> &Vs);

} // namespace cerb::tools

#endif // CERB_TOOLS_PROFILES_H
