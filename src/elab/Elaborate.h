//===-- elab/Elaborate.h - Elaboration: Typed Ail -> Core -------*- C++ -*-===//
///
/// \file
/// The elaboration [[·]] (§5.3, Fig. 3): a compositional, total translation
/// from type-annotated Ail into Core. It makes explicit:
///  - C evaluation order, via unseq / let weak / let strong / let atomic
///    with action polarities (§5.6);
///  - every implementation-defined conversion (promotions, usual arithmetic
///    conversions) as conv_int over mathematical integers (§5.5);
///  - every arithmetic undefined behaviour as an explicit undef() test
///    (Fig. 3: Negative_shift, Shift_too_large, Exceptional_condition);
///  - object lifetime, via create/kill actions and scope-annotated
///    save/run for loops, switch and goto (§5.7, §5.8);
///  - the daemonic treatment of unspecified values (Q43/Q52), via
///    case-splits on Specified/Unspecified loaded values.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_ELAB_ELABORATE_H
#define CERB_ELAB_ELABORATE_H

#include "ail/Ail.h"
#include "core/Core.h"
#include "support/Expected.h"

namespace cerb::elab {

/// Elaborates a type-checked Ail program into Core. Consumes \p Prog (its
/// symbol and tag tables move into the Core program).
Expected<core::CoreProgram> elaborate(ail::AilProgram Prog);

} // namespace cerb::elab

#endif // CERB_ELAB_ELABORATE_H
