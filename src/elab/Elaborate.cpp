//===-- elab/Elaborate.cpp ------------------------------------------------===//

#include "elab/Elaborate.h"

#include "support/Format.h"
#include "typing/TypeCheck.h"

#include <cassert>

using namespace cerb;
using namespace cerb::elab;
using namespace cerb::core;
using ail::AilExpr;
using ail::AilExprKind;
using ail::AilInit;
using ail::AilStmt;
using ail::AilStmtKind;
using ail::CType;
using ail::Symbol;
using cabs::BinaryOp;
using cabs::UnaryOp;

namespace {

//===----------------------------------------------------------------------===//
// Small Core builders
//===----------------------------------------------------------------------===//

ExprPtr mk(ExprKind K, SourceLoc Loc = SourceLoc()) {
  return Expr::make(K, Loc);
}

ExprPtr mkVal(Value V, SourceLoc Loc = SourceLoc()) {
  auto E = mk(ExprKind::Val, Loc);
  E->V = std::move(V);
  return E;
}

ExprPtr mkSym(Symbol S, SourceLoc Loc = SourceLoc()) {
  auto E = mk(ExprKind::Sym, Loc);
  E->Sym = S;
  return E;
}

ExprPtr mkUndef(mem::UBKind K, SourceLoc Loc) {
  auto E = mk(ExprKind::Undef, Loc);
  E->UB = K;
  return E;
}

ExprPtr mkInt(Int128 V) { return mkVal(Value::integer(V)); }

ExprPtr mkSpecified(ExprPtr Inner) {
  auto E = mk(ExprKind::SpecifiedE, Inner->Loc);
  E->Kids.push_back(std::move(Inner));
  return E;
}

ExprPtr mkUnspecified(CType Ty, SourceLoc Loc = SourceLoc()) {
  auto E = mk(ExprKind::UnspecifiedE, Loc);
  E->Cty = std::move(Ty);
  return E;
}

ExprPtr mkBinop(CoreBinop Op, ExprPtr A, ExprPtr B) {
  auto E = mk(ExprKind::Binop, A->Loc);
  E->BOp = Op;
  E->Kids.push_back(std::move(A));
  E->Kids.push_back(std::move(B));
  return E;
}

ExprPtr mkNot(ExprPtr A) {
  auto E = mk(ExprKind::Not, A->Loc);
  E->Kids.push_back(std::move(A));
  return E;
}

ExprPtr mkPureIf(ExprPtr C, ExprPtr T, ExprPtr F) {
  auto E = mk(ExprKind::PureIf, C->Loc);
  E->Kids.push_back(std::move(C));
  E->Kids.push_back(std::move(T));
  E->Kids.push_back(std::move(F));
  return E;
}

ExprPtr mkEIf(ExprPtr C, ExprPtr T, ExprPtr F) {
  auto E = mk(ExprKind::EIf, C->Loc);
  E->Kids.push_back(std::move(C));
  E->Kids.push_back(std::move(T));
  E->Kids.push_back(std::move(F));
  return E;
}

ExprPtr mkPureLet(Pattern Pat, ExprPtr E1, ExprPtr E2) {
  auto E = mk(ExprKind::PureLet, E1->Loc);
  E->Pat = std::move(Pat);
  E->Kids.push_back(std::move(E1));
  E->Kids.push_back(std::move(E2));
  return E;
}

ExprPtr mkLetStrong(Pattern Pat, ExprPtr E1, ExprPtr E2,
                    bool SeqPoint = false) {
  auto E = mk(ExprKind::LetStrong, E1->Loc);
  E->Pat = std::move(Pat);
  E->SeqPoint = SeqPoint;
  E->Kids.push_back(std::move(E1));
  E->Kids.push_back(std::move(E2));
  return E;
}

ExprPtr mkLetWeak(Pattern Pat, ExprPtr E1, ExprPtr E2) {
  auto E = mk(ExprKind::LetWeak, E1->Loc);
  E->Pat = std::move(Pat);
  E->Kids.push_back(std::move(E1));
  E->Kids.push_back(std::move(E2));
  return E;
}

ExprPtr mkUnseq(std::vector<ExprPtr> Kids) {
  assert(!Kids.empty() && "empty unseq");
  auto E = mk(ExprKind::Unseq, Kids[0]->Loc);
  E->Kids = std::move(Kids);
  return E;
}

ExprPtr mkSkip() { return mk(ExprKind::Skip); }

ExprPtr mkLoad(CType Ty, ExprPtr Ptr, SourceLoc Loc, bool Neg = false) {
  auto E = mk(ExprKind::Action, Loc);
  E->Act = ActionKind::Load;
  E->Cty = std::move(Ty);
  E->NegPolarity = Neg;
  E->Kids.push_back(std::move(Ptr));
  return E;
}

ExprPtr mkStore(CType Ty, ExprPtr Ptr, ExprPtr V, SourceLoc Loc,
                bool Neg = false) {
  auto E = mk(ExprKind::Action, Loc);
  E->Act = ActionKind::Store;
  E->Cty = std::move(Ty);
  E->NegPolarity = Neg;
  E->Kids.push_back(std::move(Ptr));
  E->Kids.push_back(std::move(V));
  return E;
}

ExprPtr mkCreate(CType Ty, std::string Name, SourceLoc Loc) {
  auto E = mk(ExprKind::Action, Loc);
  E->Act = ActionKind::Create;
  E->Cty = std::move(Ty);
  E->Str = std::move(Name);
  return E;
}

ExprPtr mkKill(ExprPtr Ptr, SourceLoc Loc) {
  auto E = mk(ExprKind::Action, Loc);
  E->Act = ActionKind::Kill;
  E->Kids.push_back(std::move(Ptr));
  return E;
}

ExprPtr mkPtrOp(PtrOpKind Op, std::vector<ExprPtr> Kids, SourceLoc Loc,
                CType Cty = CType()) {
  auto E = mk(ExprKind::PtrOp, Loc);
  E->POp = Op;
  E->Cty = std::move(Cty);
  E->Kids = std::move(Kids);
  return E;
}

ExprPtr mkConvInt(CType Ty, ExprPtr V) {
  auto E = mk(ExprKind::ConvInt, V->Loc);
  E->Cty = std::move(Ty);
  E->Kids.push_back(std::move(V));
  return E;
}

ExprPtr mkPureCall(std::string Name, std::vector<ExprPtr> Kids,
                   SourceLoc Loc) {
  auto E = mk(ExprKind::PureCall, Loc);
  E->Str = std::move(Name);
  E->Kids = std::move(Kids);
  return E;
}

ExprPtr mkFinishArith(mem::ArithOp Op, CType Ty, ExprPtr A, ExprPtr B,
                      ExprPtr N) {
  auto E = mk(ExprKind::FinishArith, A->Loc);
  E->AOp = Op;
  E->Cty = std::move(Ty);
  E->Kids.push_back(std::move(A));
  E->Kids.push_back(std::move(B));
  E->Kids.push_back(std::move(N));
  return E;
}

ExprPtr mkArrayShift(ExprPtr Ptr, CType ElemTy, ExprPtr Idx) {
  auto E = mk(ExprKind::ArrayShiftE, Ptr->Loc);
  E->Cty = std::move(ElemTy);
  E->Kids.push_back(std::move(Ptr));
  E->Kids.push_back(std::move(Idx));
  return E;
}

ExprPtr mkMemberShift(ExprPtr Ptr, unsigned Tag, size_t MemberIdx) {
  auto E = mk(ExprKind::MemberShiftE, Ptr->Loc);
  E->Tag = Tag;
  E->MemberIdx = MemberIdx;
  E->Kids.push_back(std::move(Ptr));
  return E;
}

ExprPtr mkRet(ExprPtr V, SourceLoc Loc) {
  auto E = mk(ExprKind::Ret, Loc);
  E->Kids.push_back(std::move(V));
  return E;
}

/// Sequences two effects, discarding the first's value.
ExprPtr seq(ExprPtr A, ExprPtr B, bool SeqPoint = false) {
  return mkLetStrong(Pattern::wild(), std::move(A), std::move(B), SeqPoint);
}

mem::ArithOp arithOpOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return mem::ArithOp::Add;
  case BinaryOp::Sub: return mem::ArithOp::Sub;
  case BinaryOp::Mul: return mem::ArithOp::Mul;
  case BinaryOp::Div: return mem::ArithOp::Div;
  case BinaryOp::Rem: return mem::ArithOp::Rem;
  case BinaryOp::Shl: return mem::ArithOp::Shl;
  case BinaryOp::Shr: return mem::ArithOp::Shr;
  case BinaryOp::BitAnd: return mem::ArithOp::And;
  case BinaryOp::BitOr: return mem::ArithOp::Or;
  case BinaryOp::BitXor: return mem::ArithOp::Xor;
  default: assert(false && "not an arithmetic operator"); return mem::ArithOp::Add;
  }
}

//===----------------------------------------------------------------------===//
// Elaborator
//===----------------------------------------------------------------------===//

class Elaborator {
public:
  explicit Elaborator(ail::AilProgram P)
      : Ail(std::move(P)), Env(Ail.Tags) {}

  Expected<CoreProgram> run();

private:
  ail::AilProgram Ail;
  ail::ImplEnv Env;
  CoreProgram Prog;

  // Per-function state.
  CType RetTy;
  bool InMain = false;
  Symbol LoopLabel;  ///< run target of `continue` (re-tests the condition)
  Symbol BreakLabel; ///< run target of `break`
  /// Stack of blocks; each lists the objects created so far in that block
  /// (used for save/run scope annotations, §5.8).
  std::vector<std::vector<ScopeObject>> BlockScopes;
  /// Ail parameter symbol id -> Core value-parameter symbol of the proc.
  std::map<unsigned, Symbol> ParamValueSyms;

  Symbol fresh(std::string_view Base) {
    return Prog.Syms.create(fmt("{0}'{1}", Base, Prog.Syms.size()),
                            ail::SymbolKind::Object);
  }
  Symbol freshLabel(std::string_view Base) {
    return Prog.Syms.create(fmt("{0}'{1}", Base, Prog.Syms.size()),
                            ail::SymbolKind::Label);
  }

  std::vector<ScopeObject> currentScope() const {
    std::vector<ScopeObject> Out;
    for (const auto &Block : BlockScopes)
      Out.insert(Out.end(), Block.begin(), Block.end());
    return Out;
  }

  ExprPtr mkRun(Symbol Label, SourceLoc Loc) {
    auto E = mk(ExprKind::Run, Loc);
    E->Sym = Label;
    E->Scope = currentScope();
    return E;
  }
  ExprPtr mkSave(Symbol Label, ExprPtr Body, SourceLoc Loc) {
    auto E = mk(ExprKind::Save, Loc);
    E->Sym = Label;
    E->Scope = currentScope();
    E->Kids.push_back(std::move(Body));
    return E;
  }

  /// The decayed "value type" of an expression (array/function -> pointer).
  CType valueTypeOf(const AilExpr &E) const {
    if (E.Ty.isArray())
      return CType::makePointer(E.Ty.element());
    if (E.Ty.isFunction())
      return CType::makePointer(E.Ty);
    return E.Ty;
  }

  //===--- expressions -------------------------------------------------===//
  Expected<ExprPtr> rvalue(const AilExpr &E);
  Expected<ExprPtr> lvalue(const AilExpr &E);

  Expected<ExprPtr> rvalueConv(const AilExpr &E, const CType &To) {
    CERB_TRY(R, rvalue(E));
    return convertLoaded(To, valueTypeOf(E), std::move(R), E.Loc);
  }

  /// Case-splits a loaded value: binds \p Bind in \p ThenE for the
  /// Specified case; \p UnspecE handles Unspecified. The scrutinee must be
  /// pure (Fig. 2: `case pe with ...`); the node is a pure Case when the
  /// branches are pure, an effect ECase otherwise.
  ExprPtr caseLoaded(ExprPtr Scrut, Symbol Bind, ExprPtr ThenE,
                     ExprPtr UnspecE) {
    assert(isPureExpr(*Scrut) && "case scrutinee must be pure");
    bool Pure = isPureExpr(*ThenE) && isPureExpr(*UnspecE);
    auto E = mk(Pure ? ExprKind::Case : ExprKind::ECase, Scrut->Loc);
    E->Kids.push_back(std::move(Scrut));
    E->Branches.emplace_back(Pattern::specified(Pattern::sym(Bind)),
                             std::move(ThenE));
    E->Branches.emplace_back(Pattern::unspecified(), std::move(UnspecE));
    return E;
  }

  /// caseLoaded for an *effectful* scrutinee: binds it first.
  ExprPtr caseLoadedEff(ExprPtr Scrut, Symbol Bind, ExprPtr ThenE,
                        ExprPtr UnspecE) {
    if (isPureExpr(*Scrut))
      return caseLoaded(std::move(Scrut), Bind, std::move(ThenE),
                        std::move(UnspecE));
    Symbol S = fresh("sc");
    SourceLoc Loc = Scrut->Loc;
    return mkLetStrong(Pattern::sym(S), std::move(Scrut),
                       caseLoaded(mkSym(S, Loc), Bind, std::move(ThenE),
                                  std::move(UnspecE)));
  }

  /// Case-splits two loaded values at once, Fig. 3 style: the chosen de
  /// facto answers to Q43/Q52 (daemonic unspecified values) decide the
  /// Unspecified branches: unsigned result types propagate Unspecified,
  /// signed ones are undef(Exceptional_condition).
  ExprPtr caseLoaded2(ExprPtr S1, ExprPtr S2, Symbol B1, Symbol B2,
                      ExprPtr ThenE, const CType &ResultTy, SourceLoc Loc);

  /// Converts a loaded value between C types (6.3): identity, conv_int,
  /// int<->pointer via ptrop, bool normalisation.
  Expected<ExprPtr> convertLoaded(const CType &To, const CType &From,
                                  ExprPtr E, SourceLoc Loc);

  /// Effectful boolean truthiness of a loaded scalar (for if/while/&&/!).
  Expected<ExprPtr> truthiness(ExprPtr LoadedE, const CType &Ty,
                               SourceLoc Loc);

  /// Pure arithmetic core for integer `A op B` at result type \p Ty, with
  /// the ISO-mandated undef tests made explicit (Fig. 3). \p A and \p B
  /// are symbols bound to already-converted integer values.
  ExprPtr arithCore(BinaryOp Op, const CType &Ty, const CType &RhsTy,
                    Symbol A, Symbol B, SourceLoc Loc);

  Expected<ExprPtr> elabBinary(const AilExpr &E);
  Expected<ExprPtr> elabAssign(const AilExpr &E);
  Expected<ExprPtr> elabIncDec(const AilExpr &E);
  Expected<ExprPtr> elabCall(const AilExpr &E);
  Expected<ExprPtr> elabCast(const AilExpr &E);
  Expected<ExprPtr> elabCond(const AilExpr &E);

  //===--- statements --------------------------------------------------===//
  Expected<ExprPtr> elabStmt(const AilStmt &S);
  /// Elaborates Stmts[I..] with \p Tail as the continuation (the block's
  /// kill chain goes there, nested inside every declaration's binding so
  /// Core stays lexically scoped).
  Expected<ExprPtr> elabStmtSeq(const std::vector<ail::AilStmtPtr> &Stmts,
                                size_t I, ExprPtr Tail);
  Expected<ExprPtr> elabBlock(const AilStmt &S);
  Expected<ExprPtr> elabDeclInto(const AilStmt &S, ExprPtr Rest);
  Expected<ExprPtr> elabWhile(const AilStmt &S);
  Expected<ExprPtr> elabSwitch(const AilStmt &S);

  /// Emits initialisation stores for `Ptr : Ty = Init`.
  Expected<ExprPtr> elabInitStores(const CType &Ty, ExprPtr MakePtr,
                                   const AilInit &Init, ExprPtr Rest);
  /// A zero value of type \p Ty (static-storage default, 6.7.9p10).
  Value zeroValue(const CType &Ty);

  /// Full-expression wrapper: statement-level sequence point.
  Expected<ExprPtr> fullExpr(const AilExpr &E) { return rvalue(E); }

  Expected<ExprPtr> elabFunction(const ail::AilFunction &F);
  Expected<ExprPtr> elabGlobalInit(const ail::AilGlobal &G);

  /// Collects (value, label) pairs of the cases of a switch body, without
  /// descending into nested switches.
  void collectCases(const AilStmt &S,
                    std::vector<std::pair<Int128, Symbol>> &Cases,
                    std::optional<Symbol> &Default);
};

//===----------------------------------------------------------------------===//
// Conversions, truthiness
//===----------------------------------------------------------------------===//

Expected<ExprPtr> Elaborator::convertLoaded(const CType &To,
                                            const CType &From, ExprPtr E,
                                            SourceLoc Loc) {
  if (To == From)
    return std::move(E);
  if (To.isInteger() && From.isInteger()) {
    Symbol A = fresh("cv");
    return caseLoadedEff(std::move(E), A,
                         mkSpecified(mkConvInt(To, mkSym(A, Loc))),
                         mkVal(Value::unspecified(To), Loc));
  }
  if (To.isPointer() && From.isPointer())
    return std::move(E); // representation identity (CastPtr hook is identity)
  if (To.isPointer() && From.isInteger()) {
    Symbol A = fresh("cv"), R = fresh("cvr");
    std::vector<ExprPtr> Kids;
    Kids.push_back(mkSym(A, Loc));
    ExprPtr Conv = mkLetStrong(
        Pattern::sym(R),
        mkPtrOp(PtrOpKind::PtrFromInt, std::move(Kids), Loc, To),
        mkSpecified(mkSym(R, Loc)));
    return caseLoadedEff(std::move(E), A, std::move(Conv),
                         mkVal(Value::unspecified(To), Loc));
  }
  if (To.isInteger() && From.isPointer()) {
    Symbol A = fresh("cv"), R = fresh("cvr");
    std::vector<ExprPtr> Kids;
    Kids.push_back(mkSym(A, Loc));
    ExprPtr Conv = mkLetStrong(
        Pattern::sym(R),
        mkPtrOp(PtrOpKind::IntFromPtr, std::move(Kids), Loc, To),
        mkSpecified(mkSym(R, Loc)));
    return caseLoadedEff(std::move(E), A, std::move(Conv),
                         mkVal(Value::unspecified(To), Loc));
  }
  if (To.isVoid())
    return seq(std::move(E), mkVal(Value::specified(Value::unit()), Loc));
  if (To.isStructOrUnion() && From.isStructOrUnion())
    return std::move(E); // byte-image values
  return err(fmt("unsupported conversion from '{0}' to '{1}'", From.str(),
                 To.str()),
             Loc);
}

Expected<ExprPtr> Elaborator::truthiness(ExprPtr LoadedE, const CType &Ty,
                                         SourceLoc Loc) {
  Symbol A = fresh("t");
  if (Ty.isInteger()) {
    return caseLoadedEff(std::move(LoadedE), A,
                         mkNot(mkBinop(CoreBinop::Eq, mkSym(A, Loc),
                                       mkInt(0))),
                         mkUndef(mem::UBKind::IndeterminateValueUse, Loc));
  }
  if (Ty.isPointer()) {
    std::vector<ExprPtr> Kids;
    Kids.push_back(mkSym(A, Loc));
    Kids.push_back(mkVal(Value::pointer(mem::PointerValue::null()), Loc));
    return caseLoadedEff(std::move(LoadedE), A,
                         mkPtrOp(PtrOpKind::PtrNe, std::move(Kids), Loc),
                         mkUndef(mem::UBKind::IndeterminateValueUse, Loc));
  }
  return err(fmt("cannot test truth of type '{0}'", Ty.str()), Loc);
}

ExprPtr Elaborator::caseLoaded2(ExprPtr S1, ExprPtr S2, Symbol B1, Symbol B2,
                                ExprPtr ThenE, const CType &ResultTy,
                                SourceLoc Loc) {
  // The Unspecified policy of Fig. 3: unsigned result -> Unspecified;
  // signed result -> undef(Exceptional_condition).
  auto UnspecResult = [&]() -> ExprPtr {
    if (ResultTy.isInteger() && ResultTy.isUnsigned())
      return mkVal(Value::unspecified(ResultTy), Loc);
    return mkUndef(mem::UBKind::ExceptionalCondition, Loc);
  };
  // case (s1) of Specified b1 => case (s2) of Specified b2 => Then
  ExprPtr Inner = caseLoaded(std::move(S2), B2, std::move(ThenE),
                             UnspecResult());
  return caseLoaded(std::move(S1), B1, std::move(Inner), UnspecResult());
}

//===----------------------------------------------------------------------===//
// Integer arithmetic (the Fig. 3 pattern, per operator)
//===----------------------------------------------------------------------===//

ExprPtr Elaborator::arithCore(BinaryOp Op, const CType &Ty,
                              const CType &RhsTy, Symbol A, Symbol B,
                              SourceLoc Loc) {
  bool Uns = Ty.isUnsigned();
  mem::ArithOp AOp = arithOpOf(Op);
  auto SymA = [&] { return mkSym(A, Loc); };
  auto SymB = [&] { return mkSym(B, Loc); };
  auto Finish = [&](ExprPtr N) {
    return mkSpecified(mkFinishArith(AOp, Ty, SymA(), SymB(), std::move(N)));
  };
  auto IsRepresentable = [&](ExprPtr N) {
    std::vector<ExprPtr> Kids;
    Kids.push_back(mkVal(Value::ctype(Ty), Loc));
    Kids.push_back(std::move(N));
    return mkPureCall("is_representable", std::move(Kids), Loc);
  };

  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul: {
    CoreBinop CB = Op == BinaryOp::Add   ? CoreBinop::Add
                   : Op == BinaryOp::Sub ? CoreBinop::Sub
                                         : CoreBinop::Mul;
    Symbol N = fresh("n");
    ExprPtr Num = mkBinop(CB, SymA(), SymB());
    if (Uns)
      // 6.2.5p9: unsigned arithmetic is reduced modulo 2^width.
      return mkPureLet(Pattern::sym(N), mkConvInt(Ty, std::move(Num)),
                       Finish(mkSym(N, Loc)));
    // 6.5p5: signed overflow is undefined behaviour.
    return mkPureLet(
        Pattern::sym(N), std::move(Num),
        mkPureIf(IsRepresentable(mkSym(N, Loc)), Finish(mkSym(N, Loc)),
                 mkUndef(mem::UBKind::ExceptionalCondition, Loc)));
  }
  case BinaryOp::Div:
  case BinaryOp::Rem: {
    // 6.5.5p5: UB if the divisor is zero; p6: UB if a/b is unrepresentable
    // (this covers INT_MIN / -1 and INT_MIN % -1).
    Symbol Q = fresh("q");
    ExprPtr Compute =
        Op == BinaryOp::Div
            ? Finish(mkSym(Q, Loc))
            : Finish(mkBinop(CoreBinop::RemT, SymA(), SymB()));
    ExprPtr Guarded;
    if (Uns) {
      Guarded = std::move(Compute);
    } else {
      Guarded = mkPureIf(IsRepresentable(mkSym(Q, Loc)), std::move(Compute),
                         mkUndef(mem::UBKind::ExceptionalCondition, Loc));
    }
    ExprPtr Body = mkPureLet(Pattern::sym(Q),
                             mkBinop(CoreBinop::Div, SymA(), SymB()),
                             std::move(Guarded));
    return mkPureIf(mkBinop(CoreBinop::Eq, SymB(), mkInt(0)),
                    mkUndef(mem::UBKind::DivisionByZero, Loc),
                    std::move(Body));
  }
  case BinaryOp::Shl: {
    // Fig. 3, clause by clause (6.5.7p3-4).
    unsigned Width = Env.widthOf(Ty.intKind());
    ExprPtr TooLarge = mkBinop(CoreBinop::Le, mkInt(Width), SymB());
    ExprPtr Compute;
    if (Uns) {
      // E1 x 2^E2, reduced modulo one more than the maximum value.
      ExprPtr N = mkBinop(CoreBinop::Mul, SymA(),
                          mkBinop(CoreBinop::Exp, mkInt(2), SymB()));
      Compute = Finish(mkBinop(CoreBinop::RemT, std::move(N),
                               mkInt(Env.maxOf(Ty.intKind()) + 1)));
    } else {
      Symbol N = fresh("n");
      Compute = mkPureIf(
          mkBinop(CoreBinop::Lt, SymA(), mkInt(0)),
          mkUndef(mem::UBKind::ExceptionalCondition, Loc),
          mkPureLet(Pattern::sym(N),
                    mkBinop(CoreBinop::Mul, SymA(),
                            mkBinop(CoreBinop::Exp, mkInt(2), SymB())),
                    mkPureIf(IsRepresentable(mkSym(N, Loc)),
                             Finish(mkSym(N, Loc)),
                             mkUndef(mem::UBKind::ExceptionalCondition,
                                     Loc))));
    }
    return mkPureIf(
        mkBinop(CoreBinop::Lt, SymB(), mkInt(0)),
        mkUndef(mem::UBKind::NegativeShift, Loc),
        mkPureIf(std::move(TooLarge),
                 mkUndef(mem::UBKind::ShiftTooLarge, Loc),
                 std::move(Compute)));
  }
  case BinaryOp::Shr: {
    unsigned Width = Env.widthOf(Ty.intKind());
    // Right shift of a negative value is implementation-defined
    // (6.5.7p5); we implement the universal arithmetic shift.
    std::vector<ExprPtr> Kids;
    Kids.push_back(SymA());
    Kids.push_back(SymB());
    ExprPtr Compute = Finish(mkPureCall("shr_arith", std::move(Kids), Loc));
    return mkPureIf(
        mkBinop(CoreBinop::Lt, SymB(), mkInt(0)),
        mkUndef(mem::UBKind::NegativeShift, Loc),
        mkPureIf(mkBinop(CoreBinop::Le, mkInt(Width), SymB()),
                 mkUndef(mem::UBKind::ShiftTooLarge, Loc),
                 std::move(Compute)));
  }
  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor: {
    const char *Fn = Op == BinaryOp::BitAnd  ? "bw_and"
                     : Op == BinaryOp::BitOr ? "bw_or"
                                             : "bw_xor";
    std::vector<ExprPtr> Kids;
    Kids.push_back(mkVal(Value::ctype(Ty), Loc));
    Kids.push_back(SymA());
    Kids.push_back(SymB());
    return Finish(mkPureCall(Fn, std::move(Kids), Loc));
  }
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    CoreBinop CB;
    bool Negate = false;
    switch (Op) {
    case BinaryOp::Lt: CB = CoreBinop::Lt; break;
    case BinaryOp::Gt: CB = CoreBinop::Gt; break;
    case BinaryOp::Le: CB = CoreBinop::Le; break;
    case BinaryOp::Ge: CB = CoreBinop::Ge; break;
    case BinaryOp::Eq: CB = CoreBinop::Eq; break;
    default: CB = CoreBinop::Eq; Negate = true; break;
    }
    ExprPtr Cmp = mkBinop(CB, SymA(), SymB());
    if (Negate)
      Cmp = mkNot(std::move(Cmp));
    return mkPureIf(std::move(Cmp), mkSpecified(mkInt(1)),
                    mkSpecified(mkInt(0)));
  }
  default:
    assert(false && "not an integer operator");
    return mkUndef(mem::UBKind::ExceptionalCondition, Loc);
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expected<ExprPtr> Elaborator::lvalue(const AilExpr &E) {
  switch (E.Kind) {
  case AilExprKind::Var:
    // The Core symbol of a C object is bound to its pointer value.
    return mkSym(E.Sym, E.Loc);
  case AilExprKind::Unary:
    if (E.UOp == UnaryOp::Deref) {
      // The lvalue *e is the pointer value of e; no access is performed
      // here — the access-time check happens at load/store (Q31).
      CERB_TRY(P, rvalue(*E.Kids[0]));
      Symbol A = fresh("p");
      return caseLoadedEff(std::move(P), A, mkSym(A, E.Loc),
                           mkUndef(mem::UBKind::IndeterminateValueUse,
                                   E.Loc));
    }
    break;
  case AilExprKind::Member: {
    const AilExpr &Base = *E.Kids[0];
    CERB_TRY(P, lvalue(Base));
    unsigned Tag = Base.Ty.tag();
    auto Idx = Ail.Tags.get(Tag).memberIndex(E.MemberName);
    assert(Idx && "member vanished after type checking");
    Symbol A = fresh("m");
    return mkLetStrong(Pattern::sym(A), std::move(P),
                       mkMemberShift(mkSym(A, E.Loc), Tag, *Idx));
  }
  default:
    break;
  }
  return err("expression is not an lvalue", E.Loc, "6.3.2.1");
}

Expected<ExprPtr> Elaborator::rvalue(const AilExpr &E) {
  switch (E.Kind) {
  case AilExprKind::IntConst:
    return mkVal(Value::specified(Value::integer(E.IntValue)), E.Loc);

  case AilExprKind::FuncRef:
    return mkVal(Value::specified(Value::function(E.Sym.Id)), E.Loc);

  case AilExprKind::Var:
  case AilExprKind::Member: {
    // Lvalue used as a value: array decay or lvalue conversion (a load).
    CERB_TRY(P, lvalue(E));
    if (E.Ty.isArray()) {
      // Array-to-pointer decay (6.3.2.1p3): the object pointer itself,
      // re-typed at the element; no access happens.
      Symbol A = fresh("d");
      return mkLetStrong(Pattern::sym(A), std::move(P),
                         mkSpecified(mkSym(A, E.Loc)));
    }
    Symbol A = fresh("l");
    return mkLetStrong(Pattern::sym(A), std::move(P),
                       mkLoad(E.Ty, mkSym(A, E.Loc), E.Loc));
  }

  case AilExprKind::Unary:
    switch (E.UOp) {
    case UnaryOp::AddrOf: {
      const AilExpr &Sub = *E.Kids[0];
      if (Sub.Kind == AilExprKind::FuncRef)
        return mkVal(Value::specified(Value::function(Sub.Sym.Id)), E.Loc);
      CERB_TRY(P, lvalue(Sub));
      Symbol A = fresh("a");
      return mkLetStrong(Pattern::sym(A), std::move(P),
                         mkSpecified(mkSym(A, E.Loc)));
    }
    case UnaryOp::Deref: {
      // Rvalue *e: evaluate pointer then load (or decay for arrays).
      CERB_TRY(P, lvalue(E));
      if (E.Ty.isArray()) {
        Symbol A = fresh("d");
        return mkLetStrong(Pattern::sym(A), std::move(P),
                           mkSpecified(mkSym(A, E.Loc)));
      }
      if (E.Ty.isFunction()) {
        // *fp in call position: the function designator.
        return lvalue(E);
      }
      Symbol A = fresh("l");
      return mkLetStrong(Pattern::sym(A), std::move(P),
                         mkLoad(E.Ty, mkSym(A, E.Loc), E.Loc));
    }
    case UnaryOp::Plus:
    case UnaryOp::Minus:
    case UnaryOp::BitNot: {
      CERB_TRY(V, rvalueConv(*E.Kids[0], E.Ty));
      Symbol A = fresh("u");
      ExprPtr Compute;
      SourceLoc Loc = E.Loc;
      if (E.UOp == UnaryOp::Plus) {
        Compute = mkSpecified(mkSym(A, Loc));
      } else if (E.UOp == UnaryOp::Minus) {
        // 0 - a, with the signed-overflow test (negating INT_MIN is UB).
        Symbol N = fresh("n");
        ExprPtr Num = mkBinop(CoreBinop::Sub, mkInt(0), mkSym(A, Loc));
        if (E.Ty.isUnsigned()) {
          Compute = mkSpecified(mkFinishArith(
              mem::ArithOp::Sub, E.Ty, mkInt(0), mkSym(A, Loc),
              mkConvInt(E.Ty, std::move(Num))));
        } else {
          std::vector<ExprPtr> RK;
          RK.push_back(mkVal(Value::ctype(E.Ty), Loc));
          RK.push_back(mkSym(N, Loc));
          Compute = mkPureLet(
              Pattern::sym(N), std::move(Num),
              mkPureIf(mkPureCall("is_representable", std::move(RK), Loc),
                       mkSpecified(mkSym(N, Loc)),
                       mkUndef(mem::UBKind::ExceptionalCondition, Loc)));
        }
      } else { // BitNot
        std::vector<ExprPtr> Kids;
        Kids.push_back(mkVal(Value::ctype(E.Ty), Loc));
        Kids.push_back(mkSym(A, Loc));
        Compute = mkSpecified(mkPureCall("bw_compl", std::move(Kids), Loc));
      }
      Symbol S = fresh("v");
      return mkLetStrong(
          Pattern::sym(S), std::move(V),
          caseLoaded(mkSym(S, Loc), A, std::move(Compute),
                     E.Ty.isUnsigned()
                         ? mkVal(Value::unspecified(E.Ty), Loc)
                         : mkUndef(mem::UBKind::ExceptionalCondition, Loc)));
    }
    case UnaryOp::LogNot: {
      CERB_TRY(V, rvalue(*E.Kids[0]));
      CERB_TRY(B, truthiness(std::move(V), valueTypeOf(*E.Kids[0]), E.Loc));
      Symbol S = fresh("b");
      return mkLetStrong(Pattern::sym(S), std::move(B),
                         mkPureIf(mkSym(S, E.Loc), mkSpecified(mkInt(0)),
                                  mkSpecified(mkInt(1))));
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      return elabIncDec(E);
    }
    return err("bad unary operator", E.Loc);

  case AilExprKind::Binary:
    return elabBinary(E);
  case AilExprKind::Assign:
    return elabAssign(E);
  case AilExprKind::Cond:
    return elabCond(E);
  case AilExprKind::Cast:
    return elabCast(E);
  case AilExprKind::Call:
    return elabCall(E);
  case AilExprKind::Comma: {
    CERB_TRY(A, rvalue(*E.Kids[0]));
    CERB_TRY(B, rvalue(*E.Kids[1]));
    return seq(std::move(A), std::move(B));
  }
  default:
    return err("expression kind not handled by the elaboration", E.Loc);
  }
}

#include "elab/ElaborateImpl.inc"

} // namespace

Expected<CoreProgram> cerb::elab::elaborate(ail::AilProgram Prog) {
  Elaborator E(std::move(Prog));
  return E.run();
}
