//===-- core/Lowering.cpp - Execution-oriented Core lowering --------------===//
///
/// \file
/// See Lowering.h. The cardinal rule of every transformation here: the
/// evaluator's observable behaviour (outcome, stdout, UB identity, error
/// messages, scheduler choice points) must be bit-for-bit identical with
/// and without lowering. Constant folding therefore mirrors the evaluator
/// case by case, and anything the evaluator would turn into a dynamic
/// error or UB stays unfolded so the error still happens at run time.
///
//===----------------------------------------------------------------------===//
#include "core/Lowering.h"

using namespace cerb;
using namespace cerb::core;

namespace {

struct LowerCtx {
  CoreProgram &P;
  ail::ImplEnv Env;
  LoweringStats Stats;
  /// Symbol id -> environment slot (-1 until first encountered).
  std::vector<int> SlotOf;
  int NextSlot = 0;

  explicit LowerCtx(CoreProgram &P)
      : P(P), Env(P.Tags), SlotOf(P.Syms.size(), -1) {}

  int slot(ail::Symbol S) {
    if (!S.isValid() || S.Id >= SlotOf.size())
      return -1;
    if (SlotOf[S.Id] < 0)
      SlotOf[S.Id] = NextSlot++;
    return SlotOf[S.Id];
  }
};

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

/// A literal mathematical integer with no provenance or capability
/// baggage — the only integers folding touches, so the folded result is
/// exactly the Value the evaluator's Binop/ConvInt cases would build.
bool plainInt(const Expr &E, Int128 &Out) {
  if (E.K != ExprKind::Val || E.V.K != ValueKind::Integer)
    return false;
  if (!E.V.IV.Prov.isEmpty() || E.V.IV.Cap)
    return false;
  Out = E.V.IV.V;
  return true;
}

bool boolVal(const Expr &E, bool &Out) {
  if (E.K != ExprKind::Val)
    return false;
  if (E.V.K == ValueKind::True) {
    Out = true;
    return true;
  }
  if (E.V.K == ValueKind::False) {
    Out = false;
    return true;
  }
  return false;
}

void replaceWithValue(ExprPtr &E, Value V, LoweringStats &Stats) {
  auto NV = Expr::make(ExprKind::Val, E->Loc);
  NV->V = std::move(V);
  E = std::move(NV);
  ++Stats.ConstFolds;
}

/// Does the subtree contain any save (jump target)? Folding must never
/// delete one: evalJump routes through untaken if-branches.
bool containsAnySave(const Expr &E) {
  if (E.K == ExprKind::Save)
    return true;
  for (const ExprPtr &K : E.Kids)
    if (containsAnySave(*K))
      return true;
  for (const auto &[Pat, Body] : E.Branches)
    if (containsAnySave(*Body))
      return true;
  return false;
}

/// Folds \p E if it is a pure operator over literal operands, mirroring
/// the matching Evaluator::eval case exactly.
void tryFold(ExprPtr &E, LowerCtx &Ctx) {
  switch (E->K) {
  case ExprKind::Not: {
    bool B;
    if (boolVal(*E->Kids[0], B))
      replaceWithValue(E, Value::boolean(!B), Ctx.Stats);
    return;
  }

  case ExprKind::Binop: {
    if (E->BOp == CoreBinop::And || E->BOp == CoreBinop::Or) {
      // The evaluator reads truthiness of whatever the operands are, but
      // folding stays on actual booleans.
      bool A, B;
      if (boolVal(*E->Kids[0], A) && boolVal(*E->Kids[1], B))
        replaceWithValue(E,
                         Value::boolean(E->BOp == CoreBinop::And ? (A && B)
                                                                 : (A || B)),
                         Ctx.Stats);
      return;
    }
    Int128 X, Y;
    if (!plainInt(*E->Kids[0], X) || !plainInt(*E->Kids[1], Y))
      return;
    switch (E->BOp) {
    case CoreBinop::Add:
      replaceWithValue(E, Value::integer(Int128(UInt128(X) + UInt128(Y))),
                       Ctx.Stats);
      return;
    case CoreBinop::Sub:
      replaceWithValue(E, Value::integer(Int128(UInt128(X) - UInt128(Y))),
                       Ctx.Stats);
      return;
    case CoreBinop::Mul:
      replaceWithValue(E, Value::integer(Int128(UInt128(X) * UInt128(Y))),
                       Ctx.Stats);
      return;
    case CoreBinop::Div:
      if (Y == 0)
        return; // evaluator reports the dynamic error; keep it
      replaceWithValue(E, Value::integer(X / Y), Ctx.Stats);
      return;
    case CoreBinop::RemT:
      if (Y == 0)
        return;
      replaceWithValue(E, Value::integer(X % Y), Ctx.Stats);
      return;
    case CoreBinop::Exp: {
      if (Y < 0 || Y > 127 || X != 2)
        return; // out-of-range / non-2 base error stays dynamic
      UInt128 R = 1;
      for (Int128 I = 0; I < Y; ++I)
        R *= 2;
      replaceWithValue(E, Value::integer(Int128(R)), Ctx.Stats);
      return;
    }
    case CoreBinop::Eq:
      replaceWithValue(E, Value::boolean(X == Y), Ctx.Stats);
      return;
    case CoreBinop::Lt:
      replaceWithValue(E, Value::boolean(X < Y), Ctx.Stats);
      return;
    case CoreBinop::Le:
      replaceWithValue(E, Value::boolean(X <= Y), Ctx.Stats);
      return;
    case CoreBinop::Gt:
      replaceWithValue(E, Value::boolean(X > Y), Ctx.Stats);
      return;
    case CoreBinop::Ge:
      replaceWithValue(E, Value::boolean(X >= Y), Ctx.Stats);
      return;
    default:
      return;
    }
  }

  case ExprKind::ConvInt: {
    Int128 X;
    if (!E->Cty.isInteger() || !plainInt(*E->Kids[0], X))
      return;
    replaceWithValue(
        E, Value::integer(mem::IntegerValue(Ctx.Env.convert(E->Cty.intKind(), X))),
        Ctx.Stats);
    return;
  }

  case ExprKind::IsInteger:
  case ExprKind::IsSigned:
  case ExprKind::IsUnsigned:
  case ExprKind::IsScalar: {
    const Expr &K = *E->Kids[0];
    if (K.K != ExprKind::Val || K.V.K != ValueKind::Ctype)
      return;
    const CType &T = K.V.Cty;
    bool B = E->K == ExprKind::IsInteger    ? T.isInteger()
             : E->K == ExprKind::IsSigned  ? T.isSigned()
             : E->K == ExprKind::IsUnsigned ? T.isUnsigned()
                                            : T.isScalar();
    replaceWithValue(E, Value::boolean(B), Ctx.Stats);
    return;
  }

  case ExprKind::SpecifiedE: {
    if (E->Kids[0]->K != ExprKind::Val)
      return;
    replaceWithValue(E, Value::specified(E->Kids[0]->V), Ctx.Stats);
    return;
  }
  case ExprKind::UnspecifiedE:
    replaceWithValue(E, Value::unspecified(E->Cty), Ctx.Stats);
    return;

  case ExprKind::Tuple: {
    std::vector<Value> Elems;
    for (const ExprPtr &K : E->Kids) {
      if (K->K != ExprKind::Val)
        return;
      Elems.push_back(K->V);
    }
    replaceWithValue(E, Value::tuple(std::move(Elems)), Ctx.Stats);
    return;
  }

  case ExprKind::PureIf:
  case ExprKind::EIf: {
    bool C;
    if (!boolVal(*E->Kids[0], C))
      return; // non-boolean conditions error dynamically; keep them
    size_t Taken = C ? 1 : 2, Other = C ? 2 : 1;
    // The untaken branch can carry a save some run routes through
    // (Evaluator::evalJump); dropping it would strand the jump.
    if (containsAnySave(*E->Kids[Other]))
      return;
    ExprPtr T = std::move(E->Kids[Taken]);
    E = std::move(T);
    ++Ctx.Stats.ConstFolds;
    return;
  }

  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Let flattening
//===----------------------------------------------------------------------===//

/// Can `let p1 = (let p2 = e1 in e2) in e3` rotate into the linear
/// `let p2 = e1 in (let p1 = e2 in e3)`? Core symbols are globally unique
/// so capture is impossible; the remaining hazards are sequencing
/// metadata and jump routing:
///  - same kind only (rotating across the pure/effectful boundary or
///    through let-weak would change footprint pairing);
///  - no SeqPoint on either node (footprint-discard boundaries must keep
///    their operand grouping);
///  - for ELet, no save inside the inner let: backward jumps re-enter
///    Kids[0] (Evaluator::evalLet), and that re-entry set must not change.
///    Saves in e3 are fine — both shapes route forward jumps to e3 with
///    every skipped binding unbound (evalJump skips lets whose Kids[0]
///    has no save).
bool rotatable(const Expr &E) {
  if (E.K != ExprKind::PureLet && E.K != ExprKind::ELet)
    return false;
  const Expr &Inner = *E.Kids[0];
  if (Inner.K != E.K || E.SeqPoint || Inner.SeqPoint)
    return false;
  if (E.K == ExprKind::ELet && containsAnySave(Inner))
    return false;
  return true;
}

void flattenLets(ExprPtr &E, LoweringStats &Stats) {
  while (rotatable(*E)) {
    ExprPtr Inner = std::move(E->Kids[0]); // let p2 = e1 in e2
    // Reuse E as the new inner node: let p1 = e2 in e3.
    E->Kids[0] = std::move(Inner->Kids[1]);
    // Reuse Inner as the new outer node: let p2 = e1 in (let p1 = ...).
    Inner->Kids[1] = std::move(E);
    E = std::move(Inner);
    ++Stats.LetsFlattened;
    // The rebuilt continuation may itself be left-nested (e2 was a let).
    flattenLets(E->Kids[1], Stats);
  }
}

void lowerExpr(ExprPtr &E, LowerCtx &Ctx) {
  for (ExprPtr &K : E->Kids)
    lowerExpr(K, Ctx);
  for (auto &[Pat, Body] : E->Branches)
    lowerExpr(Body, Ctx);
  tryFold(E, Ctx);
  flattenLets(E, Ctx.Stats);
}

//===----------------------------------------------------------------------===//
// Slot resolution + constant interning (over the final tree)
//===----------------------------------------------------------------------===//

bool poolable(const Value &V) {
  switch (V.K) {
  case ValueKind::Unit:
  case ValueKind::True:
  case ValueKind::False:
  case ValueKind::Function:
    return true;
  case ValueKind::Ctype:
    return V.Cty.isValid();
  case ValueKind::Integer:
    return V.IV.Prov.isEmpty() && !V.IV.Cap;
  default:
    return false;
  }
}

bool poolEqual(const Value &A, const Value &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case ValueKind::Unit:
  case ValueKind::True:
  case ValueKind::False:
    return true;
  case ValueKind::Function:
    return A.FuncSym == B.FuncSym;
  case ValueKind::Ctype:
    return A.Cty == B.Cty;
  case ValueKind::Integer:
    return A.IV.V == B.IV.V;
  default:
    return false;
  }
}

void internValue(Expr &E, LowerCtx &Ctx) {
  if (!poolable(E.V))
    return;
  for (size_t I = 0; I < Ctx.P.ConstPool.size(); ++I)
    if (poolEqual(Ctx.P.ConstPool[I], E.V)) {
      E.PoolIdx = static_cast<int>(I);
      ++Ctx.Stats.ConstsInterned;
      return;
    }
  E.PoolIdx = static_cast<int>(Ctx.P.ConstPool.size());
  Ctx.P.ConstPool.push_back(E.V);
}

void annotatePattern(Pattern &P, LowerCtx &Ctx) {
  if (P.K == PatKind::Sym)
    P.Slot = Ctx.slot(P.S);
  for (Pattern &Sub : P.Subs)
    annotatePattern(Sub, Ctx);
}

/// Returns the subtree's Save-label bloom (stored in Expr::SaveMask) so
/// the evaluator's jump routing can refute "contains save L?" without
/// walking the tree. Collisions (two labels mod 64) only cost a scan.
uint64_t annotateExpr(Expr &E, LowerCtx &Ctx) {
  if (E.K == ExprKind::Sym)
    E.Slot = Ctx.slot(E.Sym);
  else if (E.K == ExprKind::Val)
    internValue(E, Ctx);
  else if (E.K == ExprKind::PureCall)
    E.Pure = pureFnByName(E.Str);
  annotatePattern(E.Pat, Ctx);
  for (ScopeObject &O : E.Scope)
    O.Slot = Ctx.slot(O.Obj);
  uint64_t Mask = 0;
  for (ExprPtr &K : E.Kids)
    Mask |= annotateExpr(*K, Ctx);
  for (auto &[Pat, Body] : E.Branches) {
    annotatePattern(Pat, Ctx);
    Mask |= annotateExpr(*Body, Ctx);
  }
  if (E.K == ExprKind::Save)
    Mask |= 1ull << (E.Sym.Id & 63);
  E.SaveMask = Mask;

  // ValueOnly: a whitelist of kinds that perform no actions, bind nothing,
  // and raise no signals — so the evaluator's Res-free fast path may run
  // them (and may safely re-run them when it declines an operand shape).
  // Undef/ErrorE are deliberately excluded: they *are* signals.
  switch (E.K) {
  case ExprKind::Val:
  case ExprKind::Sym:
  case ExprKind::Skip:
  case ExprKind::UnspecifiedE:
    E.ValueOnly = true;
    break;
  case ExprKind::Tuple:
  case ExprKind::SpecifiedE:
  case ExprKind::Not:
  case ExprKind::Binop:
  case ExprKind::ConvInt:
  case ExprKind::FinishArith:
  case ExprKind::IsInteger:
  case ExprKind::IsSigned:
  case ExprKind::IsUnsigned:
  case ExprKind::IsScalar:
  case ExprKind::PureIf:
  case ExprKind::EIf:
  case ExprKind::MemberShiftE:
  case ExprKind::PureCall: {
    bool VO = E.K != ExprKind::PureCall ||
              (E.Pure != PureFn::None && E.Kids.size() <= 4);
    for (const ExprPtr &K : E.Kids)
      VO = VO && K->ValueOnly;
    E.ValueOnly = VO;
    break;
  }
  default:
    break; // everything else keeps the default false
  }
  if (E.ValueOnly)
    ++Ctx.Stats.PureNodes;
  return Mask;
}

} // namespace

LoweringStats core::lower(CoreProgram &P) {
  if (P.Lowered)
    return {};
  LowerCtx Ctx(P);

  for (CoreGlobal &G : P.Globals)
    if (G.Init)
      lowerExpr(G.Init, Ctx);
  for (auto &[Id, Proc] : P.Procs)
    if (Proc.Body)
      lowerExpr(Proc.Body, Ctx);

  // Slot numbering is deterministic: globals in declaration order, then
  // procedures in symbol order — params first, then body preorder.
  for (CoreGlobal &G : P.Globals) {
    G.Slot = Ctx.slot(G.Name);
    if (G.Init)
      annotateExpr(*G.Init, Ctx);
  }
  for (auto &[Id, Proc] : P.Procs) {
    Proc.ParamSlots.clear();
    for (const auto &[Sym, Ty] : Proc.Params)
      Proc.ParamSlots.push_back(Ctx.slot(Sym));
    if (Proc.Body)
      annotateExpr(*Proc.Body, Ctx);
  }

  P.NumSlots = static_cast<unsigned>(Ctx.NextSlot);
  P.Lowered = true;
  Ctx.Stats.SlotsAssigned = P.NumSlots;
  Ctx.Stats.PoolSize = static_cast<unsigned>(P.ConstPool.size());
  return Ctx.Stats;
}
