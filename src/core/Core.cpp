//===-- core/Core.cpp -----------------------------------------------------===//

#include "core/Core.h"

#include "support/Format.h"

#include <cassert>
#include <set>

using namespace cerb;
using namespace cerb::core;

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

std::string Value::str() const {
  switch (K) {
  case ValueKind::Unit: return "Unit";
  case ValueKind::True: return "True";
  case ValueKind::False: return "False";
  case ValueKind::Ctype: return "'" + Cty.str() + "'";
  case ValueKind::Integer: return IV.str();
  case ValueKind::Pointer: return PV.str();
  case ValueKind::Function: return fmt("cfunction#{0}", FuncSym);
  case ValueKind::Specified:
    return "Specified(" + Elems[0].str() + ")";
  case ValueKind::Unspecified:
    return "Unspecified('" + Cty.str() + "')";
  case ValueKind::Tuple:
  case ValueKind::List: {
    std::vector<std::string> Parts;
    for (const Value &E : Elems)
      Parts.push_back(E.str());
    return (K == ValueKind::Tuple ? "(" : "[") + join(Parts, ", ") +
           (K == ValueKind::Tuple ? ")" : "]");
  }
  case ValueKind::ArrayV: {
    std::vector<std::string> Parts;
    for (const Value &E : Elems)
      Parts.push_back(E.str());
    return "array(" + join(Parts, ", ") + ")";
  }
  case ValueKind::StructV:
  case ValueKind::UnionV: {
    std::vector<std::string> Parts;
    for (const Value &E : Elems)
      Parts.push_back(E.str());
    return fmt("({0}#{1}){2}", K == ValueKind::StructV ? "struct" : "union",
               Tag, "{" + join(Parts, ", ") + "}");
  }
  case ValueKind::BytesV:
    return fmt("bytes[{0}]", Raw.size());
  }
  return "?";
}

mem::MemValue core::valueToMem(const CType &Ty, const Value &V) {
  switch (V.K) {
  case ValueKind::Unspecified:
    return mem::MemValue::unspecified(Ty);
  case ValueKind::Specified:
    return valueToMem(Ty, V.Elems[0]);
  case ValueKind::Integer:
    return mem::MemValue::integer(Ty, V.IV);
  case ValueKind::Pointer:
    return mem::MemValue::pointer(Ty, V.PV);
  case ValueKind::Function:
    return mem::MemValue::pointer(Ty, mem::PointerValue::function(V.FuncSym));
  case ValueKind::ArrayV: {
    std::vector<mem::MemValue> Elems;
    assert(Ty.isArray() && "array value at non-array type");
    for (const Value &E : V.Elems)
      Elems.push_back(valueToMem(Ty.element(), E));
    return mem::MemValue::array(std::move(Elems));
  }
  case ValueKind::StructV: {
    std::vector<mem::MemValue> Members;
    // Member types come from the tag table via Ty; the elaboration built
    // the element values at the right types already.
    assert(Ty.isStruct() && "struct value at non-struct type");
    for (size_t I = 0; I < V.Elems.size(); ++I)
      Members.push_back(valueToMem(CType(), V.Elems[I]));
    return mem::MemValue::structure(V.Tag, std::move(Members));
  }
  case ValueKind::UnionV:
    return mem::MemValue::unionValue(V.Tag, V.ActiveMember,
                                     valueToMem(CType(), V.Elems[0]));
  case ValueKind::BytesV:
    return mem::makeBytesValue(Ty, V.Raw);
  default:
    assert(false && "value has no memory representation");
    return mem::MemValue::unspecified(Ty);
  }
}

Value core::memToValue(const mem::MemValue &MV) {
  switch (MV.Kind) {
  case mem::MemValueKind::Unspecified:
    return Value::unspecified(MV.Ty);
  case mem::MemValueKind::Integer:
    return Value::specified(Value::integer(MV.IV));
  case mem::MemValueKind::Pointer:
    if (MV.PV.isFunction())
      return Value::specified(Value::function(*MV.PV.FuncSym));
    return Value::specified(Value::pointer(MV.PV));
  case mem::MemValueKind::Array: {
    std::vector<Value> Elems;
    for (const mem::MemValue &E : MV.Elems)
      Elems.push_back(memToValue(E));
    Value V;
    V.K = ValueKind::ArrayV;
    V.Elems = std::move(Elems);
    return Value::specified(std::move(V));
  }
  case mem::MemValueKind::Struct:
  case mem::MemValueKind::Union: {
    std::vector<Value> Elems;
    for (const mem::MemValue &E : MV.Elems)
      Elems.push_back(memToValue(E));
    Value V;
    V.K = MV.Kind == mem::MemValueKind::Struct ? ValueKind::StructV
                                               : ValueKind::UnionV;
    V.Tag = MV.Tag;
    V.ActiveMember = MV.ActiveMember;
    V.Elems = std::move(Elems);
    return Value::specified(std::move(V));
  }
  case mem::MemValueKind::Bytes: {
    Value V;
    V.K = ValueKind::BytesV;
    V.Cty = MV.Ty;
    V.Raw = MV.Raw;
    return Value::specified(std::move(V));
  }
  }
  return Value::unit();
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

std::string Pattern::str(const ail::SymbolTable &Syms) const {
  switch (K) {
  case PatKind::Wild:
    return "_";
  case PatKind::Sym:
    return Syms.nameOf(S);
  case PatKind::Tuple: {
    std::vector<std::string> Parts;
    for (const Pattern &P : Subs)
      Parts.push_back(P.str(Syms));
    return "(" + join(Parts, ", ") + ")";
  }
  case PatKind::SpecifiedP:
    return "Specified(" + Subs[0].str(Syms) + ")";
  case PatKind::UnspecifiedP:
    return "Unspecified(_)";
  }
  return "?";
}

std::string_view core::coreBinopSpelling(CoreBinop Op) {
  switch (Op) {
  case CoreBinop::Add: return "+";
  case CoreBinop::Sub: return "-";
  case CoreBinop::Mul: return "*";
  case CoreBinop::Div: return "/";
  case CoreBinop::RemT: return "rem_t";
  case CoreBinop::Exp: return "^";
  case CoreBinop::Eq: return "=";
  case CoreBinop::Lt: return "<";
  case CoreBinop::Le: return "<=";
  case CoreBinop::Gt: return ">";
  case CoreBinop::Ge: return ">=";
  case CoreBinop::And: return "/\\";
  case CoreBinop::Or: return "\\/";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Pretty printer
//===----------------------------------------------------------------------===//

namespace {

std::string ind(unsigned N) { return std::string(2 * N, ' '); }

std::string_view ptrOpName(PtrOpKind K) {
  switch (K) {
  case PtrOpKind::PtrEq: return "pointer_eq";
  case PtrOpKind::PtrNe: return "pointer_ne";
  case PtrOpKind::PtrLt: return "pointer_lt";
  case PtrOpKind::PtrGt: return "pointer_gt";
  case PtrOpKind::PtrLe: return "pointer_le";
  case PtrOpKind::PtrGe: return "pointer_ge";
  case PtrOpKind::PtrDiff: return "ptrdiff";
  case PtrOpKind::IntFromPtr: return "intFromPtr";
  case PtrOpKind::PtrFromInt: return "ptrFromInt";
  case PtrOpKind::PtrValidForDeref: return "ptrValidForDeref";
  case PtrOpKind::CastPtr: return "cast_ptr";
  }
  return "?";
}

std::string_view actionName(ActionKind K) {
  switch (K) {
  case ActionKind::Create: return "create";
  case ActionKind::Alloc: return "alloc";
  case ActionKind::Kill: return "kill";
  case ActionKind::Free: return "free";
  case ActionKind::Store: return "store";
  case ActionKind::Load: return "load";
  }
  return "?";
}

std::string_view arithOpName(mem::ArithOp Op) {
  switch (Op) {
  case mem::ArithOp::Add: return "add";
  case mem::ArithOp::Sub: return "sub";
  case mem::ArithOp::Mul: return "mul";
  case mem::ArithOp::Div: return "div";
  case mem::ArithOp::Rem: return "rem";
  case mem::ArithOp::Shl: return "shl";
  case mem::ArithOp::Shr: return "shr";
  case mem::ArithOp::And: return "band";
  case mem::ArithOp::Or: return "bor";
  case mem::ArithOp::Xor: return "bxor";
  }
  return "?";
}

} // namespace

std::string core::printExpr(const Expr &E, const ail::SymbolTable &Syms,
                            unsigned Indent) {
  auto Kid = [&](size_t I) { return printExpr(*E.Kids[I], Syms, Indent); };
  auto KidI = [&](size_t I, unsigned Extra) {
    return printExpr(*E.Kids[I], Syms, Indent + Extra);
  };
  switch (E.K) {
  case ExprKind::Sym:
    return Syms.nameOf(E.Sym);
  case ExprKind::Val:
    return E.V.str();
  case ExprKind::ImplConst:
    return "<" + E.Str + ">";
  case ExprKind::Undef:
    return fmt("undef({0})", mem::ubName(E.UB));
  case ExprKind::ErrorE:
    return fmt("error(\"{0}\")", E.Str);
  case ExprKind::Tuple: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    return "(" + join(Parts, ", ") + ")";
  }
  case ExprKind::SpecifiedE:
    return "Specified(" + Kid(0) + ")";
  case ExprKind::UnspecifiedE:
    return "Unspecified('" + E.Cty.str() + "')";
  case ExprKind::Case:
  case ExprKind::ECase: {
    std::string Out = "case " + Kid(0) + " with\n";
    for (const auto &[Pat, Body] : E.Branches)
      Out += ind(Indent + 1) + "| " + Pat.str(Syms) + " =>\n" +
             ind(Indent + 2) + printExpr(*Body, Syms, Indent + 2) + "\n";
    Out += ind(Indent) + "end";
    return Out;
  }
  case ExprKind::ArrayShiftE:
    return fmt("array_shift({0}, '{1}', {2})", Kid(0), E.Cty.str(), Kid(1));
  case ExprKind::MemberShiftE:
    return fmt("member_shift({0}, tag#{1}.{2})", Kid(0), E.Tag, E.MemberIdx);
  case ExprKind::Not:
    return "not(" + Kid(0) + ")";
  case ExprKind::Binop:
    return "(" + Kid(0) + " " + std::string(coreBinopSpelling(E.BOp)) + " " +
           Kid(1) + ")";
  case ExprKind::PureCall: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    return E.Str + "(" + join(Parts, ", ") + ")";
  }
  case ExprKind::PureLet:
    return "let " + E.Pat.str(Syms) + " = " + Kid(0) + " in\n" +
           ind(Indent) + KidI(1, 0);
  case ExprKind::PureIf:
  case ExprKind::EIf:
    return "if " + Kid(0) + " then\n" + ind(Indent + 1) + KidI(1, 1) + "\n" +
           ind(Indent) + "else\n" + ind(Indent + 1) + KidI(2, 1);
  case ExprKind::IsInteger:
    return "is_integer(" + Kid(0) + ")";
  case ExprKind::IsSigned:
    return "is_signed(" + Kid(0) + ")";
  case ExprKind::IsUnsigned:
    return "is_unsigned(" + Kid(0) + ")";
  case ExprKind::IsScalar:
    return "is_scalar(" + Kid(0) + ")";
  case ExprKind::FinishArith:
    return fmt("finish_arith[{0}, '{1}']({2}, {3}, {4})",
               arithOpName(E.AOp), E.Cty.str(), Kid(0), Kid(1), Kid(2));
  case ExprKind::ConvInt:
    return fmt("conv_int('{0}', {1})", E.Cty.str(), Kid(0));
  case ExprKind::PtrOp: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    std::string Name = std::string(ptrOpName(E.POp));
    if (E.POp == PtrOpKind::IntFromPtr || E.POp == PtrOpKind::PtrFromInt)
      Name += fmt("['{0}']", E.Cty.str());
    return "ptrop(" + Name + ", " + join(Parts, ", ") + ")";
  }
  case ExprKind::Action: {
    std::vector<std::string> Parts;
    if (E.Act == ActionKind::Create)
      Parts.push_back("'" + E.Cty.str() + "'");
    if (E.Act == ActionKind::Store || E.Act == ActionKind::Load)
      Parts.push_back("'" + E.Cty.str() + "'");
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    if (E.AtomicAccess)
      Parts.push_back("seq_cst");
    std::string Out =
        std::string(actionName(E.Act)) + "(" + join(Parts, ", ") + ")";
    if (E.NegPolarity)
      return "neg(" + Out + ")";
    return Out;
  }
  case ExprKind::Skip:
    return "skip";
  case ExprKind::ELet:
    return "let " + E.Pat.str(Syms) + " = " + Kid(0) + " in\n" +
           ind(Indent) + KidI(1, 0);
  case ExprKind::ProcCall: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    return "pcall(" + Syms.nameOf(E.Sym) +
           (Parts.empty() ? "" : ", " + join(Parts, ", ")) + ")";
  }
  case ExprKind::CallPtr: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    return "pcall_indirect(" + join(Parts, ", ") + ")";
  }
  case ExprKind::Ret:
    return "return(" + Kid(0) + ")";
  case ExprKind::Unseq: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    return "unseq(" + join(Parts, ", ") + ")";
  }
  case ExprKind::LetWeak:
    return "let weak " + E.Pat.str(Syms) + " = " + Kid(0) + " in\n" +
           ind(Indent) + KidI(1, 0);
  case ExprKind::LetStrong:
    return "let strong " + E.Pat.str(Syms) + " = " + Kid(0) + " in\n" +
           ind(Indent) + KidI(1, 0);
  case ExprKind::LetAtomic:
    return "let atomic " + E.Pat.str(Syms) + " = " + Kid(0) + " in " +
           Kid(1);
  case ExprKind::Indet:
    return fmt("indet[{0}](", E.IndetId) + Kid(0) + ")";
  case ExprKind::Bound:
    return fmt("bound[{0}](", E.IndetId) + Kid(0) + ")";
  case ExprKind::Nd: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    return "nd(" + join(Parts, ", ") + ")";
  }
  case ExprKind::Save: {
    std::string Out = "save " + Syms.nameOf(E.Sym) + "(";
    std::vector<std::string> Objs;
    for (const ScopeObject &O : E.Scope)
      Objs.push_back(Syms.nameOf(O.Obj) + ": '" + O.Ty.str() + "'");
    Out += join(Objs, ", ") + ") in\n" + ind(Indent + 1) + KidI(0, 1);
    return Out;
  }
  case ExprKind::Run:
    return "run " + Syms.nameOf(E.Sym) + "()";
  case ExprKind::Par: {
    std::vector<std::string> Parts;
    for (size_t I = 0; I < E.Kids.size(); ++I)
      Parts.push_back(Kid(I));
    return "par(" + join(Parts, ", ") + ")";
  }
  case ExprKind::Wait:
    return "wait(" + Kid(0) + ")";
  }
  return "?";
}

std::string core::printProgram(const CoreProgram &P) {
  std::string Out;
  for (const CoreGlobal &G : P.Globals) {
    Out += fmt("glob {0}: '{1}'", P.Syms.nameOf(G.Name), G.Ty.str());
    if (G.Init)
      Out += " :=\n  " + printExpr(*G.Init, P.Syms, 1);
    Out += "\n\n";
  }
  for (const auto &[Id, Proc] : P.Procs) {
    std::vector<std::string> Params;
    for (const auto &[S, Ty] : Proc.Params)
      Params.push_back(P.Syms.nameOf(S) + ": '" + Ty.str() + "'");
    Out += fmt("proc {0}({1}): eff loaded '{2}' :=\n  ",
               P.Syms.nameOf(Proc.Name), join(Params, ", "),
               Proc.ReturnTy.str());
    Out += printExpr(*Proc.Body, P.Syms, 1);
    Out += "\n\n";
  }
  return Out;
}

std::string core::coreGrammarSummary() {
  return R"(Core syntax (regenerating the shape of paper Fig. 2)
=====================================================

object types   oTy    ::= integer | floating | pointer | cfunction
                        | array(oTy) | struct tag | union tag
base types     bTy    ::= unit | boolean | ctype | [bTy] | (bTy, ..)
                        | oTy | loaded oTy
core types     coreTy ::= bTy | eff bTy

values         v      ::= Unit | True | False | ctype
                        | intval | ptrval | cfunction-name
                        | array(v..) | (struct tag){..} | (union tag){..}
                        | Specified(v) | Unspecified(ctype)
                        | [v, ..] | (v, ..)

patterns       pat    ::= _ | ident | ctor(pat, ..)

pure exprs     pe     ::= ident | <impl-const> | v
                        | undef(ub-name) | error(msg, pe)
                        | ctor(pe..) | case pe with |pat => pe.. end
                        | array_shift(pe, ctype, pe)
                        | member_shift(pe, tag.member)
                        | not(pe) | pe binop pe
                        | (struct tag){..} | (union tag){..}
                        | name(pe..) | let pat = pe in pe
                        | if pe then pe else pe
                        | is_scalar(pe) | is_integer(pe)
                        | is_signed(pe) | is_unsigned(pe)

pointer ops    ptrop  ::= pointer-equality | pointer-relational | ptrdiff
                        | intFromPtr | ptrFromInt | ptrValidForDeref

actions        a      ::= create(pe, pe) | alloc(pe, pe) | kill(pe)
                        | store(pe, pe, pe, memory-order)
                        | load(pe, pe, memory-order)
                        | rmw(...)
polarised      pa     ::= a | neg(a)

effects        e      ::= pure(pe) | ptrop(ptrop, pe..) | pa
                        | case pe with |pat => e.. end
                        | let pat = pe in e | if pe then e else e | skip
                        | pcall(pe, pe..) | return(pe)
                        | unseq(e, ..)
                        | let weak pat = e in e
                        | let strong pat = e in e
                        | let atomic (sym: oTy) = a in pa
                        | indet[n](e) | bound[n](e)
                        | nd(e, ..)
                        | save label(ident: ctype ..) in e
                        | run label(ident := pe ..)
                        | par(e, ..) | wait(thread-id)

definitions    def    ::= fun name(ident: bTy ..): bTy := pe
                        | proc name(ident: bTy ..): eff bTy := e
)";
}

PureFn core::pureFnByName(std::string_view Name) {
  if (Name == "is_representable")
    return PureFn::IsRepresentable;
  if (Name == "shr_arith")
    return PureFn::ShrArith;
  if (Name == "bw_and")
    return PureFn::BwAnd;
  if (Name == "bw_or")
    return PureFn::BwOr;
  if (Name == "bw_xor")
    return PureFn::BwXor;
  if (Name == "bw_compl")
    return PureFn::BwCompl;
  return PureFn::None;
}

ExprPtr core::cloneExpr(const Expr &E) {
  auto Out = std::make_unique<Expr>();
  Out->K = E.K;
  Out->Loc = E.Loc;
  Out->Sym = E.Sym;
  Out->V = E.V;
  Out->UB = E.UB;
  Out->Str = E.Str;
  Out->BOp = E.BOp;
  Out->AOp = E.AOp;
  Out->POp = E.POp;
  Out->Act = E.Act;
  Out->NegPolarity = E.NegPolarity;
  Out->AtomicAccess = E.AtomicAccess;
  Out->Cty = E.Cty;
  Out->Tag = E.Tag;
  Out->MemberIdx = E.MemberIdx;
  Out->IndetId = E.IndetId;
  Out->SeqPoint = E.SeqPoint;
  Out->Slot = E.Slot;
  Out->PoolIdx = E.PoolIdx;
  Out->SaveMask = E.SaveMask;
  Out->Pure = E.Pure;
  Out->ValueOnly = E.ValueOnly;
  Out->Pat = E.Pat;
  Out->Scope = E.Scope;
  for (const ExprPtr &K : E.Kids)
    Out->Kids.push_back(cloneExpr(*K));
  for (const auto &[Pat, Body] : E.Branches)
    Out->Branches.emplace_back(Pat, cloneExpr(*Body));
  return Out;
}

//===----------------------------------------------------------------------===//
// Core-to-Core rewrites
//===----------------------------------------------------------------------===//

namespace {

bool isValueExpr(const Expr &E) { return E.K == ExprKind::Val; }

void rewriteExpr(ExprPtr &E, RewriteStats &Stats) {
  for (ExprPtr &K : E->Kids)
    rewriteExpr(K, Stats);
  for (auto &[Pat, Body] : E->Branches)
    rewriteExpr(Body, Stats);

  switch (E->K) {
  case ExprKind::Unseq:
    if (E->Kids.size() == 1) {
      // unseq(e) has the sequencing of e itself, but reduces to a 1-tuple;
      // our elaboration only emits singleton unseqs bound by tuple patterns
      // of width 1, which it never does — collapse is safe only when some
      // enclosing pattern is not a tuple, so we leave semantics alone and
      // only count (kept conservative).
      ++Stats.UnseqSingletons;
    }
    break;
  case ExprKind::PureIf:
  case ExprKind::EIf:
    if (E->Kids[0]->K == ExprKind::Val) {
      bool Cond = E->Kids[0]->V.isTrue();
      ExprPtr Taken = std::move(E->Kids[Cond ? 1 : 2]);
      E = std::move(Taken);
      ++Stats.ConstIfsFolded;
    }
    break;
  case ExprKind::PureLet:
  case ExprKind::ELet:
    // let x = v in x  ->  v ; and let _ = v in e -> e for pure v.
    if (E->Pat.K == PatKind::Wild && isValueExpr(*E->Kids[0])) {
      ExprPtr Body = std::move(E->Kids[1]);
      E = std::move(Body);
      ++Stats.PureLetsInlined;
      break;
    }
    if (E->Pat.K == PatKind::Sym && isValueExpr(*E->Kids[0]) &&
        E->Kids[1]->K == ExprKind::Sym && E->Kids[1]->Sym == E->Pat.S) {
      ExprPtr V = std::move(E->Kids[0]);
      E = std::move(V);
      ++Stats.PureLetsInlined;
    }
    break;
  case ExprKind::LetStrong:
    // let strong _ = skip in e  ->  e
    if (E->Pat.K == PatKind::Wild && E->Kids[0]->K == ExprKind::Skip) {
      ExprPtr Body = std::move(E->Kids[1]);
      E = std::move(Body);
      ++Stats.SkipSeqsDropped;
    }
    break;
  default:
    break;
  }
}

} // namespace

bool core::hasEffects(const Expr &E) {
  if (E.HasEffectsCache >= 0)
    return E.HasEffectsCache != 0;
  bool R = (E.K == ExprKind::Action && E.Act != ActionKind::Load) ||
           E.K == ExprKind::ProcCall || E.K == ExprKind::CallPtr ||
           E.K == ExprKind::Nd || E.K == ExprKind::Par;
  if (!R) {
    for (const ExprPtr &K : E.Kids)
      if (hasEffects(*K)) {
        R = true;
        break;
      }
    if (!R)
      for (const auto &[Pat, Body] : E.Branches)
        if (hasEffects(*Body)) {
          R = true;
          break;
        }
  }
  E.HasEffectsCache = R ? 1 : 0;
  return R;
}

namespace {
/// Full traversal (no early exit, unlike hasEffects itself) so that every
/// node's cache is populated, not just the prefix a lazy query touches.
void warmExpr(const Expr &E) {
  for (const ExprPtr &K : E.Kids)
    warmExpr(*K);
  for (const auto &[Pat, Body] : E.Branches)
    warmExpr(*Body);
  (void)core::hasEffects(E);
}
} // namespace

void core::warmDynamicsCaches(const CoreProgram &P) {
  for (const auto &[Id, Proc] : P.Procs)
    if (Proc.Body)
      warmExpr(*Proc.Body);
  for (const CoreGlobal &G : P.Globals)
    if (G.Init)
      warmExpr(*G.Init);
}

RewriteStats core::rewrite(CoreProgram &P) {
  RewriteStats Stats;
  for (auto &[Id, Proc] : P.Procs)
    rewriteExpr(Proc.Body, Stats);
  for (CoreGlobal &G : P.Globals)
    if (G.Init)
      rewriteExpr(G.Init, Stats);
  return Stats;
}

//===----------------------------------------------------------------------===//
// Core checking (purity discipline)
//===----------------------------------------------------------------------===//

namespace {

bool isPureKind(ExprKind K) {
  switch (K) {
  case ExprKind::Sym: case ExprKind::Val: case ExprKind::ImplConst:
  case ExprKind::Undef: case ExprKind::ErrorE: case ExprKind::Tuple:
  case ExprKind::SpecifiedE: case ExprKind::UnspecifiedE:
  case ExprKind::Case: case ExprKind::ArrayShiftE:
  case ExprKind::MemberShiftE: case ExprKind::Not: case ExprKind::Binop:
  case ExprKind::PureCall: case ExprKind::PureLet: case ExprKind::PureIf:
  case ExprKind::IsInteger: case ExprKind::IsSigned:
  case ExprKind::IsUnsigned: case ExprKind::IsScalar:
  case ExprKind::FinishArith: case ExprKind::ConvInt:
    return true;
  default:
    return false;
  }
}

/// Checks the purity discipline: pure contexts must not contain effects.
std::optional<std::string> checkPurity(const Expr &E, bool PureContext,
                                       const ail::SymbolTable &Syms) {
  if (PureContext && !isPureKind(E.K))
    return fmt("effectful Core construct in a pure context at {0}",
               E.Loc.str());

  switch (E.K) {
  // Pure constructs: all children pure.
  case ExprKind::Tuple: case ExprKind::SpecifiedE: case ExprKind::Case:
  case ExprKind::ArrayShiftE: case ExprKind::MemberShiftE:
  case ExprKind::Not: case ExprKind::Binop: case ExprKind::PureCall:
  case ExprKind::PureLet: case ExprKind::PureIf: case ExprKind::IsInteger:
  case ExprKind::IsSigned: case ExprKind::IsUnsigned: case ExprKind::IsScalar:
  case ExprKind::FinishArith: case ExprKind::ConvInt:
    for (const ExprPtr &K : E.Kids)
      if (auto R = checkPurity(*K, true, Syms))
        return R;
    for (const auto &[Pat, Body] : E.Branches)
      if (auto R = checkPurity(*Body, true, Syms))
        return R;
    return std::nullopt;

  case ExprKind::Sym: case ExprKind::Val: case ExprKind::ImplConst:
  case ExprKind::Undef: case ExprKind::ErrorE: case ExprKind::UnspecifiedE:
  case ExprKind::Skip:
    return std::nullopt;

  // Effectful constructs whose *scrutinees/operands* must be pure but whose
  // bodies are effectful (Fig. 2: `let pat = pe in e`, `if pe then e1 else
  // e2`, case pe with effect branches).
  case ExprKind::ELet:
    if (auto R = checkPurity(*E.Kids[0], true, Syms))
      return R;
    return checkPurity(*E.Kids[1], PureContext, Syms);
  case ExprKind::EIf:
    if (auto R = checkPurity(*E.Kids[0], true, Syms))
      return R;
    if (auto R = checkPurity(*E.Kids[1], PureContext, Syms))
      return R;
    return checkPurity(*E.Kids[2], PureContext, Syms);
  case ExprKind::ECase:
    if (auto R = checkPurity(*E.Kids[0], true, Syms))
      return R;
    for (const auto &[Pat, Body] : E.Branches)
      if (auto R = checkPurity(*Body, PureContext, Syms))
        return R;
    return std::nullopt;

  // Actions and pointer ops: operands pure.
  case ExprKind::Action:
  case ExprKind::PtrOp:
  case ExprKind::Ret:
  case ExprKind::ProcCall:
  case ExprKind::CallPtr:
  case ExprKind::Run:
  case ExprKind::Wait:
    for (const ExprPtr &K : E.Kids)
      if (auto R = checkPurity(*K, true, Syms))
        return R;
    return std::nullopt;

  // Sequencing: children effectful.
  case ExprKind::Unseq:
  case ExprKind::Nd:
  case ExprKind::Par:
    for (const ExprPtr &K : E.Kids)
      if (auto R = checkPurity(*K, false, Syms))
        return R;
    return std::nullopt;
  case ExprKind::LetWeak:
  case ExprKind::LetStrong:
    if (auto R = checkPurity(*E.Kids[0], false, Syms))
      return R;
    return checkPurity(*E.Kids[1], false, Syms);
  case ExprKind::LetAtomic: {
    // Both sides must be actions (possibly negated), Fig. 2.
    for (const ExprPtr &K : E.Kids)
      if (K->K != ExprKind::Action)
        return fmt("let atomic operand is not a memory action at {0}",
                   E.Loc.str());
    for (const ExprPtr &K : E.Kids)
      for (const ExprPtr &Sub : K->Kids)
        if (auto R = checkPurity(*Sub, true, Syms))
          return R;
    return std::nullopt;
  }
  case ExprKind::Indet:
  case ExprKind::Bound:
  case ExprKind::Save:
    return checkPurity(*E.Kids[0], false, Syms);
  }
  return std::nullopt;
}

} // namespace

bool core::isPureExpr(const Expr &E) {
  if (!isPureKind(E.K))
    return false;
  for (const ExprPtr &K : E.Kids)
    if (!isPureExpr(*K))
      return false;
  for (const auto &[Pat, Body] : E.Branches)
    if (!isPureExpr(*Body))
      return false;
  return true;
}

namespace {

/// Static scoping discipline: every Core identifier must be lexically
/// bound (globals, value parameters, let/case patterns), every `run` must
/// target a `save` of the same procedure, and every pcall a known
/// procedure or builtin. Catches elaboration bugs before the dynamics can
/// hit an "unbound identifier" at run time.
class ScopeChecker {
public:
  ScopeChecker(const CoreProgram &P) : P(P) {
    for (const CoreGlobal &G : P.Globals)
      Bound.insert(G.Name.Id);
  }

  std::optional<std::string> check(const Expr &E) {
    switch (E.K) {
    case ExprKind::Sym:
      if (!Bound.count(E.Sym.Id))
        return fmt("unbound Core identifier '{0}' at {1}",
                   P.Syms.nameOf(E.Sym), E.Loc.str());
      return std::nullopt;
    case ExprKind::ProcCall:
      if (!P.Procs.count(E.Sym.Id) && !P.Builtins.count(E.Sym.Id))
        return fmt("pcall of unknown procedure '{0}' at {1}",
                   P.Syms.nameOf(E.Sym), E.Loc.str());
      return checkKids(E);
    case ExprKind::Run:
      if (!Labels.count(E.Sym.Id))
        return fmt("run of unknown label '{0}' at {1}",
                   P.Syms.nameOf(E.Sym), E.Loc.str());
      return checkKids(E);
    case ExprKind::PureLet:
    case ExprKind::ELet:
    case ExprKind::LetWeak:
    case ExprKind::LetStrong:
    case ExprKind::LetAtomic: {
      if (auto R = check(*E.Kids[0]))
        return R;
      size_t Mark = Introduced.size();
      bindPattern(E.Pat);
      auto R = check(*E.Kids[1]);
      unbindTo(Mark);
      return R;
    }
    case ExprKind::Case:
    case ExprKind::ECase: {
      if (auto R = check(*E.Kids[0]))
        return R;
      for (const auto &[Pat, Body] : E.Branches) {
        size_t Mark = Introduced.size();
        bindPattern(Pat);
        auto R = check(*Body);
        unbindTo(Mark);
        if (R)
          return R;
      }
      return std::nullopt;
    }
    default:
      return checkKids(E);
    }
  }

  void collectLabels(const Expr &E) {
    if (E.K == ExprKind::Save)
      Labels.insert(E.Sym.Id);
    for (const ExprPtr &K : E.Kids)
      collectLabels(*K);
    for (const auto &[Pat, Body] : E.Branches)
      collectLabels(*Body);
  }

  void bind(unsigned Id) {
    if (Bound.insert(Id).second)
      Introduced.push_back(Id);
  }
  void resetProc() {
    Labels.clear();
  }

private:
  const CoreProgram &P;
  std::set<unsigned> Bound;
  std::set<unsigned> Labels;
  std::vector<unsigned> Introduced;

  std::optional<std::string> checkKids(const Expr &E) {
    for (const ExprPtr &K : E.Kids)
      if (auto R = check(*K))
        return R;
    for (const auto &[Pat, Body] : E.Branches)
      if (auto R = check(*Body))
        return R;
    return std::nullopt;
  }
  void bindPattern(const Pattern &Pat) {
    if (Pat.K == PatKind::Sym)
      bind(Pat.S.Id);
    for (const Pattern &Sub : Pat.Subs)
      bindPattern(Sub);
  }
  void unbindTo(size_t Mark) {
    while (Introduced.size() > Mark) {
      Bound.erase(Introduced.back());
      Introduced.pop_back();
    }
  }
};

} // namespace

std::optional<std::string> core::typeCheck(const CoreProgram &P) {
  ScopeChecker Scopes(P);
  for (const auto &[Id, Proc] : P.Procs) {
    if (!Proc.Body)
      return fmt("procedure '{0}' has no body", P.Syms.nameOf(Proc.Name));
    if (auto R = checkPurity(*Proc.Body, false, P.Syms))
      return fmt("in procedure '{0}': ", P.Syms.nameOf(Proc.Name)) + *R;
    Scopes.resetProc();
    Scopes.collectLabels(*Proc.Body);
    for (const auto &[Sym, Ty] : Proc.Params)
      Scopes.bind(Sym.Id);
    if (auto R = Scopes.check(*Proc.Body))
      return fmt("in procedure '{0}': ", P.Syms.nameOf(Proc.Name)) + *R;
  }
  for (const CoreGlobal &G : P.Globals)
    if (G.Init) {
      if (auto R = checkPurity(*G.Init, false, P.Syms))
        return fmt("in global '{0}': ", P.Syms.nameOf(G.Name)) + *R;
      Scopes.resetProc();
      if (auto R = Scopes.check(*G.Init))
        return fmt("in global '{0}': ", P.Syms.nameOf(G.Name)) + *R;
    }
  return std::nullopt;
}
