//===-- core/Core.h - The Core calculus (paper Fig. 2) ----------*- C++ -*-===//
///
/// \file
/// Core is "a typed call-by-value calculus with constructs to model certain
/// aspects of the C dynamic semantics" (§5.2): first-order functions,
/// lists, tuples, booleans, mathematical integers, C pointer values, C
/// function designators, and first-class C type expressions (ctype). The
/// novel sequencing forms (§5.6) — unseq, let weak, let strong, let atomic,
/// indet/bound, nd — express the C evaluation order; save/run give a
/// structured goto (§5.8); create/kill/load/store actions factor all memory
/// interaction through the memory object model (§5.7).
///
/// We use one expression datatype for both the pure (`pe`) and effectful
/// (`e`) layers of Fig. 2; the purity discipline is enforced by
/// core::typeCheck (pure vs effectful base types).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CORE_CORE_H
#define CERB_CORE_CORE_H

#include "ail/Ail.h"
#include "mem/UB.h"
#include "mem/Value.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cerb::core {

using ail::CType;
using ail::Symbol;

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

enum class ValueKind {
  Unit,
  True,
  False,
  Ctype,       ///< a C type expression as a first-class value
  Integer,     ///< memory-model integer value (provenance-carrying)
  Pointer,     ///< memory-model pointer value
  Function,    ///< C function designator
  Specified,   ///< loaded value: Specified(object value) — Elems[0]
  Unspecified, ///< loaded value: Unspecified(ctype)
  Tuple,
  List,
  ArrayV,      ///< C array object value
  StructV,     ///< C struct object value (Tag, member values)
  UnionV,      ///< C union object value (Tag, ActiveMember, Elems[0])
  BytesV,      ///< opaque aggregate byte image (whole struct/union values)
};

struct Value {
  ValueKind K = ValueKind::Unit;
  mem::IntegerValue IV;         // Integer
  mem::PointerValue PV;         // Pointer
  CType Cty;                    // Ctype / Unspecified / BytesV type
  unsigned FuncSym = 0;         // Function
  unsigned Tag = 0;             // StructV/UnionV
  size_t ActiveMember = 0;      // UnionV
  std::vector<Value> Elems;     // Tuple/List/ArrayV/StructV/Specified(1)
  std::vector<mem::MemByte> Raw; // BytesV

  static Value unit() { return Value{}; }
  static Value boolean(bool B) {
    Value V;
    V.K = B ? ValueKind::True : ValueKind::False;
    return V;
  }
  static Value ctype(CType Ty) {
    Value V;
    V.K = ValueKind::Ctype;
    V.Cty = std::move(Ty);
    return V;
  }
  static Value integer(mem::IntegerValue IV) {
    Value V;
    V.K = ValueKind::Integer;
    V.IV = IV;
    return V;
  }
  static Value integer(Int128 N) { return integer(mem::IntegerValue(N)); }
  static Value pointer(mem::PointerValue PV) {
    Value V;
    V.K = ValueKind::Pointer;
    V.PV = PV;
    return V;
  }
  static Value function(unsigned Sym) {
    Value V;
    V.K = ValueKind::Function;
    V.FuncSym = Sym;
    return V;
  }
  static Value specified(Value Inner) {
    Value V;
    V.K = ValueKind::Specified;
    V.Elems.push_back(std::move(Inner));
    return V;
  }
  static Value unspecified(CType Ty) {
    Value V;
    V.K = ValueKind::Unspecified;
    V.Cty = std::move(Ty);
    return V;
  }
  static Value tuple(std::vector<Value> Elems) {
    Value V;
    V.K = ValueKind::Tuple;
    V.Elems = std::move(Elems);
    return V;
  }
  static Value list(std::vector<Value> Elems) {
    Value V;
    V.K = ValueKind::List;
    V.Elems = std::move(Elems);
    return V;
  }

  bool isTrue() const { return K == ValueKind::True; }
  bool isSpecified() const { return K == ValueKind::Specified; }

  std::string str() const;
};

/// Converts a Core object value to a memory value of C type \p Ty (for
/// store actions) and back (after load actions).
mem::MemValue valueToMem(const CType &Ty, const Value &V);
Value memToValue(const mem::MemValue &MV);

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

enum class PatKind { Wild, Sym, Tuple, SpecifiedP, UnspecifiedP };

struct Pattern {
  PatKind K = PatKind::Wild;
  Symbol S;
  std::vector<Pattern> Subs;
  /// Dense environment-slot index for Sym patterns, assigned by
  /// core::lower (-1 until lowered). The evaluator's slot-vector fast
  /// path binds through this instead of the name-keyed map.
  int Slot = -1;

  static Pattern wild() { return Pattern{}; }
  static Pattern sym(Symbol Sym) {
    Pattern P;
    P.K = PatKind::Sym;
    P.S = Sym;
    return P;
  }
  static Pattern tuple(std::vector<Pattern> Subs) {
    Pattern P;
    P.K = PatKind::Tuple;
    P.Subs = std::move(Subs);
    return P;
  }
  static Pattern specified(Pattern Sub) {
    Pattern P;
    P.K = PatKind::SpecifiedP;
    P.Subs.push_back(std::move(Sub));
    return P;
  }
  static Pattern unspecified() {
    Pattern P;
    P.K = PatKind::UnspecifiedP;
    return P;
  }

  std::string str(const ail::SymbolTable &Syms) const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Core binary operators over mathematical integers / booleans.
enum class CoreBinop {
  Add, Sub, Mul, Div, RemT, Exp,
  Eq, Lt, Le, Gt, Ge,
  And, Or,
};

std::string_view coreBinopSpelling(CoreBinop Op);

/// Pointer operations involving the memory state (Fig. 2 ptrop).
enum class PtrOpKind {
  PtrEq, PtrNe, PtrLt, PtrGt, PtrLe, PtrGe,
  PtrDiff,
  IntFromPtr, ///< Cty = target integer type
  PtrFromInt, ///< Cty = target pointer type
  PtrValidForDeref,
  CastPtr,    ///< pointer-to-pointer cast (model hook; CHERI narrows)
};

/// Memory actions (Fig. 2 `a`). Kill frees; Create/Alloc allocate.
enum class ActionKind {
  Create, ///< create object: Cty = object type, Str = name hint
  Alloc,  ///< allocate region: Kids[0] = size (loaded int not required)
  Kill,   ///< end object lifetime: Kids[0] = pointer
  Free,   ///< free dynamic region: Kids[0] = pointer
  Store,  ///< Cty, Kids[0] = pointer, Kids[1] = value
  Load,   ///< Cty, Kids[0] = pointer
};

/// The fixed set of named pure builtins a PureCall can target (Str names
/// one of these). core::lower interns the name into Expr::Pure so the
/// evaluator's dispatch is a switch, not a string-comparison chain.
enum class PureFn : int8_t {
  None = -1, ///< not interned (unlowered tree or unknown name)
  IsRepresentable,
  ShrArith,
  BwAnd,
  BwOr,
  BwXor,
  BwCompl,
};

/// Maps a PureCall name to its PureFn, None if outside the fixed set.
PureFn pureFnByName(std::string_view Name);

enum class ExprKind {
  //===--- pure (pe) ---===//
  Sym,         ///< Core identifier
  Val,         ///< literal value
  ImplConst,   ///< implementation-defined constant (Str)
  Undef,       ///< undefined behaviour (UB)
  ErrorE,      ///< implementation-defined static error (Str)
  Tuple,       ///< tuple constructor
  SpecifiedE,  ///< Specified(pe)
  UnspecifiedE,///< Unspecified(ctype literal in Cty)
  Case,        ///< case pe of branches
  ArrayShiftE, ///< array_shift(pe_ptr, Cty, pe_int)
  MemberShiftE,///< member_shift(pe_ptr, Tag, MemberIdx)
  Not,         ///< boolean not
  Binop,       ///< pe1 binop pe2 (mathematical integers; no overflow)
  PureCall,    ///< call of a named builtin pure function (Str)
  PureLet,     ///< let pat = pe1 in pe2
  PureIf,      ///< if pe then pe1 else pe2
  IsInteger, IsSigned, IsUnsigned, IsScalar, ///< ctype tests
  FinishArith, ///< model hook: finish C arithmetic (provenance/CHERI); Kids =
               ///< {lhsIV, rhsIV, numeric result}; AOp = operator; Cty = C
               ///< result type
  ConvInt,     ///< conv_int(Cty, pe): 6.3.1.3 conversion on integer values

  //===--- effectful (e) ---===//
  PtrOp,     ///< ptrop(POp, pes...)
  Action,    ///< memory action (Act, NegPolarity)
  Skip,
  ELet,      ///< sequential let (monadic bind, no inner actions in pe1)
  EIf,
  ECase,
  ProcCall,  ///< call Core procedure Sym with evaluated args
  CallPtr,   ///< call through C function pointer: Kids[0] = fn value
  Ret,       ///< procedure return with value
  Unseq,     ///< unsequenced expressions
  LetWeak,   ///< let weak pat = e1 in e2
  LetStrong, ///< let strong pat = e1 in e2
  LetAtomic, ///< let atomic pat = a1 in a2 (postfix ++/--)
  Indet,     ///< indeterminately sequenced subexpression [n]
  Bound,     ///< boundary for indet [n]
  Nd,        ///< nondeterministic choice among Kids
  Save,      ///< save label Sym (+ scope annotation) in Kids[0]
  Run,       ///< run label Sym (+ scope annotation)
  Par,       ///< cppmem-style thread creation (restricted model)
  Wait,      ///< wait for thread termination
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Scope annotation for save/run: the automatic objects live at the point,
/// used by the dynamics to create/kill on goto (§5.8).
struct ScopeObject {
  Symbol Obj;
  CType Ty;
  int Slot = -1; ///< environment slot of Obj (core::lower)
};

struct Expr {
  ExprKind K;
  SourceLoc Loc;

  Symbol Sym;            // Sym/ProcCall/Save/Run
  Value V;               // Val
  mem::UBKind UB = mem::UBKind::ExceptionalCondition; // Undef
  std::string Str;       // ImplConst/ErrorE/PureCall name/Create name hint
  CoreBinop BOp = CoreBinop::Add;   // Binop
  mem::ArithOp AOp = mem::ArithOp::Add; // FinishArith
  PtrOpKind POp = PtrOpKind::PtrEq; // PtrOp
  ActionKind Act = ActionKind::Load; // Action
  bool NegPolarity = false;          // Action (§5.6 polarities)
  /// Action memory order (Fig. 2's memory-order operand), restricted to
  /// the two cases the concurrency regime needs: non-atomic vs seq_cst.
  bool AtomicAccess = false;
  CType Cty;             // type operand (actions, shifts, conv, unspec)
  unsigned Tag = 0;      // MemberShiftE / struct ops
  size_t MemberIdx = 0;  // MemberShiftE
  unsigned IndetId = 0;  // Indet/Bound pairing
  /// Statement-boundary marker on LetStrong: a C sequence point, at which
  /// the dynamics may discard accumulated action footprints (no
  /// unsequenced-race check can ever involve actions across it).
  bool SeqPoint = false;
  /// Dynamics cache: does this subtree contain memory actions or calls?
  /// (-1 unknown). Used to avoid scheduling unseq branches whose order is
  /// unobservable.
  mutable int HasEffectsCache = -1;
  /// Environment slot for Sym nodes (core::lower; -1 until lowered).
  int Slot = -1;
  /// Index into CoreProgram::ConstPool for interned Val nodes (-1 when
  /// not pooled). The literal in V is retained — printers and the
  /// unlowered differential path keep reading it.
  int PoolIdx = -1;
  /// Bloom summary (bit = label Id mod 64) of every Save label in this
  /// subtree, filled by core::lower. Zero means "definitely no save
  /// here", which lets the evaluator's jump routing skip the subtree
  /// scan; a set bit only admits the exact recursive check.
  uint64_t SaveMask = 0;
  /// Interned PureCall target (core::lower): the evaluator dispatches on
  /// this instead of string-comparing Str. None = unresolved (unlowered
  /// trees, or a name outside the fixed builtin set).
  PureFn Pure = PureFn::None;
  /// Lowering-proved guarantee: this subtree performs no memory actions,
  /// binds no symbols, raises no signals, and counts no events — it either
  /// produces a value or (on operand-kind surprises) defers to the general
  /// evaluator, whose re-evaluation is safe precisely because the subtree
  /// is effect-free. Gates Evaluator::evalPure on the slot path.
  bool ValueOnly = false;
  Pattern Pat;           // lets
  std::vector<ExprPtr> Kids;
  std::vector<std::pair<Pattern, ExprPtr>> Branches; // Case/ECase
  std::vector<ScopeObject> Scope; // Save/Run annotations

  static ExprPtr make(ExprKind K, SourceLoc Loc = SourceLoc()) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Loc = Loc;
    return E;
  }
};

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

/// A Core procedure (effectful) or function (pure), from elaborating a C
/// function definition.
struct CoreProc {
  Symbol Name;
  CType ReturnTy;                 ///< C return type
  std::vector<std::pair<Symbol, CType>> Params; ///< value parameters
  ExprPtr Body;
  SourceLoc Loc;
  /// Parallel to Params: environment slot of each parameter (core::lower).
  std::vector<int> ParamSlots;
};

/// A C object with static storage duration: name, type, and the Core
/// expression computing its initial value (run at startup, §5.2: "a set of
/// names, core types, and allocation/initialisation expressions").
struct CoreGlobal {
  Symbol Name;
  CType Ty;
  ExprPtr Init; ///< null = zero-initialised
  SourceLoc Loc;
  bool ReadOnly = false; ///< string literal: immutable after initialisation
  int Slot = -1; ///< environment slot of Name (core::lower)
};

/// The result of elaborating a C translation unit (Fig. 2 caption).
struct CoreProgram {
  ail::TagTable Tags;
  ail::SymbolTable Syms;
  std::vector<CoreGlobal> Globals;
  std::map<unsigned, CoreProc> Procs;
  std::map<unsigned, ail::Builtin> Builtins;
  Symbol MainProc;

  /// Set by core::lower: every binding/reference carries a slot index into
  /// a dense environment of NumSlots entries, and interned literals live
  /// in ConstPool. The evaluator selects its slot-vector fast path on
  /// Lowered; CERB_NO_LOWERING=1 compiles keep it false.
  bool Lowered = false;
  unsigned NumSlots = 0;
  std::vector<Value> ConstPool;

  const CoreProc *findProc(Symbol S) const {
    auto It = Procs.find(S.Id);
    return It == Procs.end() ? nullptr : &It->second;
  }
};

//===----------------------------------------------------------------------===//
// Pretty printing (the accessibility story of §5.1/§5.3 depends on being
// able to *read* elaborated Core; also regenerates Fig. 2/Fig. 3)
//===----------------------------------------------------------------------===//

std::string printExpr(const Expr &E, const ail::SymbolTable &Syms,
                      unsigned Indent = 0);
std::string printProgram(const CoreProgram &P);
/// The Core grammar summary (regenerates the shape of Fig. 2).
std::string coreGrammarSummary();

/// Deep copy of a Core expression.
ExprPtr cloneExpr(const Expr &E);

/// True iff \p E is a pure Core expression (fits the `pe` layer of Fig. 2).
bool isPureExpr(const Expr &E);

/// Does the subtree contain state *mutation* or calls — anything whose
/// execution order another unseq branch could observe? Loads are excluded:
/// among race-free branches a load commutes with every other load, and a
/// load/store conflict is an unsequenced race (UB) regardless of order.
/// Memoised in Expr::HasEffectsCache.
bool hasEffects(const Expr &E);

/// Populates Expr::HasEffectsCache for *every* node of \p P. After this
/// pass the dynamics never writes to a shared CoreProgram, so one compiled
/// program can be evaluated concurrently from many threads (the oracle's
/// compile-once/run-many contract). Called by exec::compile.
void warmDynamicsCaches(const CoreProgram &P);

//===----------------------------------------------------------------------===//
// Core-to-Core transformations (§5.1 "Core-to-Core transformation (600)")
//===----------------------------------------------------------------------===//

struct RewriteStats {
  unsigned PureLetsInlined = 0;
  unsigned ConstIfsFolded = 0;
  unsigned UnseqSingletons = 0;
  unsigned SkipSeqsDropped = 0;
};

/// Simplifies a Core program in place: inlines trivial pure lets, folds
/// constant ifs, collapses singleton unseqs, drops skip sequencing.
RewriteStats rewrite(CoreProgram &P);

/// Structural validity + purity checking of a Core program (the Core type
/// system's pure/effectful distinction, §5.2). Returns an error string for
/// the first violation, or nullopt.
std::optional<std::string> typeCheck(const CoreProgram &P);

} // namespace cerb::core

#endif // CERB_CORE_CORE_H
