//===-- core/Lowering.h - Execution-oriented Core lowering ------*- C++ -*-===//
///
/// \file
/// A one-time post-elaboration pass that rewrites a CoreProgram into an
/// execution-optimized form without changing a single observable outcome:
///
///  - slot resolution: every symbol the dynamics ever binds or reads
///    (pattern symbols, procedure parameters, globals, save/run scope
///    objects, Sym references) is assigned a dense environment-slot index,
///    so the evaluator replaces its name-keyed std::map environment with
///    array indexing;
///  - constant folding: pure subexpressions over literal operands are
///    folded at compile time, mirroring the evaluator's semantics exactly
///    (anything the evaluator would turn into a dynamic error or UB —
///    division by zero, out-of-range exponents, non-boolean conditions —
///    is deliberately left unfolded);
///  - let flattening: left-nested pure/sequential let chains
///    `let p1 = (let p2 = e1 in e2) in e3` are rotated into linear runs
///    `let p2 = e1 in let p1 = e2 in e3` (sound because Core symbols are
///    globally unique, so no capture is possible);
///  - constant interning: repeated literal values (integers, ctypes,
///    booleans, function designators) are deduplicated into a per-program
///    ConstPool the evaluator reads through Expr::PoolIdx.
///
/// The pass runs once per compile (exec::Pipeline), the lowered program is
/// what the compile caches share, and CERB_NO_LOWERING=1 keeps the
/// tree-walking path alive for differential testing. The lowering version
/// string is folded into exec::semanticsFingerprint() so result-cache keys
/// from before a lowering change can never alias results after it.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CORE_LOWERING_H
#define CERB_CORE_LOWERING_H

#include "core/Core.h"

#include <string_view>

namespace cerb::core {

struct LoweringStats {
  unsigned SlotsAssigned = 0;  ///< distinct environment slots (== NumSlots)
  unsigned ConstFolds = 0;     ///< subexpressions folded to literals
  unsigned LetsFlattened = 0;  ///< nested-let rotations performed
  unsigned ConstsInterned = 0; ///< Val nodes deduplicated into the pool
  unsigned PoolSize = 0;       ///< distinct pooled constants
  unsigned PureNodes = 0;      ///< nodes proved ValueOnly (evalPure-eligible)
};

/// Lowers \p P in place (idempotent; a second call is a no-op). Must run
/// before warmDynamicsCaches: folding replaces subtrees whose effect
/// caches would otherwise go stale.
LoweringStats lower(CoreProgram &P);

/// Version tag of the lowering pass, folded into compile and semantics
/// fingerprints. Bump on any change to what lowering produces.
constexpr std::string_view loweringVersion() { return "cerb-lowering/2"; }

} // namespace cerb::core

#endif // CERB_CORE_LOWERING_H
