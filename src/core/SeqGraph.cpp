//===-- core/SeqGraph.cpp -------------------------------------------------===//

#include "core/SeqGraph.h"

#include "support/Format.h"

#include <map>
#include <set>

using namespace cerb;
using namespace cerb::core;

bool SeqGraph::hasEdge(unsigned From, unsigned To, SeqEdgeKind K) const {
  for (const SeqEdge &E : Edges)
    if (E.From == From && E.To == To && E.Kind == K)
      return true;
  return false;
}

bool SeqGraph::sequencedBefore(unsigned From, unsigned To) const {
  // BFS over solid + atomic edges.
  std::set<unsigned> Seen{From};
  std::vector<unsigned> Work{From};
  while (!Work.empty()) {
    unsigned N = Work.back();
    Work.pop_back();
    for (const SeqEdge &E : Edges) {
      if (E.Kind == SeqEdgeKind::Indeterminate || E.From != N)
        continue;
      if (E.To == To)
        return true;
      if (Seen.insert(E.To).second)
        Work.push_back(E.To);
    }
  }
  return false;
}

bool SeqGraph::unsequenced(unsigned A, unsigned B) const {
  if (A == B || sequencedBefore(A, B) || sequencedBefore(B, A))
    return false;
  for (const SeqEdge &E : Edges)
    if (E.Kind == SeqEdgeKind::Indeterminate &&
        ((E.From == A && E.To == B) || (E.From == B && E.To == A)))
      return false;
  return true;
}

std::string SeqGraph::str() const {
  std::string Out = "actions:\n";
  for (const SeqNode &N : Nodes) {
    Out += fmt("  [{0}] {1}{2}{3}\n", N.Id, N.Label,
               N.Negative ? "  (negative polarity)" : "",
               N.IndetGroup ? fmt("  (call body #{0})", N.IndetGroup)
                            : std::string());
  }
  Out += "sequenced-before (solid):\n";
  for (const SeqEdge &E : Edges)
    if (E.Kind == SeqEdgeKind::SequencedBefore)
      Out += fmt("  {0} -> {1}\n", E.From, E.To);
  Out += "atomic pairs (double):\n";
  for (const SeqEdge &E : Edges)
    if (E.Kind == SeqEdgeKind::Atomic)
      Out += fmt("  {0} => {1}\n", E.From, E.To);
  Out += "indeterminately sequenced (dotted):\n";
  for (const SeqEdge &E : Edges)
    if (E.Kind == SeqEdgeKind::Indeterminate)
      Out += fmt("  {0} .. {1}\n", E.From, E.To);
  return Out;
}

std::string SeqGraph::dot() const {
  std::string Out = "digraph seq {\n";
  for (const SeqNode &N : Nodes)
    Out += fmt("  n{0} [label=\"{1}\"{2}];\n", N.Id, N.Label,
               N.Negative ? ", style=dashed" : "");
  for (const SeqEdge &E : Edges) {
    const char *Attr = E.Kind == SeqEdgeKind::Atomic
                           ? " [color=black, penwidth=2]"
                       : E.Kind == SeqEdgeKind::Indeterminate
                           ? " [style=dotted, dir=none]"
                           : "";
    Out += fmt("  n{0} -> n{1}{2};\n", E.From, E.To, Attr);
  }
  Out += "}\n";
  return Out;
}

namespace {

/// The action nodes produced by a subexpression, split by polarity (§5.6:
/// weak sequencing orders only the positive ones).
struct Acts {
  std::vector<unsigned> Pos, Neg;

  std::vector<unsigned> allActs() const {
    std::vector<unsigned> Out = Pos;
    Out.insert(Out.end(), Neg.begin(), Neg.end());
    return Out;
  }
  void merge(const Acts &O) {
    Pos.insert(Pos.end(), O.Pos.begin(), O.Pos.end());
    Neg.insert(Neg.end(), O.Neg.begin(), O.Neg.end());
  }
};

class Builder {
public:
  Builder(SeqGraph &G, const ail::SymbolTable &Syms) : G(G), Syms(Syms) {}

  Acts walk(const Expr &E, unsigned IndetGroup);

private:
  SeqGraph &G;
  const ail::SymbolTable &Syms;
  unsigned NextIndet = 0;
  /// Elaboration temporaries bound (directly or transitively) to a source
  /// object's pointer — `let strong p = x in ... load(p)` should label as
  /// "R x", the way the paper's figure names actions.
  std::map<unsigned, std::string> Alias;

  void noteAlias(const Pattern &Pat, const Expr &Bound) {
    if (Pat.K == PatKind::Sym && Bound.K == ExprKind::Sym) {
      auto It = Alias.find(Bound.Sym.Id);
      Alias[Pat.S.Id] =
          It != Alias.end() ? It->second : Syms.nameOf(Bound.Sym);
      return;
    }
    // let weak (p, v) = unseq(e1, e2): alias the tuple elementwise.
    if (Pat.K == PatKind::Tuple && Bound.K == ExprKind::Unseq &&
        Pat.Subs.size() == Bound.Kids.size())
      for (size_t I = 0; I < Pat.Subs.size(); ++I)
        noteAlias(Pat.Subs[I], *Bound.Kids[I]);
  }

  std::string operandNameOf(const Expr &P) {
    if (P.K == ExprKind::Sym) {
      auto It = Alias.find(P.Sym.Id);
      return It != Alias.end() ? It->second : Syms.nameOf(P.Sym);
    }
    if (P.K == ExprKind::MemberShiftE || P.K == ExprKind::ArrayShiftE)
      return operandNameOf(*P.Kids[0]) + "[..]";
    return "?";
  }
  std::string operandName(const Expr &Action) {
    if (Action.Kids.empty())
      return Action.Str.empty() ? std::string("?") : Action.Str;
    return operandNameOf(*Action.Kids[0]);
  }

  unsigned addNode(const Expr &Action, unsigned IndetGroup) {
    SeqNode N;
    N.Id = static_cast<unsigned>(G.Nodes.size());
    N.Kind = Action.Act;
    N.Negative = Action.NegPolarity;
    N.IndetGroup = IndetGroup;
    const char *K = "?";
    switch (Action.Act) {
    case ActionKind::Load: K = "R"; break;
    case ActionKind::Store: K = "W"; break;
    case ActionKind::Create: K = "C"; break;
    case ActionKind::Alloc: K = "C"; break;
    case ActionKind::Kill: K = "K"; break;
    case ActionKind::Free: K = "K"; break;
    }
    N.Label = fmt("{0} {1}", K,
                  Action.Act == ActionKind::Create ? Action.Str
                                                   : operandName(Action));
    G.Nodes.push_back(N);
    return N.Id;
  }

  void edge(unsigned From, unsigned To, SeqEdgeKind K) {
    if (!G.hasEdge(From, To, K))
      G.Edges.push_back(SeqEdge{From, To, K});
  }
  void edgesAll(const std::vector<unsigned> &From,
                const std::vector<unsigned> &To) {
    for (unsigned F : From)
      for (unsigned T : To)
        edge(F, T, SeqEdgeKind::SequencedBefore);
  }
};

Acts Builder::walk(const Expr &E, unsigned IndetGroup) {
  switch (E.K) {
  case ExprKind::Action: {
    unsigned Id = addNode(E, IndetGroup);
    Acts A;
    (E.NegPolarity ? A.Neg : A.Pos).push_back(Id);
    return A;
  }
  case ExprKind::LetStrong:
  case ExprKind::ELet:
  case ExprKind::PureLet: {
    noteAlias(E.Pat, *E.Kids[0]);
    Acts A1 = walk(*E.Kids[0], IndetGroup);
    Acts A2 = walk(*E.Kids[1], IndetGroup);
    edgesAll(A1.allActs(), A2.allActs());
    A1.merge(A2);
    return A1;
  }
  case ExprKind::LetWeak: {
    noteAlias(E.Pat, *E.Kids[0]);
    Acts A1 = walk(*E.Kids[0], IndetGroup);
    Acts A2 = walk(*E.Kids[1], IndetGroup);
    // §5.6: only the positive actions of e1 are sequenced before e2.
    edgesAll(A1.Pos, A2.allActs());
    A1.merge(A2);
    return A1;
  }
  case ExprKind::LetAtomic: {
    Acts A1 = walk(*E.Kids[0], IndetGroup);
    Acts A2 = walk(*E.Kids[1], IndetGroup);
    for (unsigned F : A1.allActs())
      for (unsigned T : A2.allActs())
        edge(F, T, SeqEdgeKind::Atomic);
    A1.merge(A2);
    return A1;
  }
  case ExprKind::Unseq:
  case ExprKind::Nd:
  case ExprKind::Par: {
    Acts All;
    for (const ExprPtr &K : E.Kids)
      All.merge(walk(*K, IndetGroup));
    return All;
  }
  case ExprKind::Indet: {
    unsigned Group = ++NextIndet;
    return walk(*E.Kids[0], Group);
  }
  case ExprKind::Bound:
  case ExprKind::Save:
    return walk(*E.Kids[0], IndetGroup);
  case ExprKind::PureIf:
  case ExprKind::EIf: {
    Acts C = walk(*E.Kids[0], IndetGroup);
    Acts T = walk(*E.Kids[1], IndetGroup);
    Acts F = walk(*E.Kids[2], IndetGroup);
    edgesAll(C.allActs(), T.allActs());
    edgesAll(C.allActs(), F.allActs());
    C.merge(T);
    C.merge(F);
    return C;
  }
  case ExprKind::Case:
  case ExprKind::ECase: {
    Acts S = walk(*E.Kids[0], IndetGroup);
    Acts Branches;
    for (const auto &[Pat, Body] : E.Branches)
      Branches.merge(walk(*Body, IndetGroup));
    edgesAll(S.allActs(), Branches.allActs());
    S.merge(Branches);
    return S;
  }
  case ExprKind::ProcCall:
  case ExprKind::CallPtr: {
    // The callee body's actions are not part of this expression's static
    // graph (the paper's figure shows f(...) as one opaque node).
    SeqNode N;
    N.Id = static_cast<unsigned>(G.Nodes.size());
    N.Kind = ActionKind::Load;
    N.IndetGroup = IndetGroup;
    N.Label = E.K == ExprKind::ProcCall
                  ? fmt("{0}(...)", Syms.nameOf(E.Sym))
                  : "(*fp)(...)";
    G.Nodes.push_back(N);
    Acts A;
    A.Pos.push_back(N.Id);
    return A;
  }
  default: {
    Acts All;
    for (const ExprPtr &K : E.Kids)
      All.merge(walk(*K, IndetGroup));
    for (const auto &[Pat, Body] : E.Branches)
      All.merge(walk(*Body, IndetGroup));
    return All;
  }
  }
}

} // namespace

SeqGraph cerb::core::buildSeqGraph(const Expr &E,
                                   const ail::SymbolTable &Syms) {
  SeqGraph G;
  Builder B(G, Syms);
  B.walk(E, 0);

  // Indeterminate sequencing (§5.6 point 6): a call body is
  // indeterminately sequenced with every action it is otherwise unordered
  // against.
  for (const SeqNode &A : G.Nodes)
    for (const SeqNode &B2 : G.Nodes) {
      if (A.Id >= B2.Id || A.IndetGroup == B2.IndetGroup)
        continue;
      if (!G.sequencedBefore(A.Id, B2.Id) &&
          !G.sequencedBefore(B2.Id, A.Id))
        G.Edges.push_back(
            SeqEdge{A.Id, B2.Id, SeqEdgeKind::Indeterminate});
    }
  return G;
}
