//===-- core/SeqGraph.h - the §5.6 sequenced-before graph -------*- C++ -*-===//
///
/// \file
/// §5.6 presents `w = x++ + f(z,2);` as a graph over its memory actions:
/// solid arrows for the standard's *sequenced-before* relation, a double
/// arrow for the atomic load/store pair of the postfix increment, and
/// dotted lines for *indeterminate* sequencing of function bodies. This
/// module recovers that graph syntactically from an elaborated Core term:
///
///  - `let strong pat = e1 in e2`: every action of e1 → every action of e2;
///  - `let weak pat = e1 in e2`: every *positive* action of e1 → e2 (§5.6
///    polarities: negative actions are side effects outside the value
///    computation);
///  - `unseq(e1..en)`: no edges across branches;
///  - `let atomic a1 in a2`: a double edge a1 ⇒ a2;
///  - `indet[n](e)`: e's actions are indeterminately sequenced (dotted)
///    with every action they are otherwise unrelated to;
///  - `ELet/EIf/ECase`: scrutinee/bound pure parts carry no actions.
///
/// Conditional branches both contribute nodes (the graph describes the
/// statically possible actions, like the paper's figure).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CORE_SEQGRAPH_H
#define CERB_CORE_SEQGRAPH_H

#include "core/Core.h"

#include <string>
#include <vector>

namespace cerb::core {

struct SeqNode {
  unsigned Id = 0;
  ActionKind Kind = ActionKind::Load;
  bool Negative = false;  ///< §5.6 polarity
  unsigned IndetGroup = 0; ///< nonzero: inside indet[n] (a call body)
  std::string Label;       ///< e.g. "R x", "W w", "C t1", "K t1"
};

enum class SeqEdgeKind {
  SequencedBefore, ///< solid arrow
  Atomic,          ///< double arrow (let atomic)
  Indeterminate,   ///< dotted line (function bodies vs context)
};

struct SeqEdge {
  unsigned From = 0, To = 0;
  SeqEdgeKind Kind = SeqEdgeKind::SequencedBefore;
};

struct SeqGraph {
  std::vector<SeqNode> Nodes;
  std::vector<SeqEdge> Edges;

  bool hasEdge(unsigned From, unsigned To, SeqEdgeKind K) const;
  /// Transitive sequenced-before (solid + atomic edges).
  bool sequencedBefore(unsigned From, unsigned To) const;
  /// Neither a ≤ b nor b ≤ a, and not indeterminately related: the pair is
  /// *unsequenced* — if they conflict, that is the 6.5p2 race.
  bool unsequenced(unsigned A, unsigned B) const;

  /// Human-readable rendering (node list + edge list).
  std::string str() const;
  /// GraphViz dot, for the curious.
  std::string dot() const;
};

/// Builds the sequencing graph of one Core expression (typically a
/// statement's elaboration). Node labels use the symbol table for object
/// names where the action's pointer operand is a plain symbol.
SeqGraph buildSeqGraph(const Expr &E, const ail::SymbolTable &Syms);

} // namespace cerb::core

#endif // CERB_CORE_SEQGRAPH_H
