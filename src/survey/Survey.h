//===-- survey/Survey.h - The de facto standards surveys --------*- C++ -*-===//
///
/// \file
/// The paper's second contribution apparatus: two surveys probing "what
/// systems programmers and compiler writers believe about compiler
/// behaviour and extant code" (§1). The responses are an artifact of
/// record; this module embeds the published counts (323 respondents, the
/// expertise demographics, and the per-question numbers the paper quotes)
/// and provides the tabulation machinery that recomputes every percentage
/// in the paper — regenerating its survey tables (benches T1/T3).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SURVEY_SURVEY_H
#define CERB_SURVEY_SURVEY_H

#include <string>
#include <vector>

namespace cerb::survey {

/// One answer option with its response count.
struct Answer {
  std::string Text;
  unsigned Count;
};

/// One survey question with its recorded responses.
struct SurveyQuestion {
  std::string Id;       ///< "[7/15]" — question n of the 15-question survey
  std::string LinkedQ;  ///< design-space question it probes ("Q25")
  std::string Prompt;
  std::vector<Answer> Answers;

  unsigned totalResponses() const;
};

/// The expertise self-descriptions of the 323 respondents (§1 table).
struct ExpertiseRow {
  std::string Area;
  unsigned Count;
};

/// Survey metadata.
struct SurveyInfo {
  unsigned Respondents;        ///< 323
  unsigned QuestionCount;      ///< 15
  unsigned FirstSurveyYear;    ///< 2013 (42 questions, expert-targeted)
  unsigned SecondSurveyYear;   ///< 2015 (15 questions, broad)
  unsigned FirstSurveyQuestions; ///< 42
};

SurveyInfo info();
const std::vector<ExpertiseRow> &expertise();
const std::vector<SurveyQuestion> &surveyQuestions();
const SurveyQuestion *findSurveyQuestion(const std::string &Id);

/// Percentage with the paper's rounding (integer percent of the question's
/// total responses).
unsigned percentOf(const SurveyQuestion &Q, const Answer &A);

/// Renders a question as an ASCII table block (used by the benches).
std::string renderQuestion(const SurveyQuestion &Q);
/// Renders the expertise table.
std::string renderExpertise();

} // namespace cerb::survey

#endif // CERB_SURVEY_SURVEY_H
