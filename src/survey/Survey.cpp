//===-- survey/Survey.cpp -------------------------------------------------===//

#include "survey/Survey.h"

#include "support/Format.h"

using namespace cerb;
using namespace cerb::survey;

unsigned SurveyQuestion::totalResponses() const {
  unsigned T = 0;
  for (const Answer &A : Answers)
    T += A.Count;
  return T;
}

SurveyInfo cerb::survey::info() {
  return SurveyInfo{323, 15, 2013, 2015, 42};
}

const std::vector<ExpertiseRow> &cerb::survey::expertise() {
  // §1: "Most respondents reported expertise in C systems programming and
  // many reported expertise in compiler internals and in the C standard".
  static const std::vector<ExpertiseRow> Rows = {
      {"C applications programming", 255},
      {"C systems programming", 230},
      {"Linux developer", 160},
      {"Other OS developer", 111},
      {"C embedded systems programming", 135},
      {"C standard", 70},
      {"C or C++ standards committee member", 8},
      {"Compiler internals", 64},
      {"GCC developer", 15},
      {"Clang developer", 26},
      {"Other C compiler developer", 22},
      {"Program analysis tools", 44},
      {"Formal semantics", 18},
      {"no response", 6},
      {"other", 18},
  };
  return Rows;
}

const std::vector<SurveyQuestion> &cerb::survey::surveyQuestions() {
  static const std::vector<SurveyQuestion> Qs = {
      // §2.5 padding (the paper reports "mixed results" without numbers;
      // we record the option set it discusses).
      {"[1/15]", "Q61",
       "If you zero all bytes of a struct and then write some of its "
       "members, do reads of the padding produce zeros?",
       {{"yes, always", 116},
        {"it depends on the compiler", 95},
        {"no", 50},
        {"don't know", 62}}},

      // §2.4 unspecified values — the bimodal result the paper quotes.
      {"[2/15]", "Q48",
       "Is reading an uninitialised variable or struct member (with a "
       "current mainstream compiler):",
       {{"undefined behaviour (compiler free to arbitrarily miscompile)",
         139},
        {"going to make the result of any expression involving it "
         "unpredictable",
         42},
        {"going to give an arbitrary and unstable value", 21},
        {"going to give an arbitrary but stable value", 112}}},

      // §2.3 pointer copying.
      {"[5/15]", "Q15",
       "Can one make a usable copy of a pointer by copying its "
       "representation bytes in user code?",
       {{"yes", 216},
        {"only sometimes", 50},
        {"no", 18},
        {"don't know", 24}}},

      // §2.1 Q25 — relational comparison; both sub-questions.
      {"[7/15]", "Q25",
       "Can one do relational comparison (<, >, <=, >=) of pointers to "
       "separately allocated objects? Will that work in normal C "
       "compilers?",
       {{"yes", 191},
        {"only sometimes", 52},
        {"no", 31},
        {"don't know", 38},
        {"I don't know what the question is asking", 3}}},
      {"[7b/15]", "Q25",
       "Do you know of real code that relies on it?",
       {{"yes", 101},
        {"yes, but it shouldn't", 37},
        {"no, but there might well be", 89},
        {"no, that would be crazy", 50},
        {"don't know", 27}}},

      // §2.2 Q31 — transient out-of-bounds construction.
      {"[9/15]", "Q31",
       "Can one transiently construct out-of-bounds pointers (brought "
       "back in-bounds before use)? Will that work in normal C "
       "compilers?",
       {{"yes", 230},
        {"only sometimes", 43},
        {"no", 13},
        {"don't know", 27}}},

      // §2.6 Q75 — char arrays as storage.
      {"[11/15]", "Q75",
       "Can an unsigned character array with static or automatic storage "
       "duration be used (like a malloc'd region) to hold values of "
       "other types? Will that work?",
       {{"yes", 243},
        {"only sometimes", 41},
        {"no", 11},
        {"don't know", 28}}},
      {"[11b/15]", "Q75",
       "Do you know of real code that relies on it?",
       {{"yes", 201},
        {"no, but there might well be", 73},
        {"no", 31},
        {"don't know", 18}}},
  };
  return Qs;
}

const SurveyQuestion *cerb::survey::findSurveyQuestion(const std::string &Id) {
  for (const SurveyQuestion &Q : surveyQuestions())
    if (Q.Id == Id)
      return &Q;
  return nullptr;
}

unsigned cerb::survey::percentOf(const SurveyQuestion &Q, const Answer &A) {
  unsigned T = Q.totalResponses();
  if (T == 0)
    return 0;
  // The paper rounds to whole percent (e.g. 191/315 -> 60%).
  return (A.Count * 100 + T / 2) / T;
}

std::string cerb::survey::renderQuestion(const SurveyQuestion &Q) {
  std::string Out = fmt("{0} (probes {1}): {2}\n", Q.Id, Q.LinkedQ, Q.Prompt);
  for (const Answer &A : Q.Answers)
    Out += fmt("    {0}: {1} ({2}%)\n", A.Text, A.Count, percentOf(Q, A));
  Out += fmt("    [total responses: {0}]\n", Q.totalResponses());
  return Out;
}

std::string cerb::survey::renderExpertise() {
  std::string Out;
  Out += fmt("Survey respondents: {0} (second survey, {1}, {2} questions)\n",
             info().Respondents, info().SecondSurveyYear,
             info().QuestionCount);
  Out += "Self-reported expertise (multiple selections allowed):\n";
  for (const ExpertiseRow &R : expertise())
    Out += fmt("    {0}  {1}\n", R.Count, R.Area);
  return Out;
}
