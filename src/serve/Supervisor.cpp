//===-- serve/Supervisor.cpp ----------------------------------------------===//

#include "serve/Supervisor.h"

#include "support/Process.h"
#include "support/StripedHashSet.h"
#include "trace/Trace.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

using namespace cerb;
using namespace cerb::serve;

namespace {

trace::Counter &cntRestarts() {
  static trace::Counter C("serve.worker_restarts");
  return C;
}
trace::Counter &cntBreakerTrips() {
  static trace::Counter C("serve.breaker_trips");
  return C;
}

/// poll() one fd for POLLIN with EINTR retry: 1 readable, 0 timeout, -1
/// error.
int pollIn(int Fd, int TimeoutMs) {
  struct pollfd P = {Fd, POLLIN, 0};
  while (true) {
    int R = ::poll(&P, 1, TimeoutMs);
    if (R >= 0)
      return R > 0 ? 1 : 0;
    if (errno != EINTR)
      return -1;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// RestartBackoff / FlapBreaker
//===----------------------------------------------------------------------===//

uint64_t RestartBackoff::nextDelayMs() {
  // Exponential from BaseMs, saturating at MaxMs.
  uint64_t D = BaseMs;
  for (unsigned I = 0; I < Attempt && D < MaxMs; ++I)
    D = D * 2 > MaxMs ? MaxMs : D * 2;
  ++Attempt;
  // Deterministic jitter into [D/2, D]: splitmix64 of seed x attempt.
  uint64_t H = hashUint64(Seed ^ (uint64_t(Attempt) * 0x9e3779b97f4a7c15ull));
  uint64_t Half = D / 2;
  return D - (Half ? H % (Half + 1) : 0);
}

bool FlapBreaker::allowRestart(uint64_t NowMs) {
  if (Tripped)
    return false;
  while (!Recent.empty() && NowMs - Recent.front() > WindowMs)
    Recent.pop_front();
  if (Recent.size() >= Limit) {
    Tripped = true;
    return false;
  }
  Recent.push_back(NowMs);
  return true;
}

//===----------------------------------------------------------------------===//
// Supervisor
//===----------------------------------------------------------------------===//

Supervisor::Supervisor(SupervisorConfig C) : Cfg(std::move(C)) {
  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  Slots.reserve(Cfg.Workers);
  for (unsigned I = 0; I < Cfg.Workers; ++I)
    Slots.emplace_back(Cfg, I);
}

Supervisor::~Supervisor() {
  // Last-resort cleanup if run() never completed: kill what we spawned so
  // tests cannot leak daemons.
  for (Slot &S : Slots)
    if (S.Pid > 0) {
      ::kill(S.Pid, SIGKILL);
      proc::reapBlocking(S.Pid, nullptr);
    }
}

ExpectedVoid Supervisor::start() {
  if (Started)
    return err("supervisor already started");
  if (Cfg.Worker.SocketPath.empty() && Cfg.Worker.TcpPort < 0)
    return err("supervisor has no listener (need a socket path or TCP port)");

  if (!Cfg.Worker.SocketPath.empty()) {
    auto L = net::listenUnix(Cfg.Worker.SocketPath);
    if (!L)
      return L.takeError();
    CanonicalUnix = std::move(*L);
  }
  if (Cfg.Worker.TcpPort >= 0) {
    // Resolve the concrete port with a throwaway SO_REUSEPORT bind, then
    // close it before any worker exists: a listening socket nobody
    // accepts on would black-hole its share of connections.
    uint16_t Port = 0;
    auto Claim = net::listenTcp(static_cast<uint16_t>(Cfg.Worker.TcpPort),
                                &Port, 1, /*Reuseport=*/true);
    if (!Claim)
      return Claim.takeError();
    BoundTcpPort = Port;
    TcpOn = true;
  }

  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return err("supervisor self-pipe creation failed");
  WakeRead = net::Fd(Pipe[0]);
  WakeWrite = net::Fd(Pipe[1]);

  Started = true;
  const uint64_t Now = proc::monotonicMs();
  for (size_t I = 0; I < Slots.size(); ++I)
    spawnSlot(I, Now);

  if (!Cfg.Quiet) {
    std::string Where;
    if (CanonicalUnix.valid())
      Where += "unix:" + Cfg.Worker.SocketPath;
    if (TcpOn) {
      if (!Where.empty())
        Where += ", ";
      Where += "tcp:127.0.0.1:" + std::to_string(BoundTcpPort);
    }
    std::fprintf(stderr, "cerbd: supervisor listening on %s (%u workers)\n",
                 Where.c_str(), Cfg.Workers);
  }
  return ExpectedVoid();
}

void Supervisor::spawnSlot(size_t I, uint64_t NowMs) {
  Slot &S = Slots[I];
  auto SP = net::socketPair();
  if (!SP) {
    // Treated exactly like an instant crash: backoff, breaker, retry.
    onChildExit(I, 0x7f00, NowMs);
    return;
  }
  pid_t Pid = proc::forkChild();
  if (Pid < 0) {
    if (!Cfg.Quiet)
      std::fprintf(stderr, "cerbd: fork for worker %zu failed: %s\n", I,
                   std::strerror(errno));
    onChildExit(I, 0x7f00, NowMs);
    return;
  }
  if (Pid == 0) {
    // --- child ---
    if (Cfg.ChildInit)
      Cfg.ChildInit();
    net::Fd Control = std::move(SP->second);
    // Drop every supervisor-held descriptor this worker must not retain:
    // the sibling control channels (a crashed sibling's EOF must reach
    // the supervisor, not linger because we hold the write end), the
    // pidfds, the drain pipe, and the inherited copy of the canonical
    // listener — the worker adopts the SCM_RIGHTS-passed one instead.
    SP->first.reset();
    for (Slot &Other : Slots) {
      Other.Control.reset();
      Other.PidFd.reset();
    }
    WakeRead.reset();
    WakeWrite.reset();
    CanonicalUnix.reset();
    std::_Exit(
        runWorkerChild(std::move(Control), Cfg.Worker, BoundTcpPort, TcpOn));
  }
  // --- parent ---
  S.Pid = Pid;
  S.LastPid = Pid;
  S.Control = std::move(SP->first);
  S.PidFd = proc::pidfdOpen(Pid);
  S.St = SlotState::Running;
  S.SpawnedAtMs = NowMs;
  // Hand the shared unix listener over (or an explicit none marker so the
  // worker does not block waiting for a descriptor that never comes).
  net::sendFdMsg(S.Control.get(), CanonicalUnix.valid() ? 'L' : 'N',
                 CanonicalUnix.valid() ? CanonicalUnix.get() : -1);
}

void Supervisor::onChildExit(size_t I, int Status, uint64_t NowMs) {
  Slot &S = Slots[I];
  S.Pid = -1;
  S.Control.reset();
  S.PidFd.reset();
  if (DrainRequested) {
    S.St = SlotState::Exited;
    return;
  }
  // A worker that outlived the flap window earned its slot a fresh
  // backoff schedule; chronic crashers keep escalating.
  if (NowMs - S.SpawnedAtMs > Cfg.RestartWindowMs)
    S.Backoff.reset();
  if (!S.Breaker.allowRestart(NowMs)) {
    S.St = SlotState::Failed;
    cntBreakerTrips().add();
    std::fprintf(stderr,
                 "cerbd: worker %zu (%s) flapping — breaker tripped after "
                 "%u restarts, slot abandoned\n",
                 I, proc::describeStatus(Status).c_str(), S.Restarts);
    return;
  }
  ++S.Restarts;
  ++TotalRestarts;
  cntRestarts().add();
  uint64_t Delay = S.Backoff.nextDelayMs();
  S.St = SlotState::Backoff;
  S.RestartAtMs = NowMs + Delay;
  if (!Cfg.Quiet)
    std::fprintf(stderr,
                 "cerbd: worker %zu died (%s); restart %u in %llu ms\n", I,
                 proc::describeStatus(Status).c_str(), S.Restarts,
                 static_cast<unsigned long long>(Delay));
}

int Supervisor::run() {
  if (!Started)
    return 1;
  bool AnyPidfdMissing = false;
  while (!DrainRequested) {
    // Assemble the poll set: drain pipe + per-slot control fds + pidfds.
    std::vector<struct pollfd> Fds;
    std::vector<std::pair<size_t, bool>> Who; // slot, IsPidFd
    Fds.push_back({WakeRead.get(), POLLIN, 0});
    Who.emplace_back(SIZE_MAX, false);
    AnyPidfdMissing = false;
    for (size_t I = 0; I < Slots.size(); ++I) {
      Slot &S = Slots[I];
      if (S.St != SlotState::Running)
        continue;
      if (S.Control.valid()) {
        Fds.push_back({S.Control.get(), POLLIN, 0});
        Who.emplace_back(I, false);
      }
      if (S.PidFd.valid()) {
        Fds.push_back({S.PidFd.get(), POLLIN, 0});
        Who.emplace_back(I, true);
      } else {
        AnyPidfdMissing = true;
      }
    }
    // Timeout: the nearest scheduled restart, or a reap-sweep tick when
    // some kernel denied us pidfds.
    uint64_t Now = proc::monotonicMs();
    int Timeout = -1;
    for (Slot &S : Slots)
      if (S.St == SlotState::Backoff) {
        uint64_t Left = S.RestartAtMs > Now ? S.RestartAtMs - Now : 0;
        if (Timeout < 0 || Left < static_cast<uint64_t>(Timeout))
          Timeout = static_cast<int>(Left);
      }
    if (AnyPidfdMissing && (Timeout < 0 || Timeout > 200))
      Timeout = 200;

    int R = ::poll(Fds.data(), Fds.size(), Timeout);
    if (R < 0 && errno != EINTR)
      break;
    Now = proc::monotonicMs();
    if (R > 0) {
      if (Fds[0].revents) {
        DrainRequested = true;
        break;
      }
      for (size_t K = 1; K < Fds.size(); ++K) {
        if (!Fds[K].revents)
          continue;
        auto [I, IsPidFd] = Who[K];
        Slot &S = Slots[I];
        if (S.St != SlotState::Running || S.Pid < 0)
          continue; // already handled this iteration
        if (IsPidFd) {
          int Status = 0;
          if (proc::reapNoHang(S.Pid, &Status))
            onChildExit(I, Status, Now);
        } else {
          handleControl(I);
        }
      }
    }
    // pidfd-less fallback: sweep for silently-exited children.
    if (AnyPidfdMissing)
      for (size_t I = 0; I < Slots.size(); ++I) {
        Slot &S = Slots[I];
        int Status = 0;
        if (S.St == SlotState::Running && S.Pid > 0 && !S.PidFd.valid() &&
            proc::reapNoHang(S.Pid, &Status))
          onChildExit(I, Status, Now);
      }
    // Deferred control messages from an aggregation window.
    while (!Deferred.empty()) {
      auto [I, Msg] = std::move(Deferred.front());
      Deferred.pop_front();
      handleControlMessage(I, Msg);
      if (DrainRequested)
        break;
    }
    if (DrainRequested)
      break;
    // Respawn slots whose backoff expired.
    for (size_t I = 0; I < Slots.size(); ++I)
      if (Slots[I].St == SlotState::Backoff && Now >= Slots[I].RestartAtMs)
        spawnSlot(I, Now);
    if (allSlotsFailed()) {
      std::fprintf(stderr,
                   "cerbd: every worker slot tripped its flap breaker — "
                   "giving up\n");
      closeListeners();
      return 3;
    }
  }
  rollingDrain();
  closeListeners();
  if (!Cfg.Quiet)
    std::fprintf(stderr, "cerbd: supervisor drained cleanly\n");
  return 0;
}

void Supervisor::handleControl(size_t I) {
  Slot &S = Slots[I];
  std::string Msg;
  int RC = net::readFrame(S.Control.get(), Msg);
  if (RC <= 0) {
    // Control EOF: the worker is dying (or dead); the pidfd/waitpid path
    // owns the restart decision, we just stop polling a dead channel.
    S.Control.reset();
    return;
  }
  handleControlMessage(I, Msg);
}

void Supervisor::handleControlMessage(size_t I, const std::string &Msg) {
  if (Msg.rfind("ready", 0) == 0)
    return; // informational; the slot is already Running
  if (Msg.rfind("stats_req ", 0) == 0) {
    aggregateStats(I, Msg.substr(10));
    return;
  }
  if (Msg == "shutdown_req") {
    DrainRequested = true;
    return;
  }
  // snap_reply frames outside an aggregation window (a worker answering
  // after the 1.5 s collect deadline) are dropped by falling through.
}

void Supervisor::aggregateStats(size_t ReqSlot, const std::string &Token) {
  // Fan out "snap" to every live worker (including the requester: its
  // control thread answers while its reader thread waits on our reply).
  std::vector<int> Pending; // slot indices with a snap outstanding
  for (size_t I = 0; I < Slots.size(); ++I) {
    Slot &S = Slots[I];
    if (S.St == SlotState::Running && S.Control.valid() &&
        net::writeFrame(S.Control.get(), "snap"))
      Pending.push_back(static_cast<int>(I));
  }
  std::vector<std::string> Counters(Slots.size());
  const uint64_t Deadline = proc::monotonicMs() + 1500;
  while (!Pending.empty()) {
    uint64_t Now = proc::monotonicMs();
    if (Now >= Deadline)
      break;
    std::vector<struct pollfd> Fds;
    for (int I : Pending)
      Fds.push_back({Slots[I].Control.get(), POLLIN, 0});
    int R = ::poll(Fds.data(), Fds.size(),
                   static_cast<int>(Deadline - Now));
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      break;
    for (size_t K = 0; K < Fds.size(); ++K) {
      if (!Fds[K].revents)
        continue;
      size_t I = static_cast<size_t>(Pending[K]);
      Slot &S = Slots[I];
      std::string Msg;
      int RC = net::readFrame(S.Control.get(), Msg);
      if (RC <= 0) {
        S.Control.reset(); // dying worker; pidfd path will reap it
        Pending.erase(std::find(Pending.begin(), Pending.end(),
                                static_cast<int>(I)));
        break; // Fds indices are stale; rebuild
      }
      if (Msg.rfind("snap_reply\n", 0) == 0) {
        Counters[I] = Msg.substr(11);
        Pending.erase(std::find(Pending.begin(), Pending.end(),
                                static_cast<int>(I)));
        break; // rebuild Fds without this slot
      }
      // Anything else (another stats_req, shutdown_req) replays after the
      // aggregation so it cannot be lost.
      Deferred.emplace_back(I, Msg);
    }
  }
  Slot &Req = Slots[ReqSlot];
  if (Req.Control.valid())
    net::writeFrame(Req.Control.get(),
                    "stats_reply " + Token + "\n" + workersSection(Counters));
}

std::string
Supervisor::workersSection(const std::vector<std::string> &Counters) const {
  bool Degraded = false;
  for (const Slot &S : Slots)
    if (S.St == SlotState::Failed)
      Degraded = true;
  std::string J = "\"supervisor\": {";
  J += "\"workers\": " + std::to_string(Slots.size());
  J += ", \"degraded\": " + std::string(Degraded ? "true" : "false");
  J += ", \"restarts_total\": " + std::to_string(TotalRestarts);
  J += ", \"aggregated\": true";
  J += "}, \"workers\": [";
  for (size_t I = 0; I < Slots.size(); ++I) {
    const Slot &S = Slots[I];
    if (I)
      J += ", ";
    J += "{\"slot\": " + std::to_string(I);
    J += ", \"pid\": " + std::to_string(S.Pid > 0 ? S.Pid : S.LastPid);
    const char *St = "running";
    switch (S.St) {
    case SlotState::Running:
      St = "running";
      break;
    case SlotState::Backoff:
      St = "restarting";
      break;
    case SlotState::Failed:
      St = "failed";
      break;
    case SlotState::Exited:
      St = "exited";
      break;
    }
    J += std::string(", \"state\": \"") + St + "\"";
    J += ", \"restarts\": " + std::to_string(S.Restarts);
    J += ", \"counters\": " +
         (Counters[I].empty() ? std::string("null") : Counters[I]);
    J += "}";
  }
  J += "]";
  return J;
}

void Supervisor::rollingDrain() {
  for (Slot &S : Slots)
    drainSlot(S);
}

void Supervisor::drainSlot(Slot &S) {
  if (S.Pid <= 0) {
    // Nothing spawned (backoff slot or already failed): cancel any
    // pending restart.
    if (S.St == SlotState::Backoff)
      S.St = SlotState::Exited;
    return;
  }
  // Ask nicely over the control channel; a torn channel falls back to
  // SIGTERM (the worker drains on either — control EOF and the signal
  // both route to Daemon::requestDrain).
  if (!S.Control.valid() || !net::writeFrame(S.Control.get(), "drain"))
    ::kill(S.Pid, SIGTERM);
  // Zero drops: wait for the worker to finish every admitted request. The
  // escalation timeout is a backstop against a truly hung worker, far
  // above any legitimate drain.
  bool Exited = false;
  if (S.PidFd.valid()) {
    Exited = pollIn(S.PidFd.get(), 120000) == 1;
  } else {
    const uint64_t Deadline = proc::monotonicMs() + 120000;
    while (proc::monotonicMs() < Deadline) {
      int Status = 0;
      if (proc::reapNoHang(S.Pid, &Status)) {
        S.Pid = -1;
        S.St = SlotState::Exited;
        S.Control.reset();
        return;
      }
      ::usleep(20 * 1000);
    }
  }
  if (!Exited && S.PidFd.valid())
    ::kill(S.Pid, SIGKILL);
  proc::reapBlocking(S.Pid, nullptr);
  S.Pid = -1;
  S.St = SlotState::Exited;
  S.Control.reset();
  S.PidFd.reset();
}

bool Supervisor::allSlotsFailed() const {
  for (const Slot &S : Slots)
    if (S.St != SlotState::Failed)
      return false;
  return !Slots.empty();
}

void Supervisor::closeListeners() {
  CanonicalUnix.reset();
  if (!Cfg.Worker.SocketPath.empty())
    ::unlink(Cfg.Worker.SocketPath.c_str());
}

//===----------------------------------------------------------------------===//
// Worker side
//===----------------------------------------------------------------------===//

namespace {

/// The worker's drain pipe for direct SIGTERM/SIGINT delivery (e.g. a
/// process-group Ctrl-C): the supervisor normally drains workers over the
/// control channel, but a worker must also drain — not die mid-request —
/// when signalled directly.
std::atomic<int> GWorkerDrainFd{-1};

void onWorkerTermSignal(int) {
  int Fd = GWorkerDrainFd.load(std::memory_order_relaxed);
  if (Fd >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t R = ::write(Fd, &B, 1);
  }
}

/// The worker end of the control channel: a thread that answers the
/// supervisor's snap probes, routes drain commands into the daemon, and
/// correlates stats_req/stats_reply for the StatsExtra hook.
class WorkerLink {
public:
  explicit WorkerLink(net::Fd Control) : Control(std::move(Control)) {}

  void attach(Daemon *Dm) { D = Dm; }

  void startThread() {
    int Pipe[2];
    if (::pipe(Pipe) == 0) {
      StopR = net::Fd(Pipe[0]);
      StopW = net::Fd(Pipe[1]);
    }
    T = std::thread([this] {
      trace::setCurrentThreadName("cerbd-ctl");
      loop();
    });
  }

  void stop() {
    if (StopW.valid()) {
      char B = 'x';
      [[maybe_unused]] ssize_t R = ::write(StopW.get(), &B, 1);
    }
    if (T.joinable())
      T.join();
  }

  /// The StatsExtra hook: ask the supervisor for the aggregated workers
  /// section; local-only fallback if it does not answer in time (e.g. it
  /// is mid-rolling-drain).
  std::string aggregatedSection(uint64_t TimeoutMs) {
    uint64_t Token;
    {
      std::lock_guard<std::mutex> L(Mu);
      Token = NextToken++;
    }
    bool Sent;
    {
      std::lock_guard<std::mutex> L(WriteMu);
      Sent = net::writeFrame(Control.get(),
                             "stats_req " + std::to_string(Token));
    }
    if (Sent) {
      std::unique_lock<std::mutex> L(Mu);
      Cv.wait_for(L, std::chrono::milliseconds(TimeoutMs), [&] {
        return Eof || Replies.count(Token) != 0;
      });
      auto It = Replies.find(Token);
      if (It != Replies.end()) {
        std::string S = std::move(It->second);
        Replies.erase(It);
        return S;
      }
    }
    return "\"supervisor\": {\"workers\": 0, \"degraded\": false, "
           "\"restarts_total\": 0, \"aggregated\": false}, \"workers\": []";
  }

  /// The ShutdownDelegate hook: true = the supervisor owns the drain now.
  bool delegateShutdown() {
    std::lock_guard<std::mutex> L(WriteMu);
    return net::writeFrame(Control.get(), "shutdown_req");
  }

private:
  void loop() {
    for (;;) {
      struct pollfd Fds[2] = {{Control.get(), POLLIN, 0},
                              {StopR.valid() ? StopR.get() : -1, POLLIN, 0}};
      int R = ::poll(Fds, 2, -1);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (Fds[1].revents)
        break; // stop() — the daemon already drained
      if (!Fds[0].revents)
        continue;
      std::string Msg;
      int RC = net::readFrame(Control.get(), Msg);
      if (RC <= 0) {
        // Supervisor died: orphaned workers drain and exit rather than
        // serve unsupervised forever.
        {
          std::lock_guard<std::mutex> L(Mu);
          Eof = true;
        }
        Cv.notify_all();
        if (D)
          D->requestDrain();
        break;
      }
      if (Msg == "snap") {
        std::lock_guard<std::mutex> L(WriteMu);
        net::writeFrame(Control.get(),
                        "snap_reply\n" +
                            (D ? D->statsJson(/*IncludeExtra=*/false)
                               : std::string("null")));
      } else if (Msg == "drain") {
        if (D)
          D->requestDrain();
      } else if (Msg.rfind("stats_reply ", 0) == 0) {
        size_t NL = Msg.find('\n');
        if (NL != std::string::npos) {
          uint64_t Token = std::strtoull(Msg.c_str() + 12, nullptr, 10);
          {
            std::lock_guard<std::mutex> L(Mu);
            Replies[Token] = Msg.substr(NL + 1);
          }
          Cv.notify_all();
        }
      }
    }
  }

  net::Fd Control;
  Daemon *D = nullptr;
  std::thread T;
  net::Fd StopR, StopW;
  std::mutex Mu;
  std::condition_variable Cv;
  std::mutex WriteMu;
  uint64_t NextToken = 1;
  std::map<uint64_t, std::string> Replies;
  bool Eof = false;
};

} // namespace

int cerb::serve::runWorkerChild(net::Fd Control, DaemonConfig Template,
                                uint16_t TcpPort, bool TcpOn) {
  // First message: the SCM_RIGHTS-passed unix listener (or a none marker).
  char Tag = 0;
  net::Fd Listen;
  if (net::recvFdMsg(Control.get(), &Tag, &Listen) != 1)
    return 81;

  DaemonConfig DC = std::move(Template);
  DC.SocketPath.clear(); // the supervisor owns (and unlinks) the path
  DC.InheritedUnixFd = (Tag == 'L' && Listen.valid()) ? Listen.release() : -1;
  if (TcpOn) {
    DC.TcpPort = TcpPort;
    DC.TcpReuseport = true;
  } else {
    DC.TcpPort = -1;
  }

  auto Link = std::make_unique<WorkerLink>(net::Fd(Control.release()));
  WorkerLink *L = Link.get();
  DC.StatsExtra = [L] { return L->aggregatedSection(2500); };
  DC.ShutdownDelegate = [L] { return L->delegateShutdown(); };

  Daemon D(std::move(DC));
  auto Started = D.start();
  if (!Started) {
    std::fprintf(stderr, "cerbd: worker %d failed to start: %s\n",
                 static_cast<int>(::getpid()), Started.error().str().c_str());
    return 82;
  }
  Link->attach(&D);
  Link->startThread();

  // Direct SIGTERM/SIGINT (process-group signals) drain this worker; the
  // supervisor notices the clean exit and, if it is not draining itself,
  // restarts the slot.
  GWorkerDrainFd.store(D.drainFd(), std::memory_order_relaxed);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof SA);
  SA.sa_handler = onWorkerTermSignal;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  int RC = D.waitUntilDrained();
  GWorkerDrainFd.store(-1, std::memory_order_relaxed);
  Link->stop();
  return RC;
}
