//===-- serve/ResultCache.cpp ---------------------------------------------===//

#include "serve/ResultCache.h"

#include "oracle/Report.h"
#include "serve/Protocol.h"
#include "trace/Trace.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cerb;
using namespace cerb::serve;

namespace fs = std::filesystem;

namespace {

// serve.cache.* counters: always-on observability the daemon's reports and
// traces share (see trace/Trace.h's counter contract).
trace::Counter &cntMemHits() {
  static trace::Counter C("serve.cache.memory_hits");
  return C;
}
trace::Counter &cntDiskHits() {
  static trace::Counter C("serve.cache.disk_hits");
  return C;
}
trace::Counter &cntMisses() {
  static trace::Counter C("serve.cache.misses");
  return C;
}
trace::Counter &cntEvictions() {
  static trace::Counter C("serve.cache.evictions");
  return C;
}
trace::Counter &cntStores() {
  static trace::Counter C("serve.cache.stores");
  return C;
}

constexpr const char *EntryMagic = "cerb-serve-cache/1 ";

} // namespace

ResultCache::ResultCache(CacheConfig Cfg) : Cfg(std::move(Cfg)) {
  if (!this->Cfg.Dir.empty()) {
    std::error_code EC;
    fs::create_directories(fs::path(this->Cfg.Dir) / "objects", EC);
    fs::create_directories(fs::path(this->Cfg.Dir) / "tmp", EC);
  }
}

std::string ResultCache::objectPath(uint64_t Hash) const {
  char Hex[24];
  std::snprintf(Hex, sizeof Hex, "%016llx",
                static_cast<unsigned long long>(Hash));
  // Shard by the top byte so one directory never accumulates every entry.
  return Cfg.Dir + "/objects/" + std::string(Hex, 2) + "/" + Hex;
}

std::optional<std::string> ResultCache::get(const std::string &KeyMaterial) {
  uint64_t Hash = cacheKeyHash(KeyMaterial);
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Map.find(Hash);
    if (It != Map.end() && It->second->second.Material == KeyMaterial) {
      Lru.splice(Lru.begin(), Lru, It->second); // touch: move to MRU
      ++S.MemoryHits;
      cntMemHits().add();
      return It->second->second.Body;
    }
  }
  if (!Cfg.Dir.empty()) {
    if (auto Body = diskGet(KeyMaterial, Hash)) {
      std::lock_guard<std::mutex> L(M);
      ++S.DiskHits;
      cntDiskHits().add();
      memoryPutLocked(Hash, KeyMaterial, *Body); // promote
      return Body;
    }
  }
  std::lock_guard<std::mutex> L(M);
  ++S.Misses;
  cntMisses().add();
  return std::nullopt;
}

void ResultCache::put(const std::string &KeyMaterial,
                      const std::string &Body) {
  uint64_t Hash = cacheKeyHash(KeyMaterial);
  {
    std::lock_guard<std::mutex> L(M);
    ++S.Stores;
    cntStores().add();
    memoryPutLocked(Hash, KeyMaterial, Body);
  }
  if (!Cfg.Dir.empty())
    diskPut(KeyMaterial, Hash, Body);
}

void ResultCache::memoryPutLocked(uint64_t Hash,
                                  const std::string &KeyMaterial,
                                  const std::string &Body) {
  if (Cfg.MaxMemoryEntries == 0)
    return;
  auto It = Map.find(Hash);
  if (It != Map.end()) {
    // Same hash: refresh (covers both re-put and collision overwrite —
    // the entry stores its own material, so reads stay correct).
    It->second->second = Entry{KeyMaterial, Body};
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Hash, Entry{KeyMaterial, Body});
  Map[Hash] = Lru.begin();
  while (Map.size() > Cfg.MaxMemoryEntries) {
    Map.erase(Lru.back().first);
    Lru.pop_back();
    ++S.Evictions;
    cntEvictions().add();
  }
}

std::optional<std::string> ResultCache::diskGet(const std::string &KeyMaterial,
                                                uint64_t Hash) {
  std::ifstream In(objectPath(Hash), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return std::nullopt;
  std::string All = Buf.str();
  // Header line: magic + key material. Anything that does not match — torn
  // write survivor, hash collision, foreign file — is a miss.
  std::string Expect = std::string(EntryMagic) + KeyMaterial + "\n";
  if (All.size() < Expect.size() || All.compare(0, Expect.size(), Expect) != 0)
    return std::nullopt;
  return All.substr(Expect.size());
}

void ResultCache::diskPut(const std::string &KeyMaterial, uint64_t Hash,
                          const std::string &Body) {
  std::string Path = objectPath(Hash);
  std::error_code EC;
  fs::create_directories(fs::path(Path).parent_path(), EC);
  // Atomic publish: write a private temp file, then rename over the final
  // name. Readers either see the whole entry or none of it.
  static std::atomic<unsigned> TmpId{0};
  std::string Tmp = Cfg.Dir + "/tmp/put-" +
                    std::to_string(static_cast<unsigned long long>(
                        reinterpret_cast<uintptr_t>(this) & 0xFFFF)) +
                    "-" + std::to_string(TmpId.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return; // disk tier is best-effort; memory tier already holds it
    Out << EntryMagic << KeyMaterial << "\n" << Body;
    Out.flush();
    if (!Out) {
      fs::remove(Tmp, EC);
      return;
    }
  }
  fs::rename(Tmp, Path, EC);
  if (EC)
    fs::remove(Tmp, EC);
}

bool ResultCache::flushIndex() {
  if (Cfg.Dir.empty())
    return true;
  CacheStats Snap = stats();
  uint64_t DiskEntries = 0;
  std::error_code EC;
  for (fs::recursive_directory_iterator
           It(fs::path(Cfg.Dir) / "objects", EC),
       End;
       It != End && !EC; It.increment(EC))
    if (It->is_regular_file(EC))
      ++DiskEntries;
  std::string J;
  J += "{\n";
  J += "  \"schema\": \"cerb-serve-index/1\",\n";
  J += "  \"disk_entries\": " + std::to_string(DiskEntries) + ",\n";
  J += "  \"memory_entries\": " + std::to_string(Snap.MemoryEntries) + ",\n";
  J += "  \"memory_hits\": " + std::to_string(Snap.MemoryHits) + ",\n";
  J += "  \"disk_hits\": " + std::to_string(Snap.DiskHits) + ",\n";
  J += "  \"misses\": " + std::to_string(Snap.Misses) + ",\n";
  J += "  \"evictions\": " + std::to_string(Snap.Evictions) + ",\n";
  J += "  \"stores\": " + std::to_string(Snap.Stores) + "\n";
  J += "}\n";
  return oracle::writeTextFile(Cfg.Dir + "/index.json", J);
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  CacheStats Out = S;
  Out.MemoryEntries = Map.size();
  return Out;
}
