//===-- serve/ResultCache.cpp ---------------------------------------------===//

#include "serve/ResultCache.h"

#include "oracle/Report.h"
#include "serve/Protocol.h"
#include "support/FaultInjector.h"
#include "support/Json.h"
#include "trace/Trace.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cerb;
using namespace cerb::serve;

namespace fs = std::filesystem;

namespace {

// serve.cache.* counters: always-on observability the daemon's reports and
// traces share (see trace/Trace.h's counter contract).
trace::Counter &cntMemHits() {
  static trace::Counter C("serve.cache.memory_hits");
  return C;
}
trace::Counter &cntDiskHits() {
  static trace::Counter C("serve.cache.disk_hits");
  return C;
}
trace::Counter &cntMisses() {
  static trace::Counter C("serve.cache.misses");
  return C;
}
trace::Counter &cntEvictions() {
  static trace::Counter C("serve.cache.evictions");
  return C;
}
trace::Counter &cntStores() {
  static trace::Counter C("serve.cache.stores");
  return C;
}

trace::Counter &cntQuarantined() {
  static trace::Counter C("serve.cache.quarantined");
  return C;
}

// Entry format v2: "cerb-serve-cache/2 <mlen> <blen>\n" + material + "\n"
// + body. The explicit lengths make truncation and torn writes detectable
// *structurally* — recovery can validate an entry without knowing its key,
// and a torn-but-published file (non-atomic filesystem, injected
// cache.torn fault) can never replay a short body as a hit.
constexpr const char *EntryMagic = "cerb-serve-cache/2";

std::string entryHeader(size_t MaterialLen, size_t BodyLen) {
  return std::string(EntryMagic) + " " + std::to_string(MaterialLen) + " " +
         std::to_string(BodyLen) + "\n";
}

/// Structural validation shared by diskGet and recovery: parses the header
/// line and checks the exact record length. Returns false for anything a
/// crash, a partial write, or a foreign file could have left behind. On
/// success *MaterialAt/*BodyAt delimit the two payload sections.
bool parseEntry(const std::string &All, size_t *MaterialAt,
                size_t *MaterialLen, size_t *BodyAt, size_t *BodyLen) {
  size_t Nl = All.find('\n');
  if (Nl == std::string::npos)
    return false;
  uint64_t MLen = 0, BLen = 0;
  char Magic[32] = {0};
  if (std::sscanf(All.c_str(), "%31s %" SCNu64 " %" SCNu64, Magic, &MLen,
                  &BLen) != 3 ||
      std::string_view(Magic) != EntryMagic)
    return false;
  size_t HdrLen = Nl + 1;
  // material + "\n" + body, with nothing missing and nothing extra.
  if (All.size() != HdrLen + MLen + 1 + BLen)
    return false;
  if (All[HdrLen + MLen] != '\n')
    return false;
  *MaterialAt = HdrLen;
  *MaterialLen = MLen;
  *BodyAt = HdrLen + MLen + 1;
  *BodyLen = BLen;
  return true;
}

bool readWholeFile(const fs::path &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return false;
  Out = Buf.str();
  return true;
}

} // namespace

ResultCache::ResultCache(CacheConfig Cfg) : Cfg(std::move(Cfg)) {
  if (!this->Cfg.Dir.empty()) {
    std::error_code EC;
    fs::create_directories(fs::path(this->Cfg.Dir) / "objects", EC);
    fs::create_directories(fs::path(this->Cfg.Dir) / "tmp", EC);
    recover();
  }
}

RecoveryStats ResultCache::recover() {
  RecoveryStats R;
  if (Cfg.Dir.empty())
    return R;
  std::error_code EC;
  fs::path Root(Cfg.Dir);

  // 1. Temp files are in-flight publishes that never renamed (kill -9 or an
  //    injected cache.rename fault). Their entries were re-computable by
  //    definition; reclaim the space.
  for (fs::directory_iterator It(Root / "tmp", EC), End; It != End && !EC;
       It.increment(EC))
    if (It->is_regular_file(EC) && fs::remove(It->path(), EC))
      ++R.TmpReclaimed;

  // 2. Validate every object structurally (header magic + exact lengths).
  //    Invalid files — torn writes that beat the rename discipline, foreign
  //    droppings, superseded formats — are quarantined, not deleted:
  //    they're evidence for a post-mortem, and leaving them in objects/
  //    would cost a failed parse on every lookup.
  fs::create_directories(Root / "quarantine", EC);
  std::vector<fs::path> Bad;
  for (fs::recursive_directory_iterator It(Root / "objects", EC), End;
       It != End && !EC; It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    std::string All;
    size_t MA, ML, BA, BL;
    if (readWholeFile(It->path(), All) && parseEntry(All, &MA, &ML, &BA, &BL))
      ++R.ValidEntries;
    else
      Bad.push_back(It->path());
  }
  for (const fs::path &P : Bad) {
    fs::rename(P, Root / "quarantine" / P.filename(), EC);
    if (EC)
      fs::remove(P, EC); // cross-device fallback: drop it
    ++R.Quarantined;
    cntQuarantined().add();
  }

  // 3. index.json is advisory, but a truncated one (crash mid-flush) should
  //    not greet the operator as garbage: rebuild it when unreadable.
  fs::path Index = Root / "index.json";
  bool NeedsRebuild = !fs::exists(Index, EC);
  if (!NeedsRebuild) {
    std::string Text;
    NeedsRebuild =
        !readWholeFile(Index, Text) || !json::parse(Text).has_value();
  }
  {
    std::lock_guard<std::mutex> L(M);
    S.Quarantined += R.Quarantined;
    S.TmpReclaimed += R.TmpReclaimed;
    if (NeedsRebuild)
      S.IndexRebuilt = 1;
  }
  if (NeedsRebuild) {
    R.IndexRebuilt = true;
    flushIndex();
  }
  return R;
}

std::string ResultCache::objectPath(uint64_t Hash) const {
  char Hex[24];
  std::snprintf(Hex, sizeof Hex, "%016llx",
                static_cast<unsigned long long>(Hash));
  // Shard by the top byte so one directory never accumulates every entry.
  return Cfg.Dir + "/objects/" + std::string(Hex, 2) + "/" + Hex;
}

std::optional<std::string> ResultCache::get(const std::string &KeyMaterial) {
  uint64_t Hash = cacheKeyHash(KeyMaterial);
  {
    std::lock_guard<std::mutex> L(M);
    auto It = Map.find(Hash);
    if (It != Map.end() && It->second->second.Material == KeyMaterial) {
      Lru.splice(Lru.begin(), Lru, It->second); // touch: move to MRU
      ++S.MemoryHits;
      cntMemHits().add();
      return It->second->second.Body;
    }
  }
  if (!Cfg.Dir.empty()) {
    if (auto Body = diskGet(KeyMaterial, Hash)) {
      std::lock_guard<std::mutex> L(M);
      ++S.DiskHits;
      cntDiskHits().add();
      memoryPutLocked(Hash, KeyMaterial, *Body); // promote
      return Body;
    }
  }
  std::lock_guard<std::mutex> L(M);
  ++S.Misses;
  cntMisses().add();
  return std::nullopt;
}

void ResultCache::put(const std::string &KeyMaterial,
                      const std::string &Body) {
  uint64_t Hash = cacheKeyHash(KeyMaterial);
  {
    std::lock_guard<std::mutex> L(M);
    ++S.Stores;
    cntStores().add();
    memoryPutLocked(Hash, KeyMaterial, Body);
  }
  if (!Cfg.Dir.empty())
    diskPut(KeyMaterial, Hash, Body);
}

void ResultCache::memoryPutLocked(uint64_t Hash,
                                  const std::string &KeyMaterial,
                                  const std::string &Body) {
  if (Cfg.MaxMemoryEntries == 0)
    return;
  auto It = Map.find(Hash);
  if (It != Map.end()) {
    // Same hash: refresh (covers both re-put and collision overwrite —
    // the entry stores its own material, so reads stay correct).
    It->second->second = Entry{KeyMaterial, Body};
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.emplace_front(Hash, Entry{KeyMaterial, Body});
  Map[Hash] = Lru.begin();
  while (Map.size() > Cfg.MaxMemoryEntries) {
    Map.erase(Lru.back().first);
    Lru.pop_back();
    ++S.Evictions;
    cntEvictions().add();
  }
}

std::optional<std::string> ResultCache::diskGet(const std::string &KeyMaterial,
                                                uint64_t Hash) {
  if (fault::shouldFail("cache.disk_read"))
    return std::nullopt; // unreadable disk degrades to a miss
  std::string All;
  if (!readWholeFile(objectPath(Hash), All))
    return std::nullopt;
  // Structural check (exact lengths) + key verification. Anything that
  // does not match — torn write survivor, truncation, hash collision,
  // foreign file — is a miss, never wrong bytes.
  size_t MA, ML, BA, BL;
  if (!parseEntry(All, &MA, &ML, &BA, &BL))
    return std::nullopt;
  if (ML != KeyMaterial.size() ||
      All.compare(MA, ML, KeyMaterial) != 0)
    return std::nullopt;
  return All.substr(BA, BL);
}

void ResultCache::diskPut(const std::string &KeyMaterial, uint64_t Hash,
                          const std::string &Body) {
  if (fault::shouldFail("cache.disk_write"))
    return; // ENOSPC et al.: disk tier is best-effort, memory tier has it
  std::string Path = objectPath(Hash);
  std::error_code EC;
  fs::create_directories(fs::path(Path).parent_path(), EC);
  // Atomic publish: write a private temp file, then rename over the final
  // name. Readers either see the whole entry or none of it.
  static std::atomic<unsigned> TmpId{0};
  std::string Tmp = Cfg.Dir + "/tmp/put-" +
                    std::to_string(static_cast<unsigned long long>(
                        reinterpret_cast<uintptr_t>(this) & 0xFFFF)) +
                    "-" + std::to_string(TmpId.fetch_add(1));
  std::string Record =
      entryHeader(KeyMaterial.size(), Body.size()) + KeyMaterial + "\n" + Body;
  // cache.torn publishes a half-written record — what a torn write on a
  // non-atomic filesystem would leave. The length header makes every
  // reader (and the recovery scan) reject it.
  if (fault::shouldFail("cache.torn"))
    Record.resize(Record.size() / 2);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return; // disk tier is best-effort; memory tier already holds it
    Out << Record;
    Out.flush();
    if (!Out) {
      fs::remove(Tmp, EC);
      return;
    }
  }
  if (fault::shouldFail("cache.rename"))
    return; // kill -9 between write and rename: tmp file left for recovery
  fs::rename(Tmp, Path, EC);
  if (EC)
    fs::remove(Tmp, EC);
}

bool ResultCache::flushIndex() {
  if (Cfg.Dir.empty())
    return true;
  CacheStats Snap = stats();
  uint64_t DiskEntries = 0;
  std::error_code EC;
  for (fs::recursive_directory_iterator
           It(fs::path(Cfg.Dir) / "objects", EC),
       End;
       It != End && !EC; It.increment(EC))
    if (It->is_regular_file(EC))
      ++DiskEntries;
  std::string J;
  J += "{\n";
  J += "  \"schema\": \"cerb-serve-index/1\",\n";
  J += "  \"disk_entries\": " + std::to_string(DiskEntries) + ",\n";
  J += "  \"memory_entries\": " + std::to_string(Snap.MemoryEntries) + ",\n";
  J += "  \"memory_hits\": " + std::to_string(Snap.MemoryHits) + ",\n";
  J += "  \"disk_hits\": " + std::to_string(Snap.DiskHits) + ",\n";
  J += "  \"misses\": " + std::to_string(Snap.Misses) + ",\n";
  J += "  \"evictions\": " + std::to_string(Snap.Evictions) + ",\n";
  J += "  \"stores\": " + std::to_string(Snap.Stores) + ",\n";
  J += "  \"quarantined\": " + std::to_string(Snap.Quarantined) + ",\n";
  J += "  \"tmp_reclaimed\": " + std::to_string(Snap.TmpReclaimed) + ",\n";
  J += "  \"index_rebuilt\": " + std::to_string(Snap.IndexRebuilt) + "\n";
  J += "}\n";
  return oracle::writeTextFile(Cfg.Dir + "/index.json", J);
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> L(M);
  CacheStats Out = S;
  Out.MemoryEntries = Map.size();
  return Out;
}
