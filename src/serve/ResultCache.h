//===-- serve/ResultCache.h - Two-tier content-addressed cache --*- C++ -*-===//
///
/// \file
/// The daemon's durable memo table: maps a cache key (see
/// Protocol.h::cacheKeyMaterial — source × policies × limits × semantics
/// version) to the exact bytes of the `cerb-oracle-report/1` document the
/// cold evaluation produced.
///
/// Tier 1 is an in-process LRU bounded at MaxMemoryEntries (evictions only
/// drop the in-memory copy; the disk tier keeps the entry). Tier 2 is a
/// content-addressed on-disk store: one file per key at
/// `<dir>/objects/<hh>/<16-hex-digits>`, written atomically
/// (temp file + rename) so a killed daemon can never leave a torn entry,
/// and carrying the full key material *and exact material/body lengths* in
/// a header line so a 64-bit hash collision, a truncated file, or a torn
/// write on a non-atomic filesystem degrades to a miss, never to a wrong
/// replay. A second daemon pointed at the same directory — or the same
/// daemon after a restart — serves repeat queries from here in
/// microseconds.
///
/// Crash recovery: construction scans the store and repairs what a
/// `kill -9` can leave behind — temp files from an interrupted publish are
/// reclaimed, structurally invalid object files are quarantined under
/// `<dir>/quarantine/` (kept for post-mortems, never served), and a
/// missing or corrupt `index.json` is rebuilt. Valid entries always
/// survive; everything else degrades to a miss and self-heals on the next
/// write.
///
/// Fault points (support/FaultInjector): `cache.disk_read` (read treated
/// as a miss), `cache.disk_write` (ENOSPC-style store skip), `cache.torn`
/// (a torn file is published), `cache.rename` (publish dies between temp
/// write and rename, as kill -9 would).
///
/// All methods are thread-safe; hit/miss/eviction totals are mirrored into
/// the `serve.cache.*` trace counters.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_RESULTCACHE_H
#define CERB_SERVE_RESULTCACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace cerb::serve {

struct CacheConfig {
  /// Disk-tier root; empty disables persistence (memory-only daemon).
  std::string Dir;
  /// Tier-1 bound: LRU entries held in memory (0 disables the tier).
  size_t MaxMemoryEntries = 1024;
};

struct CacheStats {
  uint64_t MemoryHits = 0;
  uint64_t DiskHits = 0; ///< found on disk (and promoted to memory)
  uint64_t Misses = 0;
  uint64_t Evictions = 0; ///< memory-tier LRU drops
  uint64_t Stores = 0;
  uint64_t MemoryEntries = 0;
  // Crash-recovery totals (set by the constructor scan / recover()).
  uint64_t Quarantined = 0;  ///< invalid object files moved aside
  uint64_t TmpReclaimed = 0; ///< interrupted-publish temp files removed
  uint64_t IndexRebuilt = 0; ///< 1 when index.json was missing/corrupt
};

/// What one recovery pass found and fixed.
struct RecoveryStats {
  uint64_t ValidEntries = 0;
  uint64_t Quarantined = 0;
  uint64_t TmpReclaimed = 0;
  bool IndexRebuilt = false;
};

class ResultCache {
public:
  /// Opens (and, for a persistent cache, crash-recovers) the store.
  explicit ResultCache(CacheConfig Cfg);

  /// Re-runs the crash-recovery scan: reclaims temp files, quarantines
  /// structurally invalid object files, rebuilds a missing/corrupt
  /// `index.json`. The constructor runs this once; exposed for tests and
  /// for an operator `salvage` pass against a live directory.
  RecoveryStats recover();

  /// Looks \p KeyMaterial up: memory first, then disk (verifying the
  /// stored material — a hash collision or torn file is a miss).
  std::optional<std::string> get(const std::string &KeyMaterial);

  /// Records the result bytes for \p KeyMaterial in both tiers.
  void put(const std::string &KeyMaterial, const std::string &Body);

  /// Writes `<dir>/index.json` (entry/hit/miss/eviction totals). The drain
  /// path calls this so operators can read a consistent summary after
  /// SIGTERM; it is advisory — the object files alone are authoritative.
  bool flushIndex();

  CacheStats stats() const;
  bool persistent() const { return !Cfg.Dir.empty(); }

private:
  struct Entry {
    std::string Material; ///< full key, for collision-proof verification
    std::string Body;
  };

  std::string objectPath(uint64_t Hash) const;
  std::optional<std::string> diskGet(const std::string &KeyMaterial,
                                     uint64_t Hash);
  void diskPut(const std::string &KeyMaterial, uint64_t Hash,
               const std::string &Body);
  /// Inserts into the memory tier (must hold M); evicts LRU overflow.
  void memoryPutLocked(uint64_t Hash, const std::string &KeyMaterial,
                       const std::string &Body);

  CacheConfig Cfg;
  mutable std::mutex M;
  /// LRU: most-recent at the front; the map points into the list.
  std::list<std::pair<uint64_t, Entry>> Lru;
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, Entry>>::iterator>
      Map;
  CacheStats S;
};

} // namespace cerb::serve

#endif // CERB_SERVE_RESULTCACHE_H
