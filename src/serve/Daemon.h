//===-- serve/Daemon.h - The persistent evaluation daemon -------*- C++ -*-===//
///
/// \file
/// `cerbd`: a long-lived evaluation service over unix-domain (and
/// optionally loopback-TCP) sockets speaking the `cerb-serve/1` protocol.
/// Architecture:
///
///  - an accept thread multiplexes the listeners and a self-pipe (the
///    drain signal) with poll();
///  - one reader thread per connection parses frames and answers
///    ping/stats inline; eval requests pass *admission control*: while
///    Draining they are rejected with `draining`, and once
///    queued-plus-running requests reach MaxQueue they are rejected with
///    `overloaded` — bounded queue and an explicit backpressure signal
///    instead of unbounded growth. Readers are detached and retire
///    themselves the moment their peer goes away (descriptor released
///    immediately, not at drain), use deadline-aware frame reads so a
///    partial or garbage frame can never hang them (IdleTimeoutMs reaps
///    silent peers, ReadTimeoutMs bounds a started frame), and MaxConns
///    caps concurrent connections with an explicit `conn_limit` rejection
///    at accept time;
///  - admitted requests run on the shared support::ThreadPool. Each task
///    consults the two-tier cache (ResultCache over the report bytes;
///    the daemon-resident serve::CompileCache underneath for elaborations,
///    LRU-bounded by `--compile-cache-mb`), evaluates on a miss, stores,
///    and writes the response under the connection's write mutex
///    (concurrent requests on one connection interleave safely; responses
///    carry ids, order is not guaranteed);
///  - a `batch` frame is admitted as a whole (it needs N free queue slots
///    or it is rejected `overloaded` in one frame) and fans its requests
///    out across the same pool; each member streams its ordinary eval
///    response back as it completes, and the last one emits the
///    `batch_done` terminator.
///
/// Graceful drain (SIGTERM via requestDrain(), or the `shutdown` op):
/// stop accepting, reject new evals, *finish every admitted request* (zero
/// drops), retire connection readers, flush the cache index, release the
/// sockets. waitUntilDrained() returns only after all of that.
///
/// Observability: `serve.*` trace counters (requests, admissions,
/// rejections, cache hits/misses/evictions via ResultCache) and per-request
/// `serve.request` spans — `cerb serve --trace=FILE` profiles a whole
/// daemon lifetime.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_DAEMON_H
#define CERB_SERVE_DAEMON_H

#include "serve/CompileCache.h"
#include "serve/Eval.h"
#include "serve/Protocol.h"
#include "serve/ResultCache.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cerb::serve {

struct DaemonConfig {
  /// Unix-domain socket path (empty = no unix listener).
  std::string SocketPath;
  /// Loopback TCP port; -1 = no TCP listener, 0 = kernel-assigned (read it
  /// back with Daemon::tcpPort()).
  int TcpPort = -1;
  /// Evaluation worker threads (0 = hardware concurrency).
  unsigned Threads = 0;
  /// Admission bound: maximum queued-plus-running eval requests. Beyond
  /// it, requests are answered `overloaded` immediately.
  uint64_t MaxQueue = 256;
  /// Concurrent-connection cap: connections accepted beyond it receive a
  /// `conn_limit` rejection frame and are closed (0 = unlimited).
  uint64_t MaxConns = 0;
  /// Reap a connection whose peer sends nothing for this long between
  /// frames (0 = never reap). Reaped peers simply reconnect.
  uint64_t IdleTimeoutMs = 0;
  /// Once a frame's first byte arrives the rest must follow within this
  /// window (0 = wait forever). Bounds the damage of a torn or trickling
  /// frame: the reader closes the connection instead of hanging.
  uint64_t ReadTimeoutMs = 0;
  CacheConfig Cache;
  /// LRU byte budget of the daemon-resident compile cache, in MiB
  /// (`--compile-cache-mb`; 0 = unbounded). Charges are deterministic
  /// (source bytes + fixed overhead, see exec::CompileCache::entryCharge).
  uint64_t CompileCacheMb = 256;
  /// Honour the `shutdown` op (tests and the CLI default); a deployment
  /// that only trusts signals can turn it off.
  bool EnableShutdownOp = true;
  bool Quiet = true;

  // --- Supervised-worker mode (serve/Supervisor.h) ---------------------
  /// Adopt this descriptor as the unix-domain listener instead of binding
  /// SocketPath (the supervisor binds once and passes the fd to every
  /// worker over SCM_RIGHTS; ownership transfers to the daemon). Leave
  /// SocketPath empty in that case so drain does not unlink the
  /// supervisor's socket file.
  int InheritedUnixFd = -1;
  /// Bind the TCP listener with SO_REUSEPORT: each worker binds its own
  /// socket on the same concrete port and the kernel spreads accepts.
  bool TcpReuseport = false;
  /// Extra JSON members appended to the `stats` reply (after the local
  /// counters) — the worker's hook for splicing in the supervisor's
  /// aggregated `workers:` section. Must return either an empty string or
  /// valid `"key": value, ...` members without the surrounding braces.
  std::function<std::string()> StatsExtra;
  /// When set, the `shutdown` op calls this instead of draining locally; a
  /// true return means the shutdown was delegated (the supervisor will
  /// drain the whole pool), false falls back to the local drain.
  std::function<bool()> ShutdownDelegate;
};

/// Point-in-time operational numbers (the `stats` op serializes these).
struct DaemonSnapshot {
  uint64_t InFlight = 0;
  uint64_t QueueHighWater = 0;
  uint64_t Requests = 0; ///< frames parsed (all ops)
  uint64_t Admitted = 0;
  uint64_t Overloaded = 0;
  uint64_t RejectedDraining = 0;
  uint64_t RejectedConnLimit = 0; ///< accepts bounced off MaxConns
  uint64_t IdleReaped = 0;        ///< connections reaped by IdleTimeoutMs
  uint64_t ReadTimeouts = 0;      ///< frames that stalled past ReadTimeoutMs
  uint64_t BadFrames = 0;         ///< oversize/torn frames that ended a conn
  uint64_t LiveConns = 0;         ///< reader threads currently alive
  bool Draining = false;
};

class Daemon {
public:
  explicit Daemon(DaemonConfig Cfg);
  /// Drains and stops if still running (idempotent with waitUntilDrained).
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds the listeners and starts the accept thread + worker pool.
  ExpectedVoid start();

  /// Initiates a graceful drain. Thread-safe; also safe from a signal
  /// handler *indirectly*: handlers should instead `write()` one byte to
  /// drainFd() (async-signal-safe), which is exactly what this does.
  void requestDrain();
  /// The self-pipe write end; `write(fd, "x", 1)` from a SIGTERM handler
  /// triggers the drain.
  int drainFd() const { return WakeWrite.get(); }

  /// Blocks until a drain completes: every admitted request answered, all
  /// threads joined, cache index flushed, sockets released. Returns 0.
  int waitUntilDrained();

  /// Kernel-assigned port when TcpPort was 0.
  uint16_t tcpPort() const { return BoundTcpPort; }

  DaemonSnapshot snapshot() const;
  /// The `stats` reply body. IncludeExtra splices in Cfg.StatsExtra (the
  /// supervisor's aggregated workers section); the supervisor's own `snap`
  /// probe asks for the local-only form — a worker answering a snap with
  /// the aggregated form would recurse into the supervisor forever.
  std::string statsJson(bool IncludeExtra = true) const;
  const ResultCache &cache() const { return Results; }
  const CompileCache &compileCache() const { return Compiles; }
  unsigned threadCount() const { return Pool ? Pool->threadCount() : 0; }

private:
  struct Conn {
    net::Fd Sock;
    std::mutex WriteMu;
  };

  /// Shared fan-out state of one admitted batch: the last request to
  /// finish (Remaining hits zero) sends the terminating batch_done frame.
  /// Completed counts replies actually written — every worker increments
  /// it *before* decrementing Remaining, so the terminator's summary sees
  /// all of them.
  struct BatchTicket {
    std::shared_ptr<Conn> C;
    std::string BatchId;
    uint64_t Requested = 0;
    std::atomic<uint64_t> Remaining{0};
    std::atomic<uint64_t> Completed{0};
  };

  void acceptLoop();
  void connLoop(std::shared_ptr<Conn> C);
  /// Dispatches one frame; false ends the connection.
  bool handleFrame(const std::shared_ptr<Conn> &C, const std::string &Frame);
  void runEval(std::shared_ptr<Conn> C, EvalRequest Q);
  /// One batch member on the pool: evaluate, reply, retire one InFlight
  /// slot; the last member emits the batch_done terminator. \p Key is the
  /// cache key the reader thread already computed (and probed, missing) on
  /// the inline fast path — empty when that probe did not happen.
  void runBatchEval(std::shared_ptr<BatchTicket> T, EvalRequest Q,
                    std::string Key);
  /// The shared eval core: result-cache probe, evaluate on miss, store.
  /// A non-empty \p ProbedKey means the caller already probed that key and
  /// missed — the probe (and its stats counting) is not repeated.
  std::string evalBody(const EvalRequest &Q, std::string ProbedKey = {});
  bool send(Conn &C, std::string_view Payload);

  DaemonConfig Cfg;
  ResultCache Results;
  CompileCache Compiles; ///< daemon-lifetime elaboration sharing
  std::unique_ptr<ThreadPool> Pool;

  net::Fd ListenUnix, ListenTcp;
  net::Fd WakeRead, WakeWrite; ///< drain self-pipe
  uint16_t BoundTcpPort = 0;
  bool Started = false, Drained = false;

  std::thread Acceptor;
  mutable std::mutex ConnMu;
  /// Live connections only: a reader erases its Conn on exit, so the
  /// descriptor is released the moment the peer goes away (the shared_ptr
  /// keeps it alive for any still-running evals on that connection).
  std::vector<std::shared_ptr<Conn>> Conns;

  mutable std::mutex StateMu;
  std::condition_variable DrainCV;
  std::atomic<bool> Draining{false};
  uint64_t InFlight = 0;
  /// Detached reader threads still running (guarded by StateMu; drain
  /// waits for zero — the detached-thread analogue of join()).
  uint64_t ConnThreadsLive = 0;
  DaemonSnapshot Stats;
};

} // namespace cerb::serve

#endif // CERB_SERVE_DAEMON_H
