//===-- serve/Eval.h - Request evaluation on the oracle core ----*- C++ -*-===//
///
/// \file
/// Turns one EvalRequest into the bytes of a `cerb-oracle-report/1`
/// document. This is the cold path behind the result cache: one
/// oracle::runJob per requested policy against the daemon-lifetime
/// CompileCache (so the expensive front half — parse, desugar, typecheck,
/// elaborate — is computed once per distinct source across *all* requests
/// and policy variants, the Lööw et al. observation the ISSUE cites).
///
/// Determinism: the report is serialized with IncludeTimings=false, trace
/// counters are NOT embedded (concurrent requests would interleave
/// registry deltas), and the batch-level compile-cache fields are derived
/// from the request shape alone — so the bytes depend only on the request,
/// never on daemon state, concurrency, or --jobs.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_EVAL_H
#define CERB_SERVE_EVAL_H

#include "oracle/CompileCache.h"
#include "serve/Protocol.h"

#include <string>

namespace cerb::serve {

/// Builds the oracle jobs for \p Q (one per policy, in request order).
std::vector<oracle::Job> requestJobs(const EvalRequest &Q);

/// Evaluates \p Q and serializes the result. Compile errors, budget trips,
/// and deadlines are inside the report (per-job statuses), never failures
/// of the call itself.
std::string evaluateToReport(const EvalRequest &Q,
                             oracle::CompileCache &Compiles);

} // namespace cerb::serve

#endif // CERB_SERVE_EVAL_H
