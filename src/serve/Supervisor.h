//===-- serve/Supervisor.h - Pre-forked worker pool for cerbd ---*- C++ -*-===//
///
/// \file
/// `cerb serve --workers N`: a supervisor process that pre-forks N worker
/// processes, each running the ordinary serve::Daemon accept/eval loop,
/// and keeps the pool alive — one worker crashing (an ASan abort in a
/// memory-model corner, an injected `worker.crash`, a kill -9) costs one
/// process, not the service.
///
/// Listener sharing:
///  - unix-domain: the supervisor binds the socket once and passes the
///    descriptor to every worker over its control socketpair via
///    SCM_RIGHTS. All workers (and the supervisor) share one open file
///    description, so the accept queue survives any subset of workers
///    dying: connections made while every worker is mid-restart simply
///    wait to be accepted — a retrying client never sees ECONNREFUSED.
///  - TCP: the supervisor binds a throwaway SO_REUSEPORT socket only to
///    resolve a kernel-assigned port, then each worker binds its own
///    SO_REUSEPORT socket on that concrete port and the kernel spreads
///    accepts across them.
///
/// Supervision: children are watched through pidfd_open descriptors in the
/// supervisor's poll loop (waitpid(WNOHANG) sweeps on kernels without
/// pidfd). A dead worker is restarted after a seeded exponential backoff
/// (RestartBackoff); a slot that crashes more than RestartLimit times
/// within RestartWindowMs trips its FlapBreaker and is abandoned —
/// `stats` reports the pool `degraded` — and when every slot has tripped
/// the supervisor gives up and exits nonzero rather than flap forever.
///
/// Control channel: one socketpair per worker carrying the same
/// length-prefixed frames as the wire protocol, with plain-text payloads:
///   worker -> sup:  "ready <pid>"            after the daemon started
///                   "stats_req <token>"      a client asked this worker
///                                            for `stats`
///                   "shutdown_req"           a client sent `shutdown`
///   sup -> worker:  "snap"                   reply with local stats
///                   "stats_reply <token>\n<section>"
///                   "drain"                  finish in-flight work, exit
/// plus the one SCM_RIGHTS message (tag 'L'/'N') that hands the unix
/// listener over right after fork. On `stats` the worker asks the
/// supervisor, the supervisor snaps every live worker, and the requester
/// splices the aggregated `workers: [{pid, state, restarts, counters}]`
/// section into its reply; on `shutdown` (or SIGTERM to the supervisor)
/// the pool is drained *rolling*: each worker in turn finishes every
/// admitted request before exiting — the PR 5/6 zero-drop drain guarantee,
/// extended across processes.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_SUPERVISOR_H
#define CERB_SERVE_SUPERVISOR_H

#include "serve/Daemon.h"
#include "support/Socket.h"

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace cerb::serve {

/// Seeded exponential backoff for worker restarts: delay doubles per
/// attempt from BaseMs up to MaxMs, jittered deterministically (splitmix64
/// of seed x attempt) into [delay/2, delay] so a fleet of supervisors
/// sharing a seed base does not restart in lockstep. reset() after a
/// worker proves healthy.
class RestartBackoff {
public:
  RestartBackoff(uint64_t BaseMs, uint64_t MaxMs, uint64_t Seed)
      : BaseMs(BaseMs ? BaseMs : 1), MaxMs(MaxMs < BaseMs ? BaseMs : MaxMs),
        Seed(Seed) {}

  /// Delay before the next restart; advances the attempt counter.
  uint64_t nextDelayMs();
  void reset() { Attempt = 0; }
  unsigned attempts() const { return Attempt; }

private:
  uint64_t BaseMs, MaxMs, Seed;
  unsigned Attempt = 0;
};

/// Flap detector: allows at most Limit restarts within any WindowMs
/// stretch; one more trips the breaker for good.
class FlapBreaker {
public:
  FlapBreaker(unsigned Limit, uint64_t WindowMs)
      : Limit(Limit), WindowMs(WindowMs) {}

  /// Records a restart wish at \p NowMs. False = the slot already used its
  /// Limit restarts inside the window; the breaker trips and stays
  /// tripped.
  bool allowRestart(uint64_t NowMs);
  bool tripped() const { return Tripped; }

private:
  unsigned Limit;
  uint64_t WindowMs;
  std::deque<uint64_t> Recent; ///< restart timestamps inside the window
  bool Tripped = false;
};

struct SupervisorConfig {
  /// Per-worker daemon template. SocketPath/TcpPort describe where the
  /// *pool* listens: the supervisor does the unix bind (workers inherit
  /// the fd) and resolves the TCP port (workers re-bind with
  /// SO_REUSEPORT).
  DaemonConfig Worker;
  unsigned Workers = 2;
  /// Flap breaker: give up on a slot after this many restarts inside
  /// RestartWindowMs.
  unsigned RestartLimit = 5;
  uint64_t RestartWindowMs = 30000;
  /// Backoff schedule between restarts.
  uint64_t RestartBaseMs = 100;
  uint64_t RestartMaxMs = 5000;
  /// Jitter seed for the backoff schedule.
  uint64_t Seed = 1;
  bool Quiet = true;
  /// Runs in the child immediately after fork, before the worker daemon
  /// starts — the CLI resets its signal-handler state here so a restarted
  /// worker does not inherit the supervisor's SIGTERM plumbing.
  std::function<void()> ChildInit;
};

/// The supervisor: single-threaded poll loop over the drain self-pipe,
/// every worker's control socket, and every worker's pidfd.
class Supervisor {
public:
  explicit Supervisor(SupervisorConfig Cfg);
  ~Supervisor();

  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  /// Binds the shared listeners and forks the initial workers.
  ExpectedVoid start();

  /// Supervises until drained (signal or a worker's shutdown_req).
  /// Returns 0 after a clean rolling drain, 3 when every slot tripped its
  /// flap breaker and the pool gave up.
  int run();

  /// Self-pipe write end for SIGTERM/SIGINT handlers (write one byte to
  /// request the rolling drain), as Daemon::drainFd().
  int drainFd() const { return WakeWrite.get(); }

  /// Kernel-assigned port when Worker.TcpPort was 0.
  uint16_t tcpPort() const { return BoundTcpPort; }

private:
  enum class SlotState { Running, Backoff, Failed, Exited };

  struct Slot {
    pid_t Pid = -1;
    pid_t LastPid = 0; ///< for stats after the slot died/tripped
    net::Fd Control;   ///< supervisor end of the control socketpair
    net::Fd PidFd;     ///< invalid on kernels without pidfd_open
    SlotState St = SlotState::Backoff;
    unsigned Restarts = 0;
    uint64_t RestartAtMs = 0; ///< Backoff: when to respawn
    uint64_t SpawnedAtMs = 0;
    RestartBackoff Backoff;
    FlapBreaker Breaker;

    Slot(const SupervisorConfig &C, unsigned Index)
        : Backoff(C.RestartBaseMs, C.RestartMaxMs, C.Seed ^ (Index * 0x9e37u)),
          Breaker(C.RestartLimit, C.RestartWindowMs) {}
  };

  void spawnSlot(size_t I, uint64_t NowMs);
  void onChildExit(size_t I, int Status, uint64_t NowMs);
  /// One control frame from worker \p I; queues work it cannot finish
  /// inline.
  void handleControl(size_t I);
  void handleControlMessage(size_t I, const std::string &Msg);
  /// Fan out "snap" to every live worker, collect replies, answer worker
  /// \p ReqSlot's stats_req with the aggregated section.
  void aggregateStats(size_t ReqSlot, const std::string &Token);
  std::string workersSection(
      const std::vector<std::string> &Counters) const;
  /// Sequential zero-drop drain of every live worker.
  void rollingDrain();
  void drainSlot(Slot &S);
  bool allSlotsFailed() const;
  void closeListeners();

  SupervisorConfig Cfg;
  std::vector<Slot> Slots;
  net::Fd CanonicalUnix;       ///< the shared unix listener (fd-passed)
  net::Fd WakeRead, WakeWrite; ///< drain self-pipe
  uint16_t BoundTcpPort = 0;
  bool TcpOn = false;
  bool Started = false;
  bool DrainRequested = false;
  unsigned TotalRestarts = 0;
  /// Control messages read mid-aggregation that were not the awaited
  /// snap_reply; replayed once the aggregation finishes.
  std::deque<std::pair<size_t, std::string>> Deferred;
};

/// The child side: runs one worker daemon over the inherited control
/// socket. Adopts the SCM_RIGHTS-passed unix listener, re-binds TCP with
/// SO_REUSEPORT on \p TcpPort when \p TcpOn, installs the control-channel
/// link (stats aggregation + delegated shutdown + drain-on-EOF), and
/// returns the worker's exit code. Called inside the forked child only.
int runWorkerChild(net::Fd Control, DaemonConfig Template, uint16_t TcpPort,
                   bool TcpOn);

} // namespace cerb::serve

#endif // CERB_SERVE_SUPERVISOR_H
