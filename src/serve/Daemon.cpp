//===-- serve/Daemon.cpp --------------------------------------------------===//

#include "serve/Daemon.h"

#include "support/FaultInjector.h"
#include "trace/Trace.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace cerb;
using namespace cerb::serve;

namespace {

trace::Counter &cntRequests() {
  static trace::Counter C("serve.requests");
  return C;
}
trace::Counter &cntAdmitted() {
  static trace::Counter C("serve.admitted");
  return C;
}
trace::Counter &cntOverloaded() {
  static trace::Counter C("serve.overloaded");
  return C;
}
trace::Counter &cntRejectedDraining() {
  static trace::Counter C("serve.rejected_draining");
  return C;
}
trace::Counter &cntConnections() {
  static trace::Counter C("serve.connections");
  return C;
}
trace::Counter &cntConnLimit() {
  static trace::Counter C("serve.rejected_conn_limit");
  return C;
}
trace::Counter &cntIdleReaped() {
  static trace::Counter C("serve.idle_reaped");
  return C;
}
trace::Counter &cntReadTimeouts() {
  static trace::Counter C("serve.read_timeouts");
  return C;
}
trace::Counter &cntBadFrames() {
  static trace::Counter C("serve.bad_frames");
  return C;
}

} // namespace

Daemon::Daemon(DaemonConfig Cfg)
    : Cfg(std::move(Cfg)), Results(this->Cfg.Cache),
      Compiles(this->Cfg.CompileCacheMb * 1024 * 1024) {}

Daemon::~Daemon() {
  if (Started && !Drained) {
    requestDrain();
    waitUntilDrained();
  }
}

ExpectedVoid Daemon::start() {
  if (Started)
    return err("daemon already started");
  if (Cfg.SocketPath.empty() && Cfg.TcpPort < 0 && Cfg.InheritedUnixFd < 0)
    return err("daemon has no listener (need a socket path or a TCP port)");

  if (Cfg.InheritedUnixFd >= 0) {
    // Worker mode: adopt the supervisor's canonical listening socket. The
    // description is shared by every worker, so it must be non-blocking —
    // poll() wakes all of them per connection and only one accept() wins;
    // the losers need EAGAIN, not a blocked accept that never sees drain.
    ListenUnix = net::Fd(Cfg.InheritedUnixFd);
    net::setNonBlocking(ListenUnix.get());
  } else if (!Cfg.SocketPath.empty()) {
    auto L = net::listenUnix(Cfg.SocketPath);
    if (!L)
      return L.takeError();
    ListenUnix = std::move(*L);
  }
  if (Cfg.TcpPort >= 0) {
    auto L = net::listenTcp(static_cast<uint16_t>(Cfg.TcpPort), &BoundTcpPort,
                            64, Cfg.TcpReuseport);
    if (!L)
      return L.takeError();
    ListenTcp = std::move(*L);
  }

  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return err("daemon self-pipe creation failed");
  WakeRead = net::Fd(Pipe[0]);
  WakeWrite = net::Fd(Pipe[1]);

  unsigned Threads = Cfg.Threads ? Cfg.Threads
                                 : std::max(1u, std::thread::hardware_concurrency());
  Pool = std::make_unique<ThreadPool>(Threads);

  Started = true;
  Acceptor = std::thread([this] {
    trace::setCurrentThreadName("cerbd-accept");
    acceptLoop();
  });

  if (!Cfg.Quiet) {
    std::string Where;
    if (ListenUnix.valid())
      Where += "unix:" + Cfg.SocketPath;
    if (ListenTcp.valid()) {
      if (!Where.empty())
        Where += ", ";
      Where += "tcp:127.0.0.1:" + std::to_string(BoundTcpPort);
    }
    std::fprintf(stderr, "cerbd: listening on %s (%u workers, queue %llu%s)\n",
                 Where.c_str(), Threads,
                 static_cast<unsigned long long>(Cfg.MaxQueue),
                 Results.persistent() ? ", persistent cache" : "");
  }
  return ExpectedVoid();
}

void Daemon::requestDrain() {
  if (!WakeWrite.valid())
    return;
  // One byte on the self-pipe; identical to what a SIGTERM handler does
  // with drainFd(). Repeat calls are harmless (the pipe just buffers).
  char B = 'x';
  ssize_t R;
  do
    R = ::write(WakeWrite.get(), &B, 1);
  while (R < 0 && errno == EINTR);
}

void Daemon::acceptLoop() {
  for (;;) {
    struct pollfd Fds[3];
    nfds_t N = 0;
    Fds[N++] = {WakeRead.get(), POLLIN, 0};
    int UnixIdx = -1, TcpIdx = -1;
    if (ListenUnix.valid()) {
      UnixIdx = static_cast<int>(N);
      Fds[N++] = {ListenUnix.get(), POLLIN, 0};
    }
    if (ListenTcp.valid()) {
      TcpIdx = static_cast<int>(N);
      Fds[N++] = {ListenTcp.get(), POLLIN, 0};
    }
    int R = ::poll(Fds, N, -1);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break; // listener invalidated under us; treat as drain
    }
    if (Fds[0].revents)
      break; // drain requested
    for (int Idx : {UnixIdx, TcpIdx}) {
      if (Idx < 0 || !(Fds[Idx].revents & POLLIN))
        continue;
      net::Fd Sock = net::acceptOn(Fds[Idx].fd);
      if (!Sock.valid())
        continue;
      // Connection cap: reject at the door with an explicit status frame
      // so the client can back off and retry, instead of queueing reader
      // threads without bound.
      bool OverCap = false;
      {
        std::lock_guard<std::mutex> L(StateMu);
        if (Cfg.MaxConns && ConnThreadsLive >= Cfg.MaxConns) {
          OverCap = true;
          ++Stats.RejectedConnLimit;
        } else {
          ++ConnThreadsLive; // the reader we are about to spawn
        }
      }
      if (OverCap) {
        cntConnLimit().add();
        // Best-effort courtesy frame; a stuffed send buffer must not stall
        // the accept loop, so bound the write and close regardless.
        net::setIoTimeout(Sock.get(), 100);
        net::writeFrame(Sock.get(),
                        rejectResponse("", "conn_limit",
                                       "connection limit " +
                                           std::to_string(Cfg.MaxConns)));
        continue; // Sock's destructor closes it
      }
      cntConnections().add();
      auto C = std::make_shared<Conn>();
      C->Sock = std::move(Sock);
      {
        std::lock_guard<std::mutex> L(ConnMu);
        Conns.push_back(C);
      }
      // Detached: the reader retires itself (and releases the descriptor)
      // the moment its peer goes away. Drain waits on ConnThreadsLive
      // instead of join().
      std::thread([this, C]() mutable {
        trace::setCurrentThreadName("cerbd-conn");
        connLoop(std::move(C));
      }).detach();
    }
  }
  // Entering drain: from here every new eval is rejected with "draining".
  {
    std::lock_guard<std::mutex> L(StateMu);
    Draining.store(true);
    Stats.Draining = true;
  }
  DrainCV.notify_all();
}

void Daemon::connLoop(std::shared_ptr<Conn> C) {
  const int IdleMs =
      Cfg.IdleTimeoutMs ? static_cast<int>(Cfg.IdleTimeoutMs) : -1;
  const int FrameMs =
      Cfg.ReadTimeoutMs ? static_cast<int>(Cfg.ReadTimeoutMs) : -1;
  std::string Frame;
  for (;;) {
    net::RecvStatus St = net::readFrameTimed(C->Sock.get(), Frame,
                                             net::DefaultMaxFrame, IdleMs,
                                             FrameMs);
    if (St == net::RecvStatus::Frame) {
      if (!handleFrame(C, Frame))
        break;
      continue;
    }
    if (St == net::RecvStatus::Idle) {
      {
        std::lock_guard<std::mutex> L(StateMu);
        ++Stats.IdleReaped;
      }
      cntIdleReaped().add();
    } else if (St == net::RecvStatus::Timeout) {
      {
        std::lock_guard<std::mutex> L(StateMu);
        ++Stats.ReadTimeouts;
      }
      cntReadTimeouts().add();
      send(*C, rejectResponse("", "timeout", "frame read timed out"));
    } else if (St == net::RecvStatus::Oversize ||
               St == net::RecvStatus::Error) {
      // Oversize length prefix or a frame torn mid-body: the stream is
      // desynchronized, so after a best-effort rejection the only safe
      // move is to close. (Error also covers plain ECONNRESET — cheap to
      // count, harmless to over-count.)
      {
        std::lock_guard<std::mutex> L(StateMu);
        ++Stats.BadFrames;
      }
      cntBadFrames().add();
      if (St == net::RecvStatus::Oversize)
        send(*C, rejectResponse("", "bad_request", "frame exceeds size cap"));
    }
    break; // Eof / Idle / Timeout / Oversize / Error all end the connection
  }
  // Reader exit (peer EOF, I/O error, reap, or drain's shutdownBoth):
  // release the daemon's reference so the descriptor closes as soon as any
  // still-running evals drop theirs — not at drain time.
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Conns.erase(std::remove(Conns.begin(), Conns.end(), C), Conns.end());
  }
  C.reset();
  // Decrement-and-notify under StateMu: the drain waiter cannot wake (and
  // start destroying the daemon) until this thread has released the lock,
  // after which it touches only its own stack.
  {
    std::lock_guard<std::mutex> L(StateMu);
    --ConnThreadsLive;
    DrainCV.notify_all();
  }
}

bool Daemon::handleFrame(const std::shared_ptr<Conn> &C,
                         const std::string &Frame) {
  cntRequests().add();
  {
    std::lock_guard<std::mutex> L(StateMu);
    ++Stats.Requests;
  }
  auto Req = parseRequest(Frame);
  if (!Req)
    return send(*C, rejectResponse("", "error", Req.error().Message));

  switch (Req->Kind) {
  case Op::Ping:
    return send(*C, okSimpleResponse(Req->Id, "pong", "true"));
  case Op::Stats:
    return send(*C, okSimpleResponse(Req->Id, "stats", statsJson()));
  case Op::Shutdown: {
    if (!Cfg.EnableShutdownOp)
      return send(*C, rejectResponse(Req->Id, "error",
                                     "shutdown op disabled on this daemon"));
    bool Ok = send(*C, okSimpleResponse(Req->Id, "stopping", "true"));
    // Supervised worker: hand the shutdown to the supervisor so the whole
    // pool drains, not just the worker that happened to read the frame.
    if (Cfg.ShutdownDelegate && Cfg.ShutdownDelegate())
      return Ok;
    requestDrain();
    return Ok;
  }
  case Op::Eval:
  case Op::Batch:
    break;
  }

  // Admission control for evals: bounded queue, explicit rejection. A
  // batch is admitted whole — it needs Size free slots or it is rejected
  // in one frame (partial admission would tangle the reply stream).
  const uint64_t Size =
      Req->Kind == Op::Batch ? Req->Batch.Requests.size() : 1;
  const char *Reject = nullptr;
  {
    std::lock_guard<std::mutex> L(StateMu);
    if (Draining.load()) {
      ++Stats.RejectedDraining;
      cntRejectedDraining().add();
      Reject = "draining";
    } else if (InFlight + Size > Cfg.MaxQueue) {
      ++Stats.Overloaded;
      cntOverloaded().add();
      Reject = "overloaded";
    } else {
      InFlight += Size;
      Stats.Admitted += Size;
      cntAdmitted().add(Size);
      Stats.QueueHighWater = std::max(Stats.QueueHighWater, InFlight);
    }
  }
  if (Reject)
    return send(*C, rejectResponse(Req->Id, Reject,
                                   std::string("queue limit ") +
                                       std::to_string(Cfg.MaxQueue)));

  if (Req->Kind == Op::Batch) {
    auto T = std::make_shared<BatchTicket>();
    T->C = C;
    T->BatchId = Req->Batch.Id;
    T->Requested = Size;
    T->Remaining.store(Size);
    // Warm fast path: members already in the result cache are answered
    // right here on the reader thread, their frames coalesced into one
    // write — no pool hand-off, no per-reply client wakeup. Only genuine
    // misses (and NoCache members) fan out to the workers. The reply
    // bytes are identical either way (okEvalResponse over the same stored
    // body), so the determinism goldens cannot tell the paths apart.
    std::string Coalesced;
    uint64_t Inline = 0;
    std::vector<std::pair<EvalRequest *, std::string>> Misses;
    for (EvalRequest &Q : Req->Batch.Requests) {
      std::optional<std::string> Hit;
      std::string Key;
      if (!Q.NoCache) {
        Key = cacheKeyMaterial(Q);
        Hit = Results.get(Key);
      }
      if (!Hit) {
        // The worker inherits the probed key: no second probe, no
        // double-counted miss, no re-hash of the source.
        Misses.emplace_back(&Q, std::move(Key));
        continue;
      }
      std::string Frame = okEvalResponse(Q.Id, *Hit);
      char Hdr[4] = {static_cast<char>(Frame.size() >> 24),
                     static_cast<char>(Frame.size() >> 16),
                     static_cast<char>(Frame.size() >> 8),
                     static_cast<char>(Frame.size())};
      Coalesced.append(Hdr, 4);
      Coalesced += Frame;
      ++Inline;
    }
    if (Inline) {
      bool Sent;
      {
        std::lock_guard<std::mutex> L(C->WriteMu);
        Sent = net::writeAll(C->Sock.get(), Coalesced.data(),
                             Coalesced.size());
      }
      if (Sent)
        T->Completed.fetch_add(Inline, std::memory_order_acq_rel);
    }
    for (auto &[Q, Key] : Misses)
      Pool->submit([this, T, Q = std::move(*Q), K = std::move(Key)]() mutable {
        runBatchEval(T, std::move(Q), std::move(K));
      });
    // The inline members retire their ticket share only after the misses
    // are on the pool, so batch_done cannot fire while frames are still
    // unsent; when everything was warm this is where it goes out. The
    // inline InFlight slots are released after that send — a racing drain
    // must not shut the socket under a batch_done still being written.
    if (Inline) {
      if (T->Remaining.fetch_sub(Inline, std::memory_order_acq_rel) ==
          Inline)
        send(*C,
             batchDoneResponse(T->BatchId, T->Requested,
                               T->Completed.load(std::memory_order_acquire)));
      {
        std::lock_guard<std::mutex> L(StateMu);
        InFlight -= Inline;
      }
      DrainCV.notify_all();
    }
    return true;
  }

  Pool->submit([this, C, Q = std::move(Req->Eval)]() mutable {
    runEval(C, std::move(Q));
  });
  return true;
}

std::string Daemon::evalBody(const EvalRequest &Q, std::string ProbedKey) {
  // The worker-crash drill: a supervised pool must survive a worker dying
  // mid-eval (restart + client retry = zero drops, replies byte-identical
  // because re-evaluation is deterministic). _Exit skips every destructor
  // — as close to kill -9 as an injector can get from inside.
  if (fault::shouldFail("worker.crash"))
    std::_Exit(86);
  const bool AlreadyMissed = !ProbedKey.empty();
  std::string Key = AlreadyMissed ? std::move(ProbedKey)
                                  : cacheKeyMaterial(Q);
  std::optional<std::string> Body;
  if (!Q.NoCache && !AlreadyMissed)
    Body = Results.get(Key);
  if (!Body) {
    Body = evaluateToReport(Q, Compiles);
    Results.put(Key, *Body);
  }
  return std::move(*Body);
}

void Daemon::runEval(std::shared_ptr<Conn> C, EvalRequest Q) {
  {
    trace::Span ReqSpan("serve.request", "serve");
    if (ReqSpan.active())
      ReqSpan.detail(Q.Name);
    send(*C, okEvalResponse(Q.Id, evalBody(Q)));
  }
  {
    std::lock_guard<std::mutex> L(StateMu);
    --InFlight;
  }
  DrainCV.notify_all();
}

void Daemon::runBatchEval(std::shared_ptr<BatchTicket> T, EvalRequest Q,
                          std::string Key) {
  {
    trace::Span ReqSpan("serve.request", "serve");
    if (ReqSpan.active())
      ReqSpan.detail(Q.Name);
    // The per-request reply is a plain eval response: byte-identical to
    // what a sequential `eval` of the same request would have produced,
    // which is exactly what the batch determinism goldens pin.
    if (send(*T->C, okEvalResponse(Q.Id, evalBody(Q, std::move(Key)))))
      T->Completed.fetch_add(1, std::memory_order_acq_rel);
    if (T->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
      send(*T->C, batchDoneResponse(
                      T->BatchId, T->Requested,
                      T->Completed.load(std::memory_order_acquire)));
  }
  {
    std::lock_guard<std::mutex> L(StateMu);
    --InFlight;
  }
  DrainCV.notify_all();
}

bool Daemon::send(Conn &C, std::string_view Payload) {
  std::lock_guard<std::mutex> L(C.WriteMu);
  return net::writeFrame(C.Sock.get(), Payload);
}

int Daemon::waitUntilDrained() {
  {
    std::unique_lock<std::mutex> L(StateMu);
    DrainCV.wait(L, [this] { return Draining.load() && InFlight == 0; });
  }
  // Every admitted request has been answered (zero drops). Tear down:
  // acceptor first (it already broke out of poll), then unblock the
  // connection readers and wait for the live count to hit zero (the
  // detached-thread analogue of join), then retire the pool and flush the
  // cache.
  if (Acceptor.joinable())
    Acceptor.join();
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (auto &C : Conns)
      if (C->Sock.valid())
        net::shutdownBoth(C->Sock.get());
  }
  {
    std::unique_lock<std::mutex> L(StateMu);
    DrainCV.wait(L, [this] { return ConnThreadsLive == 0; });
  }
  if (Pool) {
    Pool->wait();
    Pool.reset();
  }
  Results.flushIndex();
  ListenUnix.reset();
  ListenTcp.reset();
  if (!Cfg.SocketPath.empty())
    ::unlink(Cfg.SocketPath.c_str());
  Drained = true;
  if (!Cfg.Quiet)
    std::fprintf(stderr, "cerbd: drained cleanly\n");
  return 0;
}

DaemonSnapshot Daemon::snapshot() const {
  std::lock_guard<std::mutex> L(StateMu);
  DaemonSnapshot Out = Stats;
  Out.InFlight = InFlight;
  Out.LiveConns = ConnThreadsLive;
  Out.Draining = Draining.load();
  return Out;
}

std::string Daemon::statsJson(bool IncludeExtra) const {
  DaemonSnapshot D = snapshot();
  CacheStats CS = Results.stats();
  auto N = [](uint64_t V) { return std::to_string(V); };
  std::string J = "{";
  J += "\"in_flight\": " + N(D.InFlight);
  J += ", \"max_queue\": " + N(Cfg.MaxQueue);
  J += ", \"queue_high_water\": " + N(D.QueueHighWater);
  J += ", \"draining\": " + std::string(D.Draining ? "true" : "false");
  J += ", \"requests\": " + N(D.Requests);
  J += ", \"admitted\": " + N(D.Admitted);
  J += ", \"overloaded\": " + N(D.Overloaded);
  J += ", \"rejected_draining\": " + N(D.RejectedDraining);
  J += ", \"rejected_conn_limit\": " + N(D.RejectedConnLimit);
  J += ", \"idle_reaped\": " + N(D.IdleReaped);
  J += ", \"read_timeouts\": " + N(D.ReadTimeouts);
  J += ", \"bad_frames\": " + N(D.BadFrames);
  J += ", \"live_conns\": " + N(D.LiveConns);
  J += ", \"threads\": " + N(threadCount());
  J += ", \"result_cache\": {";
  J += "\"memory_hits\": " + N(CS.MemoryHits);
  J += ", \"disk_hits\": " + N(CS.DiskHits);
  J += ", \"misses\": " + N(CS.Misses);
  J += ", \"evictions\": " + N(CS.Evictions);
  J += ", \"stores\": " + N(CS.Stores);
  J += ", \"memory_entries\": " + N(CS.MemoryEntries);
  J += ", \"quarantined\": " + N(CS.Quarantined);
  J += ", \"tmp_reclaimed\": " + N(CS.TmpReclaimed);
  J += ", \"index_rebuilt\": " + N(CS.IndexRebuilt);
  J += ", \"persistent\": " + std::string(Results.persistent() ? "true" : "false");
  CompileCacheStats CC = Compiles.stats();
  J += "}, \"compile_cache\": {";
  J += "\"hits\": " + N(CC.Hits);
  J += ", \"misses\": " + N(CC.Misses);
  J += ", \"evictions\": " + N(CC.Evictions);
  J += ", \"bytes\": " + N(CC.Bytes);
  J += ", \"entries\": " + N(CC.Entries);
  J += ", \"budget_bytes\": " + N(Compiles.byteBudget());
  J += "}";
  if (IncludeExtra && Cfg.StatsExtra) {
    std::string Extra = Cfg.StatsExtra();
    if (!Extra.empty())
      J += ", " + Extra;
  }
  J += "}";
  return J;
}
