//===-- serve/Eval.cpp ----------------------------------------------------===//

#include "serve/Eval.h"

#include "oracle/Report.h"
#include "trace/Trace.h"

#include <algorithm>

using namespace cerb;
using namespace cerb::serve;
using oracle::Job;
using oracle::JobResult;
using oracle::JobStatus;

std::vector<Job> cerb::serve::requestJobs(const EvalRequest &Q) {
  // check_expect: the daemon attaches the built-in suite's expectations by
  // display name — deterministic (the suite is compiled in) and exactly
  // the lookup `cerb suite` does locally, so remote verdicts match.
  const defacto::TestCase *Known =
      Q.CheckExpect ? defacto::findTest(Q.Name) : nullptr;
  std::vector<Job> Jobs;
  Jobs.reserve(Q.Policies.size());
  for (const mem::MemoryPolicy &P : Q.Policies) {
    Job J;
    J.Name = Q.Name;
    J.Source = Q.Source;
    J.Frontend = Q.Frontend;
    J.Policy = P;
    if (Known) {
      auto It = Known->Expected.find(P.Name);
      if (It != Known->Expected.end())
        J.Expected = It->second;
    }
    J.ExecMode = Q.ExecMode;
    J.Seed = Q.Seed;
    J.Budget.MaxPaths = Q.Limits.MaxPaths;
    if (Q.Limits.MaxSteps)
      J.Budget.Limits.MaxSteps = Q.Limits.MaxSteps;
    if (Q.Limits.MaxCallDepth)
      J.Budget.Limits.MaxCallDepth =
          static_cast<unsigned>(Q.Limits.MaxCallDepth);
    J.Budget.DeadlineMs = Q.Limits.DeadlineMs;
    J.Budget.FallbackSamples = Q.Limits.FallbackSamples;
    // Keep explorations serial: request-level parallelism dominates in a
    // loaded daemon, and a fixed worker shape keeps outcomes canonical.
    J.Budget.ExploreJobs = 1;
    Jobs.push_back(std::move(J));
  }
  return Jobs;
}

std::string cerb::serve::evaluateToReport(const EvalRequest &Q,
                                          oracle::CompileCache &Compiles) {
  static trace::Counter CntEvals("serve.evals");
  CntEvals.add();
  trace::Span EvalSpan("serve.eval", "serve");
  if (EvalSpan.active())
    EvalSpan.detail(Q.Name + " x" + std::to_string(Q.Policies.size()));

  oracle::BatchResult B;
  for (const Job &J : requestJobs(Q))
    B.Results.push_back(oracle::runJob(J, Compiles));

  // Aggregate like Oracle::run, but with every daemon-state-dependent or
  // scheduling-dependent field pinned to a deterministic function of the
  // request: compile-cache hits are the *within-request* sharing (one
  // distinct source), counters/steals/wall-clock stay zero (and the
  // timings gate below keeps the timed fields out of the bytes anyway).
  oracle::OracleStats &S = B.Stats;
  S.Jobs = B.Results.size();
  S.CacheMisses = 1;
  S.CacheHits = S.Jobs ? S.Jobs - 1 : 0;
  for (const JobResult &R : B.Results) {
    switch (R.Status) {
    case JobStatus::Ok: ++S.Ok; break;
    case JobStatus::Degraded: ++S.Degraded; break;
    case JobStatus::TimedOut: ++S.TimedOut; break;
    case JobStatus::CompileError: ++S.CompileErrors; break;
    case JobStatus::Error: ++S.Errors; break;
    }
    if (R.Check == JobResult::Verdict::Pass)
      ++S.ChecksPassed;
    else if (R.Check == JobResult::Verdict::Fail)
      ++S.ChecksFailed;
    S.PathsExplored += R.Outcomes.PathsExplored;
    S.RandomSamples += R.RandomSamples;
    for (const auto &[K, N] : R.UBTally)
      S.UBTally[std::string(mem::ubName(K))] += N;
  }

  oracle::ReportOptions RO;
  RO.IncludeTimings = false;
  return oracle::toJson(B, RO);
}
