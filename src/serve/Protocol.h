//===-- serve/Protocol.h - The cerb-serve/1 wire protocol -------*- C++ -*-===//
///
/// \file
/// Message layer of the evaluation daemon: every frame on a `cerbd`
/// connection (see support/Socket.h for the framing) is one JSON document
/// with `"schema": "cerb-serve/1"`.
///
/// Requests carry an `"op"`:
///  - `eval`: source + policy set + execution mode/limits; the daemon
///    answers with an embedded `cerb-oracle-report/1` document.
///  - `batch`: one frame carrying N eval requests (a shared source and/or
///    shared defaults on the envelope, per-request overrides inside
///    `"requests"`). Every request needs a unique non-empty `"id"`; the
///    daemon streams back one ordinary eval response frame per request
///    (byte-identical to what a sequential `eval` of the same request
///    would produce, in completion order — reassemble by id) and
///    terminates the stream with a `batch_done` summary frame carrying the
///    batch id.
///  - `ping`: liveness probe.
///  - `stats`: operational snapshot (queue depth, cache hit rates).
///  - `shutdown`: trigger a graceful drain (same path as SIGTERM).
///
/// Responses echo the request `"id"` and carry a `"status"`: `ok`,
/// `overloaded` (admission control rejected: the bounded queue is full),
/// `draining` (daemon is shutting down; it finishes in-flight work but
/// accepts nothing new), or `error` (malformed request, unknown policy...).
///
/// Determinism contract: an `ok` eval response is a deterministic function
/// of the *request* alone — reports are serialized without timings, batch
/// cache fields are derived from the request (not from daemon state), and
/// cache hit/miss status is never in the envelope. So a warm-cache repeat
/// is byte-identical to its cold run, and responses are byte-identical for
/// any daemon thread count. (Cache observability lives in the `stats` op
/// and the `serve.*` trace counters instead.)
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_PROTOCOL_H
#define CERB_SERVE_PROTOCOL_H

#include "oracle/Oracle.h"
#include "support/Expected.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace cerb::serve {

/// Protocol identifier, sent in every frame.
inline constexpr const char *SchemaName = "cerb-serve/1";

/// Hard cap on requests per batch frame: enforced during decode, before
/// any per-request state is materialized, so an oversize batch cannot make
/// the daemon allocate proportionally to a number the client chose.
inline constexpr size_t MaxBatchRequests = 256;

/// Per-request execution budgets (the wire mirror of oracle::JobBudget;
/// zero means "server default" for the step/depth knobs).
struct EvalLimits {
  uint64_t MaxPaths = 512;
  uint64_t MaxSteps = 0;      ///< 0 = exec::ExecLimits default
  uint64_t MaxCallDepth = 0;  ///< 0 = exec::ExecLimits default
  uint64_t DeadlineMs = 0;    ///< 0 = none
  uint64_t FallbackSamples = 16;
};

/// One semantics-evaluation query: a source under a policy set.
struct EvalRequest {
  std::string Id;             ///< client-chosen, echoed verbatim
  std::string Name = "query"; ///< display name inside the report
  std::string Source;
  std::vector<mem::MemoryPolicy> Policies; ///< resolved presets, in order
  oracle::Mode ExecMode = oracle::Mode::Exhaustive;
  uint64_t Seed = 1;
  EvalLimits Limits;
  bool NoCache = false; ///< bypass cache *reads* (still populates)
  /// Frontend knobs: part of the compile-cache key and the result-cache
  /// key material (same source under different options must miss both).
  exec::FrontendOptions Frontend;
  /// Check the built-in semantic suite's expectations: when the display
  /// name matches a built-in test (defacto::findTest), each job gains that
  /// test's per-policy expectation and the report carries pass/fail
  /// verdicts. Deterministic — the suite is compiled into the daemon — but
  /// it changes the report bytes, so it is part of the cache key.
  bool CheckExpect = false;
};

/// One decoded `batch` frame: N fully-resolved eval requests (shared
/// envelope defaults already merged in) plus the batch's own id for the
/// terminating `batch_done` frame.
struct BatchRequest {
  std::string Id; ///< batch id, echoed on the batch_done frame
  std::vector<EvalRequest> Requests;
};

enum class Op { Eval, Batch, Ping, Stats, Shutdown };

struct Request {
  Op Kind = Op::Ping;
  std::string Id;
  EvalRequest Eval;   ///< meaningful when Kind == Op::Eval
  BatchRequest Batch; ///< meaningful when Kind == Op::Batch
};

/// Parses one request frame. Unknown policy names, bad modes, and missing
/// fields produce an error whose message goes back in an `error` response.
Expected<Request> parseRequest(std::string_view Frame);

/// Client-side serializers.
std::string serializeEvalRequest(const EvalRequest &Q);
/// One batch frame for \p Requests under batch id \p Id. When every
/// request carries the same source text it is hoisted onto the envelope
/// once (the shared-suite shape the op exists for) instead of N times.
std::string serializeBatchRequest(const std::string &Id,
                                  const std::vector<EvalRequest> &Requests);
std::string serializeSimpleRequest(Op Kind, const std::string &Id);

/// Server-side response builders. \p ReportBody is a complete
/// `cerb-oracle-report/1` JSON document (embedded verbatim, so cached
/// bytes replay byte-identically).
std::string okEvalResponse(const std::string &Id, std::string_view ReportBody);
std::string okSimpleResponse(const std::string &Id, const char *Extra,
                             const std::string &ExtraJson);
/// The terminating frame of a batch reply stream.
std::string batchDoneResponse(const std::string &Id, uint64_t Requested,
                              uint64_t Completed);
std::string rejectResponse(const std::string &Id, const char *Status,
                           std::string_view Message);

/// Pulls status/report back out of a response frame (client side).
struct ParsedResponse {
  std::string Id;
  std::string Status; ///< "ok", "overloaded", "draining", "error"
  std::string Error;  ///< message when Status == "error"
  /// Raw bytes of the embedded report document (eval responses), extracted
  /// verbatim so clients can persist exactly what the daemon serialized.
  std::string Report;
  /// Set when the frame is a `batch_done` summary.
  bool BatchDone = false;
  uint64_t BatchRequested = 0;
  uint64_t BatchCompleted = 0;
};
Expected<ParsedResponse> parseResponse(std::string_view Frame);

//===----------------------------------------------------------------------===//
// Content-addressed cache keying
//===----------------------------------------------------------------------===//

/// The full, unambiguous identity of an eval result:
/// hash(source) × frontend options × policy set × mode/seed/limits × the
/// semantics version × the report format version. Equal key material <=> the daemon may legally
/// replay stored bytes. The free-form display name sits at the end of the
/// string so no crafted name can collide two distinct keys.
std::string cacheKeyMaterial(const EvalRequest &Q);

/// FNV-1a of the key material: the content address (disk file name, memory
/// map key). Collisions are handled by storing the material alongside the
/// entry and verifying on read.
uint64_t cacheKeyHash(std::string_view Material);

} // namespace cerb::serve

#endif // CERB_SERVE_PROTOCOL_H
