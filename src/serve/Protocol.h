//===-- serve/Protocol.h - The cerb-serve/1 wire protocol -------*- C++ -*-===//
///
/// \file
/// Message layer of the evaluation daemon: every frame on a `cerbd`
/// connection (see support/Socket.h for the framing) is one JSON document
/// with `"schema": "cerb-serve/1"`.
///
/// Requests carry an `"op"`:
///  - `eval`: source + policy set + execution mode/limits; the daemon
///    answers with an embedded `cerb-oracle-report/1` document.
///  - `ping`: liveness probe.
///  - `stats`: operational snapshot (queue depth, cache hit rates).
///  - `shutdown`: trigger a graceful drain (same path as SIGTERM).
///
/// Responses echo the request `"id"` and carry a `"status"`: `ok`,
/// `overloaded` (admission control rejected: the bounded queue is full),
/// `draining` (daemon is shutting down; it finishes in-flight work but
/// accepts nothing new), or `error` (malformed request, unknown policy...).
///
/// Determinism contract: an `ok` eval response is a deterministic function
/// of the *request* alone — reports are serialized without timings, batch
/// cache fields are derived from the request (not from daemon state), and
/// cache hit/miss status is never in the envelope. So a warm-cache repeat
/// is byte-identical to its cold run, and responses are byte-identical for
/// any daemon thread count. (Cache observability lives in the `stats` op
/// and the `serve.*` trace counters instead.)
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_PROTOCOL_H
#define CERB_SERVE_PROTOCOL_H

#include "oracle/Oracle.h"
#include "support/Expected.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace cerb::serve {

/// Protocol identifier, sent in every frame.
inline constexpr const char *SchemaName = "cerb-serve/1";

/// Per-request execution budgets (the wire mirror of oracle::JobBudget;
/// zero means "server default" for the step/depth knobs).
struct EvalLimits {
  uint64_t MaxPaths = 512;
  uint64_t MaxSteps = 0;      ///< 0 = exec::ExecLimits default
  uint64_t MaxCallDepth = 0;  ///< 0 = exec::ExecLimits default
  uint64_t DeadlineMs = 0;    ///< 0 = none
  uint64_t FallbackSamples = 16;
};

/// One semantics-evaluation query: a source under a policy set.
struct EvalRequest {
  std::string Id;             ///< client-chosen, echoed verbatim
  std::string Name = "query"; ///< display name inside the report
  std::string Source;
  std::vector<mem::MemoryPolicy> Policies; ///< resolved presets, in order
  oracle::Mode ExecMode = oracle::Mode::Exhaustive;
  uint64_t Seed = 1;
  EvalLimits Limits;
  bool NoCache = false; ///< bypass cache *reads* (still populates)
};

enum class Op { Eval, Ping, Stats, Shutdown };

struct Request {
  Op Kind = Op::Ping;
  std::string Id;
  EvalRequest Eval; ///< meaningful when Kind == Op::Eval
};

/// Parses one request frame. Unknown policy names, bad modes, and missing
/// fields produce an error whose message goes back in an `error` response.
Expected<Request> parseRequest(std::string_view Frame);

/// Client-side serializers.
std::string serializeEvalRequest(const EvalRequest &Q);
std::string serializeSimpleRequest(Op Kind, const std::string &Id);

/// Server-side response builders. \p ReportBody is a complete
/// `cerb-oracle-report/1` JSON document (embedded verbatim, so cached
/// bytes replay byte-identically).
std::string okEvalResponse(const std::string &Id, std::string_view ReportBody);
std::string okSimpleResponse(const std::string &Id, const char *Extra,
                             const std::string &ExtraJson);
std::string rejectResponse(const std::string &Id, const char *Status,
                           std::string_view Message);

/// Pulls status/report back out of a response frame (client side).
struct ParsedResponse {
  std::string Id;
  std::string Status; ///< "ok", "overloaded", "draining", "error"
  std::string Error;  ///< message when Status == "error"
  /// Raw bytes of the embedded report document (eval responses), extracted
  /// verbatim so clients can persist exactly what the daemon serialized.
  std::string Report;
};
Expected<ParsedResponse> parseResponse(std::string_view Frame);

//===----------------------------------------------------------------------===//
// Content-addressed cache keying
//===----------------------------------------------------------------------===//

/// The full, unambiguous identity of an eval result:
/// hash(source) × policy set × mode/seed/limits × semantics version × the
/// report format version. Equal key material <=> the daemon may legally
/// replay stored bytes. The free-form display name sits at the end of the
/// string so no crafted name can collide two distinct keys.
std::string cacheKeyMaterial(const EvalRequest &Q);

/// FNV-1a of the key material: the content address (disk file name, memory
/// map key). Collisions are handled by storing the material alongside the
/// entry and verifying on read.
uint64_t cacheKeyHash(std::string_view Material);

} // namespace cerb::serve

#endif // CERB_SERVE_PROTOCOL_H
