//===-- serve/Protocol.cpp ------------------------------------------------===//

#include "serve/Protocol.h"

#include "exec/Pipeline.h"
#include "oracle/Report.h"
#include "support/FaultInjector.h"

#include <unordered_set>

using namespace cerb;
using namespace cerb::serve;

namespace {

std::string quoted(std::string_view S) {
  return "\"" + oracle::jsonEscape(S) + "\"";
}

const char *opName(Op K) {
  switch (K) {
  case Op::Eval: return "eval";
  case Op::Batch: return "batch";
  case Op::Ping: return "ping";
  case Op::Stats: return "stats";
  case Op::Shutdown: return "shutdown";
  }
  return "?";
}

/// Applies the eval-shaped fields of \p Doc onto \p Q, leaving fields the
/// document does not mention untouched (so batch entries override their
/// envelope's shared defaults field by field). Source *presence* is the
/// caller's problem; a present-but-non-string source is rejected here.
ExpectedVoid applyEvalFields(const json::Value &Doc, EvalRequest &Q) {
  if (const json::Value *Src = Doc.get("source")) {
    if (Src->K != json::Value::Kind::String)
      return err("\"source\" must be a string");
    Q.Source = Src->asString();
  }
  if (const json::Value *Name = Doc.get("name"))
    Q.Name = Name->asString();

  if (const json::Value *Pols = Doc.get("policies")) {
    if (Pols->K != json::Value::Kind::Array)
      return err("\"policies\" must be an array of preset names");
    Q.Policies.clear();
    for (const json::Value &P : Pols->Arr) {
      auto Policy = mem::MemoryPolicy::named(P.asString());
      if (!Policy)
        return Policy.takeError();
      Q.Policies.push_back(std::move(*Policy));
    }
  }

  if (const json::Value *ModeV = Doc.get("mode")) {
    auto M = oracle::modeByName(ModeV->asString());
    if (!M)
      return err("unknown mode '" + ModeV->asString() +
                 "' (once|random|exhaustive)");
    Q.ExecMode = *M;
  }
  if (const json::Value *Seed = Doc.get("seed"))
    Q.Seed = Seed->asU64(1);
  if (const json::Value *NC = Doc.get("no_cache"))
    Q.NoCache = NC->asBool();
  if (const json::Value *CE = Doc.get("check_expect"))
    Q.CheckExpect = CE->asBool();
  if (const json::Value *FE = Doc.get("frontend")) {
    if (FE->K != json::Value::Kind::Object)
      return err("\"frontend\" must be an object");
    if (const json::Value *V = FE->get("core_simplify"))
      Q.Frontend.CoreSimplify = V->asBool();
  }

  if (const json::Value *L = Doc.get("limits")) {
    if (const json::Value *V = L->get("max_paths"))
      Q.Limits.MaxPaths = V->asU64(Q.Limits.MaxPaths);
    if (const json::Value *V = L->get("max_steps"))
      Q.Limits.MaxSteps = V->asU64();
    if (const json::Value *V = L->get("max_call_depth"))
      Q.Limits.MaxCallDepth = V->asU64();
    if (const json::Value *V = L->get("deadline_ms"))
      Q.Limits.DeadlineMs = V->asU64();
    if (const json::Value *V = L->get("fallback_samples"))
      Q.Limits.FallbackSamples = V->asU64(Q.Limits.FallbackSamples);
  }
  return ExpectedVoid();
}

} // namespace

Expected<Request> cerb::serve::parseRequest(std::string_view Frame) {
  // `protocol.decode` fault point: a request the daemon fails to decode for
  // reasons other than its bytes (allocation pressure, future schema skew).
  // Surfaces as a `bad_request` reject, which the retrying client treats as
  // terminal — decode failure is deterministic, retrying cannot help.
  if (fault::shouldFail("protocol.decode"))
    return err("malformed request: injected protocol.decode fault");
  std::string PErr;
  auto Doc = json::parse(Frame, &PErr);
  if (!Doc)
    return err("malformed request: " + PErr);
  if (Doc->K != json::Value::Kind::Object)
    return err("malformed request: not a JSON object");
  const json::Value *Schema = Doc->get("schema");
  if (!Schema || Schema->asString() != SchemaName)
    return err(std::string("unsupported schema (expected \"") + SchemaName +
               "\")");

  Request R;
  if (const json::Value *Id = Doc->get("id"))
    R.Id = Id->asString();

  const json::Value *OpV = Doc->get("op");
  std::string OpStr = OpV ? OpV->asString() : "eval";
  if (OpStr == "ping") {
    R.Kind = Op::Ping;
    return R;
  }
  if (OpStr == "stats") {
    R.Kind = Op::Stats;
    return R;
  }
  if (OpStr == "shutdown") {
    R.Kind = Op::Shutdown;
    return R;
  }
  if (OpStr == "batch") {
    R.Kind = Op::Batch;
    R.Batch.Id = R.Id;
    const json::Value *Reqs = Doc->get("requests");
    if (!Reqs || Reqs->K != json::Value::Kind::Array)
      return err("batch request needs a \"requests\" array");
    // Shape checks run over the parsed JSON *before* any EvalRequest is
    // materialized: a malformed batch is rejected without allocating
    // per-request sources, policy vectors, or job state.
    if (Reqs->Arr.empty())
      return err("batch carries zero requests");
    if (Reqs->Arr.size() > MaxBatchRequests)
      return err("batch carries " + std::to_string(Reqs->Arr.size()) +
                 " requests (cap " + std::to_string(MaxBatchRequests) + ")");
    const json::Value *SharedSrc = Doc->get("source");
    const bool HasSharedSource =
        SharedSrc && SharedSrc->K == json::Value::Kind::String;
    std::unordered_set<std::string> SeenIds;
    for (const json::Value &E : Reqs->Arr) {
      if (E.K != json::Value::Kind::Object)
        return err("batch \"requests\" entries must be objects");
      const json::Value *Id = E.get("id");
      if (!Id || Id->K != json::Value::Kind::String || Id->asString().empty())
        return err("every batch request needs a non-empty string \"id\"");
      if (!SeenIds.insert(Id->asString()).second)
        return err("duplicate batch request id '" + Id->asString() + "'");
      const json::Value *Src = E.get("source");
      if (!(Src && Src->K == json::Value::Kind::String) && !HasSharedSource)
        return err("batch request '" + Id->asString() +
                   "' has no \"source\" and the batch carries no shared one");
    }
    // Envelope fields are the shared defaults (same names as a plain eval
    // request); each entry overrides field by field.
    EvalRequest Shared;
    if (auto A = applyEvalFields(*Doc, Shared); !A)
      return A.error();
    R.Batch.Requests.reserve(Reqs->Arr.size());
    for (const json::Value &E : Reqs->Arr) {
      EvalRequest Q = Shared;
      Q.Id = E.get("id")->asString();
      if (auto A = applyEvalFields(E, Q); !A)
        return A.error();
      if (Q.Policies.empty())
        Q.Policies.push_back(mem::MemoryPolicy::defacto());
      R.Batch.Requests.push_back(std::move(Q));
    }
    return R;
  }
  if (OpStr != "eval")
    return err("unknown op '" + OpStr + "'");

  R.Kind = Op::Eval;
  EvalRequest &Q = R.Eval;
  Q.Id = R.Id;
  const json::Value *Src = Doc->get("source");
  if (!Src || Src->K != json::Value::Kind::String)
    return err("eval request needs a string \"source\"");
  if (auto A = applyEvalFields(*Doc, Q); !A)
    return A.error();
  if (Q.Policies.empty())
    Q.Policies.push_back(mem::MemoryPolicy::defacto());
  return R;
}

namespace {

/// The eval-shaped request fields, shared between the single-eval and the
/// per-entry batch serializers. \p WithSource=false when the batch hoisted
/// the source onto its envelope.
void appendEvalFields(std::string &J, const EvalRequest &Q, bool WithSource) {
  J += ", \"name\": " + quoted(Q.Name);
  if (WithSource)
    J += ", \"source\": " + quoted(Q.Source);
  J += ", \"policies\": [";
  for (size_t I = 0; I < Q.Policies.size(); ++I) {
    if (I)
      J += ", ";
    J += quoted(Q.Policies[I].Name);
  }
  J += "]";
  J += ", \"mode\": " + quoted(oracle::modeName(Q.ExecMode));
  J += ", \"seed\": " + std::to_string(Q.Seed);
  J += ", \"limits\": {\"max_paths\": " + std::to_string(Q.Limits.MaxPaths) +
       ", \"max_steps\": " + std::to_string(Q.Limits.MaxSteps) +
       ", \"max_call_depth\": " + std::to_string(Q.Limits.MaxCallDepth) +
       ", \"deadline_ms\": " + std::to_string(Q.Limits.DeadlineMs) +
       ", \"fallback_samples\": " + std::to_string(Q.Limits.FallbackSamples) +
       "}";
  if (Q.NoCache)
    J += ", \"no_cache\": true";
  if (Q.CheckExpect)
    J += ", \"check_expect\": true";
  if (Q.Frontend != exec::FrontendOptions())
    J += std::string(", \"frontend\": {\"core_simplify\": ") +
         (Q.Frontend.CoreSimplify ? "true" : "false") + "}";
}

} // namespace

std::string cerb::serve::serializeEvalRequest(const EvalRequest &Q) {
  std::string J;
  J += "{\"schema\": " + quoted(SchemaName) + ", \"op\": \"eval\"";
  if (!Q.Id.empty())
    J += ", \"id\": " + quoted(Q.Id);
  appendEvalFields(J, Q, /*WithSource=*/true);
  J += "}";
  return J;
}

std::string
cerb::serve::serializeBatchRequest(const std::string &Id,
                                   const std::vector<EvalRequest> &Requests) {
  bool SharedSource = !Requests.empty();
  for (const EvalRequest &Q : Requests)
    SharedSource = SharedSource && Q.Source == Requests.front().Source;
  std::string J;
  J += "{\"schema\": " + quoted(SchemaName) + ", \"op\": \"batch\"";
  if (!Id.empty())
    J += ", \"id\": " + quoted(Id);
  if (SharedSource)
    J += ", \"source\": " + quoted(Requests.front().Source);
  J += ", \"requests\": [";
  for (size_t I = 0; I < Requests.size(); ++I) {
    if (I)
      J += ", ";
    J += "{\"id\": " + quoted(Requests[I].Id);
    appendEvalFields(J, Requests[I], /*WithSource=*/!SharedSource);
    J += "}";
  }
  J += "]}";
  return J;
}

std::string cerb::serve::serializeSimpleRequest(Op Kind, const std::string &Id) {
  std::string J = "{\"schema\": " + quoted(SchemaName) + ", \"op\": " +
                  quoted(opName(Kind));
  if (!Id.empty())
    J += ", \"id\": " + quoted(Id);
  J += "}";
  return J;
}

std::string cerb::serve::okEvalResponse(const std::string &Id,
                                        std::string_view ReportBody) {
  // The report is embedded verbatim: a warm cache replays stored bytes, so
  // cold and warm responses for one query are identical by construction.
  std::string J;
  J.reserve(ReportBody.size() + 96);
  J += "{\"schema\": " + quoted(SchemaName) + ", \"id\": " + quoted(Id) +
       ", \"status\": \"ok\", \"report\": ";
  J += ReportBody;
  J += "}";
  return J;
}

std::string cerb::serve::okSimpleResponse(const std::string &Id,
                                          const char *Extra,
                                          const std::string &ExtraJson) {
  std::string J = "{\"schema\": " + quoted(SchemaName) + ", \"id\": " +
                  quoted(Id) + ", \"status\": \"ok\"";
  if (Extra)
    J += std::string(", \"") + Extra + "\": " + ExtraJson;
  J += "}";
  return J;
}

std::string cerb::serve::batchDoneResponse(const std::string &Id,
                                           uint64_t Requested,
                                           uint64_t Completed) {
  return "{\"schema\": " + quoted(SchemaName) + ", \"id\": " + quoted(Id) +
         ", \"status\": \"ok\", \"batch_done\": {\"requested\": " +
         std::to_string(Requested) +
         ", \"completed\": " + std::to_string(Completed) + "}}";
}

std::string cerb::serve::rejectResponse(const std::string &Id,
                                        const char *Status,
                                        std::string_view Message) {
  std::string J = "{\"schema\": " + quoted(SchemaName) + ", \"id\": " +
                  quoted(Id) + ", \"status\": " + quoted(Status);
  if (!Message.empty())
    J += ", \"error\": " + quoted(Message);
  J += "}";
  return J;
}

Expected<ParsedResponse> cerb::serve::parseResponse(std::string_view Frame) {
  // Fast path: the exact byte shape okEvalResponse emits — the steady
  // state of a batch reply stream, where a full JSON parse per frame is
  // the client's dominant cost. The shape is daemon-controlled, the match
  // is literal (any deviation, including an escape inside the id, falls
  // through to the full parser), and the extracted fields are byte-for-
  // byte what the slow path would produce.
  {
    static constexpr std::string_view Pre =
        "{\"schema\": \"cerb-serve/1\", \"id\": \"";
    static constexpr std::string_view Mid =
        "\", \"status\": \"ok\", \"report\": ";
    if (Frame.size() > Pre.size() + Mid.size() + 2 &&
        Frame.compare(0, Pre.size(), Pre) == 0 && Frame.back() == '}') {
      const size_t IdEnd = Frame.find('"', Pre.size());
      const size_t Esc = Frame.find('\\', Pre.size());
      if (IdEnd != std::string_view::npos && Esc >= IdEnd &&
          Frame.size() >= IdEnd + Mid.size() + 2 &&
          Frame.compare(IdEnd, Mid.size(), Mid) == 0 &&
          Frame[IdEnd + Mid.size()] == '{') {
        ParsedResponse R;
        R.Id = std::string(Frame.substr(Pre.size(), IdEnd - Pre.size()));
        R.Status = "ok";
        const size_t P = IdEnd + Mid.size();
        R.Report = std::string(Frame.substr(P, Frame.size() - 1 - P));
        return R;
      }
    }
  }
  std::string PErr;
  auto Doc = json::parse(Frame, &PErr);
  if (!Doc)
    return err("malformed response: " + PErr);
  const json::Value *Schema = Doc->get("schema");
  if (!Schema || Schema->asString() != SchemaName)
    return err("response carries no cerb-serve/1 schema");
  ParsedResponse R;
  if (const json::Value *Id = Doc->get("id"))
    R.Id = Id->asString();
  if (const json::Value *St = Doc->get("status"))
    R.Status = St->asString();
  if (const json::Value *E = Doc->get("error"))
    R.Error = E->asString();
  if (const json::Value *BD = Doc->get("batch_done")) {
    R.BatchDone = true;
    if (const json::Value *V = BD->get("requested"))
      R.BatchRequested = V->asU64();
    if (const json::Value *V = BD->get("completed"))
      R.BatchCompleted = V->asU64();
  }
  // Recover the report bytes verbatim (not re-serialized). The bare
  // `"report": ` key sequence cannot occur inside a JSON string value —
  // quotes there are escaped — so the first occurrence is the key, and the
  // value runs to the envelope's closing brace.
  if (Doc->get("report")) {
    static constexpr std::string_view Key = "\"report\": ";
    size_t At = Frame.find(Key);
    size_t End = Frame.rfind('}');
    if (At != std::string_view::npos && End != std::string_view::npos &&
        End > At + Key.size())
      R.Report = std::string(Frame.substr(At + Key.size(),
                                          End - (At + Key.size())));
  }
  return R;
}

std::string cerb::serve::cacheKeyMaterial(const EvalRequest &Q) {
  // Fixed-format fields first; the free-form name strictly last so no
  // crafted name can imitate another key's tail.
  std::string M = "cerb-serve-key/1";
  M += "|sem=" + oracle::jsonHex64(exec::semanticsFingerprint());
  M += "|rpt=1"; // bump when cerb-oracle-report/1 serialization changes
  M += "|fe=" + oracle::jsonHex64(Q.Frontend.fingerprint());
  M += Q.CheckExpect ? "|chk=1" : "|chk=0"; // verdicts are in the bytes
  M += "|src=" +
       oracle::jsonHex64(oracle::CompileCache::hashSource(Q.Source)) + ":" +
       std::to_string(Q.Source.size());
  M += "|mode=" + std::string(oracle::modeName(Q.ExecMode));
  M += "|seed=" + std::to_string(Q.Seed);
  M += "|paths=" + std::to_string(Q.Limits.MaxPaths);
  M += "|steps=" + std::to_string(Q.Limits.MaxSteps);
  M += "|depth=" + std::to_string(Q.Limits.MaxCallDepth);
  M += "|deadline=" + std::to_string(Q.Limits.DeadlineMs);
  M += "|fallback=" + std::to_string(Q.Limits.FallbackSamples);
  M += "|pol=";
  for (size_t I = 0; I < Q.Policies.size(); ++I) {
    if (I)
      M += ",";
    M += Q.Policies[I].Name + ":" +
         oracle::jsonHex64(Q.Policies[I].fingerprint());
  }
  M += "|name=" + Q.Name;
  return M;
}

uint64_t cerb::serve::cacheKeyHash(std::string_view Material) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : Material) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}
