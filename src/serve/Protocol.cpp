//===-- serve/Protocol.cpp ------------------------------------------------===//

#include "serve/Protocol.h"

#include "exec/Pipeline.h"
#include "oracle/Report.h"
#include "support/FaultInjector.h"

using namespace cerb;
using namespace cerb::serve;

namespace {

std::string quoted(std::string_view S) {
  return "\"" + oracle::jsonEscape(S) + "\"";
}

const char *opName(Op K) {
  switch (K) {
  case Op::Eval: return "eval";
  case Op::Ping: return "ping";
  case Op::Stats: return "stats";
  case Op::Shutdown: return "shutdown";
  }
  return "?";
}

} // namespace

Expected<Request> cerb::serve::parseRequest(std::string_view Frame) {
  // `protocol.decode` fault point: a request the daemon fails to decode for
  // reasons other than its bytes (allocation pressure, future schema skew).
  // Surfaces as a `bad_request` reject, which the retrying client treats as
  // terminal — decode failure is deterministic, retrying cannot help.
  if (fault::shouldFail("protocol.decode"))
    return err("malformed request: injected protocol.decode fault");
  std::string PErr;
  auto Doc = json::parse(Frame, &PErr);
  if (!Doc)
    return err("malformed request: " + PErr);
  if (Doc->K != json::Value::Kind::Object)
    return err("malformed request: not a JSON object");
  const json::Value *Schema = Doc->get("schema");
  if (!Schema || Schema->asString() != SchemaName)
    return err(std::string("unsupported schema (expected \"") + SchemaName +
               "\")");

  Request R;
  if (const json::Value *Id = Doc->get("id"))
    R.Id = Id->asString();

  const json::Value *OpV = Doc->get("op");
  std::string OpStr = OpV ? OpV->asString() : "eval";
  if (OpStr == "ping") {
    R.Kind = Op::Ping;
    return R;
  }
  if (OpStr == "stats") {
    R.Kind = Op::Stats;
    return R;
  }
  if (OpStr == "shutdown") {
    R.Kind = Op::Shutdown;
    return R;
  }
  if (OpStr != "eval")
    return err("unknown op '" + OpStr + "'");

  R.Kind = Op::Eval;
  EvalRequest &Q = R.Eval;
  Q.Id = R.Id;
  const json::Value *Src = Doc->get("source");
  if (!Src || Src->K != json::Value::Kind::String)
    return err("eval request needs a string \"source\"");
  Q.Source = Src->asString();
  if (const json::Value *Name = Doc->get("name"))
    Q.Name = Name->asString();

  if (const json::Value *Pols = Doc->get("policies")) {
    if (Pols->K != json::Value::Kind::Array)
      return err("\"policies\" must be an array of preset names");
    for (const json::Value &P : Pols->Arr) {
      auto Policy = mem::MemoryPolicy::named(P.asString());
      if (!Policy)
        return Policy.takeError();
      Q.Policies.push_back(std::move(*Policy));
    }
  }
  if (Q.Policies.empty())
    Q.Policies.push_back(mem::MemoryPolicy::defacto());

  if (const json::Value *ModeV = Doc->get("mode")) {
    auto M = oracle::modeByName(ModeV->asString());
    if (!M)
      return err("unknown mode '" + ModeV->asString() +
                 "' (once|random|exhaustive)");
    Q.ExecMode = *M;
  }
  if (const json::Value *Seed = Doc->get("seed"))
    Q.Seed = Seed->asU64(1);
  if (const json::Value *NC = Doc->get("no_cache"))
    Q.NoCache = NC->asBool();

  if (const json::Value *L = Doc->get("limits")) {
    if (const json::Value *V = L->get("max_paths"))
      Q.Limits.MaxPaths = V->asU64(Q.Limits.MaxPaths);
    if (const json::Value *V = L->get("max_steps"))
      Q.Limits.MaxSteps = V->asU64();
    if (const json::Value *V = L->get("max_call_depth"))
      Q.Limits.MaxCallDepth = V->asU64();
    if (const json::Value *V = L->get("deadline_ms"))
      Q.Limits.DeadlineMs = V->asU64();
    if (const json::Value *V = L->get("fallback_samples"))
      Q.Limits.FallbackSamples = V->asU64(Q.Limits.FallbackSamples);
  }
  return R;
}

std::string cerb::serve::serializeEvalRequest(const EvalRequest &Q) {
  std::string J;
  J += "{\"schema\": " + quoted(SchemaName) + ", \"op\": \"eval\"";
  if (!Q.Id.empty())
    J += ", \"id\": " + quoted(Q.Id);
  J += ", \"name\": " + quoted(Q.Name);
  J += ", \"source\": " + quoted(Q.Source);
  J += ", \"policies\": [";
  for (size_t I = 0; I < Q.Policies.size(); ++I) {
    if (I)
      J += ", ";
    J += quoted(Q.Policies[I].Name);
  }
  J += "]";
  J += ", \"mode\": " + quoted(oracle::modeName(Q.ExecMode));
  J += ", \"seed\": " + std::to_string(Q.Seed);
  J += ", \"limits\": {\"max_paths\": " + std::to_string(Q.Limits.MaxPaths) +
       ", \"max_steps\": " + std::to_string(Q.Limits.MaxSteps) +
       ", \"max_call_depth\": " + std::to_string(Q.Limits.MaxCallDepth) +
       ", \"deadline_ms\": " + std::to_string(Q.Limits.DeadlineMs) +
       ", \"fallback_samples\": " + std::to_string(Q.Limits.FallbackSamples) +
       "}";
  if (Q.NoCache)
    J += ", \"no_cache\": true";
  J += "}";
  return J;
}

std::string cerb::serve::serializeSimpleRequest(Op Kind, const std::string &Id) {
  std::string J = "{\"schema\": " + quoted(SchemaName) + ", \"op\": " +
                  quoted(opName(Kind));
  if (!Id.empty())
    J += ", \"id\": " + quoted(Id);
  J += "}";
  return J;
}

std::string cerb::serve::okEvalResponse(const std::string &Id,
                                        std::string_view ReportBody) {
  // The report is embedded verbatim: a warm cache replays stored bytes, so
  // cold and warm responses for one query are identical by construction.
  std::string J;
  J.reserve(ReportBody.size() + 96);
  J += "{\"schema\": " + quoted(SchemaName) + ", \"id\": " + quoted(Id) +
       ", \"status\": \"ok\", \"report\": ";
  J += ReportBody;
  J += "}";
  return J;
}

std::string cerb::serve::okSimpleResponse(const std::string &Id,
                                          const char *Extra,
                                          const std::string &ExtraJson) {
  std::string J = "{\"schema\": " + quoted(SchemaName) + ", \"id\": " +
                  quoted(Id) + ", \"status\": \"ok\"";
  if (Extra)
    J += std::string(", \"") + Extra + "\": " + ExtraJson;
  J += "}";
  return J;
}

std::string cerb::serve::rejectResponse(const std::string &Id,
                                        const char *Status,
                                        std::string_view Message) {
  std::string J = "{\"schema\": " + quoted(SchemaName) + ", \"id\": " +
                  quoted(Id) + ", \"status\": " + quoted(Status);
  if (!Message.empty())
    J += ", \"error\": " + quoted(Message);
  J += "}";
  return J;
}

Expected<ParsedResponse> cerb::serve::parseResponse(std::string_view Frame) {
  std::string PErr;
  auto Doc = json::parse(Frame, &PErr);
  if (!Doc)
    return err("malformed response: " + PErr);
  const json::Value *Schema = Doc->get("schema");
  if (!Schema || Schema->asString() != SchemaName)
    return err("response carries no cerb-serve/1 schema");
  ParsedResponse R;
  if (const json::Value *Id = Doc->get("id"))
    R.Id = Id->asString();
  if (const json::Value *St = Doc->get("status"))
    R.Status = St->asString();
  if (const json::Value *E = Doc->get("error"))
    R.Error = E->asString();
  // Recover the report bytes verbatim (not re-serialized). The bare
  // `"report": ` key sequence cannot occur inside a JSON string value —
  // quotes there are escaped — so the first occurrence is the key, and the
  // value runs to the envelope's closing brace.
  if (Doc->get("report")) {
    static constexpr std::string_view Key = "\"report\": ";
    size_t At = Frame.find(Key);
    size_t End = Frame.rfind('}');
    if (At != std::string_view::npos && End != std::string_view::npos &&
        End > At + Key.size())
      R.Report = std::string(Frame.substr(At + Key.size(),
                                          End - (At + Key.size())));
  }
  return R;
}

std::string cerb::serve::cacheKeyMaterial(const EvalRequest &Q) {
  // Fixed-format fields first; the free-form name strictly last so no
  // crafted name can imitate another key's tail.
  std::string M = "cerb-serve-key/1";
  M += "|sem=" + oracle::jsonHex64(exec::semanticsFingerprint());
  M += "|rpt=1"; // bump when cerb-oracle-report/1 serialization changes
  M += "|src=" +
       oracle::jsonHex64(oracle::CompileCache::hashSource(Q.Source)) + ":" +
       std::to_string(Q.Source.size());
  M += "|mode=" + std::string(oracle::modeName(Q.ExecMode));
  M += "|seed=" + std::to_string(Q.Seed);
  M += "|paths=" + std::to_string(Q.Limits.MaxPaths);
  M += "|steps=" + std::to_string(Q.Limits.MaxSteps);
  M += "|depth=" + std::to_string(Q.Limits.MaxCallDepth);
  M += "|deadline=" + std::to_string(Q.Limits.DeadlineMs);
  M += "|fallback=" + std::to_string(Q.Limits.FallbackSamples);
  M += "|pol=";
  for (size_t I = 0; I < Q.Policies.size(); ++I) {
    if (I)
      M += ",";
    M += Q.Policies[I].Name + ":" +
         oracle::jsonHex64(Q.Policies[I].fingerprint());
  }
  M += "|name=" + Q.Name;
  return M;
}

uint64_t cerb::serve::cacheKeyHash(std::string_view Material) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : Material) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}
