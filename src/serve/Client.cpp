//===-- serve/Client.cpp --------------------------------------------------===//

#include "serve/Client.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace cerb;
using namespace cerb::serve;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t elapsedMs(Clock::time_point Since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            Since)
          .count());
}

/// Rejection statuses worth a retry: transient daemon-side conditions that
/// a later attempt can clear. Everything else (`error`, `bad_request`,
/// `draining`, unknown) is deterministic or a stop signal — terminal.
bool retryableStatus(const std::string &Status) {
  return Status == "overloaded" || Status == "conn_limit" ||
         Status == "timeout";
}

} // namespace

Expected<net::Fd> Client::dial(const std::string &SocketPath, int Port,
                               const RetryPolicy &Policy) {
  Expected<net::Fd> S =
      !SocketPath.empty()
          ? net::connectUnix(SocketPath)
          : (Port >= 0
                 ? net::connectTcp(static_cast<uint16_t>(Port))
                 : Expected<net::Fd>(
                       err("no daemon address (need a socket path or a TCP "
                           "port)")));
  if (S && Policy.CallTimeoutMs)
    net::setIoTimeout(S->get(), Policy.CallTimeoutMs);
  return S;
}

Expected<Client> Client::connect(const std::string &SocketPath, int Port,
                                 const RetryPolicy &Policy) {
  auto S = dial(SocketPath, Port, Policy);
  if (!S)
    return S.takeError();
  return Client(std::move(*S), SocketPath, Port, Policy);
}

uint64_t Client::backoffMs(unsigned Attempt) {
  uint64_t D = Policy.BaseDelayMs ? Policy.BaseDelayMs : 1;
  for (unsigned I = 0; I < Attempt && D < Policy.MaxDelayMs; ++I)
    D *= 2;
  D = std::min<uint64_t>(std::max<uint64_t>(D, 1), Policy.MaxDelayMs);
  // xorshift64 jitter into [D/2, D]: decorrelates a fleet of clients all
  // retrying the same recovering daemon.
  Rng ^= Rng << 13;
  Rng ^= Rng >> 7;
  Rng ^= Rng << 17;
  uint64_t Half = D / 2;
  return D - (Half ? Rng % (Half + 1) : 0);
}

ExpectedVoid Client::reconnect() {
  Sock.reset();
  auto S = dial(SocketPath, Port, Policy);
  if (!S)
    return S.takeError();
  Sock = std::move(*S);
  return ExpectedVoid();
}

Expected<std::string> Client::call(std::string_view RequestFrame) {
  if (!Sock.valid())
    return err("client is not connected (reconnect first)");
  if (!net::writeFrame(Sock.get(), RequestFrame))
    return err("failed to send request frame (daemon gone?)");
  std::string Out;
  int R = net::readFrame(Sock.get(), Out);
  if (R == 0)
    return err("daemon closed the connection before responding");
  if (R != 1)
    return err("failed to read response frame");
  return Out;
}

Expected<ParsedResponse> Client::callParsed(std::string_view RequestFrame) {
  auto Raw = call(RequestFrame);
  if (!Raw)
    return Raw.takeError();
  return parseResponse(*Raw);
}

Expected<std::string> Client::callRetry(std::string_view RequestFrame) {
  const unsigned Attempts = std::max(1u, Policy.MaxAttempts);
  Clock::time_point Start = Clock::now();
  std::string LastError = "call never attempted";
  for (unsigned Attempt = 0; Attempt < Attempts; ++Attempt) {
    if (Attempt) {
      // A failed call poisons the framed stream (a half-read response may
      // be in flight); every retry gets a fresh connection.
      uint64_t Delay = backoffMs(Attempt - 1);
      if (Policy.TotalDeadlineMs &&
          elapsedMs(Start) + Delay >= Policy.TotalDeadlineMs)
        return err("retry deadline exceeded after " +
                   std::to_string(Attempt) + " attempts: " + LastError);
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
      if (auto R = reconnect(); !R) {
        LastError = R.error().Message;
        continue;
      }
    } else if (!Sock.valid()) {
      if (auto R = reconnect(); !R) {
        LastError = R.error().Message;
        continue;
      }
    }
    auto Raw = call(RequestFrame);
    if (!Raw) {
      LastError = Raw.error().Message;
      Sock.reset(); // poisoned
      continue;
    }
    // Transport succeeded; peek at the status to honour backpressure
    // rejections. An unparseable response is returned as-is — that is the
    // caller's problem, not a transport failure.
    auto Parsed = parseResponse(*Raw);
    if (Parsed && retryableStatus(Parsed->Status)) {
      LastError = "daemon rejected with status '" + Parsed->Status + "'";
      Sock.reset(); // conn_limit/timeout closed it daemon-side anyway
      continue;
    }
    return Raw;
  }
  return err("all " + std::to_string(Attempts) +
             " attempts failed: " + LastError);
}

Expected<ParsedResponse>
Client::callRetryParsed(std::string_view RequestFrame) {
  auto Raw = callRetry(RequestFrame);
  if (!Raw)
    return Raw.takeError();
  return parseResponse(*Raw);
}
