//===-- serve/Client.cpp --------------------------------------------------===//

#include "serve/Client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

using namespace cerb;
using namespace cerb::serve;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t elapsedMs(Clock::time_point Since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            Since)
          .count());
}

/// Rejection statuses worth a retry: transient daemon-side conditions that
/// a later attempt can clear. Everything else (`error`, `bad_request`,
/// `draining`, unknown) is deterministic or a stop signal — terminal.
bool retryableStatus(const std::string &Status) {
  return Status == "overloaded" || Status == "conn_limit" ||
         Status == "timeout";
}

} // namespace

Expected<net::Fd> Client::dial(const std::string &SocketPath, int Port,
                               const RetryPolicy &Policy) {
  Expected<net::Fd> S =
      !SocketPath.empty()
          ? net::connectUnix(SocketPath)
          : (Port >= 0
                 ? net::connectTcp(static_cast<uint16_t>(Port))
                 : Expected<net::Fd>(
                       err("no daemon address (need a socket path or a TCP "
                           "port)")));
  if (S && Policy.CallTimeoutMs)
    net::setIoTimeout(S->get(), Policy.CallTimeoutMs);
  return S;
}

Expected<Client> Client::connect(const std::string &SocketPath, int Port,
                                 const RetryPolicy &Policy) {
  auto S = dial(SocketPath, Port, Policy);
  if (!S)
    return S.takeError();
  return Client(std::move(*S), SocketPath, Port, Policy);
}

uint64_t Client::backoffMs(unsigned Attempt) {
  uint64_t D = Policy.BaseDelayMs ? Policy.BaseDelayMs : 1;
  for (unsigned I = 0; I < Attempt && D < Policy.MaxDelayMs; ++I)
    D *= 2;
  D = std::min<uint64_t>(std::max<uint64_t>(D, 1), Policy.MaxDelayMs);
  // xorshift64 jitter into [D/2, D]: decorrelates a fleet of clients all
  // retrying the same recovering daemon.
  Rng ^= Rng << 13;
  Rng ^= Rng >> 7;
  Rng ^= Rng << 17;
  uint64_t Half = D / 2;
  return D - (Half ? Rng % (Half + 1) : 0);
}

ExpectedVoid Client::reconnect() {
  Sock.reset();
  auto S = dial(SocketPath, Port, Policy);
  if (!S)
    return S.takeError();
  Sock = std::move(*S);
  return ExpectedVoid();
}

Expected<std::string> Client::call(std::string_view RequestFrame) {
  if (!Sock.valid())
    return err("client is not connected (reconnect first)");
  if (!net::writeFrame(Sock.get(), RequestFrame))
    return err("failed to send request frame (daemon gone?)");
  std::string Out;
  int R = net::readFrame(Sock.get(), Out);
  if (R == 0)
    return err("daemon closed the connection before responding");
  if (R != 1)
    return err("failed to read response frame");
  return Out;
}

Expected<ParsedResponse> Client::callParsed(std::string_view RequestFrame) {
  auto Raw = call(RequestFrame);
  if (!Raw)
    return Raw.takeError();
  return parseResponse(*Raw);
}

Expected<std::string> Client::callRetry(std::string_view RequestFrame) {
  const unsigned Attempts = std::max(1u, Policy.MaxAttempts);
  Clock::time_point Start = Clock::now();
  std::string LastError = "call never attempted";
  for (unsigned Attempt = 0; Attempt < Attempts; ++Attempt) {
    if (Attempt) {
      // A failed call poisons the framed stream (a half-read response may
      // be in flight); every retry gets a fresh connection.
      uint64_t Delay = backoffMs(Attempt - 1);
      if (Policy.TotalDeadlineMs &&
          elapsedMs(Start) + Delay >= Policy.TotalDeadlineMs)
        return err("retry deadline exceeded after " +
                   std::to_string(Attempt) + " attempts: " + LastError);
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
      if (auto R = reconnect(); !R) {
        LastError = R.error().Message;
        continue;
      }
    } else if (!Sock.valid()) {
      if (auto R = reconnect(); !R) {
        LastError = R.error().Message;
        continue;
      }
    }
    auto Raw = call(RequestFrame);
    if (!Raw) {
      LastError = Raw.error().Message;
      Sock.reset(); // poisoned
      continue;
    }
    // Transport succeeded; peek at the status to honour backpressure
    // rejections. An unparseable response is returned as-is — that is the
    // caller's problem, not a transport failure.
    auto Parsed = parseResponse(*Raw);
    if (Parsed && retryableStatus(Parsed->Status)) {
      LastError = "daemon rejected with status '" + Parsed->Status + "'";
      Sock.reset(); // conn_limit/timeout closed it daemon-side anyway
      continue;
    }
    return Raw;
  }
  return err("all " + std::to_string(Attempts) +
             " attempts failed: " + LastError);
}

Expected<ParsedResponse>
Client::callRetryParsed(std::string_view RequestFrame) {
  auto Raw = callRetry(RequestFrame);
  if (!Raw)
    return Raw.takeError();
  return parseResponse(*Raw);
}

Expected<BatchCallResult>
Client::callBatch(const std::vector<EvalRequest> &Requests,
                  const BatchOptions &Opts) {
  if (Requests.empty())
    return err("callBatch needs at least one request");
  // Validate ids up front: the receive loop reassembles by id, and the
  // daemon would reject the whole frame anyway.
  std::unordered_map<std::string, size_t> Index;
  for (size_t I = 0; I < Requests.size(); ++I) {
    if (Requests[I].Id.empty())
      return err("batch request " + std::to_string(I) + " has an empty id");
    if (!Index.emplace(Requests[I].Id, I).second)
      return err("duplicate batch request id '" + Requests[I].Id + "'");
  }

  const unsigned Attempts = std::max(1u, Policy.MaxAttempts);
  const uint64_t Deadline =
      Opts.DeadlineMs ? Opts.DeadlineMs : Policy.TotalDeadlineMs;
  const Clock::time_point Start = Clock::now();

  BatchCallResult Out;
  Out.Raw.resize(Requests.size());
  Out.Responses.resize(Requests.size());
  std::vector<bool> Done(Requests.size(), false);
  size_t Missing = Requests.size();
  std::string LastError = "batch never attempted";

  for (unsigned Attempt = 0; Attempt < Attempts && Missing; ++Attempt) {
    Out.Attempts = Attempt + 1;
    if (Attempt) {
      uint64_t Delay = backoffMs(Attempt - 1);
      if (Deadline && elapsedMs(Start) + Delay >= Deadline)
        return err("batch deadline exceeded after " +
                   std::to_string(Attempt) + " attempts (" +
                   std::to_string(Missing) +
                   " replies missing): " + LastError);
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
      if (auto R = reconnect(); !R) {
        LastError = R.error().Message;
        continue;
      }
    } else if (!Sock.valid()) {
      if (auto R = reconnect(); !R) {
        LastError = R.error().Message;
        continue;
      }
    }

    // Idempotent resend of only the ids still missing.
    std::vector<EvalRequest> Pending;
    Pending.reserve(Missing);
    for (size_t I = 0; I < Requests.size(); ++I)
      if (!Done[I])
        Pending.push_back(Requests[I]);

    // Chunk by pipeline depth and write *every* frame before reading any
    // reply — the client overlaps its own I/O with the daemon's
    // evaluation instead of round-tripping per request.
    const size_t Depth =
        Opts.PipelineDepth
            ? std::min<size_t>(Opts.PipelineDepth, MaxBatchRequests)
            : std::min(Pending.size(), MaxBatchRequests);
    const size_t NumChunks = (Pending.size() + Depth - 1) / Depth;
    bool Failed = false;
    for (size_t CI = 0; CI < NumChunks && !Failed; ++CI) {
      const size_t Lo = CI * Depth;
      const size_t Hi = std::min(Lo + Depth, Pending.size());
      std::vector<EvalRequest> Chunk(Pending.begin() + Lo,
                                     Pending.begin() + Hi);
      std::string Frame = serializeBatchRequest(
          "b" + std::to_string(Attempt) + "-" + std::to_string(CI), Chunk);
      if (!net::writeFrame(Sock.get(), Frame)) {
        LastError = "failed to send batch frame (daemon gone?)";
        Failed = true;
      }
    }

    // Drain the reply stream until every chunk's batch_done arrived (even
    // after the last eval reply — the stream must end clean). The daemon
    // coalesces warm replies into one write, so the buffered reader slices
    // many frames out of a single read() instead of two syscalls a frame.
    size_t DonesExpected = Failed ? 0 : NumChunks;
    net::FrameReader Reader(Sock.get());
    while (DonesExpected) {
      if (Deadline && elapsedMs(Start) >= Deadline)
        return err("batch deadline exceeded (" + std::to_string(Missing) +
                   " replies missing)");
      std::string FrameIn;
      int R = Reader.next(FrameIn);
      if (R != 1) {
        LastError = R == 0 ? "daemon closed the connection mid-batch"
                           : "failed to read batch response frame";
        Failed = true;
        break;
      }
      auto P = parseResponse(FrameIn);
      if (!P) {
        LastError = P.error().Message;
        Failed = true;
        break;
      }
      if (P->BatchDone) {
        --DonesExpected;
        continue;
      }
      auto It = Index.find(P->Id);
      if (It == Index.end()) {
        // Not a request id: a whole-chunk rejection (its id is the chunk's
        // batch id, or empty). Backpressure is retryable; anything else is
        // deterministic — terminal.
        if (retryableStatus(P->Status)) {
          LastError = "daemon rejected with status '" + P->Status + "'";
          Failed = true;
          break;
        }
        return err("daemon rejected the batch: status '" + P->Status + "'" +
                   (P->Error.empty() ? "" : ": " + P->Error));
      }
      if (!Done[It->second]) {
        Done[It->second] = true;
        --Missing;
        Out.Raw[It->second] = std::move(FrameIn);
        Out.Responses[It->second] = std::move(*P);
      }
      // A duplicate reply for an already-answered id (a retry racing its
      // predecessor's reply) is dropped: ids complete exactly once.
    }
    if (Failed) {
      Sock.reset(); // poisoned: a half-read reply may be in flight
      continue;
    }
  }
  if (!Missing)
    return Out;
  return err("batch failed after " + std::to_string(Out.Attempts) +
             " attempts with " + std::to_string(Missing) +
             " replies missing: " + LastError);
}
