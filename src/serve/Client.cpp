//===-- serve/Client.cpp --------------------------------------------------===//

#include "serve/Client.h"

using namespace cerb;
using namespace cerb::serve;

Expected<Client> Client::connect(const std::string &SocketPath, int Port) {
  if (!SocketPath.empty()) {
    auto S = net::connectUnix(SocketPath);
    if (!S)
      return S.takeError();
    return Client(std::move(*S));
  }
  if (Port >= 0) {
    auto S = net::connectTcp(static_cast<uint16_t>(Port));
    if (!S)
      return S.takeError();
    return Client(std::move(*S));
  }
  return err("no daemon address (need a socket path or a TCP port)");
}

Expected<std::string> Client::call(std::string_view RequestFrame) {
  if (!net::writeFrame(Sock.get(), RequestFrame))
    return err("failed to send request frame (daemon gone?)");
  std::string Out;
  int R = net::readFrame(Sock.get(), Out);
  if (R == 0)
    return err("daemon closed the connection before responding");
  if (R != 1)
    return err("failed to read response frame");
  return Out;
}

Expected<ParsedResponse> Client::callParsed(std::string_view RequestFrame) {
  auto Raw = call(RequestFrame);
  if (!Raw)
    return Raw.takeError();
  return parseResponse(*Raw);
}
