//===-- serve/Client.h - cerb-serve/1 client ----------------------*- C++ -*-===//
///
/// \file
/// The thin client side of the daemon protocol: connect once (unix path or
/// loopback TCP port), then call() any number of request frames. `cerb
/// query` is a direct wrapper around this; tests use it to drive an
/// in-process daemon over real sockets.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_CLIENT_H
#define CERB_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Socket.h"

#include <string>

namespace cerb::serve {

class Client {
public:
  /// Connects to a daemon: \p SocketPath when non-empty, else loopback TCP
  /// \p Port.
  static Expected<Client> connect(const std::string &SocketPath,
                                  int Port = -1);

  /// One round trip: writes \p RequestFrame, reads one response frame.
  Expected<std::string> call(std::string_view RequestFrame);

  /// call() + parseResponse.
  Expected<ParsedResponse> callParsed(std::string_view RequestFrame);

private:
  explicit Client(net::Fd Sock) : Sock(std::move(Sock)) {}
  net::Fd Sock;
};

} // namespace cerb::serve

#endif // CERB_SERVE_CLIENT_H
