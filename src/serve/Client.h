//===-- serve/Client.h - cerb-serve/1 client ----------------------*- C++ -*-===//
///
/// \file
/// The client side of the daemon protocol: connect (unix path or loopback
/// TCP port), then call() any number of request frames. `cerb query` is a
/// direct wrapper around this; tests use it to drive an in-process daemon
/// over real sockets.
///
/// Robustness: callRetry() survives the transient failures the daemon and
/// the network are allowed to produce — connection reset, torn response,
/// accept drop, `overloaded`/`conn_limit` backpressure — by reconnecting
/// and retrying under a seeded exponential-backoff-with-jitter policy with
/// a total-attempt deadline. A failed call poisons the framed stream (a
/// half-read response may be in flight), so every retry runs on a fresh
/// connection. Retrying evals is safe: they are idempotent and
/// cache-keyed, so a duplicate attempt returns the identical bytes.
/// Terminal rejections (`error`, `bad_request`, `draining`) are never
/// retried — repeating a deterministic failure cannot help.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_CLIENT_H
#define CERB_SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Socket.h"

#include <string>
#include <vector>

namespace cerb::serve {

/// When and how callRetry() re-attempts a failed call.
struct RetryPolicy {
  /// Total attempts (first try included). 1 = no retries.
  unsigned MaxAttempts = 1;
  /// First backoff delay; doubles per retry up to MaxDelayMs. The actual
  /// sleep is jittered into [delay/2, delay] so a fleet of clients
  /// retrying a recovering daemon does not stampede in lockstep.
  uint64_t BaseDelayMs = 2;
  uint64_t MaxDelayMs = 200;
  /// Give up (whatever MaxAttempts says) once this much wall time has
  /// elapsed since the callRetry() began. 0 = no deadline.
  uint64_t TotalDeadlineMs = 0;
  /// Per-call socket timeout (SO_RCVTIMEO/SO_SNDTIMEO): a dead or stalled
  /// daemon fails the attempt instead of hanging it. 0 = block forever.
  uint64_t CallTimeoutMs = 0;
  /// Seed for the jitter PRNG — a fixed seed makes a retry schedule
  /// reproducible in tests.
  uint64_t Seed = 1;
};

/// How callBatch() puts a batch on the wire.
struct BatchOptions {
  /// Requests per `batch` frame. 0 = the whole batch in one frame (capped
  /// at MaxBatchRequests). Smaller depths split the batch into several
  /// frames, all written back-to-back *before* any reply is awaited —
  /// reply bytes are identical for any depth; only framing granularity
  /// changes.
  unsigned PipelineDepth = 0;
  /// Whole-batch wall-clock deadline across every attempt (0 = fall back
  /// to RetryPolicy.TotalDeadlineMs). Like callRetry, a *stalled* read is
  /// bounded by RetryPolicy.CallTimeoutMs, not by this.
  uint64_t DeadlineMs = 0;
};

/// The reassembled outcome of one callBatch(): per-request responses in
/// *request order* (the wire carries completion order; reassembly is by
/// id). Raw frames are kept verbatim so callers can pin byte-identity.
struct BatchCallResult {
  std::vector<std::string> Raw;          ///< response frames, 1:1 with requests
  std::vector<ParsedResponse> Responses; ///< parsed, 1:1 with requests
  unsigned Attempts = 1;                 ///< transport attempts consumed
};

class Client {
public:
  /// Connects to a daemon: \p SocketPath when non-empty, else loopback TCP
  /// \p Port. The policy is remembered for callRetry() and reconnect().
  static Expected<Client> connect(const std::string &SocketPath,
                                  int Port = -1,
                                  const RetryPolicy &Policy = RetryPolicy());

  /// One round trip: writes \p RequestFrame, reads one response frame.
  /// After a failure the stream is poisoned — reconnect() before reuse.
  Expected<std::string> call(std::string_view RequestFrame);

  /// call() + parseResponse.
  Expected<ParsedResponse> callParsed(std::string_view RequestFrame);

  /// call() under the connect-time RetryPolicy: on transport failure or a
  /// retryable rejection (`overloaded`, `conn_limit`, `timeout`), tears
  /// the connection down, backs off, reconnects, and re-sends — until the
  /// response is terminal, attempts run out, or the deadline passes.
  Expected<std::string> callRetry(std::string_view RequestFrame);

  /// callRetry() + parseResponse.
  Expected<ParsedResponse> callRetryParsed(std::string_view RequestFrame);

  /// Sends \p Requests as pipelined `batch` frames and reassembles the
  /// reply stream by request id until every chunk's `batch_done` arrives.
  /// Requests must carry unique non-empty ids. On a transport failure or a
  /// retryable rejection mid-stream, reconnects under the RetryPolicy and
  /// resends a batch containing *only the ids still missing* — evals are
  /// idempotent and cache-keyed, so a reply that raced the failure is
  /// kept, never re-requested, and duplicates are dropped by id.
  Expected<BatchCallResult> callBatch(const std::vector<EvalRequest> &Requests,
                                      const BatchOptions &Opts = BatchOptions());

  /// Drops the current socket and dials the daemon again (with connect
  /// retries under the policy). callRetry() does this automatically.
  ExpectedVoid reconnect();

private:
  Client(net::Fd Sock, std::string SocketPath, int Port, RetryPolicy Policy)
      : Sock(std::move(Sock)), SocketPath(std::move(SocketPath)), Port(Port),
        Policy(Policy), Rng(Policy.Seed ? Policy.Seed : 1) {}

  /// One dial attempt (no retries), applying CallTimeoutMs to the socket.
  static Expected<net::Fd> dial(const std::string &SocketPath, int Port,
                                const RetryPolicy &Policy);
  /// Jittered backoff delay for 0-based retry \p Attempt.
  uint64_t backoffMs(unsigned Attempt);

  net::Fd Sock;
  std::string SocketPath;
  int Port = -1;
  RetryPolicy Policy;
  uint64_t Rng; ///< xorshift64 state for jitter
};

} // namespace cerb::serve

#endif // CERB_SERVE_CLIENT_H
