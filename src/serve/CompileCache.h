//===-- serve/CompileCache.h - Daemon-resident compile cache ----*- C++ -*-===//
///
/// \file
/// The daemon-resident elaboration cache: one exec::CompileCache owned by
/// the Daemon for its whole lifetime, keyed by source × FrontendOptions
/// fingerprint and bounded by an LRU byte budget (`--compile-cache-mb`).
/// It composes with the two-tier ResultCache as the *second* line of
/// defence: a result-cache hit replays stored report bytes and never
/// touches this cache at all; a result-cache miss re-evaluates, and only
/// the policy-independent front half is shared here — so the
/// N-policies-over-one-file batch shape elaborates once per file instead
/// of N times, across every request the daemon ever serves.
///
/// Hit/miss/evict counters surface in the `stats` op under
/// `"compile_cache"`. The type is an alias — the implementation (and the
/// single-flight + pinned-eviction invariants) live in exec/CompileCache.h.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_SERVE_COMPILECACHE_H
#define CERB_SERVE_COMPILECACHE_H

#include "exec/CompileCache.h"

namespace cerb::serve {

using CompileCache = exec::CompileCache;
using CompileCacheStats = exec::CompileCacheStats;

} // namespace cerb::serve

#endif // CERB_SERVE_COMPILECACHE_H
