//===-- oracle/CompileCache.cpp -------------------------------------------===//

#include "oracle/CompileCache.h"

#include "trace/Trace.h"

using namespace cerb;
using namespace cerb::oracle;

uint64_t CompileCache::hashSource(std::string_view Src) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Src) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::shared_ptr<const CompiledUnit>
CompileCache::get(const std::string &Source, bool *OutHit) {
  std::unique_lock<std::mutex> L(M);
  auto [It, Inserted] = Map.try_emplace(Source);
  // Element references survive rehashing; iterators do not.
  Slot &S = It->second;
  if (!Inserted) {
    static trace::Counter CntHits("oracle.cache_hits");
    CntHits.add();
    trace::instant("oracle.cache-hit", "oracle");
    ++Hits;
    if (OutHit)
      *OutHit = true;
    CV.wait(L, [&S] { return S.Ready; });
    return S.Unit;
  }
  static trace::Counter CntMisses("oracle.cache_misses");
  CntMisses.add();
  ++Misses;
  if (OutHit)
    *OutHit = false;
  L.unlock();

  auto Unit = std::make_shared<CompiledUnit>();
  Unit->SourceHash = hashSource(Source);
  auto R = exec::compileWithStats(Source);
  if (R) {
    Unit->Prog = std::make_shared<const core::CoreProgram>(std::move(R->Prog));
    Unit->Rewrites = R->Rewrites;
    Unit->Timings = R->Timings;
  } else {
    Unit->Error = R.error().str();
  }

  L.lock();
  S.Unit = std::move(Unit);
  S.Ready = true;
  auto Out = S.Unit; // copy under the lock; rehashing invalidates iterators
  L.unlock();
  CV.notify_all();
  return Out;
}

uint64_t CompileCache::hits() const {
  std::lock_guard<std::mutex> L(M);
  return Hits;
}

uint64_t CompileCache::misses() const {
  std::lock_guard<std::mutex> L(M);
  return Misses;
}
