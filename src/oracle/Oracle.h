//===-- oracle/Oracle.h - Parallel batch test-oracle service ----*- C++ -*-===//
///
/// \file
/// The batch oracle: accepts N jobs (source × MemoryPolicy × execution
/// mode), runs them on a fixed-size work-stealing pool, and aggregates
/// structured results. The paper runs Cerberus "as a test oracle" over its
/// semantic test suite and over Csmith-generated programs (§5.4, §6) — an
/// embarrassingly parallel workload across programs × policies that the
/// single-shot exec::evaluateOnce/evaluateExhaustive API cannot batch.
///
/// Guarantees:
///  - compile-once/run-many: one elaboration per distinct source per batch,
///    shared across its policy instantiations (CompileCache);
///  - determinism: per-job outcomes, statuses, and aggregate counters are
///    identical for any thread count (timings aside) — results are keyed
///    by submission index and every sampling seed derives from the job;
///  - graceful degradation: a job whose exhaustive exploration trips its
///    path budget falls back to bounded-random sampling, and one that
///    exceeds its wall-clock deadline reports `timed_out` — both recorded
///    in the result rather than aborting the batch.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_ORACLE_ORACLE_H
#define CERB_ORACLE_ORACLE_H

#include "defacto/Suite.h"
#include "exec/Pipeline.h"
#include "oracle/CompileCache.h"
#include "oracle/ThreadPool.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cerb::oracle {

/// How a job explores the program's behaviours (§5.1's two drivers, plus
/// the deterministic leftmost schedule).
enum class Mode {
  Once,       ///< one leftmost execution
  Random,     ///< one pseudorandom path (seeded)
  Exhaustive, ///< all decision vectors, up to the path budget
};

std::string_view modeName(Mode M);
std::optional<Mode> modeByName(std::string_view Name);

/// Per-job robustness budgets.
struct JobBudget {
  /// Step/call-depth limits per execution path. The Deadline field is
  /// ignored here; set DeadlineMs instead (the oracle arms the absolute
  /// deadline when the job starts running, not when it is submitted).
  exec::ExecLimits Limits;
  uint64_t MaxPaths = 512;  ///< exhaustive-mode path budget
  uint64_t DeadlineMs = 0;  ///< wall-clock deadline for the job; 0 = none
  /// On a path-budget trip, how many pseudorandom paths to sample beyond
  /// the DFS prefix (graceful degradation; 0 disables sampling).
  uint64_t FallbackSamples = 16;
  /// Workers for this job's exhaustive exploration. 1 (the default) keeps
  /// the exploration serial so batch-level parallelism dominates; >1 makes
  /// the job publish subtree prefixes onto the batch's shared pool (or,
  /// for a standalone runJob, onto a private pool of this size). The cerb
  /// CLI wires --jobs into this for single-program exhaustive runs.
  unsigned ExploreJobs = 1;
};

/// One unit of work: a program under one policy in one mode.
struct Job {
  std::string Name;       ///< display name (file path or test name)
  std::string Source;     ///< C source text
  /// Frontend knobs: part of the compile-cache key, so the same source
  /// under different options gets a distinct elaboration.
  exec::FrontendOptions Frontend;
  mem::MemoryPolicy Policy;
  Mode ExecMode = Mode::Exhaustive;
  uint64_t Seed = 1;      ///< Random mode / degraded-sampling base seed
  JobBudget Budget;
  /// Expected behaviour, when the job comes from the semantic suite; the
  /// oracle then records a pass/fail verdict.
  std::optional<defacto::Expect> Expected;
};

/// Job completion status (the JSON report's `status` field).
enum class JobStatus {
  Ok,           ///< completed within every budget
  Degraded,     ///< a budget (paths/steps) tripped; partial results recorded
  TimedOut,     ///< the wall-clock deadline fired
  CompileError, ///< static error: the front half rejected the program
  Error,        ///< internal dynamic error (ill-formed Core reached)
};

std::string_view jobStatusName(JobStatus S);

struct JobResult {
  std::string Name;
  std::string PolicyName;
  Mode ExecMode = Mode::Exhaustive;
  JobStatus Status = JobStatus::Error;
  std::string CompileError;
  /// Distinct outcomes observed (Once/Random: exactly one entry).
  exec::ExhaustiveResult Outcomes;
  uint64_t SourceHash = 0;
  bool CacheHit = false;     ///< this job reused another job's elaboration
  uint64_t RandomSamples = 0; ///< degraded-mode paths actually sampled

  /// Verdict against Job::Expected (None when the job carried none).
  enum class Verdict { None, Pass, Fail };
  Verdict Check = Verdict::None;

  /// UB occurrences among the distinct outcomes, by kind.
  std::map<mem::UBKind, uint64_t> UBTally;

  // Observability: per-stage timings. Compile timings are the *shared*
  // elaboration's cost (reported identically for every job that reused it).
  exec::StageTimings Compile;
  double RunMs = 0;
  double TotalMs = 0;
};

/// Aggregate snapshot over one batch (the in-memory observability surface;
/// Report.h serializes it).
struct OracleStats {
  uint64_t Jobs = 0;
  uint64_t Ok = 0;
  uint64_t Degraded = 0;
  uint64_t TimedOut = 0;
  uint64_t CompileErrors = 0;
  uint64_t Errors = 0;
  uint64_t ChecksPassed = 0;
  uint64_t ChecksFailed = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0; ///< == number of distinct sources in the batch
  uint64_t PathsExplored = 0;
  uint64_t RandomSamples = 0;
  uint64_t Steals = 0; ///< pool tasks run by a non-owning worker
  /// Exploration observability, summed/maxed over exhaustive jobs (see
  /// exec::ExploreStats; scheduling-dependent, reported behind timings).
  uint64_t ExploreReplayedSteps = 0;
  uint64_t ExploreFrontierHighWater = 0;
  /// UB occurrences across all jobs' distinct outcomes, keyed by ubName.
  std::map<std::string, uint64_t> UBTally;
  /// trace::Registry delta over the batch (nonzero entries only). Counter
  /// deltas are semantic-event counts, deterministic for any thread count
  /// and with tracing on or off, so reports embed them unconditionally.
  std::map<std::string, uint64_t> Counters;
  exec::StageTimings CompileTotals; ///< summed over cache *misses* only
  double RunMsTotal = 0;
  double WallMs = 0;

  /// Human-readable multi-line snapshot.
  std::string str() const;
};

struct BatchResult {
  /// 1:1 with the submitted jobs, in submission order.
  std::vector<JobResult> Results;
  OracleStats Stats;
};

struct OracleConfig {
  /// Worker threads (0 = hardware concurrency).
  unsigned Threads = 0;
};

class Oracle {
public:
  explicit Oracle(OracleConfig Cfg = OracleConfig());

  /// Runs the whole batch to completion; individual job failures (compile
  /// errors, deadlines, budget trips) are recorded per job, never abort
  /// the batch.
  BatchResult run(const std::vector<Job> &Jobs);

  /// Builds the cross product suite × policies as jobs carrying the
  /// suite's per-policy expectations (keyed by MemoryPolicy::Name).
  static std::vector<Job>
  suiteJobs(const std::vector<defacto::TestCase> &Suite,
            const std::vector<mem::MemoryPolicy> &Policies,
            const JobBudget &Budget, Mode ExecMode = Mode::Exhaustive);

  unsigned threadCount() const { return Threads; }

private:
  unsigned Threads;
};

/// Runs one job against an explicit cache (the building block of
/// Oracle::run; exposed for tests and custom harnesses). When \p Pool is
/// given and the job's Budget.ExploreJobs > 1, an exhaustive job shares the
/// pool with its exploration's subtree tasks (ThreadPool task groups make
/// this deadlock-free); without a pool such a job spins up its own.
JobResult runJob(const Job &J, CompileCache &Cache,
                 ThreadPool *Pool = nullptr);

} // namespace cerb::oracle

#endif // CERB_ORACLE_ORACLE_H
