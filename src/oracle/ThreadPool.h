//===-- oracle/ThreadPool.h - Fixed-size work-stealing pool -----*- C++ -*-===//
///
/// \file
/// The oracle's execution substrate: a fixed-size pool of workers, each
/// owning a deque of tasks. Owners pop from the back of their own deque
/// (LIFO, for cache locality between a test's policy instantiations, which
/// submit() places on the same deque); idle workers steal from the front of
/// a victim's deque (FIFO, taking the oldest — and typically largest —
/// remaining chunk of work).
///
/// All deques share one mutex: oracle tasks are coarse (each compiles
/// and/or interprets a whole C program, hundreds of microseconds at the
/// very least), so queue operations are nowhere near the contention point
/// and the single lock keeps the sleep/wake protocol trivially correct.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_ORACLE_THREADPOOL_H
#define CERB_ORACLE_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cerb::oracle {

class ThreadPool {
public:
  /// Spawns \p ThreadCount workers (clamped to at least 1).
  explicit ThreadPool(unsigned ThreadCount);
  /// Drains nothing: outstanding tasks are completed before destruction
  /// returns (wait() then join).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task; round-robins across worker deques so related
  /// consecutive submissions land on the same few owners.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished running.
  void wait();

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }
  /// Tasks executed by a worker other than the one they were submitted to.
  uint64_t stealCount() const;

private:
  void workerLoop(unsigned Me);
  /// Pops a task for worker \p Me (own back, then steal a victim's front).
  /// Must hold M. Returns false if every deque is empty.
  bool takeLocked(unsigned Me, std::function<void()> &Task);

  std::vector<std::deque<std::function<void()>>> Queues;
  std::vector<std::thread> Workers;
  mutable std::mutex M;
  std::condition_variable CV;     ///< wakes idle workers
  std::condition_variable DoneCV; ///< wakes wait()ers
  unsigned NextQueue = 0;
  uint64_t Pending = 0; ///< queued + running tasks
  uint64_t Steals = 0;
  bool Stop = false;
};

} // namespace cerb::oracle

#endif // CERB_ORACLE_THREADPOOL_H
