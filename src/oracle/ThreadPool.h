//===-- oracle/ThreadPool.h - Pool alias (now lives in support) -*- C++ -*-===//
///
/// \file
/// The work-stealing pool started life as the oracle's private substrate;
/// the parallel exhaustive explorer (exec/Driver) generalised it with task
/// groups and moved it below the exec layer, to support/ThreadPool.h. This
/// header keeps the oracle-side spelling working.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_ORACLE_THREADPOOL_H
#define CERB_ORACLE_THREADPOOL_H

#include "support/ThreadPool.h"

namespace cerb::oracle {
using cerb::ThreadPool;
} // namespace cerb::oracle

#endif // CERB_ORACLE_THREADPOOL_H
