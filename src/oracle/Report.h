//===-- oracle/Report.h - Batch report serialization ------------*- C++ -*-===//
///
/// \file
/// Serializers for BatchResult: a JSON document (machine-readable, stable
/// key order, jobs in submission order) and a JUnit-style XML document
/// (one <testsuite> per policy) for CI ingestion.
///
/// Determinism contract: with IncludeTimings=false the JSON output is
/// byte-identical for any oracle thread count — everything emitted is a
/// deterministic function of the jobs. Timing fields (and the per-job
/// cache-hit attribution, which depends on which worker reached a source
/// first) are therefore segregated behind IncludeTimings.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_ORACLE_REPORT_H
#define CERB_ORACLE_REPORT_H

#include "oracle/Oracle.h"

#include <string>

namespace cerb::oracle {

struct ReportOptions {
  /// Emit wall-clock fields (and per-job cache attribution). Turn off to
  /// get byte-identical reports across thread counts.
  bool IncludeTimings = true;
};

/// Serializes the batch as JSON (schema "cerb-oracle-report/1").
std::string toJson(const BatchResult &B,
                   const ReportOptions &Opts = ReportOptions());

/// Serializes the batch as JUnit XML (one testsuite per policy; a failed
/// expectation is a <failure>, a compile/internal error an <error>).
std::string toJUnitXml(const BatchResult &B,
                       const ReportOptions &Opts = ReportOptions());

/// Writes \p Content to \p Path; returns false and fills \p Err on failure.
bool writeTextFile(const std::string &Path, const std::string &Content,
                   std::string *Err = nullptr);

// Shared report plumbing: the serialization primitives the oracle report
// uses, exported so sibling report writers (the fuzz campaign's
// "cerb-fuzz-report/1") emit byte-compatible scalars.

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(std::string_view S);
/// Renders a millisecond duration with the report's fixed 3-digit precision.
std::string jsonMs(double V);
/// Renders a 64-bit value as the report's 0x%016llx hash spelling.
std::string jsonHex64(uint64_t V);

} // namespace cerb::oracle

#endif // CERB_ORACLE_REPORT_H
