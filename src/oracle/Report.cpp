//===-- oracle/Report.cpp -------------------------------------------------===//

#include "oracle/Report.h"

#include <cstdio>
#include <fstream>
#include <map>

using namespace cerb;
using namespace cerb::oracle;

std::string cerb::oracle::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string cerb::oracle::jsonMs(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

std::string cerb::oracle::jsonHex64(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

namespace {

std::string xmlEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '&': Out += "&amp;"; break;
    case '<': Out += "&lt;"; break;
    case '>': Out += "&gt;"; break;
    case '"': Out += "&quot;"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20 && C != '\t')
        Out += ' '; // control chars are not valid XML 1.0
      else
        Out += C;
    }
  }
  return Out;
}

std::string ms(double V) { return jsonMs(V); }

std::string hex64(uint64_t V) { return jsonHex64(V); }

std::string str(uint64_t V) { return std::to_string(V); }

} // namespace

std::string cerb::oracle::toJson(const BatchResult &B,
                                 const ReportOptions &Opts) {
  std::string J;
  J += "{\n";
  J += "  \"schema\": \"cerb-oracle-report/1\",\n";

  const OracleStats &S = B.Stats;
  J += "  \"stats\": {\n";
  J += "    \"jobs\": " + str(S.Jobs) + ",\n";
  J += "    \"ok\": " + str(S.Ok) + ",\n";
  J += "    \"degraded\": " + str(S.Degraded) + ",\n";
  J += "    \"timed_out\": " + str(S.TimedOut) + ",\n";
  J += "    \"compile_errors\": " + str(S.CompileErrors) + ",\n";
  J += "    \"errors\": " + str(S.Errors) + ",\n";
  J += "    \"checks_passed\": " + str(S.ChecksPassed) + ",\n";
  J += "    \"checks_failed\": " + str(S.ChecksFailed) + ",\n";
  J += "    \"cache_misses\": " + str(S.CacheMisses) + ",\n";
  J += "    \"cache_hits\": " + str(S.CacheHits) + ",\n";
  J += "    \"paths_explored\": " + str(S.PathsExplored) + ",\n";
  J += "    \"random_samples\": " + str(S.RandomSamples) + ",\n";
  J += "    \"ub_tally\": {";
  bool First = true;
  for (const auto &[Name, N] : S.UBTally) {
    if (!First)
      J += ", ";
    J += "\"" + jsonEscape(Name) + "\": " + str(N);
    First = false;
  }
  J += "},\n";
  // trace::Registry counter deltas: semantic-event counts only (no
  // timestamps), deterministic for any --jobs and with tracing on or off,
  // so they sit outside the IncludeTimings gate.
  J += "    \"counters\": {";
  First = true;
  for (const auto &[Name, N] : S.Counters) {
    if (!First)
      J += ", ";
    J += "\"" + jsonEscape(Name) + "\": " + str(N);
    First = false;
  }
  J += "}";
  if (Opts.IncludeTimings) {
    J += ",\n    \"steals\": " + str(S.Steals) + ",\n";
    J += "    \"explore\": {\"replayed_steps\": " +
         str(S.ExploreReplayedSteps) + ", \"frontier_high_water\": " +
         str(S.ExploreFrontierHighWater) + "},\n";
    J += "    \"compile_ms\": " + ms(S.CompileTotals.totalMs()) + ",\n";
    J += "    \"run_ms\": " + ms(S.RunMsTotal) + ",\n";
    J += "    \"wall_ms\": " + ms(S.WallMs);
  }
  J += "\n  },\n";

  J += "  \"jobs\": [\n";
  for (size_t I = 0; I < B.Results.size(); ++I) {
    const JobResult &R = B.Results[I];
    J += "    {\n";
    J += "      \"name\": \"" + jsonEscape(R.Name) + "\",\n";
    J += "      \"policy\": \"" + jsonEscape(R.PolicyName) + "\",\n";
    J += "      \"mode\": \"" + std::string(modeName(R.ExecMode)) + "\",\n";
    J += "      \"status\": \"" + std::string(jobStatusName(R.Status)) +
         "\",\n";
    J += "      \"source_hash\": \"" + hex64(R.SourceHash) + "\",\n";
    switch (R.Check) {
    case JobResult::Verdict::None: J += "      \"check\": null,\n"; break;
    case JobResult::Verdict::Pass: J += "      \"check\": \"pass\",\n"; break;
    case JobResult::Verdict::Fail: J += "      \"check\": \"fail\",\n"; break;
    }
    if (!R.CompileError.empty())
      J += "      \"compile_error\": \"" + jsonEscape(R.CompileError) +
           "\",\n";
    J += "      \"paths_explored\": " + str(R.Outcomes.PathsExplored) + ",\n";
    J += "      \"truncated\": " +
         std::string(R.Outcomes.Truncated ? "true" : "false") + ",\n";
    J += "      \"random_samples\": " + str(R.RandomSamples) + ",\n";
    J += "      \"outcomes\": [";
    for (size_t K = 0; K < R.Outcomes.Distinct.size(); ++K) {
      if (K)
        J += ", ";
      J += "\"" + jsonEscape(R.Outcomes.Distinct[K].str()) + "\"";
    }
    J += "],\n";
    J += "      \"ub\": {";
    First = true;
    for (const auto &[K, N] : R.UBTally) {
      if (!First)
        J += ", ";
      J += "\"" + jsonEscape(mem::ubName(K)) + "\": " + str(N);
      First = false;
    }
    J += "}";
    if (Opts.IncludeTimings) {
      J += ",\n      \"cache_hit\": " +
           std::string(R.CacheHit ? "true" : "false") + ",\n";
      if (R.ExecMode == Mode::Exhaustive)
        J += "      \"explore\": {\"workers\": " +
             str(R.Outcomes.Stats.Workers) + ", \"replayed_steps\": " +
             str(R.Outcomes.Stats.ReplayedSteps) +
             ", \"frontier_high_water\": " +
             str(R.Outcomes.Stats.FrontierHighWater) + ", \"steals\": " +
             str(R.Outcomes.Stats.Steals) + "},\n";
      J += "      \"timings_ms\": {\"parse\": " + ms(R.Compile.ParseMs) +
           ", \"desugar\": " + ms(R.Compile.DesugarMs) +
           ", \"typecheck\": " + ms(R.Compile.TypecheckMs) +
           ", \"elaborate\": " + ms(R.Compile.ElaborateMs) +
           ", \"run\": " + ms(R.RunMs) + ", \"total\": " + ms(R.TotalMs) + "}";
    }
    J += "\n    }";
    if (I + 1 < B.Results.size())
      J += ",";
    J += "\n";
  }
  J += "  ]\n";
  J += "}\n";
  return J;
}

std::string cerb::oracle::toJUnitXml(const BatchResult &B,
                                     const ReportOptions &Opts) {
  // Group jobs by policy, preserving submission order within a group.
  std::map<std::string, std::vector<const JobResult *>> ByPolicy;
  for (const JobResult &R : B.Results)
    ByPolicy[R.PolicyName].push_back(&R);

  auto isError = [](const JobResult &R) {
    return R.Status == JobStatus::CompileError || R.Status == JobStatus::Error;
  };
  auto isFailure = [](const JobResult &R) {
    return R.Check == JobResult::Verdict::Fail &&
           R.Status != JobStatus::CompileError;
  };

  uint64_t Tests = B.Results.size(), Failures = 0, Errors = 0;
  for (const JobResult &R : B.Results) {
    if (isError(R))
      ++Errors;
    else if (isFailure(R))
      ++Failures;
  }

  std::string X;
  X += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  X += "<testsuites tests=\"" + str(Tests) + "\" failures=\"" +
       str(Failures) + "\" errors=\"" + str(Errors) + "\" time=\"" +
       ms(Opts.IncludeTimings ? B.Stats.WallMs / 1000.0 : 0.0) + "\">\n";
  for (const auto &[Policy, Rs] : ByPolicy) {
    uint64_t F = 0, E = 0;
    double T = 0;
    for (const JobResult *R : Rs) {
      if (isError(*R))
        ++E;
      else if (isFailure(*R))
        ++F;
      T += R->TotalMs;
    }
    X += "  <testsuite name=\"" + xmlEscape(Policy) + "\" tests=\"" +
         str(Rs.size()) + "\" failures=\"" + str(F) + "\" errors=\"" +
         str(E) + "\" time=\"" +
         ms(Opts.IncludeTimings ? T / 1000.0 : 0.0) + "\">\n";
    for (const JobResult *R : Rs) {
      X += "    <testcase name=\"" + xmlEscape(R->Name) +
           "\" classname=\"cerb." + xmlEscape(Policy) + "\" time=\"" +
           ms(Opts.IncludeTimings ? R->TotalMs / 1000.0 : 0.0) + "\"";
      if (isError(*R)) {
        std::string Msg = R->Status == JobStatus::CompileError
                              ? R->CompileError
                              : std::string(jobStatusName(R->Status));
        X += ">\n      <error message=\"" + xmlEscape(Msg) + "\"/>\n";
        X += "    </testcase>\n";
      } else if (isFailure(*R)) {
        std::string Msg = "unexpected behaviour:";
        for (const exec::Outcome &O : R->Outcomes.Distinct)
          Msg += " " + O.str();
        X += ">\n      <failure message=\"" + xmlEscape(Msg) + "\"/>\n";
        X += "    </testcase>\n";
      } else {
        X += "/>\n";
      }
    }
    X += "  </testsuite>\n";
  }
  X += "</testsuites>\n";
  return X;
}

bool cerb::oracle::writeTextFile(const std::string &Path,
                                 const std::string &Content,
                                 std::string *Err) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << Content;
  Out.flush();
  if (!Out) {
    if (Err)
      *Err = "error writing '" + Path + "'";
    return false;
  }
  return true;
}
