//===-- oracle/Oracle.cpp -------------------------------------------------===//

#include "oracle/Oracle.h"

#include "exec/Driver.h"
#include "oracle/ThreadPool.h"
#include "support/Format.h"
#include "trace/Trace.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

using namespace cerb;
using namespace cerb::oracle;

std::string_view cerb::oracle::modeName(Mode M) {
  switch (M) {
  case Mode::Once: return "once";
  case Mode::Random: return "random";
  case Mode::Exhaustive: return "exhaustive";
  }
  return "?";
}

std::optional<Mode> cerb::oracle::modeByName(std::string_view Name) {
  if (Name == "once")
    return Mode::Once;
  if (Name == "random")
    return Mode::Random;
  if (Name == "exhaustive")
    return Mode::Exhaustive;
  return std::nullopt;
}

std::string_view cerb::oracle::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok: return "ok";
  case JobStatus::Degraded: return "degraded";
  case JobStatus::TimedOut: return "timed_out";
  case JobStatus::CompileError: return "compile_error";
  case JobStatus::Error: return "error";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
}

/// Decides the completion status from what the run recorded. Precedence:
/// a deadline trip outranks a budget trip outranks an internal error —
/// later paths were never explored, so their absence explains everything
/// downstream.
JobStatus statusOf(const exec::ExhaustiveResult &R, uint64_t RandomSamples) {
  if (R.TimedOut)
    return JobStatus::TimedOut;
  bool BudgetTripped = R.Truncated || RandomSamples > 0;
  for (const exec::Outcome &O : R.Distinct) {
    if (O.Kind == exec::OutcomeKind::Timeout)
      return JobStatus::TimedOut;
    if (O.Kind == exec::OutcomeKind::StepLimit)
      BudgetTripped = true;
  }
  if (BudgetTripped)
    return JobStatus::Degraded;
  for (const exec::Outcome &O : R.Distinct)
    if (O.Kind == exec::OutcomeKind::Error)
      return JobStatus::Error;
  return JobStatus::Ok;
}

} // namespace

JobResult cerb::oracle::runJob(const Job &J, CompileCache &Cache,
                               ThreadPool *Pool) {
  static trace::Counter CntJobs("oracle.jobs");
  CntJobs.add();
  trace::Span JobSpan("oracle.job", "oracle");
  if (JobSpan.active())
    JobSpan.detail(J.Name + " [" + J.Policy.Name + "]");
  JobResult R;
  R.Name = J.Name;
  R.PolicyName = J.Policy.Name;
  R.ExecMode = J.ExecMode;
  auto T0 = Clock::now();

  bool Hit = false;
  std::shared_ptr<const CompiledUnit> Unit =
      Cache.get(J.Source, J.Frontend, &Hit);
  R.CacheHit = Hit;
  R.SourceHash = Unit->SourceHash;
  R.Compile = Unit->Timings;

  if (!Unit->ok()) {
    R.Status = JobStatus::CompileError;
    R.CompileError = Unit->Error;
    // A suite test that fails to compile fails its expectation (mirrors
    // defacto::runTest's CompileOk discipline).
    if (J.Expected)
      R.Check = JobResult::Verdict::Fail;
    R.TotalMs = msSince(T0);
    return R;
  }

  exec::RunOptions Opts;
  Opts.Policy = J.Policy;
  Opts.Limits = J.Budget.Limits;
  Opts.MaxPaths = J.Budget.MaxPaths;
  if (J.Budget.DeadlineMs)
    Opts.Limits.Deadline =
        Clock::now() + std::chrono::milliseconds(J.Budget.DeadlineMs);

  const core::CoreProgram &Prog = *Unit->Prog;
  auto Run0 = Clock::now();
  switch (J.ExecMode) {
  case Mode::Once: {
    exec::Outcome O = exec::runOnce(Prog, Opts);
    R.Outcomes.TimedOut = O.Kind == exec::OutcomeKind::Timeout;
    R.Outcomes.Distinct.push_back(std::move(O));
    R.Outcomes.PathsExplored = 1;
    break;
  }
  case Mode::Random: {
    exec::Outcome O = exec::runRandom(Prog, Opts, J.Seed);
    R.Outcomes.TimedOut = O.Kind == exec::OutcomeKind::Timeout;
    R.Outcomes.Distinct.push_back(std::move(O));
    R.Outcomes.PathsExplored = 1;
    break;
  }
  case Mode::Exhaustive: {
    Opts.ExploreJobs = std::max(1u, J.Budget.ExploreJobs);
    if (Pool && Opts.ExploreJobs > 1)
      // Subtree work-sharing on the caller's pool: the exploration's
      // prefix tasks interleave with other jobs' tasks, and this thread
      // helps drain its own group (no nested pool, no deadlock).
      R.Outcomes = exec::runExhaustiveOn(Prog, Opts, *Pool);
    else
      R.Outcomes = exec::runExhaustive(Prog, Opts);
    if (R.Outcomes.Truncated && !R.Outcomes.TimedOut &&
        J.Budget.FallbackSamples > 0) {
      // Graceful degradation: the DFS prefix saturated the path budget, so
      // broaden coverage with seeded pseudorandom paths (deterministic:
      // seeds derive from the job, never from the clock or the thread).
      std::set<std::string> Seen;
      for (const exec::Outcome &O : R.Outcomes.Distinct)
        Seen.insert(O.str());
      for (uint64_t I = 0; I < J.Budget.FallbackSamples; ++I) {
        if (Opts.Limits.deadlinePassed()) {
          R.Outcomes.TimedOut = true;
          break;
        }
        exec::Outcome O =
            exec::runRandom(Prog, Opts, J.Seed + I * 0x9e3779b97f4a7c15ull);
        ++R.Outcomes.PathsExplored;
        ++R.RandomSamples;
        if (O.Kind == exec::OutcomeKind::Timeout) {
          R.Outcomes.TimedOut = true;
          break;
        }
        if (Seen.insert(O.str()).second)
          R.Outcomes.Distinct.push_back(std::move(O));
      }
      // Sampling appends; restore the canonical (sorted) order so reports
      // stay byte-identical across thread counts.
      exec::canonicalizeDistinct(R.Outcomes);
    }
    break;
  }
  }
  R.RunMs = msSince(Run0);

  R.Status = statusOf(R.Outcomes, R.RandomSamples);
  for (const exec::Outcome &O : R.Outcomes.Distinct)
    if (O.Kind == exec::OutcomeKind::Undef)
      ++R.UBTally[O.UB.Kind];

  if (J.Expected) {
    bool Pass = !R.Outcomes.Distinct.empty();
    for (const exec::Outcome &O : R.Outcomes.Distinct)
      Pass = Pass && J.Expected->matches(O);
    R.Check = Pass ? JobResult::Verdict::Pass : JobResult::Verdict::Fail;
  }

  R.TotalMs = msSince(T0);
  return R;
}

Oracle::Oracle(OracleConfig Cfg) : Threads(Cfg.Threads) {
  if (Threads == 0) {
    Threads = std::thread::hardware_concurrency();
    if (Threads == 0)
      Threads = 1;
  }
}

BatchResult Oracle::run(const std::vector<Job> &Jobs) {
  trace::Span BatchSpan("oracle.batch", "oracle");
  BatchSpan.arg("jobs", Jobs.size());
  trace::Registry::Snapshot Before = trace::Registry::instance().snapshot();
  BatchResult B;
  B.Results.resize(Jobs.size());
  auto Wall0 = Clock::now();

  CompileCache Cache;
  uint64_t Steals = 0;
  {
    ThreadPool Pool(Threads);
    for (size_t I = 0; I < Jobs.size(); ++I)
      Pool.submit([&B, &Jobs, &Cache, &Pool, I] {
        B.Results[I] = runJob(Jobs[I], Cache, &Pool);
      });
    Pool.wait();
    Steals = Pool.stealCount();
  }

  OracleStats &S = B.Stats;
  S.Jobs = Jobs.size();
  S.CacheHits = Cache.hits();
  S.CacheMisses = Cache.misses();
  S.Steals = Steals;
  for (const JobResult &R : B.Results) {
    switch (R.Status) {
    case JobStatus::Ok: ++S.Ok; break;
    case JobStatus::Degraded: ++S.Degraded; break;
    case JobStatus::TimedOut: ++S.TimedOut; break;
    case JobStatus::CompileError: ++S.CompileErrors; break;
    case JobStatus::Error: ++S.Errors; break;
    }
    if (R.Check == JobResult::Verdict::Pass)
      ++S.ChecksPassed;
    else if (R.Check == JobResult::Verdict::Fail)
      ++S.ChecksFailed;
    S.PathsExplored += R.Outcomes.PathsExplored;
    S.RandomSamples += R.RandomSamples;
    S.ExploreReplayedSteps += R.Outcomes.Stats.ReplayedSteps;
    S.ExploreFrontierHighWater = std::max(
        S.ExploreFrontierHighWater, R.Outcomes.Stats.FrontierHighWater);
    for (const auto &[K, N] : R.UBTally)
      S.UBTally[std::string(mem::ubName(K))] += N;
    if (!R.CacheHit) {
      S.CompileTotals.ParseMs += R.Compile.ParseMs;
      S.CompileTotals.DesugarMs += R.Compile.DesugarMs;
      S.CompileTotals.TypecheckMs += R.Compile.TypecheckMs;
      S.CompileTotals.ElaborateMs += R.Compile.ElaborateMs;
    }
    S.RunMsTotal += R.RunMs;
  }
  S.Counters =
      trace::Registry::delta(Before, trace::Registry::instance().snapshot());
  S.WallMs = msSince(Wall0);
  return B;
}

std::vector<Job>
Oracle::suiteJobs(const std::vector<defacto::TestCase> &Suite,
                  const std::vector<mem::MemoryPolicy> &Policies,
                  const JobBudget &Budget, Mode ExecMode) {
  std::vector<Job> Jobs;
  Jobs.reserve(Suite.size() * Policies.size());
  for (const defacto::TestCase &T : Suite)
    for (const mem::MemoryPolicy &P : Policies) {
      Job J;
      J.Name = T.Name;
      J.Source = T.Source;
      J.Policy = P;
      J.ExecMode = ExecMode;
      J.Budget = Budget;
      auto It = T.Expected.find(P.Name);
      if (It != T.Expected.end())
        J.Expected = It->second;
      Jobs.push_back(std::move(J));
    }
  return Jobs;
}

std::string OracleStats::str() const {
  std::string Out;
  Out += fmt("jobs:          {0} (ok {1}, degraded {2}, timed-out {3}, "
             "compile-error {4}, error {5})\n",
             Jobs, Ok, Degraded, TimedOut, CompileErrors, Errors);
  if (ChecksPassed || ChecksFailed)
    Out += fmt("expectations:  {0} passed, {1} failed\n", ChecksPassed,
               ChecksFailed);
  Out += fmt("compile cache: {0} misses (distinct sources), {1} hits\n",
             CacheMisses, CacheHits);
  Out += fmt("paths:         {0} explored ({1} degraded-mode samples)\n",
             PathsExplored, RandomSamples);
  if (ExploreReplayedSteps || ExploreFrontierHighWater)
    Out += fmt("explore:       {0} replayed choices, frontier high-water "
               "{1}\n",
               ExploreReplayedSteps, ExploreFrontierHighWater);
  if (!UBTally.empty()) {
    Out += "ub tally:      ";
    bool First = true;
    for (const auto &[Name, N] : UBTally) {
      if (!First)
        Out += ", ";
      Out += fmt("{0}={1}", Name, N);
      First = false;
    }
    Out += "\n";
  }
  Out += fmt("compile time:  {0} ms (parse {1}, desugar {2}, typecheck {3}, "
             "elaborate {4})\n",
             CompileTotals.totalMs(), CompileTotals.ParseMs,
             CompileTotals.DesugarMs, CompileTotals.TypecheckMs,
             CompileTotals.ElaborateMs);
  Out += fmt("run time:      {0} ms across jobs; wall {1} ms; {2} steals\n",
             RunMsTotal, WallMs, Steals);
  return Out;
}
