//===-- oracle/ThreadPool.cpp ---------------------------------------------===//

#include "oracle/ThreadPool.h"

#include <algorithm>

using namespace cerb::oracle;

ThreadPool::ThreadPool(unsigned ThreadCount) {
  ThreadCount = std::max(1u, ThreadCount);
  Queues.resize(ThreadCount);
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> L(M);
    Stop = true;
  }
  CV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> L(M);
    Queues[NextQueue].push_back(std::move(Task));
    NextQueue = (NextQueue + 1) % Queues.size();
    ++Pending;
  }
  CV.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(M);
  DoneCV.wait(L, [this] { return Pending == 0; });
}

uint64_t ThreadPool::stealCount() const {
  std::lock_guard<std::mutex> L(M);
  return Steals;
}

bool ThreadPool::takeLocked(unsigned Me, std::function<void()> &Task) {
  if (!Queues[Me].empty()) {
    Task = std::move(Queues[Me].back());
    Queues[Me].pop_back();
    return true;
  }
  for (size_t Off = 1; Off < Queues.size(); ++Off) {
    auto &Victim = Queues[(Me + Off) % Queues.size()];
    if (!Victim.empty()) {
      Task = std::move(Victim.front());
      Victim.pop_front();
      ++Steals;
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Me) {
  std::unique_lock<std::mutex> L(M);
  for (;;) {
    std::function<void()> Task;
    if (takeLocked(Me, Task)) {
      L.unlock();
      Task();
      Task = nullptr; // release captures before re-locking
      L.lock();
      if (--Pending == 0)
        DoneCV.notify_all();
      continue;
    }
    if (Stop)
      return;
    CV.wait(L);
  }
}
