//===-- oracle/CompileCache.h - Compile-once/run-many cache -----*- C++ -*-===//
///
/// \file
/// A batch sweeps each test across 4+ memory-model policies, but the front
/// half of the pipeline (parse -> desugar -> typecheck -> elaborate) is
/// policy-independent: the policy only parameterises the *dynamics*. This
/// cache keys compiled units by source text so one elaboration is shared
/// across every policy instantiation of the same test, including across
/// threads: concurrent requests for an in-flight source block until the
/// winning thread publishes the unit, so each distinct source is compiled
/// exactly once per batch (misses() == number of distinct sources).
///
/// Safety: compile() pre-warms the program's dynamics caches
/// (core::warmDynamicsCaches), so the shared CoreProgram is never written
/// after publication and may be evaluated from any number of threads.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_ORACLE_COMPILECACHE_H
#define CERB_ORACLE_COMPILECACHE_H

#include "exec/Pipeline.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace cerb::oracle {

/// The immutable product of compiling one source, shared across jobs.
struct CompiledUnit {
  /// Null when compilation failed (see Error).
  std::shared_ptr<const core::CoreProgram> Prog;
  std::string Error; ///< static error message when !ok()
  core::RewriteStats Rewrites;
  exec::StageTimings Timings;
  uint64_t SourceHash = 0; ///< FNV-1a of the source text (stable job key)

  bool ok() const { return Prog != nullptr; }
};

class CompileCache {
public:
  /// Returns the compiled unit for \p Source, compiling at most once per
  /// distinct source across all threads. \p OutHit (optional) reports
  /// whether this call reused an existing or in-flight entry.
  std::shared_ptr<const CompiledUnit> get(const std::string &Source,
                                          bool *OutHit = nullptr);

  uint64_t hits() const;
  uint64_t misses() const;

  /// FNV-1a 64-bit hash of source text (the report's stable job key).
  static uint64_t hashSource(std::string_view Src);

private:
  struct Slot {
    bool Ready = false;
    std::shared_ptr<const CompiledUnit> Unit;
  };

  mutable std::mutex M;
  std::condition_variable CV;
  std::unordered_map<std::string, Slot> Map;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace cerb::oracle

#endif // CERB_ORACLE_COMPILECACHE_H
