//===-- oracle/CompileCache.h - Compile-once/run-many cache -----*- C++ -*-===//
///
/// \file
/// Compatibility surface: the compile cache started life here (one per
/// oracle batch), then the serve daemon needed the same single-flight
/// semantics with an LRU byte budget and frontend-options keying, so the
/// implementation was promoted to exec::CompileCache (exec owns
/// compilation; both oracle and serve sit above it). The oracle names are
/// aliases — oracle::runJob and every existing caller keep compiling.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_ORACLE_COMPILECACHE_H
#define CERB_ORACLE_COMPILECACHE_H

#include "exec/CompileCache.h"

namespace cerb::oracle {

using CompiledUnit = exec::CompiledUnit;
using CompileCache = exec::CompileCache;

} // namespace cerb::oracle

#endif // CERB_ORACLE_COMPILECACHE_H
