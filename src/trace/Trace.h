//===-- trace/Trace.h - Structured tracing and metrics ----------*- C++ -*-===//
///
/// \file
/// The repository's observability layer: span-based scoped timers, striped
/// monotonic counters, and a per-thread event buffer serializable as Chrome
/// `trace_event` JSON (loadable in chrome://tracing or Perfetto). Every
/// layer of the oracle pipeline threads through here — pipeline stages,
/// evaluator runs, explorer subtree tasks, memory-policy events, oracle
/// jobs, fuzz seeds — so a single `cerb run --trace=out.json` profiles the
/// whole system with one track per worker thread.
///
/// Two mechanisms with two contracts:
///
///  - **Counters** are always on. A Counter is a set of cache-line-padded
///    stripes incremented with relaxed atomics (threads hash to stripes, so
///    the hot evaluator/memory paths never contend on one cache line). The
///    process-wide Registry snapshots all counters as a sorted name -> value
///    map; Registry::delta() of two snapshots (nonzero entries only) is
///    what the oracle and fuzz reports embed. Counter deltas contain no
///    timestamps and count *semantic* events (paths run, bytes loaded, UB
///    raised), so report byte-identity across `--jobs` is preserved — with
///    the same caveat as ExhaustiveResult: a truncated or deadline-tripped
///    exploration may run a scheduling-dependent subset of paths.
///
///  - **Events** (Span / instant) are recorded only while tracing is
///    enabled. Disabled, a Span is one relaxed atomic load and a branch: no
///    allocation, no buffer creation, no clock read (the no-allocation
///    guarantee tests/test_trace.cpp pins, and bench/perf_trace_overhead
///    bounds at <2% of exhaustive-exploration wall clock). Enabled, events
///    append to the calling thread's own buffer under that buffer's own
///    mutex — lock-striped by thread, so recording never contends.
///
/// Call sites that attach *dynamic* strings to events must guard the
/// construction with `if (trace::enabled())` to keep the disabled path
/// allocation-free; names and categories are `const char *` string
/// literals precisely so the common case needs no such guard.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_TRACE_TRACE_H
#define CERB_TRACE_TRACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cerb::trace {

namespace internal {
extern std::atomic<bool> Enabled;
/// Monotonic microseconds (steady_clock); the epoch is arbitrary, the
/// serializer rebases on the session start.
uint64_t nowUs();
void recordComplete(const char *Name, const char *Cat, uint64_t StartUs,
                    uint64_t DurUs, std::string Detail, const char *ArgName,
                    uint64_t ArgVal);
void recordInstant(const char *Name, const char *Cat, std::string Detail);
/// Number of per-thread event buffers ever created (test hook: the
/// disabled-mode no-allocation guarantee is "this does not grow").
size_t threadBufferCount();
/// Events discarded because a thread buffer hit its cap.
uint64_t droppedEvents();
} // namespace internal

/// Is event recording armed? One relaxed load; safe from any thread.
inline bool enabled() {
  return internal::Enabled.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

/// A named monotonic counter, striped to keep concurrent increments off one
/// cache line. Construct as a function-local static next to the code it
/// counts; construction registers it with the Registry for the lifetime of
/// the process.
class Counter {
public:
  explicit Counter(std::string Name);
  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

  void add(uint64_t N = 1) {
    Stripes[stripeIndex()].V.fetch_add(N, std::memory_order_relaxed);
  }
  /// Sum over stripes. Monotonic but not a linearizable snapshot.
  uint64_t value() const;
  const std::string &name() const { return Name_; }

private:
  /// Each thread hashes to one stripe (assigned round-robin on first use).
  static unsigned stripeIndex();
  struct alignas(64) Stripe {
    std::atomic<uint64_t> V{0};
  };
  static constexpr unsigned NumStripes = 16;
  Stripe Stripes[NumStripes];
  std::string Name_;
};

/// The process-wide set of counters. Snapshots are sorted by name, so any
/// serialization of one is deterministic.
class Registry {
public:
  static Registry &instance();

  /// name -> value, sorted (std::map order).
  using Snapshot = std::map<std::string, uint64_t>;
  Snapshot snapshot() const;

  /// After - Before, keeping only entries whose delta is nonzero — so a
  /// delta depends only on what ran between the snapshots, not on which
  /// counters earlier process activity happened to register.
  static Snapshot delta(const Snapshot &Before, const Snapshot &After);
  /// delta() restricted to counters whose name starts with \p Prefix (the
  /// fuzz report embeds only "fuzz." counters: they are derived from
  /// campaign entries, so resumed and fresh runs serialize identically).
  static Snapshot delta(const Snapshot &Before, const Snapshot &After,
                        std::string_view Prefix);

private:
  friend class Counter;
  Registry() = default;
  void add(Counter *C);

  mutable std::mutex M;
  std::vector<Counter *> Counters;
};

//===----------------------------------------------------------------------===//
// Spans and instants
//===----------------------------------------------------------------------===//

/// RAII scoped timer: records one Chrome "X" (complete) event on the
/// calling thread's track when tracing was enabled at construction.
/// Zero-cost when disabled (no clock read, no allocation).
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "cerb")
      : Name(Name), Cat(Cat), Active(enabled()) {
    if (Active)
      StartUs = internal::nowUs();
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    if (Active)
      internal::recordComplete(Name, Cat, StartUs,
                               internal::nowUs() - StartUs, std::move(Detail),
                               ArgName, ArgVal);
  }

  bool active() const { return Active; }
  /// Attaches a free-form string (rendered as args.detail). Only call with
  /// a dynamically built string under `if (S.active())`.
  void detail(std::string D) {
    if (Active)
      Detail = std::move(D);
  }
  /// Attaches one numeric argument (rendered as args.<ArgName>).
  void arg(const char *Name_, uint64_t V) {
    if (Active) {
      ArgName = Name_;
      ArgVal = V;
    }
  }

private:
  const char *Name;
  const char *Cat;
  std::string Detail;
  const char *ArgName = nullptr;
  uint64_t ArgVal = 0;
  uint64_t StartUs = 0;
  bool Active;
};

/// Records a Chrome "i" (instant) event on the calling thread's track.
inline void instant(const char *Name, const char *Cat = "cerb") {
  if (enabled())
    internal::recordInstant(Name, Cat, std::string());
}
/// Instant with a detail string; build the string under `if (enabled())`.
inline void instant(const char *Name, const char *Cat, std::string Detail) {
  if (enabled())
    internal::recordInstant(Name, Cat, std::move(Detail));
}

//===----------------------------------------------------------------------===//
// Session control and serialization
//===----------------------------------------------------------------------===//

/// Starts a tracing session: clears every thread buffer, rebases the
/// session epoch, and arms enabled(). Not meant to run concurrently with
/// another start()/serialization (the CLI traces one command end to end).
void start();
/// Disarms enabled(); recorded events are retained for serialization.
void stop();

/// Names the calling thread's track (e.g. "main", "pool-3"). Copies into a
/// fixed-size thread-local buffer: no allocation, callable before any
/// event exists. Threads never named render as "thread-<tid>".
void setCurrentThreadName(const char *Name);

/// Serializes every retained event as a Chrome trace-event JSON document
/// ({"traceEvents": [...]}), one track per thread, with thread_name
/// metadata records. Timestamps are microseconds since the session epoch.
std::string chromeTraceJson();
/// chromeTraceJson() to a file; false (with \p Err filled) on I/O failure.
bool writeChromeTrace(const std::string &Path, std::string *Err = nullptr);

} // namespace cerb::trace

#endif // CERB_TRACE_TRACE_H
