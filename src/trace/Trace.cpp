//===-- trace/Trace.cpp ---------------------------------------------------===//

#include "trace/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

using namespace cerb;
using namespace cerb::trace;

std::atomic<bool> cerb::trace::internal::Enabled{false};

uint64_t cerb::trace::internal::nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

Counter::Counter(std::string Name) : Name_(std::move(Name)) {
  Registry::instance().add(this);
}

uint64_t Counter::value() const {
  uint64_t Sum = 0;
  for (const Stripe &S : Stripes)
    Sum += S.V.load(std::memory_order_relaxed);
  return Sum;
}

unsigned Counter::stripeIndex() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Idx =
      Next.fetch_add(1, std::memory_order_relaxed) % NumStripes;
  return Idx;
}

Registry &Registry::instance() {
  // Leaky singleton: counters are function-local statics that outlive any
  // snapshot taken during normal execution; never destroying the registry
  // sidesteps static-destruction-order hazards.
  static Registry *R = new Registry;
  return *R;
}

void Registry::add(Counter *C) {
  std::lock_guard<std::mutex> L(M);
  Counters.push_back(C);
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> L(M);
  Snapshot S;
  for (const Counter *C : Counters)
    S[C->name()] = C->value();
  return S;
}

Registry::Snapshot Registry::delta(const Snapshot &Before,
                                   const Snapshot &After) {
  return delta(Before, After, std::string_view());
}

Registry::Snapshot Registry::delta(const Snapshot &Before,
                                   const Snapshot &After,
                                   std::string_view Prefix) {
  Snapshot D;
  for (const auto &[Name, V] : After) {
    if (!Prefix.empty() &&
        std::string_view(Name).substr(0, Prefix.size()) != Prefix)
      continue;
    auto It = Before.find(Name);
    uint64_t Old = It == Before.end() ? 0 : It->second;
    if (V != Old)
      D[Name] = V - Old;
  }
  return D;
}

//===----------------------------------------------------------------------===//
// Event buffers (lock-striped: one mutex per thread buffer)
//===----------------------------------------------------------------------===//

namespace {

struct Event {
  const char *Name;
  const char *Cat;
  uint64_t TsUs = 0;
  uint64_t DurUs = 0;
  char Ph = 'X'; ///< 'X' complete | 'i' instant
  const char *ArgName = nullptr;
  uint64_t ArgVal = 0;
  std::string Detail;
};

/// Cap per thread (~96 MB worst case across 16 threads); beyond it events
/// are counted as dropped rather than exhausting memory on a pathological
/// run.
constexpr size_t MaxEventsPerThread = 1u << 20;

constexpr size_t MaxThreadNameLen = 47;

struct ThreadBuffer {
  std::mutex M;
  std::vector<Event> Events;
  uint64_t Dropped = 0;
  uint32_t Tid = 0;
  char Name[MaxThreadNameLen + 1] = {0};
};

struct Collector {
  std::mutex M;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  uint64_t EpochUs = 0;
};

Collector &collector() {
  static Collector *C = new Collector; // leaky, like the Registry
  return *C;
}

thread_local ThreadBuffer *TLB = nullptr;
/// Name staged by setCurrentThreadName before the buffer exists.
thread_local char PendingName[MaxThreadNameLen + 1] = {0};

ThreadBuffer &localBuffer() {
  if (!TLB) {
    auto B = std::make_unique<ThreadBuffer>();
    Collector &C = collector();
    std::lock_guard<std::mutex> L(C.M);
    B->Tid = static_cast<uint32_t>(C.Buffers.size() + 1);
    if (PendingName[0])
      std::memcpy(B->Name, PendingName, sizeof B->Name);
    else
      std::snprintf(B->Name, sizeof B->Name, "thread-%u", B->Tid);
    TLB = B.get();
    C.Buffers.push_back(std::move(B));
  }
  return *TLB;
}

void record(Event E) {
  ThreadBuffer &B = localBuffer();
  std::lock_guard<std::mutex> L(B.M);
  if (B.Events.size() >= MaxEventsPerThread) {
    ++B.Dropped;
    return;
  }
  B.Events.push_back(std::move(E));
}

std::string escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

void cerb::trace::internal::recordComplete(const char *Name, const char *Cat,
                                           uint64_t StartUs, uint64_t DurUs,
                                           std::string Detail,
                                           const char *ArgName,
                                           uint64_t ArgVal) {
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsUs = StartUs;
  E.DurUs = DurUs;
  E.Ph = 'X';
  E.ArgName = ArgName;
  E.ArgVal = ArgVal;
  E.Detail = std::move(Detail);
  record(std::move(E));
}

void cerb::trace::internal::recordInstant(const char *Name, const char *Cat,
                                          std::string Detail) {
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.TsUs = nowUs();
  E.Ph = 'i';
  E.Detail = std::move(Detail);
  record(std::move(E));
}

size_t cerb::trace::internal::threadBufferCount() {
  Collector &C = collector();
  std::lock_guard<std::mutex> L(C.M);
  return C.Buffers.size();
}

uint64_t cerb::trace::internal::droppedEvents() {
  Collector &C = collector();
  std::lock_guard<std::mutex> L(C.M);
  uint64_t N = 0;
  for (auto &B : C.Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    N += B->Dropped;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Session control
//===----------------------------------------------------------------------===//

void cerb::trace::start() {
  Collector &C = collector();
  std::lock_guard<std::mutex> L(C.M);
  for (auto &B : C.Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    B->Events.clear();
    B->Dropped = 0;
  }
  C.EpochUs = internal::nowUs();
  internal::Enabled.store(true, std::memory_order_release);
}

void cerb::trace::stop() {
  internal::Enabled.store(false, std::memory_order_release);
}

void cerb::trace::setCurrentThreadName(const char *Name) {
  std::snprintf(PendingName, sizeof PendingName, "%s", Name);
  if (TLB) {
    std::lock_guard<std::mutex> L(TLB->M);
    std::memcpy(TLB->Name, PendingName, sizeof TLB->Name);
  }
}

//===----------------------------------------------------------------------===//
// Chrome trace-event serialization
//===----------------------------------------------------------------------===//

std::string cerb::trace::chromeTraceJson() {
  Collector &C = collector();
  std::lock_guard<std::mutex> L(C.M);
  uint64_t Epoch = C.EpochUs;
  uint64_t Dropped = 0;

  std::string J;
  J += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool First = true;
  auto comma = [&] {
    if (!First)
      J += ",";
    First = false;
    J += "\n";
  };

  for (auto &B : C.Buffers) {
    std::lock_guard<std::mutex> BL(B->M);
    Dropped += B->Dropped;
    std::string Tid = std::to_string(B->Tid);
    comma();
    J += "{\"ph\": \"M\", \"pid\": 1, \"tid\": " + Tid +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         escape(B->Name) + "\"}}";
    for (const Event &E : B->Events) {
      // Events recorded before the current session's epoch were cleared by
      // start(); anything still here is >= Epoch, but clamp defensively.
      uint64_t Ts = E.TsUs >= Epoch ? E.TsUs - Epoch : 0;
      comma();
      J += "{\"ph\": \"";
      J += E.Ph;
      J += "\", \"pid\": 1, \"tid\": " + Tid + ", \"ts\": " +
           std::to_string(Ts) + ", \"name\": \"" + escape(E.Name) +
           "\", \"cat\": \"" + escape(E.Cat) + "\"";
      if (E.Ph == 'X')
        J += ", \"dur\": " + std::to_string(E.DurUs);
      else
        J += ", \"s\": \"t\"";
      if (!E.Detail.empty() || E.ArgName) {
        J += ", \"args\": {";
        bool FirstArg = true;
        if (!E.Detail.empty()) {
          J += "\"detail\": \"" + escape(E.Detail) + "\"";
          FirstArg = false;
        }
        if (E.ArgName) {
          if (!FirstArg)
            J += ", ";
          J += "\"" + escape(E.ArgName) +
               "\": " + std::to_string(E.ArgVal);
        }
        J += "}";
      }
      J += "}";
    }
  }
  J += "\n], \"otherData\": {\"dropped_events\": \"" +
       std::to_string(Dropped) + "\"}}\n";
  return J;
}

bool cerb::trace::writeChromeTrace(const std::string &Path, std::string *Err) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    if (Err)
      *Err = "cannot open trace file '" + Path + "' for writing";
    return false;
  }
  Out << chromeTraceJson();
  Out.flush();
  if (!Out) {
    if (Err)
      *Err = "error writing trace file '" + Path + "'";
    return false;
  }
  return true;
}
