//===-- typing/TypeCheck.cpp ----------------------------------------------===//

#include "typing/TypeCheck.h"

#include "support/Format.h"

#include <cassert>
#include <map>
#include <set>

using namespace cerb;
using namespace cerb::ail;
using cabs::BinaryOp;
using cabs::UnaryOp;

//===----------------------------------------------------------------------===//
// Conversion machinery
//===----------------------------------------------------------------------===//

int cerb::typing::rankOf(IntKind K) {
  switch (K) {
  case IntKind::Bool:
    return 0;
  case IntKind::Char:
  case IntKind::SChar:
  case IntKind::UChar:
    return 1;
  case IntKind::Short:
  case IntKind::UShort:
    return 2;
  case IntKind::Int:
  case IntKind::UInt:
    return 3;
  case IntKind::Long:
  case IntKind::ULong:
    return 4;
  case IntKind::LongLong:
  case IntKind::ULongLong:
    return 5;
  }
  return 0;
}

/// The signed/unsigned sibling of an integer kind.
static IntKind toUnsigned(IntKind K) {
  switch (K) {
  case IntKind::Char:
  case IntKind::SChar: return IntKind::UChar;
  case IntKind::Short: return IntKind::UShort;
  case IntKind::Int: return IntKind::UInt;
  case IntKind::Long: return IntKind::ULong;
  case IntKind::LongLong: return IntKind::ULongLong;
  default: return K;
  }
}

CType cerb::typing::promote(const ImplEnv &Env, const CType &Ty) {
  assert(Ty.isInteger() && "promoting non-integer");
  IntKind K = Ty.intKind();
  if (rankOf(K) >= rankOf(IntKind::Int))
    return Ty;
  // 6.3.1.1p2: if int can represent all values of the original type, the
  // value is converted to int; otherwise to unsigned int. With 32-bit int
  // every sub-int type fits in int.
  return CType::intTy();
}

CType cerb::typing::usualArithmetic(const ImplEnv &Env, const CType &A0,
                                    const CType &B0) {
  CType A = promote(Env, A0), B = promote(Env, B0);
  IntKind KA = A.intKind(), KB = B.intKind();
  if (KA == KB)
    return A;
  bool UA = isUnsignedKind(KA), UB = isUnsignedKind(KB);
  if (UA == UB)
    return rankOf(KA) >= rankOf(KB) ? A : B;
  // Mixed signedness (6.3.1.8p1).
  IntKind Unsig = UA ? KA : KB;
  IntKind Sig = UA ? KB : KA;
  if (rankOf(Unsig) >= rankOf(Sig))
    return CType::makeInteger(Unsig);
  if (Env.maxOf(Sig) >= Env.maxOf(Unsig))
    return CType::makeInteger(Sig);
  return CType::makeInteger(toUnsigned(Sig));
}

namespace {

/// Is \p E a null pointer constant (6.3.2.3p3)? We recognise the common
/// syntactic forms: an integer constant 0 and (void*)0, through parens
/// (already flattened) and casts to integer types of value 0.
bool isNullPointerConstant(const AilExpr &E) {
  if (E.Kind == AilExprKind::IntConst)
    return E.IntValue == 0;
  if (E.Kind == AilExprKind::Cast && E.CastTy.isPointer() &&
      E.CastTy.pointee().isVoid())
    return isNullPointerConstant(*E.Kids[0]);
  if (E.Kind == AilExprKind::Cast && E.CastTy.isInteger())
    return isNullPointerConstant(*E.Kids[0]);
  return false;
}

/// Pointer compatibility for the purposes of assignment/comparison: we use
/// structural equality of unqualified types; void* pairs with any object
/// pointer (6.3.2.3p1).
bool pointersCompatible(const CType &A, const CType &B) {
  if (A.pointee() == B.pointee())
    return true;
  if (A.pointee().isVoid() && !B.pointee().isFunction())
    return true;
  if (B.pointee().isVoid() && !A.pointee().isFunction())
    return true;
  return false;
}

class Checker {
public:
  explicit Checker(AilProgram &Prog) : Prog(Prog), Env(Prog.Tags) {}

  ExpectedVoid run();

private:
  AilProgram &Prog;
  ImplEnv Env;
  /// Object symbol id -> declared type. Symbols are globally unique, so a
  /// flat map works across scopes.
  std::map<unsigned, CType> ObjTypes;
  CType CurrentReturnTy;

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  /// Checks \p E, setting Ty and Cat.
  ExpectedVoid check(AilExpr &E);
  /// Checks \p E and returns its type after lvalue conversion and array/
  /// function decay (6.3.2.1) — the type it has when used as a value.
  Expected<CType> checkValue(AilExpr &E);

  /// The decayed type of an already-checked expression.
  CType valueTypeOf(const AilExpr &E) const {
    if (E.Ty.isArray())
      return CType::makePointer(E.Ty.element());
    if (E.Ty.isFunction())
      return CType::makePointer(E.Ty);
    return E.Ty;
  }

  ExpectedVoid checkUnary(AilExpr &E);
  ExpectedVoid checkBinary(AilExpr &E);
  ExpectedVoid checkAssign(AilExpr &E);
  ExpectedVoid checkCond(AilExpr &E);
  ExpectedVoid checkCall(AilExpr &E);
  ExpectedVoid checkCast(AilExpr &E);
  ExpectedVoid checkMember(AilExpr &E);

  /// Checks that a value of decayed type \p From may initialise/assign a
  /// location of type \p To (6.5.16.1 constraints), given the RHS
  /// expression for null-pointer-constant detection.
  ExpectedVoid checkAssignable(const CType &To, const CType &From,
                               const AilExpr &Rhs, SourceLoc Loc);

  //===------------------------------------------------------------------===//
  // Statements / initialisers
  //===------------------------------------------------------------------===//
  ExpectedVoid checkStmt(AilStmt &S);
  ExpectedVoid checkInit(const CType &Ty, AilInit &Init);
  ExpectedVoid checkSwitchBody(AilStmt &S, const CType &CtrlTy,
                               std::set<Int128> &Seen, bool &SawDefault);
};

//===----------------------------------------------------------------------===//
// Expression checking
//===----------------------------------------------------------------------===//

Expected<CType> Checker::checkValue(AilExpr &E) {
  CERB_CHECK(check(E));
  if (E.Ty.isVoid() && E.Kind != AilExprKind::Call &&
      E.Kind != AilExprKind::Cast && E.Kind != AilExprKind::Comma &&
      E.Kind != AilExprKind::Cond)
    return err("void value used where a value is required", E.Loc,
               "6.3.2.2");
  return valueTypeOf(E);
}

ExpectedVoid Checker::check(AilExpr &E) {
  switch (E.Kind) {
  case AilExprKind::Var: {
    auto It = ObjTypes.find(E.Sym.Id);
    if (It == ObjTypes.end())
      return err(fmt("object '{0}' has no visible declaration",
                     Prog.Syms.nameOf(E.Sym)),
                 E.Loc);
    E.Ty = It->second;
    E.Cat = ValueCat::LValue;
    return ExpectedVoid();
  }
  case AilExprKind::FuncRef: {
    auto It = Prog.DeclaredFunctions.find(E.Sym.Id);
    if (It == Prog.DeclaredFunctions.end())
      return err(fmt("function '{0}' has no declaration",
                     Prog.Syms.nameOf(E.Sym)),
                 E.Loc);
    E.Ty = It->second;
    E.Cat = ValueCat::RValue; // a function designator; decays to pointer
    return ExpectedVoid();
  }
  case AilExprKind::IntConst:
    assert(E.Ty.isValid() && "IntConst without a type from desugaring");
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  case AilExprKind::Unary:
    return checkUnary(E);
  case AilExprKind::Binary:
    return checkBinary(E);
  case AilExprKind::Assign:
    return checkAssign(E);
  case AilExprKind::Cond:
    return checkCond(E);
  case AilExprKind::Cast:
    return checkCast(E);
  case AilExprKind::Call:
    return checkCall(E);
  case AilExprKind::Member:
    return checkMember(E);
  case AilExprKind::SizeofExpr: {
    CERB_CHECK(check(*E.Kids[0]));
    CType SubTy = E.Kids[0]->Ty; // no decay: sizeof array is the array size
    if (SubTy.isFunction())
      return err("sizeof applied to a function type", E.Loc, "6.5.3.4p1");
    if (SubTy.isArray() && !SubTy.arraySize())
      return err("sizeof applied to an incomplete array", E.Loc,
                 "6.5.3.4p1");
    // Fold: sizeof never evaluates its operand in this fragment.
    E.Kind = AilExprKind::IntConst;
    E.IntValue = Int128(Env.sizeOf(SubTy));
    E.Ty = CType::sizeTy();
    E.Cat = ValueCat::RValue;
    E.Kids.clear();
    return ExpectedVoid();
  }
  case AilExprKind::SizeofType:
  case AilExprKind::AlignofType: {
    if (E.CastTy.isFunction())
      return err("sizeof/_Alignof applied to a function type", E.Loc,
                 "6.5.3.4p1");
    if (E.CastTy.isArray() && !E.CastTy.arraySize())
      return err("sizeof/_Alignof of an incomplete array type", E.Loc,
                 "6.5.3.4p1");
    Int128 V = E.Kind == AilExprKind::SizeofType
                   ? Int128(Env.sizeOf(E.CastTy))
                   : Int128(Env.alignOf(E.CastTy));
    E.Kind = AilExprKind::IntConst;
    E.IntValue = V;
    E.Ty = CType::sizeTy();
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }
  case AilExprKind::Comma: {
    CERB_CHECK(check(*E.Kids[0]));
    CERB_TRY(RTy, checkValue(*E.Kids[1]));
    E.Ty = RTy;
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }
  }
  return err("bad expression kind", E.Loc);
}

ExpectedVoid Checker::checkUnary(AilExpr &E) {
  AilExpr &Sub = *E.Kids[0];
  switch (E.UOp) {
  case UnaryOp::Plus:
  case UnaryOp::Minus:
  case UnaryOp::BitNot: {
    CERB_TRY(Ty, checkValue(Sub));
    if (!Ty.isInteger())
      return err(fmt("operand of unary '{0}' must have integer type",
                     unaryOpSpelling(E.UOp)),
                 E.Loc, "6.5.3.3p1");
    E.Ty = typing::promote(Env, Ty);
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }
  case UnaryOp::LogNot: {
    CERB_TRY(Ty, checkValue(Sub));
    if (!Ty.isScalar())
      return err("operand of '!' must have scalar type", E.Loc, "6.5.3.3p1");
    E.Ty = CType::intTy();
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }
  case UnaryOp::AddrOf: {
    CERB_CHECK(check(Sub));
    if (Sub.Ty.isFunction()) { // &f
      E.Ty = CType::makePointer(Sub.Ty);
      E.Cat = ValueCat::RValue;
      return ExpectedVoid();
    }
    if (Sub.Cat != ValueCat::LValue)
      return err("cannot take the address of an rvalue", E.Loc, "6.5.3.2p1");
    E.Ty = CType::makePointer(Sub.Ty);
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }
  case UnaryOp::Deref: {
    CERB_TRY(Ty, checkValue(Sub));
    if (!Ty.isPointer())
      return err("cannot dereference a non-pointer", E.Loc, "6.5.3.2p2");
    CType Pointee = Ty.pointee();
    if (Pointee.isVoid())
      return err("dereferencing a void pointer", E.Loc, "6.5.3.2p2");
    E.Ty = Pointee;
    E.Cat = Pointee.isFunction() ? ValueCat::RValue : ValueCat::LValue;
    return ExpectedVoid();
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    CERB_CHECK(check(Sub));
    if (Sub.Cat != ValueCat::LValue)
      return err("operand of ++/-- must be an lvalue", E.Loc, "6.5.2.4p1");
    CType Ty = Sub.Ty;
    if (Ty.isPointer()) {
      if (!Ty.pointee().isObject())
        return err("++/-- on pointer to function", E.Loc, "6.5.6p2");
      E.ArithElemTy = Ty.pointee();
    } else if (!Ty.isInteger()) {
      return err("operand of ++/-- must have scalar type", E.Loc,
                 "6.5.2.4p1");
    }
    E.Ty = Ty;
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }
  }
  return err("bad unary operator", E.Loc);
}

ExpectedVoid Checker::checkBinary(AilExpr &E) {
  AilExpr &L = *E.Kids[0];
  AilExpr &R = *E.Kids[1];

  // Short-circuit logicals first: operands need only be scalar (6.5.13/14).
  if (E.BOp == BinaryOp::LogAnd || E.BOp == BinaryOp::LogOr) {
    CERB_TRY(LT, checkValue(L));
    CERB_TRY(RT, checkValue(R));
    if (!LT.isScalar() || !RT.isScalar())
      return err("operands of '&&'/'||' must have scalar type", E.Loc,
                 "6.5.13p2");
    E.Ty = CType::intTy();
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }

  CERB_TRY(LT, checkValue(L));
  CERB_TRY(RT, checkValue(R));
  E.Cat = ValueCat::RValue;

  switch (E.BOp) {
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
  case BinaryOp::BitAnd:
  case BinaryOp::BitXor:
  case BinaryOp::BitOr: {
    if (!LT.isInteger() || !RT.isInteger())
      return err(fmt("operands of '{0}' must have integer type",
                     binaryOpSpelling(E.BOp)),
                 E.Loc, "6.5.5p2");
    E.Ty = typing::usualArithmetic(Env, LT, RT);
    return ExpectedVoid();
  }
  case BinaryOp::Shl:
  case BinaryOp::Shr: {
    if (!LT.isInteger() || !RT.isInteger())
      return err("operands of shift must have integer type", E.Loc,
                 "6.5.7p2");
    // 6.5.7p3: promotions performed on each operand separately.
    E.Ty = typing::promote(Env, LT);
    E.RhsConvTy = typing::promote(Env, RT);
    return ExpectedVoid();
  }
  case BinaryOp::Add: {
    if (LT.isInteger() && RT.isInteger()) {
      E.Ty = typing::usualArithmetic(Env, LT, RT);
      return ExpectedVoid();
    }
    // ptr + int / int + ptr (6.5.6p2). Canonicalise pointer to the left.
    if (LT.isInteger() && RT.isPointer()) {
      std::swap(E.Kids[0], E.Kids[1]);
      std::swap(LT, RT);
    }
    if (LT.isPointer() && RT.isInteger()) {
      if (!LT.pointee().isObject())
        return err("arithmetic on pointer to function", E.Loc, "6.5.6p2");
      E.Ty = LT;
      E.ArithElemTy = LT.pointee();
      return ExpectedVoid();
    }
    return err("invalid operands to '+'", E.Loc, "6.5.6p2");
  }
  case BinaryOp::Sub: {
    if (LT.isInteger() && RT.isInteger()) {
      E.Ty = typing::usualArithmetic(Env, LT, RT);
      return ExpectedVoid();
    }
    if (LT.isPointer() && RT.isInteger()) {
      if (!LT.pointee().isObject())
        return err("arithmetic on pointer to function", E.Loc, "6.5.6p3");
      E.Ty = LT;
      E.ArithElemTy = LT.pointee();
      return ExpectedVoid();
    }
    if (LT.isPointer() && RT.isPointer()) {
      if (!(LT.pointee() == RT.pointee()))
        return err("subtraction of incompatible pointer types", E.Loc,
                   "6.5.6p3");
      E.Ty = CType::ptrdiffTy();
      E.ArithElemTy = LT.pointee();
      return ExpectedVoid();
    }
    return err("invalid operands to '-'", E.Loc, "6.5.6p3");
  }
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge: {
    if (LT.isInteger() && RT.isInteger()) {
      E.CommonTy = typing::usualArithmetic(Env, LT, RT);
      E.Ty = CType::intTy();
      return ExpectedVoid();
    }
    if (LT.isPointer() && RT.isPointer()) {
      // 6.5.8p2 requires pointers to compatible object types. Both the
      // strictness and the de facto latitude (Q25) are decided by the
      // memory object model at run time, not here.
      E.Ty = CType::intTy();
      return ExpectedVoid();
    }
    return err("invalid operands to relational operator", E.Loc, "6.5.8p2");
  }
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    if (LT.isInteger() && RT.isInteger()) {
      E.CommonTy = typing::usualArithmetic(Env, LT, RT);
      E.Ty = CType::intTy();
      return ExpectedVoid();
    }
    bool LNull = isNullPointerConstant(L), RNull = isNullPointerConstant(R);
    if (LT.isPointer() && (RT.isPointer() || RNull)) {
      if (RT.isPointer() && !RNull && !LNull &&
          !pointersCompatible(LT, RT))
        return err("comparison of incompatible pointer types", E.Loc,
                   "6.5.9p2");
      E.Ty = CType::intTy();
      return ExpectedVoid();
    }
    if (RT.isPointer() && LNull) {
      E.Ty = CType::intTy();
      return ExpectedVoid();
    }
    return err("invalid operands to equality operator", E.Loc, "6.5.9p2");
  }
  default:
    return err("bad binary operator", E.Loc);
  }
}

ExpectedVoid Checker::checkAssignable(const CType &To, const CType &From,
                                      const AilExpr &Rhs, SourceLoc Loc) {
  if (To.isInteger() && From.isInteger())
    return ExpectedVoid();
  if (To.isPointer()) {
    if (From.isPointer()) {
      if (pointersCompatible(To, From))
        return ExpectedVoid();
      return err(fmt("assigning '{0}' to '{1}' from incompatible pointer "
                     "type",
                     From.str(), To.str()),
                 Loc, "6.5.16.1p1");
    }
    if (isNullPointerConstant(Rhs))
      return ExpectedVoid();
    return err("assigning an integer to a pointer without a cast", Loc,
               "6.5.16.1p1");
  }
  if (To.isInteger() && From.isPointer())
    return err("assigning a pointer to an integer without a cast", Loc,
               "6.5.16.1p1");
  if (To.isStructOrUnion() && To == From)
    return ExpectedVoid();
  return err(fmt("incompatible types in assignment ('{0}' from '{1}')",
                 To.str(), From.str()),
             Loc, "6.5.16.1p1");
}

ExpectedVoid Checker::checkAssign(AilExpr &E) {
  AilExpr &L = *E.Kids[0];
  AilExpr &R = *E.Kids[1];
  CERB_CHECK(check(L));
  if (L.Cat != ValueCat::LValue)
    return err("left operand of assignment must be an lvalue", E.Loc,
               "6.5.16p2");
  if (L.Ty.isArray())
    return err("cannot assign to an array", E.Loc, "6.5.16p2");
  CERB_TRY(RT, checkValue(R));

  if (!E.AssignOp) {
    CERB_CHECK(checkAssignable(L.Ty, RT, R, E.Loc));
    E.Ty = L.Ty;
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }

  // Compound assignment (6.5.16.2): lhs op rhs computed, then stored.
  BinaryOp Op = *E.AssignOp;
  if (L.Ty.isPointer()) {
    if (Op != BinaryOp::Add && Op != BinaryOp::Sub)
      return err("invalid compound assignment on a pointer", E.Loc,
                 "6.5.16.2p1");
    if (!RT.isInteger())
      return err("pointer compound assignment needs an integer rhs", E.Loc,
                 "6.5.16.2p1");
    E.ArithElemTy = L.Ty.pointee();
    E.Ty = L.Ty;
    E.Cat = ValueCat::RValue;
    return ExpectedVoid();
  }
  if (!L.Ty.isInteger() || !RT.isInteger())
    return err("invalid operands to compound assignment", E.Loc,
               "6.5.16.2p2");
  if (Op == BinaryOp::Shl || Op == BinaryOp::Shr) {
    E.CommonTy = typing::promote(Env, L.Ty);
    E.RhsConvTy = typing::promote(Env, RT);
  } else {
    E.CommonTy = typing::usualArithmetic(Env, L.Ty, RT);
  }
  E.Ty = L.Ty;
  E.Cat = ValueCat::RValue;
  return ExpectedVoid();
}

ExpectedVoid Checker::checkCond(AilExpr &E) {
  CERB_TRY(CT, checkValue(*E.Kids[0]));
  if (!CT.isScalar())
    return err("condition of '?:' must have scalar type", E.Loc, "6.5.15p2");
  CERB_TRY(TT, checkValue(*E.Kids[1]));
  CERB_TRY(FT, checkValue(*E.Kids[2]));
  E.Cat = ValueCat::RValue;
  if (TT.isInteger() && FT.isInteger()) {
    E.Ty = typing::usualArithmetic(Env, TT, FT);
    E.CommonTy = E.Ty;
    return ExpectedVoid();
  }
  if (TT.isPointer() && FT.isPointer()) {
    if (TT.pointee() == FT.pointee()) {
      E.Ty = TT;
      return ExpectedVoid();
    }
    if (TT.pointee().isVoid() || FT.pointee().isVoid()) {
      E.Ty = CType::voidPtrTy();
      return ExpectedVoid();
    }
    return err("incompatible pointer types in '?:'", E.Loc, "6.5.15p3");
  }
  if (TT.isPointer() && isNullPointerConstant(*E.Kids[2])) {
    E.Ty = TT;
    return ExpectedVoid();
  }
  if (FT.isPointer() && isNullPointerConstant(*E.Kids[1])) {
    E.Ty = FT;
    return ExpectedVoid();
  }
  if (TT.isVoid() && FT.isVoid()) {
    E.Ty = CType::makeVoid();
    return ExpectedVoid();
  }
  if (TT.isStructOrUnion() && TT == FT) {
    E.Ty = TT;
    return ExpectedVoid();
  }
  return err("incompatible operands of '?:'", E.Loc, "6.5.15p3");
}

ExpectedVoid Checker::checkCast(AilExpr &E) {
  CERB_TRY(From, checkValue(*E.Kids[0]));
  const CType &To = E.CastTy;
  E.Cat = ValueCat::RValue;
  E.Ty = To;
  if (To.isVoid())
    return ExpectedVoid();
  if (!To.isScalar())
    return err("cast target must be void or a scalar type", E.Loc,
               "6.5.4p2");
  if (!From.isScalar())
    return err("cast operand must have scalar type", E.Loc, "6.5.4p2");
  return ExpectedVoid();
}

ExpectedVoid Checker::checkCall(AilExpr &E) {
  AilExpr &Callee = *E.Kids[0];
  CERB_TRY(CTy, checkValue(Callee));
  CType FnTy;
  if (CTy.isPointer() && CTy.pointee().isFunction())
    FnTy = CTy.pointee();
  else
    return err("called object is not a function or function pointer", E.Loc,
               "6.5.2.2p1");

  std::vector<CType> Params = FnTy.paramTypes();
  size_t NArgs = E.Kids.size() - 1;
  if (NArgs < Params.size())
    return err(fmt("too few arguments to function call ({0} given, {1} "
                   "expected)",
                   NArgs, Params.size()),
               E.Loc, "6.5.2.2p2");
  if (NArgs > Params.size() && !FnTy.isVariadic())
    return err(fmt("too many arguments to function call ({0} given, {1} "
                   "expected)",
                   NArgs, Params.size()),
               E.Loc, "6.5.2.2p2");
  for (size_t I = 0; I < NArgs; ++I) {
    AilExpr &Arg = *E.Kids[I + 1];
    CERB_TRY(AT, checkValue(Arg));
    if (I < Params.size())
      CERB_CHECK(checkAssignable(Params[I], AT, Arg, Arg.Loc));
    // Variadic extras undergo the default argument promotions at
    // elaboration time (6.5.2.2p6).
  }
  E.Ty = FnTy.returnType();
  E.Cat = ValueCat::RValue;
  return ExpectedVoid();
}

ExpectedVoid Checker::checkMember(AilExpr &E) {
  AilExpr &Sub = *E.Kids[0];
  CERB_CHECK(check(Sub));
  if (!Sub.Ty.isStructOrUnion())
    return err("member access on non-struct/union", E.Loc, "6.5.2.3p1");
  if (Sub.Cat != ValueCat::LValue)
    return err("member access on a non-lvalue aggregate is outside the "
               "fragment",
               E.Loc);
  const TagDef &D = Prog.Tags.get(Sub.Ty.tag());
  if (!D.Complete)
    return err(fmt("member access into incomplete type '{0}'", D.Name),
               E.Loc, "6.5.2.3p1");
  auto Idx = D.memberIndex(E.MemberName);
  if (!Idx)
    return err(fmt("no member named '{0}' in '{1}'", E.MemberName, D.Name),
               E.Loc, "6.5.2.3p1");
  E.Ty = D.Members[*Idx].Ty;
  E.Cat = ValueCat::LValue;
  return ExpectedVoid();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

ExpectedVoid Checker::checkInit(const CType &Ty, AilInit &Init) {
  if (!Init.isList()) {
    CERB_TRY(From, checkValue(*Init.E));
    return checkAssignable(Ty, From, *Init.E, Init.Loc);
  }
  if (Ty.isArray()) {
    uint64_t N = Ty.arraySize() ? *Ty.arraySize() : Init.List.size();
    if (Init.List.size() > N)
      return err("too many initialisers for array", Init.Loc, "6.7.9p2");
    for (AilInit &Sub : Init.List)
      CERB_CHECK(checkInit(Ty.element(), Sub));
    return ExpectedVoid();
  }
  if (Ty.isStruct()) {
    const TagDef &D = Prog.Tags.get(Ty.tag());
    if (Init.List.size() > D.Members.size())
      return err("too many initialisers for struct", Init.Loc, "6.7.9p2");
    for (size_t I = 0; I < Init.List.size(); ++I)
      CERB_CHECK(checkInit(D.Members[I].Ty, Init.List[I]));
    return ExpectedVoid();
  }
  if (Ty.isUnion()) {
    const TagDef &D = Prog.Tags.get(Ty.tag());
    if (Init.List.size() > 1)
      return err("too many initialisers for union", Init.Loc, "6.7.9p2");
    if (!Init.List.empty())
      CERB_CHECK(checkInit(D.Members[0].Ty, Init.List[0]));
    return ExpectedVoid();
  }
  // Scalar in braces: { e } (6.7.9p11).
  if (Init.List.size() == 1)
    return checkInit(Ty, Init.List[0]);
  return err("invalid braced initialiser for scalar", Init.Loc, "6.7.9p11");
}

ExpectedVoid Checker::checkSwitchBody(AilStmt &S, const CType &CtrlTy,
                                      std::set<Int128> &Seen,
                                      bool &SawDefault) {
  // Walk the statement tree, stopping at nested switches.
  if (S.Kind == AilStmtKind::Switch) {
    // Still need to type-check the nested switch itself.
    return checkStmt(S);
  }
  if (S.Kind == AilStmtKind::Case) {
    Int128 Converted = Env.convert(CtrlTy.intKind(), S.CaseValue);
    if (!Seen.insert(Converted).second)
      return err("duplicate case value", S.Loc, "6.8.4.2p3");
    S.CaseValue = Converted;
    return checkSwitchBody(*S.Body[0], CtrlTy, Seen, SawDefault);
  }
  if (S.Kind == AilStmtKind::Default) {
    if (SawDefault)
      return err("multiple default labels in one switch", S.Loc,
                 "6.8.4.2p3");
    SawDefault = true;
    return checkSwitchBody(*S.Body[0], CtrlTy, Seen, SawDefault);
  }
  // Check expressions/declarations at this level, then recurse into bodies.
  switch (S.Kind) {
  case AilStmtKind::Expr:
    if (S.E)
      CERB_CHECK(check(*S.E));
    return ExpectedVoid();
  case AilStmtKind::Decl:
  case AilStmtKind::Goto:
  case AilStmtKind::Break:
  case AilStmtKind::Continue:
  case AilStmtKind::Return:
    return checkStmt(S);
  case AilStmtKind::If: {
    CERB_TRY(CT, checkValue(*S.E));
    if (!CT.isScalar())
      return err("if condition must have scalar type", S.Loc, "6.8.4.1p1");
    for (auto &Sub : S.Body)
      CERB_CHECK(checkSwitchBody(*Sub, CtrlTy, Seen, SawDefault));
    return ExpectedVoid();
  }
  case AilStmtKind::While: {
    CERB_TRY(CT, checkValue(*S.E));
    if (!CT.isScalar())
      return err("while condition must have scalar type", S.Loc,
                 "6.8.5p2");
    for (auto &Sub : S.Body)
      CERB_CHECK(checkSwitchBody(*Sub, CtrlTy, Seen, SawDefault));
    return ExpectedVoid();
  }
  default:
    for (auto &Sub : S.Body)
      CERB_CHECK(checkSwitchBody(*Sub, CtrlTy, Seen, SawDefault));
    return ExpectedVoid();
  }
}

ExpectedVoid Checker::checkStmt(AilStmt &S) {
  switch (S.Kind) {
  case AilStmtKind::Expr:
    if (S.E)
      CERB_CHECK(check(*S.E));
    return ExpectedVoid();
  case AilStmtKind::Decl: {
    if (!S.DeclTy.isObject() || S.DeclTy.isVoid())
      return err("declared object must have a complete object type", S.Loc,
                 "6.7p7");
    if (S.DeclTy.isArray() && !S.DeclTy.arraySize())
      return err("block-scope array has incomplete type", S.Loc, "6.7p7");
    if (S.DeclTy.isStructOrUnion() &&
        !Prog.Tags.get(S.DeclTy.tag()).Complete)
      return err("declared object has incomplete struct/union type", S.Loc,
                 "6.7p7");
    ObjTypes[S.DeclSym.Id] = S.DeclTy;
    if (S.DeclInit)
      CERB_CHECK(checkInit(S.DeclTy, *S.DeclInit));
    return ExpectedVoid();
  }
  case AilStmtKind::Block:
    for (auto &Sub : S.Body)
      CERB_CHECK(checkStmt(*Sub));
    return ExpectedVoid();
  case AilStmtKind::If: {
    CERB_TRY(CT, checkValue(*S.E));
    if (!CT.isScalar())
      return err("if condition must have scalar type", S.Loc, "6.8.4.1p1");
    for (auto &Sub : S.Body)
      CERB_CHECK(checkStmt(*Sub));
    return ExpectedVoid();
  }
  case AilStmtKind::While: {
    CERB_TRY(CT, checkValue(*S.E));
    if (!CT.isScalar())
      return err("while condition must have scalar type", S.Loc, "6.8.5p2");
    CERB_CHECK(checkStmt(*S.Body[0]));
    return ExpectedVoid();
  }
  case AilStmtKind::Switch: {
    CERB_TRY(CT, checkValue(*S.E));
    if (!CT.isInteger())
      return err("switch controlling expression must have integer type",
                 S.Loc, "6.8.4.2p1");
    CType Promoted = typing::promote(Env, CT);
    S.E->CommonTy = Promoted; // record for the elaboration
    std::set<Int128> Seen;
    bool SawDefault = false;
    return checkSwitchBody(*S.Body[0], Promoted, Seen, SawDefault);
  }
  case AilStmtKind::Case:
  case AilStmtKind::Default:
    // Reached only via a path that bypassed an enclosing switch.
    return err("case/default label outside a switch", S.Loc, "6.8.1p2");
  case AilStmtKind::Label:
    return checkStmt(*S.Body[0]);
  case AilStmtKind::Goto:
  case AilStmtKind::Break:
  case AilStmtKind::Continue:
    return ExpectedVoid();
  case AilStmtKind::Return: {
    if (!S.E) {
      if (!CurrentReturnTy.isVoid())
        return err("non-void function must return a value", S.Loc,
                   "6.8.6.4p1");
      return ExpectedVoid();
    }
    if (CurrentReturnTy.isVoid())
      return err("void function must not return a value", S.Loc,
                 "6.8.6.4p1");
    CERB_TRY(RT, checkValue(*S.E));
    return checkAssignable(CurrentReturnTy, RT, *S.E, S.Loc);
  }
  }
  return err("bad statement kind", S.Loc);
}

ExpectedVoid Checker::run() {
  // Declare all globals first (C file-scope identifiers have file scope
  // from their declaration; our lenient model makes them visible to all
  // functions, matching declaration-before-use in practice).
  for (AilGlobal &G : Prog.Globals) {
    if (G.Ty.isArray() && !G.Ty.arraySize())
      return err(fmt("global array '{0}' has incomplete type",
                     Prog.Syms.nameOf(G.Sym)),
                 G.Loc, "6.9.2p3");
    ObjTypes[G.Sym.Id] = G.Ty;
  }
  for (AilGlobal &G : Prog.Globals)
    if (G.Init)
      CERB_CHECK(checkInit(G.Ty, *G.Init));

  for (AilFunction &F : Prog.Functions) {
    CurrentReturnTy = F.Ty.returnType();
    for (const AilParam &P : F.Params)
      ObjTypes[P.Sym.Id] = P.Ty;
    CERB_CHECK(checkStmt(*F.Body));
  }
  return ExpectedVoid();
}

} // namespace

ExpectedVoid cerb::typing::typeCheck(AilProgram &Prog) {
  Checker C(Prog);
  return C.run();
}
