//===-- typing/TypeCheck.h - Ail type inference/checking --------*- C++ -*-===//
///
/// \file
/// The Ail type checker (§5.1, Fig. 1 "type inference/checking (2800)").
/// Annotates every expression with its C type and value category, applying
/// the integer promotions (6.3.1.1), usual arithmetic conversions (6.3.1.8),
/// array/function decay (6.3.2.1), and the per-operator constraints of 6.5.
/// On failure it identifies the violated ISO clause. It also folds sizeof/
/// _Alignof expressions to constants (our fragment has no VLAs, so sizeof
/// operands are never evaluated).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_TYPING_TYPECHECK_H
#define CERB_TYPING_TYPECHECK_H

#include "ail/Ail.h"
#include "support/Expected.h"

namespace cerb::typing {

/// Type-checks \p Prog in place. After success every AilExpr has Ty and Cat
/// set (Typed Ail, ready for elaboration).
ExpectedVoid typeCheck(ail::AilProgram &Prog);

/// Integer promotion of an integer type (6.3.1.1p2).
ail::CType promote(const ail::ImplEnv &Env, const ail::CType &Ty);

/// Usual arithmetic conversions for two integer types (6.3.1.8).
ail::CType usualArithmetic(const ail::ImplEnv &Env, const ail::CType &A,
                           const ail::CType &B);

/// The conversion rank of an integer kind (6.3.1.1p1).
int rankOf(ail::IntKind K);

} // namespace cerb::typing

#endif // CERB_TYPING_TYPECHECK_H
