//===-- defacto/Questions.cpp ---------------------------------------------===//

#include "defacto/Questions.h"

#include "support/Format.h"

#include <map>

using namespace cerb;
using namespace cerb::defacto;

namespace {

/// Per-category data: name, count, and how many of its questions carry
/// each classification flag (flags assigned to the first k questions of
/// the category; totals reproduce the paper's 38 / 28 / 26).
struct CatSpec {
  const char *Name;
  unsigned Count;
  unsigned Iso, Defacto, Div;
};

const CatSpec Specs[] = {
    {"Pointer provenance basics", 3, 2, 1, 1},
    {"Pointer provenance via integer types", 5, 3, 2, 2},
    {"Pointers involving multiple provenances", 5, 3, 2, 2},
    {"Pointer provenance via pointer representation copying", 4, 2, 2, 1},
    {"Pointer provenance and union type punning", 2, 1, 1, 1},
    {"Pointer provenance via IO", 1, 1, 0, 0},
    {"Stability of pointer values", 1, 1, 1, 0},
    {"Pointer equality comparison (with == or !=)", 3, 2, 1, 1},
    {"Pointer relational comparison (with <, >, <=, or >=)", 3, 0, 1, 3},
    {"Null pointers", 3, 1, 1, 0},
    {"Pointer arithmetic", 6, 3, 2, 3},
    {"Casts between pointer types", 2, 1, 1, 0},
    {"Accesses to related structure and union types", 4, 3, 1, 1},
    {"Pointer lifetime end", 2, 1, 1, 1},
    {"Invalid accesses", 2, 1, 0, 0},
    {"Trap representations", 2, 2, 1, 0},
    {"Unspecified values", 11, 4, 4, 3},
    {"Structure and union padding", 13, 4, 4, 3},
    {"Basic effective types", 2, 1, 1, 1},
    {"Effective types and character arrays", 1, 0, 0, 1},
    {"Effective types and subobjects", 6, 2, 1, 2},
    {"Other questions", 5, 0, 0, 0},
};

/// Paper-cited titles at their reconstructed ids.
const std::map<unsigned, const char *> CitedTitles = {
    {2, "Can equality testing on pointers be affected by pointer "
        "provenance information?"},
    {5, "Must provenance information be tracked via casts to integer "
        "types and integer arithmetic?"},
    {9, "Can one make a usable offset between two separately allocated "
        "objects by inter-object integer or pointer subtraction?"},
    {14, "Can one make a usable copy of a pointer by copying its "
         "representation bytes with memcpy?"},
    {15, "Can one make a usable copy of a pointer by copying its "
         "representation bytes in user code, byte by byte?"},
    {16, "Can one make a usable copy of a pointer via indirect dataflow "
         "through integer arithmetic on its representation?"},
    {17, "Can one make a usable copy of a pointer via indirect control "
         "flow (branching on each bit)?"},
    {25, "Can one do relational comparison (with <, >, <=, or >=) of two "
         "pointers to separately allocated objects?"},
    {31, "Can one transiently construct out-of-bounds pointer values?"},
    {49, "Is passing an unspecified value to a library function "
         "meaningful?"},
    {50, "Is making a flow-control choice on an unspecified value "
         "meaningful?"},
    {52, "Do unspecified values propagate through integer arithmetic?"},
    {75, "Can an unsigned character array with static or automatic "
         "storage duration be used (in the same way as a malloc'd region) "
         "to hold values of other types?"},
};

std::vector<Category> buildCategories() {
  std::vector<Category> Out;
  for (const CatSpec &S : Specs)
    Out.push_back(Category{S.Name, S.Count});
  return Out;
}

std::vector<Question> buildQuestions() {
  std::vector<Question> Out;
  unsigned Id = 1;
  for (const CatSpec &S : Specs) {
    for (unsigned I = 0; I < S.Count; ++I, ++Id) {
      Question Q;
      Q.Id = fmt("Q{0}", Id);
      Q.Category = S.Name;
      auto Cited = CitedTitles.find(Id);
      Q.Title = Cited != CitedTitles.end()
                    ? Cited->second
                    : fmt("{0} — design-space question {1} of {2}", S.Name,
                          I + 1, S.Count);
      Q.IsoUnclear = I < S.Iso;
      Q.DefactoUnclear = I < S.Defacto;
      Q.Diverges = I < S.Div;
      Out.push_back(std::move(Q));
    }
  }
  return Out;
}

} // namespace

const std::vector<Category> &cerb::defacto::categories() {
  static const std::vector<Category> Cats = buildCategories();
  return Cats;
}

const std::vector<Question> &cerb::defacto::questions() {
  static const std::vector<Question> Qs = buildQuestions();
  return Qs;
}

const Question *cerb::defacto::findQuestion(const std::string &Id) {
  for (const Question &Q : questions())
    if (Q.Id == Id)
      return &Q;
  return nullptr;
}

ClassificationTotals cerb::defacto::classificationTotals() {
  ClassificationTotals T{0, 85, 0, 0, 0};
  for (const Question &Q : questions()) {
    ++T.Questions;
    T.IsoUnclear += Q.IsoUnclear;
    T.DefactoUnclear += Q.DefactoUnclear;
    T.Diverge += Q.Diverges;
  }
  return T;
}
