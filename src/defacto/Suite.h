//===-- defacto/Suite.h - The de facto semantic test suite ------*- C++ -*-===//
///
/// \file
/// Hand-written semantic test cases in the style of the paper's 196-test
/// suite (§2: "supported by 196 hand-written semantic test cases"), keyed
/// by design-space question, with expected behaviour per memory object
/// model instantiation. Run exhaustively, each test either has one defined
/// outcome, a specific undefined behaviour, or a set of allowed outcomes
/// (where the model makes a nondeterministic choice, e.g. Q2).
///
//===----------------------------------------------------------------------===//
#ifndef CERB_DEFACTO_SUITE_H
#define CERB_DEFACTO_SUITE_H

#include "exec/Pipeline.h"
#include "mem/UB.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cerb::defacto {

/// What a test is allowed to do under one model.
struct Expect {
  enum Kind {
    Defined,    ///< exits 0 with exactly Stdout
    UBAny,      ///< some undefined behaviour
    UBOf,       ///< the specific undefined behaviour UBKind
    AssertFail, ///< a __cerb_assert failure (CHERI §4 "defensively written
                ///< code will fail")
    AnyOf,      ///< any of Alternatives (model latitude)
  } K = Defined;
  std::string Stdout;
  mem::UBKind UB = mem::UBKind::ExceptionalCondition;
  std::vector<Expect> Alternatives;

  static Expect defined(std::string Out = "") {
    Expect E;
    E.K = Defined;
    E.Stdout = std::move(Out);
    return E;
  }
  static Expect ubAny() {
    Expect E;
    E.K = UBAny;
    return E;
  }
  static Expect ub(mem::UBKind K) {
    Expect E;
    E.K = UBOf;
    E.UB = K;
    return E;
  }
  static Expect assertFail() {
    Expect E;
    E.K = AssertFail;
    return E;
  }
  static Expect anyOf(std::vector<Expect> Alts) {
    Expect E;
    E.K = AnyOf;
    E.Alternatives = std::move(Alts);
    return E;
  }

  /// Does one outcome satisfy this expectation?
  bool matches(const exec::Outcome &O) const;
  std::string str() const;
};

struct TestCase {
  std::string Name;
  std::string QuestionId; ///< "Q25" etc.
  std::string Description;
  std::string Source;
  /// Expected behaviour keyed by MemoryPolicy::Name
  /// ("concrete"/"defacto"/"strict-iso"/"cheri"); a missing key means the
  /// test has no commitment under that model.
  std::map<std::string, Expect> Expected;
};

/// The whole suite.
const std::vector<TestCase> &testSuite();

namespace detail {
/// The second half of the corpus (SuitePart2.cpp); called by testSuite().
void addSuitePart2(std::vector<TestCase> &S);
} // namespace detail

/// Finds a test by name; nullptr if unknown.
const TestCase *findTest(const std::string &Name);

/// One test's verdict under one model.
struct TestResult {
  const TestCase *Test = nullptr;
  std::string ModelName;
  bool CompileOk = false;
  std::string CompileError;
  exec::ExhaustiveResult Outcomes;
  bool HasExpectation = false;
  bool Pass = false; ///< all distinct outcomes satisfy the expectation
};

/// Runs every test under \p Policy (exhaustively, bounded).
std::vector<TestResult> runSuite(const mem::MemoryPolicy &Policy,
                                 uint64_t MaxPaths = 512);

/// Runs a single test under \p Policy.
TestResult runTest(const TestCase &Test, const mem::MemoryPolicy &Policy,
                   uint64_t MaxPaths = 512);

} // namespace cerb::defacto

#endif // CERB_DEFACTO_SUITE_H
