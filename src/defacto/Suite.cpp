//===-- defacto/Suite.cpp - The semantic test corpus ----------------------===//

#include "defacto/Suite.h"

#include "defacto/Questions.h"
#include "support/Format.h"

using namespace cerb;
using namespace cerb::defacto;

//===----------------------------------------------------------------------===//
// Expectations
//===----------------------------------------------------------------------===//

bool Expect::matches(const exec::Outcome &O) const {
  switch (K) {
  case Defined:
    return O.Kind == exec::OutcomeKind::Exit && O.ExitCode == 0 &&
           O.Stdout == Stdout;
  case UBAny:
    return O.Kind == exec::OutcomeKind::Undef;
  case UBOf:
    return O.Kind == exec::OutcomeKind::Undef && O.UB.Kind == UB;
  case AssertFail:
    return O.Kind == exec::OutcomeKind::AssertFail;
  case AnyOf:
    for (const Expect &A : Alternatives)
      if (A.matches(O))
        return true;
    return false;
  }
  return false;
}

std::string Expect::str() const {
  switch (K) {
  case Defined:
    return fmt("defined(\"{0}\")", Stdout);
  case UBAny:
    return "some-UB";
  case UBOf:
    return fmt("UB[{0}]", mem::ubName(UB));
  case AssertFail:
    return "assert-fail";
  case AnyOf: {
    std::vector<std::string> Parts;
    for (const Expect &A : Alternatives)
      Parts.push_back(A.str());
    return "any-of{" + join(Parts, ", ") + "}";
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// The corpus
//===----------------------------------------------------------------------===//

namespace {

using mem::UBKind;

Expect D(std::string Out = "") { return Expect::defined(std::move(Out)); }
Expect U(UBKind K) { return Expect::ub(K); }

std::vector<TestCase> buildSuite() {
  std::vector<TestCase> S;
  auto Add = [&](std::string Name, std::string Q, std::string Desc,
                 std::string Src, std::map<std::string, Expect> Exp) {
    S.push_back(TestCase{std::move(Name), std::move(Q), std::move(Desc),
                         std::move(Src), std::move(Exp)});
  };

  //===--- Pointer provenance basics ------------------------------------===//

  Add("provenance_basic_global_yx", "Q1",
      "The DR260 example (§2.1): a one-past pointer with x's provenance "
      "aliases y's address; writing through it is UB under provenance "
      "semantics, visible mutation under the concrete one.",
      R"C(
#include <stdio.h>
#include <string.h>
int y=2, x=1;
int main() {
  int *p = &x + 1;
  int *q = &y;
  if (memcmp(&p, &q, sizeof(p)) == 0) {
    *p = 11;
    printf("x=%d y=%d *p=%d *q=%d\n",x,y,*p,*q);
  }
  return 0;
}
)C",
      {{"concrete", D("x=1 y=11 *p=11 *q=11\n")},
       {"defacto", U(UBKind::AccessOutOfBounds)},
       {"strict-iso", U(UBKind::AccessOutOfBounds)},
       {"cheri", U(UBKind::AccessOutOfBounds)}});

  Add("provenance_same_object_roundtrip", "Q5",
      "Casting a pointer to uintptr_t and back preserves its provenance "
      "(the documented GCC rule).",
      R"C(
#include <stdint.h>
#include <stdio.h>
int x = 42;
int main(void) {
  uintptr_t i = (uintptr_t)&x;
  int *q = (int *)i;
  *q = 43;
  printf("x=%d\n", x);
  return 0;
}
)C",
      {{"concrete", D("x=43\n")},
       {"defacto", D("x=43\n")},
       {"strict-iso", D("x=43\n")},
       {"cheri", D("x=43\n")}});

  Add("provenance_int_arith_xor", "Q5",
      "Provenance is tracked through integer arithmetic: the XOR trick "
      "(storing information in a pointer-sized integer) works.",
      R"C(
#include <stdint.h>
#include <stdio.h>
int x = 1;
int main(void) {
  uintptr_t i = (uintptr_t)&x;
  i = i ^ 12345u;
  i = i ^ 12345u;
  int *q = (int *)i;
  *q = 2;
  printf("x=%d\n", x);
  return 0;
}
)C",
      {{"concrete", D("x=2\n")},
       {"defacto", D("x=2\n")},
       {"strict-iso", D("x=2\n")},
       {"cheri", D("x=2\n")}});

  //===--- Multiple provenances (Q9: per-CPU-variable idiom) ------------===//

  Add("percpu_offset_idiom", "Q9",
      "Inter-object subtraction yields a pure integer under the candidate "
      "de facto model, so re-adding it cannot move between objects (the "
      "Linux/FreeBSD per-CPU idiom is rejected, as §2.1 chooses).",
      R"C(
#include <stdint.h>
int x = 1, y = 2;
int main(void) {
  uintptr_t off = (uintptr_t)&x - (uintptr_t)&y;
  int *q = (int *)((uintptr_t)&y + off); /* numerically &x */
  *q = 7;
  return x == 7 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", U(UBKind::AccessOutOfBounds)},
       {"strict-iso", U(UBKind::AccessOutOfBounds)},
       {"cheri", U(UBKind::AccessOutOfBounds)}});

  //===--- Pointer representation copying (Q14-Q17) ---------------------===//

  Add("ptr_copy_memcpy", "Q14",
      "memcpy of a pointer's representation yields a usable pointer "
      "(§2.3: the bytes carry the provenance).",
      R"C(
#include <stdio.h>
#include <string.h>
int x = 42;
int main(void) {
  int *p = &x;
  int *q;
  memcpy(&q, &p, sizeof p);
  *q = 43;
  printf("x=%d\n", x);
  return 0;
}
)C",
      {{"concrete", D("x=43\n")},
       {"defacto", D("x=43\n")},
       {"strict-iso", D("x=43\n")},
       {"cheri", D("x=43\n")}});

  Add("ptr_copy_bytewise", "Q15",
      "User-code byte-by-byte copying of a pointer works under the de "
      "facto model; under CHERI the byte copy strips the capability tag "
      "(the hardware behaviour).",
      R"C(
#include <stdio.h>
int x = 42;
int main(void) {
  int *p = &x;
  int *q;
  unsigned char *src = (unsigned char *)&p;
  unsigned char *dst = (unsigned char *)&q;
  int i;
  for (i = 0; i < (int)sizeof p; i++)
    dst[i] = src[i];
  *q = 43;
  printf("x=%d\n", x);
  return 0;
}
)C",
      {{"concrete", D("x=43\n")},
       {"defacto", D("x=43\n")},
       {"strict-iso", D("x=43\n")},
       {"cheri", U(UBKind::CapabilityTagViolation)}});

  Add("ptr_copy_controlflow", "Q17",
      "Copying a pointer via indirect *control flow* (branching on each "
      "bit and or-ing constants) does not carry provenance (§2.3: 'It "
      "will not permit copying via indirect control flow').",
      R"C(
#include <stdint.h>
int x = 42;
int main(void) {
  uintptr_t i = (uintptr_t)&x;
  uintptr_t j = 0;
  int k;
  for (k = 0; k < 64; k++)
    if (i & ((uintptr_t)1 << k))
      j = j | ((uintptr_t)1 << k); /* constant bit: pure provenance */
  int *q = (int *)j;
  *q = 43;
  return 0;
}
)C",
      {{"concrete", D("")},
       {"defacto", U(UBKind::AccessNoProvenance)},
       {"strict-iso", U(UBKind::AccessNoProvenance)},
       {"cheri", U(UBKind::CapabilityTagViolation)}});

  //===--- Union type punning (Q18-Q19) ---------------------------------===//

  Add("union_pun_int_bytes", "Q18",
      "Reading the bytes of an int through a union member is defined "
      "under every instantiation (union members are legitimate views).",
      R"C(
#include <stdio.h>
union u { int i; unsigned char b[4]; };
int main(void) {
  union u v;
  v.i = 0x01020304;
  printf("%d %d %d %d\n", v.b[0], v.b[1], v.b[2], v.b[3]);
  return 0;
}
)C",
      {{"concrete", D("4 3 2 1\n")},
       {"defacto", D("4 3 2 1\n")},
       {"strict-iso", D("4 3 2 1\n")},
       {"cheri", D("4 3 2 1\n")}});

  Add("union_pun_short_view", "Q19",
      "Type punning int <-> short[2] through a union.",
      R"C(
#include <stdio.h>
union u { int i; short s[2]; };
int main(void) {
  union u v;
  v.i = 0x00020001;
  printf("%d %d\n", v.s[0], v.s[1]);
  return 0;
}
)C",
      {{"concrete", D("1 2\n")},
       {"defacto", D("1 2\n")},
       {"strict-iso", D("1 2\n")},
       {"cheri", D("1 2\n")}});

  //===--- Stability / equality (Q21, Q2, Q22) --------------------------===//

  Add("ptr_value_stable", "Q21",
      "A pointer value read back from memory compares equal to itself.",
      R"C(
int x;
int main(void) {
  int *p = &x;
  int *q = p;
  return p == q ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  Add("ptr_eq_one_past_adjacent", "Q2",
      "&x+1 == &y with adjacent allocations: ISO permits the comparison "
      "but the result may consult provenance (Q2) — modelled as a "
      "nondeterministic choice; CHERI exact-equality compares metadata "
      "and answers 0.",
      R"C(
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
  printf("%d\n", &x + 1 == &y);
  return 0;
}
)C",
      {{"concrete", D("1\n")},
       {"defacto", Expect::anyOf({D("1\n"), D("0\n")})},
       {"strict-iso", Expect::anyOf({D("1\n"), D("0\n")})},
       {"cheri", D("0\n")}});

  //===--- Relational comparison (Q25) ----------------------------------===//

  Add("ptr_rel_distinct_objects", "Q25",
      "Relational comparison of pointers to separately allocated objects: "
      "ISO-strict UB (6.5.8p5), but the de facto answer compares "
      "addresses (global lock orderings rely on it).",
      R"C(
int x, y;
int main(void) {
  if (&x < &y)
    return 0;
  if (&y < &x)
    return 0;
  return 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", U(UBKind::RelationalDifferentObjects)},
       {"cheri", D("")}});

  Add("lock_ordering_idiom", "Q25",
      "The global lock-ordering idiom from the survey's textual answers.",
      R"C(
#include <stdio.h>
int lock_a, lock_b;
void acquire_ordered(int *a, int *b) {
  if (a < b) printf("a-then-b\n");
  else printf("b-then-a\n");
}
int main(void) {
  acquire_ordered(&lock_a, &lock_b);
  return 0;
}
)C",
      {{"concrete", Expect::anyOf({D("a-then-b\n"), D("b-then-a\n")})},
       {"defacto", Expect::anyOf({D("a-then-b\n"), D("b-then-a\n")})},
       {"strict-iso", U(UBKind::RelationalDifferentObjects)},
       {"cheri", Expect::anyOf({D("a-then-b\n"), D("b-then-a\n")})}});

  //===--- Null pointers --------------------------------------------------===//

  Add("null_deref", "Q28", "Dereferencing a null pointer.",
      R"C(
int main(void) {
  int *p = 0;
  return *p;
}
)C",
      {{"concrete", U(UBKind::AccessNull)},
       {"defacto", U(UBKind::AccessNull)},
       {"strict-iso", U(UBKind::AccessNull)},
       {"cheri", U(UBKind::AccessNull)}});

  Add("null_compare", "Q29", "Null pointer constants compare sanely.",
      R"C(
int x;
int main(void) {
  int *p = 0;
  int *q = &x;
  if (p != 0) return 1;
  if (q == 0) return 2;
  return 0;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  //===--- Pointer arithmetic (Q31...) ----------------------------------===//

  Add("oob_transient", "Q31",
      "Transiently out-of-bounds pointers brought back in bounds before "
      "use: permitted de facto (7 of 13 codebases in [11] do it), UB at "
      "the arithmetic under strict ISO 6.5.6p8.",
      R"C(
#include <stdio.h>
int main(void) {
  int a[4] = {10, 11, 12, 13};
  int *p = a + 6; /* out of bounds */
  p = p - 4;      /* back in: &a[2] */
  printf("%d\n", *p);
  return 0;
}
)C",
      {{"concrete", D("12\n")},
       {"defacto", D("12\n")},
       {"strict-iso", U(UBKind::OutOfBoundsArithmetic)},
       {"cheri", D("12\n")}});

  Add("one_past_ok", "Q31",
      "One-past-the-end construction and re-entry is ISO-blessed.",
      R"C(
int main(void) {
  int a[4] = {0, 1, 2, 3};
  int *end = a + 4;
  int *last = end - 1;
  return *last == 3 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  Add("one_past_deref", "Q32", "Dereferencing one-past-the-end.",
      R"C(
int main(void) {
  int a[2] = {1, 2};
  return *(a + 2);
}
)C",
      {{"concrete", Expect::ubAny()},
       {"defacto", U(UBKind::AccessOutOfBounds)},
       {"strict-iso", U(UBKind::AccessOutOfBounds)},
       {"cheri", U(UBKind::AccessOutOfBounds)}});

  Add("ptrdiff_same_array", "Q33", "Pointer subtraction within an array.",
      R"C(
#include <stdio.h>
int main(void) {
  int a[8];
  printf("%d\n", (int)(&a[7] - &a[2]));
  return 0;
}
)C",
      {{"concrete", D("5\n")},
       {"defacto", D("5\n")},
       {"strict-iso", D("5\n")},
       {"cheri", D("5\n")}});

  Add("ptrdiff_cross_object", "Q34",
      "Pointer subtraction across objects (6.5.6p9; the de facto model "
      "also forbids it, Q9).",
      R"C(
int x, y;
int main(void) {
  int d = (int)(&x - &y);
  return (d == 1 || d == -1) ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", U(UBKind::PtrDiffDifferentObjects)},
       {"strict-iso", U(UBKind::PtrDiffDifferentObjects)},
       {"cheri", U(UBKind::PtrDiffDifferentObjects)}});

  //===--- Casts / related aggregates ------------------------------------===//

  Add("char_walk_int", "Q37",
      "Inspecting an int's representation bytes via char* (always "
      "permitted, 6.5p7 last bullet).",
      R"C(
#include <stdio.h>
int main(void) {
  int x = 0x00010203;
  unsigned char *p = (unsigned char *)&x;
  printf("%d%d%d%d\n", p[0], p[1], p[2], p[3]);
  return 0;
}
)C",
      {{"concrete", D("3210\n")},
       {"defacto", D("3210\n")},
       {"strict-iso", D("3210\n")},
       {"cheri", D("3210\n")}});

  Add("struct_first_member", "Q39",
      "A pointer to a struct, cast to the type of its first member, "
      "designates that member (6.7.2.1p15).",
      R"C(
#include <stdio.h>
struct s { int x; int y; };
int main(void) {
  struct s v;
  v.x = 5; v.y = 6;
  int *p = (int *)&v;
  printf("%d\n", *p);
  return 0;
}
)C",
      {{"concrete", D("5\n")},
       {"defacto", D("5\n")},
       {"strict-iso", D("5\n")},
       {"cheri", D("5\n")}});

  //===--- Lifetime end (Q43-44 bucket) ----------------------------------===//

  Add("use_after_free", "Q43", "Access through a freed malloc region.",
      R"C(
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 1;
  free(p);
  return *p;
}
)C",
      {{"concrete", U(UBKind::AccessDeadObject)},
       {"defacto", U(UBKind::AccessDeadObject)},
       {"strict-iso", U(UBKind::AccessDeadObject)},
       {"cheri", U(UBKind::AccessDeadObject)}});

  Add("dangling_stack_pointer", "Q44",
      "Access through a pointer to a dead automatic object (6.2.4p2).",
      R"C(
int *leak(void) {
  int local = 9;
  int *p = &local;
  return p;
}
int main(void) {
  int *p = leak();
  return *p;
}
)C",
      {{"concrete", U(UBKind::AccessDeadObject)},
       {"defacto", U(UBKind::AccessDeadObject)},
       {"strict-iso", U(UBKind::AccessDeadObject)},
       {"cheri", U(UBKind::AccessDeadObject)}});

  Add("block_scope_lifetime", "Q44",
      "An automatic object dies at the end of its block (§5.7).",
      R"C(
int main(void) {
  int *p;
  {
    int x = 3;
    p = &x;
  }
  return *p;
}
)C",
      {{"concrete", U(UBKind::AccessDeadObject)},
       {"defacto", U(UBKind::AccessDeadObject)},
       {"strict-iso", U(UBKind::AccessDeadObject)},
       {"cheri", U(UBKind::AccessDeadObject)}});

  //===--- Unspecified values (Q49-Q59) ----------------------------------===//

  Add("uninit_signed_arith", "Q52",
      "Arithmetic on an uninitialised signed int: daemonic UB (the Fig. 3 "
      "treatment); a tis-like strict model flags the read itself.",
      R"C(
int main(void) {
  int x;
  int y = x + 1;
  return 0;
}
)C",
      {{"concrete", U(UBKind::ExceptionalCondition)},
       {"defacto", U(UBKind::ExceptionalCondition)},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", U(UBKind::ExceptionalCondition)}});

  Add("uninit_unsigned_arith", "Q52",
      "Arithmetic on an uninitialised *unsigned* value propagates an "
      "unspecified value (Fig. 3: unsigned results stay Unspecified).",
      R"C(
int main(void) {
  unsigned x;
  unsigned y = x + 1u;
  return 0;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", D("")}});

  Add("uninit_copy", "Q51",
      "Copying an uninitialised int (the only real use case the survey "
      "found, §2.4): fine de facto, flagged by strict tools.",
      R"C(
int main(void) {
  int x;
  int y;
  y = x;
  return 0;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", D("")}});

  Add("uninit_into_printf", "Q49",
      "Passing an unspecified value to a library function (§3: no "
      "sanitiser flagged this).",
      R"C(
#include <stdio.h>
int main(void) {
  int x;
  printf("%d\n", x);
  return 0;
}
)C",
      {{"concrete", D("0\n")},
       {"defacto", D("0\n")},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", D("0\n")}});

  Add("uninit_branch", "Q50",
      "A flow-control choice on an unspecified value (§3: MSan does "
      "detect this one).",
      R"C(
int main(void) {
  int x;
  if (x)
    return 0;
  return 0;
}
)C",
      {{"concrete", U(UBKind::IndeterminateValueUse)},
       {"defacto", U(UBKind::IndeterminateValueUse)},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", U(UBKind::IndeterminateValueUse)}});

  Add("uninit_partial_struct_copy", "Q53",
      "Copying a partially initialised struct (the §2.4 use case): "
      "defined everywhere — whole-struct copies move byte images.",
      R"C(
struct s { int a; int b; };
int main(void) {
  struct s v, w;
  v.a = 1;
  w = v;
  return w.a == 1 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  //===--- Unsequenced races ---------------------------------------------===//

  Add("unseq_race_two_stores", "Q54",
      "Two unsequenced stores to the same object (6.5p2).",
      R"C(
int a;
int main(void) {
  int r = (a = 1) + (a = 2);
  return r;
}
)C",
      {{"concrete", U(UBKind::UnsequencedRace)},
       {"defacto", U(UBKind::UnsequencedRace)},
       {"strict-iso", U(UBKind::UnsequencedRace)},
       {"cheri", U(UBKind::UnsequencedRace)}});

  Add("unseq_race_incr", "Q54", "i++ + i++ (the classic).",
      R"C(
int main(void) {
  int i = 0;
  int r = i++ + i++;
  return r;
}
)C",
      {{"concrete", U(UBKind::UnsequencedRace)},
       {"defacto", U(UBKind::UnsequencedRace)},
       {"strict-iso", U(UBKind::UnsequencedRace)},
       {"cheri", U(UBKind::UnsequencedRace)}});

  Add("indet_seq_calls", "Q55",
      "Function bodies are *indeterminately* sequenced (§5.6), not "
      "unsequenced: no race, but both orders are allowed executions.",
      R"C(
#include <stdio.h>
int g;
int setg(int v) { g = v; return 0; }
int main(void) {
  int r = setg(1) + setg(2);
  printf("%d\n", g);
  return r;
}
)C",
      {{"concrete", Expect::anyOf({D("1\n"), D("2\n")})},
       {"defacto", Expect::anyOf({D("1\n"), D("2\n")})},
       {"strict-iso", Expect::anyOf({D("1\n"), D("2\n")})},
       {"cheri", Expect::anyOf({D("1\n"), D("2\n")})}});

  Add("comma_sequences", "Q56", "The comma operator is a sequence point.",
      R"C(
int main(void) {
  int a = 0;
  int r = (a = 1, a + 1);
  return r == 2 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  //===--- Padding (Q60-Q72) ---------------------------------------------===//

  Add("padding_member_store_preserves", "Q61",
      "Whether member stores touch padding (§2.5): our candidate model "
      "implements option (4) — they never do.",
      R"C(
#include <string.h>
struct s { char c; int i; };
int main(void) {
  struct s v;
  memset(&v, 170, sizeof v); /* 170 == 0xAA */
  v.c = 1;
  v.i = 2;
  unsigned char *p = (unsigned char *)&v;
  return p[1] == 170 ? 0 : 1; /* padding byte survived */
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  Add("padding_struct_copy_copies", "Q62",
      "Structure copies carry padding bytes (§2.5 option 4: 'structure "
      "copies might copy padding').",
      R"C(
#include <string.h>
struct s { char c; int i; };
int main(void) {
  struct s v, w;
  memset(&v, 90, sizeof v);
  v.c = 1;
  v.i = 2;
  w = v;
  return memcmp(&v, &w, sizeof v) == 0 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  Add("padding_uninit_memcmp", "Q63",
      "memcmp over never-written padding: de facto compares an arbitrary "
      "stable value; a strict model flags the unspecified read.",
      R"C(
#include <string.h>
struct s { char c; int i; };
int main(void) {
  struct s v, w;
  v.c = 1; v.i = 2;
  w.c = 1; w.i = 2;
  return memcmp(&v, &w, sizeof v) == 0 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", D("")}});

  Add("padding_zero_for_marshalling", "Q64",
      "The deterministic-bytewise-compare recipe the survey respondents "
      "want: memset first, then member stores.",
      R"C(
#include <string.h>
struct s { char c; int i; };
int main(void) {
  struct s v, w;
  memset(&v, 0, sizeof v);
  memset(&w, 0, sizeof w);
  v.c = 3; v.i = 4;
  w.c = 3; w.i = 4;
  return memcmp(&v, &w, sizeof v) == 0 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  //===--- Effective types (Q73-Q81) -------------------------------------===//

  Add("effective_char_array_storage", "Q75",
      "An unsigned char array used as storage for other types: 76% of "
      "survey respondents say it works, 65% know real code relying on "
      "it; a strict ISO reading (and a GCC contributor) disallow it.",
      R"C(
long align_pad; /* reverse layout places this first, aligning buf */
unsigned char buf[8];
int main(void) {
  int *p = (int *)buf;
  *p = 42;
  return *p == 42 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", U(UBKind::EffectiveTypeViolation)},
       {"cheri", D("")}});

  Add("effective_malloc_first_store", "Q73",
      "A malloc'd region takes its effective type from the first store "
      "(6.5p6): reading it back at that type is fine even strictly.",
      R"C(
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 5;
  int r = *p;
  free(p);
  return r == 5 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  Add("effective_malloc_retype_read", "Q74",
      "Reading a malloc'd region at a type incompatible with the "
      "effective type established by the store (6.5p7).",
      R"C(
#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 5;
  short *q = (short *)p;
  short r = *q;
  free(p);
  return 0;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", U(UBKind::EffectiveTypeViolation)},
       {"cheri", D("")}});

  Add("tbaa_int_as_short", "Q76",
      "Writing an int object through a short lvalue: the TBAA-relevant "
      "aliasing the de facto (-fno-strict-aliasing) world permits.",
      R"C(
int x = 7;
int main(void) {
  short *p = (short *)&x;
  *p = 5;
  return 0;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", U(UBKind::EffectiveTypeViolation)},
       {"cheri", D("")}});

  //===--- CHERI C (§4) ---------------------------------------------------===//

  Add("cheri_offset_and", "CHERI-1",
      "The §4 finding: (i & 3u) on a uintptr_t carrying a capability "
      "ANDs the *offset* and re-adds the base, so defensively written "
      "alignment assertions fail on CHERI even though the idiom works.",
      R"C(
#include <stdint.h>
long x; /* 8-aligned, so the low bits of its address are zero */
int main(void) {
  uintptr_t i = (uintptr_t)&x;
  __cerb_assert((i & 7u) == 0u);
  return 0;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", Expect::assertFail()}});

  Add("cheri_untagged_int_to_ptr", "CHERI-2",
      "Materialising a pointer from a plain integer: no capability tag "
      "under CHERI; empty provenance under the de facto model.",
      R"C(
int main(void) {
  int *p = (int *)99999;
  return *p;
}
)C",
      {{"concrete", U(UBKind::AccessOutOfBounds)},
       {"defacto", U(UBKind::AccessNoProvenance)},
       {"strict-iso", U(UBKind::AccessNoProvenance)},
       {"cheri", U(UBKind::CapabilityTagViolation)}});

  //===--- Allocation (other) --------------------------------------------===//

  Add("malloc_free_roundtrip", "Q82", "Basic heap discipline.",
      R"C(
#include <stdlib.h>
#include <stdio.h>
int main(void) {
  int i;
  int *p = calloc(4, sizeof(int));
  for (i = 0; i < 4; i++)
    p[i] = p[i] + i;
  printf("%d%d%d%d\n", p[0], p[1], p[2], p[3]);
  free(p);
  return 0;
}
)C",
      {{"concrete", D("0123\n")},
       {"defacto", D("0123\n")},
       {"strict-iso", D("0123\n")},
       {"cheri", D("0123\n")}});

  Add("double_free", "Q83", "free() twice (7.22.3.3).",
      R"C(
#include <stdlib.h>
int main(void) {
  int *p = malloc(4);
  free(p);
  free(p);
  return 0;
}
)C",
      {{"concrete", U(UBKind::DoubleFree)},
       {"defacto", U(UBKind::DoubleFree)},
       {"strict-iso", U(UBKind::DoubleFree)},
       {"cheri", U(UBKind::DoubleFree)}});

  Add("free_nonheap", "Q84", "free() of a non-heap object.",
      R"C(
#include <stdlib.h>
int x;
int main(void) {
  free(&x);
  return 0;
}
)C",
      {{"concrete", U(UBKind::FreeInvalidPointer)},
       {"defacto", U(UBKind::FreeInvalidPointer)},
       {"strict-iso", U(UBKind::FreeInvalidPointer)},
       {"cheri", U(UBKind::FreeInvalidPointer)}});

  //===--- Control-flow / lifetime interaction (§5.8) --------------------===//

  Add("goto_into_block", "Q85",
      "goto into the middle of a block: the jumped-over object's "
      "lifetime starts at the jump (§5.8).",
      R"C(
int main(void) {
  int r = 0;
  goto mid;
  {
    int z;
  mid:
    z = 7;
    r = z;
  }
  return r == 7 ? 0 : 1;
}
)C",
      {{"concrete", D("")},
       {"defacto", D("")},
       {"strict-iso", D("")},
       {"cheri", D("")}});

  Add("switch_duff_fallthrough", "Q86",
      "Case labels inside nested statements (a bounded Duff-style "
      "dispatch) exercise the save/run jump machinery.",
      R"C(
#include <stdio.h>
int main(void) {
  int n = 0, i;
  for (i = 0; i < 4; i++) {
    switch (i) {
    default:
      n = n + 1000;
      break;
    case 0:
      n = n + 1; /* falls through */
    case 1:
      n = n + 10;
      break;
    case 2:
      n = n + 100;
      break;
    }
  }
  printf("n=%d\n", n);
  return 0;
}
)C",
      {{"concrete", D("n=1121\n")},
       {"defacto", D("n=1121\n")},
       {"strict-iso", D("n=1121\n")},
       {"cheri", D("n=1121\n")}});

  defacto::detail::addSuitePart2(S);
  return S;
}

} // namespace

const std::vector<TestCase> &cerb::defacto::testSuite() {
  static const std::vector<TestCase> Suite = buildSuite();
  return Suite;
}

const TestCase *cerb::defacto::findTest(const std::string &Name) {
  for (const TestCase &T : testSuite())
    if (T.Name == Name)
      return &T;
  return nullptr;
}

TestResult cerb::defacto::runTest(const TestCase &Test,
                                  const mem::MemoryPolicy &Policy,
                                  uint64_t MaxPaths) {
  TestResult R;
  R.Test = &Test;
  R.ModelName = Policy.Name;
  auto ProgOr = exec::compile(Test.Source);
  if (!ProgOr) {
    R.CompileError = ProgOr.error().str();
    return R;
  }
  R.CompileOk = true;
  exec::RunOptions Opts;
  Opts.Policy = Policy;
  Opts.MaxPaths = MaxPaths;
  R.Outcomes = exec::runExhaustive(*ProgOr, Opts);

  auto It = Test.Expected.find(Policy.Name);
  if (It == Test.Expected.end())
    return R;
  R.HasExpectation = true;
  R.Pass = !R.Outcomes.Distinct.empty();
  for (const exec::Outcome &O : R.Outcomes.Distinct)
    if (!It->second.matches(O))
      R.Pass = false;
  return R;
}

std::vector<TestResult>
cerb::defacto::runSuite(const mem::MemoryPolicy &Policy, uint64_t MaxPaths) {
  std::vector<TestResult> Out;
  for (const TestCase &T : testSuite())
    Out.push_back(runTest(T, Policy, MaxPaths));
  return Out;
}
