//===-- defacto/Questions.h - The 85-question design space ------*- C++ -*-===//
///
/// \file
/// The registry of memory-object-model design-space questions (§2: "Our
/// full set of 85 questions addresses all the C memory object model
/// semantic issues that we are currently aware of"), organised into the
/// paper's 22 categories, with each question's classification:
///  - is the ISO standard unclear on it? (38 questions)
///  - are the de facto standards unclear? (28)
///  - do ISO and de facto clearly diverge? (26)
///
/// Question ids are reconstructed by numbering the paper's category table
/// sequentially; this reproduces every anchor the paper cites by number
/// (Q25 relational comparison, Q31 out-of-bounds arithmetic, Q49/Q50/Q52
/// unspecified values, Q75 char arrays as storage). Note: the paper's
/// printed per-category counts sum to 86 while its text says 85; we keep
/// the printed counts and surface both totals.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_DEFACTO_QUESTIONS_H
#define CERB_DEFACTO_QUESTIONS_H

#include <string>
#include <vector>

namespace cerb::defacto {

struct Question {
  std::string Id;       ///< "Q25"
  std::string Category; ///< one of the paper's 22 category names
  std::string Title;    ///< paper wording where cited; synthesised otherwise
  bool IsoUnclear = false;
  bool DefactoUnclear = false;
  bool Diverges = false;
};

struct Category {
  std::string Name;
  unsigned Count;
};

/// The 22 categories with their question counts, in paper order.
const std::vector<Category> &categories();

/// All questions, in id order.
const std::vector<Question> &questions();

/// Looks a question up by id ("Q25"); nullptr if unknown.
const Question *findQuestion(const std::string &Id);

/// Totals for the §2 classification bullet list.
struct ClassificationTotals {
  unsigned Questions;      ///< number of questions in the registry
  unsigned PaperStated;    ///< the paper's stated total (85)
  unsigned IsoUnclear;     ///< paper: 38
  unsigned DefactoUnclear; ///< paper: 28
  unsigned Diverge;        ///< paper: 26
};
ClassificationTotals classificationTotals();

} // namespace cerb::defacto

#endif // CERB_DEFACTO_QUESTIONS_H
