//===-- defacto/SuitePart2.cpp - the semantic test corpus, part 2 ---------===//
///
/// \file
/// Additional tests across the design-space categories the paper's table
/// weights most heavily (padding: 13 questions, unspecified values: 11,
/// effective-type subobjects: 6, pointer arithmetic: 6, ...), plus further
/// CHERI (§4) and sequencing (§5.6) probes.
///
//===----------------------------------------------------------------------===//

#include "defacto/Suite.h"

using namespace cerb;
using namespace cerb::defacto;

namespace {

using mem::UBKind;

Expect D(std::string Out = "") { return Expect::defined(std::move(Out)); }
Expect U(UBKind K) { return Expect::ub(K); }

/// Shorthand: the same expectation under every model.
std::map<std::string, Expect> all(Expect E) {
  return {{"concrete", E}, {"defacto", E}, {"strict-iso", E}, {"cheri", E}};
}

} // namespace

void cerb::defacto::detail::addSuitePart2(std::vector<TestCase> &S) {
  auto Add = [&](std::string Name, std::string Q, std::string Desc,
                 std::string Src, std::map<std::string, Expect> Exp) {
    S.push_back(TestCase{std::move(Name), std::move(Q), std::move(Desc),
                         std::move(Src), std::move(Exp)});
  };

  //===--- Pointer provenance basics -------------------------------------===//

  Add("provenance_through_assignment", "Q3",
      "Provenance flows through plain pointer assignment.",
      R"C(
int x = 1;
int main(void) {
  int *p = &x;
  int *q;
  q = p;
  *q = 5;
  return x == 5 ? 0 : 1;
}
)C",
      all(D()));

  //===--- Provenance via integer types ----------------------------------===//

  Add("provenance_int_shift_roundtrip", "Q6",
      "Shifting a pointer-derived integer left and back preserves its "
      "usability (provenance flows through <</>>).",
      R"C(
#include <stdint.h>
int x = 1;
int main(void) {
  uintptr_t i = (uintptr_t)&x;
  i = i << 1;
  i = i >> 1;
  int *q = (int *)i;
  *q = 9;
  return x == 9 ? 0 : 1;
}
)C",
      all(D()));

  Add("provenance_int_stored_in_global", "Q7",
      "A pointer-derived integer stored to memory and reloaded keeps its "
      "provenance (the bytes carry it, §5.9).",
      R"C(
#include <stdint.h>
int x = 1;
unsigned long stash;
int main(void) {
  stash = (uintptr_t)&x;
  int *q = (int *)stash;
  *q = 3;
  return x == 3 ? 0 : 1;
}
)C",
      all(D()));

  Add("provenance_int_truncated_roundtrip", "Q8",
      "Round-tripping a pointer through a 32-bit integer: works de facto "
      "when the address fits; CHERI capabilities do not survive the "
      "narrowing (only capability-sized integers carry them, §4).",
      R"C(
int x = 1;
int main(void) {
  unsigned int i = (unsigned int)&x; /* fits: our addresses are small */
  int *q = (int *)i;
  *q = 4;
  return x == 4 ? 0 : 1;
}
)C",
      {{"concrete", D()},
       {"defacto", D()},
       {"strict-iso", D()},
       {"cheri", U(UBKind::CapabilityTagViolation)}});

  //===--- Multiple provenances ------------------------------------------===//

  Add("multiple_prov_conditional", "Q10",
      "A pointer chosen by a runtime conditional has a single provenance "
      "on each execution.",
      R"C(
int x = 1, y = 2;
int pick;
int main(void) {
  int *p = pick ? &x : &y;
  *p = 7;
  return y == 7 ? 0 : 1;
}
)C",
      all(D()));

  Add("multiple_prov_sum_collapse", "Q11",
      "(&x + &y) - &y is numerically &x, but the sum of two provenances "
      "collapses to empty (at-most-one, Q5), and subtracting &y from the "
      "pure sum re-attaches y's provenance — so the access is out of y's "
      "bounds. CHERI's left-inheritance rule keeps x's capability and the "
      "idiom works (§4).",
      R"C(
#include <stdint.h>
int x = 1, y = 2;
int main(void) {
  uintptr_t i = ((uintptr_t)&x + (uintptr_t)&y) - (uintptr_t)&y;
  int *q = (int *)i;
  *q = 8;
  return x == 8 ? 0 : 1;
}
)C",
      {{"concrete", D()},
       {"defacto", U(UBKind::AccessOutOfBounds)},
       {"strict-iso", U(UBKind::AccessOutOfBounds)},
       {"cheri", D()}});

  //===--- Representation copying ----------------------------------------===//

  Add("ptr_copy_via_long_object", "Q16",
      "Copying a pointer through an unsigned long object (indirect "
      "dataflow) preserves provenance and, being capability-sized, even "
      "the CHERI capability.",
      R"C(
#include <string.h>
int x = 1;
int main(void) {
  int *p = &x;
  unsigned long stash;
  int *q;
  memcpy(&stash, &p, sizeof p);
  memcpy(&q, &stash, sizeof q);
  *q = 6;
  return x == 6 ? 0 : 1;
}
)C",
      all(D()));

  //===--- Equality -------------------------------------------------------===//

  Add("ptr_eq_same_object_views", "Q22",
      "Equality of differently-derived pointers to the same object.",
      R"C(
int a[4];
int main(void) {
  int *p = &a[2];
  int *q = a + 2;
  return p == q ? 0 : 1;
}
)C",
      all(D()));

  Add("ptr_eq_function_pointers", "Q23",
      "Function pointer equality (6.5.9p6).",
      R"C(
int f(void) { return 1; }
int g(void) { return 2; }
int main(void) {
  int (*pf)(void) = f;
  if (pf != f) return 1;
  if (pf == g) return 2;
  return 0;
}
)C",
      all(D()));

  //===--- Relational within one object ----------------------------------===//

  Add("ptr_rel_same_array", "Q26",
      "Relational comparison within one array is blessed even by the "
      "strict model (6.5.8p5 allows same-object comparisons).",
      R"C(
int a[8];
int main(void) {
  if (!(&a[1] < &a[3])) return 1;
  if (!(&a[7] >= &a[0])) return 2;
  if (a + 8 < a) return 3; /* one-past compares too */
  return 0;
}
)C",
      all(D()));

  Add("ptr_array_walk_idiom", "Q27",
      "The canonical pointer-walk loop `for (p = a; p < a + n; p++)`.",
      R"C(
#include <stdio.h>
int main(void) {
  int a[5] = {1, 2, 3, 4, 5};
  int *p;
  int s = 0;
  for (p = a; p < a + 5; p++)
    s += *p;
  printf("%d\n", s);
  return 0;
}
)C",
      all(D("15\n")));

  //===--- Null ------------------------------------------------------------===//

  Add("null_zero_offset", "Q30",
      "NULL + 0 and p - 0: tolerated by every model here (ISO is stricter "
      "in principle; no access ever happens).",
      R"C(
int main(void) {
  int *p = 0;
  int *q = p + 0;
  return q == 0 ? 0 : 1;
}
)C",
      all(D()));

  //===--- Pointer arithmetic --------------------------------------------===//

  Add("ptr_arith_below_object", "Q35",
      "Constructing a pointer one below an array: transient OOB de facto "
      "(Q31), UB at the arithmetic under strict ISO (6.5.6p8 has no "
      "one-before blessing).",
      R"C(
int main(void) {
  int a[4];
  int *p = a;
  p = p - 1; /* below the object */
  p = p + 2; /* back in: &a[1] */
  a[1] = 42;
  return *p == 42 ? 0 : 1;
}
)C",
      {{"concrete", D()},
       {"defacto", D()},
       {"strict-iso", U(UBKind::OutOfBoundsArithmetic)},
       {"cheri", D()}});

  Add("ptr_arith_struct_members", "Q36",
      "Member-to-member address computation stays inside the object.",
      R"C(
struct s { int a; int b; int c; };
int main(void) {
  struct s v;
  int *p = &v.a;
  p = p + 2; /* &v.c: still within the struct object */
  *p = 5;
  return v.c == 5 ? 0 : 1;
}
)C",
      all(D()));

  //===--- Casts ----------------------------------------------------------===//

  Add("cast_void_roundtrip", "Q38",
      "T* -> void* -> T* round-trips exactly (6.3.2.3p1).",
      R"C(
int x = 1;
int main(void) {
  void *v = &x;
  int *p = (int *)v;
  *p = 2;
  return x == 2 ? 0 : 1;
}
)C",
      all(D()));

  //===--- Related structure/union accesses ------------------------------===//

  Add("struct_member_via_plain_pointer", "Q40",
      "Taking an int* into a struct member and using it is fine under "
      "every model (the member view exists at that offset).",
      R"C(
struct s { char tag; int value; };
int main(void) {
  struct s v;
  int *p = &v.value;
  *p = 11;
  return v.value == 11 ? 0 : 1;
}
)C",
      all(D()));

  Add("array_of_structs_stride", "Q41",
      "Walking an array of structs through member pointers.",
      R"C(
#include <stdio.h>
struct kv { int k; int v; };
int main(void) {
  struct kv t[3] = {{1, 10}, {2, 20}, {3, 30}};
  int s = 0, i;
  for (i = 0; i < 3; i++)
    s += t[i].v;
  printf("%d\n", s);
  return 0;
}
)C",
      all(D("60\n")));

  //===--- Lifetime --------------------------------------------------------===//

  Add("realloc_invalidates_old", "Q45",
      "realloc() frees the old region: the stale pointer is dead (7.22.3.5).",
      R"C(
#include <stdlib.h>
int main(void) {
  int *p = malloc(2 * sizeof(int));
  p[0] = 1;
  int *q = realloc(p, 8 * sizeof(int));
  int r = p[0]; /* stale! */
  free(q);
  return r;
}
)C",
      all(U(UBKind::AccessDeadObject)));

  Add("goto_out_of_block_kills", "Q46",
      "goto out of a block ends the jumped-over object's lifetime (§5.8).",
      R"C(
int main(void) {
  int *p;
  {
    int z = 3;
    p = &z;
    goto out;
  }
out:
  return *p;
}
)C",
      all(U(UBKind::AccessDeadObject)));

  Add("write_string_literal", "Q45",
      "Modifying a string literal (6.4.5p7): UB under every model — the "
      "literal is an immutable implicitly allocated object (§5.1).",
      R"C(
int main(void) {
  char *s = "ro";
  s[0] = 88;
  return 0;
}
)C",
      all(U(UBKind::WriteToReadOnly)));

  //===--- Trap representations (§2.4: none at most types de facto) ------===//

  Add("bool_nonstandard_representation", "Q47",
      "Writing 2 into a _Bool's byte: current mainstream C has no trap "
      "representations at _Bool in practice (§2.4); the value reads back "
      "truthy.",
      R"C(
int main(void) {
  _Bool b;
  unsigned char *p = (unsigned char *)&b;
  *p = 2;
  return b ? 0 : 1;
}
)C",
      all(D()));

  Add("uint_has_no_padding_bits", "Q48",
      "unsigned int is a pure binary representation: ~0u is UINT_MAX.",
      R"C(
int main(void) {
  unsigned int x = ~0u;
  return x == 4294967295u ? 0 : 1;
}
)C",
      all(D()));

  //===--- Unspecified values (the 11-question category) -----------------===//

  Add("uninit_memcpy_ok_everywhere", "Q53",
      "memcpy of uninitialised storage is fine even for strict tools "
      "(copying does not 'read' the value; KCC/tis flag memcmp, not "
      "memcpy).",
      R"C(
#include <string.h>
int main(void) {
  char a[8], b[8];
  memcpy(b, a, 8);
  return 0;
}
)C",
      all(D()));

  Add("uninit_member_untouched", "Q54",
      "Reading only the initialised member of a partially initialised "
      "struct is defined under every discipline.",
      R"C(
struct s { int a; int b; };
int main(void) {
  struct s v;
  v.a = 5;
  return v.a == 5 ? 0 : 1;
}
)C",
      all(D()));

  Add("unspec_propagation_chain", "Q55",
      "Unspecified values propagate through unsigned arithmetic without "
      "becoming UB as long as nothing decisive uses them (Fig. 3 "
      "daemonic treatment).",
      R"C(
int main(void) {
  unsigned x;
  unsigned y = x + 1u;
  unsigned z = y * 2u;
  return 0;
}
)C",
      {{"concrete", D()},
       {"defacto", D()},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", D()}});

  Add("uninit_index_is_daemonic", "Q56",
      "Indexing with an uninitialised int: the unspecified index poisons "
      "the pointer arithmetic (daemonic), UB.",
      R"C(
int main(void) {
  int a[4] = {0, 1, 2, 3};
  int i;
  return a[i];
}
)C",
      {{"concrete", U(UBKind::ExceptionalCondition)},
       {"defacto", U(UBKind::ExceptionalCondition)},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", U(UBKind::ExceptionalCondition)}});

  //===--- Sequencing -----------------------------------------------------===//

  Add("unseq_distinct_objects_ok", "Q57",
      "Unsequenced side effects on *distinct* objects are not a race.",
      R"C(
int x, y;
int main(void) {
  int r = (x = 1) + (y = 2);
  return r == 3 && x == 1 && y == 2 ? 0 : 1;
}
)C",
      all(D()));

  Add("assignment_chain", "Q58",
      "a = b = c = 5 is right-nested and race-free.",
      R"C(
int main(void) {
  int a, b, c;
  a = b = c = 5;
  return a + b + c == 15 ? 0 : 1;
}
)C",
      all(D()));

  Add("compound_assign_reads_once", "Q59",
      "x += x is sequenced (the lvalue read is part of the computation): "
      "no race, unlike x = x++ + 1.",
      R"C(
int main(void) {
  int x = 21;
  x += x;
  return x == 42 ? 0 : 1;
}
)C",
      all(D()));

  //===--- Padding (the 13-question category) ----------------------------===//

  Add("padding_memset_then_memcpy_deterministic", "Q65",
      "The marshalling recipe: memset + member stores + memcpy gives "
      "bytewise-deterministic images (§2.5's motivation).",
      R"C(
#include <string.h>
struct s { char c; int i; };
int main(void) {
  struct s v, w;
  memset(&v, 0, sizeof v);
  v.c = 1;
  v.i = 2;
  memcpy(&w, &v, sizeof v);
  return memcmp(&v, &w, sizeof v) == 0 ? 0 : 1;
}
)C",
      all(D()));

  Add("padding_nested_struct_zeroed", "Q66",
      "Nested struct padding is zeroed by memset and stays comparable.",
      R"C(
#include <string.h>
struct inner { char d; int i; };
struct outer { char c; struct inner in; };
int main(void) {
  struct outer a, b;
  memset(&a, 0, sizeof a);
  memset(&b, 0, sizeof b);
  a.c = 1; a.in.d = 2; a.in.i = 3;
  b.c = 1; b.in.d = 2; b.in.i = 3;
  return memcmp(&a, &b, sizeof a) == 0 ? 0 : 1;
}
)C",
      all(D()));

  Add("padding_offset_arithmetic", "Q67",
      "The padding hole is where the layout says: (char*)&s.i - (char*)&s "
      "equals the aligned member offset.",
      R"C(
struct s { char c; int i; };
int main(void) {
  struct s v;
  long off = (char *)&v.i - (char *)&v;
  return off == 4 ? 0 : 1;
}
)C",
      all(D()));

  Add("padding_union_short_tail", "Q68",
      "Writing the small member of a union leaves the rest of the "
      "storage unspecified: copying it is fine; a strict discipline "
      "flags reading the large member's bytes.",
      R"C(
union u { char c; int i; };
int main(void) {
  union u v;
  v.c = 1;
  int copy = v.i; /* 3 unspecified bytes flow into the copy */
  return 0;
}
)C",
      {{"concrete", D()},
       {"defacto", D()},
       {"strict-iso", U(UBKind::UninitialisedRead)},
       {"cheri", D()}});

  Add("padding_char_write_survives_member_store", "Q69",
      "A byte written into padding via char* survives subsequent member "
      "stores (§2.5 option 4: 'structure member writes never touch "
      "padding').",
      R"C(
struct s { char c; int i; };
int main(void) {
  struct s v;
  unsigned char *bytes = (unsigned char *)&v;
  bytes[2] = 77; /* a padding byte */
  v.c = 1;
  v.i = 2;
  return bytes[2] == 77 ? 0 : 1;
}
)C",
      all(D()));

  //===--- Effective types: subobjects (the 6-question category) ---------===//

  Add("effective_member_int_view", "Q76",
      "Accessing a struct's int member through a plain int lvalue is "
      "valid even under strict effective types (6.5p7: 'an aggregate "
      "... that includes one of the aforementioned types').",
      R"C(
struct s { int a; int b; };
int main(void) {
  struct s v;
  int *p = &v.b;
  *p = 9;
  return v.b == 9 ? 0 : 1;
}
)C",
      all(D()));

  Add("effective_struct_as_long_view", "Q77",
      "Reading a struct{int,int} object through a long lvalue: the "
      "strict model rejects the incompatible view; the de facto "
      "(-fno-strict-aliasing) world reads the bytes.",
      R"C(
struct s { int a; int b; };
int main(void) {
  struct s v;
  v.a = 1;
  v.b = 2;
  long l = *(long *)&v;
  return l != 0 ? 0 : 1;
}
)C",
      {{"concrete", D()},
       {"defacto", D()},
       {"strict-iso", U(UBKind::EffectiveTypeViolation)},
       {"cheri", D()}});

  Add("effective_array_element_byte_view", "Q78",
      "Recomputing an element address via char* arithmetic accesses the "
      "element at its own type: valid under every model.",
      R"C(
int main(void) {
  int a[4] = {10, 11, 12, 13};
  int *p = (int *)((char *)a + 2 * sizeof(int));
  return *p == 12 ? 0 : 1;
}
)C",
      all(D()));

  Add("effective_misaligned_view", "Q79",
      "An int access at an odd offset into a char buffer: byte-level "
      "models allow it, alignment-checking models (strict, CHERI) trap "
      "(6.3.2.3p7).",
      R"C(
unsigned char buf[16];
int main(void) {
  int *p = (int *)(buf + 1);
  *p = 5;
  return 0;
}
)C",
      {{"concrete", D()},
       {"defacto", D()},
       {"strict-iso", U(UBKind::MisalignedAccess)},
       {"cheri", U(UBKind::MisalignedAccess)}});

  //===--- Other -----------------------------------------------------------===//

  Add("sizeof_does_not_evaluate", "Q82",
      "sizeof's operand is not evaluated (6.5.3.4p2): the increment "
      "inside never happens.",
      R"C(
int main(void) {
  int i = 0;
  int a[4];
  unsigned long n = sizeof(a[i++]);
  return i == 0 && n == sizeof(int) ? 0 : 1;
}
)C",
      all(D()));

  Add("string_library_roundtrip", "Q83",
      "strcpy/strcmp/strlen over our byte-level memory.",
      R"C(
#include <stdio.h>
#include <string.h>
int main(void) {
  char buf[16];
  strcpy(buf, "depths");
  if (strcmp(buf, "depths") != 0) return 1;
  if (strlen(buf) != 6) return 2;
  puts(buf);
  return 0;
}
)C",
      all(D("depths\n")));

  Add("realloc_preserves_prefix", "Q84",
      "realloc moves the bytes (with their provenance) to the new region.",
      R"C(
#include <stdlib.h>
int main(void) {
  int *p = malloc(2 * sizeof(int));
  p[0] = 7;
  p[1] = 8;
  p = realloc(p, 6 * sizeof(int));
  int r = (p[0] == 7 && p[1] == 8) ? 0 : 1;
  free(p);
  return r;
}
)C",
      all(D()));

  Add("switch_continue_through", "Q85",
      "continue inside a switch inside a loop binds to the loop "
      "(6.8.6.2), not the switch.",
      R"C(
#include <stdio.h>
int main(void) {
  int i, n = 0;
  for (i = 0; i < 6; i++) {
    switch (i % 3) {
    case 0: continue;
    case 1: n += 1; break;
    default: n += 10;
    }
  }
  printf("%d\n", n);
  return 0;
}
)C",
      all(D("22\n")));

  Add("shift_into_sign_bit", "Q86",
      "1 << 31 at type int: 2^31 is not representable in int, so the "
      "signed left shift is UB (6.5.7p4) — under every model (it is an "
      "elaboration-level check, not a memory-model one).",
      R"C(
int main(void) {
  int one = 1;
  return one << 31 ? 1 : 0;
}
)C",
      all(U(UBKind::ExceptionalCondition)));

  //===--- CHERI (§4 continued) ------------------------------------------===//

  Add("cheri_uintptr_add_sub_ok", "CHERI-3",
      "Ordinary +/- arithmetic on a capability-carrying uintptr_t keeps "
      "the capability usable (§4: the underlying idioms work; only "
      "metadata-unaware bit tricks surprise).",
      R"C(
#include <stdint.h>
int a[4];
int main(void) {
  uintptr_t i = (uintptr_t)&a[0];
  i = i + 2 * sizeof(int);
  i = i - sizeof(int);
  int *q = (int *)i; /* &a[1] */
  *q = 5;
  return a[1] == 5 ? 0 : 1;
}
)C",
      all(D()));
}
