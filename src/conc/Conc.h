//===-- conc/Conc.h - Restricted operational concurrency --------*- C++ -*-===//
///
/// \file
/// Core's `par`/`wait` constructs (Fig. 2: "cppmem thread creation") with
/// the restricted memory object model the paper allows for threads (§1:
/// "Threads, atomic types, and atomic operations are supported only with a
/// more restricted memory object model"). Our restriction: threads execute
/// under a scheduler-chosen order and any cross-thread conflicting
/// non-atomic accesses are detected as a data race (UB, 5.1.2.4p25) by the
/// same footprint machinery that finds unsequenced races.
///
/// This module provides builders for assembling small concurrent Core
/// programs directly (the C surface has no thread syntax in our fragment)
/// and a driver that explores the interleavings.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CONC_CONC_H
#define CERB_CONC_CONC_H

#include "core/Core.h"
#include "exec/Driver.h"

#include <string>
#include <vector>

namespace cerb::conc {

/// Builds a Core program whose main procedure:
///  1. creates one shared int object `shared`, initialised to \p Initial;
///  2. runs the given thread bodies under `par`;
///  3. loads `shared` and returns it.
/// Thread bodies are built by ThreadSpec: each thread stores \p Stores
/// values into the shared object in order.
struct ThreadSpec {
  std::vector<int> Stores;
  bool ReadsOnly = false; ///< loads instead of stores
  bool Atomic = false;    ///< seq_cst accesses (the restricted C11 regime)
};

core::CoreProgram buildSharedCounterProgram(int Initial,
                                            const std::vector<ThreadSpec>
                                                &Threads);

/// Explores all interleavings of a par program; reports the distinct final
/// values / race verdicts.
exec::ExhaustiveResult explore(const core::CoreProgram &Prog,
                               uint64_t MaxPaths = 1024);

} // namespace cerb::conc

#endif // CERB_CONC_CONC_H
