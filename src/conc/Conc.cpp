//===-- conc/Conc.cpp -----------------------------------------------------===//

#include "conc/Conc.h"

using namespace cerb;
using namespace cerb::conc;
using namespace cerb::core;

core::CoreProgram cerb::conc::buildSharedCounterProgram(
    int Initial, const std::vector<ThreadSpec> &Threads) {
  CoreProgram Prog;
  Symbol MainSym = Prog.Syms.create("main", ail::SymbolKind::Function);
  Symbol SharedPtr = Prog.Syms.create("shared", ail::SymbolKind::Object);
  Prog.MainProc = MainSym;
  CType IntTy = CType::intTy();

  auto MkSym = [&](Symbol S) {
    auto E = Expr::make(ExprKind::Sym);
    E->Sym = S;
    return E;
  };

  // Thread bodies.
  auto Par = Expr::make(ExprKind::Par);
  for (const ThreadSpec &T : Threads) {
    ExprPtr Body = Expr::make(ExprKind::Skip);
    auto Seq = [&](ExprPtr Action) {
      auto Let = Expr::make(ExprKind::LetStrong);
      Let->Pat = Pattern::wild();
      Let->Kids.push_back(std::move(Action));
      Let->Kids.push_back(std::move(Body));
      Body = std::move(Let);
    };
    for (auto It = T.Stores.rbegin(); It != T.Stores.rend(); ++It) {
      if (T.ReadsOnly) {
        auto Load = Expr::make(ExprKind::Action);
        Load->Act = ActionKind::Load;
        Load->Cty = IntTy;
        Load->AtomicAccess = T.Atomic;
        Load->Kids.push_back(MkSym(SharedPtr));
        Seq(std::move(Load));
      } else {
        auto Store = Expr::make(ExprKind::Action);
        Store->Act = ActionKind::Store;
        Store->Cty = IntTy;
        Store->AtomicAccess = T.Atomic;
        Store->Kids.push_back(MkSym(SharedPtr));
        Store->Kids.push_back(
            Expr::make(ExprKind::Val));
        Store->Kids.back()->V = Value::integer(*It);
        Seq(std::move(Store));
      }
    }
    Par->Kids.push_back(std::move(Body));
  }

  // main: create shared; store Initial; par(...); load; return.
  auto Create = Expr::make(ExprKind::Action);
  Create->Act = ActionKind::Create;
  Create->Cty = IntTy;
  Create->Str = "shared";

  auto Init = Expr::make(ExprKind::Action);
  Init->Act = ActionKind::Store;
  Init->Cty = IntTy;
  Init->Kids.push_back(MkSym(SharedPtr));
  Init->Kids.push_back(Expr::make(ExprKind::Val));
  Init->Kids.back()->V = Value::integer(Initial);

  Symbol LoadedSym = Prog.Syms.create("final", ail::SymbolKind::Object);
  auto Load = Expr::make(ExprKind::Action);
  Load->Act = ActionKind::Load;
  Load->Cty = IntTy;
  Load->Kids.push_back(MkSym(SharedPtr));

  auto Ret = Expr::make(ExprKind::Ret);
  Ret->Kids.push_back(MkSym(LoadedSym));

  auto L3 = Expr::make(ExprKind::LetStrong);
  L3->Pat = Pattern::sym(LoadedSym);
  L3->Kids.push_back(std::move(Load));
  L3->Kids.push_back(std::move(Ret));

  auto L2 = Expr::make(ExprKind::LetStrong);
  L2->Pat = Pattern::wild();
  L2->Kids.push_back(std::move(Par));
  L2->Kids.push_back(std::move(L3));

  auto L1 = Expr::make(ExprKind::LetStrong);
  L1->Pat = Pattern::wild();
  L1->Kids.push_back(std::move(Init));
  L1->Kids.push_back(std::move(L2));

  auto L0 = Expr::make(ExprKind::LetStrong);
  L0->Pat = Pattern::sym(SharedPtr);
  L0->Kids.push_back(std::move(Create));
  L0->Kids.push_back(std::move(L1));

  CoreProc Main;
  Main.Name = MainSym;
  Main.ReturnTy = IntTy;
  Main.Body = std::move(L0);
  Prog.Procs.emplace(MainSym.Id, std::move(Main));
  return Prog;
}

exec::ExhaustiveResult cerb::conc::explore(const core::CoreProgram &Prog,
                                           uint64_t MaxPaths) {
  exec::RunOptions Opts;
  Opts.Policy = mem::MemoryPolicy::defacto();
  Opts.MaxPaths = MaxPaths;
  return exec::runExhaustive(Prog, Opts);
}
