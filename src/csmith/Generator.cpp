//===-- csmith/Generator.cpp ----------------------------------------------===//

#include "csmith/Generator.h"

#include "support/Format.h"

#include <algorithm>
#include <vector>

using namespace cerb;
using namespace cerb::csmith;

namespace {

/// xorshift64 — deterministic across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x2545F4914F6CDD1D) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  unsigned below(unsigned N) { return static_cast<unsigned>(next() % N); }
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t S;
};

class Generator {
public:
  Generator(const GenOptions &Opts) : Opts(Opts), R(Opts.Seed) {}

  std::string run();
  std::vector<SourceChunk> takeChunks() { return std::move(Chunks); }

  /// Generates a statement sequence into a fresh buffer; returns the
  /// needed loop-counter declarations plus the body. When \p Spans is
  /// given, the [begin,end) span of each top-level statement within the
  /// body is recorded (the reducer's Statement chunk boundaries).
  std::pair<std::string, std::string>
  genBody(unsigned Budget, unsigned Depth,
          std::vector<std::pair<size_t, size_t>> *Spans = nullptr) {
    unsigned FirstCounter = LocalCounter;
    std::string Saved;
    std::swap(Out, Saved);
    while (Budget > 0) {
      size_t B = Out.size();
      stmt(1, Depth, Budget);
      if (Spans && Out.size() > B)
        Spans->push_back({B, Out.size()});
    }
    std::string Body;
    std::swap(Out, Body);
    Out = std::move(Saved);
    std::string Decls;
    for (unsigned I = FirstCounter; I < LocalCounter; ++I) {
      std::string N = fmt("i{0}", I);
      if (Body.find("for (" + N + " ") != std::string::npos)
        Decls += fmt("  unsigned int {0};\n", N);
    }
    return {Decls, Body};
  }

private:
  GenOptions Opts;
  Rng R;
  std::string Out;
  unsigned LocalCounter = 0;
  unsigned LoopDepth = 0;

  struct Var {
    std::string Name;
    bool IsArray;
    unsigned ArrayLen; // power of two, for mask indexing
  };
  std::vector<Var> Globals;
  std::vector<Var> Locals; ///< in-scope unsigned locals
  std::vector<std::string> Functions; ///< generated helper names
  std::vector<SourceChunk> Chunks;    ///< reducible spans of Out

  void markChunk(SourceChunk::Kind K, size_t Begin) {
    if (Out.size() > Begin)
      Chunks.push_back(SourceChunk{K, Begin, Out.size()});
  }

  void line(unsigned Indent, const std::string &S) {
    Out += std::string(2 * Indent, ' ') + S + "\n";
  }

  /// A random readable unsigned expression (rvalue), depth-bounded.
  std::string expr(unsigned Depth);
  /// A random writable unsigned lvalue.
  std::string lvalue();
  void stmt(unsigned Indent, unsigned Depth, unsigned &Budget);
  void block(unsigned Indent, unsigned Depth, unsigned Budget);
  void function(unsigned Idx);
};

std::string Generator::lvalue() {
  // Prefer globals so effects reach the checksum.
  bool UseLocal = !Locals.empty() && R.chance(35);
  const std::vector<Var> &Pool = UseLocal ? Locals : Globals;
  const Var &V = Pool[R.below(static_cast<unsigned>(Pool.size()))];
  if (V.IsArray)
    return fmt("{0}[{1}]", V.Name, R.below(V.ArrayLen));
  return V.Name;
}

std::string Generator::expr(unsigned Depth) {
  if (Depth == 0 || R.chance(30)) {
    switch (R.below(3)) {
    case 0:
      return fmt("{0}u", R.below(1000));
    case 1: {
      const Var &V = Globals[R.below(static_cast<unsigned>(Globals.size()))];
      if (V.IsArray)
        return fmt("{0}[{1}]", V.Name, R.below(V.ArrayLen));
      return V.Name;
    }
    default:
      if (!Locals.empty()) {
        const Var &V = Locals[R.below(static_cast<unsigned>(Locals.size()))];
        return V.Name;
      }
      return fmt("{0}u", R.below(1000));
    }
  }
  std::string A = expr(Depth - 1);
  std::string B = expr(Depth - 1);
  switch (R.below(9)) {
  case 0: return fmt("({0} + {1})", A, B);   // unsigned: wraps, defined
  case 1: return fmt("({0} - {1})", A, B);
  case 2: return fmt("({0} * {1})", A, B);
  case 3: return fmt("({0} ^ {1})", A, B);
  case 4: return fmt("({0} & {1})", A, B);
  case 5: return fmt("({0} | {1})", A, B);
  case 6: // guarded division (Csmith's safe_div)
    return fmt("({1} != 0u ? {0} / {1} : {0})", A, B);
  case 7: // literal shift count < width: defined
    return fmt("({0} << {1})", A, R.below(31) + 1);
  default:
    return fmt("({0} >> {1})", A, R.below(31) + 1);
  }
}

void Generator::stmt(unsigned Indent, unsigned Depth, unsigned &Budget) {
  if (Budget == 0)
    return;
  --Budget;
  unsigned Kind = R.below(10);
  if (Depth == 0 && Kind >= 6)
    Kind = R.below(6);

  switch (Kind) {
  case 0:
  case 1:
  case 2: // plain assignment
    line(Indent, fmt("{0} = {1};", lvalue(), expr(2)));
    return;
  case 3: // compound assignment
    line(Indent, fmt("{0} {1}= {2};", lvalue(),
                     std::string(1, "+-^&|"[R.below(5)]), expr(1)));
    return;
  case 4: // call a helper, fold the result in
    if (!Functions.empty()) {
      const std::string &F =
          Functions[R.below(static_cast<unsigned>(Functions.size()))];
      line(Indent, fmt("{0} ^= {1}({2}, {3});", lvalue(), F, expr(1),
                       expr(1)));
      return;
    }
    line(Indent, fmt("{0} ^= {1};", lvalue(), expr(2)));
    return;
  case 5: // increment
    line(Indent, fmt("{0}++;", lvalue()));
    return;
  case 6: { // if/else
    line(Indent, fmt("if ({0} > {1}) {2}", expr(1), expr(1), "{"));
    size_t Mark = Locals.size();
    unsigned Inner = 1 + R.below(2);
    while (Inner--)
      stmt(Indent + 1, Depth - 1, Budget);
    Locals.resize(Mark); // block-scope locals die at the brace
    if (R.chance(50)) {
      line(Indent, "} else {");
      unsigned E = 1 + R.below(2);
      while (E--)
        stmt(Indent + 1, Depth - 1, Budget);
      Locals.resize(Mark);
    }
    line(Indent, "}");
    return;
  }
  case 7: { // bounded for loop with a fresh counter
    if (LoopDepth >= 2) {
      line(Indent, fmt("{0} = {1};", lvalue(), expr(2)));
      return;
    }
    ++LoopDepth;
    std::string I = fmt("i{0}", LocalCounter++);
    unsigned Bound = 2 + R.below(6);
    line(Indent, fmt("for ({0} = 0u; {0} < {1}u; {0}++) {2}", I, Bound,
                     "{"));
    Locals.push_back(Var{I, false, 0});
    size_t Mark = Locals.size();
    unsigned Inner = 1 + R.below(2);
    while (Inner--)
      stmt(Indent + 1, Depth - 1, Budget);
    Locals.resize(Mark);
    Locals.pop_back(); // the counter scopes only over the loop
    line(Indent, "}");
    --LoopDepth;
    return;
  }
  case 8: { // fresh local
    std::string L = fmt("t{0}", LocalCounter++);
    line(Indent, fmt("unsigned int {0} = {1};", L, expr(2)));
    Locals.push_back(Var{L, false, 0});
    return;
  }
  default: // array element update
    line(Indent, fmt("{0} = ({1} + {2});", lvalue(), lvalue(), expr(1)));
    return;
  }
}

void Generator::function(unsigned Idx) {
  std::string Name = fmt("fn{0}", Idx);
  Out += fmt("unsigned int {0}(unsigned int a, unsigned int b) {1}\n", Name,
             "{");
  std::vector<Var> SavedLocals = std::move(Locals);
  Locals.clear();
  Locals.push_back(Var{"a", false, 0});
  Locals.push_back(Var{"b", false, 0});
  // Helpers may call earlier helpers only (no recursion: termination).
  std::vector<std::string> SavedFns = std::move(Functions);
  Functions.assign(SavedFns.begin(),
                   SavedFns.begin() + std::min<size_t>(Idx, SavedFns.size()));
  auto [Decls, Body] = genBody(2 + Opts.Size / 6, 2);
  Functions = std::move(SavedFns);
  Out += Decls + Body;
  line(1, fmt("return ({0});", expr(2)));
  Out += "}\n\n";
  Locals = std::move(SavedLocals);
}

std::string Generator::run() {
  Out = "/* generated by cerberus-cxx csmith-lite, seed " +
        toString(Int128(Opts.Seed)) + " */\n#include <stdio.h>\n\n";

  for (unsigned I = 0; I < Opts.NumGlobals; ++I) {
    size_t ChunkBegin = Out.size();
    bool IsArr = R.chance(30);
    Var V;
    V.Name = fmt("g{0}", I);
    V.IsArray = IsArr;
    if (IsArr) {
      V.ArrayLen = 4;
      Out += fmt("unsigned int {0}[4] = {1}{2}u, {3}u, {4}u, {5}u{6};\n",
                 V.Name, "{", R.below(100), R.below(100), R.below(100),
                 R.below(100), "}");
    } else {
      Out += fmt("unsigned int {0} = {1}u;\n", V.Name, R.below(1000));
    }
    Globals.push_back(std::move(V));
    markChunk(SourceChunk::Kind::Global, ChunkBegin);
  }
  Out += "\n";

  for (unsigned I = 0; I < Opts.NumFunctions; ++I) {
    size_t ChunkBegin = Out.size();
    function(I);
    Functions.push_back(fmt("fn{0}", I));
    markChunk(SourceChunk::Kind::Function, ChunkBegin);
  }

  Out += "int main(void) {\n";
  Locals.clear();
  std::vector<std::pair<size_t, size_t>> StmtSpans;
  auto [Decls, Body] = genBody(Opts.Size, Opts.MaxDepth, &StmtSpans);
  Out += Decls;
  size_t BodyBase = Out.size();
  Out += Body;
  for (const auto &[B, E] : StmtSpans)
    Chunks.push_back(
        SourceChunk{SourceChunk::Kind::Statement, BodyBase + B, BodyBase + E});

  // Checksum of all globals (the Csmith convention).
  Out += "  unsigned int crc = 0u;\n";
  for (const Var &V : Globals) {
    if (V.IsArray) {
      for (unsigned I = 0; I < V.ArrayLen; ++I)
        Out += fmt("  crc = crc * 31u + {0}[{1}];\n", V.Name, I);
    } else {
      Out += fmt("  crc = crc * 31u + {0};\n", V.Name);
    }
  }
  Out += "  printf(\"checksum = %u\\n\", crc);\n  return 0;\n}\n";
  return Out;
}

} // namespace

std::string cerb::csmith::generateProgram(const GenOptions &Opts) {
  Generator G(Opts);
  return G.run();
}

GeneratedProgram
cerb::csmith::generateProgramWithChunks(const GenOptions &Opts) {
  Generator G(Opts);
  GeneratedProgram P;
  P.Source = G.run();
  P.Chunks = G.takeChunks();
  return P;
}
