//===-- csmith/Differential.h - Differential validation ---------*- C++ -*-===//
///
/// \file
/// The §6 validation experiment: run generated (UB-free) programs both
/// under our semantics and under a production C compiler, and compare the
/// printed checksums. The paper validates Cerberus against GCC on 561
/// small + 400 larger Csmith tests; we regenerate the same experiment
/// shape (agree / timeout / fail counts) with the host compiler as oracle.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CSMITH_DIFFERENTIAL_H
#define CERB_CSMITH_DIFFERENTIAL_H

#include "csmith/Generator.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cerb::csmith {

enum class DiffStatus {
  Agree,       ///< same stdout + exit status
  Mismatch,    ///< both ran, different results (a bug somewhere!)
  OursTimeout, ///< our interpreter hit the step budget (§6 "times out")
  OursFail,    ///< our pipeline rejected or errored on the program
  OracleFail,  ///< the host compiler failed (unavailable / crashed)
};

std::string_view diffStatusName(DiffStatus S);

struct DiffResult {
  DiffStatus Status = DiffStatus::OracleFail;
  std::string Ours;
  std::string Oracle;
  std::string Detail;
};

/// Is a host C compiler available? (checked once, cached)
bool oracleAvailable();

/// Compiles and runs \p Source with the host compiler; nullopt on failure.
std::optional<std::string> runOracle(const std::string &Source);

/// Runs \p Source through our pipeline + one (deterministic) execution and
/// through the oracle, and compares.
DiffResult differentialTest(const std::string &Source,
                            uint64_t StepBudget = 20'000'000);

/// The §6 aggregate over a seed range.
struct ValidationSummary {
  unsigned Total = 0;
  unsigned Agree = 0;
  unsigned Mismatch = 0;
  unsigned Timeout = 0;
  unsigned Fail = 0;
  unsigned OracleUnavailable = 0;
};

ValidationSummary validateSeeds(uint64_t FirstSeed, unsigned Count,
                                const GenOptions &Base,
                                uint64_t StepBudget = 20'000'000);

} // namespace cerb::csmith

#endif // CERB_CSMITH_DIFFERENTIAL_H
