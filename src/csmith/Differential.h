//===-- csmith/Differential.h - Differential validation ---------*- C++ -*-===//
///
/// \file
/// The §6 validation experiment: run generated (UB-free) programs both
/// under our semantics and under a production C compiler, and compare the
/// printed checksums. The paper validates Cerberus against GCC on 561
/// small + 400 larger Csmith tests; we regenerate the same experiment
/// shape (agree / timeout / fail counts) with the host compiler as oracle.
///
/// The fuzz-campaign subsystem (src/fuzz) drives this harness at scale:
/// DiffOptions exposes the memory policy and a wall-clock deadline (so a
/// pathological program cannot stall a campaign worker), DifferentialRunner
/// shares one elaboration and one host-compiler run across a policy set,
/// and diffSignature computes the stable triage-bucket key.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CSMITH_DIFFERENTIAL_H
#define CERB_CSMITH_DIFFERENTIAL_H

#include "csmith/Generator.h"
#include "exec/Pipeline.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cerb::csmith {

enum class DiffStatus {
  Agree,       ///< same stdout + exit status
  Mismatch,    ///< both ran, different results (a bug somewhere!)
  OursTimeout, ///< our interpreter hit the step budget or deadline (§6
               ///< "times out")
  OursFail,    ///< our pipeline rejected or errored on the program
  OracleFail,  ///< the host compiler failed (unavailable / crashed)
};

std::string_view diffStatusName(DiffStatus S);
std::optional<DiffStatus> diffStatusByName(std::string_view Name);

/// The first pipeline stage at which the two implementations diverged
/// (part of the triage-bucket key).
enum class DiffStage {
  None,     ///< agreement, or a timeout (no divergence established)
  Frontend, ///< our front half rejected the program (static error)
  Dynamic,  ///< our execution ended in UB / abort / internal error
  Oracle,   ///< the host compiler itself failed
  Output,   ///< both ran to completion; the printed checksums differ
};

std::string_view diffStageName(DiffStage S);

struct DiffOptions {
  mem::MemoryPolicy Policy = mem::MemoryPolicy::defacto();
  uint64_t StepBudget = 20'000'000;
  /// Wall-clock deadline for *our* execution (plumbed into
  /// exec::ExecLimits::Deadline; the host oracle run is separately bounded
  /// by `timeout`). 0 = none.
  uint64_t DeadlineMs = 0;
};

struct DiffResult {
  DiffStatus Status = DiffStatus::OracleFail;
  DiffStage Stage = DiffStage::None;
  /// The UB kind when our execution flagged undefined behaviour.
  std::optional<mem::UBKind> UB;
  std::string Ours;
  std::string Oracle;
  std::string Detail;
};

/// Stable triage signature of a result: "status|stage|ub|hash" where hash
/// is an FNV-1a of the digit-normalized Detail (line numbers and literal
/// values are stripped so that reduction, which renumbers lines, cannot
/// move a reproducer out of its bucket). Deterministic across runs,
/// machines, and thread counts.
std::string diffSignature(const DiffResult &R);

/// Is a host C compiler available? (checked once, cached)
bool oracleAvailable();

/// Compiles and runs \p Source with the host compiler; nullopt on failure.
std::optional<std::string> runOracle(const std::string &Source);

/// Runs \p Source through our pipeline + one (deterministic) execution and
/// through the oracle, and compares.
DiffResult differentialTest(const std::string &Source, const DiffOptions &O);
/// Back-compat shim: de facto policy, step budget only.
DiffResult differentialTest(const std::string &Source,
                            uint64_t StepBudget = 20'000'000);

/// Compile-once / compare-many harness for sweeping one program across a
/// policy set: the elaboration and the host-compiler run are both shared
/// between run() calls (compilation is policy-independent; the oracle's
/// output obviously is too). Not thread-safe; use one per worker.
class DifferentialRunner {
public:
  explicit DifferentialRunner(std::string Source);

  DiffResult run(const DiffOptions &O);

private:
  std::string Source;
  std::optional<Expected<core::CoreProgram>> Prog; ///< compiled lazily
  std::optional<std::optional<std::string>> Host;  ///< memoized oracle run
};

/// The §6 aggregate over a seed range.
struct ValidationSummary {
  unsigned Total = 0;
  unsigned Agree = 0;
  unsigned Mismatch = 0;
  unsigned Timeout = 0;
  unsigned Fail = 0;
  unsigned OracleUnavailable = 0;
};

ValidationSummary validateSeeds(uint64_t FirstSeed, unsigned Count,
                                const GenOptions &Base,
                                uint64_t StepBudget = 20'000'000);

} // namespace cerb::csmith

#endif // CERB_CSMITH_DIFFERENTIAL_H
