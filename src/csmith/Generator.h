//===-- csmith/Generator.h - Random well-defined C programs -----*- C++ -*-===//
///
/// \file
/// A Csmith-style random program generator (§6 validates Cerberus against
/// GCC on Csmith tests: "Of their 561 Csmith tests, Cerberus currently
/// gives the same result as GCC for 556"). Like Csmith, generated programs
/// are (intended to be) free of undefined and unspecified behaviour, so a
/// correct C implementation and a correct C semantics must agree on the
/// printed checksum; disagreement indicts one of them. The differential
/// harness (Differential.h) uses the host C compiler as the oracle.
///
/// The generator emits: unsigned global scalars and arrays, helper
/// functions with parameters and results, bounded loops, if/else, safe
/// arithmetic (guarded division/remainder, literal shift counts, masked
/// array indices), and a final checksum of all globals.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_CSMITH_GENERATOR_H
#define CERB_CSMITH_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace cerb::csmith {

struct GenOptions {
  uint64_t Seed = 1;
  /// Scale knob: roughly the number of statements in main. The paper's
  /// "small" Csmith tests ~ Size 12; the "larger, 40-600 line" ones ~ 60.
  unsigned Size = 12;
  unsigned NumGlobals = 5;
  unsigned NumFunctions = 3;
  unsigned MaxDepth = 3;
};

/// One structurally removable byte span of a generated program: splicing
/// the span out always leaves balanced braces and a compilable *shape*
/// (removals may still break compilation by orphaning a use of a deleted
/// declaration — the reducer's oracle predicate filters those candidates).
struct SourceChunk {
  enum class Kind {
    Global,    ///< one global variable definition line
    Function,  ///< one whole helper-function definition
    Statement, ///< one top-level statement (possibly a block) in main
  };
  Kind ChunkKind = Kind::Statement;
  size_t Begin = 0; ///< byte offset of the span start
  size_t End = 0;   ///< one past the span end
};

/// A generated program together with its reducible structure. The chunk
/// list is ascending and non-overlapping; the non-chunk remainder (header,
/// main's skeleton, the checksum epilogue) is never removed by reduction.
struct GeneratedProgram {
  std::string Source;
  std::vector<SourceChunk> Chunks;
};

/// Generates one deterministic, UB-free C program.
std::string generateProgram(const GenOptions &Opts);

/// Like generateProgram (byte-identical Source for the same options), also
/// reporting the structure-aware chunk boundaries the ddmin reducer
/// operates on.
GeneratedProgram generateProgramWithChunks(const GenOptions &Opts);

} // namespace cerb::csmith

#endif // CERB_CSMITH_GENERATOR_H
