//===-- csmith/Differential.cpp -------------------------------------------===//

#include "csmith/Differential.h"

#include "support/Format.h"
#include "support/Subprocess.h"

#include <chrono>
#include <cstdio>
#include <fstream>

using namespace cerb;
using namespace cerb::csmith;

std::string_view cerb::csmith::diffStatusName(DiffStatus S) {
  switch (S) {
  case DiffStatus::Agree: return "agree";
  case DiffStatus::Mismatch: return "MISMATCH";
  case DiffStatus::OursTimeout: return "timeout";
  case DiffStatus::OursFail: return "fail";
  case DiffStatus::OracleFail: return "oracle-unavailable";
  }
  return "?";
}

std::optional<DiffStatus>
cerb::csmith::diffStatusByName(std::string_view Name) {
  for (DiffStatus S : {DiffStatus::Agree, DiffStatus::Mismatch,
                       DiffStatus::OursTimeout, DiffStatus::OursFail,
                       DiffStatus::OracleFail})
    if (diffStatusName(S) == Name)
      return S;
  return std::nullopt;
}

std::string_view cerb::csmith::diffStageName(DiffStage S) {
  switch (S) {
  case DiffStage::None: return "none";
  case DiffStage::Frontend: return "frontend";
  case DiffStage::Dynamic: return "dynamic";
  case DiffStage::Oracle: return "oracle";
  case DiffStage::Output: return "output";
  }
  return "?";
}

namespace {

/// FNV-1a over \p S with digits and whitespace runs stripped: line numbers,
/// offsets, and concrete values vary under reduction, but the *shape* of a
/// diagnostic does not.
uint64_t normalizedHash(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  bool LastWasSpace = false;
  for (char C : S) {
    if (C >= '0' && C <= '9')
      continue;
    bool Space = C == ' ' || C == '\t' || C == '\n';
    if (Space && LastWasSpace)
      continue;
    LastWasSpace = Space;
    H ^= static_cast<unsigned char>(Space ? ' ' : C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

} // namespace

std::string cerb::csmith::diffSignature(const DiffResult &R) {
  std::string UBPart = R.UB ? std::string(mem::ubName(*R.UB)) : "-";
  char Hash[24];
  std::snprintf(Hash, sizeof(Hash), "%016llx",
                static_cast<unsigned long long>(
                    R.Stage == DiffStage::None ? 0
                                               : normalizedHash(R.Detail)));
  return fmt("{0}|{1}|{2}|{3}", diffStatusName(R.Status),
             diffStageName(R.Stage), UBPart, Hash);
}

bool cerb::csmith::oracleAvailable() {
  static bool Available = [] {
    return captureCommand("cc --version").has_value();
  }();
  return Available;
}

std::optional<std::string>
cerb::csmith::runOracle(const std::string &Source) {
  if (!oracleAvailable())
    return std::nullopt;
  std::string Base =
      processScratchDir() + "/t" + std::to_string(nextScratchId());
  {
    std::ofstream F(Base + ".c");
    F << Source;
  }
  std::optional<std::string> Out;
  if (captureCommand("cc -O1 -o " + Base + " " + Base + ".c"))
    Out = captureCommand(Base, /*TimeoutMs=*/10'000);
  removeFiles(Base, Base + ".c");
  return Out;
}

DifferentialRunner::DifferentialRunner(std::string Source)
    : Source(std::move(Source)) {}

DiffResult DifferentialRunner::run(const DiffOptions &O) {
  DiffResult R;

  if (!Prog)
    Prog.emplace(exec::compile(Source));
  if (!*Prog) {
    R.Status = DiffStatus::OursFail;
    R.Stage = DiffStage::Frontend;
    R.Detail = Prog->error().str();
    return R;
  }

  exec::RunOptions Opts;
  Opts.Policy = O.Policy;
  Opts.Limits.MaxSteps = O.StepBudget;
  if (O.DeadlineMs)
    Opts.Limits.Deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(O.DeadlineMs);
  exec::Outcome Ours = exec::runOnce(**Prog, Opts);

  if (Ours.Kind == exec::OutcomeKind::StepLimit ||
      Ours.Kind == exec::OutcomeKind::Timeout) {
    R.Status = DiffStatus::OursTimeout;
    // Which limit tripped first (step budget vs wall-clock deadline) is a
    // race against machine load for near-budget programs; record the
    // deterministic union so campaign reports stay byte-identical across
    // worker counts.
    R.Detail = "timeout";
    return R;
  }
  if (Ours.Kind != exec::OutcomeKind::Exit) {
    // A generated program must be UB-free: any UB report is a generator or
    // semantics bug and counts as a failure (the interesting kind!).
    R.Status = DiffStatus::OursFail;
    R.Stage = DiffStage::Dynamic;
    if (Ours.Kind == exec::OutcomeKind::Undef)
      R.UB = Ours.UB.Kind;
    R.Detail = Ours.str();
    return R;
  }
  R.Ours = Ours.Stdout;

  if (!Host)
    Host.emplace(runOracle(Source));
  if (!*Host) {
    R.Status = DiffStatus::OracleFail;
    R.Stage = DiffStage::Oracle;
    return R;
  }
  R.Oracle = **Host;
  if (R.Ours == R.Oracle) {
    R.Status = DiffStatus::Agree;
  } else {
    R.Status = DiffStatus::Mismatch;
    R.Stage = DiffStage::Output;
    // Keep the Detail *shape* independent of the concrete checksums so all
    // output divergences of one program family share a bucket.
    R.Detail = "stdout-divergence";
  }
  return R;
}

DiffResult cerb::csmith::differentialTest(const std::string &Source,
                                          const DiffOptions &O) {
  return DifferentialRunner(Source).run(O);
}

DiffResult cerb::csmith::differentialTest(const std::string &Source,
                                          uint64_t StepBudget) {
  DiffOptions O;
  O.StepBudget = StepBudget;
  return differentialTest(Source, O);
}

ValidationSummary cerb::csmith::validateSeeds(uint64_t FirstSeed,
                                              unsigned Count,
                                              const GenOptions &Base,
                                              uint64_t StepBudget) {
  ValidationSummary S;
  for (unsigned I = 0; I < Count; ++I) {
    GenOptions Opts = Base;
    Opts.Seed = FirstSeed + I;
    std::string Src = generateProgram(Opts);
    DiffResult R = differentialTest(Src, StepBudget);
    ++S.Total;
    switch (R.Status) {
    case DiffStatus::Agree: ++S.Agree; break;
    case DiffStatus::Mismatch: ++S.Mismatch; break;
    case DiffStatus::OursTimeout: ++S.Timeout; break;
    case DiffStatus::OursFail: ++S.Fail; break;
    case DiffStatus::OracleFail: ++S.OracleUnavailable; break;
    }
  }
  return S;
}
