//===-- csmith/Differential.cpp -------------------------------------------===//

#include "csmith/Differential.h"

#include "exec/Pipeline.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/wait.h>
#include <unistd.h>

using namespace cerb;
using namespace cerb::csmith;

std::string_view cerb::csmith::diffStatusName(DiffStatus S) {
  switch (S) {
  case DiffStatus::Agree: return "agree";
  case DiffStatus::Mismatch: return "MISMATCH";
  case DiffStatus::OursTimeout: return "timeout";
  case DiffStatus::OursFail: return "fail";
  case DiffStatus::OracleFail: return "oracle-unavailable";
  }
  return "?";
}

namespace {

/// Runs a shell command, capturing stdout; nullopt on nonzero exit.
std::optional<std::string> capture(const std::string &Cmd) {
  FILE *P = popen((Cmd + " 2>/dev/null").c_str(), "r");
  if (!P)
    return std::nullopt;
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof Buf, P)) > 0)
    Out.append(Buf, N);
  int Status = pclose(P);
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
    return std::nullopt;
  return Out;
}

std::string tempDir() {
  static std::string Dir = [] {
    std::string D = "/tmp/cerb-diff-" + std::to_string(getpid());
    std::string Cmd = "mkdir -p " + D;
    if (std::system(Cmd.c_str()) != 0)
      return std::string("/tmp");
    return D;
  }();
  return Dir;
}

} // namespace

bool cerb::csmith::oracleAvailable() {
  static bool Available = [] {
    return capture("cc --version").has_value();
  }();
  return Available;
}

std::optional<std::string>
cerb::csmith::runOracle(const std::string &Source) {
  if (!oracleAvailable())
    return std::nullopt;
  static unsigned Counter = 0;
  std::string Base = tempDir() + "/t" + std::to_string(Counter++);
  {
    std::ofstream F(Base + ".c");
    F << Source;
  }
  if (!capture("cc -O1 -o " + Base + " " + Base + ".c"))
    return std::nullopt;
  auto Out = capture("timeout 10 " + Base);
  std::string Cleanup = "rm -f " + Base + " " + Base + ".c";
  (void)std::system(Cleanup.c_str());
  return Out;
}

DiffResult cerb::csmith::differentialTest(const std::string &Source,
                                          uint64_t StepBudget) {
  DiffResult R;

  exec::RunOptions Opts;
  Opts.Policy = mem::MemoryPolicy::defacto();
  Opts.Limits.MaxSteps = StepBudget;
  auto OursOr = exec::evaluateOnce(Source, Opts);
  if (!OursOr) {
    R.Status = DiffStatus::OursFail;
    R.Detail = OursOr.error().str();
    return R;
  }
  if (OursOr->Kind == exec::OutcomeKind::StepLimit) {
    R.Status = DiffStatus::OursTimeout;
    return R;
  }
  if (OursOr->Kind != exec::OutcomeKind::Exit) {
    // A generated program must be UB-free: any UB report is a generator or
    // semantics bug and counts as a failure (the interesting kind!).
    R.Status = DiffStatus::OursFail;
    R.Detail = OursOr->str();
    return R;
  }
  R.Ours = OursOr->Stdout;

  auto Oracle = runOracle(Source);
  if (!Oracle) {
    R.Status = DiffStatus::OracleFail;
    return R;
  }
  R.Oracle = *Oracle;
  R.Status = R.Ours == R.Oracle ? DiffStatus::Agree : DiffStatus::Mismatch;
  return R;
}

ValidationSummary cerb::csmith::validateSeeds(uint64_t FirstSeed,
                                              unsigned Count,
                                              const GenOptions &Base,
                                              uint64_t StepBudget) {
  ValidationSummary S;
  for (unsigned I = 0; I < Count; ++I) {
    GenOptions Opts = Base;
    Opts.Seed = FirstSeed + I;
    std::string Src = generateProgram(Opts);
    DiffResult R = differentialTest(Src, StepBudget);
    ++S.Total;
    switch (R.Status) {
    case DiffStatus::Agree: ++S.Agree; break;
    case DiffStatus::Mismatch: ++S.Mismatch; break;
    case DiffStatus::OursTimeout: ++S.Timeout; break;
    case DiffStatus::OursFail: ++S.Fail; break;
    case DiffStatus::OracleFail: ++S.OracleUnavailable; break;
    }
  }
  return S;
}
