//===-- tests/test_golden_defacto.cpp - golden-outcome regression suite ---===//
//
// Pins the distinct-outcome set (canonical Outcome::str() strings, in the
// explorer's canonical sorted order) of ~25 representative de facto suite
// programs under every memory policy preset. Any semantics change that
// alters an allowed-execution set shows up here as a readable diff, not as
// a silent drift.
//
// Goldens live in tests/goldens/defacto_outcomes.golden. To regenerate
// after an *intentional* semantics change (see DESIGN.md):
//
//   CERB_UPDATE_GOLDENS=1 ./build/tests/cerb_golden_tests
//
//===----------------------------------------------------------------------===//

#include "defacto/Suite.h"
#include "exec/Pipeline.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

using namespace cerb;

namespace {

/// The representative corpus: at least one test per design-space area
/// (provenance, pointer equality/relational, copying, unions, null, OOB,
/// arithmetic, effective types, uninitialised values, sequencing, padding,
/// lifetime/heap, control flow, CHERI).
const char *GoldenTests[] = {
    "provenance_basic_global_yx",
    "provenance_same_object_roundtrip",
    "provenance_int_arith_xor",
    "ptr_eq_one_past_adjacent",
    "ptr_rel_distinct_objects",
    "ptr_copy_memcpy",
    "ptr_copy_bytewise",
    "union_pun_int_bytes",
    "null_deref",
    "null_compare",
    "oob_transient",
    "one_past_ok",
    "one_past_deref",
    "ptrdiff_same_array",
    "ptrdiff_cross_object",
    "char_walk_int",
    "use_after_free",
    "dangling_stack_pointer",
    "uninit_signed_arith",
    "uninit_into_printf",
    "unseq_race_two_stores",
    "unseq_race_incr",
    "indet_seq_calls",
    "comma_sequences",
    "padding_member_store_preserves",
    "effective_malloc_first_store",
    "tbaa_int_as_short",
    "cheri_offset_and",
    "malloc_free_roundtrip",
    "double_free",
    "goto_into_block",
    "switch_duff_fallthrough",
};

std::string goldenPath() {
  return std::string(CERB_SOURCE_DIR) + "/tests/goldens/defacto_outcomes.golden";
}

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

std::string unescape(const std::string &S) {
  std::string Out;
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] == '\\' && I + 1 < S.size()) {
      ++I;
      Out += S[I] == 'n' ? '\n' : S[I];
    } else {
      Out += S[I];
    }
  }
  return Out;
}

/// Key "test_name policy" -> sorted canonical outcome strings.
using GoldenMap = std::map<std::string, std::vector<std::string>>;

GoldenMap computeActual(unsigned ExploreJobs) {
  GoldenMap Actual;
  for (const char *Name : GoldenTests) {
    const defacto::TestCase *T = defacto::findTest(Name);
    EXPECT_NE(T, nullptr) << "golden corpus names unknown test " << Name;
    if (!T)
      continue;
    for (const mem::MemoryPolicy &P : mem::MemoryPolicy::allPresets()) {
      exec::RunOptions Opts;
      Opts.Policy = P;
      Opts.MaxPaths = 4096;
      Opts.ExploreJobs = ExploreJobs;
      auto R = exec::evaluateExhaustive(T->Source, Opts);
      std::vector<std::string> &Outs = Actual[std::string(Name) + " " + P.Name];
      if (!R) {
        Outs.push_back("compile-error(" + R.error().str() + ")");
        continue;
      }
      EXPECT_FALSE(R->Truncated) << Name << "/" << P.Name
                                 << ": golden corpus must explore fully";
      for (const exec::Outcome &O : R->Distinct)
        Outs.push_back(O.str());
    }
  }
  return Actual;
}

std::string serialize(const GoldenMap &M) {
  std::string Out =
      "# Golden distinct-outcome sets for the de facto suite corpus.\n"
      "# One [test policy] record per exploration; outcomes are canonical\n"
      "# Outcome::str() strings in sorted order, \\n-escaped.\n"
      "# Regenerate: CERB_UPDATE_GOLDENS=1 ./build/tests/cerb_golden_tests\n";
  for (const auto &[Key, Outs] : M) {
    Out += "\n[" + Key + "]\n";
    for (const std::string &O : Outs)
      Out += escape(O) + "\n";
  }
  return Out;
}

bool parseGoldens(const std::string &Path, GoldenMap &M, std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = "cannot open " + Path +
          " (regenerate: CERB_UPDATE_GOLDENS=1 ./build/tests/cerb_golden_tests)";
    return false;
  }
  std::string Line, Key;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Line.front() == '[' && Line.back() == ']') {
      Key = Line.substr(1, Line.size() - 2);
      M[Key]; // a record may legitimately be empty (compile-error sentinel aside)
      continue;
    }
    if (Key.empty()) {
      Err = "stray line before first record: " + Line;
      return false;
    }
    M[Key].push_back(unescape(Line));
  }
  return true;
}

} // namespace

TEST(GoldenDefacto, OutcomeSetsMatchGoldens) {
  GoldenMap Actual = computeActual(/*ExploreJobs=*/1);

  if (std::getenv("CERB_UPDATE_GOLDENS")) {
    std::ofstream Out(goldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(static_cast<bool>(Out)) << "cannot write " << goldenPath();
    Out << serialize(Actual);
    GTEST_LOG_(INFO) << "regenerated " << goldenPath();
    return;
  }

  GoldenMap Golden;
  std::string Err;
  ASSERT_TRUE(parseGoldens(goldenPath(), Golden, Err)) << Err;

  for (const auto &[Key, Outs] : Golden)
    EXPECT_TRUE(Actual.count(Key))
        << "golden record '" << Key
        << "' no longer produced (corpus changed? regenerate goldens)";
  for (const auto &[Key, Outs] : Actual) {
    auto It = Golden.find(Key);
    if (It == Golden.end()) {
      ADD_FAILURE() << "no golden record for '" << Key
                    << "' (new corpus entry? regenerate goldens)";
      continue;
    }
    EXPECT_EQ(It->second, Outs) << "distinct-outcome set drifted for " << Key;
  }
}

TEST(GoldenDefacto, ParallelExplorerMatchesGoldenOutcomes) {
  // The same corpus explored with 4 workers must reproduce the exact
  // golden sets: the golden suite doubles as an end-to-end determinism
  // check for the parallel explorer.
  GoldenMap Serial = computeActual(/*ExploreJobs=*/1);
  GoldenMap Parallel = computeActual(/*ExploreJobs=*/4);
  EXPECT_EQ(Serial, Parallel);
}
