//===-- tests/test_workers.cpp - supervised worker-pool tests -------------===//
//
// The `cerb serve --workers N` pool, tested at two levels:
//
//   - Unit: the RestartBackoff schedule (seeded, exponential, capped,
//     jittered into [delay/2, delay]) and the FlapBreaker window
//     accounting (Limit restarts per window, one more trips for good).
//
//   - End to end, against the real `cerb` binary (CERB_BIN, baked in by
//     CMake): supervised stats aggregation and clean SIGTERM drain;
//     kill -9 of a worker mid-traffic with retrying clients losing
//     nothing; repeated kills tripping one slot's breaker while the
//     other keeps serving (pool reports `degraded`); and the injected
//     `worker.crash` fault tripping every slot until the supervisor
//     gives up with exit 3.
//
// Every E2E reply is checked byte-identical across workers and against a
// single-process daemon: multi-process must be invisible in the bytes.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Supervisor.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace cerb;
using namespace cerb::serve;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Unit: RestartBackoff
//===----------------------------------------------------------------------===//

TEST(RestartBackoff, DeterministicPerSeed) {
  RestartBackoff A(100, 5000, 42), B(100, 5000, 42);
  for (int I = 0; I < 12; ++I)
    EXPECT_EQ(A.nextDelayMs(), B.nextDelayMs()) << "attempt " << I;
}

TEST(RestartBackoff, SeedChangesJitterNotShape) {
  RestartBackoff A(100, 5000, 1), B(100, 5000, 2);
  bool AnyDiffer = false;
  for (int I = 0; I < 12; ++I)
    AnyDiffer |= A.nextDelayMs() != B.nextDelayMs();
  EXPECT_TRUE(AnyDiffer) << "different seeds should jitter differently";
}

TEST(RestartBackoff, ExponentialWithinJitterRangeAndCapped) {
  const uint64_t Base = 100, Max = 5000;
  RestartBackoff BO(Base, Max, 7);
  uint64_t Raw = Base; // un-jittered delay for the current attempt
  for (int I = 0; I < 16; ++I) {
    uint64_t D = BO.nextDelayMs();
    EXPECT_LE(D, Raw) << "attempt " << I;
    EXPECT_GE(D, Raw - Raw / 2) << "attempt " << I; // jitter is [D/2, D]
    EXPECT_LE(D, Max);
    Raw = std::min(Raw * 2, Max);
  }
  // Deep into the schedule the un-jittered delay saturates at Max.
  for (int I = 0; I < 4; ++I) {
    uint64_t D = BO.nextDelayMs();
    EXPECT_GE(D, Max / 2);
    EXPECT_LE(D, Max);
  }
}

TEST(RestartBackoff, ResetRestartsTheSchedule) {
  RestartBackoff A(50, 1000, 9);
  std::vector<uint64_t> First;
  for (int I = 0; I < 6; ++I)
    First.push_back(A.nextDelayMs());
  EXPECT_EQ(A.attempts(), 6u);
  A.reset();
  EXPECT_EQ(A.attempts(), 0u);
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(A.nextDelayMs(), First[I]) << "attempt " << I;
}

//===----------------------------------------------------------------------===//
// Unit: FlapBreaker
//===----------------------------------------------------------------------===//

TEST(FlapBreaker, AllowsLimitRestartsThenTripsForGood) {
  FlapBreaker B(3, 1000);
  EXPECT_TRUE(B.allowRestart(0));
  EXPECT_TRUE(B.allowRestart(10));
  EXPECT_TRUE(B.allowRestart(20));
  EXPECT_FALSE(B.tripped());
  EXPECT_FALSE(B.allowRestart(30)); // 4th inside the window: trip
  EXPECT_TRUE(B.tripped());
  // Tripped is terminal — even far outside the window.
  EXPECT_FALSE(B.allowRestart(1u << 30));
  EXPECT_TRUE(B.tripped());
}

TEST(FlapBreaker, WindowExpiryForgivesOldRestarts) {
  FlapBreaker B(2, 1000);
  EXPECT_TRUE(B.allowRestart(0));
  EXPECT_TRUE(B.allowRestart(100));
  // Both prior restarts age out (> 1000 ms old): budget is fresh.
  EXPECT_TRUE(B.allowRestart(1200));
  EXPECT_FALSE(B.tripped());
  EXPECT_TRUE(B.allowRestart(1300));
  EXPECT_FALSE(B.allowRestart(1400)); // 3rd inside the new window: trip
  EXPECT_TRUE(B.tripped());
}

//===----------------------------------------------------------------------===//
// E2E harness: the real binary, forked and supervised
//===----------------------------------------------------------------------===//

namespace {

struct TempDir {
  fs::path Path;
  TempDir() {
    std::string Tmpl =
        (fs::temp_directory_path() / "cerb-workers-XXXXXX").string();
    char *P = ::mkdtemp(Tmpl.data());
    if (!P)
      std::abort();
    Path = P;
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str(const char *Leaf) const { return (Path / Leaf).string(); }
};

uint64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One spawned `cerb serve` process (supervised or not). Owns the pid:
/// the destructor SIGKILLs and reaps anything the test did not.
struct ServeProc {
  pid_t Pid = -1;
  std::string Sock;
  bool Reaped = false;

  ServeProc() = default;
  ServeProc(const ServeProc &) = delete;
  ServeProc &operator=(const ServeProc &) = delete;
  ServeProc(ServeProc &&O) noexcept
      : Pid(O.Pid), Sock(std::move(O.Sock)), Reaped(O.Reaped),
        LastStatus(O.LastStatus) {
    O.Pid = -1;
  }

  static ServeProc spawn(const std::string &Sock,
                         const std::vector<std::string> &Extra,
                         const char *Faults = nullptr) {
    std::vector<std::string> Args = {CERB_BIN, "serve", "--socket", Sock,
                                     "--jobs", "1"};
    for (const std::string &E : Extra)
      Args.push_back(E);
    std::vector<char *> Argv;
    for (std::string &A : Args)
      Argv.push_back(A.data());
    Argv.push_back(nullptr);
    ServeProc S;
    S.Sock = Sock;
    S.Pid = ::fork();
    if (S.Pid == 0) {
      if (Faults)
        ::setenv("CERB_FAULTS", Faults, 1);
      else
        ::unsetenv("CERB_FAULTS");
      ::execv(CERB_BIN, Argv.data());
      ::_exit(127);
    }
    return S;
  }

  bool alive() {
    if (Pid <= 0 || Reaped)
      return false;
    int St = 0;
    pid_t R = ::waitpid(Pid, &St, WNOHANG);
    if (R == Pid) {
      Reaped = true;
      LastStatus = St;
      return false;
    }
    return true;
  }

  /// Polls waitpid until exit or deadline. Returns the wait() status, or
  /// -1 on timeout (process still running).
  int waitExit(uint64_t DeadlineMs) {
    const uint64_t End = nowMs() + DeadlineMs;
    while (nowMs() < End) {
      if (!alive())
        return LastStatus;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
  }

  ~ServeProc() {
    if (Pid > 0 && !Reaped) {
      ::kill(Pid, SIGKILL);
      int St = 0;
      while (::waitpid(Pid, &St, 0) < 0 && errno == EINTR)
        ;
    }
  }

  int LastStatus = -1;
};

RetryPolicy clientPolicy(unsigned Attempts = 6, uint64_t DeadlineMs = 20000) {
  RetryPolicy RP;
  RP.MaxAttempts = Attempts;
  RP.BaseDelayMs = 2;
  RP.MaxDelayMs = 50;
  RP.TotalDeadlineMs = DeadlineMs;
  RP.CallTimeoutMs = 5000;
  return RP;
}

/// Waits until the pool answers a ping, or \p DeadlineMs passes, or the
/// process dies.
bool waitReady(ServeProc &P, uint64_t DeadlineMs = 30000) {
  const uint64_t End = nowMs() + DeadlineMs;
  while (nowMs() < End) {
    if (!P.alive())
      return false;
    auto C = Client::connect(P.Sock, -1, clientPolicy(1, 2000));
    if (C) {
      auto R = C->callParsed(serializeSimpleRequest(Op::Ping, "ready"));
      if (R && R->Status == "ok")
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

EvalRequest workerEval(unsigned I, std::string Id) {
  EvalRequest Q;
  Q.Id = std::move(Id);
  Q.Name = "workers";
  Q.Source = "int main(void) { return " + std::to_string(I % 5) + " + " +
             std::to_string(I % 3) + "; }\n";
  Q.Policies = {mem::MemoryPolicy::defacto()};
  Q.Limits.DeadlineMs = 10000;
  return Q;
}

/// One retried `stats` call, parsed. nullopt on transport failure.
std::optional<json::Value> poolStats(const std::string &Sock) {
  auto C = Client::connect(Sock, -1, clientPolicy());
  if (!C)
    return std::nullopt;
  auto Raw = C->callRetry(serializeSimpleRequest(Op::Stats, "st"));
  if (!Raw)
    return std::nullopt;
  return json::parse(*Raw);
}

/// stats.<stats>.supervisor / workers accessors (nullptr when absent).
const json::Value *statsBody(const json::Value &Root) {
  return Root.get("stats");
}

struct WorkerRow {
  int64_t Slot = -1;
  int64_t Pid = -1;
  std::string State;
  int64_t Restarts = -1;
  bool HasCounters = false;
};

struct PoolView {
  int64_t Workers = -1;
  bool Degraded = false;
  int64_t RestartsTotal = -1;
  bool Aggregated = false;
  std::vector<WorkerRow> Rows;
};

std::optional<PoolView> viewStats(const std::string &Sock) {
  auto Root = poolStats(Sock);
  if (!Root)
    return std::nullopt;
  const json::Value *Body = statsBody(*Root);
  if (!Body)
    return std::nullopt;
  const json::Value *Sup = Body->get("supervisor");
  const json::Value *Wk = Body->get("workers");
  if (!Sup || !Wk || Wk->K != json::Value::Kind::Array)
    return std::nullopt;
  PoolView V;
  if (const json::Value *N = Sup->get("workers"))
    V.Workers = N->asI64();
  if (const json::Value *D = Sup->get("degraded"))
    V.Degraded = D->asBool();
  if (const json::Value *R = Sup->get("restarts_total"))
    V.RestartsTotal = R->asI64();
  if (const json::Value *A = Sup->get("aggregated"))
    V.Aggregated = A->asBool();
  for (const json::Value &Row : Wk->Arr) {
    WorkerRow W;
    if (const json::Value *S = Row.get("slot"))
      W.Slot = S->asI64();
    if (const json::Value *P = Row.get("pid"))
      W.Pid = P->asI64();
    if (const json::Value *S = Row.get("state"))
      W.State = S->asString();
    if (const json::Value *R = Row.get("restarts"))
      W.Restarts = R->asI64();
    if (const json::Value *C = Row.get("counters"))
      W.HasCounters = C->K == json::Value::Kind::Object;
    V.Rows.push_back(std::move(W));
  }
  return V;
}

/// Polls viewStats until \p Pred holds or the deadline passes.
std::optional<PoolView> waitStats(const std::string &Sock,
                                  const std::function<bool(const PoolView &)> &Pred,
                                  uint64_t DeadlineMs = 15000) {
  const uint64_t End = nowMs() + DeadlineMs;
  std::optional<PoolView> Last;
  while (nowMs() < End) {
    Last = viewStats(Sock);
    if (Last && Pred(*Last))
      return Last;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return Last; // caller asserts on the predicate result
}

} // namespace

//===----------------------------------------------------------------------===//
// E2E: aggregated stats, byte-identity, clean drain
//===----------------------------------------------------------------------===//

TEST(WorkerPoolE2E, AggregatedStatsByteIdentityAndCleanDrain) {
  TempDir T;
  ServeProc Pool = ServeProc::spawn(
      T.str("pool.sock"),
      {"--workers", "2", "--cache-dir", T.str("cache"), "--restart-base-ms",
       "5"});
  ASSERT_TRUE(waitReady(Pool)) << "pool never became ready";

  // Cold then warm: the same request id twice, so the *entire raw frame*
  // must be byte-identical on the warm path, no matter which worker
  // serves each call.
  auto C = Client::connect(Pool.Sock, -1, clientPolicy());
  ASSERT_TRUE(static_cast<bool>(C));
  std::string Frame = serializeEvalRequest(workerEval(1, "wq-1"));
  auto Cold = C->callRetry(Frame);
  ASSERT_TRUE(static_cast<bool>(Cold));
  for (int I = 0; I < 4; ++I) {
    auto Warm = C->callRetry(Frame);
    ASSERT_TRUE(static_cast<bool>(Warm));
    EXPECT_EQ(*Cold, *Warm) << "warm reply bytes drifted (round " << I << ")";
  }

  // ... and byte-identical to a single-process daemon over the same
  // request: multi-process must be invisible in the reply bytes.
  {
    TempDir T1;
    ServeProc Solo = ServeProc::spawn(
        T1.str("solo.sock"), {"--cache-dir", T1.str("cache")});
    ASSERT_TRUE(waitReady(Solo)) << "single-process daemon never ready";
    auto C1 = Client::connect(Solo.Sock, -1, clientPolicy());
    ASSERT_TRUE(static_cast<bool>(C1));
    auto R1 = C1->callRetry(Frame);
    ASSERT_TRUE(static_cast<bool>(R1));
    EXPECT_EQ(*Cold, *R1)
        << "supervised reply differs from single-process reply";
    ::kill(Solo.Pid, SIGTERM);
    int St = Solo.waitExit(15000);
    ASSERT_NE(St, -1) << "single-process daemon did not exit on SIGTERM";
    EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
  }

  // Aggregated stats: the supervisor section plus one row per slot, each
  // running with live counters.
  auto V = viewStats(Pool.Sock);
  ASSERT_TRUE(V.has_value()) << "stats did not aggregate";
  EXPECT_EQ(V->Workers, 2);
  EXPECT_FALSE(V->Degraded);
  EXPECT_EQ(V->RestartsTotal, 0);
  EXPECT_TRUE(V->Aggregated);
  ASSERT_EQ(V->Rows.size(), 2u);
  for (const WorkerRow &W : V->Rows) {
    EXPECT_GT(W.Pid, 0) << "slot " << W.Slot;
    EXPECT_EQ(W.State, "running") << "slot " << W.Slot;
    EXPECT_EQ(W.Restarts, 0) << "slot " << W.Slot;
    EXPECT_TRUE(W.HasCounters) << "slot " << W.Slot;
  }
  EXPECT_NE(V->Rows[0].Pid, V->Rows[1].Pid);

  // SIGTERM: rolling drain, exit 0, socket unlinked.
  ::kill(Pool.Pid, SIGTERM);
  int St = Pool.waitExit(30000);
  ASSERT_NE(St, -1) << "supervisor did not exit on SIGTERM";
  EXPECT_TRUE(WIFEXITED(St)) << "supervisor died on a signal";
  EXPECT_EQ(WEXITSTATUS(St), 0);
  EXPECT_FALSE(fs::exists(Pool.Sock)) << "socket not unlinked after drain";
}

//===----------------------------------------------------------------------===//
// E2E: kill -9 a worker mid-traffic — restart + zero client drops
//===----------------------------------------------------------------------===//

TEST(WorkerPoolE2E, SigkilledWorkerRestartsWithZeroClientDrops) {
  TempDir T;
  ServeProc Pool = ServeProc::spawn(
      T.str("pool.sock"),
      {"--workers", "2", "--cache-dir", T.str("cache"), "--restart-base-ms",
       "5"});
  ASSERT_TRUE(waitReady(Pool)) << "pool never became ready";

  auto V0 = viewStats(Pool.Sock);
  ASSERT_TRUE(V0.has_value());
  ASSERT_EQ(V0->Rows.size(), 2u);
  const pid_t Victim = static_cast<pid_t>(V0->Rows[0].Pid);
  ASSERT_GT(Victim, 0);

  // Retrying clients hammer the pool while the victim dies under them.
  constexpr unsigned NumClients = 4, CallsPerClient = 12, NumSources = 6;
  std::mutex Mu;
  uint64_t Failed = 0;
  std::map<unsigned, std::string> Reports; // source -> first report bytes
  uint64_t Mismatched = 0;
  std::vector<std::thread> Fleet;
  for (unsigned Tid = 0; Tid < NumClients; ++Tid) {
    Fleet.emplace_back([&, Tid] {
      RetryPolicy RP = clientPolicy(10, 30000);
      RP.Seed = 1 + Tid;
      auto C = Client::connect(Pool.Sock, -1, RP);
      for (unsigned I = 0; I < CallsPerClient; ++I) {
        unsigned Src = (Tid * CallsPerClient + I) % NumSources;
        if (!C)
          C = Client::connect(Pool.Sock, -1, RP);
        auto R = C ? C->callRetryParsed(serializeEvalRequest(workerEval(
                         Src, "k" + std::to_string(Tid) + "-" +
                                  std::to_string(I))))
                   : Expected<ParsedResponse>(err("no connection"));
        std::lock_guard<std::mutex> L(Mu);
        if (!R || R->Status != "ok") {
          ++Failed;
          continue;
        }
        auto It = Reports.find(Src);
        if (It == Reports.end())
          Reports.emplace(Src, R->Report);
        else if (It->second != R->Report)
          ++Mismatched;
      }
    });
  }

  // Let traffic start, then SIGKILL the victim worker mid-batch.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_EQ(::kill(Victim, SIGKILL), 0);

  for (std::thread &Th : Fleet)
    Th.join();
  EXPECT_EQ(Failed, 0u) << "a retrying client dropped a request across the "
                           "worker restart";
  EXPECT_EQ(Mismatched, 0u) << "reply bytes drifted across the restart";

  // The supervisor noticed, restarted the slot, and says so in stats.
  auto V1 = waitStats(Pool.Sock, [&](const PoolView &V) {
    if (V.RestartsTotal < 1 || V.Rows.size() != 2)
      return false;
    for (const WorkerRow &W : V.Rows)
      if (W.State != "running")
        return false;
    return true;
  });
  ASSERT_TRUE(V1.has_value());
  EXPECT_GE(V1->RestartsTotal, 1);
  EXPECT_FALSE(V1->Degraded);
  ASSERT_EQ(V1->Rows.size(), 2u);
  for (const WorkerRow &W : V1->Rows)
    EXPECT_EQ(W.State, "running") << "slot " << W.Slot;
  EXPECT_NE(V1->Rows[0].Pid, static_cast<int64_t>(Victim))
      << "killed pid still listed as slot 0";

  ::kill(Pool.Pid, SIGTERM);
  int St = Pool.waitExit(30000);
  ASSERT_NE(St, -1);
  EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
}

//===----------------------------------------------------------------------===//
// E2E: flap breaker — one slot degrades, the pool keeps serving
//===----------------------------------------------------------------------===//

TEST(WorkerPoolE2E, RepeatedKillsTripOneBreakerPoolDegradesButServes) {
  TempDir T;
  // Limit 2 in a huge window: the third kill of slot 0 trips its breaker.
  ServeProc Pool = ServeProc::spawn(
      T.str("pool.sock"),
      {"--workers", "2", "--cache-dir", T.str("cache"), "--restart-base-ms",
       "5", "--restart-limit", "2", "--restart-window-ms", "600000"});
  ASSERT_TRUE(waitReady(Pool)) << "pool never became ready";

  int64_t LastKilled = -1;
  for (int Kill = 0; Kill < 3; ++Kill) {
    auto V = waitStats(Pool.Sock, [&](const PoolView &W) {
      return W.Rows.size() == 2 && W.Rows[0].State == "running" &&
             W.Rows[0].Pid > 0 && W.Rows[0].Pid != LastKilled;
    });
    ASSERT_TRUE(V.has_value()) << "kill " << Kill;
    ASSERT_EQ(V->Rows[0].State, "running")
        << "slot 0 never came back before kill " << Kill;
    LastKilled = V->Rows[0].Pid;
    ASSERT_EQ(::kill(static_cast<pid_t>(LastKilled), SIGKILL), 0);
  }

  // Third death exceeds the limit: breaker trips, slot abandoned, pool
  // degraded — but slot 1 still serves, byte-identically.
  auto V = waitStats(Pool.Sock, [](const PoolView &W) {
    return W.Degraded && W.Rows.size() == 2 && W.Rows[0].State == "failed";
  });
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(V->Degraded);
  ASSERT_EQ(V->Rows.size(), 2u);
  EXPECT_EQ(V->Rows[0].State, "failed");
  EXPECT_EQ(V->Rows[0].Restarts, 2) << "breaker should trip on the 3rd kill";
  EXPECT_EQ(V->Rows[1].State, "running");
  EXPECT_EQ(V->RestartsTotal, 2);

  auto C = Client::connect(Pool.Sock, -1, clientPolicy());
  ASSERT_TRUE(static_cast<bool>(C));
  std::string Frame = serializeEvalRequest(workerEval(2, "deg-1"));
  auto R1 = C->callRetry(Frame);
  auto R2 = C->callRetry(Frame);
  ASSERT_TRUE(static_cast<bool>(R1));
  ASSERT_TRUE(static_cast<bool>(R2));
  EXPECT_EQ(*R1, *R2) << "degraded pool must still answer deterministically";

  ::kill(Pool.Pid, SIGTERM);
  int St = Pool.waitExit(30000);
  ASSERT_NE(St, -1);
  EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0)
      << "drain with a failed slot must still exit cleanly";
}

//===----------------------------------------------------------------------===//
// E2E: every slot tripped — the supervisor gives up with exit 3
//===----------------------------------------------------------------------===//

TEST(WorkerPoolE2E, AllBreakersTrippedSupervisorExitsNonzero) {
  TempDir T;
  // worker.crash fires on every eval, so each attempt costs one worker;
  // with limit 1 each slot trips on its second crash. Pings and stats do
  // not evaluate, so readiness still works.
  ServeProc Pool = ServeProc::spawn(
      T.str("pool.sock"),
      {"--workers", "2", "--cache-dir", T.str("cache"), "--restart-base-ms",
       "5", "--restart-limit", "1", "--restart-window-ms", "600000"},
      "seed=7;worker.crash,every=1");
  ASSERT_TRUE(waitReady(Pool)) << "pool never became ready";

  // Keep poking evals until the pool collapses; each attempt is allowed
  // to fail (its worker just crashed under it).
  const uint64_t End = nowMs() + 60000;
  unsigned Pokes = 0;
  while (Pool.alive() && nowMs() < End) {
    RetryPolicy RP = clientPolicy(2, 2000);
    RP.CallTimeoutMs = 1500;
    auto C = Client::connect(Pool.Sock, -1, RP);
    if (C)
      (void)C->callRetry(
          serializeEvalRequest(workerEval(Pokes, "crash-" +
                                                     std::to_string(Pokes))));
    ++Pokes;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  int St = Pool.waitExit(10000);
  ASSERT_NE(St, -1) << "supervisor kept flapping after " << Pokes
                    << " crash-inducing evals";
  ASSERT_TRUE(WIFEXITED(St)) << "supervisor died on a signal";
  EXPECT_EQ(WEXITSTATUS(St), 3)
      << "all-breakers-tripped must exit 3, got " << WEXITSTATUS(St);
}
