//===-- tests/test_corpus.cpp - minimized-reproducer regression suite -----===//
//
// Replays every minimized reproducer in tests/corpus/ under all four
// memory-model policies and pins the single-execution outcome
// (Outcome::str(), or the compile error) golden-style. The corpus was
// seeded by an initial `cerb fuzz` / `cerb reduce` campaign over the
// de facto idiom programs that diverge from the host compiler — each file
// is 1-minimal under the ddmin reducer for its recorded triage signature.
//
// Goldens live in tests/goldens/corpus_outcomes.golden. To regenerate
// after an *intentional* semantics change:
//
//   CERB_UPDATE_GOLDENS=1 ./build/tests/cerb_corpus_tests
//
// A second test (host-compiler-gated) re-checks the acceptance contract:
// replayed standalone, every reproducer still diverges from the host
// compiler under the de facto policy — reduction must never "fix" the
// divergence it is minimizing.
//
//===----------------------------------------------------------------------===//

#include "csmith/Differential.h"
#include "exec/Pipeline.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

using namespace cerb;

namespace {

/// Fixed name list (not a directory scan) so golden keys are stable and a
/// stray file cannot silently widen the suite.
const char *CorpusFiles[] = {
    "cheri_untagged_int_to_ptr",
    "double_free",
    "free_nonheap",
    "null_deref",
    "one_past_deref",
    "ptr_eq_one_past_adjacent",
    "ptrdiff_cross_object",
    "shift_into_sign_bit",
    "uninit_branch",
    "unseq_race_incr",
    "use_after_free",
    "write_string_literal",
};

std::string corpusPath(const std::string &Name) {
  return std::string(CERB_SOURCE_DIR) + "/tests/corpus/" + Name + ".c";
}

std::string goldenPath() {
  return std::string(CERB_SOURCE_DIR) + "/tests/goldens/corpus_outcomes.golden";
}

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

std::string unescape(const std::string &S) {
  std::string Out;
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] == '\\' && I + 1 < S.size()) {
      ++I;
      Out += S[I] == 'n' ? '\n' : S[I];
    } else {
      Out += S[I];
    }
  }
  return Out;
}

/// Key "file policy" -> the pinned single-execution outcome line.
using GoldenMap = std::map<std::string, std::string>;

GoldenMap computeActual() {
  GoldenMap Actual;
  for (const char *Name : CorpusFiles) {
    auto Src = exec::readSourceFile(corpusPath(Name));
    EXPECT_TRUE(static_cast<bool>(Src)) << Src.error().str();
    if (!Src)
      continue;
    for (const mem::MemoryPolicy &P : mem::MemoryPolicy::allPresets()) {
      exec::RunOptions Opts;
      Opts.Policy = P;
      auto R = exec::evaluateOnce(*Src, Opts);
      Actual[std::string(Name) + " " + P.Name] =
          R ? R->str() : "compile-error(" + R.error().str() + ")";
    }
  }
  return Actual;
}

std::string serialize(const GoldenMap &M) {
  std::string Out =
      "# Golden single-execution outcomes for the minimized-reproducer\n"
      "# corpus (tests/corpus/), one [file policy] record per replay.\n"
      "# Regenerate: CERB_UPDATE_GOLDENS=1 ./build/tests/cerb_corpus_tests\n";
  for (const auto &[Key, Outcome] : M)
    Out += "\n[" + Key + "]\n" + escape(Outcome) + "\n";
  return Out;
}

bool parseGoldens(const std::string &Path, GoldenMap &M, std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = "cannot open " + Path +
          " (regenerate: CERB_UPDATE_GOLDENS=1 ./build/tests/cerb_corpus_tests)";
    return false;
  }
  std::string Line, Key;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Line.front() == '[' && Line.back() == ']') {
      Key = Line.substr(1, Line.size() - 2);
      continue;
    }
    if (Key.empty()) {
      Err = "stray line before first record: " + Line;
      return false;
    }
    M[Key] = unescape(Line);
  }
  return true;
}

} // namespace

TEST(CorpusGolden, ReplayOutcomesMatchGoldens) {
  GoldenMap Actual = computeActual();

  if (std::getenv("CERB_UPDATE_GOLDENS")) {
    std::ofstream Out(goldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(static_cast<bool>(Out)) << "cannot write " << goldenPath();
    Out << serialize(Actual);
    GTEST_LOG_(INFO) << "regenerated " << goldenPath();
    return;
  }

  GoldenMap Golden;
  std::string Err;
  ASSERT_TRUE(parseGoldens(goldenPath(), Golden, Err)) << Err;

  for (const auto &[Key, Outcome] : Golden)
    EXPECT_TRUE(Actual.count(Key))
        << "golden record '" << Key
        << "' no longer produced (corpus changed? regenerate goldens)";
  for (const auto &[Key, Outcome] : Actual) {
    auto It = Golden.find(Key);
    if (It == Golden.end()) {
      ADD_FAILURE() << "no golden record for '" << Key
                    << "' (new corpus entry? regenerate goldens)";
      continue;
    }
    EXPECT_EQ(It->second, Outcome) << "replay outcome drifted for " << Key;
  }
}

TEST(CorpusGolden, ReproducersStillDivergeFromHostCompiler) {
  if (!csmith::oracleAvailable())
    GTEST_SKIP() << "no host C compiler";
  for (const char *Name : CorpusFiles) {
    auto Src = exec::readSourceFile(corpusPath(Name));
    ASSERT_TRUE(static_cast<bool>(Src)) << Src.error().str();
    csmith::DiffOptions O;
    O.DeadlineMs = 10'000;
    csmith::DiffResult R = csmith::differentialTest(*Src, O);
    EXPECT_TRUE(R.Status == csmith::DiffStatus::Mismatch ||
                R.Status == csmith::DiffStatus::OursFail)
        << Name << " no longer diverges: "
        << std::string(csmith::diffStatusName(R.Status)) << " " << R.Detail;
  }
}
